package nocap_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"testing"
	"time"

	"nocap"
	"nocap/internal/cluster"
	"nocap/internal/jobs"
	"nocap/internal/server"
)

// clusterBenchJSON names the file TestClusterBenchJSON writes
// distributed-proving throughput measurements to, e.g.
//
//	go test -run TestClusterBenchJSON -clusterbench BENCH_cluster.json
//
// Without the flag the test is skipped, so the ordinary suite stays fast.
var clusterBenchJSON = flag.String("clusterbench", "", "write distributed-proving throughput results to this JSON file")

// clusterBenchEntry is one (logN, worker count) configuration: per-job
// wall time through the full coordinator path (HTTP submit → lease
// dispatch → worker prove → completion → poll) and the throughput
// scaling against the single-worker baseline at the same logN.
type clusterBenchEntry struct {
	Name       string  `json:"name"`
	LogN       int     `json:"log_n"`
	Workers    int     `json:"workers"`
	Jobs       int     `json:"jobs"`
	NsPerJob   int64   `json:"ns_per_job"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	Scaling    float64 `json:"scaling_vs_1_worker"`
}

// TestClusterBenchJSON measures end-to-end distributed proving
// (DESIGN.md §16) and emits BENCH_cluster.json for CI trend tracking.
// Each cell boots a fresh coordinator (local fallback off) plus N
// in-process worker nodes proving with the real prover, submits a
// burst of async jobs over HTTP, and divides the wall time to the last
// completion by the job count. The in-process nodes share one machine,
// so the scaling column reports how much of the fan-out survives the
// coordinator's dispatch/heartbeat/completion overhead rather than
// cross-machine speedup — regressions in the lease plumbing show up
// here as a scaling collapse.
func TestClusterBenchJSON(t *testing.T) {
	if *clusterBenchJSON == "" {
		t.Skip("-clusterbench not set")
	}
	params := nocap.DefaultParams()
	params.Reps = 1
	params.PCS.ZK = false
	const jobsPerCell = 8
	client := &http.Client{Timeout: 2 * time.Minute}
	var entries []clusterBenchEntry
	baseline := map[int]int64{} // logN → 1-worker ns/job
	for _, workers := range []int{1, 2, 4} {
		for _, logN := range []int{10, 12} {
			n := 1 << uint(logN)
			perJob := runClusterBenchCell(t, client, params, workers, n, jobsPerCell)
			if workers == 1 {
				baseline[logN] = perJob
			}
			scaling := 0.0
			if b := baseline[logN]; b > 0 {
				scaling = float64(b) / float64(perJob)
			}
			entries = append(entries, clusterBenchEntry{
				Name:       "ClusterProve/synthetic",
				LogN:       logN,
				Workers:    workers,
				Jobs:       jobsPerCell,
				NsPerJob:   perJob,
				JobsPerSec: 1e9 / float64(perJob),
				Scaling:    scaling,
			})
			t.Logf("logN=%d workers=%d: %d ns/job (%.1f jobs/sec, %.2fx vs 1 worker)",
				logN, workers, perJob, 1e9/float64(perJob), scaling)
		}
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*clusterBenchJSON, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// runClusterBenchCell boots one coordinator + worker fleet, runs one
// warm-up job and then a timed burst, and returns ns per job.
func runClusterBenchCell(t *testing.T, client *http.Client, params nocap.Params, workers, n, jobCount int) int64 {
	t.Helper()
	srv, err := server.New(server.Config{
		Addr:            "127.0.0.1:0",
		Workers:         4,
		QueueDepth:      2 * jobCount,
		MemoryBudgetMB:  8,
		Params:          params,
		DataDir:         t.TempDir(),
		JobBackoffBase:  5 * time.Millisecond,
		JobBackoffMax:   50 * time.Millisecond,
		ClusterEnabled:  true,
		ClusterLeaseTTL: 3 * time.Second,
		ClusterSeed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := srv.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
	}()
	base := "http://" + bound.String()

	prover := cluster.NewProver(cluster.ProverConfig{Params: params, Timeout: time.Minute})
	fleet := make([]*cluster.Worker, workers)
	for i := range fleet {
		w, werr := cluster.NewWorker(cluster.WorkerConfig{
			Coordinator: base,
			ID:          fmt.Sprintf("bench-w%d", i),
			Slots:       1,
			PollWait:    200 * time.Millisecond,
			RetryBase:   5 * time.Millisecond,
			Exec:        prover.Exec,
			BatchExec:   prover.BatchExec,
			Seed:        int64(100 + i),
		})
		if werr != nil {
			t.Fatal(werr)
		}
		w.Start()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			if err := w.Stop(ctx); err != nil {
				t.Fatal(err)
			}
		}()
	}

	submit := func() string {
		body, _ := json.Marshal(server.ProveRequest{Circuit: "synthetic", N: n})
		resp, err := client.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: status %d: %.200s", resp.StatusCode, data)
		}
		var jr server.JobResponse
		if err := json.Unmarshal(data, &jr); err != nil || jr.ID == "" {
			t.Fatalf("submit: %v (%.200s)", err, data)
		}
		return jr.ID
	}
	await := func(id string) {
		deadline := time.Now().Add(2 * time.Minute)
		for {
			resp, err := client.Get(base + "/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var jr server.JobResponse
			if err := json.Unmarshal(data, &jr); err != nil {
				t.Fatalf("poll %s: %v", id, err)
			}
			if jobs.State(jr.State).Terminal() {
				if jr.State != string(jobs.StateDone) {
					t.Fatalf("job %s ended %q (code %q)", id, jr.State, jr.Code)
				}
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s still %q", id, jr.State)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Submissions 503 until journal recovery finishes and at least one
	// node's first poll has registered it; wait for the whole fleet so
	// the timed burst measures the intended worker count.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ready := false
		if resp, err := client.Get(base + "/readyz"); err == nil {
			ready = resp.StatusCode == http.StatusOK
			resp.Body.Close()
		}
		live := 0
		if resp, err := client.Get(base + "/healthz"); err == nil {
			var body struct {
				Cluster struct {
					LiveNodes int `json:"live_nodes"`
				} `json:"cluster"`
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if json.Unmarshal(data, &body) == nil {
				live = body.Cluster.LiveNodes
			}
		}
		if ready && live >= workers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cell never came up (ready=%v, %d/%d nodes live)", ready, live, workers)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Warm-up: caches, twiddles, and the dispatch path end to end.
	await(submit())

	start := time.Now()
	ids := make([]string, jobCount)
	for i := range ids {
		ids[i] = submit()
	}
	for _, id := range ids {
		await(id)
	}
	return time.Since(start).Nanoseconds() / int64(jobCount)
}
