// Verifiable machine learning (paper §I: "a server can use ZKPs to
// prove to clients that a (secret) machine learning model achieves a
// certain accuracy [90]"). A model owner holds a private linear
// classifier; the evaluation set and the claimed accuracy are public.
// The circuit scores every sample, compares predictions to labels, and
// asserts that the number of correct predictions meets the claim — all
// without revealing the model weights.
package main

import (
	"fmt"
	"log"
	"time"

	"nocap"
)

// The public evaluation set: two features per sample, binary labels.
// (A toy "is x0 + 2·x1 large" concept with some noise.)
var (
	features = [][2]uint64{
		{10, 80}, {90, 70}, {20, 10}, {5, 95}, {60, 60}, {15, 20},
		{80, 90}, {25, 30}, {70, 20}, {10, 10}, {95, 95}, {30, 75},
		{55, 10}, {5, 5}, {85, 40}, {40, 85},
	}
	labels = []uint64{1, 1, 0, 1, 1, 0, 1, 0, 0, 0, 1, 1, 0, 0, 1, 1}
)

// The private model: score = w0·x0 + w1·x1, predict 1 when score ≥ τ.
const (
	secretW0, secretW1 = 1, 2
	threshold          = 120 // public decision threshold
	claimedCorrect     = 15  // public accuracy claim: ≥15/16
)

func main() {
	b := nocap.NewBuilder()

	// Secret weights, range-checked to 8 bits.
	w0 := b.Secret(nocap.NewElement(secretW0))
	w1 := b.Secret(nocap.NewElement(secretW1))
	b.ToBits(nocap.FromVar(w0), 8)
	b.ToBits(nocap.FromVar(w1), 8)

	var correctSum nocap.LC
	for i, x := range features {
		// score = w0·x0 + w1·x1 (features are public constants).
		s0 := b.Mul(nocap.FromVar(w0), nocap.Const(nocap.NewElement(x[0])))
		s1 := b.Mul(nocap.FromVar(w1), nocap.Const(nocap.NewElement(x[1])))
		score := nocap.AddLC(nocap.FromVar(s0), nocap.FromVar(s1))
		// pred = score ≥ τ  (i.e. NOT (score < τ)); scores fit 17 bits.
		lt := b.LessThan(score, nocap.Const(nocap.NewElement(threshold)), 18)
		// correct = label==1 ? pred : 1-pred, linear given the public label.
		var correct nocap.LC
		if labels[i] == 1 {
			correct = nocap.SubLC(nocap.Const(nocap.NewElement(1)), nocap.FromVar(lt))
		} else {
			correct = nocap.FromVar(lt)
		}
		correctSum = nocap.AddLC(correctSum, correct)
	}
	// Assert Σ correct ≥ claimedCorrect.
	tooFew := b.LessThan(correctSum, nocap.Const(nocap.NewElement(claimedCorrect)), 8)
	b.AssertEq(nocap.FromVar(tooFew), nil)
	claim := b.Public(nocap.NewElement(claimedCorrect))
	_ = claim

	inst, io, witness := b.Build()
	fmt.Printf("accuracy circuit: %d constraints over %d samples\n",
		inst.NumConstraints(), len(features))

	params := nocap.TestParams()
	start := time.Now()
	proof, err := nocap.Prove(params, inst, io, witness)
	if err != nil {
		log.Fatalf("prove: %v", err)
	}
	fmt.Printf("model owner proves ≥%d/%d correct in %v (proof %.1f KB)\n",
		claimedCorrect, len(features), time.Since(start).Round(time.Millisecond),
		float64(proof.SizeBytes())/1e3)

	if err := nocap.Verify(params, inst, io, proof); err != nil {
		log.Fatalf("verify: %v", err)
	}
	fmt.Println("client verified the accuracy claim without seeing the weights")

	// Paper framing: differentially-private training verification at
	// ~2^28-constraint scale drops from 100 CPU-hours to under 30 NoCap
	// minutes (§I); one inference-accuracy proof like zkCNN's is ~2^26.
	res := nocap.Simulate(nocap.DefaultHardware(), 26, nocap.DefaultProtocol())
	fmt.Printf("a 2^26-constraint model-evaluation proof simulates at %.2f s on NoCap\n",
		res.Seconds())
}
