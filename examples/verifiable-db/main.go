// Real-time verifiable database (paper §I, §VIII-A): a working database
// engine in the style of Litmus [84] — accounts, transfers, and batch
// commits, where every committed batch carries a Spartan+Orion proof of
// transactional correctness (solvency, range, conservation, audit
// accumulator) that chains to the previous batch. The paper's headline
// throughput claim (2 tx/s on CPU vs 1,142 tx/s on NoCap at 1-second
// latency) is reproduced from the calibrated full-scale models.
package main

import (
	"fmt"
	"log"
	"time"

	"nocap"
	"nocap/internal/circuits"
	"nocap/internal/experiments"
	"nocap/internal/spartan"
	"nocap/internal/vdb"
)

func main() {
	genesis := []uint64{10_000, 5_000, 1_000, 0, 2_500, 0, 750, 300}
	params := spartan.TestParams()
	db, err := vdb.New(params, genesis)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verifiable database: %d accounts at genesis\n", db.NumAccounts())

	// Batch 1: a few transfers.
	batch1 := []circuits.Transfer{
		{From: 0, To: 3, Amount: 1_200},
		{From: 1, To: 5, Amount: 900},
		{From: 4, To: 0, Amount: 300},
		{From: 3, To: 7, Amount: 150},
	}
	for _, tr := range batch1 {
		if err := db.Submit(tr); err != nil {
			log.Fatalf("submit: %v", err)
		}
	}
	// An insolvent transaction is rejected before it ever reaches a batch.
	if err := db.Submit(circuits.Transfer{From: 6, To: 0, Amount: 10_000}); err != nil {
		fmt.Printf("rejected insolvent transfer: %v\n", err)
	}

	start := time.Now()
	b1, err := db.Commit()
	if err != nil {
		log.Fatalf("commit: %v", err)
	}
	fmt.Printf("batch %d: %d txns proven in %v (proof %.1f KB)\n",
		b1.Seq, b1.NumTxns, time.Since(start).Round(time.Millisecond),
		float64(b1.Proof.SizeBytes())/1e3)

	// Batch 2 chains onto batch 1.
	for _, tr := range []circuits.Transfer{
		{From: 3, To: 2, Amount: 500},
		{From: 0, To: 6, Amount: 2_000},
	} {
		if err := db.Submit(tr); err != nil {
			log.Fatalf("submit: %v", err)
		}
	}
	b2, err := db.Commit()
	if err != nil {
		log.Fatalf("commit: %v", err)
	}

	// A client verifies the chain without seeing any transaction.
	if err := vdb.VerifyBatch(params, genesis, nil, b1); err != nil {
		log.Fatalf("client rejects batch 1: %v", err)
	}
	if err := vdb.VerifyBatch(params, genesis, b1, b2); err != nil {
		log.Fatalf("client rejects batch 2: %v", err)
	}
	fmt.Println("client verified both batches and their chaining; final balances:")
	fmt.Printf("  %v\n", b2.FinalBalances())

	// The paper's throughput claim, from the calibrated full-scale models.
	tp := experiments.DatabaseThroughput()
	fmt.Println()
	fmt.Print(tp.Render())
	res := nocap.Simulate(nocap.DefaultHardware(), 25, nocap.DefaultProtocol())
	fmt.Printf("(a %d-txn batch ≈ 2^25 constraints simulates at %.0f ms on NoCap)\n",
		tp.NoCapBatchSize, res.Seconds()*1e3)
}
