// Secure photo modification (paper §I): a camera signs a commitment to
// an original image; an editor publishes a cropped region and proves it
// is a faithful crop of the committed original — without revealing the
// rest of the image and without any further modification.
//
// The commitment is a multiset-style polynomial accumulator over the
// pixels evaluated in-circuit, so the verifier checks the crop against
// the camera's commitment with one zk-SNARK verification. This is the
// laptop-scale version of the paper's 256 KB-image scenario (over 12 CPU
// minutes vs just over a second on NoCap).
package main

import (
	"fmt"
	"log"
	"time"

	"nocap"
)

const (
	imgW, imgH   = 16, 16 // original image (secret)
	cropX, cropY = 4, 6   // public crop region
	cropW, cropH = 8, 4
)

// commitGamma and commitBeta are the public accumulator parameters the
// camera used when signing.
var (
	commitGamma = nocap.NewElement(0x70686f746f) // "photo"
	commitBeta  = nocap.NewElement(0x63726f70)   // "crop"
)

// commitment computes Π (γ − (i + β·pixel_i)) over all pixels.
func commitment(pixels []byte) nocap.Element {
	// Reference (camera-side) computation.
	b := nocap.NewBuilder()
	acc := accumulate(b, pixelsToSecrets(b, pixels))
	return b.Eval(acc)
}

func pixelsToSecrets(b *nocap.Builder, pixels []byte) []nocap.Variable {
	vars := make([]nocap.Variable, len(pixels))
	for i, p := range pixels {
		vars[i] = b.Secret(nocap.NewElement(uint64(p)))
		b.ToBits(nocap.FromVar(vars[i]), 8) // range check: a byte
	}
	return vars
}

// accumulate folds the accumulator product over pixel wires.
func accumulate(b *nocap.Builder, pixels []nocap.Variable) nocap.LC {
	acc := nocap.Const(nocap.NewElement(1))
	for i, p := range pixels {
		term := nocap.SubLC(nocap.Const(commitGamma),
			nocap.AddLC(nocap.Const(nocap.NewElement(uint64(i))),
				nocap.ScaleLC(commitBeta, nocap.FromVar(p))))
		acc = nocap.FromVar(b.Mul(acc, term))
	}
	return acc
}

func main() {
	// The secret original image.
	original := make([]byte, imgW*imgH)
	for i := range original {
		original[i] = byte(i*7 + 13)
	}
	camCommit := commitment(original)
	fmt.Printf("camera commitment: %v\n", camCommit)

	// The editor's circuit: recompute the commitment from the secret
	// image AND expose the crop region publicly; both bind to the same
	// secret pixel wires, so the crop provably descends from the
	// committed original.
	b := nocap.NewBuilder()
	pixels := pixelsToSecrets(b, original)
	acc := accumulate(b, pixels)

	pubCommit := b.Public(camCommit)
	b.AssertEq(acc, nocap.FromVar(pubCommit))

	crop := make([]byte, 0, cropW*cropH)
	for y := cropY; y < cropY+cropH; y++ {
		for x := cropX; x < cropX+cropW; x++ {
			p := pixels[y*imgW+x]
			out := b.Public(b.Value(p))
			b.AssertEq(nocap.FromVar(p), nocap.FromVar(out))
			crop = append(crop, byte(b.Value(p).Uint64()))
		}
	}
	inst, io, witness := b.Build()
	fmt.Printf("crop circuit: %d constraints; publishing %d cropped pixels\n",
		inst.NumConstraints(), len(crop))

	params := nocap.TestParams()
	start := time.Now()
	proof, err := nocap.Prove(params, inst, io, witness)
	if err != nil {
		log.Fatalf("prove: %v", err)
	}
	fmt.Printf("editor's proof: %.1f KB in %v\n",
		float64(proof.SizeBytes())/1e3, time.Since(start).Round(time.Millisecond))

	if err := nocap.Verify(params, inst, io, proof); err != nil {
		log.Fatalf("verify: %v", err)
	}
	fmt.Println("verified: the crop descends from the camera's committed image")

	// Paper-scale numbers for a 256 KB image (≈ 2^27 padded constraints).
	res := nocap.Simulate(nocap.DefaultHardware(), 27, nocap.DefaultProtocol())
	fmt.Printf("256 KB image on NoCap: %.2f s to prove (paper: just over a second;\n", res.Seconds())
	fmt.Println("the same proof takes over 12 minutes on a 32-core CPU)")
}
