// Sealed-bid auction (the paper's Auction benchmark, §VII-B): the
// auctioneer proves that the published winner and second-price clearing
// price follow the auction rules, without revealing any losing bid.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"nocap"
)

func main() {
	// Ten private bids (only the auctioneer sees these).
	bids := []uint64{1_200, 4_550, 3_000, 4_550, 900, 7_770, 4_100, 2_250, 6_400, 5_100}
	fmt.Printf("auction with %d sealed bids\n", len(bids))

	bm := nocap.Auction(bids)
	winner := bm.Outputs[0]
	price := binary.LittleEndian.Uint32(bm.Outputs[1:5])
	winBid := binary.LittleEndian.Uint32(bm.Outputs[5:9])
	fmt.Printf("public result: bidder %d wins (bid %d), pays second price %d\n",
		winner, winBid, price)

	params := nocap.TestParams()
	start := time.Now()
	proof, err := nocap.Prove(params, bm.Inst, bm.IO, bm.Witness)
	if err != nil {
		log.Fatalf("prove: %v", err)
	}
	fmt.Printf("auctioneer's proof: %.1f KB in %v (%d constraints)\n",
		float64(proof.SizeBytes())/1e3, time.Since(start).Round(time.Millisecond),
		bm.Inst.NumConstraints())

	if err := nocap.Verify(params, bm.Inst, bm.IO, proof); err != nil {
		log.Fatalf("verify: %v", err)
	}
	fmt.Println("any bidder can verify the result without learning losing bids")

	// At the paper's scale (550M constraints, 100× the bids of prior
	// work), the simulated accelerator proves the auction in seconds.
	res := nocap.Simulate(nocap.DefaultHardware(), 30, nocap.DefaultProtocol())
	fmt.Printf("paper-scale auction on NoCap: %.1f s (CPU: ~1.7 h)\n", res.Seconds())
}
