// Quickstart: build a small circuit, prove knowledge of its witness with
// the Spartan+Orion zk-SNARK, verify the proof, and simulate how fast
// the NoCap accelerator would prove the same statement at paper scale.
package main

import (
	"fmt"
	"log"

	"nocap"
)

func main() {
	// Statement: "I know x and y with x·y = 391 and x + y = 40"
	// (i.e. the factors 17 and 23), without revealing x or y.
	b := nocap.NewBuilder()
	x := b.Secret(nocap.NewElement(17))
	y := b.Secret(nocap.NewElement(23))
	prod := b.Mul(nocap.FromVar(x), nocap.FromVar(y))

	pubProd := b.Public(nocap.NewElement(391))
	pubSum := b.Public(nocap.NewElement(40))
	b.AssertEq(nocap.FromVar(prod), nocap.FromVar(pubProd))
	b.AssertEq(nocap.AddLC(nocap.FromVar(x), nocap.FromVar(y)), nocap.FromVar(pubSum))

	inst, io, witness := b.Build()
	fmt.Printf("circuit: %d constraints, %d variables\n",
		inst.NumConstraints(), inst.NumVars())

	params := nocap.TestParams()
	proof, err := nocap.Prove(params, inst, io, witness)
	if err != nil {
		log.Fatalf("prove: %v", err)
	}
	fmt.Printf("proof generated: %.1f KB\n", float64(proof.SizeBytes())/1e3)

	if err := nocap.Verify(params, inst, io, proof); err != nil {
		log.Fatalf("verify: %v", err)
	}
	fmt.Println("proof verified: the prover knows the factors of 391")

	// The same protocol at paper scale on the NoCap accelerator.
	res := nocap.Simulate(nocap.DefaultHardware(), 24, nocap.DefaultProtocol())
	fmt.Printf("NoCap would prove a 16M-constraint statement in %.0f ms\n",
		res.Seconds()*1e3)
}
