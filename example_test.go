package nocap_test

import (
	"fmt"

	"nocap"
)

// ExampleProve demonstrates the core prove/verify flow on a tiny
// statement: knowledge of a square root.
func ExampleProve() {
	b := nocap.NewBuilder()
	x := b.Secret(nocap.NewElement(6))
	sq := b.Square(nocap.FromVar(x))
	pub := b.Public(nocap.NewElement(36))
	b.AssertEq(nocap.FromVar(sq), nocap.FromVar(pub))

	inst, io, witness := b.Build()
	proof, err := nocap.Prove(nocap.TestParams(), inst, io, witness)
	if err != nil {
		fmt.Println("prove failed:", err)
		return
	}
	fmt.Println("verified:", nocap.Verify(nocap.TestParams(), inst, io, proof) == nil)
	// Output: verified: true
}

// ExampleSimulate runs the cycle-level NoCap model at the paper's
// 16M-constraint scale.
func ExampleSimulate() {
	res := nocap.Simulate(nocap.DefaultHardware(), 24, nocap.DefaultProtocol())
	fmt.Printf("prover time: %.0f ms\n", res.Seconds()*1e3)
	fmt.Printf("die area: %.1f mm²\n", nocap.Area(nocap.DefaultHardware()).Total())
	// Output:
	// prover time: 151 ms
	// die area: 45.9 mm²
}

// ExampleMarshalProof shows proof serialization for transmission.
func ExampleMarshalProof() {
	bm := nocap.Synthetic(256)
	params := nocap.TestParams()
	proof, err := nocap.Prove(params, bm.Inst, bm.IO, bm.Witness)
	if err != nil {
		fmt.Println("prove failed:", err)
		return
	}
	data, _ := nocap.MarshalProof(proof)
	decoded, _ := nocap.UnmarshalProof(data)
	fmt.Println("round trip verified:", nocap.Verify(params, bm.Inst, bm.IO, decoded) == nil)
	// Output: round trip verified: true
}
