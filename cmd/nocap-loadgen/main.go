// Command nocap-loadgen hammers a nocap-serve instance with mixed
// traffic — proves, valid verifies, corrupt proofs, malformed JSON,
// oversized bodies, and client-cancelled requests — and checks that
// every answer is a complete, correctly-typed response: 200 with per-
// request stats, 400/413 with a taxonomy code, 429 when the admission
// queue sheds load. Anything else (an untyped error, a 5xx, a proof
// accepted that should not be) counts as a protocol violation and fails
// the run.
//
// With -addr pointing at a running server it is a plain load generator.
// With -addr "" (the default) it starts an in-process server, runs the
// same traffic over loopback, drains it, and additionally asserts the
// process-level invariants only visible from inside: zero leaked
// goroutines (internal/leakcheck) and the arena checkout balance back
// at its baseline. That self-contained mode is what `make serve-smoke`
// runs in CI.
//
// With -jobs (in-process only) the traffic instead exercises the
// durable async API: submit/poll/cancel over POST /jobs, plus a
// crash-window pass that parks jobs in flight, drains the server,
// tears the journal's final record in half the way a crash mid-append
// would, restarts against the same data directory, and checks every
// job lands in exactly one typed terminal state with no lost or
// duplicated proofs. The same leak and arena invariants apply.
//
// With -batch (in-process only) the server runs the async batch
// planner (DESIGN.md §15) with two equal-weight keyed tenants and ZK
// disabled: each tenant pins a solo baseline proof, then all clients
// burst same-key jobs so the planner coalesces them into shared-
// structure batched attempts. Every batched proof must be byte-
// identical to its tenant's solo proof, /metrics must show real
// coalescing, and the scheduler ledger must show zero cross-tenant
// fairness regression — on top of the journal, leak, and arena
// invariants.
//
// With -cluster (in-process only) the server runs as a cluster
// coordinator (DESIGN.md §16) with local fallback off, a short lease
// TTL, and two in-process worker nodes proving with the real prover.
// Two equal-weight keyed tenants drive async jobs through the worker
// plane; mid-run, worker w0 is Kill()ed while holding a lease — node
// death, no goodbye — and a replacement node joins. The lease must
// expire and the parked attempt reassign with its budget refunded,
// clients must never see a 5xx, neither tenant may be shed or
// starved, and the usual journal, leak, and arena invariants close
// the run.
//
// Usage:
//
//	nocap-loadgen                          # in-process smoke, 8 clients, 15s cap
//	nocap-loadgen -requests 64 -clients 8
//	nocap-loadgen -addr 127.0.0.1:8080 -duration 30s
//	nocap-loadgen -jobs -requests 40       # async-jobs + crash-recovery smoke
//	nocap-loadgen -batch -requests 48      # batched-proving byte-identity + fairness soak
//	nocap-loadgen -cluster -requests 32    # distributed proving + node-death soak
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nocap"
	"nocap/internal/cluster"
	"nocap/internal/faultinject"
	"nocap/internal/jobs"
	"nocap/internal/leakcheck"
	"nocap/internal/server"
	"nocap/internal/tenant"
)

// outcome tallies one traffic kind's results.
type outcome struct {
	sent, ok, shed, violations int64
}

type harness struct {
	base   string
	client *http.Client
	n      int

	mu       sync.Mutex
	outcomes map[string]*outcome
	problems []string
}

func (h *harness) record(kind string, shed, violated bool, detail string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	o := h.outcomes[kind]
	if o == nil {
		o = &outcome{}
		h.outcomes[kind] = o
	}
	o.sent++
	switch {
	case violated:
		o.violations++
		if len(h.problems) < 20 {
			h.problems = append(h.problems, fmt.Sprintf("%s: %s", kind, detail))
		}
	case shed:
		o.shed++
	default:
		o.ok++
	}
}

func (h *harness) post(path string, body []byte) (*http.Response, []byte, error) {
	resp, err := h.client.Post(h.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, data, nil
}

func (h *harness) do(method, path string) (*http.Response, []byte, error) {
	return h.doAs(method, path, "")
}

func (h *harness) doAs(method, path, key string) (*http.Response, []byte, error) {
	req, err := http.NewRequest(method, h.base+path, nil)
	if err != nil {
		return nil, nil, err
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, data, nil
}

func (h *harness) get(path string) (*http.Response, []byte, error) {
	return h.do(http.MethodGet, path)
}

func (h *harness) getAs(path, key string) (*http.Response, []byte, error) {
	return h.doAs(http.MethodGet, path, key)
}

func (h *harness) del(path string) (*http.Response, []byte, error) {
	return h.do(http.MethodDelete, path)
}

// submitJob posts one async job and returns its id. On shed (429) or a
// protocol violation it records the outcome itself and reports ok=false.
func (h *harness) submitJob(kind string, n int) (string, bool) {
	return h.submitJobAs(kind, n, "")
}

// submitJobAs is submitJob with a tenant API key.
func (h *harness) submitJobAs(kind string, n int, key string) (string, bool) {
	body, _ := json.Marshal(server.ProveRequest{Circuit: "synthetic", N: n})
	resp, data, err := h.postAs("/jobs", key, body)
	if err != nil {
		h.record(kind, false, true, err.Error())
		return "", false
	}
	switch resp.StatusCode {
	case http.StatusAccepted:
		var jr server.JobResponse
		if json.Unmarshal(data, &jr) != nil || jr.ID == "" {
			h.record(kind, false, true, "202 without a job id")
			return "", false
		}
		return jr.ID, true
	case http.StatusTooManyRequests:
		h.record(kind, true, !typedError(data), "untyped 429")
		return "", false
	default:
		h.record(kind, false, true, fmt.Sprintf("submit status %d: %.120s", resp.StatusCode, data))
		return "", false
	}
}

// pollJob polls GET /jobs/{id} until the job reaches a terminal state.
// Status polls must come back payload-free (that contract is asserted
// here on every poll); once done, the proof is fetched with ?proof=1
// and the full response returned.
func (h *harness) pollJob(id string, budget time.Duration) (server.JobResponse, error) {
	return h.pollJobAs(id, budget, "")
}

// pollJobAs is pollJob with a tenant API key.
func (h *harness) pollJobAs(id string, budget time.Duration, key string) (server.JobResponse, error) {
	deadline := time.Now().Add(budget)
	for {
		resp, data, err := h.getAs("/jobs/"+id, key)
		if err != nil {
			return server.JobResponse{}, err
		}
		if resp.StatusCode != http.StatusOK {
			return server.JobResponse{}, fmt.Errorf("poll %s: status %d: %.120s", id, resp.StatusCode, data)
		}
		var jr server.JobResponse
		if err := json.Unmarshal(data, &jr); err != nil {
			return server.JobResponse{}, fmt.Errorf("poll %s: %w", id, err)
		}
		if jr.ProofB64 != "" {
			return server.JobResponse{}, fmt.Errorf("poll %s: status poll carried the proof payload", id)
		}
		if jobs.State(jr.State).Terminal() {
			if jr.State != string(jobs.StateDone) {
				return jr, nil
			}
			resp, data, err = h.getAs("/jobs/"+id+"?proof=1", key)
			if err != nil {
				return server.JobResponse{}, err
			}
			if resp.StatusCode != http.StatusOK {
				return server.JobResponse{}, fmt.Errorf("fetch proof %s: status %d: %.120s", id, resp.StatusCode, data)
			}
			if err := json.Unmarshal(data, &jr); err != nil {
				return server.JobResponse{}, fmt.Errorf("fetch proof %s: %w", id, err)
			}
			return jr, nil
		}
		if time.Now().After(deadline) {
			return server.JobResponse{}, fmt.Errorf("job %s still %q after %v", id, jr.State, budget)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// typedError reports whether a non-2xx body carries a taxonomy code.
func typedError(body []byte) bool {
	var er server.ErrorResponse
	return json.Unmarshal(body, &er) == nil && er.Code != ""
}

// fire sends one request of the given kind and records the outcome.
func (h *harness) fire(kind string, seedProof string) {
	switch kind {
	case "prove":
		body, _ := json.Marshal(server.ProveRequest{Circuit: "synthetic", N: h.n})
		resp, data, err := h.post("/prove", body)
		if err != nil {
			h.record(kind, false, true, err.Error())
			return
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var pr server.ProveResponse
			if json.Unmarshal(data, &pr) != nil || pr.ProofB64 == "" {
				h.record(kind, false, true, "200 without a complete proof body")
				return
			}
			if pr.Stats.Arena.Outstanding != 0 {
				h.record(kind, false, true, fmt.Sprintf("request leaked %d arena checkouts", pr.Stats.Arena.Outstanding))
				return
			}
			h.record(kind, false, false, "")
		case http.StatusTooManyRequests:
			h.record(kind, true, !typedError(data), "untyped 429")
		default:
			h.record(kind, false, true, fmt.Sprintf("status %d: %.120s", resp.StatusCode, data))
		}
	case "verify":
		body, _ := json.Marshal(server.VerifyRequest{Circuit: "synthetic", N: h.n, ProofB64: seedProof})
		resp, data, err := h.post("/verify", body)
		if err != nil {
			h.record(kind, false, true, err.Error())
			return
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var vr server.VerifyResponse
			if json.Unmarshal(data, &vr) != nil || !vr.Valid {
				h.record(kind, false, true, fmt.Sprintf("valid proof not accepted: %.120s", data))
				return
			}
			h.record(kind, false, false, "")
		case http.StatusTooManyRequests:
			h.record(kind, true, !typedError(data), "untyped 429")
		default:
			h.record(kind, false, true, fmt.Sprintf("status %d: %.120s", resp.StatusCode, data))
		}
	case "corrupt":
		c := []byte(seedProof)
		i := len(c) / 2
		if c[i] == 'A' {
			c[i] = 'B'
		} else {
			c[i] = 'A'
		}
		body, _ := json.Marshal(server.VerifyRequest{Circuit: "synthetic", N: h.n, ProofB64: string(c)})
		resp, data, err := h.post("/verify", body)
		if err != nil {
			h.record(kind, false, true, err.Error())
			return
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var vr server.VerifyResponse
			if json.Unmarshal(data, &vr) != nil || vr.Valid || vr.Code == "" {
				h.record(kind, false, true, fmt.Sprintf("corrupt proof mishandled: %.120s", data))
				return
			}
			h.record(kind, false, false, "")
		case http.StatusBadRequest:
			// Corruption may break framing instead of a soundness check.
			h.record(kind, false, !typedError(data), "untyped 400")
		case http.StatusTooManyRequests:
			h.record(kind, true, !typedError(data), "untyped 429")
		default:
			h.record(kind, false, true, fmt.Sprintf("status %d: %.120s", resp.StatusCode, data))
		}
	case "malformed":
		resp, data, err := h.post("/prove", []byte("{definitely not json"))
		if err != nil {
			h.record(kind, false, true, err.Error())
			return
		}
		if resp.StatusCode != http.StatusBadRequest || !typedError(data) {
			h.record(kind, false, true, fmt.Sprintf("status %d: %.120s", resp.StatusCode, data))
			return
		}
		h.record(kind, false, false, "")
	case "oversized":
		big := `{"circuit":"synthetic","n":64,"proof_b64":"` + strings.Repeat("A", 9<<20) + `"}`
		resp, data, err := h.post("/verify", []byte(big))
		if err != nil {
			h.record(kind, false, true, err.Error())
			return
		}
		if resp.StatusCode != http.StatusRequestEntityTooLarge || !typedError(data) {
			h.record(kind, false, true, fmt.Sprintf("status %d: %.120s", resp.StatusCode, data))
			return
		}
		h.record(kind, false, false, "")
	case "cancel":
		ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
		defer cancel()
		body, _ := json.Marshal(server.ProveRequest{Circuit: "synthetic", N: 4 * h.n})
		req, _ := http.NewRequestWithContext(ctx, "POST", h.base+"/prove", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		resp, err := h.client.Do(req)
		if err == nil {
			resp.Body.Close() // finished before the cancel landed; fine
		}
		// Either way the server must survive; violations show up as
		// failures in the other kinds or the final invariants.
		h.record(kind, false, false, "")
	case "job-prove":
		id, ok := h.submitJob(kind, h.n)
		if !ok {
			return
		}
		info, err := h.pollJob(id, time.Minute)
		if err != nil {
			h.record(kind, false, true, err.Error())
			return
		}
		if info.State != string(jobs.StateDone) || info.ProofB64 == "" || info.Attempts < 1 {
			h.record(kind, false, true, fmt.Sprintf("job %s ended %q (code %q), attempts %d",
				id, info.State, info.Code, info.Attempts))
			return
		}
		h.record(kind, false, false, "")
	case "job-cancel":
		id, ok := h.submitJob(kind, 4*h.n)
		if !ok {
			return
		}
		resp, data, err := h.del("/jobs/" + id)
		if err != nil {
			h.record(kind, false, true, err.Error())
			return
		}
		// 202 means the cancel landed on a running job, 200 that the job
		// was already cancelled when the cancel was applied, 409 that it
		// raced to done/failed first. All three are legal — anything else
		// is not.
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK &&
			(resp.StatusCode != http.StatusConflict || !typedError(data)) {
			h.record(kind, false, true, fmt.Sprintf("cancel status %d: %.120s", resp.StatusCode, data))
			return
		}
		info, err := h.pollJob(id, time.Minute)
		if err != nil {
			h.record(kind, false, true, err.Error())
			return
		}
		if info.State != string(jobs.StateCancelled) && info.State != string(jobs.StateDone) {
			h.record(kind, false, true, fmt.Sprintf("cancelled job %s ended %q (code %q)",
				id, info.State, info.Code))
			return
		}
		h.record(kind, false, false, "")
	case "job-bad":
		resp, data, err := h.post("/jobs", []byte(`{"circuit":"no-such-circuit","n":64}`))
		if err != nil {
			h.record(kind, false, true, err.Error())
			return
		}
		// Validation happens before the journal: a bad spec must be a
		// synchronous typed 400, never an accepted job that later fails.
		if resp.StatusCode != http.StatusBadRequest || !typedError(data) {
			h.record(kind, false, true, fmt.Sprintf("status %d: %.120s", resp.StatusCode, data))
			return
		}
		h.record(kind, false, false, "")
	}
}

var trafficMix = []string{
	"prove", "prove", "verify", "verify", "corrupt", "malformed", "oversized", "cancel",
}

// jobTrafficMix drives -jobs runs: mostly full submit→poll→done cycles,
// with cancels and malformed submissions mixed in.
var jobTrafficMix = []string{
	"job-prove", "job-prove", "job-prove", "job-cancel", "job-bad",
}

// drive fans requests out over client goroutines until the request
// count or the time budget runs out, and returns the elapsed wall time.
func (h *harness) drive(clients, requests int, duration time.Duration, mix []string, seedProof string) time.Duration {
	deadline := time.Now().Add(duration)
	var next int64
	var mu sync.Mutex
	take := func() (string, bool) {
		mu.Lock()
		defer mu.Unlock()
		if requests > 0 && next >= int64(requests) {
			return "", false
		}
		if time.Now().After(deadline) {
			return "", false
		}
		kind := mix[next%int64(len(mix))]
		next++
		return kind, true
	}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for {
				kind, ok := take()
				if !ok {
					return
				}
				h.fire(kind, seedProof)
				if rng.Intn(4) == 0 {
					time.Sleep(time.Duration(rng.Intn(5)) * time.Millisecond)
				}
			}
		}(c)
	}
	wg.Wait()
	return time.Since(start)
}

func run() (failed bool, err error) {
	addr := flag.String("addr", "", "server address; empty starts an in-process server")
	clients := flag.Int("clients", 8, "concurrent client goroutines")
	requests := flag.Int("requests", 64, "total requests to send (0 = until -duration)")
	duration := flag.Duration("duration", 15*time.Second, "time budget for the run")
	n := flag.Int("n", 256, "circuit size parameter for prove/verify traffic")
	workers := flag.Int("workers", 4, "in-process mode: proving workers")
	queue := flag.Int("queue", 4, "in-process mode: admission queue depth")
	jobsMode := flag.Bool("jobs", false, "exercise the durable async /jobs API (in-process only), including a crash-window journal-tear restart")
	tenants := flag.Int("tenants", 0, "multi-tenant fairness mode (in-process only): N keyed tenants, tenant t0 weighted 4x")
	skew := flag.String("skew", "zipf", "-tenants traffic skew: zipf (t0-heavy) or uniform")
	batchMode := flag.Bool("batch", false, "batched-proving soak (in-process only): coalesced async jobs must prove byte-identical to solo with no cross-tenant fairness regression")
	clusterMode := flag.Bool("cluster", false, "distributed-proving soak (in-process only): coordinator + worker nodes with a mid-run node kill; no client may see a 5xx")
	flag.Parse()

	if *clusterMode {
		if *addr != "" {
			return true, fmt.Errorf("-cluster mode is in-process only; drop -addr")
		}
		return runClusterSoak(*clients, *requests, *duration, *n, *workers, *queue)
	}
	if *batchMode {
		if *addr != "" {
			return true, fmt.Errorf("-batch mode is in-process only; drop -addr")
		}
		return runBatchSoak(*clients, *requests, *duration, *n, *workers, *queue)
	}
	if *jobsMode {
		if *addr != "" {
			return true, fmt.Errorf("-jobs mode is in-process only; drop -addr")
		}
		return runJobs(*clients, *requests, *duration, *n, *workers, *queue)
	}
	if *tenants > 0 {
		if *addr != "" {
			return true, fmt.Errorf("-tenants mode is in-process only; drop -addr")
		}
		if *tenants < 2 {
			return true, fmt.Errorf("-tenants needs at least 2 tenants to say anything about fairness")
		}
		if *skew != "zipf" && *skew != "uniform" {
			return true, fmt.Errorf("-skew must be zipf or uniform, got %q", *skew)
		}
		return runTenants(*clients, *requests, *duration, *n, *workers, *queue, *tenants, *skew)
	}

	var snap *leakcheck.Snapshot
	var arenaBefore nocap.ArenaStats
	var srv *server.Server
	base := *addr
	if base == "" {
		snap = leakcheck.Take()
		arenaBefore = nocap.ReadProveStats().Arena
		var nerr error
		srv, nerr = server.New(server.Config{
			Addr:           "127.0.0.1:0",
			Workers:        *workers,
			QueueDepth:     *queue,
			MemoryBudgetMB: 8,
			Params:         nocap.TestParams(),
		})
		if nerr != nil {
			return true, nerr
		}
		bound, lerr := srv.Listen()
		if lerr != nil {
			return true, lerr
		}
		go srv.Serve()
		base = bound.String()
		fmt.Printf("nocap-loadgen: in-process server on %s (%d workers, queue %d)\n",
			base, *workers, *queue)
	}

	h := &harness{
		base:     "http://" + base,
		client:   &http.Client{Timeout: 2 * time.Minute},
		n:        *n,
		outcomes: make(map[string]*outcome),
	}

	// One seed proof for the verify traffic.
	body, _ := json.Marshal(server.ProveRequest{Circuit: "synthetic", N: *n})
	resp, data, err := h.post("/prove", body)
	if err != nil {
		return true, fmt.Errorf("seed prove: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return true, fmt.Errorf("seed prove: status %d: %.200s", resp.StatusCode, data)
	}
	var seed server.ProveResponse
	if err := json.Unmarshal(data, &seed); err != nil {
		return true, fmt.Errorf("seed prove response: %w", err)
	}

	elapsed := h.drive(*clients, *requests, *duration, trafficMix, seed.ProofB64)

	if srv != nil {
		if err := drain(srv); err != nil {
			return true, fmt.Errorf("drain: %w", err)
		}
	}

	_, violations := report(h, *clients, elapsed)
	if srv != nil {
		failed = checkProcessInvariants(snap, arenaBefore)
	}
	if violations > 0 {
		failed = true
	}
	return failed, nil
}

// report prints the per-kind outcome table and returns totals.
func report(h *harness, clients int, elapsed time.Duration) (sent, violations int64) {
	kinds := make([]string, 0, len(h.outcomes))
	for k := range h.outcomes {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Printf("nocap-loadgen: %d clients, %v\n", clients, elapsed.Round(time.Millisecond))
	fmt.Printf("%-10s %6s %6s %6s %10s\n", "kind", "sent", "ok", "shed", "violations")
	for _, k := range kinds {
		o := h.outcomes[k]
		fmt.Printf("%-10s %6d %6d %6d %10d\n", k, o.sent, o.ok, o.shed, o.violations)
		sent += o.sent
		violations += o.violations
	}
	for _, p := range h.problems {
		fmt.Printf("  violation: %s\n", p)
	}
	fmt.Printf("nocap-loadgen: %d requests, %d violations\n", sent, violations)
	return sent, violations
}

// checkProcessInvariants asserts the in-process end state: every
// goroutine the service and the runs started is gone, and no scratch
// is stranded in the arena.
func checkProcessInvariants(snap *leakcheck.Snapshot, arenaBefore nocap.ArenaStats) (failed bool) {
	if leaked := snap.Leaked(5 * time.Second); len(leaked) > 0 {
		failed = true
		fmt.Printf("FAIL: %d leaked goroutine signature(s):\n", len(leaked))
		for _, sig := range leaked {
			fmt.Printf("  %s\n", sig)
		}
	}
	arenaAfter := nocap.ReadProveStats().Arena
	if arenaAfter.Outstanding != arenaBefore.Outstanding ||
		arenaAfter.OutstandingElems != arenaBefore.OutstandingElems {
		failed = true
		fmt.Printf("FAIL: arena checkouts leaked: %d outstanding (%d elems) vs baseline %d (%d)\n",
			arenaAfter.Outstanding, arenaAfter.OutstandingElems,
			arenaBefore.Outstanding, arenaBefore.OutstandingElems)
	}
	if arenaAfter.DoubleReturns != arenaBefore.DoubleReturns {
		failed = true
		fmt.Printf("FAIL: %d arena double returns during the run\n",
			arenaAfter.DoubleReturns-arenaBefore.DoubleReturns)
	}
	return failed
}

func drain(srv *server.Server) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

// postAs is post with a tenant API key attached.
func (h *harness) postAs(path, key string, body []byte) (*http.Response, []byte, error) {
	req, err := http.NewRequest(http.MethodPost, h.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, data, nil
}

// fireTenant sends one prove or verify as the given tenant. Outcomes
// are recorded under the tenant's ID so the fairness report reads per
// tenant, and a 429 naming any OTHER tenant is a protocol violation —
// quota errors must never bleed across tenants.
func (h *harness) fireTenant(tenantID, key, kind, seedProof string) {
	var body []byte
	path := "/prove"
	if kind == "verify" {
		body, _ = json.Marshal(server.VerifyRequest{Circuit: "synthetic", N: h.n, ProofB64: seedProof})
		path = "/verify"
	} else {
		body, _ = json.Marshal(server.ProveRequest{Circuit: "synthetic", N: h.n})
	}
	resp, data, err := h.postAs(path, key, body)
	if err != nil {
		h.record(tenantID, false, true, err.Error())
		return
	}
	switch resp.StatusCode {
	case http.StatusOK:
		h.record(tenantID, false, false, "")
	case http.StatusTooManyRequests:
		var er server.ErrorResponse
		if json.Unmarshal(data, &er) != nil || er.Code == "" {
			h.record(tenantID, true, true, "untyped 429")
			return
		}
		if er.Tenant != tenantID {
			h.record(tenantID, true, true, fmt.Sprintf(
				"429 for tenant %s blamed on %q: cross-tenant quota bleed", tenantID, er.Tenant))
			return
		}
		h.record(tenantID, true, false, "")
	default:
		h.record(tenantID, false, true, fmt.Sprintf("status %d: %.120s", resp.StatusCode, data))
	}
}

// runTenants is the -tenants mode: an in-process server with N keyed
// tenants (t0 carries DRR weight 4, the rest weight 1), skewed traffic
// (zipf concentrates most load on t0), and fairness assertions on top
// of the usual typed-response, leak, and arena invariants:
//
//   - light tenants are never shed by t0's backlog (zero queue-full
//     429s on their queues — per-tenant isolation),
//   - every light-tenant request admitted is served (no starvation),
//   - light tenants do not queue dramatically longer than the heavy
//     tenant that is causing all the contention.
func runTenants(clients, requests int, duration time.Duration, n, workers, queue, nTenants int, skew string) (failed bool, err error) {
	snap := leakcheck.Take()
	arenaBefore := nocap.ReadProveStats().Arena

	cfgs := make([]tenant.Config, nTenants)
	keys := make([]string, nTenants)
	for i := range cfgs {
		w := 1
		depth := clients // a light tenant can absorb every client at once
		if i == 0 {
			w = 4
			depth = queue // the heavy tenant's queue is the one meant to overflow
		}
		keys[i] = fmt.Sprintf("key-t%d", i)
		cfgs[i] = tenant.Config{ID: fmt.Sprintf("t%d", i), Key: keys[i], Weight: w, QueueDepth: depth}
	}
	srv, err := server.New(server.Config{
		Addr:           "127.0.0.1:0",
		Workers:        workers,
		QueueDepth:     queue,
		MemoryBudgetMB: 8,
		Params:         nocap.TestParams(),
		Tenants:        cfgs,
	})
	if err != nil {
		return true, err
	}
	bound, err := srv.Listen()
	if err != nil {
		return true, err
	}
	go srv.Serve()
	fmt.Printf("nocap-loadgen: in-process multi-tenant server on %s (%d tenants, %s skew, %d workers)\n",
		bound, nTenants, skew, workers)

	h := &harness{
		base:     "http://" + bound.String(),
		client:   &http.Client{Timeout: 2 * time.Minute},
		n:        n,
		outcomes: make(map[string]*outcome),
	}
	body, _ := json.Marshal(server.ProveRequest{Circuit: "synthetic", N: n})
	resp, data, err := h.post("/prove", body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return true, fmt.Errorf("seed prove: %v status %v: %.200s", err, resp.StatusCode, data)
	}
	var seed server.ProveResponse
	if err := json.Unmarshal(data, &seed); err != nil {
		return true, fmt.Errorf("seed prove response: %w", err)
	}

	start := time.Now()
	deadline := start.Add(duration)
	var next int64
	var mu sync.Mutex
	take := func() bool {
		mu.Lock()
		defer mu.Unlock()
		if requests > 0 && next >= int64(requests) {
			return false
		}
		next++
		return !time.Now().After(deadline)
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			// Zipf rank 0 is tenant t0: the heavy hitter.
			zipf := rand.NewZipf(rng, 1.5, 1, uint64(nTenants-1))
			for i := 0; take(); i++ {
				ti := int(zipf.Uint64())
				if skew == "uniform" {
					ti = rng.Intn(nTenants)
				}
				kind := "prove"
				if i%3 == 2 {
					kind = "verify"
				}
				h.fireTenant(cfgs[ti].ID, keys[ti], kind, seed.ProofB64)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	stats := srv.TenantStats()
	if err := drain(srv); err != nil {
		return true, fmt.Errorf("drain: %w", err)
	}

	_, violations := report(h, clients, elapsed)
	if violations > 0 {
		failed = true
	}

	// Fairness assertions over the scheduler's own ledger.
	var heavy tenantStat
	lights := make([]tenantStat, 0, nTenants-1)
	for _, qs := range stats {
		ts := tenantStat{id: qs.ID, stats: qs}
		if qs.ID == "t0" {
			heavy = ts
		} else if qs.ID != "default" {
			lights = append(lights, ts)
		}
	}
	heavyWait := meanWait(heavy.stats)
	fmt.Printf("nocap-loadgen: heavy %s served %d (shed %d, mean wait %v)\n",
		heavy.id, heavy.stats.Dequeued, heavy.stats.RejectedFull, heavyWait.Round(time.Microsecond))
	for _, l := range lights {
		w := meanWait(l.stats)
		fmt.Printf("nocap-loadgen: light %s served %d (shed %d, mean wait %v)\n",
			l.id, l.stats.Dequeued, l.stats.RejectedFull, w.Round(time.Microsecond))
		if l.stats.RejectedFull != 0 {
			failed = true
			fmt.Printf("FAIL: light tenant %s shed %d requests queue-full; the heavy tenant's backlog leaked into its queue\n",
				l.id, l.stats.RejectedFull)
		}
		if l.stats.Dequeued != l.stats.Enqueued {
			failed = true
			fmt.Printf("FAIL: light tenant %s admitted %d but served %d: starved work left behind\n",
				l.id, l.stats.Enqueued, l.stats.Dequeued)
		}
		// The starvation bound, loosely: a weight-1 tenant under a 4x
		// heavy neighbour still gets served within a small number of
		// rotations, so its queue wait stays within a small multiple of
		// the wait the heavy tenant imposes on itself. The factor is
		// deliberately generous — this is a soak, not a microbenchmark.
		if l.stats.Dequeued > 0 && w > 4*heavyWait+200*time.Millisecond {
			failed = true
			fmt.Printf("FAIL: light tenant %s mean queue wait %v vs heavy %v: starvation bound violated\n",
				l.id, w, heavyWait)
		}
	}
	if checkProcessInvariants(snap, arenaBefore) {
		failed = true
	}
	if !failed {
		fmt.Printf("nocap-loadgen: tenants run clean (%d tenants, %s skew)\n", nTenants, skew)
	}
	return failed, nil
}

type tenantStat struct {
	id    string
	stats tenant.QueueStats
}

func meanWait(qs tenant.QueueStats) time.Duration {
	if qs.Dequeued == 0 {
		return 0
	}
	return time.Duration(qs.QueueWaitNs / qs.Dequeued)
}

// runJobs is the -jobs mode: an in-process server with a durable data
// dir, async submit/poll/cancel traffic, then a crash-window pass that
// parks jobs in flight, drains the server (crash-equivalent: interrupted
// attempts leave no terminal record), tears the journal's final record
// in half, restarts against the same directory, and checks every job
// comes back with exactly one typed terminal state.
func runJobs(clients, requests int, duration time.Duration, n, workers, queue int) (failed bool, err error) {
	snap := leakcheck.Take()
	arenaBefore := nocap.ReadProveStats().Arena
	dir, err := os.MkdirTemp("", "nocap-loadgen-jobs-")
	if err != nil {
		return true, err
	}
	defer os.RemoveAll(dir)

	boot := func() (*server.Server, string, error) {
		srv, err := server.New(server.Config{
			Addr:           "127.0.0.1:0",
			Workers:        workers,
			QueueDepth:     queue,
			MemoryBudgetMB: 8,
			Params:         nocap.TestParams(),
			DataDir:        dir,
			JobBackoffBase: 5 * time.Millisecond,
			JobBackoffMax:  50 * time.Millisecond,
		})
		if err != nil {
			return nil, "", err
		}
		bound, err := srv.Listen()
		if err != nil {
			return nil, "", err
		}
		go srv.Serve()
		base := "http://" + bound.String()
		if err := waitReady(base, 10*time.Second); err != nil {
			return nil, "", err
		}
		return srv, base, nil
	}
	srv, base, err := boot()
	if err != nil {
		return true, err
	}
	fmt.Printf("nocap-loadgen: in-process jobs server on %s (journal in %s)\n", base, dir)

	h := &harness{
		base:     base,
		client:   &http.Client{Timeout: 2 * time.Minute},
		n:        n,
		outcomes: make(map[string]*outcome),
	}
	elapsed := h.drive(clients, requests, duration, jobTrafficMix, "")

	// Crash window: park a few jobs in flight and drain mid-run. The
	// drain is deliberately crash-equivalent — interrupted attempts
	// revert in memory without terminal journal records — and the tear
	// below adds the torn write a real crash can leave mid-append.
	var crashIDs []string
	for i := 0; i < 3; i++ {
		if id, ok := h.submitJob("job-crash", 4*n); ok {
			crashIDs = append(crashIDs, id)
		}
	}
	if err := drain(srv); err != nil {
		return true, fmt.Errorf("drain before crash window: %w", err)
	}
	journalPath := filepath.Join(dir, "journal.jsonl")
	if err := tearJournal(journalPath); err != nil {
		return true, fmt.Errorf("tear journal: %w", err)
	}

	srv, base, err = boot()
	if err != nil {
		return true, fmt.Errorf("restart after crash window: %w", err)
	}
	h.base = base

	// The restarted server must have noticed exactly the one tear.
	if resp, data, merr := h.get("/metrics"); merr != nil || resp.StatusCode != http.StatusOK {
		h.record("job-crash", false, true, fmt.Sprintf("metrics after restart: %v", merr))
	} else if !strings.Contains(string(data), "nocap_jobs_torn_records_total 1") {
		h.record("job-crash", false, true, "restarted server did not report exactly one torn journal record")
	}

	// Every crash-window job must land in exactly one typed terminal
	// state: done (recovered and re-proved, or proved before the drain),
	// or a typed 404 if the torn record was its own accepted record —
	// tearing one record can lose at most one job.
	notFound := 0
	for _, id := range crashIDs {
		resp, data, gerr := h.get("/jobs/" + id)
		if gerr != nil {
			h.record("job-crash", false, true, gerr.Error())
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			if !typedError(data) {
				h.record("job-crash", false, true, "untyped 404 after restart")
				continue
			}
			notFound++
			h.record("job-crash", false, false, "")
			continue
		}
		info, perr := h.pollJob(id, time.Minute)
		if perr != nil {
			h.record("job-crash", false, true, perr.Error())
			continue
		}
		if info.State != string(jobs.StateDone) || info.ProofB64 == "" {
			h.record("job-crash", false, true, fmt.Sprintf("job %s ended %q (code %q) after recovery",
				id, info.State, info.Code))
			continue
		}
		h.record("job-crash", false, false, "")
	}
	if notFound > 1 {
		h.record("job-crash", false, true,
			fmt.Sprintf("%d jobs lost, but tearing one record can lose at most one", notFound))
	}

	if err := drain(srv); err != nil {
		return true, fmt.Errorf("final drain: %w", err)
	}

	// With everything drained, the journal is the proof ledger: at most
	// one terminal record per job, ever.
	if msg := journalTerminalViolation(journalPath); msg != "" {
		h.record("journal", false, true, msg)
	}

	// Durable-state lifecycle soak (DESIGN.md §13): compaction keeps the
	// journal bounded with zero lost terminal states, and sustained disk
	// failure degrades — then recovers — the durable path only.
	if err := durabilitySoak(h, n, workers, queue); err != nil {
		return true, err
	}

	_, violations := report(h, clients, elapsed)
	failed = checkProcessInvariants(snap, arenaBefore)
	if violations > 0 {
		failed = true
	}
	return failed, nil
}

// runBatchSoak is the -batch mode: an in-process server with the async
// batch planner on (DESIGN.md §15), two equal-weight keyed tenants, and
// ZK disabled so proofs are deterministic. Each tenant first proves one
// job solo (a singleton group bypasses BatchExec), then all clients
// burst same-key jobs for both tenants. Every batched proof must be
// byte-identical to its tenant's solo proof, coalescing must actually
// have happened (batch counters on /metrics), and the scheduler ledger
// must show no cross-tenant fairness regression: no queue-full sheds,
// no stranded work, no wait-time divergence under equal load. The
// usual journal, leak, and arena invariants close the run.
func runBatchSoak(clients, requests int, duration time.Duration, n, workers, queue int) (failed bool, err error) {
	snap := leakcheck.Take()
	arenaBefore := nocap.ReadProveStats().Arena
	dir, err := os.MkdirTemp("", "nocap-loadgen-batch-")
	if err != nil {
		return true, err
	}
	defer os.RemoveAll(dir)

	// ZK off so batched output can be byte-compared against the solo
	// path. The plan never shares witness randomness, so this only makes
	// the equality checkable — it does not paper over a leak.
	params := nocap.TestParams()
	params.PCS.ZK = false
	keys := []string{"key-t0", "key-t1"}
	cfgs := []tenant.Config{
		{ID: "t0", Key: keys[0], Weight: 1, QueueDepth: clients + queue},
		{ID: "t1", Key: keys[1], Weight: 1, QueueDepth: clients + queue},
	}
	srv, err := server.New(server.Config{
		Addr:           "127.0.0.1:0",
		Workers:        workers,
		QueueDepth:     queue,
		MemoryBudgetMB: 8,
		Params:         params,
		Tenants:        cfgs,
		DataDir:        dir,
		JobBackoffBase: 5 * time.Millisecond,
		JobBackoffMax:  50 * time.Millisecond,
		JobBatchWindow: 20 * time.Millisecond,
		JobBatchMax:    8,
	})
	if err != nil {
		return true, err
	}
	bound, err := srv.Listen()
	if err != nil {
		return true, err
	}
	go srv.Serve()
	base := "http://" + bound.String()
	if err := waitReady(base, 10*time.Second); err != nil {
		return true, err
	}
	fmt.Printf("nocap-loadgen: in-process batch server on %s (window 20ms, max 8, journal in %s)\n",
		bound, dir)

	h := &harness{
		base:     base,
		client:   &http.Client{Timeout: 2 * time.Minute},
		n:        n,
		outcomes: make(map[string]*outcome),
	}

	// Per-tenant solo baselines: a lone job's group times out alone and
	// proves through the solo Exec path, pinning the reference bytes.
	solo := make([]string, len(keys))
	for ti, key := range keys {
		kind := "batch-" + cfgs[ti].ID
		id, ok := h.submitJobAs(kind, n, key)
		if !ok {
			return true, fmt.Errorf("solo baseline submit for %s failed", cfgs[ti].ID)
		}
		jr, perr := h.pollJobAs(id, time.Minute, key)
		if perr != nil {
			return true, fmt.Errorf("solo baseline for %s: %w", cfgs[ti].ID, perr)
		}
		if jr.State != string(jobs.StateDone) || jr.ProofB64 == "" {
			return true, fmt.Errorf("solo baseline for %s ended %q (code %q)", cfgs[ti].ID, jr.State, jr.Code)
		}
		h.record(kind, false, false, "")
		solo[ti] = jr.ProofB64
	}

	// Burst: every client alternates tenants submitting the same job key,
	// so the planner sees coalescing opportunities under contention.
	start := time.Now()
	deadline := start.Add(duration)
	var next int64
	var mu sync.Mutex
	take := func() bool {
		mu.Lock()
		defer mu.Unlock()
		if requests > 0 && next >= int64(requests) {
			return false
		}
		next++
		return !time.Now().After(deadline)
	}
	ids := make([][]string, len(keys))
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; take(); i++ {
				ti := (c + i) % len(keys)
				if id, ok := h.submitJobAs("batch-"+cfgs[ti].ID, n, keys[ti]); ok {
					mu.Lock()
					ids[ti] = append(ids[ti], id)
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()

	// Every admitted job must land done with the solo proof bytes: the
	// shared-structure plan may amortize work, never change output — and
	// batching one tenant's jobs must not strand the other's.
	for ti, tenantIDs := range ids {
		kind := "batch-" + cfgs[ti].ID
		for _, id := range tenantIDs {
			jr, perr := h.pollJobAs(id, time.Minute, keys[ti])
			if perr != nil {
				h.record(kind, false, true, perr.Error())
				continue
			}
			switch {
			case jr.State != string(jobs.StateDone):
				h.record(kind, false, true, fmt.Sprintf("job %s ended %q (code %q)", id, jr.State, jr.Code))
			case jr.ProofB64 != solo[ti]:
				h.record(kind, false, true, fmt.Sprintf(
					"job %s proof differs from the solo baseline (%d vs %d b64 bytes)",
					id, len(jr.ProofB64), len(solo[ti])))
			default:
				h.record(kind, false, false, "")
			}
		}
	}
	elapsed := time.Since(start)

	// The run only says something if coalescing actually happened.
	if resp, data, merr := h.get("/metrics"); merr != nil || resp.StatusCode != http.StatusOK {
		h.record("batch-metrics", false, true, fmt.Sprintf("metrics: %v", merr))
	} else {
		text := string(data)
		batches := metricValue(text, "nocap_batches_total")
		saves := metricValue(text, "nocap_batch_amortized_saves_total")
		if batches < 1 || saves < 1 {
			h.record("batch-metrics", false, true, fmt.Sprintf(
				"no coalescing observed (%d batches, %d amortized saves): widen -batch window or raise -clients",
				batches, saves))
		} else {
			h.record("batch-metrics", false, false, "")
			fmt.Printf("nocap-loadgen: %d batches coalesced, %d member setups amortized away\n",
				batches, saves)
		}
	}

	// Fairness over the scheduler's own ledger: equal weights and equal
	// load, so batching must not shed, strand, or slow either tenant
	// relative to the other.
	stats := srv.TenantStats()
	if err := drain(srv); err != nil {
		return true, fmt.Errorf("drain: %w", err)
	}
	waits := make(map[string]time.Duration, len(stats))
	for _, qs := range stats {
		if qs.ID == "default" {
			continue
		}
		w := meanWait(qs)
		waits[qs.ID] = w
		fmt.Printf("nocap-loadgen: tenant %s served %d (shed %d, mean wait %v)\n",
			qs.ID, qs.Dequeued, qs.RejectedFull, w.Round(time.Microsecond))
		if qs.RejectedFull != 0 {
			failed = true
			fmt.Printf("FAIL: tenant %s shed %d queue-full under equal load: batching broke per-tenant isolation\n",
				qs.ID, qs.RejectedFull)
		}
		if qs.Dequeued != qs.Enqueued {
			failed = true
			fmt.Printf("FAIL: tenant %s admitted %d but served %d: the batch planner stranded work\n",
				qs.ID, qs.Enqueued, qs.Dequeued)
		}
	}
	// The divergence bound is deliberately generous — this is a soak,
	// not a microbenchmark — but a batching path that bypassed the DRR
	// charge would blow way past it.
	if w0, w1 := waits["t0"], waits["t1"]; w0 > 4*w1+200*time.Millisecond || w1 > 4*w0+200*time.Millisecond {
		failed = true
		fmt.Printf("FAIL: tenant queue waits diverged under equal load (t0 %v vs t1 %v): batching skewed fairness\n",
			w0, w1)
	}

	// Drained, the journal is the ledger: one terminal record per job.
	if msg := journalTerminalViolation(filepath.Join(dir, "journal.jsonl")); msg != "" {
		h.record("journal", false, true, msg)
	}

	_, violations := report(h, clients, elapsed)
	if checkProcessInvariants(snap, arenaBefore) {
		failed = true
	}
	if violations > 0 {
		failed = true
	}
	if !failed {
		fmt.Printf("nocap-loadgen: batch run clean (byte-identical proofs, fairness intact)\n")
	}
	return failed, nil
}

// runClusterSoak is the -cluster mode: the in-process server runs as a
// cluster coordinator (DESIGN.md §16) with local fallback OFF and a
// short lease TTL, and two in-process worker nodes prove with the real
// prover over the h2c worker plane. Two equal-weight keyed tenants
// drive async jobs end to end; mid-run, worker w0 is Kill()ed while it
// provably holds a lease (its exec is trapped first), and a
// replacement node joins. The soak asserts:
//
//   - zero 5xx ever reaches a client — every submit is a 202 (or a
//     typed 429 shed) and every poll a 200; the node death is absorbed
//     entirely by lease expiry + reassignment,
//   - the parked attempt is refunded and re-proved (lease-expiry and
//     reassign counters move; local fallback stays at zero),
//   - neither tenant is shed queue-full or leaves stranded work, and
//     their mean queue waits do not diverge under equal load,
//   - the drained journal holds at most one terminal record per job,
//   - zero leaked goroutines and a balanced arena.
func runClusterSoak(clients, requests int, duration time.Duration, n, workers, queue int) (failed bool, err error) {
	snap := leakcheck.Take()
	arenaBefore := nocap.ReadProveStats().Arena
	dir, err := os.MkdirTemp("", "nocap-loadgen-cluster-")
	if err != nil {
		return true, err
	}
	defer os.RemoveAll(dir)

	const leaseTTL = 500 * time.Millisecond
	params := nocap.TestParams()
	keys := []string{"key-t0", "key-t1"}
	cfgs := []tenant.Config{
		{ID: "t0", Key: keys[0], Weight: 1, QueueDepth: clients + queue},
		{ID: "t1", Key: keys[1], Weight: 1, QueueDepth: clients + queue},
	}
	srv, err := server.New(server.Config{
		Addr:                 "127.0.0.1:0",
		Workers:              workers,
		QueueDepth:           queue,
		MemoryBudgetMB:       8,
		Params:               params,
		Tenants:              cfgs,
		DataDir:              dir,
		JobBackoffBase:       5 * time.Millisecond,
		JobBackoffMax:        50 * time.Millisecond,
		ClusterEnabled:       true,
		ClusterLeaseTTL:      leaseTTL,
		ClusterLocalFallback: false,
		ClusterSeed:          1,
	})
	if err != nil {
		return true, err
	}
	bound, err := srv.Listen()
	if err != nil {
		return true, err
	}
	go srv.Serve()
	base := "http://" + bound.String()
	if err := waitReady(base, 10*time.Second); err != nil {
		return true, err
	}
	fmt.Printf("nocap-loadgen: in-process cluster coordinator on %s (lease TTL %v, no local fallback, journal in %s)\n",
		bound, leaseTTL, dir)

	// The nodes prove with the real prover — the same Params the
	// coordinator would use in-process, fitted per circuit.
	prover := cluster.NewProver(cluster.ProverConfig{Params: params, Timeout: time.Minute})

	// w0's exec can be "trapped": once armed, its next assignment parks
	// until the node dies. That pins a lease on w0 at kill time, so the
	// death deterministically exercises expiry + reassignment instead of
	// racing the prover.
	var trap atomic.Bool
	var trapOnce sync.Once
	trapped := make(chan struct{})
	trapExec := func(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
		if trap.Load() {
			trapOnce.Do(func() { close(trapped) })
			<-ctx.Done()
			return jobs.Result{}, ctx.Err()
		}
		return prover.Exec(ctx, spec)
	}
	startWorker := func(id string, exec jobs.Exec, seed int64) (*cluster.Worker, error) {
		w, werr := cluster.NewWorker(cluster.WorkerConfig{
			Coordinator: base,
			ID:          id,
			Slots:       2,
			PollWait:    200 * time.Millisecond,
			RetryBase:   5 * time.Millisecond,
			Exec:        exec,
			BatchExec:   prover.BatchExec,
			Seed:        seed,
		})
		if werr != nil {
			return nil, werr
		}
		w.Start()
		return w, nil
	}
	w0, err := startWorker("w0", trapExec, 21)
	if err != nil {
		return true, err
	}
	w1, err := startWorker("w1", prover.Exec, 22)
	if err != nil {
		return true, err
	}

	h := &harness{
		base:     base,
		client:   &http.Client{Timeout: 2 * time.Minute},
		n:        n,
		outcomes: make(map[string]*outcome),
	}

	// A node only exists once its first poll lands; traffic before that
	// would be shed no_workers. Gate each phase on the health table.
	waitLive := func(want int) error {
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, data, gerr := h.get("/healthz")
			if gerr == nil && resp.StatusCode == http.StatusOK {
				var body struct {
					Cluster struct {
						LiveNodes int `json:"live_nodes"`
					} `json:"cluster"`
				}
				if json.Unmarshal(data, &body) == nil && body.Cluster.LiveNodes >= want {
					return nil
				}
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("cluster never reached %d live nodes", want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if err := waitLive(2); err != nil {
		return true, err
	}

	// Full submit→poll→done cycles as alternating tenants. Any non-202
	// submit (beyond a typed 429 shed) and any non-200 poll is recorded
	// as a violation — that is the zero-5xx assertion.
	fireCluster := func(ti, nn int) {
		kind := "cluster-" + cfgs[ti].ID
		id, ok := h.submitJobAs(kind, nn, keys[ti])
		if !ok {
			return
		}
		info, perr := h.pollJobAs(id, time.Minute, keys[ti])
		if perr != nil {
			h.record(kind, false, true, perr.Error())
			return
		}
		if info.State != string(jobs.StateDone) || info.ProofB64 == "" || info.Attempts < 1 {
			h.record(kind, false, true, fmt.Sprintf("job %s ended %q (code %q), attempts %d",
				id, info.State, info.Code, info.Attempts))
			return
		}
		h.record(kind, false, false, "")
	}
	deadline := time.Now().Add(duration)
	driveCluster := func(total int) {
		var next int64
		var mu sync.Mutex
		take := func() (int, bool) {
			mu.Lock()
			defer mu.Unlock()
			if next >= int64(total) || time.Now().After(deadline) {
				return 0, false
			}
			ti := int(next) % len(cfgs)
			next++
			return ti, true
		}
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					ti, ok := take()
					if !ok {
						return
					}
					fireCluster(ti, n)
				}
			}()
		}
		wg.Wait()
	}

	start := time.Now()
	driveCluster(requests / 2)

	// Node death. Arm the trap, then queue enough work that w0's free
	// slots must pull an assignment; once it provably holds one, kill it
	// without a goodbye and bring up a replacement. The parked jobs must
	// still finish — through w1 or the replacement — after the lease
	// expires and the attempt is refunded.
	trap.Store(true)
	var victims [][2]string // id, tenant key
	for i := 0; i < 4; i++ {
		ti := i % len(cfgs)
		if id, ok := h.submitJobAs("cluster-kill", 4*n, keys[ti]); ok {
			victims = append(victims, [2]string{id, keys[ti]})
		}
	}
	select {
	case <-trapped:
	case <-time.After(15 * time.Second):
		return true, fmt.Errorf("worker w0 never picked up a kill-window assignment")
	}
	w0.Kill()
	fmt.Printf("nocap-loadgen: killed worker w0 holding a lease; starting replacement w0b\n")
	w0b, err := startWorker("w0b", prover.Exec, 23)
	if err != nil {
		return true, err
	}
	if err := waitLive(2); err != nil { // w1 + w0b; w0 decays to dead
		return true, err
	}
	for _, v := range victims {
		id, key := v[0], v[1]
		info, perr := h.pollJobAs(id, time.Minute, key)
		switch {
		case perr != nil:
			h.record("cluster-kill", false, true, perr.Error())
		case info.State != string(jobs.StateDone) || info.ProofB64 == "":
			h.record("cluster-kill", false, true, fmt.Sprintf("job %s ended %q (code %q) after node death",
				id, info.State, info.Code))
		default:
			h.record("cluster-kill", false, false, "")
		}
	}

	// Second traffic phase over the reshaped fleet (w1 + w0b).
	driveCluster(requests - requests/2)
	elapsed := time.Since(start)

	// The run only says something if the death was actually absorbed by
	// the lease machinery — and never papered over by local fallback.
	if resp, data, merr := h.get("/metrics"); merr != nil || resp.StatusCode != http.StatusOK {
		h.record("cluster-metrics", false, true, fmt.Sprintf("metrics: %v", merr))
	} else {
		text := string(data)
		expiries := metricValue(text, "nocap_cluster_lease_expiries_total")
		reassigns := metricValue(text, "nocap_jobs_lease_reassigns_total")
		fallbacks := metricValue(text, "nocap_cluster_local_fallbacks_total")
		completions := metricValue(text, "nocap_cluster_completions_total")
		switch {
		case expiries < 1 || reassigns < 1:
			h.record("cluster-metrics", false, true, fmt.Sprintf(
				"node death left no trace (%d lease expiries, %d reassigns)", expiries, reassigns))
		case fallbacks != 0:
			h.record("cluster-metrics", false, true, fmt.Sprintf(
				"%d local fallbacks with fallback disabled", fallbacks))
		case completions < 1:
			h.record("cluster-metrics", false, true, "no completions went through the worker plane")
		default:
			h.record("cluster-metrics", false, false, "")
			fmt.Printf("nocap-loadgen: %d worker completions, %d lease expiries, %d attempt refunds, 0 local fallbacks\n",
				completions, expiries, reassigns)
		}
	}

	// Starvation-freedom, per tenant: under equal load every admitted
	// job must have run to done. (Cluster attempts execute on worker
	// nodes under the coordinator's stride scheduler, so the server's
	// local DRR ledger below only carries work the cluster hands back.)
	for ti := range cfgs {
		kind := "cluster-" + cfgs[ti].ID
		o := h.outcomes[kind]
		if o == nil || o.ok == 0 || o.ok != o.sent {
			failed = true
			var okN, sent int64
			if o != nil {
				okN, sent = o.ok, o.sent
			}
			fmt.Printf("FAIL: tenant %s finished %d of %d cluster jobs: starved under equal load\n",
				cfgs[ti].ID, okN, sent)
		}
	}

	// Fairness over the scheduler's ledger: equal weights, equal load —
	// distribution must not shed, strand, or skew either tenant.
	stats := srv.TenantStats()
	waits := make(map[string]time.Duration, len(stats))
	for _, qs := range stats {
		if qs.ID == "default" {
			continue
		}
		w := meanWait(qs)
		waits[qs.ID] = w
		fmt.Printf("nocap-loadgen: tenant %s served %d (shed %d, mean wait %v)\n",
			qs.ID, qs.Dequeued, qs.RejectedFull, w.Round(time.Microsecond))
		if qs.RejectedFull != 0 {
			failed = true
			fmt.Printf("FAIL: tenant %s shed %d queue-full under equal load\n", qs.ID, qs.RejectedFull)
		}
		if qs.Dequeued != qs.Enqueued {
			failed = true
			fmt.Printf("FAIL: tenant %s admitted %d but served %d: distribution stranded work\n",
				qs.ID, qs.Enqueued, qs.Dequeued)
		}
	}
	if w0t, w1t := waits["t0"], waits["t1"]; w0t > 4*w1t+200*time.Millisecond || w1t > 4*w0t+200*time.Millisecond {
		failed = true
		fmt.Printf("FAIL: tenant queue waits diverged under equal load (t0 %v vs t1 %v)\n", w0t, w1t)
	}

	// Tear down the fleet before the leak check: live workers drain,
	// the killed one just needs its goroutines reaped.
	stopCtx, stopCancel := context.WithTimeout(context.Background(), 15*time.Second)
	for _, w := range []*cluster.Worker{w1, w0b, w0} {
		if serr := w.Stop(stopCtx); serr != nil {
			failed = true
			fmt.Printf("FAIL: worker stop: %v\n", serr)
		}
	}
	stopCancel()
	if err := drain(srv); err != nil {
		return true, fmt.Errorf("drain: %w", err)
	}

	// Drained, the journal is the ledger: at most one terminal record
	// per job, node death or not.
	if msg := journalTerminalViolation(filepath.Join(dir, "journal.jsonl")); msg != "" {
		h.record("journal", false, true, msg)
	}

	_, violations := report(h, clients, elapsed)
	if checkProcessInvariants(snap, arenaBefore) {
		failed = true
	}
	if violations > 0 {
		failed = true
	}
	if !failed {
		fmt.Printf("nocap-loadgen: cluster run clean (node death absorbed, zero 5xx, fairness intact)\n")
	}
	return failed, nil
}

// metricValue extracts a numeric Prometheus sample by exact metric
// name, or 0 if absent.
func metricValue(text, name string) int64 {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			if v, perr := strconv.ParseFloat(strings.TrimSpace(rest), 64); perr == nil {
				return int64(v)
			}
		}
	}
	return 0
}

// durabilitySoak runs the durable-state lifecycle passes on a fresh
// data directory (DESIGN.md §13):
//
//  1. Compaction soak — a tight journal record cap with a fast
//     compaction tick while jobs churn. The journal must stay bounded,
//     compactions must actually happen, and a restart over the
//     compacted state (snapshot + tail) must recover every terminal
//     job with byte-identical proofs: zero lost terminal states.
//  2. Degraded-mode pass — injected journal-append failure (the
//     ENOSPC equivalent) must fail the first DegradedThreshold
//     submissions loudly, then flip POST /jobs to a typed 503
//     "degraded" with Retry-After while synchronous /prove and polls
//     of done jobs keep serving; disarming the fault must exit
//     degraded mode through the background probe with no restart.
func durabilitySoak(h *harness, n, workers, queue int) error {
	const recordCap = 16
	const degradedThreshold = 3
	dir, err := os.MkdirTemp("", "nocap-loadgen-durable-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	boot := func() (*server.Server, string, error) {
		srv, err := server.New(server.Config{
			Addr:                 "127.0.0.1:0",
			Workers:              workers,
			QueueDepth:           queue,
			MemoryBudgetMB:       8,
			Params:               nocap.TestParams(),
			DataDir:              dir,
			JobBackoffBase:       5 * time.Millisecond,
			JobBackoffMax:        50 * time.Millisecond,
			JobJournalMaxRecords: recordCap,
			JobCompactCheck:      10 * time.Millisecond,
			JobDegradedThreshold: degradedThreshold,
			JobProbeInterval:     10 * time.Millisecond,
		})
		if err != nil {
			return nil, "", err
		}
		bound, err := srv.Listen()
		if err != nil {
			return nil, "", err
		}
		go srv.Serve()
		base := "http://" + bound.String()
		if err := waitReady(base, 10*time.Second); err != nil {
			return nil, "", err
		}
		return srv, base, nil
	}
	srv, base, err := boot()
	if err != nil {
		return fmt.Errorf("durability soak boot: %w", err)
	}
	h.base = base
	fmt.Printf("nocap-loadgen: durability soak on %s (record cap %d, journal in %s)\n", base, recordCap, dir)

	// Pass 1: churn enough jobs that the journal overruns its cap
	// several times over, keeping every proof for the restart check.
	proofs := make(map[string]string)
	ids := make([]string, 0, 20)
	for i := 0; i < 20; i++ {
		id, ok := h.submitJob("job-compact", n)
		if !ok {
			continue
		}
		info, perr := h.pollJob(id, time.Minute)
		if perr != nil || info.State != string(jobs.StateDone) || info.ProofB64 == "" {
			h.record("job-compact", false, true, fmt.Sprintf("job %s: %v state %q", id, perr, info.State))
			continue
		}
		ids = append(ids, id)
		proofs[id] = info.ProofB64
		h.record("job-compact", false, false, "")
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		jm := srv.JobsMetrics()
		if jm.Compactions >= 1 && jm.JournalRecords < 2*recordCap {
			fmt.Printf("nocap-loadgen: %d compactions, journal at %d records (cap %d), %d B snapshot\n",
				jm.Compactions, jm.JournalRecords, recordCap, jm.SnapshotBytes)
			break
		}
		if time.Now().After(deadline) {
			h.record("job-compact", false, true,
				fmt.Sprintf("journal never compacted under cap: %d compactions, %d records", jm.Compactions, jm.JournalRecords))
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := drain(srv); err != nil {
		return fmt.Errorf("drain before compacted restart: %w", err)
	}

	// Restart over snapshot + tail: every terminal job must come back
	// with the exact proof bytes it finished with.
	srv, base, err = boot()
	if err != nil {
		return fmt.Errorf("restart over compacted state: %w", err)
	}
	h.base = base
	for _, id := range ids {
		info, perr := h.pollJob(id, time.Minute)
		switch {
		case perr != nil:
			h.record("job-compact", false, true, fmt.Sprintf("job %s after compacted restart: %v", id, perr))
		case info.State != string(jobs.StateDone):
			h.record("job-compact", false, true, fmt.Sprintf("job %s after compacted restart: state %q", id, info.State))
		case info.ProofB64 != proofs[id]:
			h.record("job-compact", false, true, fmt.Sprintf("job %s proof changed across compacted restart", id))
		default:
			h.record("job-compact", false, false, "")
		}
	}

	// Pass 2: sustained disk failure. All workers are idle (every job is
	// terminal), so the only journal writes are the submissions below
	// and, once degraded, the recovery probe.
	defer faultinject.Disarm()
	faultinject.MustArm(faultinject.Plan{
		Point: "jobs.journal.append",
		Kind:  faultinject.Error,
		Count: 1 << 30,
	})
	body, _ := json.Marshal(server.ProveRequest{Circuit: "synthetic", N: n})
	for i := 0; i < degradedThreshold; i++ {
		resp, data, perr := h.post("/jobs", body)
		if perr != nil {
			h.record("job-degraded", false, true, perr.Error())
		} else if resp.StatusCode != http.StatusInternalServerError || !typedError(data) {
			h.record("job-degraded", false, true,
				fmt.Sprintf("submit %d during disk failure: status %d: %.120s", i, resp.StatusCode, data))
		} else {
			h.record("job-degraded", false, false, "")
		}
	}
	resp, data, perr := h.post("/jobs", body)
	switch {
	case perr != nil:
		h.record("job-degraded", false, true, perr.Error())
	case resp.StatusCode != http.StatusServiceUnavailable:
		h.record("job-degraded", false, true, fmt.Sprintf("degraded submit: status %d: %.120s", resp.StatusCode, data))
	case resp.Header.Get("Retry-After") == "":
		h.record("job-degraded", false, true, "degraded 503 missing Retry-After")
	default:
		var er server.ErrorResponse
		if json.Unmarshal(data, &er) != nil || er.Code != "degraded" {
			h.record("job-degraded", false, true, fmt.Sprintf("degraded 503 code %q", er.Code))
		} else {
			h.record("job-degraded", false, false, "")
		}
	}
	// The non-durable surface must not notice: sync prove and polls of
	// already-terminal jobs keep answering 200.
	if resp, data, perr := h.post("/prove", body); perr != nil || resp.StatusCode != http.StatusOK {
		h.record("job-degraded", false, true, fmt.Sprintf("sync /prove during degraded: %v status %d: %.120s", perr, respStatus(resp), data))
	} else {
		h.record("job-degraded", false, false, "")
	}
	if len(ids) > 0 {
		if _, perr := h.pollJob(ids[0], time.Minute); perr != nil {
			h.record("job-degraded", false, true, fmt.Sprintf("poll during degraded: %v", perr))
		} else {
			h.record("job-degraded", false, false, "")
		}
	}

	// Disk heals: the probe's first successful write exits degraded mode
	// and submissions are accepted again, with the job running to done.
	faultinject.Disarm()
	deadline = time.Now().Add(10 * time.Second)
	for {
		resp, data, perr := h.post("/jobs", body)
		if perr == nil && resp.StatusCode == http.StatusAccepted {
			var jr server.JobResponse
			if json.Unmarshal(data, &jr) != nil || jr.ID == "" {
				h.record("job-degraded", false, true, "post-recovery 202 without a job id")
				break
			}
			info, perr := h.pollJob(jr.ID, time.Minute)
			if perr != nil || info.State != string(jobs.StateDone) {
				h.record("job-degraded", false, true, fmt.Sprintf("post-recovery job: %v state %q", perr, info.State))
			} else {
				h.record("job-degraded", false, false, "")
			}
			break
		}
		if time.Now().After(deadline) {
			h.record("job-degraded", false, true,
				fmt.Sprintf("server never recovered from degraded mode (last status %d: %.120s)", respStatus(resp), data))
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	return drain(srv)
}

// respStatus is a nil-safe status accessor for violation messages.
func respStatus(resp *http.Response) int {
	if resp == nil {
		return 0
	}
	return resp.StatusCode
}

// waitReady polls /readyz until the server finishes journal recovery
// and reports ready.
func waitReady(base string, budget time.Duration) error {
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(budget)
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server not ready within %v", budget)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// tearJournal simulates a crash mid-append: it cuts the journal's final
// record in half, leaving an unterminated JSON prefix with no newline.
func tearJournal(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	trimmed := bytes.TrimSuffix(data, []byte("\n"))
	idx := bytes.LastIndexByte(trimmed, '\n') + 1
	last := trimmed[idx:]
	if len(last) < 2 {
		return fmt.Errorf("journal too small to tear (%d bytes)", len(data))
	}
	return os.Truncate(path, int64(idx+len(last)/2))
}

// journalTerminalViolation scans the journal for the exactly-once
// ledger invariant: at most one done/failed/cancelled record per job.
func journalTerminalViolation(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Sprintf("read journal: %v", err)
	}
	terminal := make(map[string]int)
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec struct {
			Job   string `json:"job"`
			State string `json:"state"`
		}
		if json.Unmarshal(line, &rec) != nil {
			continue // a torn tail is the parser's problem, not ours
		}
		if jobs.State(rec.State).Terminal() {
			terminal[rec.Job]++
		}
	}
	for job, count := range terminal {
		if count > 1 {
			return fmt.Sprintf("job %s has %d terminal journal records", job, count)
		}
	}
	return ""
}

func main() {
	failed, err := run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "nocap-loadgen: %v\n", err)
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "nocap-loadgen: FAIL")
		os.Exit(1)
	}
	fmt.Println("nocap-loadgen: PASS")
}
