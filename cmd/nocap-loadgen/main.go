// Command nocap-loadgen hammers a nocap-serve instance with mixed
// traffic — proves, valid verifies, corrupt proofs, malformed JSON,
// oversized bodies, and client-cancelled requests — and checks that
// every answer is a complete, correctly-typed response: 200 with per-
// request stats, 400/413 with a taxonomy code, 429 when the admission
// queue sheds load. Anything else (an untyped error, a 5xx, a proof
// accepted that should not be) counts as a protocol violation and fails
// the run.
//
// With -addr pointing at a running server it is a plain load generator.
// With -addr "" (the default) it starts an in-process server, runs the
// same traffic over loopback, drains it, and additionally asserts the
// process-level invariants only visible from inside: zero leaked
// goroutines (internal/leakcheck) and the arena checkout balance back
// at its baseline. That self-contained mode is what `make serve-smoke`
// runs in CI.
//
// Usage:
//
//	nocap-loadgen                          # in-process smoke, 8 clients, 15s cap
//	nocap-loadgen -requests 64 -clients 8
//	nocap-loadgen -addr 127.0.0.1:8080 -duration 30s
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"nocap"
	"nocap/internal/leakcheck"
	"nocap/internal/server"
)

// outcome tallies one traffic kind's results.
type outcome struct {
	sent, ok, shed, violations int64
}

type harness struct {
	base   string
	client *http.Client
	n      int

	mu       sync.Mutex
	outcomes map[string]*outcome
	problems []string
}

func (h *harness) record(kind string, shed, violated bool, detail string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	o := h.outcomes[kind]
	if o == nil {
		o = &outcome{}
		h.outcomes[kind] = o
	}
	o.sent++
	switch {
	case violated:
		o.violations++
		if len(h.problems) < 20 {
			h.problems = append(h.problems, fmt.Sprintf("%s: %s", kind, detail))
		}
	case shed:
		o.shed++
	default:
		o.ok++
	}
}

func (h *harness) post(path string, body []byte) (*http.Response, []byte, error) {
	resp, err := h.client.Post(h.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, data, nil
}

// typedError reports whether a non-2xx body carries a taxonomy code.
func typedError(body []byte) bool {
	var er server.ErrorResponse
	return json.Unmarshal(body, &er) == nil && er.Code != ""
}

// fire sends one request of the given kind and records the outcome.
func (h *harness) fire(kind string, seedProof string) {
	switch kind {
	case "prove":
		body, _ := json.Marshal(server.ProveRequest{Circuit: "synthetic", N: h.n})
		resp, data, err := h.post("/prove", body)
		if err != nil {
			h.record(kind, false, true, err.Error())
			return
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var pr server.ProveResponse
			if json.Unmarshal(data, &pr) != nil || pr.ProofB64 == "" {
				h.record(kind, false, true, "200 without a complete proof body")
				return
			}
			if pr.Stats.Arena.Outstanding != 0 {
				h.record(kind, false, true, fmt.Sprintf("request leaked %d arena checkouts", pr.Stats.Arena.Outstanding))
				return
			}
			h.record(kind, false, false, "")
		case http.StatusTooManyRequests:
			h.record(kind, true, !typedError(data), "untyped 429")
		default:
			h.record(kind, false, true, fmt.Sprintf("status %d: %.120s", resp.StatusCode, data))
		}
	case "verify":
		body, _ := json.Marshal(server.VerifyRequest{Circuit: "synthetic", N: h.n, ProofB64: seedProof})
		resp, data, err := h.post("/verify", body)
		if err != nil {
			h.record(kind, false, true, err.Error())
			return
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var vr server.VerifyResponse
			if json.Unmarshal(data, &vr) != nil || !vr.Valid {
				h.record(kind, false, true, fmt.Sprintf("valid proof not accepted: %.120s", data))
				return
			}
			h.record(kind, false, false, "")
		case http.StatusTooManyRequests:
			h.record(kind, true, !typedError(data), "untyped 429")
		default:
			h.record(kind, false, true, fmt.Sprintf("status %d: %.120s", resp.StatusCode, data))
		}
	case "corrupt":
		c := []byte(seedProof)
		i := len(c) / 2
		if c[i] == 'A' {
			c[i] = 'B'
		} else {
			c[i] = 'A'
		}
		body, _ := json.Marshal(server.VerifyRequest{Circuit: "synthetic", N: h.n, ProofB64: string(c)})
		resp, data, err := h.post("/verify", body)
		if err != nil {
			h.record(kind, false, true, err.Error())
			return
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var vr server.VerifyResponse
			if json.Unmarshal(data, &vr) != nil || vr.Valid || vr.Code == "" {
				h.record(kind, false, true, fmt.Sprintf("corrupt proof mishandled: %.120s", data))
				return
			}
			h.record(kind, false, false, "")
		case http.StatusBadRequest:
			// Corruption may break framing instead of a soundness check.
			h.record(kind, false, !typedError(data), "untyped 400")
		case http.StatusTooManyRequests:
			h.record(kind, true, !typedError(data), "untyped 429")
		default:
			h.record(kind, false, true, fmt.Sprintf("status %d: %.120s", resp.StatusCode, data))
		}
	case "malformed":
		resp, data, err := h.post("/prove", []byte("{definitely not json"))
		if err != nil {
			h.record(kind, false, true, err.Error())
			return
		}
		if resp.StatusCode != http.StatusBadRequest || !typedError(data) {
			h.record(kind, false, true, fmt.Sprintf("status %d: %.120s", resp.StatusCode, data))
			return
		}
		h.record(kind, false, false, "")
	case "oversized":
		big := `{"circuit":"synthetic","n":64,"proof_b64":"` + strings.Repeat("A", 9<<20) + `"}`
		resp, data, err := h.post("/verify", []byte(big))
		if err != nil {
			h.record(kind, false, true, err.Error())
			return
		}
		if resp.StatusCode != http.StatusRequestEntityTooLarge || !typedError(data) {
			h.record(kind, false, true, fmt.Sprintf("status %d: %.120s", resp.StatusCode, data))
			return
		}
		h.record(kind, false, false, "")
	case "cancel":
		ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
		defer cancel()
		body, _ := json.Marshal(server.ProveRequest{Circuit: "synthetic", N: 4 * h.n})
		req, _ := http.NewRequestWithContext(ctx, "POST", h.base+"/prove", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		resp, err := h.client.Do(req)
		if err == nil {
			resp.Body.Close() // finished before the cancel landed; fine
		}
		// Either way the server must survive; violations show up as
		// failures in the other kinds or the final invariants.
		h.record(kind, false, false, "")
	}
}

var trafficMix = []string{
	"prove", "prove", "verify", "verify", "corrupt", "malformed", "oversized", "cancel",
}

func run() (failed bool, err error) {
	addr := flag.String("addr", "", "server address; empty starts an in-process server")
	clients := flag.Int("clients", 8, "concurrent client goroutines")
	requests := flag.Int("requests", 64, "total requests to send (0 = until -duration)")
	duration := flag.Duration("duration", 15*time.Second, "time budget for the run")
	n := flag.Int("n", 256, "circuit size parameter for prove/verify traffic")
	workers := flag.Int("workers", 4, "in-process mode: proving workers")
	queue := flag.Int("queue", 4, "in-process mode: admission queue depth")
	flag.Parse()

	var snap *leakcheck.Snapshot
	var arenaBefore nocap.ArenaStats
	var srv *server.Server
	base := *addr
	if base == "" {
		snap = leakcheck.Take()
		arenaBefore = nocap.ReadProveStats().Arena
		srv = server.New(server.Config{
			Addr:           "127.0.0.1:0",
			Workers:        *workers,
			QueueDepth:     *queue,
			MemoryBudgetMB: 8,
			Params:         nocap.TestParams(),
		})
		bound, lerr := srv.Listen()
		if lerr != nil {
			return true, lerr
		}
		go srv.Serve()
		base = bound.String()
		fmt.Printf("nocap-loadgen: in-process server on %s (%d workers, queue %d)\n",
			base, *workers, *queue)
	}

	h := &harness{
		base:     "http://" + base,
		client:   &http.Client{Timeout: 2 * time.Minute},
		n:        *n,
		outcomes: make(map[string]*outcome),
	}

	// One seed proof for the verify traffic.
	body, _ := json.Marshal(server.ProveRequest{Circuit: "synthetic", N: *n})
	resp, data, err := h.post("/prove", body)
	if err != nil {
		return true, fmt.Errorf("seed prove: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return true, fmt.Errorf("seed prove: status %d: %.200s", resp.StatusCode, data)
	}
	var seed server.ProveResponse
	if err := json.Unmarshal(data, &seed); err != nil {
		return true, fmt.Errorf("seed prove response: %w", err)
	}

	deadline := time.Now().Add(*duration)
	var next int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	take := func() (string, bool) {
		mu.Lock()
		defer mu.Unlock()
		if *requests > 0 && next >= int64(*requests) {
			return "", false
		}
		if time.Now().After(deadline) {
			return "", false
		}
		kind := trafficMix[next%int64(len(trafficMix))]
		next++
		return kind, true
	}
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for {
				kind, ok := take()
				if !ok {
					return
				}
				h.fire(kind, seed.ProofB64)
				if rng.Intn(4) == 0 {
					time.Sleep(time.Duration(rng.Intn(5)) * time.Millisecond)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if srv != nil {
		drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil {
			return true, fmt.Errorf("drain: %w", err)
		}
	}

	kinds := make([]string, 0, len(h.outcomes))
	for k := range h.outcomes {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var sent, violations int64
	fmt.Printf("nocap-loadgen: %d clients, %v\n", *clients, elapsed.Round(time.Millisecond))
	fmt.Printf("%-10s %6s %6s %6s %10s\n", "kind", "sent", "ok", "shed", "violations")
	for _, k := range kinds {
		o := h.outcomes[k]
		fmt.Printf("%-10s %6d %6d %6d %10d\n", k, o.sent, o.ok, o.shed, o.violations)
		sent += o.sent
		violations += o.violations
	}
	for _, p := range h.problems {
		fmt.Printf("  violation: %s\n", p)
	}

	if srv != nil {
		// In-process invariants: every goroutine the service and the runs
		// started is gone, and no scratch is stranded.
		if leaked := snap.Leaked(5 * time.Second); len(leaked) > 0 {
			failed = true
			fmt.Printf("FAIL: %d leaked goroutine signature(s):\n", len(leaked))
			for _, sig := range leaked {
				fmt.Printf("  %s\n", sig)
			}
		}
		arenaAfter := nocap.ReadProveStats().Arena
		if arenaAfter.Outstanding != arenaBefore.Outstanding ||
			arenaAfter.OutstandingElems != arenaBefore.OutstandingElems {
			failed = true
			fmt.Printf("FAIL: arena checkouts leaked: %d outstanding (%d elems) vs baseline %d (%d)\n",
				arenaAfter.Outstanding, arenaAfter.OutstandingElems,
				arenaBefore.Outstanding, arenaBefore.OutstandingElems)
		}
		if arenaAfter.DoubleReturns != arenaBefore.DoubleReturns {
			failed = true
			fmt.Printf("FAIL: %d arena double returns during the run\n",
				arenaAfter.DoubleReturns-arenaBefore.DoubleReturns)
		}
	}
	if violations > 0 {
		failed = true
	}
	fmt.Printf("nocap-loadgen: %d requests, %d violations\n", sent, violations)
	return failed, nil
}

func main() {
	failed, err := run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "nocap-loadgen: %v\n", err)
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "nocap-loadgen: FAIL")
		os.Exit(1)
	}
	fmt.Println("nocap-loadgen: PASS")
}
