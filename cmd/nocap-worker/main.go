// Command nocap-worker runs one prover node of a nocap cluster
// (DESIGN.md §16). It pulls leased assignments from a coordinator
// (nocap-serve -cluster) over unencrypted HTTP/2, proves them with the
// same pipeline the coordinator would use locally, heartbeats its
// leases at a fully jittered interval, and reports outcomes. Losing a
// lease (a heartbeat gap longer than the coordinator's -lease-ttl, e.g.
// after a partition or a stop-the-world pause) makes the worker abandon
// the attempt: the coordinator has already refunded and reassigned it,
// and a late completion would be discarded as a duplicate.
//
// Usage:
//
//	nocap-worker -coordinator http://127.0.0.1:8080 -id node-a
//	nocap-worker -coordinator http://coord:8080 -id node-b -slots 2 \
//	    -cluster-key s3cret -max-n 65536 -hash sha3
//
// On SIGINT/SIGTERM the worker stops polling, finishes and completes
// in-flight assignments (bounded by -drain), then exits. Exit codes
// follow the taxonomy (DESIGN.md §7): 0 clean, 2 usage, otherwise 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nocap"
	"nocap/internal/cluster"
	"nocap/internal/zkerr"
)

func run() error {
	coordinator := flag.String("coordinator", "", "coordinator base URL, e.g. http://127.0.0.1:8080 (required)")
	id := flag.String("id", "", "stable node name (default: worker-<hostname>-<pid>)")
	slots := flag.Int("slots", 1, "assignments proved concurrently")
	key := flag.String("cluster-key", "", "X-Cluster-Key shared secret (must match the coordinator's -cluster-key)")
	maxN := flag.Int("max-n", 1<<16, "largest circuit size parameter accepted")
	reps := flag.Int("reps", 0, "default soundness repetitions (0 = library default)")
	hash := flag.String("hash", "sha3", "hash engine for proving: "+strings.Join(nocap.HashEngineNames(), "|"))
	timeout := flag.Duration("timeout", 2*time.Minute, "per-attempt proving deadline cap")
	pollWait := flag.Duration("poll-wait", 2*time.Second, "long-poll window requested per poll")
	drain := flag.Duration("drain", 30*time.Second, "graceful-drain budget on SIGINT/SIGTERM")
	flag.Parse()

	if *coordinator == "" {
		return zkerr.Usagef("-coordinator is required")
	}
	if !strings.HasPrefix(*coordinator, "http://") && !strings.HasPrefix(*coordinator, "https://") {
		return zkerr.Usagef("-coordinator must be an http(s) URL, got %q", *coordinator)
	}
	if *slots < 1 {
		return zkerr.Usagef("-slots must be positive, got %d", *slots)
	}
	if *timeout <= 0 || *drain <= 0 || *pollWait <= 0 {
		return zkerr.Usagef("-timeout, -drain, and -poll-wait must be positive")
	}
	if *reps < 0 || *reps > 64 {
		return zkerr.Usagef("-reps must be in [0,64], got %d", *reps)
	}
	name := *id
	if name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "node"
		}
		name = fmt.Sprintf("worker-%s-%d", host, os.Getpid())
	}

	params := nocap.DefaultParams()
	if *reps > 0 {
		params.Reps = *reps
	}
	params, err := nocap.WithHashEngine(params, *hash)
	if err != nil {
		return err
	}
	prover := cluster.NewProver(cluster.ProverConfig{
		Params:  params,
		MaxN:    *maxN,
		Timeout: *timeout,
	})
	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Coordinator: strings.TrimRight(*coordinator, "/"),
		ID:          name,
		Slots:       *slots,
		Key:         *key,
		PollWait:    *pollWait,
		Exec:        prover.Exec,
		BatchExec:   prover.BatchExec,
		Logf:        log.Printf,
	})
	if err != nil {
		return zkerr.Usagef("worker config: %v", err)
	}

	log.Printf("nocap-worker: %s pulling from %s (%d slots, max-n %d, hash %s)",
		name, *coordinator, *slots, *maxN, *hash)
	w.Start()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()

	log.Printf("nocap-worker: draining (budget %v)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := w.Stop(drainCtx); err != nil {
		log.Printf("nocap-worker: drain budget expired; abandoning in-flight leases")
		w.Kill()
		return nil
	}
	log.Printf("nocap-worker: drained cleanly")
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "nocap-worker: %v\n", err)
		if errors.Is(err, zkerr.ErrUsage) {
			fmt.Fprintln(os.Stderr, "run with -h for usage")
		}
		os.Exit(zkerr.ExitCode(err))
	}
}
