// Command nocap-bench regenerates the paper's evaluation: every table
// and figure, the §III and §VIII-C analyses, the use cases, and an
// optional measured run of the real Go prover.
//
// Usage:
//
//	nocap-bench                 # everything
//	nocap-bench -table 4        # one table (1–5)
//	nocap-bench -figure 7       # one figure (5–8)
//	nocap-bench -analysis       # §III multiply counts + §VIII-C ablations
//	nocap-bench -usecases       # §I/§VIII use cases
//	nocap-bench -measured 14    # run the real prover at 2^14 constraints
//	nocap-bench -measured 18 -timeout 1m   # bound a long measured run
//	nocap-bench -measured 14 -hash keccak-x4   # multi-buffer hash engine
//	nocap-bench -hashmatrix     # Merkle kernel under every hash engine
//
// SIGINT/SIGTERM (and -timeout expiry) cancel an in-flight -measured run
// at its next cooperative checkpoint; the process then exits with the
// resource-limit code (5) from the error taxonomy (DESIGN.md §7).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"nocap/internal/experiments"
	"nocap/internal/zkerr"
)

// writeBundle regenerates the whole evaluation into files.
func writeBundle(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	texts := map[string]string{
		"table1.txt":  experiments.TableI().Render(),
		"table2.txt":  experiments.TableII().Render(),
		"table3.txt":  experiments.TableIII().Render(),
		"table4.txt":  experiments.TableIV().Render(),
		"table5.txt":  experiments.TableV().Render(),
		"figure5.txt": experiments.Figure5().Render(),
		"figure6.txt": experiments.Figure6().Render(),
		"figure7.txt": experiments.Figure7().Render(),
		"figure8.txt": experiments.Figure8().Render(),
		"analysis.txt": experiments.MultiplyAnalysis(12).Render() + "\n" +
			experiments.Ablations(12).Render() + "\n" + experiments.Platforms().Render(),
		"proofs.txt": experiments.ProofComposition().Render(),
		"host.txt":   experiments.HostInterface().Render(),
		"usecases.txt": experiments.DatabaseThroughput().Render() + "\n" +
			experiments.PhotoEdit().Render(),
	}
	for name, content := range texts {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return err
		}
	}
	writeCSV := func(name string, fn func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}
	if err := writeCSV("figure7.csv", func(w io.Writer) error { return experiments.Figure7().WriteCSV(w) }); err != nil {
		return err
	}
	if err := writeCSV("figure8.csv", func(w io.Writer) error { return experiments.Figure8().WriteCSV(w) }); err != nil {
		return err
	}
	return writeCSV("table4.csv", func(w io.Writer) error { return experiments.TableIV().WriteCSV(w) })
}

// measuredRun runs the real prover at 2^logN constraints under ctx and
// prints the result, or reports the cancellation/fault error.
func measuredRun(ctx context.Context, logN, reps int, hash string) error {
	res, err := experiments.MeasuredEngineCtx(ctx, logN, reps, hash)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

// hashMatrixRun benchmarks the Merkle level kernel under every
// registered hash engine and prints the per-engine matrix.
func hashMatrixRun(ctx context.Context) error {
	results, err := experiments.HashMatrixCtx(ctx, []int{10, 12, 14})
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderHashMatrix(results))
	return nil
}

func main() {
	// Only the -measured path does open-ended work; the model-based tables
	// and figures finish in milliseconds. A signal or -timeout cancels the
	// measured prover at its next cooperative checkpoint.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	table := flag.Int("table", 0, "print one table (1-5)")
	figure := flag.Int("figure", 0, "print one figure (5-8)")
	analysis := flag.Bool("analysis", false, "print the §III and §VIII-C analyses")
	analysisProofs := flag.Bool("proofs", false, "print the proof-composition analysis")
	usecases := flag.Bool("usecases", false, "print the use-case studies")
	measured := flag.Int("measured", 0, "run the real Go prover at 2^N constraints")
	csv := flag.String("csv", "", "emit plot-ready CSV: figure7|figure8|table4")
	outDir := flag.String("out", "", "write the full evaluation bundle (text + CSVs) to this directory")
	reps := flag.Int("reps", 1, "soundness repetitions for -measured")
	hash := flag.String("hash", "", "hash engine for -measured (sha3|keccak-x4, default sha3)")
	hashMatrix := flag.Bool("hashmatrix", false, "benchmark the Merkle kernel under every hash engine")
	timeout := flag.Duration("timeout", 0, "abandon a -measured run after this duration (0 = no limit)")
	flag.Parse()

	if *timeout < 0 {
		fmt.Fprintf(os.Stderr, "nocap-bench: -timeout must be non-negative, got %v\n", *timeout)
		os.Exit(zkerr.ExitCode(zkerr.ErrUsage))
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	specific := *table != 0 || *figure != 0 || *analysis || *analysisProofs || *usecases || *measured != 0 || *csv != "" || *outDir != "" || *hashMatrix

	tables := map[int]func() string{
		1: func() string { return experiments.TableI().Render() },
		2: func() string { return experiments.TableII().Render() },
		3: func() string { return experiments.TableIII().Render() },
		4: func() string { return experiments.TableIV().Render() },
		5: func() string { return experiments.TableV().Render() },
	}
	figures := map[int]func() string{
		5: func() string { return experiments.Figure5().Render() },
		6: func() string { return experiments.Figure6().Render() },
		7: func() string { return experiments.Figure7().Render() },
		8: func() string { return experiments.Figure8().Render() },
	}

	switch {
	case *table != 0:
		f, ok := tables[*table]
		if !ok {
			fmt.Fprintf(os.Stderr, "no table %d (have 1-5)\n", *table)
			os.Exit(1)
		}
		fmt.Print(f())
	case *figure != 0:
		f, ok := figures[*figure]
		if !ok {
			fmt.Fprintf(os.Stderr, "no figure %d (have 5-8)\n", *figure)
			os.Exit(1)
		}
		fmt.Print(f())
	case *analysis:
		fmt.Print(experiments.MultiplyAnalysis(12).Render())
		fmt.Println()
		fmt.Print(experiments.Ablations(12).Render())
		fmt.Println()
		fmt.Print(experiments.Platforms().Render())
	case *analysisProofs:
		fmt.Print(experiments.ProofComposition().Render())
	case *usecases:
		fmt.Print(experiments.DatabaseThroughput().Render())
		fmt.Println()
		fmt.Print(experiments.PhotoEdit().Render())
	case *measured != 0:
		if err := measuredRun(ctx, *measured, *reps, *hash); err != nil {
			fmt.Fprintf(os.Stderr, "nocap-bench: %v\n", err)
			os.Exit(zkerr.ExitCode(err))
		}
	case *hashMatrix:
		if err := hashMatrixRun(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "nocap-bench: %v\n", err)
			os.Exit(zkerr.ExitCode(err))
		}
	case *csv != "":
		var err error
		switch *csv {
		case "figure7":
			err = experiments.Figure7().WriteCSV(os.Stdout)
		case "figure8":
			err = experiments.Figure8().WriteCSV(os.Stdout)
		case "table4":
			err = experiments.TableIV().WriteCSV(os.Stdout)
		default:
			err = fmt.Errorf("unknown csv target %q", *csv)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *outDir != "":
		if err := writeBundle(*outDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("evaluation bundle written to %s\n", *outDir)
	}
	if specific {
		return
	}

	for i := 1; i <= 5; i++ {
		fmt.Print(tables[i]())
		fmt.Println()
	}
	for i := 5; i <= 8; i++ {
		fmt.Print(figures[i]())
		fmt.Println()
	}
	fmt.Print(experiments.MultiplyAnalysis(12).Render())
	fmt.Println()
	fmt.Print(experiments.Ablations(12).Render())
	fmt.Println()
	fmt.Print(experiments.Platforms().Render())
	fmt.Println()
	fmt.Print(experiments.ProofComposition().Render())
	fmt.Println()
	fmt.Print(experiments.HostInterface().Render())
	fmt.Println()
	fmt.Print(experiments.RackScaleStudy(550_000_000).Render())
	fmt.Println()
	fmt.Print(experiments.DatabaseThroughput().Render())
	fmt.Println()
	fmt.Print(experiments.PhotoEdit().Render())
	fmt.Println()
	if err := measuredRun(ctx, 14, 1, ""); err != nil {
		fmt.Fprintf(os.Stderr, "nocap-bench: %v\n", err)
		os.Exit(zkerr.ExitCode(err))
	}
}
