// Command nocap-serve runs the multi-session proving service: an HTTP
// front end over the library prover with multi-tenant bounded admission
// (per-tenant queues under a weighted deficit-round-robin scheduler,
// token-bucket rate limits, per-tenant 429s), a verified content-
// addressed proof cache, per-request deadlines and decode limits,
// per-request stats attribution, and graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	nocap-serve -addr 127.0.0.1:8080 -workers 4 -queue 8
//	nocap-serve -addr :8080 -timeout 60s -mem-mb 128 -drain 30s
//	nocap-serve -tenant-keys tenants.json -cache-mb 64
//	nocap-serve -data-dir /var/lib/nocap -journal-max-mb 64 -job-retention 24h
//	nocap-serve -data-dir /var/lib/nocap -batch-window 5ms -batch-max 8
//
// Tenancy (DESIGN.md §12): -tenant-keys names a JSON keyfile
// ({"tenants":[{"id":"acme","key":"...","weight":4,...}]}) mapping
// static API keys (X-API-Key or Authorization: Bearer) to tenants with
// weights and quotas. Requests without a key run as the anonymous
// "default" tenant, whose limits the -tenant-default-* flags set.
// Unknown keys are 401.
//
// Endpoints:
//
//	POST   /prove     {"circuit":"synthetic","n":1024,"reps":1}
//	POST   /verify    {"circuit":"synthetic","n":1024,"proof_b64":"..."}
//	POST   /jobs      async prove (requires -data-dir) → 202 + job id
//	GET    /jobs/{id} poll a job; stats + proof size once done, the
//	                  proof payload itself only with ?proof=1
//	DELETE /jobs/{id} cancel a job
//	GET    /healthz   liveness: 200 whenever the process is up
//	GET    /readyz    readiness: 503 while recovering, draining, or the
//	                  job breaker is open
//	GET    /metrics   Prometheus text: admission/latency counters, the
//	                  five-stage kernel breakdown, arena behavior, and
//	                  (with -data-dir) job/journal/breaker gauges
//
// With -data-dir the server keeps a durable job journal there: jobs
// accepted before a crash or restart are recovered and re-run on the
// next start (DESIGN.md §11). -journal-max-mb bounds the journal by
// compacting it into an atomic snapshot in the background, and
// -job-retention garbage-collects terminal jobs (and their proof
// files) older than that age at compaction time (DESIGN.md §13). If
// the data disk starts refusing writes the server enters degraded
// mode: POST /jobs answers a typed 503 {"code":"degraded"} with
// Retry-After while synchronous /prove, /verify, and job polls keep
// serving, and a background probe exits degraded mode on the first
// successful write.
//
// -batch-window enables the async batch planner (DESIGN.md §15):
// queued jobs for the same tenant with the same (circuit, n, reps) key
// arriving within the window coalesce into one batched attempt, capped
// at -batch-max jobs, and prove through a shared-structure plan that
// computes the per-statement setup once. Member proofs are
// byte-identical to solo proofs; the batch is charged its full size
// against the tenant's fairness account. /metrics grows nocap_batch_*
// counters and the nocap_batch_size gauge.
//
// -cluster turns the server into a cluster coordinator (DESIGN.md
// §16): async job attempts dispatch to nocap-worker nodes over
// /cluster/* (unencrypted HTTP/2) with lease-based reassignment —
// a worker that dies mid-proof forfeits its lease after -lease-ttl and
// the attempt is refunded and re-dispatched. With zero live workers the
// coordinator proves in-process (-local-fallback, default) or sheds new
// jobs with a typed 503 {"code":"no_workers"} and an EWMA Retry-After.
// -cluster-key authenticates the worker plane.
//
// On SIGINT/SIGTERM the server stops admitting (503), lets queued and
// in-flight requests finish (cancelling them if -drain expires), then
// exits. Exit codes follow the taxonomy (DESIGN.md §7): 0 clean, 2
// usage, otherwise 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nocap"
	"nocap/internal/server"
	"nocap/internal/tenant"
	"nocap/internal/zkerr"
)

func run() error {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	workers := flag.Int("workers", 2, "concurrent proving workers")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 2×workers)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request proving deadline cap")
	memMB := flag.Int("mem-mb", 64, "per-request memory envelope, MB (bodies and decoded proofs)")
	maxN := flag.Int("max-n", 1<<16, "largest circuit size parameter a request may ask for")
	reps := flag.Int("reps", 0, "default soundness repetitions (0 = library default)")
	hash := flag.String("hash", "sha3", "hash engine for proving/verification: "+strings.Join(nocap.HashEngineNames(), "|"))
	drain := flag.Duration("drain", 30*time.Second, "graceful-drain budget on SIGINT/SIGTERM")
	dataDir := flag.String("data-dir", "", "durable job journal directory; enables the async /jobs API")
	jobWorkers := flag.Int("job-workers", 0, "async job dispatchers (0 = jobs default)")
	jobPending := flag.Int("job-pending", 0, "max non-terminal async jobs before 429 (0 = jobs default)")
	jobAttempts := flag.Int("job-attempts", 0, "per-job attempt budget (0 = jobs default)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive internal failures that trip the job breaker (0 = jobs default)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "job breaker open→half-open delay (0 = jobs default)")
	journalMaxMB := flag.Int("journal-max-mb", 0, "journal size that triggers snapshot+compaction, MB (0 = never compact)")
	jobRetention := flag.Duration("job-retention", 0, "terminal jobs older than this are GC'd at compaction (0 = keep forever)")
	tenantKeys := flag.String("tenant-keys", "", "JSON keyfile of tenants (id, key, weight, quotas); empty = single anonymous tenant")
	tenantWeight := flag.Int("tenant-default-weight", 1, "default tenant's DRR weight (also the fallback for keyfile tenants)")
	tenantRate := flag.Float64("tenant-default-rate", 0, "default tenant's requests/sec token-bucket rate (0 = unlimited)")
	tenantBurst := flag.Int("tenant-default-burst", 0, "default tenant's token-bucket burst (0 = rate+1)")
	tenantMaxJobs := flag.Int("tenant-default-max-jobs", 0, "default tenant's live async-job cap (0 = unlimited)")
	cacheMB := flag.Int("cache-mb", 64, "content-addressed proof cache budget, MB (0 disables)")
	batchWindow := flag.Duration("batch-window", 0, "coalesce same-key async jobs arriving within this window into one batched attempt (0 disables; requires -data-dir)")
	batchMax := flag.Int("batch-max", 8, "max jobs per coalesced batch")
	clusterMode := flag.Bool("cluster", false, "coordinator mode: dispatch async jobs to nocap-worker nodes over /cluster/* (requires -data-dir)")
	leaseTTL := flag.Duration("lease-ttl", 3*time.Second, "cluster assignment lease TTL; a lease not heartbeat-renewed within it is reassigned")
	localFallback := flag.Bool("local-fallback", true, "with zero live workers, prove in-process; false sheds new jobs with a typed 503 {\"code\":\"no_workers\"}")
	clusterKey := flag.String("cluster-key", "", "shared secret workers must present as X-Cluster-Key (empty = open worker plane)")
	flag.Parse()

	if *workers < 1 {
		return zkerr.Usagef("-workers must be positive, got %d", *workers)
	}
	if *queue < 0 {
		return zkerr.Usagef("-queue must be non-negative, got %d", *queue)
	}
	if *timeout <= 0 || *drain <= 0 {
		return zkerr.Usagef("-timeout and -drain must be positive")
	}
	if *reps < 0 || *reps > 64 {
		return zkerr.Usagef("-reps must be in [0,64], got %d", *reps)
	}
	if *jobWorkers < 0 || *jobPending < 0 || *jobAttempts < 0 || *breakerThreshold < 0 || *breakerCooldown < 0 {
		return zkerr.Usagef("job flags must be non-negative")
	}
	if *batchWindow < 0 || *batchMax < 1 {
		return zkerr.Usagef("-batch-window must be non-negative and -batch-max positive")
	}
	if *journalMaxMB < 0 || *jobRetention < 0 {
		return zkerr.Usagef("-journal-max-mb and -job-retention must be non-negative")
	}
	if *jobRetention > 0 && *journalMaxMB == 0 {
		// Retention GC only runs during compaction; a retention with no
		// compaction trigger would silently never fire.
		return zkerr.Usagef("-job-retention requires -journal-max-mb")
	}
	if *dataDir != "" {
		// Fail fast on an unusable data dir instead of serving 503s: the
		// background open would only discover this after the listener is up.
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			return zkerr.Usagef("-data-dir %s: %v", *dataDir, err)
		}
	} else if *jobWorkers > 0 || *jobPending > 0 || *jobAttempts > 0 || *breakerThreshold > 0 || *breakerCooldown > 0 || *journalMaxMB > 0 || *jobRetention > 0 || *batchWindow > 0 {
		return zkerr.Usagef("job flags require -data-dir")
	}
	if *clusterMode && *dataDir == "" {
		return zkerr.Usagef("-cluster requires -data-dir (the coordinator owns the job journal)")
	}
	if !*clusterMode && (*clusterKey != "" || !*localFallback) {
		return zkerr.Usagef("-cluster-key and -local-fallback=false require -cluster")
	}
	if *leaseTTL <= 0 {
		return zkerr.Usagef("-lease-ttl must be positive, got %v", *leaseTTL)
	}

	if *tenantWeight < 1 {
		return zkerr.Usagef("-tenant-default-weight must be >= 1, got %d", *tenantWeight)
	}
	if *tenantRate < 0 || *tenantBurst < 0 || *tenantMaxJobs < 0 || *cacheMB < 0 {
		return zkerr.Usagef("tenant and cache flags must be non-negative")
	}
	var tenants []tenant.Config
	if *tenantKeys != "" {
		var err error
		if tenants, err = tenant.LoadKeyfile(*tenantKeys); err != nil {
			return zkerr.Usagef("-tenant-keys: %v", err)
		}
	}

	params := nocap.DefaultParams()
	if *reps > 0 {
		params.Reps = *reps
	}
	params, err := nocap.WithHashEngine(params, *hash)
	if err != nil {
		return err
	}
	s, err := server.New(server.Config{
		Addr:           *addr,
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		MemoryBudgetMB: *memMB,
		MaxN:           *maxN,
		Params:         params,

		Tenants: tenants,
		TenantDefaults: tenant.Config{
			Weight:     *tenantWeight,
			RatePerSec: *tenantRate,
			Burst:      *tenantBurst,
			MaxJobs:    *tenantMaxJobs,
		},
		CacheMB: *cacheMB,

		DataDir:             *dataDir,
		JobWorkers:          *jobWorkers,
		JobMaxPending:       *jobPending,
		JobMaxAttempts:      *jobAttempts,
		JobBreakerThreshold: *breakerThreshold,
		JobBreakerCooldown:  *breakerCooldown,
		JobJournalMaxMB:     *journalMaxMB,
		JobRetention:        *jobRetention,
		JobBatchWindow:      *batchWindow,
		JobBatchMax:         *batchMax,

		ClusterEnabled:       *clusterMode,
		ClusterKey:           *clusterKey,
		ClusterLeaseTTL:      *leaseTTL,
		ClusterLocalFallback: *localFallback,
	})
	if err != nil {
		return zkerr.Usagef("tenant config: %v", err)
	}
	bound, err := s.Listen()
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	log.Printf("nocap-serve: listening on %s (%d workers, queue %d, timeout %v, mem %d MB)",
		bound, *workers, *queue, *timeout, *memMB)
	if len(tenants) > 0 {
		log.Printf("nocap-serve: %d keyed tenants loaded from %s", len(tenants), *tenantKeys)
	}
	if *cacheMB > 0 {
		log.Printf("nocap-serve: proof cache enabled (%d MB budget)", *cacheMB)
	}
	if *dataDir != "" {
		log.Printf("nocap-serve: async jobs enabled, journal in %s", *dataDir)
		if *journalMaxMB > 0 {
			log.Printf("nocap-serve: journal compaction at %d MB (retention %v)", *journalMaxMB, *jobRetention)
		}
	}
	if *clusterMode {
		log.Printf("nocap-serve: coordinator mode (lease TTL %v, local fallback %v); point nocap-worker at http://%s", *leaseTTL, *localFallback, bound)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve() }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	log.Printf("nocap-serve: draining (budget %v)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Shutdown(drainCtx); err != nil {
		log.Printf("nocap-serve: drain budget expired; in-flight runs were cancelled")
	}
	if err := <-serveErr; err != nil {
		return err
	}
	log.Printf("nocap-serve: drained cleanly")
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "nocap-serve: %v\n", err)
		if errors.Is(err, zkerr.ErrUsage) {
			fmt.Fprintln(os.Stderr, "run with -h for usage")
		}
		os.Exit(zkerr.ExitCode(err))
	}
}
