// Command nocap-sim drives the cycle-level NoCap simulator directly:
// simulate a proof at paper scale, inspect per-task timing, traffic,
// power, and area, and sweep hardware parameters.
//
// Usage:
//
//	nocap-sim -logn 24
//	nocap-sim -logn 30 -reps 3 -recompute=false
//	nocap-sim -logn 24 -mul-lanes 1024 -hbm 0.5
//
// Exit codes follow the error taxonomy (DESIGN.md §7): 0 success,
// 2 usage, 6 internal error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"nocap"
	"nocap/internal/isa"
	"nocap/internal/zkerr"
)

func run() (err error) {
	// Model bugs must surface as a typed internal error, never a stack
	// trace on the user's terminal.
	defer zkerr.RecoverTo(&err, "nocap-sim")

	logN := flag.Int("logn", 24, "log2 of padded constraint count")
	reps := flag.Int("reps", 3, "soundness repetitions")
	recompute := flag.Bool("recompute", true, "sumcheck recomputation optimization")
	mulLanes := flag.Int("mul-lanes", 2048, "multiplier/adder lanes")
	hashLanes := flag.Int("hash-lanes", 128, "hash FU lanes")
	nttLanes := flag.Int("ntt-lanes", 64, "NTT FU lanes")
	rfMB := flag.Float64("rf-mb", 8, "register file size in MB")
	hbm := flag.Float64("hbm", 1.0, "HBM bandwidth in TB/s")
	flag.Parse()

	switch {
	case *logN < 4 || *logN > 40:
		return zkerr.Usagef("-logn must be in [4,40], got %d", *logN)
	case *reps < 1 || *reps > 64:
		return zkerr.Usagef("-reps must be in [1,64], got %d", *reps)
	case *mulLanes < 1:
		return zkerr.Usagef("-mul-lanes must be positive, got %d", *mulLanes)
	case *hashLanes < 1:
		return zkerr.Usagef("-hash-lanes must be positive, got %d", *hashLanes)
	case *nttLanes < 1:
		return zkerr.Usagef("-ntt-lanes must be positive, got %d", *nttLanes)
	case *rfMB <= 0:
		return zkerr.Usagef("-rf-mb must be positive, got %g", *rfMB)
	case *hbm <= 0:
		return zkerr.Usagef("-hbm must be positive, got %g", *hbm)
	}

	cfg := nocap.DefaultHardware()
	cfg.MulLanes, cfg.AddLanes = *mulLanes, *mulLanes
	cfg.HashLanes = *hashLanes
	cfg.NTTLanes = *nttLanes
	cfg.RegFileBytes = int64(*rfMB * float64(1<<20))
	cfg.MemBytesPerCycle = 1024 * *hbm

	opts := nocap.DefaultProtocol()
	opts.Reps = *reps
	opts.Recompute = *recompute

	res := nocap.Simulate(cfg, *logN, opts)
	fmt.Printf("NoCap simulation: 2^%d constraints, reps=%d, recompute=%v\n",
		*logN, *reps, *recompute)
	fmt.Printf("prover time: %.3f ms (%d cycles)\n", res.Seconds()*1e3, res.Cycles)
	fmt.Printf("HBM traffic: %.2f GB (%.0f GB/s average)\n",
		float64(res.MemBytes)/1e9, float64(res.MemBytes)/res.Seconds()/1e9)

	fmt.Println("\nper-task timing:")
	fmt.Printf("  %-11s %14s %8s %12s %s\n", "task", "cycles", "share", "traffic", "bottleneck")
	for _, t := range res.Tasks {
		spill := ""
		if t.Spilled {
			spill = " (spilled)"
		}
		fmt.Printf("  %-11s %14d %7.1f%% %10.2fGB %s%s\n",
			t.Name, t.Cycles, 100*float64(t.Cycles)/float64(res.Cycles),
			float64(t.MemBytes)/1e9, t.Bottleneck, spill)
	}

	fmt.Println("\nfunctional unit utilization:")
	for fu := isa.FU(0); fu < isa.FUMem; fu++ {
		fmt.Printf("  %-8s %5.1f%%\n", fu, 100*res.Utilization(fu))
	}

	p := nocap.Power(res)
	a := nocap.Area(cfg)
	fmt.Printf("\npower: %.1f W (FU %.1f, regfile %.1f, HBM %.1f)\n",
		p.Total(), p.FU, p.RegFile, p.HBM)
	fmt.Printf("area:  %.2f mm² (compute %.2f, memory system %.2f)\n",
		a.Total(), a.Compute(), a.MemorySystem())
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "nocap-sim: %v\n", err)
		if errors.Is(err, zkerr.ErrUsage) {
			fmt.Fprintln(os.Stderr, "run with -h for usage")
		}
		os.Exit(zkerr.ExitCode(err))
	}
}
