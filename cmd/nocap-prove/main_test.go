package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
)

// buildBinary compiles nocap-prove once per test run and returns its path.
var buildBinary = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "nocap-prove-test-*")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "nocap-prove")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		return "", &exec.Error{Name: string(out), Err: err}
	}
	return bin, nil
})

// runCLI executes the built binary and returns its exit code and stderr.
func runCLI(t *testing.T, args ...string) (int, string) {
	t.Helper()
	bin, err := buildBinary()
	if err != nil {
		t.Fatalf("build nocap-prove: %v", err)
	}
	var stderr bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stderr = &stderr
	err = cmd.Run()
	if err == nil {
		return 0, stderr.String()
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), stderr.String()
	}
	t.Fatalf("run nocap-prove %v: %v", args, err)
	return -1, ""
}

// TestExitCodeTaxonomy pins the CLI's exit codes against the taxonomy
// (DESIGN.md §7): bad flags are usage (2); an unreadable -in file is an
// environment failure (generic 1), NOT a usage error — the flags were
// fine, the filesystem wasn't; a corrupt proof is malformed (3).
func TestExitCodeTaxonomy(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	t.Run("unknown circuit is usage", func(t *testing.T) {
		code, stderr := runCLI(t, "-circuit", "nope")
		if code != 2 {
			t.Fatalf("exit %d, want 2 (usage); stderr: %s", code, stderr)
		}
	})
	t.Run("bad reps is usage", func(t *testing.T) {
		code, _ := runCLI(t, "-circuit", "synthetic", "-reps", "99")
		if code != 2 {
			t.Fatalf("exit %d, want 2 (usage)", code)
		}
	})
	t.Run("missing -in file is environment failure not usage", func(t *testing.T) {
		code, stderr := runCLI(t, "-circuit", "synthetic", "-in",
			filepath.Join(t.TempDir(), "does-not-exist.bin"))
		if code != 1 {
			t.Fatalf("exit %d, want 1 (generic failure); stderr: %s", code, stderr)
		}
	})
	t.Run("corrupt proof is malformed", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "garbage.bin")
		if err := os.WriteFile(path, []byte("not a proof"), 0o644); err != nil {
			t.Fatal(err)
		}
		code, stderr := runCLI(t, "-circuit", "synthetic", "-in", path)
		if code != 3 {
			t.Fatalf("exit %d, want 3 (malformed); stderr: %s", code, stderr)
		}
	})
}

// TestProveRoundTripCLI proves a tiny circuit, writes the proof, and
// verifies it back through -in, exercising the full CLI happy path and
// the unified size clamping (n below every circuit floor still works).
func TestProveRoundTripCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	proof := filepath.Join(t.TempDir(), "proof.bin")
	if code, stderr := runCLI(t, "-circuit", "synthetic", "-n", "0", "-out", proof); code != 0 {
		t.Fatalf("prove exited %d; stderr: %s", code, stderr)
	}
	if code, stderr := runCLI(t, "-circuit", "synthetic", "-n", "0", "-in", proof); code != 0 {
		t.Fatalf("verify exited %d; stderr: %s", code, stderr)
	}
}
