// Command nocap-prove builds a benchmark circuit, generates a real
// Spartan+Orion proof with this repository's prover, verifies it, and
// reports statement/proof statistics.
//
// Usage:
//
//	nocap-prove -circuit auction -n 64
//	nocap-prove -circuit aes
//	nocap-prove -circuit synthetic -n 65536 -reps 3
//	nocap-prove -circuit rsa -out proof.bin      # save the proof
//	nocap-prove -circuit rsa -in proof.bin       # verify a saved proof
//	nocap-prove -circuit rsa -timeout 30s        # bound the whole run
//	nocap-prove -circuit rsa -hash keccak-x4     # multi-buffer hash engine
//
// Exit codes follow the error taxonomy (DESIGN.md §7): 0 success,
// 2 usage, 3 malformed proof, 4 soundness failure, 5 resource limit
// (including -timeout expiry and SIGINT/SIGTERM cancellation), 6
// internal error. A cancelled run exits cleanly: the in-flight proof is
// abandoned at its next checkpoint and -out never sees a partial file
// (proofs are written to a temp file and renamed into place).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"nocap"
	"nocap/internal/zkerr"
)

// writeFileAtomic writes data to path via a temp file in the same
// directory plus an atomic rename, so a crash, fault, or cancellation
// mid-write never leaves a truncated proof at path.
func writeFileAtomic(path string, data []byte, mode os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Chmod(tmpName, mode); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

func run(ctx context.Context) (err error) {
	// A bug anywhere below must exit with a typed internal error, not a
	// stack trace on the user's terminal.
	defer zkerr.RecoverTo(&err, "nocap-prove")

	circuit := flag.String("circuit", "auction", "aes|sha|rsa|auction|litmus|synthetic")
	n := flag.Int("n", 16, "circuit size parameter (blocks/bids/txns/constraints)")
	reps := flag.Int("reps", 1, "soundness repetitions (paper uses 3)")
	zk := flag.Bool("zk", true, "zero-knowledge masking")
	recompute := flag.Bool("recompute", false, "use the §V-A recomputation prover (identical proofs, different memory profile)")
	hash := flag.String("hash", "sha3", "hash engine: "+strings.Join(nocap.HashEngineNames(), "|"))
	out := flag.String("out", "", "write the serialized proof to this file")
	in := flag.String("in", "", "verify a serialized proof from this file instead of proving")
	maxMB := flag.Int("max-proof-mb", 0, "reject serialized proofs larger than this many MB (0 = default limits)")
	timeout := flag.Duration("timeout", 0, "abandon the run after this duration (0 = no limit)")
	flag.Parse()

	if *reps < 1 || *reps > 64 {
		return zkerr.Usagef("-reps must be in [1,64], got %d", *reps)
	}
	if *n < 0 {
		return zkerr.Usagef("-n must be non-negative, got %d", *n)
	}
	if *maxMB < 0 {
		return zkerr.Usagef("-max-proof-mb must be non-negative, got %d", *maxMB)
	}
	if *timeout < 0 {
		return zkerr.Usagef("-timeout must be non-negative, got %v", *timeout)
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Circuit lookup, size clamping included, is shared with the serving
	// layer (internal/circuits.ByName): the CLI and the service agree on
	// what every (circuit, n) pair means.
	bm, err := nocap.CircuitByName(*circuit, *n)
	if err != nil {
		return err
	}
	stats := bm.Inst.Stats()
	fmt.Printf("circuit %s: %d constraints, %d variables, %d nonzeros\n",
		bm.Name, stats.Constraints, stats.Vars, stats.NNZ)

	params := nocap.DefaultParams()
	params.Reps = *reps
	params.PCS.ZK = *zk
	params.Recompute = *recompute
	if params, err = nocap.WithHashEngine(params, *hash); err != nil {
		return err
	}
	if half := bm.Inst.NumVars() / 2; params.PCS.Rows > half {
		params.PCS.Rows = half
	}

	if *in != "" {
		// A file the OS can't read is an environment failure, not a usage
		// error: the flags were well-formed. Leave it untyped so it exits
		// with the generic failure code (1), distinct from usage (2) and
		// from the verifier taxonomy (3-6).
		data, err := os.ReadFile(*in)
		if err != nil {
			return fmt.Errorf("read proof: %w", err)
		}
		limits := nocap.DefaultDecodeLimits()
		if *maxMB > 0 {
			limits.MaxProofBytes = *maxMB << 20
		}
		proof, err := nocap.UnmarshalProofLimits(data, limits)
		if err != nil {
			return fmt.Errorf("decode proof: %w", err)
		}
		if err := nocap.VerifyCtx(ctx, params, bm.Inst, bm.IO, proof); err != nil {
			return fmt.Errorf("verify: %w", err)
		}
		fmt.Printf("proof from %s verified (%d bytes)\n", *in, len(data))
		return nil
	}

	start := time.Now()
	proof, err := nocap.ProveCtx(ctx, params, bm.Inst, bm.IO, bm.Witness)
	if err != nil {
		return fmt.Errorf("prove: %w", err)
	}
	fmt.Printf("proved in %v, proof %.2f MB\n", time.Since(start).Round(time.Millisecond),
		float64(proof.SizeBytes())/1e6)

	if *out != "" {
		data, err := nocap.MarshalProof(proof)
		if err != nil {
			return fmt.Errorf("marshal: %w", err)
		}
		if err := writeFileAtomic(*out, data, 0o644); err != nil {
			return fmt.Errorf("write: %w", err)
		}
		fmt.Printf("proof written to %s (%d bytes)\n", *out, len(data))
	}

	start = time.Now()
	if err := nocap.VerifyCtx(ctx, params, bm.Inst, bm.IO, proof); err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	fmt.Printf("verified in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func main() {
	// SIGINT/SIGTERM cancel the context: the in-flight prove/verify is
	// abandoned at its next cooperative checkpoint and the process exits
	// with the resource-limit code instead of being killed mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "nocap-prove: %v\n", err)
		switch {
		case errors.Is(err, zkerr.ErrUsage):
			fmt.Fprintln(os.Stderr, "run with -h for usage")
		case errors.Is(err, context.DeadlineExceeded):
			fmt.Fprintln(os.Stderr, "run abandoned: -timeout expired")
		case errors.Is(err, context.Canceled):
			fmt.Fprintln(os.Stderr, "run abandoned: interrupted")
		}
		os.Exit(zkerr.ExitCode(err))
	}
}
