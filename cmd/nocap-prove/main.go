// Command nocap-prove builds a benchmark circuit, generates a real
// Spartan+Orion proof with this repository's prover, verifies it, and
// reports statement/proof statistics.
//
// Usage:
//
//	nocap-prove -circuit auction -n 64
//	nocap-prove -circuit aes
//	nocap-prove -circuit synthetic -n 65536 -reps 3
//	nocap-prove -circuit rsa -out proof.bin      # save the proof
//	nocap-prove -circuit rsa -in proof.bin       # verify a saved proof
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nocap"
)

func buildCircuit(name string, n int) *nocap.Benchmark {
	switch name {
	case "aes":
		key := [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
			0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
		blocks := n
		if blocks < 1 {
			blocks = 1
		}
		pt := make([]byte, 16*blocks)
		for i := range pt {
			pt[i] = byte(i)
		}
		return nocap.AES(key, pt)
	case "sha":
		blocks := n
		if blocks < 1 {
			blocks = 1
		}
		data := make([]byte, 64*blocks)
		for i := range data {
			data[i] = byte(i * 3)
		}
		return nocap.SHA256(data)
	case "rsa":
		sq := n
		if sq < 1 {
			sq = 4
		}
		return nocap.RSA(sq, 8, 42)
	case "auction":
		bids := make([]uint64, max(n, 4))
		for i := range bids {
			bids[i] = uint64((i*2654435761 + 12345) % (1 << 20))
		}
		return nocap.Auction(bids)
	case "litmus":
		return nocap.Litmus(max(n, 4), 8, 42)
	case "synthetic":
		return nocap.Synthetic(max(n, 64))
	}
	return nil
}

func main() {
	circuit := flag.String("circuit", "auction", "aes|sha|rsa|auction|litmus|synthetic")
	n := flag.Int("n", 16, "circuit size parameter (blocks/bids/txns/constraints)")
	reps := flag.Int("reps", 1, "soundness repetitions (paper uses 3)")
	zk := flag.Bool("zk", true, "zero-knowledge masking")
	recompute := flag.Bool("recompute", false, "use the §V-A recomputation prover (identical proofs, different memory profile)")
	out := flag.String("out", "", "write the serialized proof to this file")
	in := flag.String("in", "", "verify a serialized proof from this file instead of proving")
	flag.Parse()

	bm := buildCircuit(*circuit, *n)
	if bm == nil {
		fmt.Fprintf(os.Stderr, "unknown circuit %q\n", *circuit)
		os.Exit(1)
	}
	stats := bm.Inst.Stats()
	fmt.Printf("circuit %s: %d constraints, %d variables, %d nonzeros\n",
		bm.Name, stats.Constraints, stats.Vars, stats.NNZ)

	params := nocap.DefaultParams()
	params.Reps = *reps
	params.PCS.ZK = *zk
	params.Recompute = *recompute
	if half := bm.Inst.NumVars() / 2; params.PCS.Rows > half {
		params.PCS.Rows = half
	}

	if *in != "" {
		data, err := os.ReadFile(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "read proof: %v\n", err)
			os.Exit(1)
		}
		proof, err := nocap.UnmarshalProof(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "decode proof: %v\n", err)
			os.Exit(1)
		}
		if err := nocap.Verify(params, bm.Inst, bm.IO, proof); err != nil {
			fmt.Fprintf(os.Stderr, "verify: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("proof from %s verified (%d bytes)\n", *in, len(data))
		return
	}

	start := time.Now()
	proof, err := nocap.Prove(params, bm.Inst, bm.IO, bm.Witness)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prove: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("proved in %v, proof %.2f MB\n", time.Since(start).Round(time.Millisecond),
		float64(proof.SizeBytes())/1e6)

	if *out != "" {
		data, err := nocap.MarshalProof(proof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("proof written to %s (%d bytes)\n", *out, len(data))
	}

	start = time.Now()
	if err := nocap.Verify(params, bm.Inst, bm.IO, proof); err != nil {
		fmt.Fprintf(os.Stderr, "verify: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("verified in %v\n", time.Since(start).Round(time.Millisecond))
}
