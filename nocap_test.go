package nocap_test

import (
	"bytes"
	"strings"
	"testing"

	"nocap"
)

func TestQuickstartFlow(t *testing.T) {
	// The doc-comment quickstart must work verbatim.
	b := nocap.NewBuilder()
	x := b.Secret(nocap.NewElement(3))
	sq := b.Square(nocap.FromVar(x))
	pub := b.Public(b.Value(sq))
	b.AssertEq(nocap.FromVar(sq), nocap.FromVar(pub))
	inst, io, w := b.Build()
	proof, err := nocap.Prove(nocap.TestParams(), inst, io, w)
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	if err := nocap.Verify(nocap.TestParams(), inst, io, proof); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestBenchmarkCircuitsThroughFacade(t *testing.T) {
	bm := nocap.Auction([]uint64{10, 50, 20})
	proof, err := nocap.Prove(nocap.TestParams(), bm.Inst, bm.IO, bm.Witness)
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	if err := nocap.Verify(nocap.TestParams(), bm.Inst, bm.IO, proof); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestSimulateAndModels(t *testing.T) {
	res := nocap.Simulate(nocap.DefaultHardware(), 24, nocap.DefaultProtocol())
	if sec := res.Seconds(); sec < 0.14 || sec > 0.16 {
		t.Fatalf("simulated 2^24 proof %.3fs, expected ≈0.151", sec)
	}
	if a := nocap.Area(nocap.DefaultHardware()).Total(); a < 45 || a > 47 {
		t.Fatalf("area %.2f", a)
	}
	if p := nocap.Power(res).Total(); p < 55 || p > 68 {
		t.Fatalf("power %.1f", p)
	}
}

func TestWriteEvaluation(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation is slow")
	}
	var buf bytes.Buffer
	if err := nocap.WriteEvaluation(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table I", "Table II", "Table III", "Table IV", "Table V",
		"Figure 5", "Figure 6", "Figure 7", "Figure 8", "multiply-count",
		"protocol optimizations", "verifiable database", "photo"} {
		if !strings.Contains(out, want) {
			t.Errorf("evaluation missing %q", want)
		}
	}
}

func TestLCAlgebraFacade(t *testing.T) {
	b := nocap.NewBuilder()
	x := b.Secret(nocap.NewElement(5))
	lc := nocap.AddLC(
		nocap.ScaleLC(nocap.NewElement(3), nocap.FromVar(x)),
		nocap.SubLC(nocap.Const(nocap.NewElement(10)), nocap.FromVar(x)))
	if b.Eval(lc) != nocap.NewElement(3*5+10-5) {
		t.Fatalf("LC algebra broken: %v", b.Eval(lc))
	}
}
