package nocap

import (
	"context"

	"nocap/internal/spartan"
)

// BatchPlan is a shared-structure plan for proving the same statement
// many times (DESIGN.md §15). Building the plan performs the
// once-per-batch work — circuit synthesis, z assembly, the three SpMV
// products and the satisfaction check, the instance-digest hash, the
// PCS geometry plan with warmed NTT twiddle and encoder caches — and
// each ProveMemberCtx call then proves one member against that shared
// state. Member proofs are byte-identical to solo ProveCtx proofs of
// the same statement (with ZK enabled the proofs are nondeterministic
// either way; the shared state is witness-randomness-free, so the
// distribution is unchanged).
//
// Members run through the plan one at a time; the plan serializes
// concurrent callers internally.
type BatchPlan struct {
	sh *spartan.Shared
	bm *Benchmark
}

// NewBatchPlanCtx builds the shared-structure plan for the named
// benchmark circuit at size parameter n (the same name/size resolution
// as CircuitByName). The once-per-batch work runs under ctx and is
// attributed to its collector, if any.
func NewBatchPlanCtx(ctx context.Context, p Params, circuit string, n int) (*BatchPlan, error) {
	bm, err := CircuitByName(circuit, n)
	if err != nil {
		return nil, err
	}
	return NewBatchPlanForCtx(ctx, p, bm)
}

// NewBatchPlanForCtx builds the shared-structure plan for an explicit
// statement.
func NewBatchPlanForCtx(ctx context.Context, p Params, bm *Benchmark) (*BatchPlan, error) {
	sh, err := spartan.NewSharedCtx(ctx, p, bm.Inst, bm.IO, bm.Witness)
	if err != nil {
		return nil, err
	}
	return &BatchPlan{sh: sh, bm: bm}, nil
}

// ProveMemberCtx proves one batch member through the shared plan. Each
// call gets its own transcript and (with ZK) its own randomness;
// cancellation and fault injection apply to this member only. Attach a
// per-member Collector to ctx for per-job stats attribution, then
// credit each member its share of the plan's own work with
// SplitProveStats + AddStats.
func (p *BatchPlan) ProveMemberCtx(ctx context.Context) (*Proof, error) {
	return p.sh.ProveCtx(ctx)
}

// Benchmark returns the statement the plan proves.
func (p *BatchPlan) Benchmark() *Benchmark { return p.bm }

// Params returns the parameters the plan was built for.
func (p *BatchPlan) Params() Params { return p.sh.Params() }
