package nocap_test

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"nocap/internal/experiments"
)

// hashBenchDir names the directory TestHashBenchJSON writes per-engine
// Merkle-kernel measurements to, one BENCH_hash_<engine>.json per
// registered engine:
//
//	go test -run TestHashBenchJSON -hashbench . .
//
// Without the flag the test is skipped, so the ordinary suite stays fast.
var hashBenchDir = flag.String("hashbench", "", "write per-engine hash benchmark JSON files to this directory")

// TestHashBenchJSON benchmarks the Merkle level-compression kernel under
// every registered hash engine at logN 10/12/14 and emits one
// BENCH_hash_<engine>.json per engine for CI trend tracking. Each row
// carries the ns per level, node and byte throughput, and the speedup
// over the scalar sha3 engine at the same size — the software analogue
// of the paper's multi-lane hash FU comparison (§IV-B).
func TestHashBenchJSON(t *testing.T) {
	if *hashBenchDir == "" {
		t.Skip("-hashbench not set")
	}
	results, err := experiments.HashMatrixCtx(context.Background(), []int{10, 12, 14})
	if err != nil {
		t.Fatal(err)
	}
	byEngine := make(map[string][]experiments.HashBenchResult)
	var order []string
	for _, r := range results {
		if _, ok := byEngine[r.Engine]; !ok {
			order = append(order, r.Engine)
		}
		byEngine[r.Engine] = append(byEngine[r.Engine], r)
		t.Logf("%s logN=%d: %.0f ns/level, %.0f nodes/s, %.2fx vs sha3",
			r.Engine, r.LogN, r.NsPerOp, r.NodesPerSec, r.SpeedupVsSHA3)
	}
	for _, name := range order {
		data, err := json.MarshalIndent(byEngine[name], "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, '\n')
		path := filepath.Join(*hashBenchDir, fmt.Sprintf("BENCH_hash_%s.json", name))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
