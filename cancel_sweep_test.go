// Cancellation-timing sweep (ISSUE satellite): cancel ProveCtx at ~20
// distinct points — half chosen by wall-clock fraction of a measured
// clean prove, half pinned to exact injection points via faultinject
// Hook plans — and assert the chaos invariants each time: the error (if
// the prove didn't already finish) is context.Canceled or
// context.DeadlineExceeded, the prover returns promptly after the
// cancellation, no goroutines leak, and a clean retry succeeds.
package nocap_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"nocap"
	"nocap/internal/faultinject"
	"nocap/internal/leakcheck"
	"nocap/internal/zkerr"
)

// cancelReturnBudget bounds how long ProveCtx may keep running after its
// context is cancelled. The checkpoint policy (DESIGN.md §8) targets
// ≤100ms between checks at full scale; the bound here is looser only to
// absorb scheduler noise on loaded CI runners.
const cancelReturnBudget = 250 * time.Millisecond

// sweepBench is a larger instance than the chaos matrix uses, so a
// clean prove spans enough wall-clock time for fractional cancellation
// to land at different stages.
func sweepBench() (*nocap.Benchmark, nocap.Params) {
	bm := nocap.Synthetic(1 << 13)
	params := nocap.TestParams()
	params.Reps = 2
	if half := bm.Inst.NumVars() / 2; params.PCS.Rows > half {
		params.PCS.Rows = half
	}
	return bm, params
}

func TestCancelSweepTimeBased(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is not short")
	}
	bm, params := sweepBench()
	prove := func(ctx context.Context) error {
		_, err := nocap.ProveCtx(ctx, params, bm.Inst, bm.IO, bm.Witness)
		return err
	}

	start := time.Now()
	if err := prove(context.Background()); err != nil {
		t.Fatalf("clean prove: %v", err)
	}
	cleanDur := time.Since(start)
	t.Logf("clean prove: %v", cleanDur)

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		frac := rng.Float64()
		delay := time.Duration(frac * float64(cleanDur))
		snap := leakcheck.Take()
		ctx, cancel := context.WithCancel(context.Background())
		var cancelledAt time.Time
		timer := time.AfterFunc(delay, func() {
			cancelledAt = time.Now()
			cancel()
		})
		err := prove(ctx)
		returned := time.Now()
		timer.Stop()
		cancel()

		if err != nil {
			// The cancel beat the prove; it must surface as the raw
			// context error, and the prover must have returned within the
			// checkpoint budget of the cancellation instant.
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("sweep %d (%.0f%%): wrong error class: %v", i, 100*frac, err)
			}
			if lag := returned.Sub(cancelledAt); lag > cancelReturnBudget {
				t.Fatalf("sweep %d (%.0f%%): prover ran %v past cancellation (budget %v)", i, 100*frac, lag, cancelReturnBudget)
			}
		}
		snap.Check(t)
	}

	// Deadline flavor: a deadline shorter than the clean prove must
	// surface DeadlineExceeded, and the overrun past the deadline must
	// stay within the checkpoint budget.
	for i := 0; i < 5; i++ {
		frac := 0.1 + 0.15*float64(i)
		deadline := time.Duration(frac * float64(cleanDur))
		if deadline <= 0 {
			deadline = time.Millisecond
		}
		snap := leakcheck.Take()
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		startRun := time.Now()
		err := prove(ctx)
		overrun := time.Since(startRun) - deadline
		cancel()
		if err == nil {
			// The prove finished under the deadline (timing noise on a
			// fast machine); nothing to assert beyond no-leak.
			snap.Check(t)
			continue
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("deadline sweep %d: wrong error class: %v", i, err)
		}
		if overrun > cancelReturnBudget {
			t.Fatalf("deadline sweep %d: prover ran %v past its deadline (budget %v)", i, overrun, cancelReturnBudget)
		}
		snap.Check(t)
	}

	// Containment: after the whole sweep, a clean prove still succeeds.
	if err := prove(context.Background()); err != nil {
		t.Fatalf("clean prove after sweep failed: %v", err)
	}
}

// TestCancelSweepInjectionPointBased pins cancellation to exact pipeline
// positions: a Hook plan cancels the context at the Nth hit of a
// recorded injection point, then the pipeline runs on to its next
// cooperative checkpoint and must return context.Canceled. Seeds drive
// faultinject.RandomPlan, so each seed deterministically selects the
// same {point, hit}.
func TestCancelSweepInjectionPointBased(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is not short")
	}
	bm, params := sweepBench()
	prove := func(ctx context.Context) error {
		_, err := nocap.ProveCtx(ctx, params, bm.Inst, bm.IO, bm.Witness)
		return err
	}
	trace := recordPoints(t, func() error { return prove(context.Background()) })

	for seed := int64(0); seed < 10; seed++ {
		plan, err := faultinject.RandomPlan(seed, trace, []faultinject.Kind{faultinject.Hook})
	if err != nil {
		t.Fatalf("RandomPlan(seed %d): %v", seed, err)
	}
		t.Run(plan.Point, func(t *testing.T) {
			defer faultinject.Disarm()
			snap := leakcheck.Take()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var cancelledAt time.Time
			plan.Hook = func() error {
				cancelledAt = time.Now()
				cancel()
				return nil
			}
			faultinject.MustArm(plan)
			err := prove(ctx)
			returned := time.Now()
			if !faultinject.Fired() {
				t.Fatalf("hook at %s (hit %d) never fired", plan.Point, plan.Trigger)
			}
			faultinject.Disarm()
			// The hook may land on the final checkpoint of the run, in
			// which case the prove legitimately completes; otherwise the
			// cancellation must surface raw and promptly.
			if err != nil {
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("wrong error class after hook cancel: %v", err)
				}
				if lag := returned.Sub(cancelledAt); lag > cancelReturnBudget {
					t.Fatalf("prover ran %v past cancellation at %s (budget %v)", lag, plan.Point, cancelReturnBudget)
				}
			}
			snap.Check(t)
			if err := prove(context.Background()); err != nil {
				t.Fatalf("clean retry after hook cancel failed: %v", err)
			}
		})
	}
}

// TestCancelDelayWithDeadline combines the Delay fault kind with a
// context deadline: the injected stall at a chosen stage makes the
// deadline expire mid-pipeline, and the next checkpoint must surface
// DeadlineExceeded.
func TestCancelDelayWithDeadline(t *testing.T) {
	bm, params := chaosBench()
	for _, point := range []string{"spartan.prove.spmv", "pcs.commit.leaves", "sumcheck.prove.round"} {
		t.Run(point, func(t *testing.T) {
			defer faultinject.Disarm()
			snap := leakcheck.Take()
			// The deadline must be long enough that the prover reliably
			// reaches the armed point first (a chaos-scale prove under
			// -race takes ~30ms on a loaded runner; 150ms gives 5×
			// headroom), and the stall long enough that the deadline
			// always expires inside it.
			faultinject.MustArm(faultinject.Plan{Point: point, Kind: faultinject.Delay, Sleep: 500 * time.Millisecond})
			ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
			defer cancel()
			_, err := nocap.ProveCtx(ctx, params, bm.Inst, bm.IO, bm.Witness)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("want DeadlineExceeded after injected stall at %s, got %v", point, err)
			}
			if !faultinject.Fired() {
				t.Fatal("delay plan never fired")
			}
			faultinject.Disarm()
			snap.Check(t)
			if _, err := nocap.ProveCtx(context.Background(), params, bm.Inst, bm.IO, bm.Witness); err != nil {
				t.Fatalf("clean retry failed: %v", err)
			}
		})
	}
}

// TestCancelExitCodeMapping pins the CLI-facing contract: a cancelled or
// timed-out run maps to the resource-limit exit code (5), matching the
// -timeout documentation in cmd/nocap-prove.
func TestCancelExitCodeMapping(t *testing.T) {
	bm, params := chaosBench()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := nocap.ProveCtx(ctx, params, bm.Inst, bm.IO, bm.Witness)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled prove: %v", err)
	}
	if code := zkerr.ExitCode(err); code != 5 {
		t.Fatalf("cancelled prove maps to exit code %d, want 5 (resource limit)", code)
	}
	if code := zkerr.ExitCode(context.DeadlineExceeded); code != 5 {
		t.Fatalf("deadline expiry maps to exit code %d, want 5", code)
	}
}
