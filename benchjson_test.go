package nocap_test

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"testing"

	"nocap"
)

// benchJSON names the file TestProveBenchJSON writes machine-readable
// end-to-end prove measurements to, e.g.
//
//	go test -run TestProveBenchJSON -benchjson BENCH_prove.json
//
// Without the flag the test is skipped, so the ordinary suite stays fast.
var benchJSON = flag.String("benchjson", "", "write prove benchmark results to this JSON file")

// proveBenchEntry is one benchmarked prove configuration.
type proveBenchEntry struct {
	Name     string  `json:"name"`
	LogN     int     `json:"log_n"`
	Iters    int     `json:"iters"`
	NsPerOp  int64   `json:"ns_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
	BytesOp  int64   `json:"bytes_per_op"`
	MBPerSec float64 `json:"-"`

	// Per-stage kernel counters, averaged per prove.
	Stages map[string]stageJSON `json:"stages"`
	// Arena behavior, averaged per prove.
	Arena arenaJSON `json:"arena"`
}

type stageJSON struct {
	Calls  int64 `json:"calls"`
	Elems  int64 `json:"elems"`
	WallNs int64 `json:"wall_ns"`
}

type arenaJSON struct {
	Gets   int64 `json:"gets"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// benchEntry converts one measured configuration to its JSON row,
// dividing the counters for iters proves by iters.
func benchEntry(logN int, res testing.BenchmarkResult, run nocap.ProveStats, iters int) proveBenchEntry {
	n := int64(iters)
	stages := make(map[string]stageJSON, 5)
	for name, ss := range run.Stages.Named() {
		stages[name] = stageJSON{
			Calls:  ss.Calls / n,
			Elems:  ss.Elems / n,
			WallNs: int64(ss.Wall) / n,
		}
	}
	return proveBenchEntry{
		Name:     "Prove/synthetic",
		LogN:     logN,
		Iters:    iters,
		NsPerOp:  res.NsPerOp(),
		AllocsOp: res.AllocsPerOp(),
		BytesOp:  res.AllocedBytesPerOp(),
		Stages:   stages,
		Arena: arenaJSON{
			Gets:   run.Arena.Gets / n,
			Hits:   run.Arena.Hits / n,
			Misses: run.Arena.Misses / n,
		},
	}
}

// TestProveBenchJSON measures the real prover end to end and emits
// BENCH_prove.json-style output for CI trend tracking.
//
// Counters are gathered with a per-invocation Collector inside the
// testing.Benchmark closure, not by bracketing the whole Benchmark call
// with process-global snapshots: testing.Benchmark probes with small b.N
// rounds before the timed run, and a single outer bracket would fold
// those probe rounds' work into a delta divided by only the final
// round's N, inflating every per-op counter. The closure runs once per
// round with a fresh collector, so the last round's snapshot — the pair
// (run, iters) left behind when Benchmark returns — covers exactly
// iters proves. TestProveBenchPerOpInvariant pins this.
func TestProveBenchJSON(t *testing.T) {
	if *benchJSON == "" {
		t.Skip("-benchjson not set")
	}
	params := nocap.TestParams()
	var entries []proveBenchEntry
	for _, logN := range []int{10, 12, 14} {
		bm := nocap.Synthetic(1 << uint(logN))
		var run nocap.ProveStats
		var iters int
		res := testing.Benchmark(func(b *testing.B) {
			col := nocap.NewCollector()
			ctx := col.Attach(context.Background())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := nocap.ProveCtx(ctx, params, bm.Inst, bm.IO, bm.Witness); err != nil {
					b.Fatal(err)
				}
			}
			run = col.Stats()
			iters = b.N
		})
		entries = append(entries, benchEntry(logN, res, run, iters))
		t.Logf("logN=%d: %d ns/op, %d allocs/op, %d B/op",
			logN, res.NsPerOp(), res.AllocsPerOp(), res.AllocedBytesPerOp())
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*benchJSON, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestProveBenchPerOpInvariant is the regression test for the probe-round
// accounting bug: per-op counters must not depend on how many iterations
// the measurement loop ran. It measures the same circuit with 1 and with
// 3 iterations through the same per-invocation-collector path the JSON
// emitter uses and requires identical per-op deterministic counters
// (Calls, Elems, Gets, Puts — hit/miss split and wall time legitimately
// vary with pool state and scheduling).
func TestProveBenchPerOpInvariant(t *testing.T) {
	params := nocap.TestParams()
	bm := nocap.Synthetic(1 << 10)
	perOp := func(iters int) nocap.ProveStats {
		col := nocap.NewCollector()
		ctx := col.Attach(context.Background())
		for i := 0; i < iters; i++ {
			if _, err := nocap.ProveCtx(ctx, params, bm.Inst, bm.IO, bm.Witness); err != nil {
				t.Fatal(err)
			}
		}
		out := col.Stats()
		n := int64(iters)
		for _, ss := range []*nocap.StageStats{
			&out.Stages.Sumcheck, &out.Stages.Encode, &out.Stages.Merkle,
			&out.Stages.SpMV, &out.Stages.Poly,
		} {
			ss.Calls /= n
			ss.Elems /= n
			ss.Wall = 0
		}
		out.Arena.Gets /= n
		out.Arena.Puts /= n
		out.Arena.Hits, out.Arena.Misses = 0, 0
		out.Arena.Outstanding, out.Arena.OutstandingElems = 0, 0
		out.Arena.DoubleReturns = 0
		return out
	}
	one := perOp(1)
	three := perOp(3)
	if one != three {
		t.Errorf("per-op counters depend on iteration count:\n 1 iter: %+v\n 3 iters: %+v", one, three)
	}
	if got := perOp(1); got != one {
		t.Errorf("per-op counters not reproducible across runs:\n first: %+v\n again: %+v", one, got)
	}
}
