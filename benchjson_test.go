package nocap_test

import (
	"encoding/json"
	"flag"
	"os"
	"testing"

	"nocap"
)

// benchJSON names the file TestProveBenchJSON writes machine-readable
// end-to-end prove measurements to, e.g.
//
//	go test -run TestProveBenchJSON -benchjson BENCH_prove.json
//
// Without the flag the test is skipped, so the ordinary suite stays fast.
var benchJSON = flag.String("benchjson", "", "write prove benchmark results to this JSON file")

// proveBenchEntry is one benchmarked prove configuration.
type proveBenchEntry struct {
	Name     string  `json:"name"`
	LogN     int     `json:"log_n"`
	Iters    int     `json:"iters"`
	NsPerOp  int64   `json:"ns_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
	BytesOp  int64   `json:"bytes_per_op"`
	MBPerSec float64 `json:"-"`

	// Per-stage kernel counters, averaged per prove.
	Stages map[string]stageJSON `json:"stages"`
	// Arena behavior, averaged per prove.
	Arena arenaJSON `json:"arena"`
}

type stageJSON struct {
	Calls  int64 `json:"calls"`
	Elems  int64 `json:"elems"`
	WallNs int64 `json:"wall_ns"`
}

type arenaJSON struct {
	Gets   int64 `json:"gets"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// TestProveBenchJSON measures the real prover end to end and emits
// BENCH_prove.json-style output for CI trend tracking.
func TestProveBenchJSON(t *testing.T) {
	if *benchJSON == "" {
		t.Skip("-benchjson not set")
	}
	params := nocap.TestParams()
	var entries []proveBenchEntry
	for _, logN := range []int{10, 12, 14} {
		bm := nocap.Synthetic(1 << uint(logN))
		before := nocap.ReadProveStats()
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := nocap.Prove(params, bm.Inst, bm.IO, bm.Witness); err != nil {
					b.Fatal(err)
				}
			}
		})
		run := nocap.ReadProveStats().Delta(before)
		n := int64(res.N)
		stages := make(map[string]stageJSON, 5)
		for name, ss := range run.Stages.Named() {
			stages[name] = stageJSON{
				Calls:  ss.Calls / n,
				Elems:  ss.Elems / n,
				WallNs: int64(ss.Wall) / n,
			}
		}
		entries = append(entries, proveBenchEntry{
			Name:     "Prove/synthetic",
			LogN:     logN,
			Iters:    res.N,
			NsPerOp:  res.NsPerOp(),
			AllocsOp: res.AllocsPerOp(),
			BytesOp:  res.AllocedBytesPerOp(),
			Stages:   stages,
			Arena: arenaJSON{
				Gets:   run.Arena.Gets / n,
				Hits:   run.Arena.Hits / n,
				Misses: run.Arena.Misses / n,
			},
		})
		t.Logf("logN=%d: %d ns/op, %d allocs/op, %d B/op",
			logN, res.NsPerOp(), res.AllocsPerOp(), res.AllocedBytesPerOp())
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*benchJSON, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
