// Chaos test suite (ISSUE: deterministic fault injection with leak
// checking). A recording run discovers every injection point the small
// benchmark pipeline actually passes through; the matrix then arms one
// {point, kind, trigger} cell at a time and proves the three containment
// invariants for each:
//
//  1. the fault surfaces as the right taxonomy class (ErrInternal for
//     injected errors and panics — never a raw panic, never a wrong
//     sentinel),
//  2. no goroutine leaks: every worker the pipeline started is back
//     before the leak checker's grace period expires,
//  3. the very next clean Prove/Verify on the same inputs succeeds —
//     a contained fault never corrupts shared state.
//
// The faultinject registry is process-global, so nothing here runs with
// t.Parallel().
package nocap_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"nocap"
	"nocap/internal/faultinject"
	"nocap/internal/leakcheck"
)

// chaosBench builds the small circuit the whole chaos suite runs on.
func chaosBench() (*nocap.Benchmark, nocap.Params) {
	bm := nocap.Synthetic(1024)
	params := nocap.TestParams()
	if half := bm.Inst.NumVars() / 2; params.PCS.Rows > half {
		params.PCS.Rows = half
	}
	return bm, params
}

// recordPoints runs the stage fn under a recording session and returns
// the ordered injection-point trace it hit.
func recordPoints(t *testing.T, fn func() error) []string {
	t.Helper()
	faultinject.StartRecording()
	err := fn()
	trace := faultinject.StopRecording()
	if err != nil {
		t.Fatalf("clean recording run failed: %v", err)
	}
	if len(trace) == 0 {
		t.Fatal("recording run hit no injection points")
	}
	return trace
}

// assertContained checks the three invariants for one armed cell: err is
// the expected class, the plan actually fired, no goroutines leaked, and
// a clean retry succeeds.
func assertContained(t *testing.T, err error, snap *leakcheck.Snapshot, retry func() error) {
	t.Helper()
	if err == nil {
		t.Fatal("injected fault produced no error")
	}
	if !errors.Is(err, nocap.ErrInternal) {
		t.Fatalf("injected fault surfaced as the wrong class: %v", err)
	}
	if !faultinject.Fired() {
		t.Fatal("armed plan never fired (vacuous cell)")
	}
	faultinject.Disarm()
	snap.Check(t)
	if err := retry(); err != nil {
		t.Fatalf("clean retry after contained fault failed: %v", err)
	}
}

// TestChaosProveMatrix arms {point × {Error, Panic}} for every injection
// point a clean prove passes through, at both the first and the last hit
// of the point, and proves the three invariants for each cell.
func TestChaosProveMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is not short")
	}
	bm, params := chaosBench()
	prove := func() error {
		_, err := nocap.ProveCtx(context.Background(), params, bm.Inst, bm.IO, bm.Witness)
		return err
	}
	trace := recordPoints(t, prove)
	counts := faultinject.HitCounts(trace)
	t.Logf("prove pipeline has %d injection points (%d hits total)", len(counts), len(trace))

	for point, hits := range counts {
		for _, kind := range []faultinject.Kind{faultinject.Error, faultinject.Panic} {
			for _, trigger := range triggersFor(hits) {
				name := fmt.Sprintf("%s/%s/hit%d", point, kind, trigger)
				t.Run(name, func(t *testing.T) {
					defer faultinject.Disarm()
					snap := leakcheck.Take()
					faultinject.MustArm(faultinject.Plan{Point: point, Kind: kind, Trigger: trigger})
					err := prove()
					assertContained(t, err, snap, prove)
				})
			}
		}
	}
}

// TestChaosVerifyMatrix is the verify-side matrix: faults injected into
// VerifyCtx of a genuinely valid proof must surface as ErrInternal (the
// verifier's "I am broken" class), never as a soundness rejection of the
// honest proof, and must leave the verifier able to accept the same
// proof immediately afterwards.
func TestChaosVerifyMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is not short")
	}
	bm, params := chaosBench()
	proof, err := nocap.ProveCtx(context.Background(), params, bm.Inst, bm.IO, bm.Witness)
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	verify := func() error {
		return nocap.VerifyCtx(context.Background(), params, bm.Inst, bm.IO, proof)
	}
	trace := recordPoints(t, verify)
	counts := faultinject.HitCounts(trace)
	t.Logf("verify pipeline has %d injection points (%d hits total)", len(counts), len(trace))

	for point, hits := range counts {
		for _, kind := range []faultinject.Kind{faultinject.Error, faultinject.Panic} {
			for _, trigger := range triggersFor(hits) {
				name := fmt.Sprintf("%s/%s/hit%d", point, kind, trigger)
				t.Run(name, func(t *testing.T) {
					defer faultinject.Disarm()
					snap := leakcheck.Take()
					faultinject.MustArm(faultinject.Plan{Point: point, Kind: kind, Trigger: trigger})
					err := verify()
					assertContained(t, err, snap, verify)
				})
			}
		}
	}
}

// triggersFor picks the trigger counts to exercise for a point with the
// given total hits: the first hit, and (when the point is hit more than
// once) the last hit, so both "fails immediately" and "fails after
// partial progress" are covered.
func triggersFor(hits uint64) []uint64 {
	if hits <= 1 {
		return []uint64{1}
	}
	return []uint64{1, hits}
}

// TestChaosStageCoverage pins the injection-point catalog: every stage
// boundary named in DESIGN.md §8 that this pipeline configuration
// executes must appear in the recorded trace, so a refactor that silently
// drops a checkpoint fails here rather than weakening the chaos matrix.
func TestChaosStageCoverage(t *testing.T) {
	bm, params := chaosBench()
	prove := func() error {
		_, err := nocap.ProveCtx(context.Background(), params, bm.Inst, bm.IO, bm.Witness)
		return err
	}
	counts := faultinject.HitCounts(recordPoints(t, prove))
	for _, point := range []string{
		"spartan.prove.assemble",
		"spartan.prove.commit",
		"spartan.prove.spmv",
		"spartan.prove.outer",
		"spartan.prove.inner",
		"spartan.prove.open",
		"pcs.commit.encode",
		"pcs.commit.leaves",
		"pcs.commit.tree",
		"pcs.open.eval",
		"pcs.open.prox",
		"pcs.open.columns",
		"merkle.build.level",
		"sumcheck.prove.round",
		"par.worker",
	} {
		if counts[point] == 0 {
			t.Errorf("prove trace missing stage checkpoint %q", point)
		}
	}

	proof, err := nocap.ProveCtx(context.Background(), params, bm.Inst, bm.IO, bm.Witness)
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	counts = faultinject.HitCounts(recordPoints(t, func() error {
		return nocap.VerifyCtx(context.Background(), params, bm.Inst, bm.IO, proof)
	}))
	for _, point := range []string{
		"spartan.verify.rep",
		"spartan.verify.matrixevals",
		"spartan.verify.opening",
		"pcs.verify.columns",
	} {
		if counts[point] == 0 {
			t.Errorf("verify trace missing stage checkpoint %q", point)
		}
	}
}
