package nocap_test

import (
	"context"
	"encoding/json"
	"flag"
	"math"
	"os"
	"testing"
	"time"

	"nocap"
)

// batchBenchJSON names the file TestBatchBenchJSON writes batched-vs-
// solo prove measurements to, e.g.
//
//	go test -run TestBatchBenchJSON -batchbench BENCH_batch.json
//
// Without the flag the test is skipped, so the ordinary suite stays fast.
var batchBenchJSON = flag.String("batchbench", "", "write batched-vs-solo prove benchmark results to this JSON file")

// batchBenchEntry is one (logN, batch size) configuration: per-job wall
// time through the shared-structure plan versus the solo prover, and the
// resulting throughput speedup.
type batchBenchEntry struct {
	Name            string  `json:"name"`
	LogN            int     `json:"log_n"`
	Batch           int     `json:"batch"`
	SoloNsPerJob    int64   `json:"solo_ns_per_job"`
	BatchedNsPerJob int64   `json:"batched_ns_per_job"`
	SoloJobsPerSec  float64 `json:"solo_jobs_per_sec"`
	BatchJobsPerSec float64 `json:"batched_jobs_per_sec"`
	Speedup         float64 `json:"speedup"`
}

// TestBatchBenchJSON measures shared-structure batched proving
// (DESIGN.md §15) against the solo prover and emits BENCH_batch.json
// for CI trend tracking. Both sides time the full per-job path the
// server runs: the solo side synthesizes the statement and proves it,
// once per job (exactly what each queued job pays without batching);
// the batched side synthesizes once, builds one plan (the amortized
// once-per-batch work: z assembly, SpMV + satisfaction check, the
// instance digest, PCS geometry with warmed twiddle/encoder caches),
// and runs B member proves, divided by B. Batch size 1 therefore
// shows what a singleton would pay through the plan; the jobs layer
// routes singletons to the solo path for exactly that reason. Each
// side takes its best of three rounds to damp scheduler noise.
func TestBatchBenchJSON(t *testing.T) {
	if *batchBenchJSON == "" {
		t.Skip("-batchbench not set")
	}
	// Production geometry in the deterministic serving configuration the
	// batch planner is verified under (`make batch-soak` proves batched
	// output byte-identical to solo with ZK off): one repetition, ZK
	// masking off. Per-rep sumcheck/PCS work scales with Reps while the
	// amortized plan work does not, so Reps=1 reports the per-repetition
	// amortization honestly; ZK adds per-member row randomization whose
	// cost batching cannot touch, so it is benchmarked separately by
	// BENCH_prove.json rather than folded in here.
	params := nocap.DefaultParams()
	params.Reps = 1
	params.PCS.ZK = false
	ctx := context.Background()
	const rounds = 3
	var entries []batchBenchEntry
	for _, logN := range []int{10, 12, 14} {
		n := 1 << uint(logN)
		// Fit the PCS geometry the way the server's buildFor does, so the
		// bench measures the exact configuration batched jobs run.
		params := params
		warm := nocap.Synthetic(n)
		if half := warm.Inst.NumVars() / 2; params.PCS.Rows > half {
			params.PCS.Rows = half
		}
		// One warm-up prove so neither side pays first-touch cache builds.
		if _, err := nocap.ProveCtx(ctx, params, warm.Inst, warm.IO, warm.Witness); err != nil {
			t.Fatal(err)
		}
		soloNs := int64(math.MaxInt64)
		for r := 0; r < rounds; r++ {
			const probe = 4
			start := time.Now()
			for i := 0; i < probe; i++ {
				bm := nocap.Synthetic(n)
				if _, err := nocap.ProveCtx(ctx, params, bm.Inst, bm.IO, bm.Witness); err != nil {
					t.Fatal(err)
				}
			}
			if per := time.Since(start).Nanoseconds() / probe; per < soloNs {
				soloNs = per
			}
		}
		for _, batch := range []int{1, 4, 8, 16} {
			batchedNs := int64(math.MaxInt64)
			for r := 0; r < rounds; r++ {
				start := time.Now()
				plan, err := nocap.NewBatchPlanForCtx(ctx, params, nocap.Synthetic(n))
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < batch; i++ {
					if _, err := plan.ProveMemberCtx(ctx); err != nil {
						t.Fatal(err)
					}
				}
				if per := time.Since(start).Nanoseconds() / int64(batch); per < batchedNs {
					batchedNs = per
				}
			}
			entries = append(entries, batchBenchEntry{
				Name:            "BatchProve/synthetic",
				LogN:            logN,
				Batch:           batch,
				SoloNsPerJob:    soloNs,
				BatchedNsPerJob: batchedNs,
				SoloJobsPerSec:  1e9 / float64(soloNs),
				BatchJobsPerSec: 1e9 / float64(batchedNs),
				Speedup:         float64(soloNs) / float64(batchedNs),
			})
			t.Logf("logN=%d B=%d: solo %d ns/job, batched %d ns/job (%.2fx)",
				logN, batch, soloNs, batchedNs, float64(soloNs)/float64(batchedNs))
		}
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*batchBenchJSON, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
