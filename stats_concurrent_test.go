package nocap_test

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"nocap"
	"nocap/internal/leakcheck"
)

// deterministic reduces a ProveStats to the counters that depend only on
// the circuit and parameters: kernel calls and element counts, arena
// checkout and return counts. Wall time and the pool hit/miss split vary
// with scheduling and pool state, so equality assertions exclude them.
func deterministic(s nocap.ProveStats) nocap.ProveStats {
	for _, ss := range []*nocap.StageStats{
		&s.Stages.Sumcheck, &s.Stages.Encode, &s.Stages.Merkle,
		&s.Stages.SpMV, &s.Stages.Poly,
	} {
		ss.Wall = 0
	}
	s.Arena.Hits, s.Arena.Misses = 0, 0
	return s
}

// soloStats proves the benchmark once under its own collector with
// nothing else running, returning the per-run stats — the ground truth
// a concurrent run of the same circuit must reproduce exactly.
func soloStats(t *testing.T, params nocap.Params, bm *nocap.Benchmark) nocap.ProveStats {
	t.Helper()
	col := nocap.NewCollector()
	if _, err := nocap.ProveCtx(col.Attach(context.Background()), params, bm.Inst, bm.IO, bm.Witness); err != nil {
		t.Fatal(err)
	}
	return col.Stats()
}

// TestConcurrentProveAttribution is the acceptance test for per-run
// stats isolation: two overlapping ProveCtx calls with different circuit
// sizes, each with its own collector. Each collector must report exactly
// the work its own run did (equal to a solo run of the same circuit),
// the two collectors must sum to the process-global delta (no work lost
// or double-counted), per-run wall time must respect elapsed-time
// bounds, and nothing — goroutines or arena checkouts — may leak.
func TestConcurrentProveAttribution(t *testing.T) {
	snap := leakcheck.Take()
	params := nocap.TestParams()
	small := nocap.Synthetic(1 << 10)
	large := nocap.Synthetic(1 << 12)

	soloSmall := deterministic(soloStats(t, params, small))
	soloLarge := deterministic(soloStats(t, params, large))
	if soloSmall == soloLarge {
		t.Fatalf("test is vacuous: both circuits produce identical counters %+v", soloSmall)
	}

	before := nocap.ReadProveStats()
	colSmall, colLarge := nocap.NewCollector(), nocap.NewCollector()
	start := time.Now()
	var wg sync.WaitGroup
	for _, run := range []struct {
		col *nocap.Collector
		bm  *nocap.Benchmark
	}{{colSmall, small}, {colLarge, large}} {
		wg.Add(1)
		go func(col *nocap.Collector, bm *nocap.Benchmark) {
			defer wg.Done()
			if _, err := nocap.ProveCtx(col.Attach(context.Background()), params, bm.Inst, bm.IO, bm.Witness); err != nil {
				t.Error(err)
			}
		}(run.col, run.bm)
	}
	wg.Wait()
	elapsed := time.Since(start)
	delta := nocap.ReadProveStats().Delta(before)

	runSmall, runLarge := colSmall.Stats(), colLarge.Stats()

	// 1. Isolation: each run's deterministic counters match its solo
	// baseline exactly, overlap or not.
	if got := deterministic(runSmall); got != soloSmall {
		t.Errorf("small run's counters polluted by concurrent large run:\n solo: %+v\n conc: %+v", soloSmall, got)
	}
	if got := deterministic(runLarge); got != soloLarge {
		t.Errorf("large run's counters polluted by concurrent small run:\n solo: %+v\n conc: %+v", soloLarge, got)
	}

	// 2. Conservation: the two collectors partition the global delta —
	// every counter, including wall time and the hit/miss split, since
	// each span and checkout credits its collector and the aggregate with
	// identical increments and nothing else proved during the window.
	if sum := runSmall.Plus(runLarge); sum != delta {
		t.Errorf("collector sum != aggregate delta:\n sum:   %+v\n delta: %+v", sum, delta)
	}

	// 3. Wall-time sanity: stages timed from the coordinating goroutine
	// can never exceed the run's elapsed time. RS-encode spans run on the
	// pool workers themselves, so their sum is CPU time, bounded by
	// elapsed × worker count.
	for _, run := range []nocap.ProveStats{runSmall, runLarge} {
		for name, ss := range map[string]nocap.StageStats{
			"sumcheck":   run.Stages.Sumcheck,
			"merkle":     run.Stages.Merkle,
			"spmv":       run.Stages.SpMV,
			"poly-arith": run.Stages.Poly,
		} {
			if ss.Wall > elapsed {
				t.Errorf("%s wall %v exceeds elapsed %v: span timing double-counts", name, ss.Wall, elapsed)
			}
		}
		if bound := elapsed * time.Duration(max(runtime.GOMAXPROCS(0), 1)); run.Stages.Encode.Wall > bound {
			t.Errorf("rs-encode wall %v exceeds elapsed×workers %v", run.Stages.Encode.Wall, bound)
		}
	}

	// 4. Hygiene: both runs returned all scratch; no goroutines leaked.
	for _, run := range []nocap.ProveStats{runSmall, runLarge} {
		if run.Arena.Outstanding != 0 || run.Arena.OutstandingElems != 0 {
			t.Errorf("run leaked arena scratch: %+v", run.Arena)
		}
	}
	snap.Check(t)
}

// TestConcurrentProveAttributionBatched extends the attribution
// acceptance test to the batched path (DESIGN.md §15): the shared plan
// is built under its own collector, its stats are split exactly across
// the member collectors (each job is credited its proportional share of
// the shared work exactly once), and the members prove through the plan
// under their own collectors. Conservation must still hold —
// sum(member collectors) == aggregate delta, counter for counter — and
// with ZK off every member proof must be byte-identical to the solo
// proof of the same statement.
func TestConcurrentProveAttributionBatched(t *testing.T) {
	snap := leakcheck.Take()
	params := nocap.TestParams()
	params.PCS.ZK = false // deterministic proofs for the byte-identity check

	const circuit, n = "synthetic", 1 << 10
	bm := nocap.Synthetic(n)
	soloProof, err := nocap.Prove(params, bm.Inst, bm.IO, bm.Witness)
	if err != nil {
		t.Fatal(err)
	}
	soloBytes, err := nocap.MarshalProof(soloProof)
	if err != nil {
		t.Fatal(err)
	}

	const members = 4
	before := nocap.ReadProveStats()

	// Once-per-batch work runs under the plan's own collector…
	planCol := nocap.NewCollector()
	plan, err := nocap.NewBatchPlanCtx(planCol.Attach(context.Background()), params, circuit, n)
	if err != nil {
		t.Fatal(err)
	}
	// …and is handed to the members in exact proportional shares, so the
	// plan collector itself drops out of the conservation sum.
	shares := nocap.SplitProveStats(planCol.Stats(), members)

	cols := make([]*nocap.Collector, members)
	proofs := make([][]byte, members)
	var wg sync.WaitGroup
	for i := 0; i < members; i++ {
		cols[i] = nocap.NewCollector()
		cols[i].AddStats(shares[i])
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := plan.ProveMemberCtx(cols[i].Attach(context.Background()))
			if err != nil {
				t.Error(err)
				return
			}
			b, err := nocap.MarshalProof(p)
			if err != nil {
				t.Error(err)
				return
			}
			proofs[i] = b
		}(i)
	}
	wg.Wait()
	delta := nocap.ReadProveStats().Delta(before)

	// Byte-identity: every member proof equals the solo proof.
	for i, b := range proofs {
		if string(b) != string(soloBytes) {
			t.Errorf("member %d proof differs from solo proof (%d vs %d bytes)", i, len(b), len(soloBytes))
		}
	}

	// Conservation: member collectors (shared shares included) partition
	// the aggregate delta exactly.
	sum := cols[0].Stats()
	for i := 1; i < members; i++ {
		sum = sum.Plus(cols[i].Stats())
	}
	if sum != delta {
		t.Errorf("batched collectors don't partition the aggregate:\n sum:   %+v\n delta: %+v", sum, delta)
	}

	// Share exactness: the shares reassemble the plan's stats with no
	// counter lost or invented.
	reassembled := shares[0]
	for i := 1; i < members; i++ {
		reassembled = reassembled.Plus(shares[i])
	}
	if reassembled != planCol.Stats() {
		t.Errorf("split shares don't reassemble the plan stats:\n sum:  %+v\n plan: %+v", reassembled, planCol.Stats())
	}

	// Hygiene: no member leaked scratch, and the members' collective
	// arena balance (plan share included) is clean.
	if sum.Arena.Outstanding != 0 || sum.Arena.OutstandingElems != 0 {
		t.Errorf("batched runs leaked arena scratch: %+v", sum.Arena)
	}
	snap.Check(t)
}

// TestConcurrentProveAttributionHammer races many collector-attributed
// proves (the serving layer's steady state) and checks conservation:
// all per-run stats sum to the global delta, every run matches the solo
// baseline, nothing leaks. Run with -race in CI.
func TestConcurrentProveAttributionHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer")
	}
	snap := leakcheck.Take()
	params := nocap.TestParams()
	bm := nocap.Synthetic(1 << 10)
	solo := deterministic(soloStats(t, params, bm))

	const runs = 8
	before := nocap.ReadProveStats()
	cols := make([]*nocap.Collector, runs)
	var wg sync.WaitGroup
	for i := range cols {
		cols[i] = nocap.NewCollector()
		wg.Add(1)
		go func(col *nocap.Collector) {
			defer wg.Done()
			if _, err := nocap.ProveCtx(col.Attach(context.Background()), params, bm.Inst, bm.IO, bm.Witness); err != nil {
				t.Error(err)
			}
		}(cols[i])
	}
	wg.Wait()
	delta := nocap.ReadProveStats().Delta(before)

	sum := cols[0].Stats()
	if got := deterministic(sum); got != solo {
		t.Errorf("run 0 counters diverge from solo baseline:\n solo: %+v\n got:  %+v", solo, got)
	}
	for i := 1; i < runs; i++ {
		run := cols[i].Stats()
		if got := deterministic(run); got != solo {
			t.Errorf("run %d counters diverge from solo baseline:\n solo: %+v\n got:  %+v", i, solo, got)
		}
		sum = sum.Plus(run)
	}
	if sum != delta {
		t.Errorf("%d collectors don't partition the aggregate:\n sum:   %+v\n delta: %+v", runs, sum, delta)
	}
	snap.Check(t)
}
