package nocap

import (
	"nocap/internal/arena"
	"nocap/internal/kernel"
)

// StageStats is one kernel stage's counters: invocation count, elements
// processed, and cumulative wall time inside the kernel.
type StageStats = kernel.StageStats

// KernelStats breaks the prover's work down by the paper's five-task
// taxonomy (§V-A): sumcheck DP, Reed-Solomon encode, Merkle hashing,
// SpMV, and MLE/polynomial arithmetic.
type KernelStats = kernel.Stats

// ArenaStats reports the scratch-buffer pool's behavior: checkout/return
// counts, pool hit/miss split, double returns (always a bug), and the
// live-checkout balance, which returns to its starting value when every
// prover run cleans up after itself.
type ArenaStats = arena.Stats

// ProveStats is a snapshot of the prover's cumulative execution
// counters: per-stage kernel work plus arena scratch-pool behavior.
// Counters are process-global and monotone; bracket a run with two
// ReadProveStats calls and Delta to attribute work to that run:
//
//	before := nocap.ReadProveStats()
//	proof, err := nocap.Prove(params, inst, io, witness)
//	run := nocap.ReadProveStats().Delta(before)
//	fmt.Print(run.Stages)     // per-stage calls / elems / wall table
//	fmt.Println(run.Arena.Outstanding) // 0: no leaked scratch
type ProveStats struct {
	// Stages holds the per-kernel-stage counters.
	Stages KernelStats
	// Arena holds the scratch-pool counters.
	Arena ArenaStats
}

// ReadProveStats snapshots the process-wide prover counters.
func ReadProveStats() ProveStats {
	return ProveStats{Stages: kernel.Snapshot(), Arena: arena.ReadStats()}
}

// Delta returns the counter change since an earlier snapshot.
func (s ProveStats) Delta(prev ProveStats) ProveStats {
	return ProveStats{Stages: s.Stages.Sub(prev.Stages), Arena: s.Arena.Sub(prev.Arena)}
}
