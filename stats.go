package nocap

import (
	"context"

	"nocap/internal/arena"
	"nocap/internal/kernel"
)

// StageStats is one kernel stage's counters: invocation count, elements
// processed, and cumulative wall time inside the kernel.
type StageStats = kernel.StageStats

// KernelStats breaks the prover's work down by the paper's five-task
// taxonomy (§V-A): sumcheck DP, Reed-Solomon encode, Merkle hashing,
// SpMV, and MLE/polynomial arithmetic.
type KernelStats = kernel.Stats

// ArenaStats reports the scratch-buffer pool's behavior: checkout/return
// counts, pool hit/miss split, double returns (always a bug), and the
// live-checkout balance, which returns to its starting value when every
// prover run cleans up after itself.
type ArenaStats = arena.Stats

// ProveStats is a snapshot of prover execution counters: per-stage
// kernel work plus arena scratch-pool behavior.
//
// Two owners exist for these counters, with different contracts:
//
//   - The process-wide aggregate (ReadProveStats) is monotone and shared
//     by every run in the process. Bracketing one run with two
//     ReadProveStats calls and Delta is only truthful while nothing else
//     proves or verifies concurrently — overlapping runs all add to the
//     same counters, so the bracketed delta attributes their work to
//     this run too.
//   - A per-run Collector attributes exactly one run's work, no matter
//     what else the process is doing. Attach it to the context passed to
//     ProveCtx/VerifyCtx; every kernel span and arena checkout under
//     that context (and the checkouts' eventual returns, from any
//     goroutine) is credited to it as well as to the aggregate.
//
// Single-run bracketing, still correct when nothing overlaps:
//
//	before := nocap.ReadProveStats()
//	proof, err := nocap.Prove(params, inst, io, witness)
//	run := nocap.ReadProveStats().Delta(before)
//
// Per-run attribution, correct under concurrency (the serving layer's
// per-request accounting):
//
//	col := nocap.NewCollector()
//	proof, err := nocap.ProveCtx(col.Attach(ctx), params, inst, io, witness)
//	run := col.Stats()
//	fmt.Print(run.Stages)              // this run's calls / elems / wall
//	fmt.Println(run.Arena.Outstanding) // 0: this run leaked no scratch
type ProveStats struct {
	// Stages holds the per-kernel-stage counters.
	Stages KernelStats
	// Arena holds the scratch-pool counters.
	Arena ArenaStats
}

// ReadProveStats snapshots the process-wide prover counters (the
// aggregate sink every run adds to).
func ReadProveStats() ProveStats {
	return ProveStats{Stages: kernel.Snapshot(), Arena: arena.ReadStats()}
}

// Delta returns the counter change since an earlier snapshot.
func (s ProveStats) Delta(prev ProveStats) ProveStats {
	return ProveStats{Stages: s.Stages.Sub(prev.Stages), Arena: s.Arena.Sub(prev.Arena)}
}

// Plus returns the counter sum s + o, for combining per-run collector
// snapshots (e.g. to check that concurrent runs' stats add up to the
// aggregate delta).
func (s ProveStats) Plus(o ProveStats) ProveStats {
	return ProveStats{Stages: s.Stages.Add(o.Stages), Arena: s.Arena.Add(o.Arena)}
}

// Collector owns one run's execution counters. Create one per proving
// or verification run (per request, in a serving layer), Attach it to
// the run's context, and read Stats when the run completes. The zero
// value is ready to use; all methods are safe for concurrent use, so a
// monitoring goroutine may read Stats while the run is in flight.
//
// Counters credited to a Collector are also credited to the process
// aggregate (ReadProveStats): the sum of all collectors' deltas plus
// any unattributed work equals the aggregate delta over the same
// window.
type Collector struct {
	kc kernel.Collector
	ac arena.Collector
}

// NewCollector returns an empty per-run collector.
func NewCollector() *Collector { return &Collector{} }

// Attach returns a context carrying the collector; pass it to ProveCtx
// or VerifyCtx. Every kernel span begun and every arena buffer checked
// out under the returned context is attributed to this collector
// (buffer returns follow the checkout, not the context, so scratch
// returned after Stats is read still lands in the right run).
func (c *Collector) Attach(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return arena.WithCollector(kernel.WithCollector(ctx, &c.kc), &c.ac)
}

// Stats snapshots the counters attributed to this collector so far.
func (c *Collector) Stats() ProveStats {
	return ProveStats{Stages: c.kc.Snapshot(), Arena: c.ac.Snapshot()}
}

// AddStats credits a whole ProveStats delta to the collector without
// touching the process aggregate. Batched proving uses it to hand each
// member its proportional share of the shared plan's work (which was
// recorded once, under the plan's own collector, and already credited
// to the aggregate as it ran); crediting the shares through the normal
// span path would double-count them in the aggregate.
func (c *Collector) AddStats(s ProveStats) {
	c.kc.AddStats(s.Stages)
	c.ac.AddStats(s.Arena)
}

// SplitProveStats partitions total into k shares that sum back to total
// exactly, counter for counter. Batch members are structurally
// identical, so each member's proportional share of once-per-batch work
// is an even split; integer remainders go to the lowest-indexed shares
// so conservation (sum of per-run collectors == aggregate delta) holds
// exactly rather than approximately.
func SplitProveStats(total ProveStats, k int) []ProveStats {
	ks := total.Stages.Split(k)
	as := total.Arena.Split(k)
	out := make([]ProveStats, len(ks))
	for i := range out {
		out[i] = ProveStats{Stages: ks[i], Arena: as[i]}
	}
	return out
}
