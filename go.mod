module nocap

go 1.24
