// Package keccak implements the Keccak-f[1600] permutation and the
// SHA3-256 sponge from first principles — the datapath inside NoCap's
// hash functional unit (paper §IV-B: a SHA3 unit hashing 1 KB/cycle;
// the 24-round permutation is the FU's pipeline). The implementation is
// the hardware-shaped one: explicit θ, ρ, π, χ, ι steps over the 5×5
// lane state, which is what an RTL implementation unrolls.
//
// Tests cross-check digests bit-for-bit against the standard library,
// so the rest of the repository can keep using crypto/sha3 while this
// package documents exactly what the FU computes.
package keccak

import "math/bits"

// Rounds is the Keccak-f[1600] round count (the hash FU pipeline depth).
const Rounds = 24

// roundConstants are the ι-step constants.
var roundConstants = [Rounds]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808a, 0x8000000080008000,
	0x000000000000808b, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
	0x000000000000008a, 0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
	0x000000008000808b, 0x800000000000008b, 0x8000000000008089, 0x8000000000008003,
	0x8000000000008002, 0x8000000000000080, 0x000000000000800a, 0x800000008000000a,
	0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rotations are the ρ-step offsets, indexed [x][y].
var rotations = [5][5]int{
	{0, 36, 3, 41, 18},
	{1, 44, 10, 45, 2},
	{62, 6, 43, 15, 61},
	{28, 55, 25, 21, 56},
	{27, 20, 39, 8, 14},
}

// State is the 5×5 lane state, indexed state[x][y].
type State [5][5]uint64

// Permute applies the full 24-round Keccak-f[1600] permutation.
func (s *State) Permute() {
	for r := 0; r < Rounds; r++ {
		s.round(roundConstants[r])
	}
}

// round is one θ→ρ→π→χ→ι round (one stage of the FU pipeline).
func (s *State) round(rc uint64) {
	// θ: column parities.
	var c, d [5]uint64
	for x := 0; x < 5; x++ {
		c[x] = s[x][0] ^ s[x][1] ^ s[x][2] ^ s[x][3] ^ s[x][4]
	}
	for x := 0; x < 5; x++ {
		d[x] = c[(x+4)%5] ^ bits.RotateLeft64(c[(x+1)%5], 1)
		for y := 0; y < 5; y++ {
			s[x][y] ^= d[x]
		}
	}
	// ρ and π: rotate lanes and permute positions.
	var b State
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			b[y][(2*x+3*y)%5] = bits.RotateLeft64(s[x][y], rotations[x][y])
		}
	}
	// χ: non-linear row mix.
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			s[x][y] = b[x][y] ^ (^b[(x+1)%5][y] & b[(x+2)%5][y])
		}
	}
	// ι: round constant.
	s[0][0] ^= rc
}

// rate is the SHA3-256 sponge rate in bytes (1088 bits).
const rate = 136

// Sum256 computes SHA3-256 of data via the sponge construction over
// Keccak-f[1600] (absorb at rate 136 B with domain padding 0x06, then
// squeeze 32 bytes).
func Sum256(data []byte) [32]byte {
	var s State

	absorbBlock := func(block []byte) {
		for i := 0; i < rate/8; i++ {
			lane := uint64(0)
			for j := 7; j >= 0; j-- {
				lane = lane<<8 | uint64(block[i*8+j])
			}
			x, y := i%5, i/5
			s[x][y] ^= lane
		}
		s.Permute()
	}

	for len(data) >= rate {
		absorbBlock(data[:rate])
		data = data[rate:]
	}
	// Pad: 0x06 … 0x80 (SHA-3 domain separation + pad10*1).
	block := make([]byte, rate)
	copy(block, data)
	block[len(data)] = 0x06
	block[rate-1] |= 0x80
	absorbBlock(block)

	var out [32]byte
	for i := 0; i < 4; i++ {
		x, y := i%5, i/5
		lane := s[x][y]
		for j := 0; j < 8; j++ {
			out[i*8+j] = byte(lane >> (8 * uint(j)))
		}
	}
	return out
}
