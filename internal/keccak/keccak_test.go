package keccak

import (
	"bytes"
	"crypto/sha3"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSum256MatchesStdlib(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("abc"),
		[]byte("The quick brown fox jumps over the lazy dog"),
		bytes.Repeat([]byte{0xAA}, 135), // one byte short of the rate
		bytes.Repeat([]byte{0xBB}, 136), // exactly the rate
		bytes.Repeat([]byte{0xCC}, 137), // one byte over
		bytes.Repeat([]byte("x"), 1000),
	}
	for _, c := range cases {
		got := Sum256(c)
		want := sha3.Sum256(c)
		if got != want {
			t.Fatalf("len %d: %x != %x", len(c), got, want)
		}
	}
}

func TestSum256QuickMatchesStdlib(t *testing.T) {
	f := func(data []byte) bool {
		return Sum256(data) == sha3.Sum256(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPermuteKnownAnswer(t *testing.T) {
	// Keccak-f[1600] applied to the zero state: first lane of the
	// well-known test vector.
	var s State
	s.Permute()
	if s[0][0] != 0xF1258F7940E1DDE7 {
		t.Fatalf("permutation of zero state: lane(0,0) = %#x", s[0][0])
	}
	// Second application continues the vector.
	s.Permute()
	if s[0][0] != 0x2D5C954DF96ECB3C {
		t.Fatalf("second permutation: lane(0,0) = %#x", s[0][0])
	}
}

func TestPermuteBijective(t *testing.T) {
	// Distinct states stay distinct (sanity for the χ nonlinearity).
	rng := rand.New(rand.NewSource(1))
	var a, b State
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			a[x][y] = rng.Uint64()
			b[x][y] = a[x][y]
		}
	}
	b[3][2] ^= 1
	a.Permute()
	b.Permute()
	if a == b {
		t.Fatal("permutation collided")
	}
}

func TestRoundsConstant(t *testing.T) {
	// The FU pipeline depth assumed by internal/sched must match.
	if Rounds != 24 {
		t.Fatalf("rounds = %d", Rounds)
	}
}

func BenchmarkPermute(b *testing.B) {
	var s State
	for i := 0; i < b.N; i++ {
		s.Permute()
	}
}

func BenchmarkSum256_1KB(b *testing.B) {
	data := bytes.Repeat([]byte{0x5A}, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sum256(data)
	}
}
