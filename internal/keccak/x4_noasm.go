//go:build !amd64 || purego

package keccak

const useAVX2 = false

func permuteX4(s *StateX4) { s.permuteGeneric() }
