// Multi-buffer Keccak-f[1600]: four independent sponge states permuted
// in one interleaved pass. This is the software analogue of the paper's
// 128-lane hash FU (§IV-B), which keeps many independent SHA3 states in
// flight so the datapath is bound by permutation throughput, not by the
// serial dependency chain of a single state. On a CPU the same idea
// shows up as instruction-level parallelism: every θ/ρ/π/χ step below
// operates on a [4]uint64 quad — four lanes from four unrelated states —
// so the out-of-order core always has four independent dependency chains
// to overlap, where a single Keccak state exposes only one.
//
// The interleaved ("structure of arrays") layout StateX4[lane][buffer]
// is exactly the lane grouping an SIMD or RTL implementation uses; the
// quad helpers compile to straight-line four-wide scalar code.
package keccak

import "encoding/binary"

// quad holds one 64-bit lane from each of the four interleaved states.
// It is a four-field struct rather than a [4]uint64 so the compiler's
// SSA pass decomposes it into registers (arrays are never SSA-ed, and
// keeping every quad in memory costs ~4× in the permutation loop).
type quad struct{ v0, v1, v2, v3 uint64 }

// lane returns lane k (absorb/extract boundary only — the permutation
// itself never indexes dynamically).
func (q *quad) lane(k int) uint64 {
	switch k {
	case 0:
		return q.v0
	case 1:
		return q.v1
	case 2:
		return q.v2
	}
	return q.v3
}

// setLane stores lane k.
func (q *quad) setLane(k int, v uint64) {
	switch k {
	case 0:
		q.v0 = v
	case 1:
		q.v1 = v
	case 2:
		q.v2 = v
	default:
		q.v3 = v
	}
}

// xorLane mixes v into lane k.
func (q *quad) xorLane(k int, v uint64) { q.setLane(k, q.lane(k)^v) }

func xor4(x, y quad) quad {
	return quad{x.v0 ^ y.v0, x.v1 ^ y.v1, x.v2 ^ y.v2, x.v3 ^ y.v3}
}

func rot4(x quad, n int) quad {
	return quad{
		x.v0<<n | x.v0>>(64-n),
		x.v1<<n | x.v1>>(64-n),
		x.v2<<n | x.v2>>(64-n),
		x.v3<<n | x.v3>>(64-n),
	}
}

// chi4 is the χ row mix b0 ^ (¬b1 & b2), four lanes at once.
func chi4(b0, b1, b2 quad) quad {
	return quad{
		b0.v0 ^ (^b1.v0 & b2.v0),
		b0.v1 ^ (^b1.v1 & b2.v1),
		b0.v2 ^ (^b1.v2 & b2.v2),
		b0.v3 ^ (^b1.v3 & b2.v3),
	}
}

// StateX4 is four independent 5×5 Keccak states in lane-interleaved
// layout: StateX4[x+5y][k] is lane (x,y) of state k. The zero value is
// four all-zero sponge states.
type StateX4 [25]quad

// Permute applies the full 24-round Keccak-f[1600] permutation to all
// four states in one interleaved pass. On amd64 with AVX2 it dispatches
// to the vector datapath in keccak_amd64.s (one ymm register per quad);
// elsewhere it runs the portable four-wide scalar code below.
func (s *StateX4) Permute() { permuteX4(s) }

// permuteGeneric is the portable interleaved permutation, also the
// reference the assembly path is tested against.
func (s *StateX4) permuteGeneric() {
	a := s
	var b [25]quad
	for r := 0; r < Rounds; r++ {
		// θ: column parities and their mix.
		c0 := xor4(xor4(xor4(a[0], a[5]), xor4(a[10], a[15])), a[20])
		c1 := xor4(xor4(xor4(a[1], a[6]), xor4(a[11], a[16])), a[21])
		c2 := xor4(xor4(xor4(a[2], a[7]), xor4(a[12], a[17])), a[22])
		c3 := xor4(xor4(xor4(a[3], a[8]), xor4(a[13], a[18])), a[23])
		c4 := xor4(xor4(xor4(a[4], a[9]), xor4(a[14], a[19])), a[24])
		d0 := xor4(c4, rot4(c1, 1))
		d1 := xor4(c0, rot4(c2, 1))
		d2 := xor4(c1, rot4(c3, 1))
		d3 := xor4(c2, rot4(c4, 1))
		d4 := xor4(c3, rot4(c0, 1))
		a[0], a[5], a[10], a[15], a[20] = xor4(a[0], d0), xor4(a[5], d0), xor4(a[10], d0), xor4(a[15], d0), xor4(a[20], d0)
		a[1], a[6], a[11], a[16], a[21] = xor4(a[1], d1), xor4(a[6], d1), xor4(a[11], d1), xor4(a[16], d1), xor4(a[21], d1)
		a[2], a[7], a[12], a[17], a[22] = xor4(a[2], d2), xor4(a[7], d2), xor4(a[12], d2), xor4(a[17], d2), xor4(a[22], d2)
		a[3], a[8], a[13], a[18], a[23] = xor4(a[3], d3), xor4(a[8], d3), xor4(a[13], d3), xor4(a[18], d3), xor4(a[23], d3)
		a[4], a[9], a[14], a[19], a[24] = xor4(a[4], d4), xor4(a[9], d4), xor4(a[14], d4), xor4(a[19], d4), xor4(a[24], d4)
		// ρ+π: rotate and scatter (offsets from the scalar rotation table,
		// flat index x+5y; b[y+5·((2x+3y) mod 5)] = rot(a[x+5y])).
		b[0] = a[0]
		b[10] = rot4(a[1], 1)
		b[20] = rot4(a[2], 62)
		b[5] = rot4(a[3], 28)
		b[15] = rot4(a[4], 27)
		b[16] = rot4(a[5], 36)
		b[1] = rot4(a[6], 44)
		b[11] = rot4(a[7], 6)
		b[21] = rot4(a[8], 55)
		b[6] = rot4(a[9], 20)
		b[7] = rot4(a[10], 3)
		b[17] = rot4(a[11], 10)
		b[2] = rot4(a[12], 43)
		b[12] = rot4(a[13], 25)
		b[22] = rot4(a[14], 39)
		b[23] = rot4(a[15], 41)
		b[8] = rot4(a[16], 45)
		b[18] = rot4(a[17], 15)
		b[3] = rot4(a[18], 21)
		b[13] = rot4(a[19], 8)
		b[14] = rot4(a[20], 18)
		b[24] = rot4(a[21], 2)
		b[9] = rot4(a[22], 61)
		b[19] = rot4(a[23], 56)
		b[4] = rot4(a[24], 14)
		// χ: non-linear row mix.
		a[0] = chi4(b[0], b[1], b[2])
		a[1] = chi4(b[1], b[2], b[3])
		a[2] = chi4(b[2], b[3], b[4])
		a[3] = chi4(b[3], b[4], b[0])
		a[4] = chi4(b[4], b[0], b[1])
		a[5] = chi4(b[5], b[6], b[7])
		a[6] = chi4(b[6], b[7], b[8])
		a[7] = chi4(b[7], b[8], b[9])
		a[8] = chi4(b[8], b[9], b[5])
		a[9] = chi4(b[9], b[5], b[6])
		a[10] = chi4(b[10], b[11], b[12])
		a[11] = chi4(b[11], b[12], b[13])
		a[12] = chi4(b[12], b[13], b[14])
		a[13] = chi4(b[13], b[14], b[10])
		a[14] = chi4(b[14], b[10], b[11])
		a[15] = chi4(b[15], b[16], b[17])
		a[16] = chi4(b[16], b[17], b[18])
		a[17] = chi4(b[17], b[18], b[19])
		a[18] = chi4(b[18], b[19], b[15])
		a[19] = chi4(b[19], b[15], b[16])
		a[20] = chi4(b[20], b[21], b[22])
		a[21] = chi4(b[21], b[22], b[23])
		a[22] = chi4(b[22], b[23], b[24])
		a[23] = chi4(b[23], b[24], b[20])
		a[24] = chi4(b[24], b[20], b[21])
		// ι: round constant into lane (0,0) of every state.
		rc := roundConstants[r]
		a[0].v0 ^= rc
		a[0].v1 ^= rc
		a[0].v2 ^= rc
		a[0].v3 ^= rc
	}
}

// padByte is the SHA-3 domain-separation byte appended after the message
// (pad10*1 starts with 0x06 for SHA3 variants).
const padByte = 0x06

// Compress64X4 computes SHA3-256 of four independent 64-byte messages —
// four Merkle 2-to-1 compressions (left‖right sibling digests) — in one
// interleaved permutation pass. Digests are bit-for-bit identical to
// sha3.Sum256 of each message.
func Compress64X4(out *[4][32]byte, in *[4][64]byte) {
	var s StateX4
	for k := 0; k < 4; k++ {
		msg := &in[k]
		for l := 0; l < 8; l++ {
			s[l].setLane(k, binary.LittleEndian.Uint64(msg[8*l:]))
		}
		// Padding for a 64-byte message at rate 136: 0x06 at offset 64
		// (lane 8, byte 0) and 0x80 at offset 135 (lane 16, byte 7).
		s[8].setLane(k, padByte)
		s[16].setLane(k, 1<<63)
	}
	s.Permute()
	for k := 0; k < 4; k++ {
		for l := 0; l < 4; l++ {
			binary.LittleEndian.PutUint64(out[k][8*l:], s[l].lane(k))
		}
	}
}

// Sum256X4 computes SHA3-256 of four equal-length messages in
// interleaved passes: each rate-sized block absorbs into all four states
// before one shared Permute. Digests are bit-for-bit identical to
// sha3.Sum256 of each message. All four messages must have the same
// length (the multi-buffer datapath processes aligned blocks; callers
// with ragged batches fall back to the scalar sponge for the tail).
func Sum256X4(out *[4][32]byte, msgs *[4][]byte) {
	n := len(msgs[0])
	for k := 1; k < 4; k++ {
		if len(msgs[k]) != n {
			panic("keccak: Sum256X4 messages must have equal length")
		}
	}
	var s StateX4
	off := 0
	for ; n-off >= rate; off += rate {
		for k := 0; k < 4; k++ {
			block := msgs[k][off : off+rate]
			for l := 0; l < rate/8; l++ {
				s[l].xorLane(k, binary.LittleEndian.Uint64(block[8*l:]))
			}
		}
		s.Permute()
	}
	// Final padded block, shared across the four states since the
	// message lengths (and thus pad positions) agree.
	var block [rate]byte
	for k := 0; k < 4; k++ {
		copy(block[:], msgs[k][off:])
		clear(block[n-off:])
		block[n-off] = padByte
		block[rate-1] |= 0x80
		for l := 0; l < rate/8; l++ {
			s[l].xorLane(k, binary.LittleEndian.Uint64(block[8*l:]))
		}
	}
	s.Permute()
	for k := 0; k < 4; k++ {
		for l := 0; l < 4; l++ {
			binary.LittleEndian.PutUint64(out[k][8*l:], s[l].lane(k))
		}
	}
}
