//go:build amd64 && !purego

package keccak

// permute4xAVX2 is the assembly datapath in keccak_amd64.s: one ymm
// register per quad, so each vector instruction advances the same lane
// of four independent states. b is caller scratch for the ρ/π plane
// (passing it in keeps the asm NOSPLIT with a zero frame).
//
//go:noescape
func permute4xAVX2(a, b *StateX4)

func cpuidX4(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

func xgetbvX4() (eax, edx uint32)

// useAVX2 gates the vector permutation on hardware AVX2 plus OS ymm
// state support (OSXSAVE and XCR0 SSE+AVX bits).
var useAVX2 = func() bool {
	maxID, _, _, _ := cpuidX4(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidX4(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	if eax, _ := xgetbvX4(); eax&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuidX4(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}()

func permuteX4(s *StateX4) {
	if useAVX2 {
		var b StateX4
		permute4xAVX2(s, &b)
		return
	}
	s.permuteGeneric()
}
