package keccak

import (
	"crypto/sha3"
	"math/rand"
	"testing"
)

// TestPermuteX4MatchesScalar drives four random states through the
// interleaved permutation and checks each lane against the scalar
// Permute, per buffer.
func TestPermuteX4MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x4 StateX4
	var scalar [4]State
	for k := 0; k < 4; k++ {
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				v := rng.Uint64()
				scalar[k][x][y] = v
				x4[x+5*y].setLane(k, v)
			}
		}
	}
	for iter := 0; iter < 3; iter++ {
		x4.Permute()
		for k := range scalar {
			scalar[k].Permute()
		}
		for k := 0; k < 4; k++ {
			for x := 0; x < 5; x++ {
				for y := 0; y < 5; y++ {
					if x4[x+5*y].lane(k) != scalar[k][x][y] {
						t.Fatalf("iter %d buffer %d lane (%d,%d): x4 %#x, scalar %#x",
							iter, k, x, y, x4[x+5*y].lane(k), scalar[k][x][y])
					}
				}
			}
		}
	}
}

// TestCompress64X4MatchesStdlib pins the fused 2-to-1 compression
// against crypto/sha3 for all four buffers.
func TestCompress64X4MatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var in [4][64]byte
	for k := range in {
		rng.Read(in[k][:])
	}
	var out [4][32]byte
	Compress64X4(&out, &in)
	for k := range in {
		if want := sha3.Sum256(in[k][:]); out[k] != want {
			t.Fatalf("buffer %d: Compress64X4 disagrees with crypto/sha3", k)
		}
	}
}

// TestSum256X4MatchesStdlib covers the multi-block sponge across
// lengths that exercise 0, 1 and 2 full rate blocks plus every padding
// position class (empty tail, mid-block tail, tail one byte short of
// the rate, tail exactly at a block boundary).
func TestSum256X4MatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 8, 64, 135, 136, 137, 272, 300, 1024, 1120} {
		var msgs [4][]byte
		for k := range msgs {
			msgs[k] = make([]byte, n)
			rng.Read(msgs[k])
		}
		var out [4][32]byte
		Sum256X4(&out, &msgs)
		for k := range msgs {
			if want := sha3.Sum256(msgs[k]); out[k] != want {
				t.Fatalf("len %d buffer %d: Sum256X4 disagrees with crypto/sha3", n, k)
			}
		}
	}
}

func TestSum256X4RejectsRaggedLengths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sum256X4 accepted ragged message lengths")
		}
	}()
	var out [4][32]byte
	msgs := [4][]byte{make([]byte, 8), make([]byte, 8), make([]byte, 8), make([]byte, 9)}
	Sum256X4(&out, &msgs)
}

// BenchmarkCompress64X4 measures the fused four-way 2-to-1 compression
// (per-op cost covers four sibling pairs).
func BenchmarkCompress64X4(b *testing.B) {
	var in [4][64]byte
	var out [4][32]byte
	b.SetBytes(4 * 64)
	for i := 0; i < b.N; i++ {
		Compress64X4(&out, &in)
	}
}

// BenchmarkStdlibSum256x4 is the scalar baseline for the same work:
// four independent 64-byte SHA3-256 calls through crypto/sha3.
func BenchmarkStdlibSum256x4(b *testing.B) {
	var in [4][64]byte
	b.SetBytes(4 * 64)
	for i := 0; i < b.N; i++ {
		for k := 0; k < 4; k++ {
			_ = sha3.Sum256(in[k][:])
		}
	}
}
