package cstream

import (
	"math/rand"
	"testing"

	"nocap/internal/field"
	"nocap/internal/spartan"
)

// fig2Circuit is the paper's Fig. 2 example:
// f(x,w) = x0 + w0 + x1·w1 + x1·w1·w2.
func fig2Circuit() *Circuit {
	// inputs: x0=0, x1=1, w0=2, w1=3, w2=4
	return &Circuit{
		NumInputs: 5,
		Gates: []Gate{
			{OpMul, 1, 3}, // 5: x1·w1
			{OpMul, 5, 4}, // 6: x1·w1·w2
			{OpAdd, 0, 2}, // 7: x0+w0
			{OpAdd, 7, 5}, // 8: +x1w1
			{OpAdd, 8, 6}, // 9: +x1w1w2
		},
	}
}

func TestFig2ToR1CS(t *testing.T) {
	c := fig2Circuit()
	inputs := []field.Element{
		field.New(3), field.New(5), // x
		field.New(7), field.New(11), field.New(13), // w
	}
	inst, io, w, err := c.ToR1CS(inputs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok, i := inst.Satisfied(inst.AssembleZ(io, w)); !ok {
		t.Fatalf("constraint %d violated", i)
	}
	// io = (x0, x1, output); output = 3+7+5·11+5·11·13 = 780.
	if io[2] != field.New(780) {
		t.Fatalf("output %v, want 780", io[2])
	}
}

func TestArithmetizedCircuitProves(t *testing.T) {
	// Full Fig. 2 pipeline: circuit → R1CS → Spartan+Orion proof.
	c := fig2Circuit()
	inputs := []field.Element{
		field.New(1), field.New(2),
		field.New(3), field.New(4), field.New(5),
	}
	inst, io, w, err := c.ToR1CS(inputs, 2)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := spartan.Prove(spartan.TestParams(), inst, io, w)
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	if err := spartan.Verify(spartan.TestParams(), inst, io, proof); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestRandomCircuitR1CSAgreesWithEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 10; trial++ {
		c := randomCircuit(4, 50, int64(trial))
		inputs := make([]field.Element, 4)
		for i := range inputs {
			inputs[i] = field.New(rng.Uint64())
		}
		nodes, err := c.Evaluate(inputs)
		if err != nil {
			t.Fatal(err)
		}
		inst, io, w, err := c.ToR1CS(inputs, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ok, i := inst.Satisfied(inst.AssembleZ(io, w)); !ok {
			t.Fatalf("trial %d: constraint %d violated", trial, i)
		}
		// Final public output = last node value.
		if io[len(io)-1] != nodes[len(nodes)-1] {
			t.Fatalf("trial %d: output mismatch", trial)
		}
	}
}

func TestToR1CSErrors(t *testing.T) {
	c := fig2Circuit()
	if _, _, _, err := c.ToR1CS(make([]field.Element, 3), 1); err == nil {
		t.Fatal("wrong input count accepted")
	}
	if _, _, _, err := c.ToR1CS(make([]field.Element, 5), 9); err == nil {
		t.Fatal("too many public inputs accepted")
	}
	empty := &Circuit{NumInputs: 2}
	if _, _, _, err := empty.ToR1CS(make([]field.Element, 2), 1); err == nil {
		t.Fatal("gateless circuit accepted")
	}
}

func TestMulGateConstraintCount(t *testing.T) {
	// Addition gates must be free (folded into LCs): a circuit of k mul
	// gates and any number of adds needs ~k+1 constraints before padding.
	c := &Circuit{NumInputs: 2}
	for i := 0; i < 16; i++ {
		node := 2 + i
		c.Gates = append(c.Gates, Gate{OpAdd, node - 1, node - 2})
	}
	c.Gates = append(c.Gates, Gate{OpMul, 17, 16})
	inputs := []field.Element{field.New(1), field.New(2)}
	inst, _, _, err := c.ToR1CS(inputs, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 1 mul + 1 output binding = 2 constraints, padded to ≥2.
	if inst.NumConstraints() > 4 {
		t.Fatalf("adds were not free: %d constraints", inst.NumConstraints())
	}
}
