package cstream

import (
	"fmt"

	"nocap/internal/field"
	"nocap/internal/r1cs"
)

// ToR1CS performs the arithmetization step of paper Fig. 2 (①/②):
// translate the gate-level circuit into an R1CS instance whose z-vector
// carries the wire values. The first numPublic inputs become public
// (x̄); the remaining inputs are the witness (w̄); the last gate's
// output is exposed as a public output. Multiplication gates become one
// R1CS row each; addition gates fold into linear combinations, matching
// the ~N-nonzeros-per-matrix structure of §II-B.
//
// It returns the instance and the io/witness vectors for the provided
// inputs, ready for spartan.Prove.
func (c *Circuit) ToR1CS(inputs []field.Element, numPublic int) (*r1cs.Instance, []field.Element, []field.Element, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, nil, err
	}
	if len(inputs) != c.NumInputs {
		return nil, nil, nil, fmt.Errorf("cstream: %d inputs, circuit wants %d", len(inputs), c.NumInputs)
	}
	if numPublic < 0 || numPublic > c.NumInputs {
		return nil, nil, nil, fmt.Errorf("cstream: %d public of %d inputs", numPublic, c.NumInputs)
	}
	if len(c.Gates) == 0 {
		return nil, nil, nil, fmt.Errorf("cstream: circuit has no gates")
	}

	b := r1cs.NewBuilder()
	// wires[node] is the linear combination carrying the node's value;
	// addition gates stay linear (no constraint) until consumed by a
	// multiplication or the output.
	wires := make([]r1cs.LC, c.NumInputs+len(c.Gates))
	for i, v := range inputs {
		if i < numPublic {
			wires[i] = r1cs.FromVar(b.Public(v))
		} else {
			wires[i] = r1cs.FromVar(b.Secret(v))
		}
	}
	for i, g := range c.Gates {
		node := c.NumInputs + i
		if g.Op == OpMul {
			wires[node] = r1cs.FromVar(b.Mul(wires[g.A], wires[g.B]))
		} else {
			wires[node] = r1cs.AddLC(wires[g.A], wires[g.B])
		}
	}
	outLC := wires[len(wires)-1]
	out := b.Public(b.Eval(outLC))
	b.AssertEq(outLC, r1cs.FromVar(out))

	inst, io, w := b.Build()
	return inst, io, w, nil
}
