package cstream

import (
	"math/rand"
	"testing"

	"nocap/internal/field"
)

// randomCircuit builds a valid random DAG.
func randomCircuit(numInputs, numGates int, seed int64) *Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := &Circuit{NumInputs: numInputs}
	for i := 0; i < numGates; i++ {
		node := numInputs + i
		c.Gates = append(c.Gates, Gate{
			Op: Op(rng.Intn(2)),
			A:  rng.Intn(node),
			B:  rng.Intn(node),
		})
	}
	return c
}

func TestEvaluate(t *testing.T) {
	// (x0 + x1) * x0
	c := &Circuit{
		NumInputs: 2,
		Gates: []Gate{
			{Op: OpAdd, A: 0, B: 1},
			{Op: OpMul, A: 2, B: 0},
		},
	}
	nodes, err := c.Evaluate([]field.Element{field.New(3), field.New(4)})
	if err != nil {
		t.Fatal(err)
	}
	if nodes[2] != field.New(7) || nodes[3] != field.New(21) {
		t.Fatalf("eval wrong: %v", nodes)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, size := range []int{1, 10, 1000} {
		c := randomCircuit(4, size, int64(size))
		data, err := c.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.NumInputs != c.NumInputs || len(got.Gates) != len(c.Gates) {
			t.Fatal("shape mismatch")
		}
		for i := range c.Gates {
			if got.Gates[i] != c.Gates[i] {
				t.Fatalf("gate %d mismatch: %v vs %v", i, got.Gates[i], c.Gates[i])
			}
		}
	}
}

func TestDecodedCircuitEvaluatesIdentically(t *testing.T) {
	c := randomCircuit(8, 500, 7)
	inputs := make([]field.Element, 8)
	rng := rand.New(rand.NewSource(8))
	for i := range inputs {
		inputs[i] = field.New(rng.Uint64())
	}
	want, err := c.Evaluate(inputs)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := c.Encode()
	dec, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.Evaluate(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("node %d differs after round trip", i)
		}
	}
}

func TestExactly61BitsPerNode(t *testing.T) {
	// The §V-A claim: 61 bits per node.
	c := randomCircuit(4, 128, 9)
	if c.StreamBits() != 61*128 {
		t.Fatalf("stream bits %d", c.StreamBits())
	}
	data, _ := c.Encode()
	payloadBits := len(data)*8 - 128 // minus header
	// Byte padding adds <8 bits.
	if payloadBits < c.StreamBits() || payloadBits > c.StreamBits()+8 {
		t.Fatalf("encoded payload %d bits, want ≈%d", payloadBits, c.StreamBits())
	}
}

func TestValidateRejectsBadCircuits(t *testing.T) {
	cases := map[string]*Circuit{
		"no inputs":    {NumInputs: 0},
		"forward ref":  {NumInputs: 1, Gates: []Gate{{OpAdd, 0, 1}}},
		"negative ref": {NumInputs: 1, Gates: []Gate{{OpAdd, -1, 0}}},
		"bad op":       {NumInputs: 1, Gates: []Gate{{Op(3), 0, 0}}},
	}
	for name, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestEvaluateErrors(t *testing.T) {
	c := randomCircuit(2, 5, 10)
	if _, err := c.Evaluate(make([]field.Element, 3)); err == nil {
		t.Fatal("wrong input count accepted")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty stream accepted")
	}
	c := randomCircuit(2, 5, 11)
	data, _ := c.Encode()
	if _, err := Decode(data[:len(data)-2]); err == nil {
		t.Fatal("truncated stream accepted")
	}
	// Corrupt a relative offset to zero (gate referencing itself).
	bad := append([]byte(nil), data...)
	for i := 16; i < len(bad); i++ {
		bad[i] = 0
	}
	if _, err := Decode(bad); err == nil {
		t.Fatal("zero offsets accepted")
	}
}

func TestCompressionRatio(t *testing.T) {
	// §V-A: streaming circuit + witness loads 2N values instead of 3N —
	// about a third less traffic; with 61-bit packing slightly better.
	ratio := CompressionVsPrecomputed(1 << 20)
	if ratio > 0.67 || ratio < 0.6 {
		t.Fatalf("compression ratio %.3f outside expected band", ratio)
	}
}

func BenchmarkEvaluate64k(b *testing.B) {
	c := randomCircuit(16, 1<<16, 12)
	inputs := make([]field.Element, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Evaluate(inputs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncode64k(b *testing.B) {
	c := randomCircuit(16, 1<<16, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}
