package cstream

import "testing"

// FuzzDecode ensures the 61-bit stream decoder never panics and that
// every successfully decoded circuit validates and re-encodes stably.
func FuzzDecode(f *testing.F) {
	good, _ := randomCircuit(4, 20, 1).Encode()
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, 16))
	f.Fuzz(func(t *testing.T, b []byte) {
		c, err := Decode(b)
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("decoded circuit invalid: %v", err)
		}
		re, err := c.Encode()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		c2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(c2.Gates) != len(c.Gates) || c2.NumInputs != c.NumInputs {
			t.Fatal("re-encode not stable")
		}
	})
}
