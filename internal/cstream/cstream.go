// Package cstream implements the compressed circuit representation of
// paper §V-A: the sumcheck-recomputation optimization streams the
// circuit from memory in "61-bit elements: for each operation, we keep
// track of the operation type (add or multiply) as well as the address
// of the operand node. By storing the address relative to the current
// node, we can compress this representation to 61 bits per node."
//
// Each gate consumes exactly 61 bits: 1 op bit and two 30-bit relative
// operand addresses (offsets back from the current node). Evaluate
// recomputes all wire values from the inputs alone — the recompute-
// instead-of-load trade NoCap makes to cut sumcheck memory traffic.
package cstream

import (
	"errors"
	"fmt"

	"nocap/internal/field"
)

// BitsPerNode is the paper's packed gate width.
const BitsPerNode = 61

// addrBits is the width of each relative operand address.
const addrBits = 30

// maxOffset bounds how far back a gate can reference.
const maxOffset = 1<<addrBits - 1

// Op is a gate type; the streamed format has one opcode bit.
type Op uint8

// Gate operations.
const (
	OpAdd Op = 0
	OpMul Op = 1
)

// Gate is one 2-input arithmetic gate. A and B are node indices: nodes
// 0..NumInputs-1 are the circuit inputs, node NumInputs+i is gate i's
// output.
type Gate struct {
	Op   Op
	A, B int
}

// Circuit is a gate-level arithmetic circuit (the DAG of paper Fig. 2,
// before R1CS conversion).
type Circuit struct {
	NumInputs int
	Gates     []Gate
}

// Validate checks topological order and address bounds.
func (c *Circuit) Validate() error {
	if c.NumInputs < 1 {
		return errors.New("cstream: circuit needs at least one input")
	}
	for i, g := range c.Gates {
		node := c.NumInputs + i
		for _, ref := range []int{g.A, g.B} {
			if ref < 0 || ref >= node {
				return fmt.Errorf("cstream: gate %d references node %d (have %d)", i, ref, node)
			}
			if node-ref > maxOffset {
				return fmt.Errorf("cstream: gate %d offset %d exceeds %d bits", i, node-ref, addrBits)
			}
		}
		if g.Op > OpMul {
			return fmt.Errorf("cstream: gate %d has invalid op", i)
		}
	}
	return nil
}

// Evaluate recomputes every node value from the inputs (the
// recomputation path of §V-A). The returned slice holds inputs followed
// by gate outputs.
func (c *Circuit) Evaluate(inputs []field.Element) ([]field.Element, error) {
	if len(inputs) != c.NumInputs {
		return nil, fmt.Errorf("cstream: %d inputs, circuit wants %d", len(inputs), c.NumInputs)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	nodes := make([]field.Element, c.NumInputs+len(c.Gates))
	copy(nodes, inputs)
	for i, g := range c.Gates {
		a, b := nodes[g.A], nodes[g.B]
		if g.Op == OpMul {
			nodes[c.NumInputs+i] = field.Mul(a, b)
		} else {
			nodes[c.NumInputs+i] = field.Add(a, b)
		}
	}
	return nodes, nil
}

// bitWriter packs little-endian bit strings.
type bitWriter struct {
	buf  []byte
	nbit int
}

func (w *bitWriter) write(v uint64, bits int) {
	for i := 0; i < bits; i++ {
		if w.nbit%8 == 0 {
			w.buf = append(w.buf, 0)
		}
		if v>>uint(i)&1 == 1 {
			w.buf[w.nbit/8] |= 1 << uint(w.nbit%8)
		}
		w.nbit++
	}
}

// bitReader unpacks little-endian bit strings.
type bitReader struct {
	buf  []byte
	nbit int
}

func (r *bitReader) read(bits int) (uint64, error) {
	var v uint64
	for i := 0; i < bits; i++ {
		byteIdx := r.nbit / 8
		if byteIdx >= len(r.buf) {
			return 0, errors.New("cstream: truncated stream")
		}
		if r.buf[byteIdx]>>uint(r.nbit%8)&1 == 1 {
			v |= 1 << uint(i)
		}
		r.nbit++
	}
	return v, nil
}

// Encode packs the circuit into the 61-bit-per-gate stream. The header
// carries the input and gate counts (two 64-bit words).
func (c *Circuit) Encode() ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	w := &bitWriter{}
	w.write(uint64(c.NumInputs), 64)
	w.write(uint64(len(c.Gates)), 64)
	for i, g := range c.Gates {
		node := c.NumInputs + i
		w.write(uint64(g.Op), 1)
		w.write(uint64(node-g.A), addrBits)
		w.write(uint64(node-g.B), addrBits)
	}
	return w.buf, nil
}

// Decode unpacks an encoded stream.
func Decode(data []byte) (*Circuit, error) {
	r := &bitReader{buf: data}
	numInputs, err := r.read(64)
	if err != nil {
		return nil, err
	}
	numGates, err := r.read(64)
	if err != nil {
		return nil, err
	}
	if numInputs > 1<<40 || numGates > 1<<40 {
		return nil, errors.New("cstream: implausible header")
	}
	// The payload must actually be present: 61 bits per claimed gate.
	if avail := uint64(len(data))*8 - 128; numGates > avail/BitsPerNode {
		return nil, errors.New("cstream: gate count exceeds stream length")
	}
	c := &Circuit{NumInputs: int(numInputs), Gates: make([]Gate, numGates)}
	for i := range c.Gates {
		op, err := r.read(1)
		if err != nil {
			return nil, err
		}
		offA, err := r.read(addrBits)
		if err != nil {
			return nil, err
		}
		offB, err := r.read(addrBits)
		if err != nil {
			return nil, err
		}
		node := c.NumInputs + i
		if offA == 0 || offB == 0 || uint64(node) < offA || uint64(node) < offB {
			return nil, fmt.Errorf("cstream: gate %d has invalid offsets", i)
		}
		c.Gates[i] = Gate{Op: Op(op), A: node - int(offA), B: node - int(offB)}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// StreamBits returns the payload size in bits (excluding the header):
// exactly BitsPerNode per gate — the §V-A compression claim.
func (c *Circuit) StreamBits() int { return BitsPerNode * len(c.Gates) }

// CompressionVsPrecomputed returns the traffic ratio of streaming the
// circuit + inputs (2N values, §V-A) versus loading the three
// precomputed SpMV products (3N values): the win recomputation buys.
func CompressionVsPrecomputed(numGates int) float64 {
	// circuit stream (61 bits/gate) + witness (64 bits/value, ≈1 per
	// gate) vs 3 precomputed 64-bit products per gate.
	streamed := float64(numGates)*BitsPerNode + float64(numGates)*64
	precomputed := float64(numGates) * 3 * 64
	return streamed / precomputed
}
