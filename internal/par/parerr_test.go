package par

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"nocap/internal/zkerr"
)

func TestForErrCoversRangeAndPropagatesNil(t *testing.T) {
	for _, n := range []int{0, 1, 100, 1 << 13, 1<<13 + 7} {
		covered := make([]int32, max(n, 1))
		err := ForErr(n, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			if covered[i] != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, i, covered[i])
			}
		}
	}
}

func TestForErrReturnsLowestChunkError(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	n := 1 << 14
	err := ForErr(n, func(lo, hi int) error {
		return fmt.Errorf("chunk %d failed", lo)
	})
	if err == nil || !strings.Contains(err.Error(), "chunk 0 failed") {
		t.Fatalf("want lowest-chunk error, got %v", err)
	}
}

func TestForErrRecoversWorkerPanic(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	n := 1 << 14
	err := ForErr(n, func(lo, hi int) error {
		if lo > 0 {
			panic(fmt.Sprintf("worker detonated at %d", lo))
		}
		return nil
	})
	if err == nil {
		t.Fatal("worker panic swallowed")
	}
	var wp *WorkerPanic
	if !errors.As(err, &wp) {
		t.Fatalf("want *WorkerPanic, got %T: %v", err, err)
	}
	if wp.Lo == 0 || wp.Hi <= wp.Lo {
		t.Fatalf("chunk context missing: %+v", wp)
	}
	if len(wp.Stack) == 0 {
		t.Fatal("worker stack not captured")
	}
	if !errors.Is(err, zkerr.ErrInternal) {
		t.Fatalf("worker panic not classified internal: %v", err)
	}
}

func TestForErrSerialPanicContained(t *testing.T) {
	// Below the parallel threshold the chunk runs on the caller goroutine;
	// containment must hold there too.
	err := ForErr(10, func(lo, hi int) error { panic("serial boom") })
	var wp *WorkerPanic
	if !errors.As(err, &wp) || wp.Lo != 0 || wp.Hi != 10 {
		t.Fatalf("serial panic not contained with chunk context: %v", err)
	}
}

func TestForRepanicsOnCallerGoroutine(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	caught := func() (v any) {
		defer func() { v = recover() }()
		For(1<<14, func(lo, hi int) {
			panic("for boom")
		})
		return nil
	}()
	wp, ok := caught.(*WorkerPanic)
	if !ok {
		t.Fatalf("want *WorkerPanic on caller goroutine, got %v", caught)
	}
	if wp.Value != "for boom" {
		t.Fatalf("panic value lost: %v", wp.Value)
	}
}

func TestMapReduceRepanicsOnCallerGoroutine(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	caught := func() (v any) {
		defer func() { v = recover() }()
		MapReduce(1<<14, func(lo, hi int) int {
			panic("mr boom")
		}, func(a, b int) int { return a + b })
		return nil
	}()
	if _, ok := caught.(*WorkerPanic); !ok {
		t.Fatalf("want *WorkerPanic, got %v", caught)
	}
}
