// Package par provides the worker-pool helpers that parallelize the CPU
// prover (the paper's software baseline is "vectorized and parallelized",
// §III; its 32-core parallel speedup is part of the efficiency analysis).
// Work is divided into contiguous chunks, one goroutine per available
// CPU, with deterministic results: chunk outputs are combined in index
// order and field arithmetic is exact, so parallel and serial execution
// produce identical bytes.
package par

import (
	"runtime"
	"sync"
)

// minParallel is the work size below which fan-out costs more than it
// saves.
const minParallel = 1 << 12

// maxWorkers caps the pool (diminishing returns past this, and tests
// stay predictable on large machines).
const maxWorkers = 32

// Workers returns the number of workers used for a job of size n.
func Workers(n int) int {
	if n < minParallel {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if w > maxWorkers {
		w = maxWorkers
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For runs fn(lo, hi) over a partition of [0, n) across workers and
// waits for completion. fn must not assume any particular chunk
// geometry.
func For(n int, fn func(lo, hi int)) {
	workers := Workers(n)
	if workers == 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MapReduce computes a per-chunk result and combines them in chunk-index
// order (deterministic for non-commutative combines).
func MapReduce[T any](n int, mapChunk func(lo, hi int) T, combine func(acc, v T) T) T {
	workers := Workers(n)
	var zero T
	if n <= 0 {
		return zero
	}
	if workers == 1 {
		return combine(zero, mapChunk(0, n))
	}
	chunk := (n + workers - 1) / workers
	results := make([]T, workers)
	used := make([]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		used[w] = true
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			results[w] = mapChunk(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	acc := zero
	for w := range results {
		if used[w] {
			acc = combine(acc, results[w])
		}
	}
	return acc
}
