// Package par provides the worker-pool helpers that parallelize the CPU
// prover (the paper's software baseline is "vectorized and parallelized",
// §III; its 32-core parallel speedup is part of the efficiency analysis).
// Work is divided into contiguous chunks distributed to one goroutine per
// available CPU, with deterministic results: chunk outputs are combined in
// index order and field arithmetic is exact, so parallel and serial
// execution produce identical bytes.
//
// Fault containment: a panic inside a worker goroutine would normally
// kill the whole process, which is unacceptable for a proving service.
// Every helper here recovers worker panics and re-raises them (with the
// failing chunk's range and the worker stack) on the caller's goroutine,
// where the prover's top-level recover converts them to a typed error.
// ForErr additionally propagates ordinary errors.
//
// Cancellation: the Ctx variants stop dispatching new chunks as soon as
// the context is cancelled or any chunk fails, then drain the already
// running workers before returning — a cancelled caller always gets its
// goroutines back, never a leak. Chunks are oversubscribed (several per
// worker) so "stop dispatching" takes effect mid-range rather than after
// the full range has run.
package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"nocap/internal/faultinject"
	"nocap/internal/zkerr"
)

// fiWorker is the registered fault-injection point inside every pool
// chunk body (chaos tests arm it by this name).
var fiWorker = faultinject.Register("par.worker")

// minParallel is the work size below which fan-out costs more than it
// saves.
const minParallel = 1 << 12

// maxWorkers caps the pool (diminishing returns past this, and tests
// stay predictable on large machines).
const maxWorkers = 32

// chunksPerWorker oversubscribes the chunk count so early errors and
// cancellation can skip undispatched chunks: workers pull chunks from a
// shared counter, and once a chunk fails (or the context is cancelled)
// no further chunks start.
const chunksPerWorker = 4

// Workers returns the number of workers used for a job of size n.
func Workers(n int) int {
	if n < minParallel {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if w > maxWorkers {
		w = maxWorkers
	}
	if w < 1 {
		w = 1
	}
	return w
}

// WorkerPanic is the value re-raised on the caller goroutine when a worker
// panicked. It unwraps to zkerr.ErrInternal so that a top-level
// zkerr.RecoverTo classifies it, and it keeps the chunk range and worker
// stack for diagnosis.
type WorkerPanic struct {
	// Lo, Hi is the chunk the failing worker was processing.
	Lo, Hi int
	// Value is the original panic value.
	Value any
	// Stack is the failing worker's stack at recovery time.
	Stack []byte
}

func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("par: worker panic on chunk [%d,%d): %v", p.Lo, p.Hi, p.Value)
}

// Unwrap places worker panics in the error taxonomy.
func (p *WorkerPanic) Unwrap() error { return zkerr.ErrInternal }

// Collector captures the first worker panic so it can be re-raised (or
// returned) on the caller's goroutine after the pool drains. It is
// exported for code that manages its own goroutines (e.g. the sumcheck
// round-evaluation loop) but wants the same containment behavior.
type Collector struct {
	mu sync.Mutex
	p  *WorkerPanic
}

// Recover is deferred inside each worker goroutine; it converts a panic
// into a recorded WorkerPanic (first one wins).
func (c *Collector) Recover(lo, hi int) {
	r := recover()
	if r == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.p == nil {
		c.p = &WorkerPanic{Lo: lo, Hi: hi, Value: r, Stack: debug.Stack()}
	}
}

// Repanic re-raises the recorded panic on the calling goroutine, if any.
// Called after the WaitGroup drains, so the panic crosses back onto a
// stack the caller's deferred recover can see.
func (c *Collector) Repanic() {
	if c.p != nil {
		panic(c.p)
	}
}

// Err returns the recorded panic as an error, or nil.
func (c *Collector) Err() error {
	if c.p == nil {
		return nil
	}
	return c.p
}

// For runs fn(lo, hi) over a partition of [0, n) across workers and
// waits for completion. fn must not assume any particular chunk
// geometry. A panic in any worker is re-raised on the caller's goroutine
// as a *WorkerPanic once all workers have stopped.
func For(n int, fn func(lo, hi int)) {
	workers := Workers(n)
	if workers == 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	var rec Collector
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer rec.Recover(lo, hi)
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	rec.Repanic()
}

// ForCtx is For with cooperative cancellation: between chunks the pool
// checks ctx and stops dispatching once it is cancelled, draining the
// running workers before returning ctx.Err(). Worker panics re-raise on
// the caller's goroutine exactly like For.
func ForCtx(ctx context.Context, n int, fn func(lo, hi int)) error {
	err := ForErrCtx(ctx, n, func(lo, hi int) error {
		fn(lo, hi)
		return nil
	})
	var wp *WorkerPanic
	if errors.As(err, &wp) {
		panic(wp)
	}
	return err
}

// ForErr runs fn(lo, hi) over a partition of [0, n) and returns the
// error of the lowest-indexed chunk that ran and failed. The first error
// stops dispatch: chunks not yet started are skipped (the pool is
// oversubscribed chunksPerWorker× so most of the range is undispatched
// when an early chunk fails), and already running chunks are drained
// before ForErr returns. Worker panics are recovered and returned as a
// *WorkerPanic error instead of crashing the process, so Prove fails
// cleanly on internal faults.
func ForErr(n int, fn func(lo, hi int) error) error {
	return ForErrCtx(context.Background(), n, fn)
}

// ForErrCtx is ForErr under a context: cancellation stops dispatch the
// same way an error does, running workers drain (no goroutine ever
// outlives the call), and the context's error is returned if no chunk
// failed first. Each dispatched chunk also passes through the
// "par.worker" fault-injection point.
func ForErrCtx(ctx context.Context, n int, fn func(lo, hi int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	workers := Workers(n)
	if workers == 1 {
		if n > 0 {
			if err := runChunk(0, n, fn); err != nil {
				return err
			}
		}
		return ctx.Err()
	}
	numChunks := workers * chunksPerWorker
	chunk := (n + numChunks - 1) / numChunks
	numChunks = (n + chunk - 1) / chunk

	errs := make([]error, numChunks)
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() || ctx.Err() != nil {
					return
				}
				c := int(next.Add(1)) - 1
				if c >= numChunks {
					return
				}
				lo, hi := c*chunk, (c+1)*chunk
				if hi > n {
					hi = n
				}
				if err := runChunk(lo, hi, fn); err != nil {
					errs[c] = err
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// runChunk runs one chunk through the fault-injection point with panic
// containment.
func runChunk(lo, hi int, fn func(lo, hi int) error) error {
	if err := faultinject.Check(fiWorker); err != nil {
		return err
	}
	return protect(lo, hi, fn)
}

// protect runs one chunk, converting a panic into a *WorkerPanic error.
func protect(lo, hi int, fn func(lo, hi int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &WorkerPanic{Lo: lo, Hi: hi, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(lo, hi)
}

// MapReduce computes a per-chunk result and combines them in chunk-index
// order (deterministic for non-commutative combines). Worker panics are
// re-raised on the caller's goroutine like For.
func MapReduce[T any](n int, mapChunk func(lo, hi int) T, combine func(acc, v T) T) T {
	workers := Workers(n)
	var zero T
	if n <= 0 {
		return zero
	}
	if workers == 1 {
		return combine(zero, mapChunk(0, n))
	}
	chunk := (n + workers - 1) / workers
	results := make([]T, workers)
	used := make([]bool, workers)
	var wg sync.WaitGroup
	var rec Collector
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		used[w] = true
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer rec.Recover(lo, hi)
			results[w] = mapChunk(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	rec.Repanic()
	acc := zero
	for w := range results {
		if used[w] {
			acc = combine(acc, results[w])
		}
	}
	return acc
}
