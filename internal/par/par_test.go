package par

import (
	"runtime"
	"sync/atomic"
	"testing"

	"nocap/internal/field"
)

func TestForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 100, 1 << 13, 1<<13 + 7} {
		covered := make([]int32, max(n, 1))
		For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
		})
		for i := 0; i < n; i++ {
			if covered[i] != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, i, covered[i])
			}
		}
	}
}

func TestMapReduceSum(t *testing.T) {
	n := 1<<13 + 3
	want := field.Zero
	for i := 0; i < n; i++ {
		want = field.Add(want, field.New(uint64(i)))
	}
	got := MapReduce(n, func(lo, hi int) field.Element {
		var acc field.Element
		for i := lo; i < hi; i++ {
			acc = field.Add(acc, field.New(uint64(i)))
		}
		return acc
	}, field.Add)
	if got != want {
		t.Fatalf("parallel sum %v, want %v", got, want)
	}
}

func TestMapReduceEmpty(t *testing.T) {
	got := MapReduce(0, func(lo, hi int) int { return 1 }, func(a, b int) int { return a + b })
	if got != 0 {
		t.Fatalf("empty reduce = %d", got)
	}
}

func TestMapReduceOrderPreserved(t *testing.T) {
	// Combine with a non-commutative operation: string-like ordering via
	// first-index tracking. Chunks must combine in index order.
	n := 1 << 13
	type span struct{ lo, hi int }
	got := MapReduce(n, func(lo, hi int) []span {
		return []span{{lo, hi}}
	}, func(acc, v []span) []span {
		return append(acc, v...)
	})
	prev := 0
	for _, s := range got {
		if s.lo != prev {
			t.Fatalf("out-of-order chunk %v after %d", s, prev)
		}
		prev = s.hi
	}
	if prev != n {
		t.Fatalf("coverage ends at %d", prev)
	}
}

func TestWorkersBounds(t *testing.T) {
	if Workers(10) != 1 {
		t.Fatal("small jobs must stay serial")
	}
	if w := Workers(1 << 20); w < 1 || w > maxWorkers {
		t.Fatalf("workers %d out of bounds", w)
	}
}

func TestParallelPathsUnderMultiProc(t *testing.T) {
	// Force the multi-worker branches even on single-CPU hosts.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	if Workers(1<<16) < 2 {
		t.Skip("cannot raise worker count on this host")
	}
	n := 1<<14 + 11
	covered := make([]int32, n)
	For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	})
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
	want := field.Zero
	for i := 0; i < n; i++ {
		want = field.Add(want, field.New(uint64(i*3)))
	}
	got := MapReduce(n, func(lo, hi int) field.Element {
		var acc field.Element
		for i := lo; i < hi; i++ {
			acc = field.Add(acc, field.New(uint64(i*3)))
		}
		return acc
	}, field.Add)
	if got != want {
		t.Fatal("parallel MapReduce differs from serial")
	}
}
