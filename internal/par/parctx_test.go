package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"nocap/internal/faultinject"
	"nocap/internal/leakcheck"
	"nocap/internal/zkerr"
)

// TestForErrEarlyErrorSkipsUndispatchedChunks is the regression test for
// the dispatch-stop fix: once a chunk fails, chunks not yet started must
// never run. The failing chunk signals the in-flight chunks, which wait
// long enough for the stop flag to be visible before returning, so every
// later pull observes the stop; at most `workers` chunks (the failing one
// plus the in-flight ones) ever execute out of workers*chunksPerWorker.
func TestForErrEarlyErrorSkipsUndispatchedChunks(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	n := 1 << 14
	workers := Workers(n)
	if workers < 2 {
		t.Skip("need a parallel pool")
	}
	numChunks := workers * chunksPerWorker

	var executed atomic.Int32
	errFired := make(chan struct{})
	boom := errors.New("early chunk failure")
	err := ForErr(n, func(lo, hi int) error {
		executed.Add(1)
		if lo == 0 {
			defer close(errFired)
			return boom
		}
		// In-flight chunk: hold until the failing chunk has returned,
		// then give the pool time to set the stop flag, so this worker's
		// next pull deterministically observes it.
		<-errFired
		time.Sleep(20 * time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want the injected chunk error, got %v", err)
	}
	if got := int(executed.Load()); got > workers {
		t.Fatalf("%d chunks executed after an early error; at most %d (the in-flight set) allowed, pool had %d chunks total",
			got, workers, numChunks)
	}
}

func TestForErrCtxCancelStopsDispatchAndDrains(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	n := 1 << 14
	workers := Workers(n)
	if workers < 2 {
		t.Skip("need a parallel pool")
	}

	snap := leakcheck.Take()
	ctx, cancel := context.WithCancel(context.Background())
	var executed atomic.Int32
	err := ForErrCtx(ctx, n, func(lo, hi int) error {
		if executed.Add(1) == 1 {
			cancel()
			// Same drain pattern as the error test: let the cancellation
			// become visible before this worker pulls again.
			time.Sleep(20 * time.Millisecond)
		}
		return nil
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got := int(executed.Load()); got > workers+1 {
		t.Fatalf("%d chunks executed after cancellation; want at most the in-flight set (%d)", got, workers+1)
	}
	snap.Check(t)
}

func TestForErrCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var executed atomic.Int32
	err := ForErrCtx(ctx, 1<<14, func(lo, hi int) error {
		executed.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if executed.Load() != 0 {
		t.Fatalf("%d chunks ran under an already-cancelled context", executed.Load())
	}
}

func TestForErrCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := ForErrCtx(ctx, 1<<14, func(lo, hi int) error {
		time.Sleep(10 * time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

func TestForCtxCleanRunAndPanicPropagation(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	n := 1 << 14
	covered := make([]int32, n)
	if err := ForCtx(context.Background(), n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	}); err != nil {
		t.Fatalf("clean ForCtx: %v", err)
	}
	for i := range covered {
		if covered[i] != 1 {
			t.Fatalf("index %d covered %d times", i, covered[i])
		}
	}

	caught := func() (v any) {
		defer func() { v = recover() }()
		_ = ForCtx(context.Background(), n, func(lo, hi int) {
			panic(fmt.Sprintf("forctx boom at %d", lo))
		})
		return nil
	}()
	wp, ok := caught.(*WorkerPanic)
	if !ok {
		t.Fatalf("want *WorkerPanic re-raised on caller goroutine, got %v", caught)
	}
	if !errors.Is(wp, zkerr.ErrInternal) {
		t.Fatalf("worker panic not classified internal: %v", wp)
	}
}

func TestForErrCtxFaultInjectionPoint(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	defer faultinject.Disarm()
	faultinject.MustArm(faultinject.Plan{Point: "par.worker", Kind: faultinject.Error, Trigger: 2})
	snap := leakcheck.Take()
	err := ForErr(1<<14, func(lo, hi int) error { return nil })
	if !errors.Is(err, zkerr.ErrInternal) {
		t.Fatalf("want injected internal error from par.worker point, got %v", err)
	}
	if !faultinject.Fired() {
		t.Fatal("armed plan never fired")
	}
	faultinject.Disarm()
	snap.Check(t)

	// Containment: the very next pool run is clean.
	if err := ForErr(1<<14, func(lo, hi int) error { return nil }); err != nil {
		t.Fatalf("pool did not recover after injected fault: %v", err)
	}
}
