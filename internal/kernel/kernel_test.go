package kernel

import (
	"context"
	"math/rand"
	"testing"

	"nocap/internal/field"
	"nocap/internal/hashfn"
	"nocap/internal/ntt"
	"nocap/internal/tasks"
)

func randElems(t *testing.T, rng *rand.Rand, n int) []field.Element {
	t.Helper()
	out := make([]field.Element, n)
	for i := range out {
		out[i] = field.New(rng.Uint64())
	}
	return out
}

func TestFoldMatchesReferenceAndAliases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	evals := randElems(t, rng, 64)
	r := field.New(rng.Uint64())

	want := make([]field.Element, 32)
	for i := range want {
		want[i] = field.Add(evals[i], field.Mul(r, field.Sub(evals[i+32], evals[i])))
	}

	base := &evals[0]
	got := Fold(evals, r)
	if len(got) != 32 {
		t.Fatalf("folded length = %d, want 32", len(got))
	}
	if &got[0] != base {
		t.Fatal("Fold must return a prefix of its input (arena Put is keyed on the base pointer)")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fold[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// eqRef evaluates eq(r, x) = Π_k (r_k·x_k + (1−r_k)(1−x_k)) directly.
func eqRef(r []field.Element, x int) field.Element {
	acc := field.One
	for k, rk := range r {
		bit := (x >> (len(r) - 1 - k)) & 1
		if bit == 1 {
			acc = field.Mul(acc, rk)
		} else {
			acc = field.Mul(acc, field.Sub(field.One, rk))
		}
	}
	return acc
}

func TestEqExpandMatchesProductFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := randElems(t, rng, 5)
	table := make([]field.Element, 1<<5)
	// Pre-dirty: EqExpand must overwrite every entry.
	for i := range table {
		table[i] = field.New(^uint64(0) >> 1)
	}
	EqExpand(table, r)
	for x := range table {
		if want := eqRef(r, x); table[x] != want {
			t.Fatalf("eq table[%d] = %v, want %v", x, table[x], want)
		}
	}
}

func TestEqExpandSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on table/point size mismatch")
		}
	}()
	EqExpand(make([]field.Element, 7), make([]field.Element, 3))
}

func TestVecCombineMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := [][]field.Element{
		randElems(t, rng, 20),
		randElems(t, rng, 16),
		randElems(t, rng, 16),
	}
	coeffs := []field.Element{field.New(rng.Uint64()), field.Zero, field.New(rng.Uint64())}
	base := randElems(t, rng, 16)

	want := append([]field.Element(nil), base...)
	for r, c := range coeffs {
		for i := range want {
			want[i] = field.Add(want[i], field.Mul(c, rows[r][i]))
		}
	}

	dst := append([]field.Element(nil), base...)
	VecCombine(dst, coeffs, rows)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestRSEncodeCtxOverwritesDirtyScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	msg := randElems(t, rng, 16)

	want := make([]field.Element, 64)
	copy(want, msg)
	ntt.Forward(want)

	// Arena scratch arrives with arbitrary contents; the kernel must
	// zero-pad the tail itself or codewords depend on stale memory.
	dst := randElems(t, rng, 64)
	if err := RSEncodeCtx(context.Background(), dst, msg); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("codeword[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestMerkleLevelCtxMatchesHash2(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	prev := make([]hashfn.Digest, 16)
	for i := range prev {
		prev[i] = hashfn.HashElems(randElems(t, rng, 2))
	}
	for _, name := range hashfn.Names() {
		eng, ok := hashfn.ByName(name)
		if !ok {
			t.Fatalf("engine %q not registered", name)
		}
		dst := make([]hashfn.Digest, 8)
		if err := MerkleLevelCtx(context.Background(), eng, dst, prev); err != nil {
			t.Fatal(err)
		}
		for i := range dst {
			if want := hashfn.Hash2(prev[2*i], prev[2*i+1]); dst[i] != want {
				t.Fatalf("%s: level[%d] mismatch", name, i)
			}
		}
	}
}

func TestColumnLeavesCtxMatchesHashElems(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const depth, cols = 5, 33
	rows := make([][]field.Element, depth)
	for r := range rows {
		rows[r] = randElems(t, rng, cols)
	}
	for _, name := range hashfn.Names() {
		eng, ok := hashfn.ByName(name)
		if !ok {
			t.Fatalf("engine %q not registered", name)
		}
		leaves := make([]hashfn.Digest, cols)
		if err := ColumnLeavesCtx(context.Background(), eng, leaves, rows); err != nil {
			t.Fatal(err)
		}
		col := make([]field.Element, depth)
		for j := 0; j < cols; j++ {
			for r := range rows {
				col[r] = rows[r][j]
			}
			if want := hashfn.HashElems(col); leaves[j] != want {
				t.Fatalf("%s: leaf %d mismatch", name, j)
			}
		}
	}
}

func spmvRef(rows [][]Entry, x []field.Element) []field.Element {
	out := make([]field.Element, len(rows))
	for i, row := range rows {
		for _, e := range row {
			out[i] = field.Add(out[i], field.Mul(e.Val, x[e.Col]))
		}
	}
	return out
}

func randSparse(rng *rand.Rand, numRows, numCols int) [][]Entry {
	rows := make([][]Entry, numRows)
	for i := range rows {
		for k := 0; k < rng.Intn(4); k++ {
			rows[i] = append(rows[i], Entry{Col: rng.Intn(numCols), Val: field.New(rng.Uint64())})
		}
	}
	return rows
}

func TestSpMVVariantsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := randSparse(rng, 200, 64)
	x := randElems(t, rng, 64)
	want := spmvRef(rows, x)

	dst := randElems(t, rng, 200) // dirty: kernels overwrite, not accumulate
	if err := SpMVCtx(context.Background(), dst, rows, x); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("SpMVCtx[%d] mismatch", i)
		}
	}

	dst2 := randElems(t, rng, 200)
	SpMVSerial(dst2, rows, x)
	for i := range want {
		if dst2[i] != want[i] {
			t.Fatalf("SpMVSerial[%d] mismatch", i)
		}
	}
}

func TestSpMVTCtxMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rows := randSparse(rng, 64, 48)
	y := randElems(t, rng, 64)
	scale := field.New(rng.Uint64())

	want := make([]field.Element, 48)
	for i, row := range rows {
		w := field.Mul(scale, y[i])
		for _, e := range row {
			want[e.Col] = field.Add(want[e.Col], field.Mul(w, e.Val))
		}
	}

	dst := make([]field.Element, 48) // zeroed: SpMVT accumulates
	if err := SpMVTCtx(context.Background(), dst, rows, y, scale); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("SpMVT[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestCtxKernelsHonorCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(9))

	if err := RSEncodeCtx(ctx, make([]field.Element, 64), randElems(t, rng, 16)); err == nil {
		t.Error("RSEncodeCtx ignored cancelled context")
	}
	if err := MerkleLevelCtx(ctx, hashfn.Default(), make([]hashfn.Digest, 4), make([]hashfn.Digest, 8)); err == nil {
		t.Error("MerkleLevelCtx ignored cancelled context")
	}
	if err := SpMVCtx(ctx, make([]field.Element, 8), randSparse(rng, 8, 8), randElems(t, rng, 8)); err == nil {
		t.Error("SpMVCtx ignored cancelled context")
	}
	if err := SpMVTCtx(ctx, make([]field.Element, 8), randSparse(rng, 8, 8), randElems(t, rng, 8), field.One); err == nil {
		t.Error("SpMVTCtx ignored cancelled context")
	}
	if err := ColumnLeavesCtx(ctx, hashfn.Default(), make([]hashfn.Digest, 8), [][]field.Element{randElems(t, rng, 8)}); err == nil {
		t.Error("ColumnLeavesCtx ignored cancelled context")
	}
}

func TestStageNamesMatchTaskTaxonomy(t *testing.T) {
	// The stage labels must stay in lockstep with internal/tasks so that
	// ProveStats breakdowns line up with the simulator's task families.
	pairs := []struct {
		stage Stage
		kind  tasks.Kind
	}{
		{StageSumcheck, tasks.Sumcheck},
		{StageEncode, tasks.RSEncode},
		{StageMerkle, tasks.Merkle},
		{StageSpMV, tasks.SpMV},
		{StagePoly, tasks.PolyArith},
	}
	for _, p := range pairs {
		if p.stage.String() != p.kind.String() {
			t.Errorf("stage %d = %q, tasks kind = %q", p.stage, p.stage, p.kind)
		}
	}
}

func TestSpansCreditCounters(t *testing.T) {
	before := Snapshot()
	rng := rand.New(rand.NewSource(10))
	Fold(randElems(t, rng, 16), field.One)
	d := Snapshot().Sub(before)
	if d.Sumcheck.Calls != 1 {
		t.Fatalf("sumcheck calls delta = %d, want 1", d.Sumcheck.Calls)
	}
	if d.Sumcheck.Elems != 8 {
		t.Fatalf("sumcheck elems delta = %d, want 8 (the folded half)", d.Sumcheck.Elems)
	}
	if d.Sumcheck.Wall <= 0 {
		t.Fatalf("sumcheck wall delta = %v, want > 0", d.Sumcheck.Wall)
	}
}

func TestNamedCoversAllStages(t *testing.T) {
	named := Snapshot().Named()
	for _, want := range []string{"sumcheck", "rs-encode", "merkle", "spmv", "poly-arith"} {
		if _, ok := named[want]; !ok {
			t.Errorf("Named() missing stage %q", want)
		}
	}
	if len(named) != 5 {
		t.Errorf("Named() has %d entries, want 5", len(named))
	}
}
