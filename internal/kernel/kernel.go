// Package kernel holds the in-place, scratch-taking implementations of
// the five task-taxonomy kernels the paper schedules onto NoCap's
// functional units (§V-A): sumcheck DP folds, Reed-Solomon encode,
// Merkle hashing, sparse matrix-vector products, and MLE/polynomial
// arithmetic. The higher layers (ntt, code, merkle, pcs, sumcheck,
// spartan, poly) route their hot loops through this package so that
//
//   - destination buffers are caller-owned (typically arena checkouts),
//     so the steady-state prover performs no per-call allocation, and
//   - every invocation is attributed to a stage counter (stats.go),
//     making the prover's stage breakdown observable the way the paper's
//     per-kernel tables are.
//
// Kernels never retain or return internal references to their arguments;
// ownership of dst stays with the caller. Ctx variants poll cancellation
// at bounded intervals and return the context error with dst in an
// unspecified partially-written state.
package kernel

import (
	"context"

	"nocap/internal/field"
	"nocap/internal/hashfn"
	"nocap/internal/ntt"
	"nocap/internal/par"
)

// ctxCheckInterval is how many output elements a serial kernel processes
// between context polls; 2^12 elements is well under a millisecond of
// work on any target, matching the checkpoint policy of DESIGN.md §8.
const ctxCheckInterval = 1 << 12

// Entry is one nonzero of a sparse-matrix row: column index and value.
// r1cs.SparseMatrix and the expander-code graphs share this layout so a
// single SpMV kernel serves both.
type Entry struct {
	Col int
	Val field.Element
}

// Fold performs one sumcheck DP fold in place:
//
//	evals'[i] = evals[i] + r·(evals[i+half] − evals[i])
//
// and returns the halved prefix evals[:half], which aliases the input's
// backing array (so an arena checkout can still be returned via the
// original slice). len(evals) must be even and non-zero.
func Fold(evals []field.Element, r field.Element) []field.Element {
	return FoldCtx(context.Background(), evals, r)
}

// FoldCtx is Fold attributed to the per-run collector carried by ctx.
// The fold itself is not cancellable (it is short and in-place); the
// context is used for stats attribution only.
func FoldCtx(ctx context.Context, evals []field.Element, r field.Element) []field.Element {
	sp := BeginCtx(ctx, StageSumcheck)
	half := len(evals) / 2
	lo, hi := evals[:half], evals[half:]
	for i := range lo {
		lo[i] = field.Add(lo[i], field.Mul(r, field.Sub(hi[i], lo[i])))
	}
	sp.End(half)
	return lo
}

// EqExpand fills table with the multilinear equality polynomial's
// evaluations eq(r, x) over all x ∈ {0,1}^len(r), in lexicographic order
// with x[0] as the high bit. len(table) must be exactly 1<<len(r). Every
// entry is written, so uninitialized (arena GetUninit) scratch is safe.
func EqExpand(table []field.Element, r []field.Element) {
	EqExpandCtx(context.Background(), table, r)
}

// EqExpandCtx is EqExpand attributed to the per-run collector carried by
// ctx (stats attribution only; the expansion is not cancellable).
func EqExpandCtx(ctx context.Context, table []field.Element, r []field.Element) {
	if len(table) != 1<<len(r) {
		panic("kernel: eq table size mismatch")
	}
	sp := BeginCtx(ctx, StagePoly)
	table[0] = field.One
	size := 1
	for _, rk := range r {
		// Split each current entry t into t·(1−rk) and t·rk.
		for i := size - 1; i >= 0; i-- {
			t := table[i]
			hi := field.Mul(t, rk)
			table[2*i] = field.Sub(t, hi)
			table[2*i+1] = hi
		}
		size <<= 1
	}
	sp.End(len(table))
}

// VecCombine accumulates dst += Σ_r coeffs[r]·rows[r]. dst must already
// hold the base vector (e.g. a ZK mask, or zeros). Every rows[r] must
// have length ≥ len(dst); only the first len(dst) entries participate.
func VecCombine(dst []field.Element, coeffs []field.Element, rows [][]field.Element) {
	VecCombineCtx(context.Background(), dst, coeffs, rows)
}

// VecCombineCtx is VecCombine attributed to the per-run collector
// carried by ctx (stats attribution only).
func VecCombineCtx(ctx context.Context, dst []field.Element, coeffs []field.Element, rows [][]field.Element) {
	sp := BeginCtx(ctx, StagePoly)
	n := 0
	for r, c := range coeffs {
		if c.IsZero() {
			continue
		}
		field.VecScaleAdd(dst, c, rows[r][:len(dst)])
		n += len(dst)
	}
	sp.End(n)
}

// RSEncodeCtx writes the Reed-Solomon codeword of msg into dst: msg is
// copied, the tail is zero-padded (dst may be dirty arena scratch), and
// the whole buffer is NTT-transformed in place. len(dst) must be the
// codeword length (a power of two ≥ len(msg)). On error dst must be
// discarded.
func RSEncodeCtx(ctx context.Context, dst, msg []field.Element) error {
	if len(msg) > len(dst) {
		panic("kernel: rs-encode message longer than codeword")
	}
	sp := BeginCtx(ctx, StageEncode)
	copy(dst, msg)
	clear(dst[len(msg):])
	err := ntt.ForwardCtx(ctx, dst)
	sp.End(len(dst))
	return err
}

// MerkleLevelCtx compresses one Merkle level: dst[i] = H(prev[2i] ‖
// prev[2i+1]). len(prev) must be 2·len(dst). Whole ctxCheckInterval
// chunks are handed to the engine's batch compression — the entry point
// a multi-buffer engine fills its lanes from — with cancellation polled
// between chunks.
func MerkleLevelCtx(ctx context.Context, eng hashfn.Engine, dst, prev []hashfn.Digest) error {
	if len(prev) != 2*len(dst) {
		panic("kernel: merkle level size mismatch")
	}
	sp := BeginCtx(ctx, StageMerkle)
	for lo := 0; lo < len(dst); lo += ctxCheckInterval {
		if err := ctx.Err(); err != nil {
			sp.End(lo)
			return err
		}
		hi := lo + ctxCheckInterval
		if hi > len(dst) {
			hi = len(dst)
		}
		eng.CompressMany(dst[lo:hi], prev[2*lo:2*hi])
	}
	sp.End(len(dst))
	return nil
}

// columnGroup is how many columns each worker packs before one SumMany
// call: the multi-buffer engine's interleave width, so every full group
// is hashed in single interleaved passes.
const columnGroup = 4

// ColumnLeavesCtx hashes every column of the row-major matrix rows into
// leaves: leaves[j] = H(rows[0][j] ‖ rows[1][j] ‖ …). Every rows[r] must
// have length ≥ len(leaves). Columns fan out across the worker pool;
// each worker packs columnGroup equal-length columns into reused byte
// buffers and hashes them through the engine's batch entry point, so the
// loop allocates O(workers), not O(columns), and a multi-buffer engine
// advances four columns per permutation pass.
func ColumnLeavesCtx(ctx context.Context, eng hashfn.Engine, leaves []hashfn.Digest, rows [][]field.Element) error {
	sp := BeginCtx(ctx, StageMerkle)
	depth := len(rows)
	err := par.ForErrCtx(ctx, len(leaves), func(lo, hi int) error {
		col := make([]field.Element, depth)
		flat := make([]byte, columnGroup*8*depth)
		var msgs [columnGroup][]byte
		for k := range msgs {
			msgs[k] = flat[8*depth*k : 8*depth*(k+1)]
		}
		for j := lo; j < hi; j += columnGroup {
			m := columnGroup
			if hi-j < m {
				m = hi - j
			}
			for k := 0; k < m; k++ {
				for r, row := range rows {
					col[r] = row[j+k]
				}
				hashfn.PutElems(msgs[k], col)
			}
			eng.SumMany(leaves[j:j+m], msgs[:m])
		}
		return nil
	})
	sp.End(len(leaves) * depth)
	return err
}

// SpMVCtx computes the sparse matrix-vector product dst[i] = rows[i]·x
// across the worker pool. Worker panics re-raise on the calling
// goroutine (par.ForCtx semantics), so callers keep their existing
// zkerr containment behavior.
func SpMVCtx(ctx context.Context, dst []field.Element, rows [][]Entry, x []field.Element) error {
	if len(dst) != len(rows) {
		panic("kernel: spmv output size mismatch")
	}
	sp := BeginCtx(ctx, StageSpMV)
	err := par.ForCtx(ctx, len(rows), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var acc field.Element
			for _, e := range rows[i] {
				acc = field.Add(acc, field.Mul(e.Val, x[e.Col]))
			}
			dst[i] = acc
		}
	})
	sp.End(len(rows))
	return err
}

// SpMVSerial is SpMV on the calling goroutine, for small systems and
// recursive encoders where fan-out costs more than it saves.
func SpMVSerial(dst []field.Element, rows [][]Entry, x []field.Element) {
	if err := SpMVSerialCtx(context.Background(), dst, rows, x); err != nil {
		panic(err) // unreachable: background context never cancels
	}
}

// SpMVSerialCtx is SpMVSerial with per-run stats attribution and
// cooperative cancellation polled every ctxCheckInterval rows.
func SpMVSerialCtx(ctx context.Context, dst []field.Element, rows [][]Entry, x []field.Element) error {
	if len(dst) != len(rows) {
		panic("kernel: spmv output size mismatch")
	}
	sp := BeginCtx(ctx, StageSpMV)
	for i, row := range rows {
		if i%ctxCheckInterval == 0 && i > 0 {
			if err := ctx.Err(); err != nil {
				sp.End(i)
				return err
			}
		}
		var acc field.Element
		for _, e := range row {
			acc = field.Add(acc, field.Mul(e.Val, x[e.Col]))
		}
		dst[i] = acc
	}
	sp.End(len(rows))
	return nil
}

// SpMVTCtx accumulates the scaled transpose product
//
//	dst[e.Col] += scale·y[i]·e.Val   for every entry e of rows[i]
//
// serially (the column scatter would race under fan-out). This is the
// Mᵀ·y shape of Spartan's inner sumcheck assembly. len(y) must be
// ≥ len(rows); dst must span every referenced column.
func SpMVTCtx(ctx context.Context, dst []field.Element, rows [][]Entry, y []field.Element, scale field.Element) error {
	sp := BeginCtx(ctx, StageSpMV)
	for i, row := range rows {
		if i%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				sp.End(i)
				return err
			}
		}
		w := field.Mul(scale, y[i])
		if w.IsZero() {
			continue
		}
		for _, e := range row {
			dst[e.Col] = field.Add(dst[e.Col], field.Mul(w, e.Val))
		}
	}
	sp.End(len(rows))
	return nil
}
