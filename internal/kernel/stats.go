// Per-stage execution counters for the kernel layer.
//
// Every kernel entry point records wall time, elements processed, and
// call counts against one of the five task-taxonomy stages. Counters
// live in Collectors: the package-level aggregate sink (Snapshot) is
// always credited, and a per-run Collector carried in the context
// (WithCollector) is credited as well, so two concurrent proving runs
// each observe exactly their own work while the process-wide totals
// stay monotone for /metrics-style reporting. Instrumentation is always
// on — a span is two monotonic-clock reads and a handful of atomic
// adds, far below the cost of any kernel invocation it wraps.
//
// Note on concurrency: kernels that fan out across a worker pool time
// the whole fan-out from the coordinating goroutine, so their Wall is
// wall-clock time. The one exception is the Reed-Solomon encode, whose
// per-row spans run on the pool workers themselves; its Wall approaches
// CPU time summed over workers and may exceed the run's elapsed time.
package kernel

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Stage identifies one of the five task-taxonomy kernels (paper §V-A).
// The names match internal/tasks' task kinds.
type Stage int

const (
	// StageSumcheck is the sumcheck dynamic-programming kernel: DP-array
	// folds and round-polynomial evaluations (paper Listing 1).
	StageSumcheck Stage = iota
	// StageEncode is the Reed-Solomon encode kernel (zero-extend + NTT).
	StageEncode
	// StageMerkle is the Merkle hashing kernel: column leaf packing and
	// 2-to-1 level compression.
	StageMerkle
	// StageSpMV is the sparse matrix-vector product kernel.
	StageSpMV
	// StagePoly is the MLE / polynomial arithmetic kernel: eq-table
	// expansion and row combinations.
	StagePoly

	numStages
)

var stageNames = [numStages]string{"sumcheck", "rs-encode", "merkle", "spmv", "poly-arith"}

// String returns the taxonomy name of the stage.
func (s Stage) String() string {
	if s < 0 || s >= numStages {
		return fmt.Sprintf("stage(%d)", int(s))
	}
	return stageNames[s]
}

// stageCounters is one stage's cumulative counters.
type stageCounters struct {
	calls atomic.Int64
	elems atomic.Int64
	ns    atomic.Int64
}

// Collector accumulates per-stage counters. The zero value is ready to
// use; all methods are safe for concurrent use. One Collector per
// proving run, attached to the run's context with WithCollector, gives
// that run its own truthful stage breakdown regardless of what other
// runs do concurrently.
type Collector struct {
	perStage [numStages]stageCounters
}

// add credits one finished span to the collector.
func (c *Collector) add(stage Stage, elems int, ns int64) {
	sc := &c.perStage[stage]
	sc.calls.Add(1)
	sc.elems.Add(int64(elems))
	sc.ns.Add(ns)
}

// AddStats credits a whole Stats delta to the collector without touching
// the process-wide aggregate. Batched proving uses it to hand each batch
// member its share of work that ran once under a shared plan collector:
// those spans already credited the aggregate when they ran, so routing
// the shares through the normal span path would double-count them.
func (c *Collector) AddStats(s Stats) {
	add := func(st Stage, ss StageStats) {
		sc := &c.perStage[st]
		sc.calls.Add(ss.Calls)
		sc.elems.Add(ss.Elems)
		sc.ns.Add(int64(ss.Wall))
	}
	add(StageSumcheck, s.Sumcheck)
	add(StageEncode, s.Encode)
	add(StageMerkle, s.Merkle)
	add(StageSpMV, s.SpMV)
	add(StagePoly, s.Poly)
}

// Snapshot reads the collector's current cumulative counters.
func (c *Collector) Snapshot() Stats {
	read := func(st Stage) StageStats {
		sc := &c.perStage[st]
		return StageStats{
			Calls: sc.calls.Load(),
			Elems: sc.elems.Load(),
			Wall:  time.Duration(sc.ns.Load()),
		}
	}
	return Stats{
		Sumcheck: read(StageSumcheck),
		Encode:   read(StageEncode),
		Merkle:   read(StageMerkle),
		SpMV:     read(StageSpMV),
		Poly:     read(StagePoly),
	}
}

// global is the process-wide aggregate sink: every span is credited
// here in addition to the run's own collector (if any).
var global Collector

// collectorKey carries a *Collector in a context.
type collectorKey struct{}

// WithCollector returns a context that attributes all kernel spans begun
// under it (via BeginCtx or the ...Ctx kernels) to c, in addition to the
// process-wide aggregate.
func WithCollector(ctx context.Context, c *Collector) context.Context {
	return context.WithValue(ctx, collectorKey{}, c)
}

// FromContext returns the collector attached to ctx, or nil.
func FromContext(ctx context.Context) *Collector {
	if ctx == nil {
		return nil
	}
	c, _ := ctx.Value(collectorKey{}).(*Collector)
	return c
}

// Span is an in-flight timing measurement begun with Begin or BeginCtx.
type Span struct {
	stage Stage
	start time.Time
	c     *Collector // per-run collector, nil when unattributed
}

// Begin starts timing one kernel invocation for the given stage,
// credited to the aggregate sink only.
func Begin(stage Stage) Span {
	return Span{stage: stage, start: time.Now()}
}

// BeginCtx starts timing one kernel invocation, credited to the
// aggregate sink and to the per-run collector carried by ctx (if any).
func BeginCtx(ctx context.Context, stage Stage) Span {
	return Span{stage: stage, start: time.Now(), c: FromContext(ctx)}
}

// End finishes the span, crediting the stage with one call, the given
// number of processed elements, and the elapsed wall time.
func (sp Span) End(elems int) {
	ns := int64(time.Since(sp.start))
	global.add(sp.stage, elems, ns)
	if sp.c != nil {
		sp.c.add(sp.stage, elems, ns)
	}
}

// StageStats is a snapshot of one stage's cumulative counters.
type StageStats struct {
	// Calls is the number of kernel invocations.
	Calls int64
	// Elems is the total number of elements processed.
	Elems int64
	// Wall is the cumulative wall time spent inside the kernel.
	Wall time.Duration
}

// Sub returns the counter difference s − o.
func (s StageStats) Sub(o StageStats) StageStats {
	return StageStats{Calls: s.Calls - o.Calls, Elems: s.Elems - o.Elems, Wall: s.Wall - o.Wall}
}

// Add returns the counter sum s + o.
func (s StageStats) Add(o StageStats) StageStats {
	return StageStats{Calls: s.Calls + o.Calls, Elems: s.Elems + o.Elems, Wall: s.Wall + o.Wall}
}

// Stats is a snapshot of every stage's counters.
type Stats struct {
	Sumcheck StageStats
	Encode   StageStats
	Merkle   StageStats
	SpMV     StageStats
	Poly     StageStats
}

// Snapshot reads the current cumulative process-wide counters (the
// aggregate sink).
func Snapshot() Stats {
	return global.Snapshot()
}

// Sub returns the per-stage difference s − o, used to attribute counters
// to one proving run bracketed by two snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Sumcheck: s.Sumcheck.Sub(o.Sumcheck),
		Encode:   s.Encode.Sub(o.Encode),
		Merkle:   s.Merkle.Sub(o.Merkle),
		SpMV:     s.SpMV.Sub(o.SpMV),
		Poly:     s.Poly.Sub(o.Poly),
	}
}

// Add returns the per-stage sum s + o, used to combine per-run
// collectors when checking them against the aggregate sink.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Sumcheck: s.Sumcheck.Add(o.Sumcheck),
		Encode:   s.Encode.Add(o.Encode),
		Merkle:   s.Merkle.Add(o.Merkle),
		SpMV:     s.SpMV.Add(o.SpMV),
		Poly:     s.Poly.Add(o.Poly),
	}
}

// shareOf returns share i of total split k ways so the k shares sum to
// total exactly: an even floor division with the remainder spread one
// unit at a time over the lowest-indexed shares.
func shareOf(total int64, k, i int) int64 {
	q, r := total/int64(k), total%int64(k)
	if int64(i) < r {
		q++
	}
	return q
}

// Split partitions s into k shares that sum back to s exactly. Batched
// proving uses it to attribute shared-plan work proportionally: members
// of a batch are structurally identical, so the proportional share of
// once-per-batch work is an even split, with counter remainders going to
// the lowest-indexed members so no unit is lost or invented.
func (s Stats) Split(k int) []Stats {
	if k <= 0 {
		return nil
	}
	out := make([]Stats, k)
	split := func(get func(*Stats) *StageStats, total StageStats) {
		for i := range out {
			ss := get(&out[i])
			ss.Calls = shareOf(total.Calls, k, i)
			ss.Elems = shareOf(total.Elems, k, i)
			ss.Wall = time.Duration(shareOf(int64(total.Wall), k, i))
		}
	}
	split(func(s *Stats) *StageStats { return &s.Sumcheck }, s.Sumcheck)
	split(func(s *Stats) *StageStats { return &s.Encode }, s.Encode)
	split(func(s *Stats) *StageStats { return &s.Merkle }, s.Merkle)
	split(func(s *Stats) *StageStats { return &s.SpMV }, s.SpMV)
	split(func(s *Stats) *StageStats { return &s.Poly }, s.Poly)
	return out
}

// Named returns the stages keyed by their taxonomy names, for JSON
// emission and generic reporting.
func (s Stats) Named() map[string]StageStats {
	return map[string]StageStats{
		StageSumcheck.String(): s.Sumcheck,
		StageEncode.String():   s.Encode,
		StageMerkle.String():   s.Merkle,
		StageSpMV.String():     s.SpMV,
		StagePoly.String():     s.Poly,
	}
}

// String renders the snapshot as an aligned table (one row per stage).
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %16s %14s\n", "stage", "calls", "elems", "wall")
	row := func(st Stage, ss StageStats) {
		fmt.Fprintf(&b, "%-10s %12d %16d %14s\n", st, ss.Calls, ss.Elems, ss.Wall)
	}
	row(StageSumcheck, s.Sumcheck)
	row(StageEncode, s.Encode)
	row(StageMerkle, s.Merkle)
	row(StageSpMV, s.SpMV)
	row(StagePoly, s.Poly)
	return b.String()
}
