// Per-stage execution counters for the kernel layer.
//
// Every kernel entry point records wall time, elements processed, and
// call counts against one of the five task-taxonomy stages. Counters are
// cumulative atomics: concurrent provers add to the same counters, and
// callers take before/after snapshots (Snapshot + Stats.Sub) to attribute
// work to one proving run. Instrumentation is always on — a span is two
// monotonic-clock reads and three atomic adds, far below the cost of any
// kernel invocation it wraps.
//
// Note on concurrency: kernels that fan out across a worker pool time the
// whole fan-out from the coordinating goroutine, so Wall is wall-clock
// time, not CPU time summed over workers.
package kernel

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Stage identifies one of the five task-taxonomy kernels (paper §V-A).
// The names match internal/tasks' task kinds.
type Stage int

const (
	// StageSumcheck is the sumcheck dynamic-programming kernel: DP-array
	// folds and round-polynomial evaluations (paper Listing 1).
	StageSumcheck Stage = iota
	// StageEncode is the Reed-Solomon encode kernel (zero-extend + NTT).
	StageEncode
	// StageMerkle is the Merkle hashing kernel: column leaf packing and
	// 2-to-1 level compression.
	StageMerkle
	// StageSpMV is the sparse matrix-vector product kernel.
	StageSpMV
	// StagePoly is the MLE / polynomial arithmetic kernel: eq-table
	// expansion and row combinations.
	StagePoly

	numStages
)

var stageNames = [numStages]string{"sumcheck", "rs-encode", "merkle", "spmv", "poly-arith"}

// String returns the taxonomy name of the stage.
func (s Stage) String() string {
	if s < 0 || s >= numStages {
		return fmt.Sprintf("stage(%d)", int(s))
	}
	return stageNames[s]
}

// stageCounters is one stage's cumulative counters.
type stageCounters struct {
	calls atomic.Int64
	elems atomic.Int64
	ns    atomic.Int64
}

var perStage [numStages]stageCounters

// Span is an in-flight timing measurement begun with Begin.
type Span struct {
	stage Stage
	start time.Time
}

// Begin starts timing one kernel invocation for the given stage.
func Begin(stage Stage) Span {
	return Span{stage: stage, start: time.Now()}
}

// End finishes the span, crediting the stage with one call, the given
// number of processed elements, and the elapsed wall time.
func (sp Span) End(elems int) {
	c := &perStage[sp.stage]
	c.calls.Add(1)
	c.elems.Add(int64(elems))
	c.ns.Add(int64(time.Since(sp.start)))
}

// StageStats is a snapshot of one stage's cumulative counters.
type StageStats struct {
	// Calls is the number of kernel invocations.
	Calls int64
	// Elems is the total number of elements processed.
	Elems int64
	// Wall is the cumulative wall time spent inside the kernel.
	Wall time.Duration
}

// Sub returns the counter difference s − o.
func (s StageStats) Sub(o StageStats) StageStats {
	return StageStats{Calls: s.Calls - o.Calls, Elems: s.Elems - o.Elems, Wall: s.Wall - o.Wall}
}

// Stats is a snapshot of every stage's counters.
type Stats struct {
	Sumcheck StageStats
	Encode   StageStats
	Merkle   StageStats
	SpMV     StageStats
	Poly     StageStats
}

// Snapshot reads the current cumulative counters for all stages.
func Snapshot() Stats {
	read := func(st Stage) StageStats {
		c := &perStage[st]
		return StageStats{
			Calls: c.calls.Load(),
			Elems: c.elems.Load(),
			Wall:  time.Duration(c.ns.Load()),
		}
	}
	return Stats{
		Sumcheck: read(StageSumcheck),
		Encode:   read(StageEncode),
		Merkle:   read(StageMerkle),
		SpMV:     read(StageSpMV),
		Poly:     read(StagePoly),
	}
}

// Sub returns the per-stage difference s − o, used to attribute counters
// to one proving run bracketed by two snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Sumcheck: s.Sumcheck.Sub(o.Sumcheck),
		Encode:   s.Encode.Sub(o.Encode),
		Merkle:   s.Merkle.Sub(o.Merkle),
		SpMV:     s.SpMV.Sub(o.SpMV),
		Poly:     s.Poly.Sub(o.Poly),
	}
}

// Named returns the stages keyed by their taxonomy names, for JSON
// emission and generic reporting.
func (s Stats) Named() map[string]StageStats {
	return map[string]StageStats{
		StageSumcheck.String(): s.Sumcheck,
		StageEncode.String():   s.Encode,
		StageMerkle.String():   s.Merkle,
		StageSpMV.String():     s.SpMV,
		StagePoly.String():     s.Poly,
	}
}

// String renders the snapshot as an aligned table (one row per stage).
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %16s %14s\n", "stage", "calls", "elems", "wall")
	row := func(st Stage, ss StageStats) {
		fmt.Fprintf(&b, "%-10s %12d %16d %14s\n", st, ss.Calls, ss.Elems, ss.Wall)
	}
	row(StageSumcheck, s.Sumcheck)
	row(StageEncode, s.Encode)
	row(StageMerkle, s.Merkle)
	row(StageSpMV, s.SpMV)
	row(StagePoly, s.Poly)
	return b.String()
}
