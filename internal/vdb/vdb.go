// Package vdb is a small verifiable database engine — the substrate of
// the paper's flagship use case (§I, §VIII-A: "real-time verifiable
// databases"). It keeps an in-memory account table, accepts transfer
// transactions, and commits them in batches: each commit produces a
// Spartan+Orion proof that the batch was applied correctly (solvency,
// range, conservation, and the audit accumulator), in the style of
// Litmus [84]. Clients verify batch proofs without seeing individual
// transactions.
package vdb

import (
	"errors"
	"fmt"

	"nocap/internal/circuits"
	"nocap/internal/field"
	"nocap/internal/spartan"
)

// DB is a verifiable account database. Not safe for concurrent use.
type DB struct {
	params   spartan.Params
	balances []uint64
	pending  []circuits.Transfer
	// batchStart holds the balances at the start of the pending batch.
	batchStart []uint64
	seq        int
}

// maxBalance mirrors the circuit's 32-bit range checks.
const maxBalance = 1<<32 - 1

// New creates a database with the given initial balances.
func New(params spartan.Params, initial []uint64) (*DB, error) {
	if len(initial) < 2 {
		return nil, errors.New("vdb: need at least two accounts")
	}
	for i, b := range initial {
		if b > maxBalance {
			return nil, fmt.Errorf("vdb: account %d balance out of range", i)
		}
	}
	return &DB{
		params:     params,
		balances:   append([]uint64(nil), initial...),
		batchStart: append([]uint64(nil), initial...),
	}, nil
}

// Balance returns an account's current (post-pending) balance.
func (db *DB) Balance(account int) (uint64, error) {
	if account < 0 || account >= len(db.balances) {
		return 0, fmt.Errorf("vdb: no account %d", account)
	}
	return db.balances[account], nil
}

// NumAccounts returns the table size.
func (db *DB) NumAccounts() int { return len(db.balances) }

// Pending returns the number of uncommitted transactions.
func (db *DB) Pending() int { return len(db.pending) }

// Submit queues a transfer, validating it against the current state
// exactly as the circuit will.
func (db *DB) Submit(t circuits.Transfer) error {
	n := len(db.balances)
	if t.From < 0 || t.From >= n || t.To < 0 || t.To >= n || t.From == t.To {
		return fmt.Errorf("vdb: invalid accounts %d→%d", t.From, t.To)
	}
	if t.Amount > db.balances[t.From] {
		return fmt.Errorf("vdb: account %d has %d, cannot send %d",
			t.From, db.balances[t.From], t.Amount)
	}
	if db.balances[t.To]+t.Amount > maxBalance {
		return fmt.Errorf("vdb: transfer overflows account %d", t.To)
	}
	db.balances[t.From] -= t.Amount
	db.balances[t.To] += t.Amount
	db.pending = append(db.pending, t)
	return nil
}

// BatchProof is a committed batch with its correctness proof. Verifiers
// need only the public fields.
type BatchProof struct {
	// Seq numbers batches from 0.
	Seq int
	// NumTxns and NumAccounts fix the circuit shape.
	NumTxns, NumAccounts int
	// IO is the statement: initial balances ‖ final balances ‖ audit
	// accumulator.
	IO []field.Element
	// Proof is the Spartan+Orion proof.
	Proof *spartan.Proof
}

// FinalBalances extracts the post-batch balances from the statement.
func (bp *BatchProof) FinalBalances() []uint64 {
	out := make([]uint64, bp.NumAccounts)
	for i := range out {
		out[i] = bp.IO[bp.NumAccounts+i].Uint64()
	}
	return out
}

// Accumulator returns the batch's audit accumulator.
func (bp *BatchProof) Accumulator() field.Element { return bp.IO[2*bp.NumAccounts] }

// Commit proves the pending batch and starts a new one.
func (db *DB) Commit() (*BatchProof, error) {
	if len(db.pending) == 0 {
		return nil, errors.New("vdb: nothing to commit")
	}
	bm := circuits.LitmusCircuit(db.batchStart, db.pending)
	params := db.params
	if half := bm.Inst.NumVars() / 2; params.PCS.Rows > half {
		params.PCS.Rows = half
	}
	proof, err := spartan.Prove(params, bm.Inst, bm.IO, bm.Witness)
	if err != nil {
		return nil, fmt.Errorf("vdb: prove batch: %w", err)
	}
	bp := &BatchProof{
		Seq:         db.seq,
		NumTxns:     len(db.pending),
		NumAccounts: len(db.balances),
		IO:          bm.IO,
		Proof:       proof,
	}
	db.seq++
	db.pending = nil
	db.batchStart = append([]uint64(nil), db.balances...)
	return bp, nil
}

// VerifyBatch checks a batch proof. The verifier rebuilds the circuit
// structure from the public shape (synthesis is data-oblivious, so any
// solvent placeholder batch yields identical matrices) and additionally
// checks that the batch's starting balances chain from prev (nil for
// the first batch, whose starting state is genesis).
func VerifyBatch(params spartan.Params, genesis []uint64, prev *BatchProof, bp *BatchProof) error {
	if bp.NumTxns < 1 || bp.NumAccounts < 2 || len(bp.IO) != 2*bp.NumAccounts+1 {
		return errors.New("vdb: malformed batch statement")
	}
	// Chain check: this batch's public initial balances must equal the
	// previous batch's final balances (or genesis for batch 0).
	start := genesis
	if prev != nil {
		if prev.Seq+1 != bp.Seq || prev.NumAccounts != bp.NumAccounts {
			return errors.New("vdb: batch does not chain from previous")
		}
		start = prev.FinalBalances()
	} else if bp.Seq != 0 {
		return errors.New("vdb: missing previous batch")
	}
	if len(start) != bp.NumAccounts {
		return errors.New("vdb: account-table size mismatch")
	}
	for i, b := range start {
		if bp.IO[i] != field.New(b) {
			return fmt.Errorf("vdb: batch does not chain: account %d starts at %v, prior state says %d",
				i, bp.IO[i], b)
		}
	}

	// Rebuild the circuit shape with a placeholder batch of the same
	// geometry (account 0 → 1, amount 0 is always solvent).
	placeholder := make([]circuits.Transfer, bp.NumTxns)
	for i := range placeholder {
		placeholder[i] = circuits.Transfer{From: 0, To: 1, Amount: 0}
	}
	shape := circuits.LitmusCircuit(start, placeholder)
	if half := shape.Inst.NumVars() / 2; params.PCS.Rows > half {
		params.PCS.Rows = half
	}
	if err := spartan.Verify(params, shape.Inst, bp.IO, bp.Proof); err != nil {
		return fmt.Errorf("vdb: batch %d: %w", bp.Seq, err)
	}
	return nil
}
