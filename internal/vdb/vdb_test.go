package vdb

import (
	"testing"

	"nocap/internal/circuits"
	"nocap/internal/field"
	"nocap/internal/spartan"
)

func newDB(t *testing.T) (*DB, []uint64) {
	t.Helper()
	genesis := []uint64{1000, 500, 0, 250}
	db, err := New(spartan.TestParams(), genesis)
	if err != nil {
		t.Fatal(err)
	}
	return db, genesis
}

func TestSubmitAndBalances(t *testing.T) {
	db, _ := newDB(t)
	if err := db.Submit(circuits.Transfer{From: 0, To: 2, Amount: 300}); err != nil {
		t.Fatal(err)
	}
	if b, _ := db.Balance(0); b != 700 {
		t.Fatalf("balance 0 = %d", b)
	}
	if b, _ := db.Balance(2); b != 300 {
		t.Fatalf("balance 2 = %d", b)
	}
	if db.Pending() != 1 {
		t.Fatal("pending count wrong")
	}
}

func TestSubmitRejectsInvalid(t *testing.T) {
	db, _ := newDB(t)
	cases := []circuits.Transfer{
		{From: 0, To: 0, Amount: 1},    // self transfer
		{From: -1, To: 1, Amount: 1},   // bad account
		{From: 0, To: 9, Amount: 1},    // bad account
		{From: 2, To: 0, Amount: 1},    // insolvent (account 2 empty)
		{From: 0, To: 1, Amount: 1001}, // insolvent
	}
	for i, c := range cases {
		if err := db.Submit(c); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	if db.Pending() != 0 {
		t.Fatal("rejected transfers queued")
	}
}

func TestCommitAndVerify(t *testing.T) {
	db, genesis := newDB(t)
	for _, tr := range []circuits.Transfer{
		{From: 0, To: 2, Amount: 100},
		{From: 1, To: 3, Amount: 50},
		{From: 2, To: 1, Amount: 25},
	} {
		if err := db.Submit(tr); err != nil {
			t.Fatal(err)
		}
	}
	bp, err := db.Commit()
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	if err := VerifyBatch(spartan.TestParams(), genesis, nil, bp); err != nil {
		t.Fatalf("verify: %v", err)
	}
	want := []uint64{900, 475, 75, 300}
	got := bp.FinalBalances()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("final balance %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBatchChain(t *testing.T) {
	db, genesis := newDB(t)
	params := spartan.TestParams()

	if err := db.Submit(circuits.Transfer{From: 0, To: 1, Amount: 10}); err != nil {
		t.Fatal(err)
	}
	b0, err := db.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Submit(circuits.Transfer{From: 1, To: 3, Amount: 200}); err != nil {
		t.Fatal(err)
	}
	b1, err := db.Commit()
	if err != nil {
		t.Fatal(err)
	}

	if err := VerifyBatch(params, genesis, nil, b0); err != nil {
		t.Fatalf("batch 0: %v", err)
	}
	if err := VerifyBatch(params, genesis, b0, b1); err != nil {
		t.Fatalf("batch 1: %v", err)
	}
	// Out-of-order / unchained verification must fail.
	if VerifyBatch(params, genesis, nil, b1) == nil {
		t.Fatal("batch 1 verified without its predecessor")
	}
	if VerifyBatch(params, genesis, b1, b0) == nil {
		t.Fatal("reversed chain accepted")
	}
}

func TestTamperedBatchRejected(t *testing.T) {
	db, genesis := newDB(t)
	if err := db.Submit(circuits.Transfer{From: 0, To: 1, Amount: 10}); err != nil {
		t.Fatal(err)
	}
	bp, err := db.Commit()
	if err != nil {
		t.Fatal(err)
	}
	// Inflate a final balance in the statement.
	bp.IO[bp.NumAccounts] = field.Add(bp.IO[bp.NumAccounts], field.One)
	if VerifyBatch(spartan.TestParams(), genesis, nil, bp) == nil {
		t.Fatal("tampered final balance accepted")
	}
}

func TestCommitEmptyFails(t *testing.T) {
	db, _ := newDB(t)
	if _, err := db.Commit(); err == nil {
		t.Fatal("empty commit accepted")
	}
}

func TestAccumulatorMatchesReference(t *testing.T) {
	db, _ := newDB(t)
	txns := []circuits.Transfer{
		{From: 0, To: 1, Amount: 7},
		{From: 3, To: 2, Amount: 9},
	}
	for _, tr := range txns {
		if err := db.Submit(tr); err != nil {
			t.Fatal(err)
		}
	}
	bp, err := db.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if bp.Accumulator() != circuits.LitmusAccumulator(txns) {
		t.Fatal("audit accumulator mismatch")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(spartan.TestParams(), []uint64{1}); err == nil {
		t.Fatal("single account accepted")
	}
	if _, err := New(spartan.TestParams(), []uint64{1, 1 << 40}); err == nil {
		t.Fatal("out-of-range balance accepted")
	}
}
