package sumcheck

import (
	"context"
	"fmt"

	"nocap/internal/faultinject"
	"nocap/internal/field"
	"nocap/internal/poly"
	"nocap/internal/transcript"
)

// fiStreamedRound is the registered fault-injection point at the
// streamed prover's round boundary (chaos tests arm it by this name).
var fiStreamedRound = faultinject.Register("sumcheck.streamed.round")

// Source produces the original (round-0) value of oracle array k at
// hypercube index idx. ProveStreamed re-reads sources instead of storing
// folded DP arrays.
type Source func(k int, idx int) field.Element

// ProveStreamed is the recomputation variant of the sumcheck prover
// (paper §V-A): instead of materializing and folding the DP arrays
// (which at NoCap's scale means streaming them from HBM every round), it
// recomputes every folded value from the sources on demand using the
// challenge prefix — "we use the values of rx[1], rx[2], …, rx[i−1] to
// fast-forward to the needed values of A for iteration i directly,
// without requiring additional memory accesses". The folded value at
// index b after i rounds is Σ_c eq(rx[:i], c)·orig[c·2^(L−i) + b].
//
// The recomputation phase ends once the folded arrays fit the on-chip
// scratchpad (materializeBelow elements, the role of NoCap's 8 MB
// register file, §V-A: "This recomputation uses many intermediates,
// which is why NoCap requires an 8 MB scratchpad"): from there the
// arrays are materialized once and folded in place like Prove.
//
// It produces a transcript (and therefore a proof) byte-identical to
// Prove on the same inputs: bounded extra memory, at the cost of
// re-reading sources in the early rounds — compute traded for memory,
// exactly the accelerator's trade.
func ProveStreamed(tr *transcript.Transcript, label string, claim field.Element,
	numArrays, numVars int, src Source, degree int, combine Combiner,
	materializeBelow int) (*Proof, []field.Element, []field.Element) {

	proof, challenges, finals, err := ProveStreamedCtx(context.Background(), tr, label, claim,
		numArrays, numVars, src, degree, combine, materializeBelow)
	if err != nil {
		// Only an injected chaos fault can reach here under a background
		// context; escape as a panic for the caller's zkerr boundary.
		panic(err)
	}
	return proof, challenges, finals
}

// ProveStreamedCtx is ProveStreamed with cooperative cancellation: the
// context is checked between rounds and every ctxCheckInterval points of
// the per-round evaluation loop (the recomputation rounds are the most
// expensive part of the §V-A prover, so intra-round checkpoints matter),
// and the "sumcheck.streamed.round" fault-injection point fires once
// per round.
func ProveStreamedCtx(ctx context.Context, tr *transcript.Transcript, label string, claim field.Element,
	numArrays, numVars int, src Source, degree int, combine Combiner,
	materializeBelow int) (*Proof, []field.Element, []field.Element, error) {

	if numArrays < 1 {
		panic("sumcheck: no oracle sources")
	}
	if numVars < 1 {
		panic("sumcheck: zero-variable sum")
	}
	tr.AppendUint64("sumcheck/"+label+"/vars", uint64(numVars))
	tr.AppendElems("sumcheck/"+label+"/claim", []field.Element{claim})

	proof := &Proof{RoundPolys: make([][]field.Element, numVars)}
	challenges := make([]field.Element, 0, numVars)

	// folded(k, idx, size) recomputes the current DP value: idx indexes
	// the size-element folded array; the eq weights of the challenge
	// prefix select the original entries.
	fullSize := 1 << uint(numVars)
	var prefixEq []field.Element // eq table over challenges so far
	folded := func(k, idx, size int) field.Element {
		if len(challenges) == 0 {
			return src(k, idx)
		}
		var acc field.Element
		for c, w := range prefixEq {
			acc = field.Add(acc, field.Mul(w, src(k, c*size+idx)))
		}
		return acc
	}

	// materialize builds the current folded arrays in scratchpad memory.
	materialize := func(size int) []*poly.MLE {
		out := make([]*poly.MLE, numArrays)
		for k := 0; k < numArrays; k++ {
			evals := make([]field.Element, size)
			for b := 0; b < size; b++ {
				evals[b] = folded(k, b, size)
			}
			out[k] = poly.NewMLE(evals)
		}
		return out
	}

	vals := make([]field.Element, numArrays)
	deltas := make([]field.Element, numArrays)
	var scratch []*poly.MLE // non-nil once the arrays fit the scratchpad
	size := fullSize
	for round := 0; round < numVars; round++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, nil, err
		}
		if err := faultinject.Check(fiStreamedRound); err != nil {
			return nil, nil, nil, err
		}
		if scratch == nil && size <= materializeBelow {
			scratch = materialize(size)
		}
		half := size / 2
		evals := make([]field.Element, degree+1)
		for b := 0; b < half; b++ {
			if b&(ctxCheckInterval-1) == 0 && b > 0 {
				if err := ctx.Err(); err != nil {
					return nil, nil, nil, err
				}
			}
			for k := 0; k < numArrays; k++ {
				var lo, hi field.Element
				if scratch != nil {
					lo, hi = scratch[k].At(b), scratch[k].At(b+half)
				} else {
					lo, hi = folded(k, b, size), folded(k, b+half, size)
				}
				vals[k] = lo
				deltas[k] = field.Sub(hi, lo)
			}
			evals[0] = field.Add(evals[0], combine(vals))
			for t := 1; t <= degree; t++ {
				for k := range vals {
					vals[k] = field.Add(vals[k], deltas[k])
				}
				evals[t] = field.Add(evals[t], combine(vals))
			}
		}
		proof.RoundPolys[round] = evals
		tr.AppendElems(fmt.Sprintf("sumcheck/%s/round%d", label, round), evals)
		r := tr.Challenge(fmt.Sprintf("sumcheck/%s/r%d", label, round))
		challenges = append(challenges, r)
		if scratch != nil {
			for _, m := range scratch {
				m.FoldCtx(ctx, r)
			}
		} else {
			prefixEq = poly.EqTableCtx(ctx, challenges)
		}
		size = half
	}

	finals := make([]field.Element, numArrays)
	for k := range finals {
		if scratch != nil {
			finals[k] = scratch[k].At(0)
		} else {
			finals[k] = folded(k, 0, 1)
		}
	}
	return proof, challenges, finals, nil
}
