package sumcheck

import (
	"math/rand"
	"runtime"
	"testing"

	"nocap/internal/field"
	"nocap/internal/poly"
	"nocap/internal/transcript"
)

func randMLE(logN int, seed int64) *poly.MLE {
	rng := rand.New(rand.NewSource(seed))
	v := make([]field.Element, 1<<logN)
	for i := range v {
		v[i] = field.New(rng.Uint64())
	}
	return poly.NewMLE(v)
}

func product(vals []field.Element) field.Element {
	acc := field.One
	for _, v := range vals {
		acc = field.Mul(acc, v)
	}
	return acc
}

// runProtocol executes prove+verify and the final oracle check.
func runProtocol(t *testing.T, mles []*poly.MLE, degree int, combine Combiner) {
	t.Helper()
	claim := SumOverHypercube(mles, combine)
	originals := make([]*poly.MLE, len(mles))
	for i, m := range mles {
		originals[i] = m.Clone()
	}
	trP := transcript.New("test")
	proof, rP, finals := Prove(trP, "sc", claim, mles, degree, combine)

	trV := transcript.New("test")
	rV, finalClaim, err := Verify(trV, "sc", claim, originals[0].NumVars(), degree, proof)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	for i := range rP {
		if rP[i] != rV[i] {
			t.Fatal("prover/verifier challenge divergence")
		}
	}
	// Final oracle check: combine(finals) must equal the reduced claim,
	// and finals must be the true MLE evaluations at r.
	if combine(finals) != finalClaim {
		t.Fatal("final combined value != reduced claim")
	}
	for i, m := range originals {
		if m.Evaluate(rV) != finals[i] {
			t.Fatalf("final value %d is not the oracle evaluation", i)
		}
	}
}

func TestSingleMLEDegree1(t *testing.T) {
	for _, logN := range []int{1, 3, 6} {
		runProtocol(t, []*poly.MLE{randMLE(logN, int64(logN))}, 1, product)
	}
}

func TestProductOfTwoDegree2(t *testing.T) {
	runProtocol(t, []*poly.MLE{randMLE(5, 1), randMLE(5, 2)}, 2, product)
}

func TestProductOfThreeDegree3(t *testing.T) {
	runProtocol(t, []*poly.MLE{randMLE(4, 3), randMLE(4, 4), randMLE(4, 5)}, 3, product)
}

func TestSpartanStyleCombiner(t *testing.T) {
	// eq·(a·b − c): the outer Spartan combiner.
	mles := []*poly.MLE{randMLE(5, 6), randMLE(5, 7), randMLE(5, 8), randMLE(5, 9)}
	combine := func(v []field.Element) field.Element {
		return field.Mul(v[0], field.Sub(field.Mul(v[1], v[2]), v[3]))
	}
	runProtocol(t, mles, 3, combine)
}

func TestParallelPathMatchesSerial(t *testing.T) {
	// Size above parallelThreshold exercises the worker fan-out; the claim
	// and proof must still verify.
	mles := []*poly.MLE{randMLE(15, 10), randMLE(15, 11)}
	runProtocol(t, mles, 2, product)
}

func TestRejectsWrongClaim(t *testing.T) {
	m := randMLE(4, 12)
	claim := SumOverHypercube([]*poly.MLE{m}, product)
	trP := transcript.New("test")
	proof, _, _ := Prove(trP, "sc", claim, []*poly.MLE{m.Clone()}, 1, product)
	trV := transcript.New("test")
	_, _, err := Verify(trV, "sc", field.Add(claim, field.One), 4, 1, proof)
	if err == nil {
		t.Fatal("wrong claim accepted")
	}
}

func TestRejectsTamperedRound(t *testing.T) {
	m := randMLE(5, 13)
	claim := SumOverHypercube([]*poly.MLE{m}, product)
	proof, _, _ := Prove(transcript.New("test"), "sc", claim, []*poly.MLE{m.Clone()}, 1, product)

	for round := 0; round < 5; round++ {
		bad := &Proof{RoundPolys: make([][]field.Element, 5)}
		for i := range bad.RoundPolys {
			bad.RoundPolys[i] = append([]field.Element(nil), proof.RoundPolys[i]...)
		}
		bad.RoundPolys[round][0] = field.Add(bad.RoundPolys[round][0], field.One)
		_, _, err := Verify(transcript.New("test"), "sc", claim, 5, 1, bad)
		// Tampering round i either breaks the round-i sum check directly or
		// changes the reduced claim; a first-round tamper must error.
		if round == 0 && err == nil {
			t.Fatal("tampered first round accepted")
		}
		if err == nil {
			// Later-round tampering shifts the final claim; the verifier's
			// output must then differ from the honest final claim.
			_, honest, _ := Verify(transcript.New("test"), "sc", claim, 5, 1, proof)
			_, tampered, err2 := Verify(transcript.New("test"), "sc", claim, 5, 1, bad)
			if err2 == nil && honest == tampered {
				t.Fatalf("round %d tamper invisible to verifier", round)
			}
		}
	}
}

func TestRejectsMalformedShape(t *testing.T) {
	m := randMLE(3, 14)
	claim := SumOverHypercube([]*poly.MLE{m}, product)
	proof, _, _ := Prove(transcript.New("test"), "sc", claim, []*poly.MLE{m.Clone()}, 1, product)
	if _, _, err := Verify(transcript.New("test"), "sc", claim, 4, 1, proof); err == nil {
		t.Fatal("wrong round count accepted")
	}
	bad := &Proof{RoundPolys: [][]field.Element{{field.One}, {field.One}, {field.One}}}
	if _, _, err := Verify(transcript.New("test"), "sc", claim, 3, 1, bad); err == nil {
		t.Fatal("short round poly accepted")
	}
}

func TestZeroClaimZeroPolynomial(t *testing.T) {
	// All-zero oracle: claim 0, all round polys zero, must verify.
	zero := poly.NewMLE(make([]field.Element, 16))
	trP := transcript.New("test")
	proof, _, finals := Prove(trP, "sc", field.Zero, []*poly.MLE{zero}, 1, product)
	if finals[0] != field.Zero {
		t.Fatal("zero oracle nonzero final")
	}
	_, fc, err := Verify(transcript.New("test"), "sc", field.Zero, 4, 1, proof)
	if err != nil || fc != field.Zero {
		t.Fatalf("zero proof rejected: %v", err)
	}
}

func TestProofSize(t *testing.T) {
	m := randMLE(6, 15)
	claim := SumOverHypercube([]*poly.MLE{m}, product)
	proof, _, _ := Prove(transcript.New("test"), "sc", claim, []*poly.MLE{m.Clone()}, 1, product)
	if proof.SizeBytes() != 6*2*8 {
		t.Fatalf("SizeBytes = %d", proof.SizeBytes())
	}
}

func TestPanicsOnBadInputs(t *testing.T) {
	tr := transcript.New("t")
	for name, fn := range map[string]func(){
		"no oracles": func() { Prove(tr, "x", field.Zero, nil, 1, product) },
		"zero vars": func() {
			Prove(tr, "x", field.Zero, []*poly.MLE{poly.NewMLE(make([]field.Element, 1))}, 1, product)
		},
		"dim mismatch": func() {
			Prove(tr, "x", field.Zero, []*poly.MLE{randMLE(2, 1), randMLE(3, 2)}, 1, product)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkProveDeg3_16(b *testing.B) {
	mles := []*poly.MLE{randMLE(16, 1), randMLE(16, 2), randMLE(16, 3), randMLE(16, 4)}
	combine := func(v []field.Element) field.Element {
		return field.Mul(v[0], field.Sub(field.Mul(v[1], v[2]), v[3]))
	}
	claim := SumOverHypercube(mles, combine)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clones := make([]*poly.MLE, len(mles))
		for j, m := range mles {
			clones[j] = m.Clone()
		}
		Prove(transcript.New("bench"), "sc", claim, clones, 3, combine)
	}
}

func TestParallelWorkersForced(t *testing.T) {
	// Force the multi-worker round-evaluation path on single-CPU hosts.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	mles := []*poly.MLE{randMLE(15, 21), randMLE(15, 22)}
	runProtocol(t, mles, 2, product)
}
