// Package sumcheck implements the sumcheck protocol, the dominant task of
// Spartan+Orion proof generation (~70% of runtime, paper Fig. 6). The
// prover runs the dynamic-programming algorithm of paper Listing 1,
// generalized to a product-combination of several multilinear arrays with
// per-round degree d: in round i the 2^(L−i+1)-entry DP arrays are folded
// at the verifier challenge, and the round polynomial is produced by
// evaluating the combination at t = 0…d across the hypercube.
//
// The protocol is made non-interactive with the transcript package: round
// polynomials are absorbed and challenges squeezed, exactly the
// result→HASH→rx loop of Listing 1.
package sumcheck

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"nocap/internal/arena"
	"nocap/internal/faultinject"
	"nocap/internal/field"
	"nocap/internal/kernel"
	"nocap/internal/par"
	"nocap/internal/poly"
	"nocap/internal/transcript"
	"nocap/internal/zkerr"
)

// Registered fault-injection points at the round boundary and inside
// the round-evaluation workers (chaos tests arm them by these names).
var (
	fiProveRound  = faultinject.Register("sumcheck.prove.round")
	fiRoundWorker = faultinject.Register("sumcheck.round.worker")
)

// Combiner combines the values of the oracle MLEs at one point into the
// summand. For Spartan's outer sumcheck it is eq·(a·b−c); for the inner,
// m·z.
type Combiner func(vals []field.Element) field.Element

// Proof is the prover's messages: one round polynomial per variable, each
// given by its degree+1 evaluations at t = 0…degree.
type Proof struct {
	// RoundPolys[i][t] = g_i(t).
	RoundPolys [][]field.Element
}

// SizeBytes returns the serialized proof size (8 bytes per element).
func (p *Proof) SizeBytes() int {
	n := 0
	for _, rp := range p.RoundPolys {
		n += 8 * len(rp)
	}
	return n
}

// Scratch is a reusable pool of oracle backing buffers for running many
// structurally identical sumchecks back to back (batched proving,
// DESIGN.md §15): the prover folds its oracles in place, so every run
// needs fresh copies of the batch's precomputed shared DP inputs; a
// Scratch lets those copies reuse one set of allocations across the
// whole batch instead of checking new buffers out per member. Buffers
// are plain allocations, not arena checkouts — a Scratch outlives any
// single run, while arena accounting is run-scoped. Not safe for
// concurrent use: a batch runs its members through it sequentially.
type Scratch struct {
	bufs [][]field.Element
}

// NewScratch returns an empty scratch pool.
func NewScratch() *Scratch { return &Scratch{} }

// Buf returns slot i resized to n elements. Contents are unspecified —
// callers overwrite every entry before reading (use Zeroed for
// accumulators).
func (s *Scratch) Buf(i, n int) []field.Element {
	for len(s.bufs) <= i {
		s.bufs = append(s.bufs, nil)
	}
	if cap(s.bufs[i]) < n {
		s.bufs[i] = make([]field.Element, n)
	}
	return s.bufs[i][:n]
}

// Zeroed returns slot i resized to n elements with every entry cleared.
func (s *Scratch) Zeroed(i, n int) []field.Element {
	b := s.Buf(i, n)
	clear(b)
	return b
}

// parallelThreshold is the per-round size above which the evaluation loop
// fans out across CPUs.
const parallelThreshold = 1 << 14

// ctxCheckInterval is how many hypercube points a round-evaluation
// worker processes between context checks. At ~10ns per point the
// interval costs well under a millisecond, so the check itself stays
// unmeasurable while a cancelled round stops within ~4k points.
const ctxCheckInterval = 1 << 12

// Prove runs the sumcheck prover for Σ_b combine(mles[0][b], …) = claim.
// All MLEs must have the same number of variables L ≥ 1. The MLEs are
// folded in place (clone first to retain them). It returns the proof, the
// challenge point r ∈ F^L, and the final values mles[k](r).
//
// Prove never fails on its own: it is ProveCtx under a background
// context, and the only possible error — an injected fault in a chaos
// test — escapes as a panic for the caller's zkerr boundary to contain.
func Prove(tr *transcript.Transcript, label string, claim field.Element,
	mles []*poly.MLE, degree int, combine Combiner) (*Proof, []field.Element, []field.Element) {

	proof, challenges, finals, err := ProveCtx(context.Background(), tr, label, claim, mles, degree, combine)
	if err != nil {
		panic(err)
	}
	return proof, challenges, finals
}

// ProveCtx is the context-aware sumcheck prover: the context is checked
// between rounds and every ctxCheckInterval points inside the parallel
// round evaluation, and the "sumcheck.prove.round" fault-injection
// point fires once per round. On cancellation the MLEs are left
// partially folded and must be discarded.
func ProveCtx(ctx context.Context, tr *transcript.Transcript, label string, claim field.Element,
	mles []*poly.MLE, degree int, combine Combiner) (*Proof, []field.Element, []field.Element, error) {

	if len(mles) == 0 {
		panic("sumcheck: no oracle polynomials")
	}
	numVars := mles[0].NumVars()
	if numVars == 0 {
		panic("sumcheck: zero-variable sum")
	}
	for _, m := range mles {
		if m.NumVars() != numVars {
			panic("sumcheck: oracle dimension mismatch")
		}
	}
	tr.AppendUint64("sumcheck/"+label+"/vars", uint64(numVars))
	tr.AppendElems("sumcheck/"+label+"/claim", []field.Element{claim})

	proof := &Proof{RoundPolys: make([][]field.Element, numVars)}
	challenges := make([]field.Element, numVars)

	for round := 0; round < numVars; round++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, nil, err
		}
		if err := faultinject.Check(fiProveRound); err != nil {
			return nil, nil, nil, err
		}
		half := mles[0].Len() / 2
		evals, err := roundEvals(ctx, mles, half, degree, combine)
		if err != nil {
			return nil, nil, nil, err
		}
		proof.RoundPolys[round] = evals
		tr.AppendElems(fmt.Sprintf("sumcheck/%s/round%d", label, round), evals)
		r := tr.Challenge(fmt.Sprintf("sumcheck/%s/r%d", label, round))
		challenges[round] = r
		for _, m := range mles {
			m.FoldCtx(ctx, r)
		}
	}
	finals := make([]field.Element, len(mles))
	for k, m := range mles {
		finals[k] = m.At(0)
	}
	return proof, challenges, finals, nil
}

// roundEvals computes [g(0), …, g(degree)] for the current round, where
// g(t) = Σ_{b<half} combine over the arrays evaluated at (t, b): each
// array contributes lo[b] + t·(hi[b]−lo[b]). Workers bail out at the
// next interval boundary once ctx is cancelled; all workers are drained
// before the function returns.
func roundEvals(ctx context.Context, mles []*poly.MLE, half, degree int, combine Combiner) ([]field.Element, error) {
	numWorkers := 1
	if half >= parallelThreshold {
		numWorkers = runtime.GOMAXPROCS(0)
		if numWorkers > 8 {
			numWorkers = 8
		}
	}
	// Per-worker partial sums are arena checkouts assigned up front, so
	// one deferred sweep returns them on every exit path (error, cancel,
	// repanic); evals itself escapes into the proof and stays plain.
	partial := make([][]field.Element, numWorkers)
	var wg sync.WaitGroup
	sp := kernel.BeginCtx(ctx, kernel.StageSumcheck)
	defer func() {
		for _, sums := range partial {
			arena.Put(sums)
		}
		sp.End(half * (degree + 1))
	}()
	defer wg.Wait() // runs before the Put sweep: never recycle a buffer a live worker holds
	var rec par.Collector
	var workerErr error
	var errMu sync.Mutex
	chunk := (half + numWorkers - 1) / numWorkers
	for w := 0; w < numWorkers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > half {
			hi = half
		}
		partial[w] = arena.GetCtx(ctx, degree+1)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer rec.Recover(lo, hi)
			if err := faultinject.Check(fiRoundWorker); err != nil {
				errMu.Lock()
				if workerErr == nil {
					workerErr = err
				}
				errMu.Unlock()
				return
			}
			sums := partial[w]
			vals := arena.GetUninitCtx(ctx, len(mles))
			deltas := arena.GetUninitCtx(ctx, len(mles))
			defer arena.Put(vals)
			defer arena.Put(deltas)
			for b := lo; b < hi; b++ {
				if b&(ctxCheckInterval-1) == 0 && ctx.Err() != nil {
					return // partial sums discarded with the round
				}
				for k, m := range mles {
					ev := m.Evals()
					vals[k] = ev[b]
					deltas[k] = field.Sub(ev[b+half], ev[b])
				}
				sums[0] = field.Add(sums[0], combine(vals))
				for t := 1; t <= degree; t++ {
					for k := range vals {
						vals[k] = field.Add(vals[k], deltas[k])
					}
					sums[t] = field.Add(sums[t], combine(vals))
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	// A worker panic (an internal invariant failure) re-raises here, on
	// the prover's own goroutine, where Prove's recover converts it to a
	// typed error instead of crashing the process.
	rec.Repanic()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if workerErr != nil {
		return nil, workerErr
	}
	evals := make([]field.Element, degree+1)
	for _, sums := range partial {
		for t := range evals {
			evals[t] = field.Add(evals[t], sums[t])
		}
	}
	return evals, nil
}

// ErrRoundSum indicates g_i(0)+g_i(1) ≠ running claim — a soundness
// failure on a structurally valid proof.
var ErrRoundSum = zkerr.Wrap(zkerr.ErrSoundnessCheckFailed,
	"sumcheck: round polynomial inconsistent with claim")

// ErrShape indicates a malformed proof.
var ErrShape = zkerr.Wrap(zkerr.ErrMalformedProof, "sumcheck: malformed proof")

// Verify replays the verifier side: it checks every round polynomial
// against the running claim and returns the challenge point and the final
// reduced claim, which the caller must check against the combined oracle
// values at that point.
func Verify(tr *transcript.Transcript, label string, claim field.Element,
	numVars, degree int, proof *Proof) (challenges []field.Element, finalClaim field.Element, err error) {

	if proof == nil {
		return nil, field.Zero, fmt.Errorf("%w: nil proof", ErrShape)
	}
	if len(proof.RoundPolys) != numVars {
		return nil, field.Zero, fmt.Errorf("%w: %d rounds, want %d", ErrShape, len(proof.RoundPolys), numVars)
	}
	tr.AppendUint64("sumcheck/"+label+"/vars", uint64(numVars))
	tr.AppendElems("sumcheck/"+label+"/claim", []field.Element{claim})

	challenges = make([]field.Element, numVars)
	running := claim
	for round := 0; round < numVars; round++ {
		evals := proof.RoundPolys[round]
		if len(evals) != degree+1 {
			return nil, field.Zero, fmt.Errorf("%w: round %d has %d evals, want %d",
				ErrShape, round, len(evals), degree+1)
		}
		if field.Add(evals[0], evals[1]) != running {
			return nil, field.Zero, fmt.Errorf("%w (round %d)", ErrRoundSum, round)
		}
		tr.AppendElems(fmt.Sprintf("sumcheck/%s/round%d", label, round), evals)
		r := tr.Challenge(fmt.Sprintf("sumcheck/%s/r%d", label, round))
		challenges[round] = r
		running = poly.InterpolateEval(evals, r)
	}
	return challenges, running, nil
}

// SumOverHypercube computes Σ_b combine(values at b) directly — O(2^L),
// used by callers to form initial claims and by tests as the reference.
func SumOverHypercube(mles []*poly.MLE, combine Combiner) field.Element {
	n := mles[0].Len()
	vals := make([]field.Element, len(mles))
	var acc field.Element
	for b := 0; b < n; b++ {
		for k, m := range mles {
			vals[k] = m.At(b)
		}
		acc = field.Add(acc, combine(vals))
	}
	return acc
}
