package sumcheck

import (
	"nocap/internal/field"
	"nocap/internal/wire"
	"nocap/internal/zkerr"
)

// maxRounds bounds decoded proofs (the field's two-adicity bounds any
// instance this library can prove).
const maxRounds = 64

// AppendTo serializes the proof.
func (p *Proof) AppendTo(w *wire.Writer) {
	w.U64(uint64(len(p.RoundPolys)))
	for _, rp := range p.RoundPolys {
		w.Elems(rp)
	}
}

// ReadProof decodes a sumcheck proof from untrusted bytes, bounding the
// round count and charging the round-slice allocation to the reader's
// budget before it happens.
func ReadProof(r *wire.Reader) (*Proof, error) {
	n, err := r.U64()
	if err != nil {
		return nil, err
	}
	if n > maxRounds {
		return nil, zkerr.Malformedf("sumcheck: %d rounds too many", n)
	}
	if uint64(r.Remaining())/8 < n {
		return nil, wire.ErrTruncated
	}
	if err := r.Grant(int64(n) * 24); err != nil {
		return nil, err
	}
	p := &Proof{RoundPolys: make([][]field.Element, n)}
	for i := range p.RoundPolys {
		if p.RoundPolys[i], err = r.Elems(); err != nil {
			return nil, err
		}
	}
	return p, nil
}
