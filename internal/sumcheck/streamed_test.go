package sumcheck

import (
	"testing"

	"nocap/internal/field"
	"nocap/internal/poly"
	"nocap/internal/transcript"
)

// TestStreamedMatchesStored is the key equivalence: the recomputation
// prover must produce a byte-identical transcript (same round polys,
// same challenges, same finals) as the stored-array prover.
func TestStreamedMatchesStored(t *testing.T) {
	for _, tc := range []struct {
		logN, arrays, degree int
	}{
		{3, 1, 1},
		{5, 2, 2},
		{6, 4, 3},
	} {
		mles := make([]*poly.MLE, tc.arrays)
		for k := range mles {
			mles[k] = randMLE(tc.logN, int64(100*tc.logN+k))
		}
		combine := product
		claim := SumOverHypercube(mles, combine)

		clones := make([]*poly.MLE, tc.arrays)
		for k, m := range mles {
			clones[k] = m.Clone()
		}
		pStored, rStored, fStored := Prove(transcript.New("eq"), "sc", claim, clones, tc.degree, combine)

		src := func(k, idx int) field.Element { return mles[k].At(idx) }
		// Materialize threshold 4 exercises both the streaming rounds and
		// the scratchpad phase.
		pStream, rStream, fStream := ProveStreamed(transcript.New("eq"), "sc", claim,
			tc.arrays, tc.logN, src, tc.degree, combine, 4)

		for i := range pStored.RoundPolys {
			for j := range pStored.RoundPolys[i] {
				if pStored.RoundPolys[i][j] != pStream.RoundPolys[i][j] {
					t.Fatalf("logN=%d: round %d eval %d differs", tc.logN, i, j)
				}
			}
		}
		for i := range rStored {
			if rStored[i] != rStream[i] {
				t.Fatalf("challenge %d differs", i)
			}
		}
		for k := range fStored {
			if fStored[k] != fStream[k] {
				t.Fatalf("final %d differs", k)
			}
		}
	}
}

func TestStreamedVerifies(t *testing.T) {
	m := randMLE(6, 7)
	claim := SumOverHypercube([]*poly.MLE{m}, product)
	src := func(k, idx int) field.Element { return m.At(idx) }
	proof, r, finals := ProveStreamed(transcript.New("sv"), "sc", claim, 1, 6, src, 1, product, 8)
	rV, fc, err := Verify(transcript.New("sv"), "sc", claim, 6, 1, proof)
	if err != nil {
		t.Fatal(err)
	}
	if product(finals) != fc {
		t.Fatal("final mismatch")
	}
	for i := range r {
		if r[i] != rV[i] {
			t.Fatal("challenge divergence")
		}
	}
}

func TestStreamedPanics(t *testing.T) {
	src := func(k, idx int) field.Element { return field.Zero }
	for name, fn := range map[string]func(){
		"no arrays": func() {
			ProveStreamed(transcript.New("x"), "s", field.Zero, 0, 3, src, 1, product, 4)
		},
		"no vars": func() {
			ProveStreamed(transcript.New("x"), "s", field.Zero, 1, 0, src, 1, product, 4)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
