// Package baseline models the systems NoCap is compared against
// (paper §III, §VII, Tables I/IV/V): the Groth16 zk-SNARK on a 32-core
// CPU and on a GPU (GZKP), and the PipeZK ASIC. We cannot rerun the
// authors' Threadripper, V100, or PipeZK RTL, so these are cost models
// calibrated to the paper's published measurements — which are exactly
// linear in constraint count (PipeZK: 0.50125 µs/constraint across all
// five benchmarks of Table IV) — plus an analytical 64-bit multiply-count
// model of Groth16 for the §III efficiency analysis.
package baseline

// Anchor measurements at 16M R1CS constraints (paper Tables I and IV).
const (
	anchorConstraints = 16_000_000
	groth16CPUSec     = 53.99 // Table I, 32-core CPU, libsnark
	groth16GPUSec     = 37.44 // Table I, NVIDIA V100, GZKP
	pipeZKSec         = 8.02  // Table I/IV, iso-area-scaled PipeZK
	pipeZKAccelSec    = 1.43  // §III: the portion PipeZK accelerates
)

// Groth16CPUSeconds models libsnark's 32-core proving time; Groth16's
// prover is MSM-dominated and scales linearly in N.
func Groth16CPUSeconds(constraints int64) float64 {
	return groth16CPUSec * float64(constraints) / anchorConstraints
}

// Groth16GPUSeconds models GZKP on a V100 (Table I row).
func Groth16GPUSeconds(constraints int64) float64 {
	return groth16GPUSec * float64(constraints) / anchorConstraints
}

// GZKPAuctionSeconds is the paper's §IX-B estimate for GZKP on the
// 550M-constraint Auction benchmark ("assuming linear scaling (which is
// generous), GZKP would run the Auction benchmark in 513 s").
const GZKPAuctionSeconds = 513.0

// PipeZKSeconds models the iso-resource-scaled PipeZK ASIC. Its end-to-
// end time is bottlenecked by the MSM G2 phase left on the host CPU
// (§VII), so scaling area/frequency does not help; published times are
// exactly 0.50125 µs per (unpadded) constraint.
func PipeZKSeconds(constraints int64) float64 {
	return pipeZKSec * float64(constraints) / anchorConstraints
}

// PipeZKSplit returns the accelerated-ASIC and host-CPU portions of a
// PipeZK run (§III: 1.43 s of 8.02 s at 16M is on the ASIC).
func PipeZKSplit(constraints int64) (accel, host float64) {
	total := PipeZKSeconds(constraints)
	accel = pipeZKAccelSec * float64(constraints) / anchorConstraints
	return accel, total - accel
}

// Groth16ProofBytes is the (constant) Groth16 proof size: ~0.2 KB
// (Table I: 3 group elements).
const Groth16ProofBytes = 200

// Groth16VerifySeconds is the (essentially constant) Groth16
// verification time: ~10 ms (Table I).
const Groth16VerifySeconds = 0.01

// MultiplyModel parameterizes the §III critical-operation analysis: the
// number of 64-bit integer multiplies each prover performs. Defaults are
// standard implementation choices (Pippenger MSM, Montgomery CIOS limb
// arithmetic); the paper reports the resulting ratio as 4.94×.
type MultiplyModel struct {
	// PippengerWindow is the MSM bucket window in bits.
	PippengerWindow int
	// ScalarBits is the BLS12-381 scalar width.
	ScalarBits int
	// G1MSMPoints is the total G1 MSM size in multiples of N
	// (A-query, L-query, H-query ≈ 3N).
	G1MSMPoints float64
	// G2MSMPoints is the G2 MSM size in multiples of N.
	G2MSMPoints float64
	// FpMulsPerG1Add is base-field multiplies per mixed point addition.
	FpMulsPerG1Add float64
	// Fp2MulsFactor is the Karatsuba cost of one Fp2 multiply in Fp
	// multiplies.
	Fp2MulsFactor float64
	// FpLimbs and FrLimbs are 64-bit limb counts of the base and scalar
	// fields (381 → 6, 255 → 4).
	FpLimbs, FrLimbs int
	// NumFFTs is the number of size-2N scalar-field FFTs in the prover.
	NumFFTs int
}

// DefaultMultiplyModel returns standard BLS12-381 Groth16 costs.
func DefaultMultiplyModel() MultiplyModel {
	return MultiplyModel{
		PippengerWindow: 16,
		ScalarBits:      255,
		G1MSMPoints:     3,
		G2MSMPoints:     1,
		FpMulsPerG1Add:  9, // Jacobian mixed addition, 7M + 4S with squarings at ~0.5M
		Fp2MulsFactor:   3, // Karatsuba
		FpLimbs:         6,
		FrLimbs:         4,
		NumFFTs:         7,
	}
}

// montMuls returns 64-bit multiplies per Montgomery (CIOS) field
// multiply for l limbs: 2l² + l.
func montMuls(l int) float64 { return float64(2*l*l + l) }

// Groth16Muls returns the modeled total 64-bit multiplies for a Groth16
// proof over N constraints with log₂(padded domain) = logN.
func (m MultiplyModel) Groth16Muls(constraints int64, logN int) float64 {
	n := float64(constraints)
	addsPerPoint := float64((m.ScalarBits + m.PippengerWindow - 1) / m.PippengerWindow)
	fpMul := montMuls(m.FpLimbs)
	g1 := m.G1MSMPoints * n * addsPerPoint * m.FpMulsPerG1Add * fpMul
	g2 := m.G2MSMPoints * n * addsPerPoint * m.FpMulsPerG1Add * m.Fp2MulsFactor * fpMul
	// 7 FFTs of size 2N: (2N/2)·log(2N) butterflies, one Fr mul each.
	frMul := montMuls(m.FrLimbs)
	fft := float64(m.NumFFTs) * n * float64(logN+1) * frMul
	return g1 + g2 + fft
}
