package baseline

import (
	"math"
	"testing"
)

func TestPipeZKMatchesTableIV(t *testing.T) {
	// PipeZK's published times are exactly linear at 0.50125 µs/constraint.
	cases := []struct {
		constraints int64
		want        float64
	}{
		{16_000_000, 8.02},
		{32_000_000, 16.0},
		{98_000_000, 49.1},
		{268_400_000, 134.6},
		{550_000_000, 275.8},
	}
	for _, c := range cases {
		got := PipeZKSeconds(c.constraints)
		if math.Abs(got-c.want)/c.want > 0.005 {
			t.Errorf("PipeZK(%d) = %.2fs, want %.2fs", c.constraints, got, c.want)
		}
	}
}

func TestPipeZKSplit(t *testing.T) {
	accel, host := PipeZKSplit(16_000_000)
	if math.Abs(accel-1.43) > 0.01 {
		t.Fatalf("accel portion %.2f", accel)
	}
	if math.Abs(accel+host-8.02) > 0.01 {
		t.Fatalf("split doesn't sum: %.2f + %.2f", accel, host)
	}
	// §III: the ASIC portion achieves 32× over the CPU; non-accelerated
	// part caps end-to-end speedup at ~6.7×.
	cpu := Groth16CPUSeconds(16_000_000)
	if cap := cpu / (accel + host); math.Abs(cap-6.7) > 0.1 {
		t.Fatalf("PipeZK speedup cap %.2f, paper says 6.7", cap)
	}
}

func TestGroth16Anchors(t *testing.T) {
	if Groth16CPUSeconds(16_000_000) != 53.99 {
		t.Fatal("CPU anchor wrong")
	}
	if Groth16GPUSeconds(16_000_000) != 37.44 {
		t.Fatal("GPU anchor wrong")
	}
	if Groth16CPUSeconds(32_000_000) != 2*53.99 {
		t.Fatal("linear scaling wrong")
	}
}

func TestGroth16MultiplyModel(t *testing.T) {
	m := DefaultMultiplyModel()
	muls := m.Groth16Muls(16_000_000, 24)
	perConstraint := muls / 16e6
	// Groth16 must land in the tens of thousands of 64-bit multiplies
	// per constraint — the scale the §III analysis implies.
	if perConstraint < 30_000 || perConstraint > 150_000 {
		t.Fatalf("Groth16 %.0f muls/constraint implausible", perConstraint)
	}
	// MSMs must dominate FFTs.
	noFFT := m
	noFFT.NumFFTs = 0
	if (muls-noFFT.Groth16Muls(16_000_000, 24))/muls > 0.3 {
		t.Fatal("FFTs dominate the multiply model; MSM should")
	}
}

func TestMontMuls(t *testing.T) {
	if montMuls(6) != 78 || montMuls(4) != 36 {
		t.Fatal("CIOS multiply counts wrong")
	}
}
