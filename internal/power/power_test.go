package power

import (
	"math"
	"testing"

	"nocap/internal/sim"
	"nocap/internal/tasks"
)

func TestAreaMatchesTableII(t *testing.T) {
	a := Area(sim.DefaultConfig())
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"NTT", a.NTT, 1.80},
		{"Mul", a.Mul, 6.34},
		{"Add", a.Add, 0.96},
		{"Hash", a.Hash, 0.84},
		{"RegFile", a.RegFile, 6.01},
		{"Benes", a.Benes, 0.11},
		{"MemPHYs", a.MemPHYs, 29.80},
		{"Compute", a.Compute(), 9.95},
		{"MemSystem", a.MemorySystem(), 35.92},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 0.011 {
			t.Errorf("%s area %.3f, Table II says %.2f", c.name, c.got, c.want)
		}
	}
	if math.Abs(a.Total()-45.87) > 0.02 {
		t.Errorf("total area %.3f, Table II says 45.87", a.Total())
	}
}

func TestAreaScalesWithConfig(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.MulLanes *= 2
	cfg.MemBytesPerCycle *= 2
	a := Area(cfg)
	if math.Abs(a.Mul-12.68) > 0.01 || math.Abs(a.MemPHYs-59.6) > 0.01 {
		t.Fatalf("area scaling wrong: mul %.2f phy %.2f", a.Mul, a.MemPHYs)
	}
}

func TestPowerMatchesFig5(t *testing.T) {
	// Fig. 5: 62 W total at a 16M-constraint statement; 13% FU, 44%
	// register file, 42% HBM.
	res := sim.Prover(sim.DefaultConfig(), 24, tasks.DefaultOptions())
	p := Estimate(res)
	t.Logf("power: FU %.1fW (%.0f%%), RF %.1fW (%.0f%%), HBM %.1fW (%.0f%%), total %.1fW",
		p.FU, 100*p.FUShare(), p.RegFile, 100*p.RegFileShare(), p.HBM, 100*p.HBMShare(), p.Total())
	if math.Abs(p.Total()-62) > 62*0.08 {
		t.Errorf("total power %.1fW, paper says 62W", p.Total())
	}
	if math.Abs(p.FUShare()-0.13) > 0.04 {
		t.Errorf("FU share %.2f, paper says 0.13", p.FUShare())
	}
	if math.Abs(p.RegFileShare()-0.44) > 0.05 {
		t.Errorf("register-file share %.2f, paper says 0.44", p.RegFileShare())
	}
	if math.Abs(p.HBMShare()-0.42) > 0.05 {
		t.Errorf("HBM share %.2f, paper says 0.42", p.HBMShare())
	}
}

func TestPowerStableAcrossSizes(t *testing.T) {
	// §VIII-B: "the breakdown and total power are essentially identical
	// across benchmarks" for 2^20..2^30 constraints.
	var prev PowerBreakdown
	for i, logN := range []int{20, 24, 28, 30} {
		p := Estimate(sim.Prover(sim.DefaultConfig(), logN, tasks.DefaultOptions()))
		if i > 0 && math.Abs(p.Total()-prev.Total()) > 3 {
			t.Fatalf("power not stable: %.1fW at 2^%d vs %.1fW before", p.Total(), logN, prev.Total())
		}
		prev = p
	}
}

func TestZeroRunPower(t *testing.T) {
	p := Estimate(sim.Result{Config: sim.DefaultConfig()})
	if p.Total() != 0 {
		t.Fatal("zero run has nonzero power")
	}
}
