// Package power implements NoCap's area and power models. Areas are the
// 14nm synthesis results of paper Table II, scaled with configuration
// for design-space exploration (Fig. 8). Power combines per-event
// energies with the simulator's activity factors (paper §VII: "The
// simulator also collects activity factors for all units, which we then
// combine with per-event energies from RTL synthesis to compute power"),
// with the per-event energies calibrated to the published breakdown
// (Fig. 5: 62 W total; 13% FUs, 44% register file, 42% HBM).
package power

import (
	"nocap/internal/isa"
	"nocap/internal/sim"
)

// Per-event energies (picojoules), calibrated to Fig. 5 (see package doc).
const (
	EnergyMulPJ       = 4.0  // per 64-bit modular multiply
	EnergyAddPJ       = 0.5  // per modular add
	EnergyHashPJPerB  = 15.0 // per byte through the SHA3 unit
	EnergyNTTPJ       = 24.0 // per element-pass through the NTT pipeline
	EnergyShufflePJ   = 2.0  // per element through the Beneš network
	EnergyHBMPJPerB   = 30.1 // per byte of HBM traffic (HBM2E-class)
	EnergyRFPJPerB    = 0.47 // per byte of register-file access
	RFBytesPerMul     = 24   // two operand reads + one writeback
	RFBytesPerAdd     = 16   // second operand often forwarded
	RFBytesPerSpecial = 16   // hash/NTT/shuffle element staging
)

// AreaBreakdown is Table II, in mm².
type AreaBreakdown struct {
	NTT, Mul, Add, Hash     float64
	RegFile, Benes, MemPHYs float64
}

// Compute returns the total compute (FU) area.
func (a AreaBreakdown) Compute() float64 { return a.NTT + a.Mul + a.Add + a.Hash }

// MemorySystem returns the total memory-system area.
func (a AreaBreakdown) MemorySystem() float64 { return a.RegFile + a.Benes + a.MemPHYs }

// Total returns the full chip area.
func (a AreaBreakdown) Total() float64 { return a.Compute() + a.MemorySystem() }

// Area returns the die area for a configuration. At sim.DefaultConfig it
// reproduces Table II: 45.87 mm² (1.80 NTT, 6.34 mul, 0.96 add, 0.84
// hash, 6.01 register file, 0.11 Beneš, 29.80 for two HBM PHYs).
func Area(cfg sim.Config) AreaBreakdown {
	return AreaBreakdown{
		NTT:     1.80 * float64(cfg.NTTLanes) / 64,
		Mul:     6.34 * float64(cfg.MulLanes) / 2048,
		Add:     0.96 * float64(cfg.AddLanes) / 2048,
		Hash:    0.84 * float64(cfg.HashLanes) / 128,
		RegFile: 6.01 * float64(cfg.RegFileBytes) / float64(8<<20),
		Benes:   0.11 * float64(cfg.ShuffleLanes) / 128,
		MemPHYs: 29.80 * cfg.MemBytesPerCycle / 1024,
	}
}

// PowerBreakdown reports average power in watts by component class
// (Fig. 5).
type PowerBreakdown struct {
	FU, RegFile, HBM float64
}

// Total returns total average power.
func (p PowerBreakdown) Total() float64 { return p.FU + p.RegFile + p.HBM }

// FUShare returns the FU fraction of total power.
func (p PowerBreakdown) FUShare() float64 { return p.FU / p.Total() }

// RegFileShare returns the register-file fraction.
func (p PowerBreakdown) RegFileShare() float64 { return p.RegFile / p.Total() }

// HBMShare returns the HBM fraction.
func (p PowerBreakdown) HBMShare() float64 { return p.HBM / p.Total() }

// Estimate computes average power for a simulated run: per-event
// energies × activity ÷ time.
func Estimate(r sim.Result) PowerBreakdown {
	seconds := r.Seconds()
	if seconds == 0 {
		return PowerBreakdown{}
	}
	memBytes := float64(r.MemBytes)
	// Activity comes from per-FU element counts: recover them from busy
	// cycles × lanes (streams are fully packed by EmitElems, so this is
	// exact up to the final partial vector).
	muls := float64(r.FUBusy[isa.FUMul]) * float64(r.Config.MulLanes)
	adds := float64(r.FUBusy[isa.FUAdd]) * float64(r.Config.AddLanes)
	hashElems := float64(r.FUBusy[isa.FUHash]) * float64(r.Config.HashLanes)
	nttElems := float64(r.FUBusy[isa.FUNTT]) * float64(r.Config.NTTLanes)
	shufElems := float64(r.FUBusy[isa.FUShuffle]) * float64(r.Config.ShuffleLanes)

	fuEnergy := muls*EnergyMulPJ +
		adds*EnergyAddPJ +
		hashElems*8*EnergyHashPJPerB +
		nttElems*EnergyNTTPJ +
		shufElems*EnergyShufflePJ
	rfBytes := muls*RFBytesPerMul + adds*RFBytesPerAdd +
		(hashElems+nttElems+shufElems)*RFBytesPerSpecial + 2*memBytes
	rfEnergy := rfBytes * EnergyRFPJPerB
	hbmEnergy := memBytes * EnergyHBMPJPerB

	const pJ = 1e-12
	return PowerBreakdown{
		FU:      fuEnergy * pJ / seconds,
		RegFile: rfEnergy * pJ / seconds,
		HBM:     hbmEnergy * pJ / seconds,
	}
}
