// Package proofcache is a content-addressed cache of marshalled proofs
// keyed by (circuit-id, params-digest, witness-commitment). Two rules
// make it safe to put in front of a prover (DESIGN.md §12):
//
//   - Verify-on-insert: every proof is re-verified before it becomes
//     servable. A cache entry that fails verification is a soundness
//     incident, not a performance bug — it is counted, never stored,
//     and never served.
//   - Singleflight: N identical in-flight submissions cost one prove.
//     The first requester for a key becomes the leader and proves;
//     the rest wait on the leader's flight and are served the same
//     (verified) bytes.
//
// The cache is bounded by an LRU bytes budget.
package proofcache

import (
	"container/list"
	"context"
	"sync"

	"nocap/internal/faultinject"
	"nocap/internal/zkerr"
)

// fiInsertCorrupt flips one proof byte between prove and verify-on-
// insert, modelling a corrupted store; chaos tests use it to prove the
// verify-reject path never serves the bytes.
var fiInsertCorrupt = faultinject.Register("proofcache.insert.corrupt")

// KeySize is the cache key width (one hash digest).
const KeySize = 32

// Key addresses one proof: a hash over circuit identity, parameter
// digest, and witness commitment. Construction lives with the caller,
// which knows the hash domain.
type Key [KeySize]byte

// Config sizes the cache.
type Config struct {
	// MaxBytes is the LRU budget over stored proof bytes. <= 0 disables
	// storage (flights still coalesce identical in-flight proves).
	MaxBytes int64
}

// Metrics is a point-in-time snapshot of the cache counters.
type Metrics struct {
	Hits          int64
	Misses        int64
	Coalesced     int64 // followers that joined an in-flight prove
	Inserts       int64
	VerifyRejects int64 // soundness incidents: proofs refused at insert
	Evictions     int64
	OversizeSkips int64 // proofs larger than the whole budget
	Entries       int64
	Bytes         int64
}

// Flight is an in-flight prove for one key. Followers Wait on it; the
// leader resolves it through Commit or Abort.
type Flight struct {
	done chan struct{}
	data []byte
	err  error
}

// Wait blocks until the leader resolves the flight or ctx ends. On
// success the returned bytes are the leader's verified proof.
func (f *Flight) Wait(ctx context.Context) ([]byte, error) {
	select {
	case <-f.done:
		return f.data, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Acquisition is the outcome of Acquire: exactly one of Hit, Leader, or
// follower (Flight set with Leader=false) holds.
type Acquisition struct {
	// Data is the cached proof when Hit.
	Data []byte
	// Hit: the proof was in the cache; Data is servable as-is.
	Hit bool
	// Leader: the caller owns the prove for this key and must resolve
	// it with Commit (success) or Abort (failure) — leaking a flight
	// strands every follower until their contexts expire.
	Leader bool
	// Flight is set when !Hit: the leader's own flight, or the one a
	// follower should Wait on.
	Flight *Flight
}

type cacheEntry struct {
	key  Key
	data []byte
}

// Cache is the verified LRU + singleflight store. Safe for concurrent
// use.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recent
	byKey    map[Key]*list.Element
	flights  map[Key]*Flight
	m        Metrics // Entries/Bytes computed at snapshot time
}

// New builds a cache with the given budget.
func New(cfg Config) *Cache {
	return &Cache{
		maxBytes: cfg.MaxBytes,
		ll:       list.New(),
		byKey:    make(map[Key]*list.Element),
		flights:  make(map[Key]*Flight),
	}
}

// Acquire looks up k and, on a miss, either claims leadership of the
// prove (first caller) or joins the existing flight.
func (c *Cache) Acquire(k Key) Acquisition {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		c.ll.MoveToFront(el)
		c.m.Hits++
		return Acquisition{Data: el.Value.(*cacheEntry).data, Hit: true}
	}
	if f, ok := c.flights[k]; ok {
		c.m.Coalesced++
		return Acquisition{Flight: f}
	}
	c.m.Misses++
	f := &Flight{done: make(chan struct{})}
	c.flights[k] = f
	return Acquisition{Flight: f, Leader: true}
}

// Commit resolves a leader's flight with freshly proven bytes. The
// bytes are re-verified first — the verify-on-insert rule — so a proof
// the verifier rejects is never inserted and never reaches a follower;
// the rejection is returned to the leader as an internal error and
// counted in VerifyRejects. On success the (possibly shared) verified
// bytes are returned for the leader to serve.
func (c *Cache) Commit(ctx context.Context, k Key, data []byte, verify func(context.Context, []byte) error) ([]byte, error) {
	if ferr := faultinject.Check(fiInsertCorrupt); ferr != nil && len(data) > 0 {
		data = append([]byte(nil), data...)
		data[len(data)/2] ^= 0x01
	}
	if err := verify(ctx, data); err != nil {
		c.mu.Lock()
		c.m.VerifyRejects++
		c.mu.Unlock()
		rej := zkerr.Internalf("proofcache: verify-on-insert rejected proof: %v", err)
		c.resolve(k, nil, rej)
		return nil, rej
	}
	c.insert(k, data)
	c.resolve(k, data, nil)
	return data, nil
}

// Abort resolves a leader's flight with the prove's error; nothing is
// inserted and followers receive err.
func (c *Cache) Abort(k Key, err error) {
	c.resolve(k, nil, err)
}

func (c *Cache) resolve(k Key, data []byte, err error) {
	c.mu.Lock()
	f := c.flights[k]
	delete(c.flights, k)
	c.mu.Unlock()
	if f != nil {
		f.data, f.err = data, err
		close(f.done)
	}
}

func (c *Cache) insert(k Key, data []byte) {
	size := int64(len(data))
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byKey[k]; ok {
		return
	}
	if size > c.maxBytes {
		c.m.OversizeSkips++
		return
	}
	for c.bytes+size > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.byKey, ev.key)
		c.bytes -= int64(len(ev.data))
		c.m.Evictions++
	}
	c.byKey[k] = c.ll.PushFront(&cacheEntry{key: k, data: data})
	c.bytes += size
	c.m.Inserts++
}

// Metrics snapshots the counters.
func (c *Cache) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.m
	m.Entries = int64(len(c.byKey))
	m.Bytes = c.bytes
	return m
}
