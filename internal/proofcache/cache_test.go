package proofcache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"nocap/internal/faultinject"
	"nocap/internal/zkerr"
)

func key(b byte) Key {
	var k Key
	k[0] = b
	return k
}

// okVerify accepts everything — tests that are not about the verify
// rule use it.
func okVerify(context.Context, []byte) error { return nil }

func TestAcquireMissCommitHit(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	k := key(1)
	acq := c.Acquire(k)
	if acq.Hit || !acq.Leader || acq.Flight == nil {
		t.Fatalf("first Acquire: %+v, want leader miss", acq)
	}
	proof := []byte("proof-bytes")
	got, err := c.Commit(context.Background(), k, proof, okVerify)
	if err != nil || !bytes.Equal(got, proof) {
		t.Fatalf("Commit: %q, %v", got, err)
	}
	hit := c.Acquire(k)
	if !hit.Hit || !bytes.Equal(hit.Data, proof) {
		t.Fatalf("second Acquire: %+v, want byte-identical hit", hit)
	}
	m := c.Metrics()
	if m.Hits != 1 || m.Misses != 1 || m.Inserts != 1 || m.Entries != 1 ||
		m.Bytes != int64(len(proof)) {
		t.Fatalf("metrics %+v", m)
	}
}

func TestSingleflightCoalesce(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	k := key(2)
	leader := c.Acquire(k)
	if !leader.Leader {
		t.Fatal("first caller not leader")
	}
	const followers = 4
	var wg sync.WaitGroup
	results := make([][]byte, followers)
	for i := 0; i < followers; i++ {
		f := c.Acquire(k)
		if f.Hit || f.Leader || f.Flight == nil {
			t.Fatalf("follower %d: %+v", i, f)
		}
		wg.Add(1)
		go func(i int, fl *Flight) {
			defer wg.Done()
			data, err := fl.Wait(context.Background())
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
				return
			}
			results[i] = data
		}(i, f.Flight)
	}
	proof := []byte("shared-proof")
	if _, err := c.Commit(context.Background(), k, proof, okVerify); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, r := range results {
		if !bytes.Equal(r, proof) {
			t.Fatalf("follower %d got %q", i, r)
		}
	}
	m := c.Metrics()
	if m.Coalesced != followers || m.Misses != 1 {
		t.Fatalf("metrics %+v, want %d coalesced on 1 miss", m, followers)
	}
}

func TestAbortPropagatesToFollowers(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	k := key(3)
	c.Acquire(k) // leader
	f := c.Acquire(k)
	boom := errors.New("prove exploded")
	c.Abort(k, boom)
	if _, err := f.Flight.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("follower err %v, want the leader's", err)
	}
	// The key is fully released: the next Acquire is a fresh miss with a
	// new leader, not a stale flight.
	next := c.Acquire(k)
	if next.Hit || !next.Leader {
		t.Fatalf("Acquire after abort: %+v, want fresh leader", next)
	}
	c.Abort(k, boom)
	if m := c.Metrics(); m.Entries != 0 || m.Inserts != 0 {
		t.Fatalf("aborted prove left state: %+v", m)
	}
}

func TestFlightWaitHonorsContext(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	k := key(4)
	c.Acquire(k) // leader never resolves
	f := c.Acquire(k)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := f.Flight.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait err %v, want deadline", err)
	}
	c.Abort(k, errors.New("cleanup"))
}

// TestVerifyOnInsertRejects pins the soundness rule: a proof the
// verifier rejects is counted, never stored, and never served — not to
// the leader, not to followers, not to later lookups.
func TestVerifyOnInsertRejects(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	k := key(5)
	c.Acquire(k)
	follower := c.Acquire(k)
	badVerify := func(_ context.Context, data []byte) error {
		return fmt.Errorf("bogus proof")
	}
	got, err := c.Commit(context.Background(), k, []byte("forged"), badVerify)
	if err == nil || got != nil {
		t.Fatalf("Commit of rejected proof returned %q, %v", got, err)
	}
	if zkerr.Code(err) != "internal" {
		t.Fatalf("verify-reject code %q, want internal", zkerr.Code(err))
	}
	if data, ferr := follower.Flight.Wait(context.Background()); ferr == nil || data != nil {
		t.Fatalf("follower received rejected bytes: %q, %v", data, ferr)
	}
	if next := c.Acquire(k); next.Hit {
		t.Fatal("rejected proof was stored")
	}
	c.Abort(k, errors.New("cleanup"))
	m := c.Metrics()
	if m.VerifyRejects != 1 || m.Inserts != 0 || m.Entries != 0 {
		t.Fatalf("metrics %+v, want 1 verify-reject and nothing stored", m)
	}
}

// TestInsertCorruptionFault drives the same rule through the
// registered chaos point: one bit flipped between prove and insert must
// be caught by verify-on-insert even when the caller's verifier is the
// real one (here: equality with the original bytes).
func TestInsertCorruptionFault(t *testing.T) {
	if err := faultinject.Arm(faultinject.Plan{Point: "proofcache.insert.corrupt", Kind: faultinject.Error}); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disarm()

	c := New(Config{MaxBytes: 1 << 20})
	k := key(6)
	c.Acquire(k)
	proof := []byte("authentic-proof-bytes")
	verify := func(_ context.Context, data []byte) error {
		if !bytes.Equal(data, proof) {
			return errors.New("proof does not verify")
		}
		return nil
	}
	if got, err := c.Commit(context.Background(), k, proof, verify); err == nil {
		t.Fatalf("corrupted insert served %q", got)
	}
	if !faultinject.Fired() {
		t.Fatal("corruption fault never fired")
	}
	if m := c.Metrics(); m.VerifyRejects != 1 || m.Entries != 0 {
		t.Fatalf("metrics %+v", m)
	}
	// Original slice was copied before the flip — the caller's proof is
	// untouched.
	if !bytes.Equal(proof, []byte("authentic-proof-bytes")) {
		t.Fatal("Commit mutated the caller's proof bytes")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{MaxBytes: 30})
	put := func(b byte, size int) {
		k := key(b)
		if acq := c.Acquire(k); !acq.Leader {
			t.Fatalf("key %d: not leader", b)
		}
		if _, err := c.Commit(context.Background(), k, bytes.Repeat([]byte{b}, size), okVerify); err != nil {
			t.Fatal(err)
		}
	}
	put(1, 10)
	put(2, 10)
	put(3, 10) // budget exactly full
	// Touch 1 so 2 is the LRU victim.
	if !c.Acquire(key(1)).Hit {
		t.Fatal("key 1 missing")
	}
	put(4, 10)
	if c.Acquire(key(2)).Hit {
		t.Fatal("LRU victim 2 still cached")
	}
	c.Abort(key(2), errors.New("cleanup"))
	for _, b := range []byte{1, 3, 4} {
		if !c.Acquire(key(b)).Hit {
			t.Fatalf("key %d evicted, want only 2", b)
		}
	}
	m := c.Metrics()
	if m.Evictions != 1 || m.Entries != 3 || m.Bytes != 30 {
		t.Fatalf("metrics %+v", m)
	}

	// A proof bigger than the whole budget is served but not stored.
	k := key(9)
	c.Acquire(k)
	if _, err := c.Commit(context.Background(), k, make([]byte, 64), okVerify); err != nil {
		t.Fatal(err)
	}
	if c.Acquire(k).Hit {
		t.Fatal("oversize proof was stored")
	}
	c.Abort(k, errors.New("cleanup"))
	if m := c.Metrics(); m.OversizeSkips != 1 {
		t.Fatalf("metrics %+v, want 1 oversize skip", m)
	}
}
