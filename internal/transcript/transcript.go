// Package transcript implements the Fiat–Shamir transcript that makes the
// Spartan+Orion argument non-interactive. Every prover message is
// absorbed; verifier challenges are squeezed deterministically, so prover
// and verifier derive identical randomness from identical transcripts.
//
// Challenges are sampled by rejection so field elements are uniform in
// [0, p) with no modular bias.
package transcript

import (
	"encoding/binary"

	"nocap/internal/field"
	"nocap/internal/hashfn"
)

// Transcript is a running Fiat–Shamir state. The zero value is not
// usable; construct with New.
type Transcript struct {
	eng     hashfn.Engine
	state   hashfn.Digest
	counter uint64
	// absorb scratch, reused across calls: a transcript absorbs hundreds
	// of labeled messages per proof, and rebuilding label‖0‖data each
	// time dominated the package's allocation profile.
	buf  []byte
	ebuf []byte
}

// New creates a transcript domain-separated by label, under the default
// hash engine.
func New(label string) *Transcript {
	return NewEngine(label, hashfn.Default())
}

// NewEngine creates a transcript domain-separated by label and bound to
// a hash engine. The default (sha3) engine seeds exactly as New always
// has, so proofs under it stay byte-compatible with every earlier
// version; any other engine folds its name into the seed string, so
// transcripts under different engines diverge from the first challenge
// and cross-engine proofs can never share Fiat–Shamir randomness.
func NewEngine(label string, eng hashfn.Engine) *Transcript {
	if eng == nil {
		eng = hashfn.Default()
	}
	seed := "nocap/v1/" + label
	if eng.ID() != hashfn.IDSHA3 {
		seed = "nocap/v1/hash=" + eng.Name() + "/" + label
	}
	return &Transcript{eng: eng, state: eng.Sum([]byte(seed))}
}

// absorb mixes labeled data into the state. The hashed bytes are exactly
// label ‖ 0 ‖ data — the layout is load-bearing for proof compatibility.
func (t *Transcript) absorb(label string, data []byte) {
	t.buf = append(t.buf[:0], label...)
	t.buf = append(t.buf, 0)
	t.buf = append(t.buf, data...)
	h := t.eng.Sum(t.buf)
	t.state = t.eng.Hash2(t.state, h)
	t.counter = 0
}

// AppendBytes absorbs a labeled byte string.
func (t *Transcript) AppendBytes(label string, data []byte) {
	t.absorb(label, data)
}

// AppendDigest absorbs a 256-bit digest (e.g. a Merkle root).
func (t *Transcript) AppendDigest(label string, d hashfn.Digest) {
	t.absorb(label, d[:])
}

// AppendElems absorbs a vector of field elements.
func (t *Transcript) AppendElems(label string, elems []field.Element) {
	t.ebuf = hashfn.AppendElems(t.ebuf[:0], elems)
	t.absorb(label, t.ebuf)
}

// AppendUint64 absorbs an integer (e.g. instance sizes, so that
// differently-shaped statements cannot share transcripts).
func (t *Transcript) AppendUint64(label string, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	t.absorb(label, buf[:])
}

// next squeezes the next 32 bytes of challenge stream.
func (t *Transcript) next() hashfn.Digest {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], t.counter)
	t.counter++
	return t.eng.Hash2(t.state, t.eng.Sum(buf[:]))
}

// Challenge returns one uniform field element.
func (t *Transcript) Challenge(label string) field.Element {
	t.absorb("challenge/"+label, nil)
	for {
		d := t.next()
		v := binary.LittleEndian.Uint64(d[:8])
		if v < field.Modulus {
			return field.Element(v)
		}
	}
}

// Challenges returns n uniform field elements.
func (t *Transcript) Challenges(label string, n int) []field.Element {
	t.absorb("challenges/"+label, nil)
	out := make([]field.Element, 0, n)
	for len(out) < n {
		d := t.next()
		for off := 0; off+8 <= len(d) && len(out) < n; off += 8 {
			v := binary.LittleEndian.Uint64(d[off : off+8])
			if v < field.Modulus {
				out = append(out, field.Element(v))
			}
		}
	}
	return out
}

// ChallengeIndices returns n indices uniform in [0, bound). Used for the
// Orion column queries (189 of them, paper §VII-A). bound must be a
// power of two, which makes masking exact.
func (t *Transcript) ChallengeIndices(label string, n, bound int) []int {
	if bound <= 0 || bound&(bound-1) != 0 {
		panic("transcript: index bound must be a positive power of two")
	}
	t.absorb("indices/"+label, nil)
	mask := uint64(bound - 1)
	out := make([]int, 0, n)
	for len(out) < n {
		d := t.next()
		for off := 0; off+8 <= len(d) && len(out) < n; off += 8 {
			v := binary.LittleEndian.Uint64(d[off : off+8])
			out = append(out, int(v&mask))
		}
	}
	return out
}
