package transcript

import (
	"testing"

	"nocap/internal/field"
	"nocap/internal/hashfn"
)

func TestDeterminism(t *testing.T) {
	mk := func() *Transcript {
		tr := New("test")
		tr.AppendUint64("n", 42)
		tr.AppendElems("v", []field.Element{field.New(1), field.New(2)})
		tr.AppendDigest("d", hashfn.Sum([]byte("x")))
		return tr
	}
	a, b := mk(), mk()
	if a.Challenge("c") != b.Challenge("c") {
		t.Fatal("identical transcripts give different challenges")
	}
}

func TestOrderSensitivity(t *testing.T) {
	a := New("test")
	a.AppendUint64("x", 1)
	a.AppendUint64("y", 2)
	b := New("test")
	b.AppendUint64("y", 2)
	b.AppendUint64("x", 1)
	if a.Challenge("c") == b.Challenge("c") {
		t.Fatal("absorb order must matter")
	}
}

func TestLabelSeparation(t *testing.T) {
	a := New("proto-a")
	b := New("proto-b")
	if a.Challenge("c") == b.Challenge("c") {
		t.Fatal("domain labels must separate transcripts")
	}
}

func TestChallengesCountAndRange(t *testing.T) {
	tr := New("test")
	cs := tr.Challenges("many", 1000)
	if len(cs) != 1000 {
		t.Fatalf("got %d challenges", len(cs))
	}
	seen := map[field.Element]bool{}
	for _, c := range cs {
		if c.Uint64() >= field.Modulus {
			t.Fatal("challenge out of range")
		}
		seen[c] = true
	}
	if len(seen) < 990 {
		t.Fatalf("challenges look non-uniform: %d distinct of 1000", len(seen))
	}
}

func TestSuccessiveChallengesDiffer(t *testing.T) {
	tr := New("test")
	if tr.Challenge("a") == tr.Challenge("a") {
		t.Fatal("successive challenges identical")
	}
}

func TestChallengeIndices(t *testing.T) {
	tr := New("test")
	idx := tr.ChallengeIndices("cols", 189, 1<<10)
	if len(idx) != 189 {
		t.Fatalf("got %d indices", len(idx))
	}
	for _, i := range idx {
		if i < 0 || i >= 1<<10 {
			t.Fatalf("index %d out of range", i)
		}
	}
}

func TestChallengeIndicesBadBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two bound")
		}
	}()
	New("test").ChallengeIndices("x", 1, 100)
}

func TestAbsorbChangesChallenges(t *testing.T) {
	a := New("test")
	b := New("test")
	b.AppendBytes("extra", []byte{1})
	if a.Challenge("c") == b.Challenge("c") {
		t.Fatal("absorbed data did not affect challenge")
	}
}
