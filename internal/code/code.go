// Package code implements the linear error-correcting codes used by the
// Orion polynomial commitment. Production NoCap uses a Reed-Solomon code
// with blowup 4 and 189 column queries (the Shockwave substitution, paper
// §II-A and §VII-A); the original Orion used an expander-graph code,
// which needed 1,222 queries and is hard to accelerate. Both are provided
// so the §VIII-C ablation (RS is 1.2× faster on CPU, far fewer queries)
// can be reproduced.
//
// Both codes are linear: Encode(a + c·b) = Encode(a) + c·Encode(b), the
// property the PCS relies on to check combined rows against combined
// columns. Tests enforce it.
package code

import (
	"context"
	"math/rand"

	"nocap/internal/field"
	"nocap/internal/kernel"
)

// Code is a linear error-correcting code over the Goldilocks field.
// Encode maps a power-of-two-length message to a codeword of length
// Blowup()×len(msg).
type Code interface {
	// Encode returns the codeword for msg. len(msg) must be a power of two.
	Encode(msg []field.Element) []field.Element
	// Blowup is the codeword-to-message length ratio.
	Blowup() int
	// Queries is the number of codeword positions a verifier must spot-check
	// for 128-bit soundness with this code's distance.
	Queries() int
	// Name identifies the code in benchmarks and proofs.
	Name() string
}

// ReedSolomon is the production code: the message is interpreted as the
// coefficients of a polynomial of degree < n and evaluated on the
// 4n-point root-of-unity domain (zero-extend + NTT, paper §V-A).
type ReedSolomon struct {
	// BlowupFactor is the inverse rate; the paper fixes it at 4.
	BlowupFactor int
	// NumQueries is the verifier spot-check count; the paper derives 189
	// from blowup 4 at 128-bit soundness.
	NumQueries int
}

// NewReedSolomon returns the paper-parameterized RS code (blowup 4,
// 189 queries).
func NewReedSolomon() *ReedSolomon {
	return &ReedSolomon{BlowupFactor: 4, NumQueries: 189}
}

// Encode implements Code.
func (c *ReedSolomon) Encode(msg []field.Element) []field.Element {
	cw, err := c.EncodeCtx(context.Background(), msg)
	if err != nil {
		panic(err)
	}
	return cw
}

// EncodeCtx is Encode with cooperative cancellation, checked inside the
// underlying NTT between butterfly stages. The PCS prefers this variant
// when a code provides it (see pcs.encodeCtx) so long row encodes stop
// promptly when a proving context is cancelled.
func (c *ReedSolomon) EncodeCtx(ctx context.Context, msg []field.Element) ([]field.Element, error) {
	cw := make([]field.Element, len(msg)*c.BlowupFactor)
	if err := c.EncodeIntoCtx(ctx, cw, msg); err != nil {
		return nil, err
	}
	return cw, nil
}

// EncodeIntoCtx encodes msg into caller-owned scratch dst (length must
// be exactly Blowup()×len(msg); contents may be arbitrary). This is the
// allocation-free entry point the PCS uses with arena buffers; on error
// dst must be discarded.
func (c *ReedSolomon) EncodeIntoCtx(ctx context.Context, dst, msg []field.Element) error {
	n := len(msg)
	if n == 0 || n&(n-1) != 0 {
		panic("code: message length must be a positive power of two")
	}
	if len(dst) != n*c.BlowupFactor {
		panic("code: codeword buffer length mismatch")
	}
	return kernel.RSEncodeCtx(ctx, dst, msg)
}

// Blowup implements Code.
func (c *ReedSolomon) Blowup() int { return c.BlowupFactor }

// Queries implements Code.
func (c *ReedSolomon) Queries() int { return c.NumQueries }

// Name implements Code.
func (c *ReedSolomon) Name() string { return "reed-solomon" }

// Expander is a Spielman/Brakedown-style linear-time code built from
// sparse pseudo-random bipartite graphs, standing in for the expander
// code of the original Orion implementation. Encoding performs
// data-dependent gathers over the graph — the access pattern that makes
// these codes accelerator-hostile (multi-gigabyte graphs, serialized
// off-chip accesses; paper §II-A). The graph is derived deterministically
// from Seed.
//
// Codeword layout for an n-element message x (blowup 4):
//
//	cw = x ‖ Enc(A·x) ‖ B·Enc(A·x)
//
// with |A·x| = n/2 recursively encoded to 2n, and |B·z| = n. Below
// baseSize the recursion bottoms out in Reed-Solomon.
type Expander struct {
	Seed       int64
	RowWeight  int
	NumQueries int

	base *ReedSolomon
	// graphs caches the sparse maps per (rows, cols, level tag), in the
	// kernel's shared sparse-row layout so encoding runs on the same
	// SpMV kernel as the R1CS matrices.
	graphs map[graphKey][][]kernel.Entry
}

type graphKey struct {
	rows, cols int
	tag        byte
}

// baseSize is the message size at which the recursion switches to RS.
const baseSize = 32

// NewExpander returns an expander code with the paper's query count
// (1,222) and a default row weight of 8.
func NewExpander(seed int64) *Expander {
	return &Expander{
		Seed:       seed,
		RowWeight:  8,
		NumQueries: 1222,
		base:       NewReedSolomon(),
		graphs:     make(map[graphKey][][]kernel.Entry),
	}
}

// graph returns (building if needed) the sparse rows×cols map for one
// recursion level.
func (c *Expander) graph(rows, cols int, tag byte) [][]kernel.Entry {
	key := graphKey{rows, cols, tag}
	if g, ok := c.graphs[key]; ok {
		return g
	}
	rng := rand.New(rand.NewSource(c.Seed ^ int64(rows)<<32 ^ int64(cols)<<8 ^ int64(tag)))
	g := make([][]kernel.Entry, rows)
	for r := range g {
		edges := make([]kernel.Entry, c.RowWeight)
		for e := range edges {
			edges[e] = kernel.Entry{
				Col: rng.Intn(cols),
				Val: field.New(rng.Uint64()),
			}
		}
		g[r] = edges
	}
	c.graphs[key] = g
	return g
}

// spmv applies a cached sparse graph to x.
func (c *Expander) spmv(ctx context.Context, rows int, x []field.Element, tag byte) ([]field.Element, error) {
	g := c.graph(rows, len(x), tag)
	out := make([]field.Element, rows)
	if err := kernel.SpMVSerialCtx(ctx, out, g, x); err != nil {
		return nil, err
	}
	return out, nil
}

// Encode implements Code.
func (c *Expander) Encode(msg []field.Element) []field.Element {
	cw, err := c.EncodeCtx(context.Background(), msg)
	if err != nil {
		panic(err) // unreachable: background context never cancels
	}
	return cw
}

// EncodeCtx is Encode with cooperative cancellation (polled inside the
// graph SpMVs and the Reed-Solomon base case) and per-run stats
// attribution via the context's collector. The PCS prefers this variant
// when a code provides it (see pcs.encodeCtx).
func (c *Expander) EncodeCtx(ctx context.Context, msg []field.Element) ([]field.Element, error) {
	n := len(msg)
	if n == 0 || n&(n-1) != 0 {
		panic("code: message length must be a positive power of two")
	}
	if n <= baseSize {
		return c.base.EncodeCtx(ctx, msg)
	}
	y, err := c.spmv(ctx, n/2, msg, 'A') // n/2 intermediate symbols
	if err != nil {
		return nil, err
	}
	z, err := c.EncodeCtx(ctx, y) // recursively encoded to 2n
	if err != nil {
		return nil, err
	}
	u, err := c.spmv(ctx, n, z, 'B') // n check symbols
	if err != nil {
		return nil, err
	}
	cw := make([]field.Element, 0, 4*n)
	cw = append(cw, msg...)
	cw = append(cw, z...)
	cw = append(cw, u...)
	return cw, nil
}

// Blowup implements Code.
func (c *Expander) Blowup() int { return 4 }

// Queries implements Code.
func (c *Expander) Queries() int { return c.NumQueries }

// Name implements Code.
func (c *Expander) Name() string { return "expander" }

// GraphBytes reports the memory footprint of the expander graphs needed
// to encode messages of length n — the "several gigabytes" cost the paper
// cites as the reason to avoid these codes in hardware.
func (c *Expander) GraphBytes(n int) int64 {
	var total int64
	for m := n; m > baseSize; m /= 2 {
		// level A: m/2 rows; level B: m rows; each edge: 4B index + 8B coeff.
		total += int64(m/2+m) * int64(c.RowWeight) * 12
	}
	return total
}
