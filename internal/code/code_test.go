package code

import (
	"math/rand"
	"testing"

	"nocap/internal/field"
	"nocap/internal/ntt"
)

func randMsg(n int, seed int64) []field.Element {
	rng := rand.New(rand.NewSource(seed))
	v := make([]field.Element, n)
	for i := range v {
		v[i] = field.New(rng.Uint64())
	}
	return v
}

func codes() []Code {
	return []Code{NewReedSolomon(), NewExpander(42)}
}

func TestBlowupAndLength(t *testing.T) {
	for _, c := range codes() {
		for _, n := range []int{8, 64, 256} {
			cw := c.Encode(randMsg(n, int64(n)))
			if len(cw) != n*c.Blowup() {
				t.Fatalf("%s: |cw| = %d, want %d", c.Name(), len(cw), n*c.Blowup())
			}
		}
	}
}

func TestLinearity(t *testing.T) {
	// Enc(a + s·b) == Enc(a) + s·Enc(b): the PCS consistency check
	// depends on this exactly (paper §V-A "Reed-Solomon codes are linear").
	for _, c := range codes() {
		for _, n := range []int{16, 128} {
			a := randMsg(n, 1)
			b := randMsg(n, 2)
			s := field.New(0xabcdef)
			comb := make([]field.Element, n)
			for i := range comb {
				comb[i] = field.Add(a[i], field.Mul(s, b[i]))
			}
			ea, eb, ec := c.Encode(a), c.Encode(b), c.Encode(comb)
			for i := range ec {
				want := field.Add(ea[i], field.Mul(s, eb[i]))
				if ec[i] != want {
					t.Fatalf("%s n=%d: linearity fails at %d", c.Name(), n, i)
				}
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, c := range codes() {
		msg := randMsg(64, 3)
		a := c.Encode(msg)
		b := c.Encode(msg)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: non-deterministic encode", c.Name())
			}
		}
	}
	// Two Expander instances with the same seed must agree.
	x, y := NewExpander(7), NewExpander(7)
	msg := randMsg(128, 4)
	a, b := x.Encode(msg), y.Encode(msg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("expander not seed-deterministic")
		}
	}
}

func TestZeroMessage(t *testing.T) {
	for _, c := range codes() {
		cw := c.Encode(make([]field.Element, 64))
		for i, v := range cw {
			if v != field.Zero {
				t.Fatalf("%s: zero message has nonzero symbol at %d", c.Name(), i)
			}
		}
	}
}

func TestDistinctMessagesDistinctCodewords(t *testing.T) {
	for _, c := range codes() {
		a := randMsg(64, 5)
		b := append([]field.Element(nil), a...)
		b[10] = field.Add(b[10], field.One)
		ea, eb := c.Encode(a), c.Encode(b)
		diff := 0
		for i := range ea {
			if ea[i] != eb[i] {
				diff++
			}
		}
		if diff == 0 {
			t.Fatalf("%s: distinct messages collide", c.Name())
		}
		// RS with blowup 4 has distance 3n+1: differences must be plentiful.
		if c.Name() == "reed-solomon" && diff < 3*64+1 {
			t.Fatalf("rs distance too small: %d", diff)
		}
	}
}

func TestQueriesMatchPaper(t *testing.T) {
	if NewReedSolomon().Queries() != 189 {
		t.Fatal("RS queries must be 189 (paper §VII-A)")
	}
	if NewExpander(1).Queries() != 1222 {
		t.Fatal("expander queries must be 1222 (paper §VII-A)")
	}
}

func TestRSSystematicViaInverse(t *testing.T) {
	// The first n codeword symbols are evaluations, not the message; but
	// the codeword restricted to the full domain must interpolate back to
	// the message (degree < n). Check via inverse NTT on the codeword.
	msg := randMsg(32, 6)
	cw := NewReedSolomon().Encode(msg)
	// cw = NTT(msg ‖ 0...) so Inverse(cw) = msg ‖ 0...
	inv := append([]field.Element(nil), cw...)
	ntt.Inverse(inv)
	for i := range inv {
		if i < len(msg) {
			if inv[i] != msg[i] {
				t.Fatalf("decode mismatch at %d", i)
			}
		} else if inv[i] != field.Zero {
			t.Fatalf("high coefficients nonzero at %d", i)
		}
	}
}

func TestExpanderGraphBytes(t *testing.T) {
	c := NewExpander(1)
	if c.GraphBytes(32) != 0 {
		t.Fatal("base-size message needs no graph")
	}
	small, large := c.GraphBytes(1<<10), c.GraphBytes(1<<20)
	if small <= 0 || large <= small {
		t.Fatalf("graph bytes not growing: %d vs %d", small, large)
	}
	// At paper scale (2^24-row commitments) the graph is gigabytes.
	if c.GraphBytes(1<<27) < 1<<30 {
		t.Fatalf("expected multi-GB graph at scale, got %d", c.GraphBytes(1<<27))
	}
}

func TestBadLengthPanics(t *testing.T) {
	for _, c := range codes() {
		for _, n := range []int{0, 3} {
			func() {
				defer func() {
					if recover() == nil {
						t.Fatalf("%s n=%d: expected panic", c.Name(), n)
					}
				}()
				c.Encode(make([]field.Element, n))
			}()
		}
	}
}

func BenchmarkRSEncode64k(b *testing.B) {
	c := NewReedSolomon()
	msg := randMsg(1<<16, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encode(msg)
	}
}

func BenchmarkExpanderEncode64k(b *testing.B) {
	c := NewExpander(7)
	msg := randMsg(1<<16, 7)
	c.Encode(msg) // warm graph caches
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encode(msg)
	}
}
