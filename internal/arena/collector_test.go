package arena

import (
	"context"
	"sync"
	"testing"

	"nocap/internal/field"
)

// TestPutEmptyPrefixReleasesCheckout covers the fold-to-empty path: a
// sumcheck-style loop that halves its scratch in place can reach length
// zero, and returning that zero-length prefix must still release the
// checkout (the old len==0 early-return stranded it in `live` forever).
func TestPutEmptyPrefixReleasesCheckout(t *testing.T) {
	a := New()
	s := a.Get(8)
	for len(s) > 0 {
		s = s[:len(s)/2] // fold to empty, as kernel.Fold reslicing does
	}
	a.Put(s)
	st := a.Stats()
	if st.Outstanding != 0 || st.OutstandingElems != 0 {
		t.Fatalf("fold-to-empty Put leaked the checkout: %d outstanding (%d elems)",
			st.Outstanding, st.OutstandingElems)
	}
	if st.DoubleReturns != 0 {
		t.Fatalf("fold-to-empty Put was rejected as a double return")
	}
	// The buffer really went back to the pool: the next same-class
	// checkout must be a hit.
	_ = a.Get(8)
	if got := a.Stats().Hits; got != 1 {
		t.Fatalf("checkout after empty-prefix Put had %d hits, want 1", got)
	}
}

// TestPutNilAndForeignEmpty pins the edge cases around the empty-Put
// fix: nil and zero-capacity slices stay silent no-ops, while a foreign
// empty-but-backed slice is a rejected return like any other foreign
// slice.
func TestPutNilAndForeignEmpty(t *testing.T) {
	a := New()
	a.Put(nil)
	a.Put([]field.Element{})
	if st := a.Stats(); st.DoubleReturns != 0 || st.Puts != 0 {
		t.Fatalf("nil/zero-cap Put changed counters: %+v", st)
	}
	foreign := make([]field.Element, 4)
	a.Put(foreign[:0])
	if st := a.Stats(); st.DoubleReturns != 1 {
		t.Fatalf("foreign backed empty Put: DoubleReturns = %d, want 1", st.DoubleReturns)
	}
}

// TestCollectorAttribution checks that checkouts made under a
// context-attached collector credit that collector — including returns
// performed later, without the context — while the arena's aggregate
// sees everything.
func TestCollectorAttribution(t *testing.T) {
	a := New()
	var col Collector
	ctx := WithCollector(context.Background(), &col)

	attributed := a.GetUninitCtx(ctx, 16)
	plain := a.GetUninit(16)

	cs := col.Snapshot()
	if cs.Gets != 1 || cs.OutstandingElems != 16 {
		t.Fatalf("collector after ctx checkout: %+v", cs)
	}
	// Return without any context: the checkout record routes the credit.
	a.Put(attributed)
	a.Put(plain)

	cs = col.Snapshot()
	if cs.Puts != 1 || cs.Outstanding != 0 || cs.OutstandingElems != 0 {
		t.Fatalf("collector after returns: %+v", cs)
	}
	as := a.Stats()
	if as.Gets != 2 || as.Puts != 2 || as.Outstanding != 0 {
		t.Fatalf("aggregate after returns: %+v", as)
	}
}

// TestCollectorsPartitionAggregate races two collectors' checkout loops
// and asserts the aggregate delta equals the sum of the two per-run
// snapshots: no work lost, none double-counted, none cross-attributed.
func TestCollectorsPartitionAggregate(t *testing.T) {
	a := New()
	before := a.Stats()
	var c1, c2 Collector
	var wg sync.WaitGroup
	run := func(c *Collector, n int) {
		defer wg.Done()
		ctx := WithCollector(context.Background(), c)
		for i := 0; i < n; i++ {
			s := a.GetCtx(ctx, 8+i%5)
			a.Put(s)
		}
	}
	wg.Add(2)
	go run(&c1, 500)
	go run(&c2, 300)
	wg.Wait()

	delta := a.Stats().Sub(before)
	sum := c1.Snapshot().Add(c2.Snapshot())
	if sum != delta {
		t.Fatalf("collector sum %+v != aggregate delta %+v", sum, delta)
	}
	if s1 := c1.Snapshot(); s1.Gets != 500 || s1.Puts != 500 {
		t.Fatalf("collector 1 cross-attributed: %+v", s1)
	}
	if s2 := c2.Snapshot(); s2.Gets != 300 || s2.Puts != 300 {
		t.Fatalf("collector 2 cross-attributed: %+v", s2)
	}
}
