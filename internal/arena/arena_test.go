package arena

import (
	"context"
	"testing"

	"nocap/internal/field"
	"nocap/internal/par"
)

func TestGetReturnsZeroedBuffer(t *testing.T) {
	a := New()
	// Dirty a buffer, return it, and check the next zeroed checkout of
	// the same class really is zeroed.
	s := a.GetUninit(10)
	for i := range s {
		s[i] = field.New(uint64(i + 1))
	}
	a.Put(s)
	s = a.Get(10)
	for i, v := range s {
		if !v.IsZero() {
			t.Fatalf("Get(10)[%d] = %v, want zero", i, v)
		}
	}
	a.Put(s)
}

func TestSizeClassReuse(t *testing.T) {
	a := New()
	s := a.GetUninit(100) // class 7, cap 128
	if cap(s) != 128 {
		t.Fatalf("cap = %d, want 128", cap(s))
	}
	base := &s[:cap(s)][0]
	a.Put(s)
	// Any size in (64, 128] lands in the same class and must reuse the
	// same backing array.
	s2 := a.GetUninit(65)
	if &s2[:cap(s2)][0] != base {
		t.Fatal("same-class checkout did not reuse the pooled buffer")
	}
	a.Put(s2)

	st := a.Stats()
	if st.Gets != 2 || st.Puts != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 gets / 2 puts / 1 hit / 1 miss", st)
	}
	if st.Outstanding != 0 || st.OutstandingElems != 0 {
		t.Fatalf("outstanding = %d (%d elems), want 0", st.Outstanding, st.OutstandingElems)
	}
}

func TestZeroLengthCheckout(t *testing.T) {
	a := New()
	if s := a.Get(0); s != nil {
		t.Fatal("Get(0) should be nil")
	}
	a.Put(nil) // must be a no-op, not a double return
	if st := a.Stats(); st.Gets != 0 || st.DoubleReturns != 0 {
		t.Fatalf("stats after zero-length ops = %+v", st)
	}
}

func TestDoubleReturnDetected(t *testing.T) {
	a := New()
	s := a.Get(8)
	a.Put(s)
	a.Put(s) // double return: dropped and counted
	st := a.Stats()
	if st.DoubleReturns != 1 {
		t.Fatalf("DoubleReturns = %d, want 1", st.DoubleReturns)
	}
	if st.Puts != 1 {
		t.Fatalf("Puts = %d, want 1 (the double return must not count)", st.Puts)
	}
	// The pool must not now hand the same buffer out twice.
	s1, s2 := a.GetUninit(8), a.GetUninit(8)
	if &s1[0] == &s2[0] {
		t.Fatal("double return poisoned the pool: one buffer checked out twice")
	}
	a.Put(s1)
	a.Put(s2)
}

func TestForeignSliceRejected(t *testing.T) {
	a := New()
	foreign := make([]field.Element, 16)
	a.Put(foreign)
	if st := a.Stats(); st.DoubleReturns != 1 || st.Puts != 0 {
		t.Fatalf("stats after foreign Put = %+v", st)
	}
}

func TestPrefixResliceReturn(t *testing.T) {
	// The sumcheck fold halves its DP arrays in place, so Put must accept
	// a prefix reslice of the original checkout.
	a := New()
	s := a.Get(32)
	folded := s[:4]
	a.Put(folded)
	st := a.Stats()
	if st.Puts != 1 || st.DoubleReturns != 0 || st.Outstanding != 0 {
		t.Fatalf("stats after prefix return = %+v", st)
	}
	if st.OutstandingElems != 0 {
		t.Fatalf("OutstandingElems = %d, want 0 (accounting keyed on checkout size)", st.OutstandingElems)
	}
}

func TestConcurrentCheckoutReturn(t *testing.T) {
	// Hammer one arena from the par worker pool (run under -race). Each
	// iteration checks a buffer out, writes a sentinel, verifies it, and
	// returns it — overlap between workers would trip the race detector
	// or the sentinel check.
	a := New()
	const iters = 4096
	err := par.ForErrCtx(context.Background(), iters, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			n := 1 + i%257
			s := a.Get(n)
			tag := field.New(uint64(i + 1))
			for j := range s {
				s[j] = tag
			}
			for j := range s {
				if s[j] != tag {
					t.Errorf("iter %d: buffer shared between workers", i)
				}
			}
			a.Put(s)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Gets != iters || st.Puts != iters {
		t.Fatalf("gets/puts = %d/%d, want %d each", st.Gets, st.Puts, iters)
	}
	if st.Outstanding != 0 || st.OutstandingElems != 0 || st.DoubleReturns != 0 {
		t.Fatalf("post-run stats = %+v, want balanced", st)
	}
}

func TestLeakAccounting(t *testing.T) {
	a := New()
	held := a.Get(48)
	st := a.Stats()
	if st.Outstanding != 1 || st.OutstandingElems != 48 {
		t.Fatalf("outstanding = %d (%d elems), want 1 (48)", st.Outstanding, st.OutstandingElems)
	}
	a.Put(held)
	if st := a.Stats(); st.Outstanding != 0 || st.OutstandingElems != 0 {
		t.Fatalf("outstanding after return = %+v", st)
	}
}

func TestStatsSub(t *testing.T) {
	a := New()
	before := a.Stats()
	s := a.Get(8)
	a.Put(s)
	d := a.Stats().Sub(before)
	if d.Gets != 1 || d.Puts != 1 || d.Outstanding != 0 {
		t.Fatalf("delta = %+v, want 1 get / 1 put / 0 outstanding", d)
	}
}
