// Package arena is a size-classed, race-safe pool of []field.Element
// scratch buffers with checkout/return discipline and leak accounting —
// the software analogue of NoCap's explicitly managed register-file
// banks: hot-loop operands live in recycled, known-size buffers instead
// of being allocated (and garbage-collected) per kernel call.
//
// Discipline:
//
//   - Get/GetUninit check a buffer out; Put returns it. The caller that
//     checks a buffer out owns it and is responsible for exactly one Put.
//   - Buffers must never be Put while still referenced — returned memory
//     is recycled and will be overwritten by the next checkout.
//   - Put accepts the original slice or any prefix reslice of it — down
//     to and including a zero-length prefix (the sumcheck fold halves
//     slices in place, and a fold can reach length zero); ownership is
//     keyed on the backing array's base pointer, which a prefix reslice
//     preserves.
//   - Memory that escapes into long-lived values (proofs, commitments)
//     must come from plain make, never from the arena.
//
// Misuse is detected, not trusted: a Put of a slice that is not checked
// out (double return, foreign slice) is dropped and counted in
// Stats.DoubleReturns rather than poisoning the pool, and
// Stats.Outstanding exposes the live-checkout count so tests can assert
// leak-freedom around a proving run.
//
// Attribution under concurrency: counters accumulate in the arena's own
// aggregate sink and, when a checkout is made through GetCtx/GetUninitCtx
// with a Collector attached to the context (WithCollector), in that
// per-run collector too. The collector is recorded on the checkout, so
// the matching Put credits the same run no matter which goroutine or
// context performs it.
package arena

import (
	"context"
	"math/bits"
	"sync"
	"sync/atomic"
	"unsafe"

	"nocap/internal/field"
)

// numClasses covers every power-of-two capacity addressable on a 64-bit
// machine; classes large enough to matter simply fail in make like any
// other allocation.
const numClasses = 64

// Collector accumulates one run's checkout/return counters. The zero
// value is ready to use; all methods are safe for concurrent use.
type Collector struct {
	gets, puts, hits, misses atomic.Int64
	outstandingElems         atomic.Int64
}

// Snapshot reads the collector's current cumulative counters.
// DoubleReturns is always zero in a per-run collector: a rejected Put
// has no checkout record, so it cannot be attributed to any run and is
// counted only in the arena's aggregate Stats.
func (c *Collector) Snapshot() Stats {
	gets := c.gets.Load()
	puts := c.puts.Load()
	return Stats{
		Gets:             gets,
		Puts:             puts,
		Hits:             c.hits.Load(),
		Misses:           c.misses.Load(),
		Outstanding:      gets - puts,
		OutstandingElems: c.outstandingElems.Load(),
	}
}

// AddStats credits a whole Stats delta to the collector without touching
// the arena's aggregate counters. Batched proving uses it to hand each
// batch member its share of checkouts made once under a shared plan
// collector (which already hit the aggregate); Outstanding is derived
// from Gets−Puts at snapshot time, so only the raw counters are applied.
func (c *Collector) AddStats(s Stats) {
	c.gets.Add(s.Gets)
	c.puts.Add(s.Puts)
	c.hits.Add(s.Hits)
	c.misses.Add(s.Misses)
	c.outstandingElems.Add(s.OutstandingElems)
}

// collectorKey carries a *Collector in a context.
type collectorKey struct{}

// WithCollector returns a context that attributes all arena checkouts
// made under it (via GetCtx/GetUninitCtx) — and their eventual returns —
// to c, in addition to the arena's aggregate counters.
func WithCollector(ctx context.Context, c *Collector) context.Context {
	return context.WithValue(ctx, collectorKey{}, c)
}

// FromContext returns the collector attached to ctx, or nil.
func FromContext(ctx context.Context) *Collector {
	if ctx == nil {
		return nil
	}
	c, _ := ctx.Value(collectorKey{}).(*Collector)
	return c
}

// checkout records one live buffer: the boxed full-capacity slice to
// recycle on return (boxed so Put re-pools the same pointer without
// allocating), its size class, the checked-out length for element
// accounting, and the per-run collector to credit on return (nil for
// unattributed checkouts).
type checkout struct {
	box   *[]field.Element
	class int
	n     int
	col   *Collector
}

// Arena is one pool instance. The zero value is not usable; call New.
// All methods are safe for concurrent use.
type Arena struct {
	pools [numClasses]sync.Pool // each stores *[]field.Element with len == cap == 1<<class

	mu   sync.Mutex
	live map[*field.Element]checkout

	gets, puts, hits, misses, doubleReturns atomic.Int64
	outstandingElems                        atomic.Int64
}

// New returns an empty arena.
func New() *Arena {
	return &Arena{live: make(map[*field.Element]checkout)}
}

// Default is the process-wide arena the prover packages share.
var Default = New()

// Get checks out a zeroed buffer of length n (nil if n == 0).
func (a *Arena) Get(n int) []field.Element {
	return a.GetCtx(context.Background(), n)
}

// GetCtx is Get with per-run attribution: the checkout (and its eventual
// return) is credited to the collector carried by ctx, if any.
func (a *Arena) GetCtx(ctx context.Context, n int) []field.Element {
	s := a.GetUninitCtx(ctx, n)
	clear(s)
	return s
}

// GetUninit checks out a buffer of length n with arbitrary contents —
// for callers that overwrite every entry before reading any. Capacity is
// the size class (next power of two ≥ n).
func (a *Arena) GetUninit(n int) []field.Element {
	return a.GetUninitCtx(context.Background(), n)
}

// GetUninitCtx is GetUninit with per-run attribution via the context's
// collector.
func (a *Arena) GetUninitCtx(ctx context.Context, n int) []field.Element {
	if n <= 0 {
		return nil
	}
	col := FromContext(ctx)
	a.gets.Add(1)
	a.outstandingElems.Add(int64(n))
	if col != nil {
		col.gets.Add(1)
		col.outstandingElems.Add(int64(n))
	}
	class := bits.Len(uint(n - 1)) // ceil(log2 n); n=1 → class 0
	var box *[]field.Element
	if v := a.pools[class].Get(); v != nil {
		a.hits.Add(1)
		if col != nil {
			col.hits.Add(1)
		}
		box = v.(*[]field.Element)
	} else {
		a.misses.Add(1)
		if col != nil {
			col.misses.Add(1)
		}
		full := make([]field.Element, 1<<class)
		box = &full
	}
	s := (*box)[:n]
	a.mu.Lock()
	a.live[&s[0]] = checkout{box: box, class: class, n: n, col: col}
	a.mu.Unlock()
	return s
}

// Put returns a checked-out buffer (or any prefix reslice of one, down
// to length zero) to the pool. Ownership is keyed on the backing array's
// base pointer, which survives prefix reslicing even to s[:0], so a
// caller that folds its scratch to empty still releases the checkout.
// Put(nil) is a no-op, so unconditional deferred returns of
// possibly-empty checkouts are fine. Returning a slice the arena does
// not currently track — a double return or a foreign slice — increments
// DoubleReturns and is otherwise ignored.
func (a *Arena) Put(s []field.Element) {
	if cap(s) == 0 {
		// nil, or a zero-capacity slice: no backing array, so nothing
		// can have been checked out through it.
		return
	}
	// unsafe.SliceData returns the base pointer of the backing array even
	// for a zero-length prefix (where &s[0] would panic); for len(s) > 0
	// it is identical to &s[0], the key GetUninitCtx stored.
	key := unsafe.SliceData(s)
	a.mu.Lock()
	co, ok := a.live[key]
	if ok {
		delete(a.live, key)
	}
	a.mu.Unlock()
	if !ok {
		a.doubleReturns.Add(1)
		return
	}
	a.puts.Add(1)
	a.outstandingElems.Add(-int64(co.n))
	if co.col != nil {
		co.col.puts.Add(1)
		co.col.outstandingElems.Add(-int64(co.n))
	}
	a.pools[co.class].Put(co.box)
}

// Stats is a snapshot of the arena's cumulative accounting counters.
type Stats struct {
	// Gets and Puts count successful checkouts and returns.
	Gets, Puts int64
	// Hits and Misses split Gets by whether the pool had a recycled
	// buffer of the right class.
	Hits, Misses int64
	// DoubleReturns counts rejected Puts (double return or foreign
	// slice). Always zero in a correct program, and always zero in
	// per-run Collector snapshots (rejected Puts have no checkout to
	// attribute).
	DoubleReturns int64
	// Outstanding is the number of live checkouts (Gets − Puts);
	// OutstandingElems is their total element count. Both return to
	// their pre-run values when a proving run leaks nothing.
	Outstanding      int64
	OutstandingElems int64
}

// Stats reads the current counters.
func (a *Arena) Stats() Stats {
	gets := a.gets.Load()
	puts := a.puts.Load()
	return Stats{
		Gets:             gets,
		Puts:             puts,
		Hits:             a.hits.Load(),
		Misses:           a.misses.Load(),
		DoubleReturns:    a.doubleReturns.Load(),
		Outstanding:      gets - puts,
		OutstandingElems: a.outstandingElems.Load(),
	}
}

// Sub returns the counter difference s − o, for attributing arena
// activity to one run bracketed by two snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Gets:             s.Gets - o.Gets,
		Puts:             s.Puts - o.Puts,
		Hits:             s.Hits - o.Hits,
		Misses:           s.Misses - o.Misses,
		DoubleReturns:    s.DoubleReturns - o.DoubleReturns,
		Outstanding:      s.Outstanding - o.Outstanding,
		OutstandingElems: s.OutstandingElems - o.OutstandingElems,
	}
}

// Add returns the counter sum s + o, for combining per-run collectors
// when checking them against the aggregate sink.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Gets:             s.Gets + o.Gets,
		Puts:             s.Puts + o.Puts,
		Hits:             s.Hits + o.Hits,
		Misses:           s.Misses + o.Misses,
		DoubleReturns:    s.DoubleReturns + o.DoubleReturns,
		Outstanding:      s.Outstanding + o.Outstanding,
		OutstandingElems: s.OutstandingElems + o.OutstandingElems,
	}
}

// shareOf returns share i of total split k ways so the k shares sum to
// total exactly (floor division, remainder to the lowest-indexed shares).
func shareOf(total int64, k, i int) int64 {
	q, r := total/int64(k), total%int64(k)
	if int64(i) < r {
		q++
	}
	return q
}

// Split partitions s into k shares that sum back to s exactly. Batched
// proving attributes shared-plan arena activity proportionally — batch
// members are structurally identical, so the proportional share is an
// even split, with integer remainders going to the lowest-indexed
// members so sum(shares) == s holds counter-for-counter.
func (s Stats) Split(k int) []Stats {
	if k <= 0 {
		return nil
	}
	out := make([]Stats, k)
	for i := range out {
		out[i] = Stats{
			Gets:             shareOf(s.Gets, k, i),
			Puts:             shareOf(s.Puts, k, i),
			Hits:             shareOf(s.Hits, k, i),
			Misses:           shareOf(s.Misses, k, i),
			DoubleReturns:    shareOf(s.DoubleReturns, k, i),
			Outstanding:      shareOf(s.Outstanding, k, i),
			OutstandingElems: shareOf(s.OutstandingElems, k, i),
		}
	}
	return out
}

// Get checks a zeroed buffer out of the Default arena.
func Get(n int) []field.Element { return Default.Get(n) }

// GetCtx checks a zeroed buffer out of the Default arena, attributed to
// the context's collector.
func GetCtx(ctx context.Context, n int) []field.Element { return Default.GetCtx(ctx, n) }

// GetUninit checks an uninitialized buffer out of the Default arena.
func GetUninit(n int) []field.Element { return Default.GetUninit(n) }

// GetUninitCtx checks an uninitialized buffer out of the Default arena,
// attributed to the context's collector.
func GetUninitCtx(ctx context.Context, n int) []field.Element { return Default.GetUninitCtx(ctx, n) }

// Put returns a buffer to the Default arena.
func Put(s []field.Element) { Default.Put(s) }

// ReadStats reads the Default arena's counters.
func ReadStats() Stats { return Default.Stats() }
