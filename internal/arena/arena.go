// Package arena is a size-classed, race-safe pool of []field.Element
// scratch buffers with checkout/return discipline and leak accounting —
// the software analogue of NoCap's explicitly managed register-file
// banks: hot-loop operands live in recycled, known-size buffers instead
// of being allocated (and garbage-collected) per kernel call.
//
// Discipline:
//
//   - Get/GetUninit check a buffer out; Put returns it. The caller that
//     checks a buffer out owns it and is responsible for exactly one Put.
//   - Buffers must never be Put while still referenced — returned memory
//     is recycled and will be overwritten by the next checkout.
//   - Put accepts the original slice or any prefix reslice of it (the
//     sumcheck fold halves slices in place); ownership is keyed on the
//     backing array's base pointer.
//   - Memory that escapes into long-lived values (proofs, commitments)
//     must come from plain make, never from the arena.
//
// Misuse is detected, not trusted: a Put of a slice that is not checked
// out (double return, foreign slice) is dropped and counted in
// Stats.DoubleReturns rather than poisoning the pool, and
// Stats.Outstanding exposes the live-checkout count so tests can assert
// leak-freedom around a proving run.
package arena

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"nocap/internal/field"
)

// numClasses covers every power-of-two capacity addressable on a 64-bit
// machine; classes large enough to matter simply fail in make like any
// other allocation.
const numClasses = 64

// checkout records one live buffer: the boxed full-capacity slice to
// recycle on return (boxed so Put re-pools the same pointer without
// allocating), its size class, and the checked-out length for element
// accounting.
type checkout struct {
	box   *[]field.Element
	class int
	n     int
}

// Arena is one pool instance. The zero value is not usable; call New.
// All methods are safe for concurrent use.
type Arena struct {
	pools [numClasses]sync.Pool // each stores *[]field.Element with len == cap == 1<<class

	mu   sync.Mutex
	live map[*field.Element]checkout

	gets, puts, hits, misses, doubleReturns atomic.Int64
	outstandingElems                        atomic.Int64
}

// New returns an empty arena.
func New() *Arena {
	return &Arena{live: make(map[*field.Element]checkout)}
}

// Default is the process-wide arena the prover packages share.
var Default = New()

// Get checks out a zeroed buffer of length n (nil if n == 0).
func (a *Arena) Get(n int) []field.Element {
	s := a.GetUninit(n)
	clear(s)
	return s
}

// GetUninit checks out a buffer of length n with arbitrary contents —
// for callers that overwrite every entry before reading any. Capacity is
// the size class (next power of two ≥ n).
func (a *Arena) GetUninit(n int) []field.Element {
	if n <= 0 {
		return nil
	}
	a.gets.Add(1)
	a.outstandingElems.Add(int64(n))
	class := bits.Len(uint(n - 1)) // ceil(log2 n); n=1 → class 0
	var box *[]field.Element
	if v := a.pools[class].Get(); v != nil {
		a.hits.Add(1)
		box = v.(*[]field.Element)
	} else {
		a.misses.Add(1)
		full := make([]field.Element, 1<<class)
		box = &full
	}
	s := (*box)[:n]
	a.mu.Lock()
	a.live[&s[0]] = checkout{box: box, class: class, n: n}
	a.mu.Unlock()
	return s
}

// Put returns a checked-out buffer (or any prefix reslice of one) to the
// pool. Put(nil) is a no-op, so unconditional deferred returns of
// possibly-empty checkouts are fine. Returning a slice the arena does
// not currently track — a double return or a foreign slice — increments
// DoubleReturns and is otherwise ignored.
func (a *Arena) Put(s []field.Element) {
	if len(s) == 0 {
		return
	}
	key := &s[0]
	a.mu.Lock()
	co, ok := a.live[key]
	if ok {
		delete(a.live, key)
	}
	a.mu.Unlock()
	if !ok {
		a.doubleReturns.Add(1)
		return
	}
	a.puts.Add(1)
	a.outstandingElems.Add(-int64(co.n))
	a.pools[co.class].Put(co.box)
}

// Stats is a snapshot of the arena's cumulative accounting counters.
type Stats struct {
	// Gets and Puts count successful checkouts and returns.
	Gets, Puts int64
	// Hits and Misses split Gets by whether the pool had a recycled
	// buffer of the right class.
	Hits, Misses int64
	// DoubleReturns counts rejected Puts (double return or foreign
	// slice). Always zero in a correct program.
	DoubleReturns int64
	// Outstanding is the number of live checkouts (Gets − Puts);
	// OutstandingElems is their total element count. Both return to
	// their pre-run values when a proving run leaks nothing.
	Outstanding      int64
	OutstandingElems int64
}

// Stats reads the current counters.
func (a *Arena) Stats() Stats {
	gets := a.gets.Load()
	puts := a.puts.Load()
	return Stats{
		Gets:             gets,
		Puts:             puts,
		Hits:             a.hits.Load(),
		Misses:           a.misses.Load(),
		DoubleReturns:    a.doubleReturns.Load(),
		Outstanding:      gets - puts,
		OutstandingElems: a.outstandingElems.Load(),
	}
}

// Sub returns the counter difference s − o, for attributing arena
// activity to one run bracketed by two snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Gets:             s.Gets - o.Gets,
		Puts:             s.Puts - o.Puts,
		Hits:             s.Hits - o.Hits,
		Misses:           s.Misses - o.Misses,
		DoubleReturns:    s.DoubleReturns - o.DoubleReturns,
		Outstanding:      s.Outstanding - o.Outstanding,
		OutstandingElems: s.OutstandingElems - o.OutstandingElems,
	}
}

// Get checks a zeroed buffer out of the Default arena.
func Get(n int) []field.Element { return Default.Get(n) }

// GetUninit checks an uninitialized buffer out of the Default arena.
func GetUninit(n int) []field.Element { return Default.GetUninit(n) }

// Put returns a buffer to the Default arena.
func Put(s []field.Element) { Default.Put(s) }

// ReadStats reads the Default arena's counters.
func ReadStats() Stats { return Default.Stats() }
