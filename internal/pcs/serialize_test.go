package pcs

import (
	"testing"

	"nocap/internal/field"
	"nocap/internal/transcript"
	"nocap/internal/wire"
)

func TestCommitmentSerializeRoundTrip(t *testing.T) {
	st, err := Commit(testParams(false), randVec(1<<8, 50))
	if err != nil {
		t.Fatal(err)
	}
	w := &wire.Writer{}
	st.Commitment().AppendTo(w)
	got, err := ReadCommitment(wire.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *st.Commitment() {
		t.Fatalf("round trip: %+v vs %+v", got, st.Commitment())
	}
}

func TestReadCommitmentErrors(t *testing.T) {
	if _, err := ReadCommitment(wire.NewReader([]byte{1})); err == nil {
		t.Fatal("truncated digest accepted")
	}
	w := &wire.Writer{}
	w.Digest([32]byte{})
	w.U64(1 << 50) // implausible geometry
	w.U64(0)
	w.U64(0)
	w.U64(0)
	if _, err := ReadCommitment(wire.NewReader(w.Bytes())); err == nil {
		t.Fatal("implausible geometry accepted")
	}
	w = &wire.Writer{}
	w.Digest([32]byte{})
	w.U64(8) // then truncate
	if _, err := ReadCommitment(wire.NewReader(w.Bytes())); err == nil {
		t.Fatal("truncated geometry accepted")
	}
}

func TestOpeningProofSerializeRoundTrip(t *testing.T) {
	for _, zk := range []bool{false, true} {
		params := testParams(zk)
		st, err := Commit(params, randVec(1<<8, 51))
		if err != nil {
			t.Fatal(err)
		}
		points := [][]field.Element{randPoint(8, 52), randPoint(8, 53)}
		proof, values, err := st.Open(transcript.New("ser"), points)
		if err != nil {
			t.Fatal(err)
		}
		w := &wire.Writer{}
		proof.AppendTo(w)
		got, err := ReadOpeningProof(wire.NewReader(w.Bytes()))
		if err != nil {
			t.Fatalf("zk=%v decode: %v", zk, err)
		}
		// The decoded proof must verify.
		if err := Verify(params, st.Commitment(), transcript.New("ser"), points, values, got); err != nil {
			t.Fatalf("zk=%v: decoded proof rejected: %v", zk, err)
		}
	}
}

func TestReadOpeningProofTruncations(t *testing.T) {
	st, err := Commit(testParams(true), randVec(1<<8, 54))
	if err != nil {
		t.Fatal(err)
	}
	proof, _, err := st.Open(transcript.New("ser"), [][]field.Element{randPoint(8, 55)})
	if err != nil {
		t.Fatal(err)
	}
	w := &wire.Writer{}
	proof.AppendTo(w)
	data := w.Bytes()
	for _, cut := range []int{0, 4, 16, len(data) / 3, len(data) - 3} {
		if _, err := ReadOpeningProof(wire.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
