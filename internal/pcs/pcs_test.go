package pcs

import (
	"errors"
	"math/rand"
	"testing"

	"nocap/internal/code"
	"nocap/internal/field"
	"nocap/internal/poly"
	"nocap/internal/transcript"
)

func testParams(zk bool) Params {
	p := DefaultParams()
	p.Rows = 8 // keep tests small; paper value 128 exercised separately
	p.ZK = zk
	return p
}

func randVec(n int, seed int64) []field.Element {
	rng := rand.New(rand.NewSource(seed))
	v := make([]field.Element, n)
	for i := range v {
		v[i] = field.New(rng.Uint64())
	}
	return v
}

func randPoint(n int, seed int64) []field.Element {
	return randVec(n, seed)
}

func roundTrip(t *testing.T, params Params, vec []field.Element, points [][]field.Element) (*Commitment, []field.Element) {
	t.Helper()
	st, err := Commit(params, vec)
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	proof, values, err := st.Open(transcript.New("pcs-test"), points)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Values must be the true MLE evaluations.
	m := poly.NewMLE(vec)
	for i, pt := range points {
		if want := m.Evaluate(pt); values[i] != want {
			t.Fatalf("point %d: value %v, want %v", i, values[i], want)
		}
	}
	if err := Verify(params, st.Commitment(), transcript.New("pcs-test"), points, values, proof); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return st.Commitment(), values
}

func TestRoundTripNonZK(t *testing.T) {
	vec := randVec(1<<8, 1)
	roundTrip(t, testParams(false), vec, [][]field.Element{randPoint(8, 2)})
}

func TestRoundTripZK(t *testing.T) {
	vec := randVec(1<<8, 3)
	roundTrip(t, testParams(true), vec, [][]field.Element{randPoint(8, 4)})
}

func TestMultiPointSharedColumns(t *testing.T) {
	vec := randVec(1<<9, 5)
	points := [][]field.Element{randPoint(9, 6), randPoint(9, 7), randPoint(9, 8)}
	for _, zk := range []bool{false, true} {
		st, err := Commit(testParams(zk), vec)
		if err != nil {
			t.Fatal(err)
		}
		proof, values, err := st.Open(transcript.New("pcs-test"), points)
		if err != nil {
			t.Fatal(err)
		}
		// Column openings must be shared: exactly Queries() of them
		// regardless of the point count (paper §VII-A).
		if len(proof.Columns) != testParams(zk).Code.Queries() {
			t.Fatalf("columns not shared: %d", len(proof.Columns))
		}
		if err := Verify(testParams(zk), st.Commitment(), transcript.New("pcs-test"), points, values, proof); err != nil {
			t.Fatalf("zk=%v: %v", zk, err)
		}
	}
}

func TestPaperRows128(t *testing.T) {
	params := DefaultParams()
	params.ZK = false
	vec := randVec(1<<10, 9)
	roundTrip(t, params, vec, [][]field.Element{randPoint(10, 10)})
}

func TestExpanderCodeVariant(t *testing.T) {
	params := testParams(false)
	params.Code = code.NewExpander(17)
	vec := randVec(1<<8, 11)
	roundTrip(t, params, vec, [][]field.Element{randPoint(8, 12)})
}

func TestRejectsWrongValue(t *testing.T) {
	params := testParams(false)
	vec := randVec(1<<8, 13)
	st, _ := Commit(params, vec)
	points := [][]field.Element{randPoint(8, 14)}
	proof, values, _ := st.Open(transcript.New("pcs-test"), points)
	values[0] = field.Add(values[0], field.One)
	err := Verify(params, st.Commitment(), transcript.New("pcs-test"), points, values, proof)
	if err == nil {
		t.Fatal("wrong value accepted")
	}
}

func TestRejectsTamperedEvalVector(t *testing.T) {
	params := testParams(false)
	vec := randVec(1<<8, 15)
	st, _ := Commit(params, vec)
	points := [][]field.Element{randPoint(8, 16)}
	proof, values, _ := st.Open(transcript.New("pcs-test"), points)
	proof.EvalVectors[0][3] = field.Add(proof.EvalVectors[0][3], field.One)
	if Verify(params, st.Commitment(), transcript.New("pcs-test"), points, values, proof) == nil {
		t.Fatal("tampered eval vector accepted")
	}
}

func TestRejectsTamperedColumn(t *testing.T) {
	params := testParams(false)
	vec := randVec(1<<8, 17)
	st, _ := Commit(params, vec)
	points := [][]field.Element{randPoint(8, 18)}
	proof, values, _ := st.Open(transcript.New("pcs-test"), points)
	proof.Columns[0][0] = field.Add(proof.Columns[0][0], field.One)
	err := Verify(params, st.Commitment(), transcript.New("pcs-test"), points, values, proof)
	if !errors.Is(err, ErrColumnAuth) && err == nil {
		t.Fatal("tampered column accepted")
	}
}

func TestRejectsForeignCommitment(t *testing.T) {
	params := testParams(false)
	vecA, vecB := randVec(1<<8, 19), randVec(1<<8, 20)
	stA, _ := Commit(params, vecA)
	stB, _ := Commit(params, vecB)
	points := [][]field.Element{randPoint(8, 21)}
	proof, values, _ := stA.Open(transcript.New("pcs-test"), points)
	if Verify(params, stB.Commitment(), transcript.New("pcs-test"), points, values, proof) == nil {
		t.Fatal("proof accepted under foreign commitment")
	}
}

func TestRejectsWrongPoint(t *testing.T) {
	params := testParams(false)
	vec := randVec(1<<8, 22)
	st, _ := Commit(params, vec)
	points := [][]field.Element{randPoint(8, 23)}
	proof, values, _ := st.Open(transcript.New("pcs-test"), points)
	other := [][]field.Element{randPoint(8, 24)}
	if Verify(params, st.Commitment(), transcript.New("pcs-test"), other, values, proof) == nil {
		t.Fatal("proof accepted for a different point")
	}
}

func TestZKVectorsAreMasked(t *testing.T) {
	// With ZK, the transmitted eval vector must not equal the raw row
	// combination of the data: two commits to the same data produce
	// different opening vectors (fresh randomness).
	params := testParams(true)
	vec := randVec(1<<8, 25)
	points := [][]field.Element{randPoint(8, 26)}
	st1, _ := Commit(params, vec)
	st2, _ := Commit(params, vec)
	p1, v1, _ := st1.Open(transcript.New("pcs-test"), points)
	p2, v2, _ := st2.Open(transcript.New("pcs-test"), points)
	if v1[0] != v2[0] {
		t.Fatal("same polynomial, different values")
	}
	same := true
	for i := range p1.EvalVectors[0] {
		if p1.EvalVectors[0][i] != p2.EvalVectors[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("ZK eval vectors identical across fresh commitments")
	}
}

func TestMaxPointsEnforced(t *testing.T) {
	params := testParams(true)
	params.MaxPoints = 2
	st, _ := Commit(params, randVec(1<<8, 27))
	pts := [][]field.Element{randPoint(8, 28), randPoint(8, 29), randPoint(8, 30)}
	if _, _, err := st.Open(transcript.New("pcs-test"), pts); err == nil {
		t.Fatal("MaxPoints not enforced")
	}
}

func TestCommitErrors(t *testing.T) {
	params := testParams(false)
	if _, err := Commit(params, randVec(4, 31)); err == nil {
		t.Fatal("vector shorter than Rows accepted")
	}
	if _, err := Commit(params, randVec(100, 32)); err == nil {
		t.Fatal("non-power-of-two vector accepted")
	}
	bad := params
	bad.Rows = 3
	if _, err := Commit(bad, randVec(1<<8, 33)); err == nil {
		t.Fatal("bad Rows accepted")
	}
}

func TestVerifyMalformedShapes(t *testing.T) {
	params := testParams(false)
	vec := randVec(1<<8, 34)
	st, _ := Commit(params, vec)
	points := [][]field.Element{randPoint(8, 35)}
	proof, values, _ := st.Open(transcript.New("pcs-test"), points)

	cut := *proof
	cut.Columns = cut.Columns[:10]
	if err := Verify(params, st.Commitment(), transcript.New("pcs-test"), points, values, &cut); !errors.Is(err, ErrMalformed) {
		t.Fatalf("truncated columns: %v", err)
	}
	if err := Verify(params, st.Commitment(), transcript.New("pcs-test"), points, nil, proof); !errors.Is(err, ErrMalformed) {
		t.Fatal("missing values accepted")
	}
}

func TestProofSizeAccounting(t *testing.T) {
	params := testParams(false)
	vec := randVec(1<<8, 36)
	st, _ := Commit(params, vec)
	points := [][]field.Element{randPoint(8, 37)}
	proof, _, _ := st.Open(transcript.New("pcs-test"), points)
	if proof.SizeBytes() <= 0 {
		t.Fatal("proof size not accounted")
	}
	if st.Commitment().SizeBytes() != 32+32 {
		t.Fatalf("commitment size = %d", st.Commitment().SizeBytes())
	}
}

func BenchmarkCommit64k(b *testing.B) {
	params := DefaultParams()
	params.ZK = false
	vec := randVec(1<<16, 38)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Commit(params, vec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpen64k(b *testing.B) {
	params := DefaultParams()
	params.ZK = false
	vec := randVec(1<<16, 39)
	st, _ := Commit(params, vec)
	points := [][]field.Element{randPoint(16, 40)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := st.Open(transcript.New("pcs-bench"), points); err != nil {
			b.Fatal(err)
		}
	}
}
