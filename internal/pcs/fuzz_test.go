package pcs

import (
	"testing"

	"nocap/internal/field"
	"nocap/internal/transcript"
	"nocap/internal/wire"
	"nocap/internal/zkerr"
)

// FuzzReadOpeningProof ensures arbitrary bytes never panic the opening
// decoder, that every rejection is a taxonomy error, and that anything
// which decodes can be fed to Verify without crashing.
func FuzzReadOpeningProof(f *testing.F) {
	params := testParams(true)
	st, err := Commit(params, randVec(1<<8, 71))
	if err != nil {
		f.Fatal(err)
	}
	points := [][]field.Element{randPoint(8, 72)}
	proof, values, err := st.Open(transcript.New("fuzz"), points)
	if err != nil {
		f.Fatal(err)
	}
	w := &wire.Writer{}
	proof.AppendTo(w)
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	comm := st.Commitment()
	f.Fuzz(func(t *testing.T, b []byte) {
		got, err := ReadOpeningProof(wire.NewReader(b))
		if err != nil {
			if !zkerr.InTaxonomy(err) {
				t.Fatalf("decode error outside taxonomy: %v", err)
			}
			return
		}
		if err := Verify(params, comm, transcript.New("fuzz"), points, values, got); err != nil &&
			!zkerr.InTaxonomy(err) {
			t.Fatalf("verify error outside taxonomy: %v", err)
		}
	})
}

// FuzzReadCommitment ensures the commitment header decoder is total:
// typed error or bounded-geometry commitment, never a panic.
func FuzzReadCommitment(f *testing.F) {
	st, err := Commit(testParams(false), randVec(1<<8, 73))
	if err != nil {
		f.Fatal(err)
	}
	w := &wire.Writer{}
	st.Commitment().AppendTo(w)
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		c, err := ReadCommitment(wire.NewReader(b))
		if err != nil {
			if !zkerr.InTaxonomy(err) {
				t.Fatalf("error outside taxonomy: %v", err)
			}
			return
		}
		if c.NumVars < 0 || c.Rows < 0 || c.Cols < 0 || c.MsgLen < 0 {
			t.Fatalf("decoder produced negative geometry: %+v", c)
		}
	})
}
