package pcs

import (
	"encoding/binary"
	"errors"
	"testing"

	"nocap/internal/advtest"
	"nocap/internal/field"
	"nocap/internal/transcript"
	"nocap/internal/wire"
	"nocap/internal/zkerr"
)

// encodeOpening returns a valid serialized opening proof plus its
// context, shared by the corruption tables below.
func encodeOpening(t *testing.T, zk bool) (data []byte, params Params, comm *Commitment,
	points [][]field.Element, values []field.Element) {
	t.Helper()
	params = testParams(zk)
	st, err := Commit(params, randVec(1<<8, 61))
	if err != nil {
		t.Fatal(err)
	}
	points = [][]field.Element{randPoint(8, 62)}
	proof, values, err := st.Open(transcript.New("corrupt"), points)
	if err != nil {
		t.Fatal(err)
	}
	w := &wire.Writer{}
	proof.AppendTo(w)
	return w.Bytes(), params, st.Commitment(), points, values
}

// TestReadOpeningProofCorruptionTable mirrors the spartan corruption
// tests for the pcs layer: every named corruption must produce a
// taxonomy error at decode, or a decoded proof that Verify rejects with
// a taxonomy error. Length-prefix inflation on every repeated structure
// (prox vectors, eval vectors, corrections, columns, paths) is bounded.
func TestReadOpeningProofCorruptionTable(t *testing.T) {
	data, _, _, _, _ := encodeOpening(t, true)

	inflate := func(off int) func([]byte) []byte {
		return func(b []byte) []byte {
			out := append([]byte(nil), b...)
			binary.LittleEndian.PutUint64(out[off:], 1<<40)
			return out
		}
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"truncate-mid", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncate-tail", func(b []byte) []byte { return b[:len(b)-1] }},
		// Offset 0 is the prox-vector count: the first repeated structure.
		{"inflate-prox-count", inflate(0)},
		// Offset 8 is the first prox vector's element count.
		{"inflate-first-vec-len", inflate(8)},
		{"non-canonical-elem", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			binary.LittleEndian.PutUint64(out[16:], field.Modulus+7)
			return out
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadOpeningProof(wire.NewReader(c.mutate(data)))
			if err == nil {
				t.Fatal("corruption accepted")
			}
			if !zkerr.InTaxonomy(err) {
				t.Fatalf("error outside taxonomy: %v", err)
			}
		})
	}
}

// TestOpeningProofAdversarialStream: the shared mutation engine over a
// full opening proof. Decode + Verify must never panic and must reject
// every content-altering mutation with a taxonomy error.
func TestOpeningProofAdversarialStream(t *testing.T) {
	for _, zk := range []bool{false, true} {
		data, params, comm, points, values := encodeOpening(t, zk)
		mut := advtest.NewMutator(data, 11)
		n := 2000
		if testing.Short() {
			n = 400
		}
		for i := 0; i < n; i++ {
			m := mut.Next()
			got, err := ReadOpeningProof(wire.NewReader(m.Data))
			if err != nil {
				if !zkerr.InTaxonomy(err) {
					t.Fatalf("zk=%v mutation %d (%v): decode error outside taxonomy: %v", zk, i, m.Kind, err)
				}
				continue
			}
			if err := Verify(params, comm, transcript.New("corrupt"), points, values, got); err != nil {
				if !zkerr.InTaxonomy(err) {
					t.Fatalf("zk=%v mutation %d (%v): verify error outside taxonomy: %v", zk, i, m.Kind, err)
				}
			}
			// Acceptance is fine here: mutations that only touch trailing
			// bytes not consumed by ReadOpeningProof leave the decoded
			// structure identical; the spartan-level Done() check owns
			// trailing-byte rejection.
		}
	}
}

// TestReadOpeningProofHonorsMaxOpenings bounds the repeated column/path
// structures by the caller-configured limit.
func TestReadOpeningProofHonorsMaxOpenings(t *testing.T) {
	data, _, _, _, _ := encodeOpening(t, false)
	lim := wire.DefaultLimits()
	lim.MaxOpenings = 2 // testParams opens more columns than this
	r, err := wire.NewReaderLimits(data, lim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadOpeningProof(r); !errors.Is(err, zkerr.ErrResourceLimit) {
		t.Fatalf("openings above limit accepted: %v", err)
	}
}

// TestReadCommitmentCorruptionTable: geometry bounds on the commitment
// header, classified as bad-commitment.
func TestReadCommitmentCorruptionTable(t *testing.T) {
	st, err := Commit(testParams(false), randVec(1<<8, 63))
	if err != nil {
		t.Fatal(err)
	}
	w := &wire.Writer{}
	st.Commitment().AppendTo(w)
	valid := w.Bytes()

	for _, c := range []struct {
		name string
		off  int
		val  uint64
		want error
	}{
		{"numvars-huge", 32, 1 << 50, zkerr.ErrBadCommitment},
		{"rows-huge", 40, 1<<40 + 1, zkerr.ErrBadCommitment},
		{"cols-huge", 48, 1 << 63, zkerr.ErrBadCommitment},
		{"msglen-huge", 56, ^uint64(0), zkerr.ErrBadCommitment},
	} {
		t.Run(c.name, func(t *testing.T) {
			out := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint64(out[c.off:], c.val)
			_, err := ReadCommitment(wire.NewReader(out))
			if !errors.Is(err, c.want) {
				t.Fatalf("want %v, got %v", c.want, err)
			}
		})
	}
}

// TestVerifyRejectsGeometryLies: a decoded commitment whose geometry
// disagrees with the agreed parameters must be rejected as
// ErrBadCommitment before any cryptographic work.
func TestVerifyRejectsGeometryLies(t *testing.T) {
	data, params, comm, points, values := encodeOpening(t, true)
	proof, err := ReadOpeningProof(wire.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	lies := []func(c Commitment) Commitment{
		func(c Commitment) Commitment { c.Rows *= 2; return c },
		func(c Commitment) Commitment { c.NumVars = 0; return c },
		func(c Commitment) Commitment { c.NumVars = 41; return c },
		func(c Commitment) Commitment { c.Cols = 0; return c },
		func(c Commitment) Commitment { c.Cols *= 4; return c },
		func(c Commitment) Commitment { c.MsgLen += 1; return c },
	}
	for i, lie := range lies {
		bad := lie(*comm)
		err := Verify(params, &bad, transcript.New("corrupt"), points, values, proof)
		if !errors.Is(err, zkerr.ErrBadCommitment) {
			t.Fatalf("lie %d: want ErrBadCommitment, got %v", i, err)
		}
	}
	if err := Verify(params, nil, transcript.New("corrupt"), points, values, proof); !errors.Is(err, zkerr.ErrMalformedProof) {
		t.Fatalf("nil commitment: %v", err)
	}
	if err := Verify(params, comm, transcript.New("corrupt"), points, values, nil); !errors.Is(err, zkerr.ErrMalformedProof) {
		t.Fatalf("nil proof: %v", err)
	}
}
