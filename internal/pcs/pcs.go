// Package pcs implements the Orion polynomial commitment scheme in its
// Shockwave/Brakedown form (paper §II-A, §V, §VII-A): the committed
// multilinear polynomial's evaluations are arranged into a 128-row
// matrix, each row is Reed-Solomon encoded (blowup 4), and a Merkle tree
// is built over the encoded columns. Openings combine rows linearly and
// spot-check 189 columns; four random proximity vectors establish that
// the committed matrix is close to the code, and all linear checks share
// one set of column openings (the optimization of [Brakedown] the paper
// adopts, §VII-A).
//
// Zero knowledge (Orion protocol 5 intent) is provided by (a) appending
// `Queries` random elements to every row before encoding, so any 189
// opened codeword columns are jointly uniform, and (b) one committed mask
// row per linear check, so the transmitted row combinations are uniform.
package pcs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"nocap/internal/arena"
	"nocap/internal/code"
	"nocap/internal/faultinject"
	"nocap/internal/field"
	"nocap/internal/hashfn"
	"nocap/internal/kernel"
	"nocap/internal/merkle"
	"nocap/internal/par"
	"nocap/internal/poly"
	"nocap/internal/transcript"
	"nocap/internal/zkerr"
)

// Registered fault-injection points at the commit/open/verify stage
// boundaries (chaos tests arm them by these names).
var (
	fiCommitEncode  = faultinject.Register("pcs.commit.encode")
	fiCommitLeaves  = faultinject.Register("pcs.commit.leaves")
	fiCommitTree    = faultinject.Register("pcs.commit.tree")
	fiOpenEval      = faultinject.Register("pcs.open.eval")
	fiOpenProx      = faultinject.Register("pcs.open.prox")
	fiOpenColumns   = faultinject.Register("pcs.open.columns")
	fiVerifyEncode  = faultinject.Register("pcs.verify.encode")
	fiVerifyColumns = faultinject.Register("pcs.verify.columns")
)

// ctxEncoder is the optional context-aware face of a code.Code; the
// production Reed-Solomon code implements it. encodeCtx falls back to
// the plain Encode for codes that do not (the expander baseline).
type ctxEncoder interface {
	EncodeCtx(ctx context.Context, msg []field.Element) ([]field.Element, error)
}

// intoEncoder is the allocation-free face: the codeword is written into
// caller-owned scratch of length Blowup()×len(msg).
type intoEncoder interface {
	EncodeIntoCtx(ctx context.Context, dst, msg []field.Element) error
}

// encodeCtx encodes one row under ctx when the code supports it.
func encodeCtx(ctx context.Context, c code.Code, msg []field.Element) ([]field.Element, error) {
	if ce, ok := c.(ctxEncoder); ok {
		return ce.EncodeCtx(ctx, msg)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.Encode(msg), nil
}

// encodeInto encodes one row into dst, using the code's in-place entry
// point when it has one and copying from a temporary codeword otherwise.
func encodeInto(ctx context.Context, c code.Code, dst, msg []field.Element) error {
	if ie, ok := c.(intoEncoder); ok {
		return ie.EncodeIntoCtx(ctx, dst, msg)
	}
	cw, err := encodeCtx(ctx, c, msg)
	if err != nil {
		return err
	}
	copy(dst, cw)
	return nil
}

// Params configures the scheme.
type Params struct {
	// Rows is the matrix height; the paper uses 128 (§VII-A).
	Rows int
	// Code is the row code; production is Reed-Solomon blowup 4.
	Code code.Code
	// NumProximity is the number of random combination vectors in the
	// proximity test; the paper uses 4 (§VII-A).
	NumProximity int
	// MaxPoints bounds the number of evaluation points one commitment can
	// be opened at (mask rows are committed up front). Spartan with 3
	// repetitions opens at 3 points.
	MaxPoints int
	// ZK enables the masking machinery.
	ZK bool
	// Hash is the hash engine for column leaves and the Merkle tree. nil
	// selects hashfn.Default() (the scalar sha3 engine), which keeps
	// commitments byte-identical to every earlier version. Prover and
	// verifier must agree on it, like every other field here.
	Hash hashfn.Engine
}

// Engine resolves the configured hash engine, defaulting to sha3.
func (p Params) Engine() hashfn.Engine {
	if p.Hash == nil {
		return hashfn.Default()
	}
	return p.Hash
}

// DefaultParams returns the paper's parameters (128 rows, RS-4, 4
// proximity vectors) with zero knowledge enabled.
func DefaultParams() Params {
	return Params{Rows: 128, Code: code.NewReedSolomon(), NumProximity: 4, MaxPoints: 8, ZK: true}
}

func (p Params) numMasks() int {
	if !p.ZK {
		return 0
	}
	return p.NumProximity + p.MaxPoints
}

func (p Params) validate() error {
	if p.Rows < 2 || p.Rows&(p.Rows-1) != 0 {
		return errors.New("pcs: Rows must be a power of two ≥ 2")
	}
	if p.Code == nil || p.NumProximity < 1 {
		return errors.New("pcs: missing code or proximity vectors")
	}
	return nil
}

// Commitment is the verifier's view of a committed polynomial.
type Commitment struct {
	Root hashfn.Digest
	// NumVars is the arity of the committed multilinear polynomial.
	NumVars int
	// Rows and MsgLen fix the matrix geometry (MsgLen includes ZK tail
	// and padding).
	Rows, Cols, MsgLen int
}

// SizeBytes returns the serialized commitment size.
func (c *Commitment) SizeBytes() int { return hashfn.Size + 4*8 }

// ProverState retains what the prover needs to open a commitment. The
// row, mask, and codeword matrices live in three arena checkouts
// (rowsBuf/masksBuf/encBuf back the per-row subslices), so a state must
// be Closed once its openings are done to return the scratch.
type ProverState struct {
	params  Params
	comm    *Commitment
	rows    [][]field.Element // Rows × MsgLen (data ‖ zk tail ‖ zero pad)
	masks   [][]field.Element // numMasks × MsgLen, random
	encoded [][]field.Element // (Rows+numMasks) × MsgLen·blowup

	rowsBuf, masksBuf, encBuf []field.Element
	tree                      *merkle.Tree
	closed                    bool
}

// Commitment returns the public commitment.
func (s *ProverState) Commitment() *Commitment { return s.comm }

// Close returns the state's scratch buffers to the arena. The state must
// not be opened afterwards (the Commitment remains valid). Idempotent
// and nil-safe, so `defer st.Close()` is always correct.
func (s *ProverState) Close() {
	if s == nil || s.closed {
		return
	}
	s.closed = true
	arena.Put(s.rowsBuf)
	arena.Put(s.masksBuf)
	arena.Put(s.encBuf)
	s.rowsBuf, s.masksBuf, s.encBuf = nil, nil, nil
	s.rows, s.masks, s.encoded = nil, nil, nil
	s.tree = nil
}

// randFill fills dst with uniform field elements from crypto/rand,
// reading in batches with rejection sampling (rejection probability per
// draw is ~2⁻³², so retries are vanishingly rare).
func randFill(dst []field.Element) {
	if len(dst) == 0 {
		return
	}
	const batch = 64
	buf := make([]byte, 8*batch)
	for i := 0; i < len(dst); {
		n := len(dst) - i
		if n > batch {
			n = batch
		}
		if _, err := rand.Read(buf[:8*n]); err != nil {
			panic("pcs: crypto/rand failure: " + err.Error())
		}
		for j := 0; j < n; j++ {
			v := binary.LittleEndian.Uint64(buf[8*j:])
			if v < field.Modulus {
				dst[i] = field.Element(v)
				i++
			}
		}
	}
}

// Commit commits to the multilinear polynomial with the given evaluation
// vector (length a power of two ≥ Rows).
func Commit(params Params, vec []field.Element) (*ProverState, error) {
	return CommitCtx(context.Background(), params, vec)
}

// CommitCtx is Commit with cooperative cancellation: the context is
// threaded into the parallel row encodes (inside the NTT), the parallel
// column hashing, and the Merkle build, and the pool stops dispatching
// chunks once it is cancelled. Fault-injection points cover each stage
// boundary ("pcs.commit.encode", "pcs.commit.leaves",
// "pcs.commit.tree").
func CommitCtx(ctx context.Context, params Params, vec []field.Element) (*ProverState, error) {
	g, err := planGeometry(params, len(vec))
	if err != nil {
		return nil, err
	}
	return commitPlanned(ctx, params, g, vec, true)
}

// geometry is the size plan of one commitment: a pure function of the
// parameters and the vector length, so it can be computed once and
// shared across the members of a batch.
type geometry struct {
	n      int // vector length
	cols   int // data columns per row
	msgLen int // padded message length per row (power of two)
	encLen int // encoded row length (msgLen × blowup)
	zkTail int // random tail entries per row (ZK only)
	total  int // rows + masks
}

// planGeometry validates params against a vector length and fixes the
// commitment's sizes.
func planGeometry(params Params, n int) (geometry, error) {
	if err := params.validate(); err != nil {
		return geometry{}, err
	}
	if n < params.Rows || n&(n-1) != 0 {
		return geometry{}, fmt.Errorf("pcs: vector length %d must be a power of two ≥ %d rows", n, params.Rows)
	}
	cols := n / params.Rows
	msgLen := cols
	if params.ZK {
		msgLen = cols + params.Code.Queries()
	}
	// Round msgLen to a power of two for the row code.
	for msgLen&(msgLen-1) != 0 {
		msgLen++
	}
	zkTail := 0
	if params.ZK {
		zkTail = params.Code.Queries()
	}
	return geometry{
		n:      n,
		cols:   cols,
		msgLen: msgLen,
		encLen: msgLen * params.Code.Blowup(),
		zkTail: zkTail,
		total:  params.Rows + params.numMasks(),
	}, nil
}

// Shared is witness-independent commitment state precomputed once and
// reused for every member of a batch with identical parameters and
// vector length: the validated geometry plan plus warmed size-dependent
// encoder caches. The plan carries no witness-dependent state, so
// commitments produced through it are byte-identical to solo CommitCtx
// commitments. A Shared plan is immutable after NewSharedCtx and safe
// for concurrent use.
type Shared struct {
	params Params
	geom   geometry
}

// NewSharedCtx validates the parameters, fixes the commitment geometry
// for vectors of length n, and warms the size-dependent encoder caches
// (NTT twiddle tables and any code-specific layout) by encoding one
// zero-message row, so batch members skip the per-commit serial warm-up
// row and fan out immediately.
func NewSharedCtx(ctx context.Context, params Params, n int) (*Shared, error) {
	g, err := planGeometry(params, n)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	msg := arena.GetCtx(ctx, g.msgLen)
	defer arena.Put(msg)
	enc := arena.GetUninitCtx(ctx, g.encLen)
	defer arena.Put(enc)
	if err := encodeInto(ctx, params.Code, enc, msg); err != nil {
		return nil, fmt.Errorf("pcs: shared warm-up encode: %w", err)
	}
	return &Shared{params: params, geom: g}, nil
}

// Params returns the parameters the plan was built for.
func (sh *Shared) Params() Params { return sh.params }

// CommitSharedCtx is CommitCtx against a precomputed Shared plan:
// validation and geometry planning are skipped, and every row encode
// fans out in parallel immediately (the plan already warmed the
// per-size caches). The resulting commitment is byte-identical to
// CommitCtx with the same parameters and vector.
func CommitSharedCtx(ctx context.Context, sh *Shared, vec []field.Element) (*ProverState, error) {
	if len(vec) != sh.geom.n {
		return nil, fmt.Errorf("pcs: vector length %d does not match shared plan length %d", len(vec), sh.geom.n)
	}
	return commitPlanned(ctx, sh.params, sh.geom, vec, false)
}

// commitPlanned is the shared body of CommitCtx and CommitSharedCtx:
// commit vec under an already-validated geometry. warm selects the
// serial first-row encode that primes size-dependent caches on the solo
// path (a shared plan has already primed them).
func commitPlanned(ctx context.Context, params Params, g geometry, vec []field.Element, warm bool) (*ProverState, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := g.n
	cols, msgLen, zkTail := g.cols, g.msgLen, g.zkTail

	// The row, mask, and codeword matrices are subslices of three arena
	// checkouts, owned by the ProverState until Close. rowsBuf is zeroed
	// (the pad region past data+ZK tail must be zero); the other two are
	// fully overwritten before use.
	rowsBuf := arena.GetCtx(ctx, params.Rows*msgLen)
	masksBuf := arena.GetUninitCtx(ctx, params.numMasks()*msgLen)
	var encBuf []field.Element
	committed := false
	defer func() {
		if !committed {
			arena.Put(rowsBuf)
			arena.Put(masksBuf)
			arena.Put(encBuf)
		}
	}()

	rows := make([][]field.Element, params.Rows)
	for r := range rows {
		row := rowsBuf[r*msgLen : (r+1)*msgLen]
		copy(row[:cols], vec[r*cols:(r+1)*cols])
		randFill(row[cols : cols+zkTail])
		rows[r] = row
	}
	masks := make([][]field.Element, params.numMasks())
	for i := range masks {
		m := masksBuf[i*msgLen : (i+1)*msgLen]
		randFill(m)
		masks[i] = m
	}

	total := params.Rows + len(masks)
	all := make([][]field.Element, 0, total)
	all = append(all, rows...)
	all = append(all, masks...)
	encLen := g.encLen
	encBuf = arena.GetUninitCtx(ctx, total*encLen)
	encoded := make([][]field.Element, total)
	for r := range encoded {
		encoded[r] = encBuf[r*encLen : (r+1)*encLen]
	}
	// On the solo path, encode the first row serially to warm
	// size-dependent caches (twiddle tables, expander graphs) — safe to
	// skip since the cache publication is atomic, but the warm avoids N
	// workers redundantly computing the same table on first use. A shared
	// batch plan has already warmed these, so it fans out immediately.
	// Row encodes are independent (the parallel CPU baseline of §III).
	// ForErrCtx contains worker faults — an encode panic becomes an error
	// from Commit (and thus Prove) instead of killing the serving process
	// — and stops dispatching rows once ctx is cancelled.
	if err := faultinject.Check(fiCommitEncode); err != nil {
		return nil, fmt.Errorf("pcs: row encode: %w", err)
	}
	first := 0
	if warm {
		if err := encodeInto(ctx, params.Code, encoded[0], all[0]); err != nil {
			return nil, fmt.Errorf("pcs: row encode: %w", err)
		}
		first = 1
	}
	if err := par.ForErrCtx(ctx, total-first, func(lo, hi int) error {
		for r := lo + first; r < hi+first; r++ {
			if err := encodeInto(ctx, params.Code, encoded[r], all[r]); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, fmt.Errorf("pcs: row encode: %w", err)
	}

	if err := faultinject.Check(fiCommitLeaves); err != nil {
		return nil, fmt.Errorf("pcs: column hash: %w", err)
	}
	eng := params.Engine()
	leaves := make([]hashfn.Digest, encLen)
	if err := kernel.ColumnLeavesCtx(ctx, eng, leaves, encoded); err != nil {
		return nil, fmt.Errorf("pcs: column hash: %w", err)
	}
	if err := faultinject.Check(fiCommitTree); err != nil {
		return nil, fmt.Errorf("pcs: merkle build: %w", err)
	}
	tree, err := merkle.NewEngineCtx(ctx, eng, leaves)
	if err != nil {
		return nil, fmt.Errorf("pcs: merkle build: %w", err)
	}

	committed = true
	state := &ProverState{
		params:   params,
		rows:     rows,
		masks:    masks,
		encoded:  encoded,
		rowsBuf:  rowsBuf,
		masksBuf: masksBuf,
		encBuf:   encBuf,
		tree:     tree,
		comm: &Commitment{
			Root:    tree.Root(),
			NumVars: bits.TrailingZeros(uint(n)),
			Rows:    params.Rows,
			Cols:    cols,
			MsgLen:  msgLen,
		},
	}
	return state, nil
}

// OpeningProof proves evaluations of a committed polynomial at one or
// more points.
type OpeningProof struct {
	// ProxVectors are the γᵀM (+mask) row combinations of the proximity
	// test, each MsgLen long.
	ProxVectors [][]field.Element
	// EvalVectors are the q_rowᵀM (+mask) combinations, one per point.
	EvalVectors [][]field.Element
	// MaskCorrections holds ⟨mask_i[:Cols], q_col_i⟩ per point (ZK only).
	MaskCorrections []field.Element
	// Columns are the opened encoded columns, Queries × (Rows+numMasks).
	Columns [][]field.Element
	// Paths authenticate the columns against the Merkle root.
	Paths []merkle.Path
}

// SizeBytes returns the serialized proof size; this is what dominates the
// megabyte-scale Spartan+Orion proofs of paper Table III.
func (p *OpeningProof) SizeBytes() int {
	n := 0
	for _, v := range p.ProxVectors {
		n += 8 * len(v)
	}
	for _, v := range p.EvalVectors {
		n += 8 * len(v)
	}
	n += 8 * len(p.MaskCorrections)
	for _, c := range p.Columns {
		n += 8 * len(c)
	}
	for _, path := range p.Paths {
		n += path.SizeBytes()
	}
	return n
}

// splitPoint separates an evaluation point into its row part (first
// log2(Rows) variables) and column part.
func splitPoint(comm *Commitment, point []field.Element) (rowPart, colPart []field.Element, err error) {
	if len(point) != comm.NumVars {
		return nil, nil, fmt.Errorf("pcs: point has %d vars, commitment has %d", len(point), comm.NumVars)
	}
	logRows := bits.TrailingZeros(uint(comm.Rows))
	return point[:logRows], point[logRows:], nil
}

// combineRows returns coeffsᵀ·rows (+ mask if non-nil), over MsgLen.
// The result escapes into the proof, so it is plain-allocated, never
// arena scratch.
func combineRows(ctx context.Context, rows [][]field.Element, coeffs []field.Element, mask []field.Element, msgLen int) []field.Element {
	out := make([]field.Element, msgLen)
	if mask != nil {
		copy(out, mask)
	}
	kernel.VecCombineCtx(ctx, out, coeffs, rows)
	return out
}

// Open proves the evaluations of the committed polynomial at points.
// It returns the proof and the evaluation values. The transcript binds
// the commitment, points, and values before challenges are squeezed.
func (s *ProverState) Open(tr *transcript.Transcript, points [][]field.Element) (*OpeningProof, []field.Element, error) {
	return s.OpenCtx(context.Background(), tr, points)
}

// OpenCtx is Open with cooperative cancellation (checked between the
// per-point evaluation, proximity, and column stages) and
// fault-injection points at each stage boundary ("pcs.open.eval",
// "pcs.open.prox", "pcs.open.columns").
func (s *ProverState) OpenCtx(ctx context.Context, tr *transcript.Transcript, points [][]field.Element) (*OpeningProof, []field.Element, error) {
	if len(points) == 0 {
		return nil, nil, errors.New("pcs: no evaluation points")
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if err := faultinject.Check(fiOpenEval); err != nil {
		return nil, nil, err
	}
	if s.params.ZK && len(points) > s.params.MaxPoints {
		return nil, nil, fmt.Errorf("pcs: %d points exceeds MaxPoints %d", len(points), s.params.MaxPoints)
	}
	comm := s.comm
	tr.AppendDigest("pcs/root", comm.Root)
	tr.AppendUint64("pcs/points", uint64(len(points)))

	// The eq-tables are opening-local scratch; returned to the arena on
	// every exit path below.
	values := make([]field.Element, len(points))
	qCols := make([][]field.Element, len(points))
	qRows := make([][]field.Element, len(points))
	defer func() {
		for _, q := range qRows {
			arena.Put(q)
		}
		for _, q := range qCols {
			arena.Put(q)
		}
	}()
	for i, pt := range points {
		rowPart, colPart, err := splitPoint(comm, pt)
		if err != nil {
			return nil, nil, err
		}
		qRows[i] = arena.GetUninitCtx(ctx, 1<<len(rowPart))
		poly.EqTableIntoCtx(ctx, qRows[i], rowPart)
		qCols[i] = arena.GetUninitCtx(ctx, 1<<len(colPart))
		poly.EqTableIntoCtx(ctx, qCols[i], colPart)
		// value = q_rowᵀ M q_col over the data region.
		sp := kernel.BeginCtx(ctx, kernel.StagePoly)
		var v field.Element
		for r := 0; r < comm.Rows; r++ {
			v = field.Add(v, field.Mul(qRows[i][r], field.InnerProduct(s.rows[r][:comm.Cols], qCols[i])))
		}
		sp.End(comm.Rows * comm.Cols)
		values[i] = v
		tr.AppendElems("pcs/point", pt)
		tr.AppendElems("pcs/value", []field.Element{v})
	}

	proof := &OpeningProof{}

	// Proximity test: random row combinations.
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if err := faultinject.Check(fiOpenProx); err != nil {
		return nil, nil, err
	}
	for j := 0; j < s.params.NumProximity; j++ {
		gamma := tr.Challenges(fmt.Sprintf("pcs/gamma%d", j), comm.Rows)
		var mask []field.Element
		if s.params.ZK {
			mask = s.masks[j]
		}
		u := combineRows(ctx, s.rows, gamma, mask, comm.MsgLen)
		proof.ProxVectors = append(proof.ProxVectors, u)
		tr.AppendElems("pcs/prox", u)
	}

	// Evaluation combinations.
	for i := range points {
		var mask []field.Element
		if s.params.ZK {
			mask = s.masks[s.params.NumProximity+i]
			proof.MaskCorrections = append(proof.MaskCorrections,
				field.InnerProduct(mask[:comm.Cols], qCols[i]))
		}
		u := combineRows(ctx, s.rows, qRows[i], mask, comm.MsgLen)
		proof.EvalVectors = append(proof.EvalVectors, u)
		tr.AppendElems("pcs/eval", u)
	}
	if s.params.ZK {
		tr.AppendElems("pcs/corrections", proof.MaskCorrections)
	}

	// Shared column openings.
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if err := faultinject.Check(fiOpenColumns); err != nil {
		return nil, nil, err
	}
	encLen := comm.MsgLen * s.params.Code.Blowup()
	idxs := tr.ChallengeIndices("pcs/columns", s.params.Code.Queries(), encLen)
	total := comm.Rows + s.params.numMasks()
	for _, j := range idxs {
		col := make([]field.Element, total)
		for r := 0; r < total; r++ {
			col[r] = s.encoded[r][j]
		}
		proof.Columns = append(proof.Columns, col)
		proof.Paths = append(proof.Paths, s.tree.Open(j))
	}
	return proof, values, nil
}

// Errors returned by Verify, each anchored in the zkerr taxonomy:
// ErrMalformed is structural (shape/counts), ErrGeometry means the
// commitment disagrees with the agreed parameters, and the rest are
// soundness failures on structurally valid proofs.
var (
	ErrProximity  = zkerr.Wrap(zkerr.ErrSoundnessCheckFailed, "pcs: proximity check failed")
	ErrEvalCheck  = zkerr.Wrap(zkerr.ErrSoundnessCheckFailed, "pcs: evaluation consistency check failed")
	ErrValue      = zkerr.Wrap(zkerr.ErrSoundnessCheckFailed, "pcs: claimed value mismatch")
	ErrColumnAuth = zkerr.Wrap(zkerr.ErrSoundnessCheckFailed, "pcs: column authentication failed")
	ErrMalformed  = zkerr.Wrap(zkerr.ErrMalformedProof, "pcs: malformed proof")
	ErrGeometry   = zkerr.Wrap(zkerr.ErrBadCommitment, "pcs: commitment geometry")
)

// Verify checks an opening proof for the claimed values at points. The
// params must match the committer's. Verify never panics on hostile
// (comm, proof) contents: structural faults return typed errors and any
// internal invariant violation is contained as zkerr.ErrInternal.
func Verify(params Params, comm *Commitment, tr *transcript.Transcript,
	points [][]field.Element, values []field.Element, proof *OpeningProof) error {
	return VerifyCtx(context.Background(), params, comm, tr, points, values, proof)
}

// VerifyCtx is Verify with cooperative cancellation: the context is
// checked before the codeword re-encodes (the expensive part of
// verification) and every few columns of the spot-check loop, with
// fault-injection points at both boundaries ("pcs.verify.encode",
// "pcs.verify.columns").
func VerifyCtx(ctx context.Context, params Params, comm *Commitment, tr *transcript.Transcript,
	points [][]field.Element, values []field.Element, proof *OpeningProof) (err error) {

	defer zkerr.RecoverTo(&err, "pcs.Verify")
	if err := params.validate(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if comm == nil || proof == nil {
		return fmt.Errorf("%w: nil commitment or proof", ErrMalformed)
	}
	if len(points) != len(values) || len(points) == 0 {
		return fmt.Errorf("%w: %d points, %d values", ErrMalformed, len(points), len(values))
	}
	if len(proof.ProxVectors) != params.NumProximity ||
		len(proof.EvalVectors) != len(points) ||
		len(proof.Columns) != params.Code.Queries() ||
		len(proof.Paths) != params.Code.Queries() {
		return fmt.Errorf("%w: wrong vector/column counts", ErrMalformed)
	}
	if params.ZK && len(proof.MaskCorrections) != len(points) {
		return fmt.Errorf("%w: wrong mask correction count", ErrMalformed)
	}
	// Pin the commitment geometry to the agreed parameters: the prover
	// must not choose its own matrix shape.
	if comm.Rows != params.Rows {
		return fmt.Errorf("%w: commitment has %d rows, params say %d", ErrGeometry, comm.Rows, params.Rows)
	}
	if comm.NumVars < 1 || comm.NumVars > 40 || comm.Cols < 1 || comm.Cols > 1<<40 ||
		comm.Cols*comm.Rows != 1<<uint(comm.NumVars) {
		return fmt.Errorf("%w: inconsistent commitment geometry", ErrGeometry)
	}
	wantMsg := comm.Cols
	if params.ZK {
		wantMsg += params.Code.Queries()
	}
	for wantMsg&(wantMsg-1) != 0 {
		wantMsg++
	}
	if comm.MsgLen != wantMsg {
		return fmt.Errorf("%w: message length %d, expected %d", ErrGeometry, comm.MsgLen, wantMsg)
	}

	tr.AppendDigest("pcs/root", comm.Root)
	tr.AppendUint64("pcs/points", uint64(len(points)))

	qCols := make([][]field.Element, len(points))
	qRows := make([][]field.Element, len(points))
	for i, pt := range points {
		rowPart, colPart, err := splitPoint(comm, pt)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrGeometry, err)
		}
		qRows[i] = poly.EqTable(rowPart)
		qCols[i] = poly.EqTable(colPart)
		tr.AppendElems("pcs/point", pt)
		tr.AppendElems("pcs/value", []field.Element{values[i]})
	}

	// Re-derive challenges in transcript order.
	gammas := make([][]field.Element, params.NumProximity)
	for j := 0; j < params.NumProximity; j++ {
		gammas[j] = tr.Challenges(fmt.Sprintf("pcs/gamma%d", j), comm.Rows)
		if len(proof.ProxVectors[j]) != comm.MsgLen {
			return fmt.Errorf("%w: proximity vector length", ErrMalformed)
		}
		tr.AppendElems("pcs/prox", proof.ProxVectors[j])
	}
	for i := range points {
		if len(proof.EvalVectors[i]) != comm.MsgLen {
			return fmt.Errorf("%w: eval vector length", ErrMalformed)
		}
		tr.AppendElems("pcs/eval", proof.EvalVectors[i])
	}
	if params.ZK {
		tr.AppendElems("pcs/corrections", proof.MaskCorrections)
	}

	// Value checks: ⟨u'_i[:Cols], q_col⟩ (− correction) == claimed value.
	for i := range points {
		got := field.InnerProduct(proof.EvalVectors[i][:comm.Cols], qCols[i])
		if params.ZK {
			got = field.Sub(got, proof.MaskCorrections[i])
		}
		if got != values[i] {
			return fmt.Errorf("%w (point %d)", ErrValue, i)
		}
	}

	// Encode every transmitted combination once.
	if err := faultinject.Check(fiVerifyEncode); err != nil {
		return err
	}
	encProx := make([][]field.Element, len(proof.ProxVectors))
	for j, u := range proof.ProxVectors {
		if encProx[j], err = encodeCtx(ctx, params.Code, u); err != nil {
			return err
		}
	}
	encEval := make([][]field.Element, len(proof.EvalVectors))
	for i, u := range proof.EvalVectors {
		if encEval[i], err = encodeCtx(ctx, params.Code, u); err != nil {
			return err
		}
	}

	// Column checks at shared query positions.
	if err := faultinject.Check(fiVerifyColumns); err != nil {
		return err
	}
	encLen := comm.MsgLen * params.Code.Blowup()
	idxs := tr.ChallengeIndices("pcs/columns", params.Code.Queries(), encLen)
	total := comm.Rows + params.numMasks()
	eng := params.Engine()
	for q, j := range idxs {
		if q&63 == 0 && q > 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		col := proof.Columns[q]
		if len(col) != total {
			return fmt.Errorf("%w: column height", ErrMalformed)
		}
		path := proof.Paths[q]
		if path.Index != j {
			return fmt.Errorf("%w: column %d opened at %d, expected %d", ErrColumnAuth, q, path.Index, j)
		}
		if err := merkle.VerifyEngine(eng, comm.Root, merkle.LeafOfColumnEngine(eng, col), path); err != nil {
			return fmt.Errorf("%w: column %d: %v", ErrColumnAuth, q, err)
		}
		// Proximity: Enc(γᵀM + mask_j)[j] == γᵀ·col_data + col_mask_j.
		for pj, gamma := range gammas {
			want := field.InnerProduct(gamma, col[:comm.Rows])
			if params.ZK {
				want = field.Add(want, col[comm.Rows+pj])
			}
			if encProx[pj][j] != want {
				return fmt.Errorf("%w (vector %d, column %d)", ErrProximity, pj, j)
			}
		}
		// Evaluation combinations.
		for i := range points {
			want := field.InnerProduct(qRows[i], col[:comm.Rows])
			if params.ZK {
				want = field.Add(want, col[comm.Rows+params.NumProximity+i])
			}
			if encEval[i][j] != want {
				return fmt.Errorf("%w (point %d, column %d)", ErrEvalCheck, i, j)
			}
		}
	}
	return nil
}
