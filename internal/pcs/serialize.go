package pcs

import (
	"nocap/internal/field"
	"nocap/internal/merkle"
	"nocap/internal/wire"
	"nocap/internal/zkerr"
)

// AppendTo serializes the commitment.
func (c *Commitment) AppendTo(w *wire.Writer) {
	w.Digest(c.Root)
	w.U64(uint64(c.NumVars))
	w.U64(uint64(c.Rows))
	w.U64(uint64(c.Cols))
	w.U64(uint64(c.MsgLen))
}

// ReadCommitment decodes a commitment from untrusted bytes. Geometry
// fields are bounded so that downstream arithmetic (Rows·Cols products,
// 1<<NumVars) cannot overflow, but full consistency against the agreed
// parameters is Verify's job.
func ReadCommitment(r *wire.Reader) (*Commitment, error) {
	root, err := r.Digest()
	if err != nil {
		return nil, err
	}
	vals := make([]int, 4)
	for i := range vals {
		v, err := r.U64()
		if err != nil {
			return nil, err
		}
		if v > 1<<40 {
			return nil, zkerr.BadCommitmentf("pcs: implausible geometry field %d", v)
		}
		vals[i] = int(v)
	}
	return &Commitment{Root: root, NumVars: vals[0], Rows: vals[1], Cols: vals[2], MsgLen: vals[3]}, nil
}

// appendVecs writes a length-prefixed list of element vectors.
func appendVecs(w *wire.Writer, vs [][]field.Element) {
	w.U64(uint64(len(vs)))
	for _, v := range vs {
		w.Elems(v)
	}
}

// readVecs decodes a list of element vectors.
func readVecs(r *wire.Reader) ([][]field.Element, error) {
	n, err := r.Count()
	if err != nil {
		return nil, err
	}
	if err := r.Grant(int64(n) * 24); err != nil {
		return nil, err
	}
	out := make([][]field.Element, n)
	for i := range out {
		if out[i], err = r.Elems(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AppendTo serializes an opening proof.
func (p *OpeningProof) AppendTo(w *wire.Writer) {
	appendVecs(w, p.ProxVectors)
	appendVecs(w, p.EvalVectors)
	w.Elems(p.MaskCorrections)
	appendVecs(w, p.Columns)
	w.U64(uint64(len(p.Paths)))
	for _, path := range p.Paths {
		path.AppendTo(w)
	}
}

// ReadOpeningProof decodes an opening proof. The column and path counts
// are bounded by the reader's MaxOpenings limit (the paper opens 189
// columns; a hostile prefix cannot demand more than the configured cap).
func ReadOpeningProof(r *wire.Reader) (*OpeningProof, error) {
	p := &OpeningProof{}
	var err error
	if p.ProxVectors, err = readVecs(r); err != nil {
		return nil, err
	}
	if p.EvalVectors, err = readVecs(r); err != nil {
		return nil, err
	}
	if p.MaskCorrections, err = r.Elems(); err != nil {
		return nil, err
	}
	if p.Columns, err = readVecs(r); err != nil {
		return nil, err
	}
	if len(p.Columns) > r.Limits().MaxOpenings {
		return nil, zkerr.Resourcef("pcs: %d opened columns exceeds limit %d",
			len(p.Columns), r.Limits().MaxOpenings)
	}
	n, err := r.Count()
	if err != nil {
		return nil, err
	}
	if n > r.Limits().MaxOpenings {
		return nil, zkerr.Resourcef("pcs: %d opening paths exceeds limit %d", n, r.Limits().MaxOpenings)
	}
	if err := r.Grant(int64(n) * 32); err != nil {
		return nil, err
	}
	p.Paths = make([]merkle.Path, n)
	for i := range p.Paths {
		if p.Paths[i], err = merkle.ReadPath(r); err != nil {
			return nil, err
		}
	}
	return p, nil
}
