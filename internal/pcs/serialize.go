package pcs

import (
	"fmt"

	"nocap/internal/field"
	"nocap/internal/merkle"
	"nocap/internal/wire"
)

// AppendTo serializes the commitment.
func (c *Commitment) AppendTo(w *wire.Writer) {
	w.Digest(c.Root)
	w.U64(uint64(c.NumVars))
	w.U64(uint64(c.Rows))
	w.U64(uint64(c.Cols))
	w.U64(uint64(c.MsgLen))
}

// ReadCommitment decodes a commitment.
func ReadCommitment(r *wire.Reader) (*Commitment, error) {
	root, err := r.Digest()
	if err != nil {
		return nil, err
	}
	vals := make([]int, 4)
	for i := range vals {
		v, err := r.U64()
		if err != nil {
			return nil, err
		}
		if v > 1<<40 {
			return nil, fmt.Errorf("pcs: implausible geometry field %d", v)
		}
		vals[i] = int(v)
	}
	return &Commitment{Root: root, NumVars: vals[0], Rows: vals[1], Cols: vals[2], MsgLen: vals[3]}, nil
}

// appendVecs writes a length-prefixed list of element vectors.
func appendVecs(w *wire.Writer, vs [][]field.Element) {
	w.U64(uint64(len(vs)))
	for _, v := range vs {
		w.Elems(v)
	}
}

// readVecs decodes a list of element vectors.
func readVecs(r *wire.Reader) ([][]field.Element, error) {
	n, err := r.Count()
	if err != nil {
		return nil, err
	}
	out := make([][]field.Element, n)
	for i := range out {
		if out[i], err = r.Elems(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AppendTo serializes an opening proof.
func (p *OpeningProof) AppendTo(w *wire.Writer) {
	appendVecs(w, p.ProxVectors)
	appendVecs(w, p.EvalVectors)
	w.Elems(p.MaskCorrections)
	appendVecs(w, p.Columns)
	w.U64(uint64(len(p.Paths)))
	for _, path := range p.Paths {
		path.AppendTo(w)
	}
}

// ReadOpeningProof decodes an opening proof.
func ReadOpeningProof(r *wire.Reader) (*OpeningProof, error) {
	p := &OpeningProof{}
	var err error
	if p.ProxVectors, err = readVecs(r); err != nil {
		return nil, err
	}
	if p.EvalVectors, err = readVecs(r); err != nil {
		return nil, err
	}
	if p.MaskCorrections, err = r.Elems(); err != nil {
		return nil, err
	}
	if p.Columns, err = readVecs(r); err != nil {
		return nil, err
	}
	n, err := r.Count()
	if err != nil {
		return nil, err
	}
	p.Paths = make([]merkle.Path, n)
	for i := range p.Paths {
		if p.Paths[i], err = merkle.ReadPath(r); err != nil {
			return nil, err
		}
	}
	return p, nil
}
