// Package zkerr defines the structured error taxonomy for the untrusted
// verifier boundary. Proof bytes arrive over the paper's §V prover→verifier
// link from parties that may be hostile, so every failure on the decode and
// verify paths maps to one of a small set of stable sentinel errors that
// callers match with errors.Is. The taxonomy separates four very different
// conditions a serving layer must distinguish:
//
//   - ErrMalformedProof: the bytes fail structural validation (framing,
//     truncation, non-canonical field elements). Cheap to detect, safe to
//     reject before any cryptographic work.
//   - ErrBadCommitment: commitment geometry is internally inconsistent or
//     disagrees with the agreed parameters.
//   - ErrSoundnessCheckFailed: the proof parses but a cryptographic check
//     (sumcheck round, Merkle path, proximity test, final evaluation)
//     rejects it.
//   - ErrResourceLimit: the input demands more memory or repetition than
//     the caller-configured DecodeLimits allow; decoding stops before the
//     allocation happens.
//   - ErrInternal: an invariant violation (recovered panic) inside the
//     library. Never caused by well-behaved inputs; always a bug, but it
//     must surface as an error, not a crash, when triggered by attacker
//     bytes.
//   - ErrUsage: invalid command-line or API usage (bad flags, impossible
//     parameter combinations) in the cmd/ front ends.
//
// The package is a leaf: it imports only the standard library, so every
// layer (wire, merkle, pcs, sumcheck, spartan, cmd) can depend on it
// without cycles.
package zkerr

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

// Sentinel errors. Match with errors.Is; wrap with the helper
// constructors so the chain stays intact.
var (
	ErrMalformedProof       = errors.New("zkerr: malformed proof")
	ErrBadCommitment        = errors.New("zkerr: bad commitment")
	ErrSoundnessCheckFailed = errors.New("zkerr: soundness check failed")
	ErrResourceLimit        = errors.New("zkerr: resource limit exceeded")
	ErrInternal             = errors.New("zkerr: internal error")
	ErrUsage                = errors.New("zkerr: usage error")
)

// codedError carries a sentinel plus a human-readable detail message. The
// detail comes first in Error() so logs read naturally; Unwrap exposes the
// sentinel for errors.Is/As.
type codedError struct {
	sentinel error
	msg      string
}

func (e *codedError) Error() string { return e.msg }
func (e *codedError) Unwrap() error { return e.sentinel }

// Wrap attaches a sentinel to a detail message.
func Wrap(sentinel error, msg string) error {
	return &codedError{sentinel: sentinel, msg: msg}
}

// Malformedf returns an ErrMalformedProof with formatted detail.
func Malformedf(format string, args ...any) error {
	return Wrap(ErrMalformedProof, fmt.Sprintf(format, args...))
}

// BadCommitmentf returns an ErrBadCommitment with formatted detail.
func BadCommitmentf(format string, args ...any) error {
	return Wrap(ErrBadCommitment, fmt.Sprintf(format, args...))
}

// Soundnessf returns an ErrSoundnessCheckFailed with formatted detail.
func Soundnessf(format string, args ...any) error {
	return Wrap(ErrSoundnessCheckFailed, fmt.Sprintf(format, args...))
}

// Resourcef returns an ErrResourceLimit with formatted detail.
func Resourcef(format string, args ...any) error {
	return Wrap(ErrResourceLimit, fmt.Sprintf(format, args...))
}

// Internalf returns an ErrInternal with formatted detail.
func Internalf(format string, args ...any) error {
	return Wrap(ErrInternal, fmt.Sprintf(format, args...))
}

// Usagef returns an ErrUsage with formatted detail.
func Usagef(format string, args ...any) error {
	return Wrap(ErrUsage, fmt.Sprintf(format, args...))
}

// Code returns the stable string code for an error's taxonomy class, or
// "" if the error does not belong to the taxonomy. Codes are part of the
// public surface: log pipelines and clients key on them.
func Code(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrMalformedProof):
		return "malformed-proof"
	case errors.Is(err, ErrBadCommitment):
		return "bad-commitment"
	case errors.Is(err, ErrSoundnessCheckFailed):
		return "soundness-check-failed"
	case errors.Is(err, ErrResourceLimit):
		return "resource-limit"
	case errors.Is(err, ErrInternal):
		return "internal"
	case errors.Is(err, ErrUsage):
		return "usage"
	}
	return ""
}

// ExitCode maps an error to a process exit code for the cmd/ front ends:
// distinct classes get distinct codes so scripts can branch on them.
// A cancelled or timed-out run (context.Canceled / DeadlineExceeded from
// ProveCtx/VerifyCtx, e.g. a -timeout expiry or SIGINT) exhausted its
// time budget and maps to the resource-limit code.
func ExitCode(err error) int {
	switch Code(err) {
	case "":
		if err == nil {
			return 0
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return 5 // resource-limit: the time budget
		}
		return 1
	case "usage":
		return 2
	case "malformed-proof", "bad-commitment":
		return 3
	case "soundness-check-failed":
		return 4
	case "resource-limit":
		return 5
	case "internal":
		return 6
	}
	return 1
}

// InTaxonomy reports whether err maps to a defined sentinel.
func InTaxonomy(err error) bool { return Code(err) != "" }

// Retryable classifies a failed proving attempt for a retrying job
// layer (DESIGN.md §11):
//
//   - ErrInternal — including recovered panics, which RecoverTo wraps in
//     ErrInternal — is a fault in the machinery, not the input; the same
//     job may well succeed on a healthy retry.
//   - context.DeadlineExceeded is a time budget the attempt exhausted;
//     a later attempt under less load may fit.
//   - Untyped errors (I/O failures around the prover, for example) are
//     treated as transient: the retry budget bounds the damage of a
//     wrong guess, while the reverse mistake — permanently failing a
//     job over a transient disk hiccup — loses work.
//
// Everything deterministic about the input is permanent: malformed or
// inconsistent bytes, soundness rejections, resource-limit refusals,
// usage errors, and explicit cancellation (context.Canceled) — retrying
// any of these reproduces the same outcome at full proving cost.
func Retryable(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, context.DeadlineExceeded):
		return true
	case errors.Is(err, context.Canceled):
		return false
	}
	switch Code(err) {
	case "internal", "":
		return true
	}
	return false
}

// RecoverTo is the panic-containment hook for the trust boundary: deferred
// at the top of Verify/UnmarshalProof (and Prove), it converts any panic —
// including worker panics re-raised by internal/par — into an ErrInternal
// stored in *err, so attacker bytes can never crash the process. The stack
// is captured into the error detail for diagnosis but callers print only
// err.Error() unless they opt into the full text.
func RecoverTo(err *error, op string) {
	r := recover()
	if r == nil {
		return
	}
	// If the panic value already carries a taxonomy error (e.g. a decoder
	// deliberately aborting through panic), keep its class.
	if e, ok := r.(error); ok && InTaxonomy(e) {
		*err = e
		return
	}
	*err = &panicError{
		codedError: codedError{
			sentinel: ErrInternal,
			msg:      fmt.Sprintf("%s: recovered panic: %v", op, r),
		},
		stack: debug.Stack(),
	}
}

// panicError retains the recovered stack for diagnostics without printing
// it by default.
type panicError struct {
	codedError
	stack []byte
}

// Stack returns the goroutine stack captured at recovery time.
func (e *panicError) Stack() []byte { return e.stack }
