package zkerr

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestSentinelsAreDistinct(t *testing.T) {
	sentinels := []error{
		ErrMalformedProof, ErrBadCommitment, ErrSoundnessCheckFailed,
		ErrResourceLimit, ErrInternal, ErrUsage,
	}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if (i == j) != errors.Is(a, b) {
				t.Fatalf("sentinel identity broken: %v vs %v", a, b)
			}
		}
	}
}

func TestWrappersSatisfyIs(t *testing.T) {
	cases := []struct {
		err  error
		want error
		code string
	}{
		{Malformedf("bad magic %#x", 7), ErrMalformedProof, "malformed-proof"},
		{BadCommitmentf("rows %d", 3), ErrBadCommitment, "bad-commitment"},
		{Soundnessf("round %d", 2), ErrSoundnessCheckFailed, "soundness-check-failed"},
		{Resourcef("%d bytes", 999), ErrResourceLimit, "resource-limit"},
		{Internalf("oops"), ErrInternal, "internal"},
		{Usagef("flag -n"), ErrUsage, "usage"},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.want) {
			t.Fatalf("%v does not match %v", c.err, c.want)
		}
		if Code(c.err) != c.code {
			t.Fatalf("Code(%v) = %q, want %q", c.err, Code(c.err), c.code)
		}
		if !InTaxonomy(c.err) {
			t.Fatalf("%v not in taxonomy", c.err)
		}
		// A further fmt.Errorf wrap must keep the chain intact.
		deep := fmt.Errorf("outer: %w", c.err)
		if !errors.Is(deep, c.want) || Code(deep) != c.code {
			t.Fatalf("wrap of %v lost its class", c.err)
		}
	}
}

func TestCodeOutsideTaxonomy(t *testing.T) {
	if Code(nil) != "" || Code(errors.New("plain")) != "" {
		t.Fatal("non-taxonomy errors must map to empty code")
	}
	if InTaxonomy(errors.New("plain")) {
		t.Fatal("plain error claimed to be in taxonomy")
	}
}

func TestExitCodes(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{errors.New("plain"), 1},
		{Usagef("x"), 2},
		{Malformedf("x"), 3},
		{BadCommitmentf("x"), 3},
		{Soundnessf("x"), 4},
		{Resourcef("x"), 5},
		{Internalf("x"), 6},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Fatalf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestRecoverToConvertsPanic(t *testing.T) {
	run := func() (err error) {
		defer RecoverTo(&err, "test.op")
		panic("boom")
	}
	err := run()
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("recovered panic should be ErrInternal, got %v", err)
	}
	if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "test.op") {
		t.Fatalf("panic detail lost: %v", err)
	}
	var pe *panicError
	if !errors.As(err, &pe) || len(pe.Stack()) == 0 {
		t.Fatal("stack not captured")
	}
	if strings.Contains(err.Error(), "goroutine") {
		t.Fatal("stack trace must not leak into Error()")
	}
}

func TestRecoverToPreservesTaxonomyPanics(t *testing.T) {
	run := func() (err error) {
		defer RecoverTo(&err, "test.op")
		panic(Malformedf("already typed"))
	}
	if err := run(); !errors.Is(err, ErrMalformedProof) {
		t.Fatalf("typed panic reclassified: %v", err)
	}
}

func TestRecoverToNoPanicIsNoop(t *testing.T) {
	run := func() (err error) {
		defer RecoverTo(&err, "test.op")
		return nil
	}
	if err := run(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestRetryable pins the retry classification the durable job layer
// builds on: internal faults (including recovered panics) and deadline
// expiry are transient; everything caused by the input, plus explicit
// cancellation, is permanent.
func TestRetryable(t *testing.T) {
	panicErr := func() (err error) {
		defer RecoverTo(&err, "test")
		panic("boom")
	}()
	if panicErr == nil {
		t.Fatal("RecoverTo did not capture the panic")
	}
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"internal", Internalf("invariant violated"), true},
		{"panic-recovered", panicErr, true},
		{"deadline", context.DeadlineExceeded, true},
		{"wrapped-deadline", fmt.Errorf("prove: %w", context.DeadlineExceeded), true},
		{"untyped", errors.New("disk on fire"), true},
		{"canceled", context.Canceled, false},
		{"wrapped-canceled", fmt.Errorf("prove: %w", context.Canceled), false},
		{"malformed", Malformedf("bad frame"), false},
		{"bad-commitment", BadCommitmentf("geometry"), false},
		{"soundness", Soundnessf("rejected"), false},
		{"resource", Resourcef("too big"), false},
		{"usage", Usagef("bad flag"), false},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}
