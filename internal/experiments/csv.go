package experiments

import (
	"fmt"
	"io"
)

// WriteCSV emits the Figure 7 sweep as plot-ready series
// (resource,scale,relative_performance).
func (f Figure7Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "resource,scale,rel_perf"); err != nil {
		return err
	}
	for _, p := range f.Points {
		if _, err := fmt.Fprintf(w, "%s,%g,%.4f\n", p.Resource, p.Scale, p.RelPerf); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the Figure 8 scatter (hbm_tbs,area_mm2,perf,pareto).
func (f Figure8Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "hbm_tbs,area_mm2,perf,pareto"); err != nil {
		return err
	}
	for _, p := range f.Points {
		if _, err := fmt.Fprintf(w, "%g,%.2f,%.4f,%v\n", p.HBMTBs, p.AreaMM2, p.Perf, p.Pareto); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits Table IV rows (benchmark,nocap_s,cpu_s,pipezk_s,
// speedup_cpu,speedup_pipezk).
func (t TableIVResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "benchmark,nocap_s,cpu_s,pipezk_s,vs_cpu,vs_pipezk"); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintf(w, "%s,%.4f,%.1f,%.1f,%.0f,%.0f\n",
			r.Name, r.NoCapSec, r.CPUSec, r.PipeSec, r.VsCPU, r.VsPipeZK); err != nil {
			return err
		}
	}
	return nil
}
