package experiments

import (
	"fmt"
	"math/big"
	"strings"
	"time"

	"nocap/internal/baseline"
	"nocap/internal/circuits"
	"nocap/internal/code"
	"nocap/internal/field"
	"nocap/internal/isa"
	"nocap/internal/perfmodel"
	"nocap/internal/sim"
	"nocap/internal/spartan"
	"nocap/internal/tasks"
)

// MultiplyAnalysisResult reproduces the §III critical-operation
// analysis: 64-bit multiplies per constraint for both provers and the
// derived CPU slowdown accounting.
type MultiplyAnalysisResult struct {
	// MeasuredSOMulsPerConstraint is the instrumented multiply count of
	// this repository's Spartan+Orion prover (3 repetitions) at the
	// measurement size, normalized per padded constraint.
	MeasuredSOMulsPerConstraint float64
	// MeasuredLogN is the instance size the measurement ran at.
	MeasuredLogN int
	// ModeledSOMulsPerConstraint is the full-protocol cost inventory's
	// multiply count (includes the Spark-style sumchecks and 3
	// repetitions the functional prover substitutes away).
	ModeledSOMulsPerConstraint float64
	// Groth16MulsPerConstraint is the analytical Groth16 model (§III).
	Groth16MulsPerConstraint float64
	// Ratio is Groth16 ÷ measured; ModeledRatio uses the full-protocol
	// inventory. The paper reports 4.94×.
	Ratio, ModeledRatio float64
	// PaperRatio, SlowdownAccounting reproduce the §III derivation.
	PaperRatio         float64
	SlowdownAccounting float64
}

// MultiplyAnalysis measures our prover's 64-bit multiplies on a real
// (synthetic, banded) instance and compares them with the analytical
// Groth16 model. Our functional prover substitutes direct verifier
// evaluation for Spark (DESIGN.md §3.4), so it undercounts relative to
// the paper's full protocol; the comparison is reported with that
// caveat.
func MultiplyAnalysis(logN int) MultiplyAnalysisResult {
	bm := circuits.Synthetic(1 << uint(logN))
	params := spartan.DefaultParams()
	params.PCS.ZK = false // ZK masking noise excluded from op counts
	if half := bm.Inst.NumVars() / 2; params.PCS.Rows > half {
		params.PCS.Rows = half
	}
	field.EnableMulCount(true)
	proof, err := spartan.Prove(params, bm.Inst, bm.IO, bm.Witness)
	muls := field.MulCount()
	field.EnableMulCount(false)
	if err != nil {
		panic("experiments: prover failed: " + err.Error())
	}
	_ = proof

	padded := float64(int64(1) << uint(bm.Inst.LogConstraints()))
	measured := float64(muls) / padded

	// Full-protocol multiply count at reference scale (2^24) from the
	// calibrated task inventory.
	var modeled float64
	for _, task := range tasks.Inventory(24, tasks.DefaultOptions()) {
		modeled += float64(task.Program.Elems(isa.FUMul))
	}
	modeled /= float64(int64(1) << 24)

	g16 := baseline.DefaultMultiplyModel().Groth16Muls(1<<24, 24) / float64(int64(1)<<24)
	return MultiplyAnalysisResult{
		MeasuredSOMulsPerConstraint: measured,
		MeasuredLogN:                bm.Inst.LogConstraints(),
		ModeledSOMulsPerConstraint:  modeled,
		Groth16MulsPerConstraint:    g16,
		Ratio:                       g16 / measured,
		ModeledRatio:                g16 / modeled,
		PaperRatio:                  perfmodel.AlgorithmicMultiplyGain,
		SlowdownAccounting:          perfmodel.CPUSlowdownVsGroth16(),
	}
}

// Render prints the analysis.
func (m MultiplyAnalysisResult) Render() string {
	return fmt.Sprintf(`Section III multiply-count analysis (64-bit multiplies per constraint)
Groth16 (analytical model, BLS12-381):        %8.0f
Spartan+Orion full protocol (cost inventory): %8.0f  ->  %.1fx fewer [paper: %.2fx]
Spartan+Orion this repo, measured at 2^%d:    %8.0f  ->  %.0fx fewer
(the functional prover substitutes direct matrix evaluation for Spark and
far undercounts the full protocol; see DESIGN.md §3.4)
CPU slowdown accounting 4.66/4.94/(2.7/5.0) = %.2fx (matches 94.2s/53.99s)
`, m.Groth16MulsPerConstraint, m.ModeledSOMulsPerConstraint, m.ModeledRatio,
		m.PaperRatio, m.MeasuredLogN, m.MeasuredSOMulsPerConstraint,
		m.Ratio, m.SlowdownAccounting)
}

// AblationResult is the §VIII-C protocol-optimization study.
type AblationResult struct {
	// CPUGoldilocks and CPUReedSolomon are the modeled software factors.
	CPUGoldilocks, CPUReedSolomon float64
	// MeasuredRSvsExpander is this repo's measured CPU encode-time ratio
	// (expander ÷ Reed-Solomon) at the measurement size.
	MeasuredRSvsExpander float64
	// MeasuredFieldSpeedup is the measured modular-multiply throughput
	// ratio of Goldilocks-64 vs a 4-limb Montgomery 256-bit field on this
	// host (the §VIII-C field ablation's mechanism).
	MeasuredFieldSpeedup float64
	// NoCapRecomputeSpeedup is the simulated end-to-end gain from
	// sumcheck recomputation; SumcheckTrafficSaved the traffic delta.
	NoCapRecomputeSpeedup float64
	SumcheckTrafficSaved  float64
	// CPURecomputePenalty is the modeled software cost of recomputation
	// (the reason it is left off on CPUs).
	CPURecomputePenalty float64
}

// Ablations regenerates §VIII-C: field and code choices on the CPU
// (model + a real measured encode ratio), recomputation on NoCap
// (simulated on/off).
func Ablations(logRows int) AblationResult {
	// Measure RS vs expander encode on this machine.
	n := 1 << uint(logRows)
	msg := make([]field.Element, n)
	for i := range msg {
		msg[i] = field.New(uint64(i)*2654435761 + 1)
	}
	rs := code.NewReedSolomon()
	ex := code.NewExpander(7)
	ex.Encode(msg) // warm graph cache
	timeIt := func(f func()) float64 {
		start := time.Now()
		for i := 0; i < 5; i++ {
			f()
		}
		return time.Since(start).Seconds()
	}
	rsT := timeIt(func() { rs.Encode(msg) })
	exT := timeIt(func() { ex.Encode(msg) })

	// Measure raw modular-multiply throughput: Goldilocks vs 256-bit.
	const mulIters = 1 << 20
	g := field.New(0x1234567890abcdef)
	start := time.Now()
	for i := 0; i < mulIters; i++ {
		g = field.Mul(g, g)
	}
	goldT := time.Since(start).Seconds()
	w := field.NewWide(big.NewInt(0x1234567890ab))
	start = time.Now()
	for i := 0; i < mulIters; i++ {
		w = field.WideMul(w, w)
	}
	wideT := time.Since(start).Seconds()
	_ = g
	_ = w

	cfg := sim.DefaultConfig()
	on := sim.Prover(cfg, 24, tasks.Options{Recompute: true, Reps: 3})
	off := sim.Prover(cfg, 24, tasks.Options{Recompute: false, Reps: 3})

	return AblationResult{
		CPUGoldilocks:         perfmodel.CPUGoldilocksSpeedup,
		CPUReedSolomon:        perfmodel.CPUReedSolomonSpeedup,
		MeasuredRSvsExpander:  exT / rsT,
		MeasuredFieldSpeedup:  wideT / goldT,
		NoCapRecomputeSpeedup: float64(off.Cycles) / float64(on.Cycles),
		SumcheckTrafficSaved:  tasks.SumcheckTrafficReduction(),
		CPURecomputePenalty:   perfmodel.CPURecomputeSlowdown,
	}
}

// Render prints the ablation study.
func (a AblationResult) Render() string {
	var b strings.Builder
	b.WriteString("Section VIII-C protocol optimizations\n")
	fmt.Fprintf(&b, "Goldilocks64 field (CPU):        %.1fx speedup [paper: 1.7x]\n", a.CPUGoldilocks)
	fmt.Fprintf(&b, "  (measured modmul throughput vs 4-limb Montgomery 256-bit on this host: %.1fx)\n",
		a.MeasuredFieldSpeedup)
	fmt.Fprintf(&b, "Reed-Solomon vs expander (CPU):  %.1fx speedup [paper: 1.2x]\n", a.CPUReedSolomon)
	fmt.Fprintf(&b, "  (measured raw encode ratio on this host: %.1fx; the paper's 1.2x is a\n", a.MeasuredRSvsExpander)
	fmt.Fprintf(&b, "   full-prover effect: the 1,222-vs-189 query gap and graph locality)\n")
	fmt.Fprintf(&b, "Combined CPU optimization:       %.1fx [paper: 2.1x]\n", a.CPUGoldilocks*a.CPUReedSolomon)
	fmt.Fprintf(&b, "Sumcheck recomputation (NoCap):  %.2fx speedup [paper: 1.1x], %.0f%% sumcheck traffic saved [paper: 31%%]\n",
		a.NoCapRecomputeSpeedup, 100*a.SumcheckTrafficSaved)
	fmt.Fprintf(&b, "Recomputation on CPU:            %.0f%% slower (left off in software) [paper: 1%%]\n",
		100*(a.CPURecomputePenalty-1))
	return b.String()
}
