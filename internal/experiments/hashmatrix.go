package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"nocap/internal/hashfn"
	"nocap/internal/kernel"
)

// HashBenchResult is one engine × size cell of the hash-engine
// benchmark matrix: the Merkle level-compression kernel timed over a
// full level of 2^logN input digests.
type HashBenchResult struct {
	Engine        string  `json:"engine"`
	LogN          int     `json:"log_n"`
	NsPerOp       float64 `json:"ns_per_op"`
	NodesPerSec   float64 `json:"nodes_per_sec"`
	MBPerSec      float64 `json:"mb_per_sec"`
	SpeedupVsSHA3 float64 `json:"speedup_vs_sha3"`
}

// hashBenchMinTime is the per-cell measurement floor: iterations repeat
// until this much wall time has accumulated, which keeps single-digit
// microsecond levels from being timed by one noisy sample.
const hashBenchMinTime = 200 * time.Millisecond

// HashMatrix benchmarks every registered hash engine over the Merkle
// level kernel at the given sizes (2^logN leaf digests each). Results
// come back grouped by engine in registry order, with SpeedupVsSHA3
// filled in relative to the sha3 row of the same size.
func HashMatrix(logNs []int) []HashBenchResult {
	res, err := HashMatrixCtx(context.Background(), logNs)
	if err != nil {
		panic("experiments: hash matrix failed: " + err.Error())
	}
	return res
}

// HashMatrixCtx is HashMatrix under a context: cancellation abandons
// the run between kernel invocations.
func HashMatrixCtx(ctx context.Context, logNs []int) ([]HashBenchResult, error) {
	baseline := make(map[int]float64) // logN → sha3 ns/op
	var out []HashBenchResult
	for _, name := range hashfn.Names() {
		eng, ok := hashfn.ByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: engine %q not registered", name)
		}
		for _, logN := range logNs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			n := 1 << uint(logN)
			prev := make([]hashfn.Digest, n)
			for i := range prev {
				var seed [8]byte
				seed[0], seed[1] = byte(i), byte(i>>8)
				prev[i] = hashfn.Sum(seed[:])
			}
			dst := make([]hashfn.Digest, n/2)

			// Warm up once, then time batches until the floor is met.
			if err := kernel.MerkleLevelCtx(ctx, eng, dst, prev); err != nil {
				return nil, err
			}
			iters := 0
			var elapsed time.Duration
			for elapsed < hashBenchMinTime {
				start := time.Now()
				if err := kernel.MerkleLevelCtx(ctx, eng, dst, prev); err != nil {
					return nil, err
				}
				elapsed += time.Since(start)
				iters++
			}
			nsPerOp := float64(elapsed.Nanoseconds()) / float64(iters)
			sec := nsPerOp / 1e9
			r := HashBenchResult{
				Engine:      name,
				LogN:        logN,
				NsPerOp:     nsPerOp,
				NodesPerSec: float64(n/2) / sec,
				MBPerSec:    float64(n*hashfn.Size) / 1e6 / sec,
			}
			if eng.ID() == hashfn.IDSHA3 {
				baseline[logN] = nsPerOp
				r.SpeedupVsSHA3 = 1
			} else if base, ok := baseline[logN]; ok && nsPerOp > 0 {
				r.SpeedupVsSHA3 = base / nsPerOp
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// RenderHashMatrix formats the matrix as the per-engine benchmark table
// nocap-bench prints.
func RenderHashMatrix(results []HashBenchResult) string {
	var b strings.Builder
	b.WriteString("Hash-engine Merkle level kernel (software analogue of the §IV-B hash FU)\n")
	fmt.Fprintf(&b, "%-10s %6s %14s %16s %12s %10s\n",
		"engine", "log2N", "ns/level", "nodes/s", "MB/s", "vs sha3")
	for _, r := range results {
		fmt.Fprintf(&b, "%-10s %6d %14.0f %16.0f %12.1f %9.2fx\n",
			r.Engine, r.LogN, r.NsPerOp, r.NodesPerSec, r.MBPerSec, r.SpeedupVsSHA3)
	}
	return b.String()
}
