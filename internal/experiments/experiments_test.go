package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestTableI(t *testing.T) {
	res := TableI()
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Paper Table I totals: 54.00, 37.45, 8.03, 95.14, 1.09 seconds.
	want := []float64{54.00, 37.45, 8.03, 95.14, 1.09}
	for i, w := range want {
		got := res.Rows[i].Times.Total()
		if math.Abs(got-w)/w > 0.03 {
			t.Errorf("row %d total %.2f, paper %.2f", i, got, w)
		}
	}
	// NoCap's end-to-end must beat PipeZK's by ~7.4× (§III).
	ratio := res.Rows[2].Times.Total() / res.Rows[4].Times.Total()
	if math.Abs(ratio-7.4) > 0.5 {
		t.Errorf("end-to-end gain over PipeZK %.1f, paper 7.4", ratio)
	}
	if !strings.Contains(res.Render(), "NoCap") {
		t.Fatal("render missing rows")
	}
}

func TestTableIV(t *testing.T) {
	res := TableIV()
	if math.Abs(res.GmeanVsCPU-586)/586 > 0.05 {
		t.Errorf("gmean vs CPU %.0f, paper 586", res.GmeanVsCPU)
	}
	if math.Abs(res.GmeanVsPipe-41)/41 > 0.08 {
		t.Errorf("gmean vs PipeZK %.0f, paper 41", res.GmeanVsPipe)
	}
	// Per-benchmark speedups: 560–622 vs CPU (Table IV).
	for _, r := range res.Rows {
		if r.VsCPU < 540 || r.VsCPU > 650 {
			t.Errorf("%s speedup vs CPU %.0f outside Table IV band", r.Name, r.VsCPU)
		}
	}
	if !strings.Contains(res.Render(), "gmean") {
		t.Fatal("render incomplete")
	}
}

func TestTableV(t *testing.T) {
	res := TableV()
	if math.Abs(res.Gmean-16.8)/16.8 > 0.08 {
		t.Errorf("end-to-end gmean %.1f, paper 16.8", res.Gmean)
	}
	// Paper Table V: per-benchmark speedups 7.4, 12.1, 19.6, 34.1, 22.4.
	want := []float64{7.4, 12.1, 19.6, 34.1, 22.4}
	for i, w := range want {
		if math.Abs(res.Rows[i].VsPipeZK-w)/w > 0.08 {
			t.Errorf("%s end-to-end speedup %.1f, paper %.1f",
				res.Rows[i].Name, res.Rows[i].VsPipeZK, w)
		}
	}
}

func TestTableIIAndIII(t *testing.T) {
	if total := TableII().Area.Total(); math.Abs(total-45.87) > 0.02 {
		t.Errorf("area %.2f", total)
	}
	for _, r := range TableIII().Rows {
		if math.Abs(r.ProofMB-r.PaperMB)/r.PaperMB > 0.03 {
			t.Errorf("%s proof %.2fMB vs paper %.2f", r.Name, r.ProofMB, r.PaperMB)
		}
		if math.Abs(r.VerifyMS-r.PaperVMms)/r.PaperVMms > 0.04 {
			t.Errorf("%s verify %.1fms vs paper %.1f", r.Name, r.VerifyMS, r.PaperVMms)
		}
	}
}

func TestFigure5And6(t *testing.T) {
	p := Figure5().Power
	if math.Abs(p.Total()-62) > 5 {
		t.Errorf("power %.1fW", p.Total())
	}
	f6 := Figure6()
	if len(f6.Rows) != 5 {
		t.Fatalf("%d tasks", len(f6.Rows))
	}
	if f6.Rows[0].Task != "sumcheck" {
		t.Fatalf("dominant task %s", f6.Rows[0].Task)
	}
	var sumT, sumTr float64
	for _, r := range f6.Rows {
		sumT += r.NoCapShare
		sumTr += r.NoCapTraffic
	}
	if math.Abs(sumT-1) > 0.01 || math.Abs(sumTr-1) > 0.01 {
		t.Fatalf("shares don't sum to 1: %.3f %.3f", sumT, sumTr)
	}
}

func TestFigure7(t *testing.T) {
	res := Figure7()
	if len(res.Points) != len(figure7Resources)*len(Figure7Scales) {
		t.Fatalf("%d points", len(res.Points))
	}
	find := func(resource string, scale float64) float64 {
		for _, p := range res.Points {
			if p.Resource == resource && p.Scale == scale {
				return p.RelPerf
			}
		}
		t.Fatalf("missing %s@%.2f", resource, scale)
		return 0
	}
	// At scale 1 everything is exactly 1.
	for _, r := range figure7Resources {
		if v := find(r.name, 1); math.Abs(v-1) > 1e-9 {
			t.Errorf("%s@1 = %.3f", r.name, v)
		}
	}
	// Arithmetic is the most sensitive resource when halved (Fig. 7).
	arith := find("arith-fu", 0.5)
	for _, other := range []string{"hash-fu", "ntt-fu", "hbm-bw"} {
		if find(other, 0.5) < arith {
			t.Errorf("halving %s hurts more than arithmetic", other)
		}
	}
	// Register file: no benefit growing, drastic cost shrinking.
	if find("reg-file", 4) > 1.001 {
		t.Error("growing register file should not help")
	}
	if find("reg-file", 0.25) > 0.6 {
		t.Error("quarter register file should degrade drastically")
	}
	// Scaling anything up gives small benefit (<1.4x).
	for _, r := range figure7Resources {
		if v := find(r.name, 4); v > 1.4 {
			t.Errorf("%s@4 = %.2f — should flatten out", r.name, v)
		}
	}
}

func TestFigure8(t *testing.T) {
	res := Figure8()
	if len(res.Points) == 0 {
		t.Fatal("no design points")
	}
	// The 2 TB/s frontier must dominate at the high-performance end.
	var best1, best2 float64
	for _, p := range res.Points {
		if p.HBMTBs == 1 && p.Perf > best1 {
			best1 = p.Perf
		}
		if p.HBMTBs == 2 && p.Perf > best2 {
			best2 = p.Perf
		}
	}
	if best2 <= best1 {
		t.Fatalf("2TB/s frontier (%.2f) does not beat 1TB/s (%.2f)", best2, best1)
	}
	// The chosen configuration must sit near its Pareto frontier: no
	// same-HBM point with ≤ default area may exceed default perf by >5%.
	for _, p := range res.Points {
		if p.HBMTBs == 1 && p.AreaMM2 <= 45.9 && p.Perf > 1.05 {
			t.Errorf("config (%.1fmm², %.2fx) dominates the chosen design", p.AreaMM2, p.Perf)
		}
	}
	if !strings.Contains(res.Render(), "Pareto") {
		t.Fatal("render incomplete")
	}
}

func TestMultiplyAnalysis(t *testing.T) {
	res := MultiplyAnalysis(10)
	if res.MeasuredSOMulsPerConstraint <= 0 {
		t.Fatal("no multiplies measured")
	}
	// Groth16 must do substantially more 64-bit multiplies; the paper
	// reports 4.94×, and our prover (without Spark) undercounts its own
	// side, so the ratio lands higher — accept a broad band around it.
	if res.Ratio < 2 {
		t.Fatalf("ratio %.1f — Groth16 should cost far more multiplies", res.Ratio)
	}
	if math.Abs(res.SlowdownAccounting-1.74) > 0.01 {
		t.Fatalf("slowdown accounting %.2f", res.SlowdownAccounting)
	}
}

func TestAblations(t *testing.T) {
	res := Ablations(10)
	if res.NoCapRecomputeSpeedup <= 1.0 {
		t.Fatal("recomputation must speed up NoCap")
	}
	if math.Abs(res.SumcheckTrafficSaved-0.31) > 0.01 {
		t.Fatalf("traffic saved %.2f", res.SumcheckTrafficSaved)
	}
	if res.MeasuredRSvsExpander <= 0 {
		t.Fatal("no encode measurement")
	}
	// Raw Goldilocks modmul must beat the 36-multiply 256-bit Montgomery
	// multiply by a wide margin on any host.
	if res.MeasuredFieldSpeedup < 2 {
		t.Fatalf("field speedup %.1f implausible", res.MeasuredFieldSpeedup)
	}
	if res.CPUGoldilocks*res.CPUReedSolomon < 2.0 {
		t.Fatal("combined CPU optimization should exceed 2x")
	}
}

func TestDatabaseThroughput(t *testing.T) {
	res := DatabaseThroughput()
	if res.CPUTxPerSec < 1 || res.CPUTxPerSec > 4 {
		t.Errorf("CPU throughput %d tx/s, paper says 2", res.CPUTxPerSec)
	}
	if math.Abs(float64(res.NoCapTxPerSec-1142))/1142 > 0.10 {
		t.Errorf("NoCap throughput %d tx/s, paper says 1142", res.NoCapTxPerSec)
	}
}

func TestPhotoEdit(t *testing.T) {
	res := PhotoEdit()
	if res.CPUSec < 12*60 {
		t.Errorf("CPU photo proof %.0fs, paper says over 12 minutes", res.CPUSec)
	}
	if res.NoCapSec < 1.0 || res.NoCapSec > 2.0 {
		t.Errorf("NoCap photo proof %.2fs, paper says just over a second", res.NoCapSec)
	}
	if math.Abs(res.VerifySec-0.2) > 0.03 {
		t.Errorf("verification %.2fs, paper says 0.2s", res.VerifySec)
	}
}

func TestMeasuredRun(t *testing.T) {
	res := Measured(12, 1)
	if !res.SatisfiedVerified {
		t.Fatal("measured proof did not verify")
	}
	if res.ProveSec <= 0 || res.ProofBytes <= 0 {
		t.Fatal("no measurements")
	}
	sum := 0.0
	for _, v := range res.TaskShares {
		sum += v
	}
	if math.Abs(sum-1) > 0.01 {
		t.Fatalf("task shares sum to %.3f", sum)
	}
	if !strings.Contains(res.Render(), "sumcheck") {
		t.Fatal("render incomplete")
	}
}

func TestRendersNonEmpty(t *testing.T) {
	for name, s := range map[string]string{
		"t1": TableI().Render(), "t2": TableII().Render(), "t3": TableIII().Render(),
		"t4": TableIV().Render(), "t5": TableV().Render(),
		"f5": Figure5().Render(), "f6": Figure6().Render(),
		"uc1": DatabaseThroughput().Render(), "uc2": PhotoEdit().Render(),
	} {
		if len(s) < 50 {
			t.Errorf("%s render too short", name)
		}
	}
}

func TestPlatforms(t *testing.T) {
	res := Platforms()
	// Paper: GPUs are ~10× off NoCap's multiply-add bandwidth.
	if math.Abs(res.GPUGapVsNoCap-10.24) > 0.5 {
		t.Errorf("GPU gap %.1f, paper says ~10x", res.GPUGapVsNoCap)
	}
	// Paper: GZKP would run Auction 47.5× slower than NoCap.
	if math.Abs(res.GZKPGap-47.5) > 2.5 {
		t.Errorf("GZKP Auction gap %.1f, paper says 47.5x", res.GZKPGap)
	}
	if !strings.Contains(res.Render(), "FPGA") {
		t.Error("render incomplete")
	}
}

func TestProofComposition(t *testing.T) {
	res := ProofComposition()
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	aes := res.Rows[0]
	// At 2^24 the direct scheme is within ~paper size (the composition
	// matters little at the smallest benchmark)...
	if aes.DirectMB < 5 || aes.DirectMB > 10 {
		t.Errorf("AES direct proof %.1f MB implausible", aes.DirectMB)
	}
	// ...but at 2^30 the direct vectors dominate and exceed the composed
	// size severalfold — the gap Orion's composition closes.
	auction := res.Rows[4]
	if auction.DirectMB < 2*auction.ComposedMB {
		t.Errorf("direct %.1f MB should far exceed composed %.1f MB at 2^30",
			auction.DirectMB, auction.ComposedMB)
	}
	if auction.VectorsMB < 0.8*auction.DirectMB {
		t.Error("vectors should dominate the direct scheme at scale")
	}
	if !strings.Contains(res.Render(), "composition") {
		t.Error("render incomplete")
	}
}

func TestHostInterface(t *testing.T) {
	res := HostInterface()
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		// §IV-D: "more than enough to keep NoCap busy" — the transfer must
		// be a small fraction of proving time.
		if r.Utilization > 0.25 {
			t.Errorf("%s: PCIe transfer is %.0f%% of prover time", r.Name, 100*r.Utilization)
		}
	}
	if !strings.Contains(res.Render(), "PCIe") {
		t.Error("render incomplete")
	}
}

func TestCSVOutputs(t *testing.T) {
	var buf strings.Builder
	if err := Figure7().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "resource,scale,rel_perf\n") ||
		strings.Count(buf.String(), "\n") != 26 {
		t.Fatalf("figure 7 csv malformed:\n%s", buf.String())
	}
	buf.Reset()
	if err := Figure8().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hbm_tbs") {
		t.Fatal("figure 8 csv malformed")
	}
	buf.Reset()
	if err := TableIV().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "\n") != 6 {
		t.Fatal("table 4 csv malformed")
	}
}

func TestRackScale(t *testing.T) {
	res := RackScaleStudy(550_000_000)
	if len(res.Rows) != 5 || res.Rows[0].Chips != 1 {
		t.Fatalf("unexpected rows: %+v", res.Rows)
	}
	if res.Rows[0].Speedup != 1 {
		t.Fatal("baseline speedup must be 1")
	}
	// Scaling is near-linear, slightly super-linear even: smaller shards
	// carry less per-constraint sumcheck-recomputation work (the lScale
	// L-dependence) — the §X intuition that accelerators targeting small
	// individual proofs achieve higher throughput cheaply.
	last := res.Rows[len(res.Rows)-1]
	if last.Speedup < 10 || last.Speedup > 24 {
		t.Fatalf("16-chip speedup %.1f implausible", last.Speedup)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].TotalSec > res.Rows[i-1].TotalSec {
			t.Fatalf("%d chips slower than %d", res.Rows[i].Chips, res.Rows[i-1].Chips)
		}
	}
	if !strings.Contains(res.Render(), "rack-scale") {
		t.Fatal("render incomplete")
	}
}
