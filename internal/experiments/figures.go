package experiments

import (
	"fmt"
	"sort"
	"strings"

	"nocap/internal/perfmodel"
	"nocap/internal/power"
	"nocap/internal/sim"
	"nocap/internal/tasks"
)

// Figure5Result is the power breakdown (paper Fig. 5, 16M-constraint
// statement; "essentially identical across benchmarks").
type Figure5Result struct {
	Power power.PowerBreakdown
}

// Figure5 regenerates the power breakdown.
func Figure5() Figure5Result {
	res := sim.Prover(sim.DefaultConfig(), 24, tasks.DefaultOptions())
	return Figure5Result{Power: power.Estimate(res)}
}

// Render prints Figure 5.
func (f Figure5Result) Render() string {
	p := f.Power
	return fmt.Sprintf(`Figure 5: NoCap power breakdown (16M-constraint statement)
FUs:           %5.1f W (%4.1f%%)   [paper: 13%%]
Register file: %5.1f W (%4.1f%%)   [paper: 44%%]
HBM:           %5.1f W (%4.1f%%)   [paper: 42%%]
Total:         %5.1f W            [paper: 62 W]
`, p.FU, 100*p.FUShare(), p.RegFile, 100*p.RegFileShare(), p.HBM, 100*p.HBMShare(), p.Total())
}

// Figure6Row is one task's share of runtime and traffic.
type Figure6Row struct {
	Task                 string
	CPUShare, NoCapShare float64
	NoCapTraffic         float64
	PaperCPU, PaperNoCap float64
	PaperTrafficFootnote float64
}

// Figure6Result is the runtime/traffic breakdown (paper Fig. 6).
type Figure6Result struct{ Rows []Figure6Row }

// Figure6 regenerates the runtime breakdown (a) for CPU (calibrated
// shares) and NoCap (simulated), and the NoCap memory-traffic breakdown
// (b).
func Figure6() Figure6Result {
	res := sim.Prover(sim.DefaultConfig(), 24, tasks.DefaultOptions())
	paperNoCap := map[string]float64{
		"sumcheck": 0.70, "rs-encode": 0.09, "poly-arith": 0.12, "merkle": 0.05, "spmv": 0.005,
	}
	paperTraffic := map[string]float64{
		"sumcheck": 0.55, "rs-encode": 0.09, "poly-arith": 0.25, "merkle": 0.09, "spmv": 0.01,
	}
	var rows []Figure6Row
	for kind := tasks.Kind(0); kind < tasks.NumKinds; kind++ {
		name := kind.String()
		rows = append(rows, Figure6Row{
			Task:                 name,
			CPUShare:             perfmodel.CPUTaskShares[name],
			NoCapShare:           res.TaskShare(kind),
			NoCapTraffic:         res.TrafficShare(kind),
			PaperCPU:             perfmodel.CPUTaskShares[name],
			PaperNoCap:           paperNoCap[name],
			PaperTrafficFootnote: paperTraffic[name],
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].NoCapShare > rows[j].NoCapShare })
	return Figure6Result{Rows: rows}
}

// Render prints Figure 6.
func (f Figure6Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6: runtime breakdown (a) and NoCap memory traffic (b) by task\n")
	fmt.Fprintf(&b, "%-11s %9s %11s %13s %14s %15s\n",
		"task", "CPU time", "NoCap time", "(paper NoCap)", "NoCap traffic", "(paper traffic)")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-11s %8.1f%% %10.1f%% %12.1f%% %13.1f%% %14.1f%%\n",
			r.Task, 100*r.CPUShare, 100*r.NoCapShare, 100*r.PaperNoCap,
			100*r.NoCapTraffic, 100*r.PaperTrafficFootnote)
	}
	return b.String()
}

// Figure7Point is one (resource, scale) sensitivity measurement.
type Figure7Point struct {
	Resource string
	Scale    float64
	// RelPerf is performance relative to the default configuration
	// (gmean across the five benchmarks; >1 is faster).
	RelPerf float64
}

// Figure7Result is the parameter-sensitivity study.
type Figure7Result struct{ Points []Figure7Point }

// figure7Resources mutates one hardware resource by a scale factor.
var figure7Resources = []struct {
	name string
	mut  func(*sim.Config, float64)
}{
	{"hash-fu", func(c *sim.Config, s float64) { c.HashLanes = scaleInt(c.HashLanes, s) }},
	{"arith-fu", func(c *sim.Config, s float64) {
		c.MulLanes = scaleInt(c.MulLanes, s)
		c.AddLanes = scaleInt(c.AddLanes, s)
	}},
	{"ntt-fu", func(c *sim.Config, s float64) { c.NTTLanes = scaleInt(c.NTTLanes, s) }},
	{"hbm-bw", func(c *sim.Config, s float64) { c.MemBytesPerCycle *= s }},
	{"reg-file", func(c *sim.Config, s float64) { c.RegFileBytes = int64(float64(c.RegFileBytes) * s) }},
}

func scaleInt(v int, s float64) int {
	out := int(float64(v) * s)
	if out < 1 {
		out = 1
	}
	return out
}

// Figure7Scales are the sweep points of the sensitivity study.
var Figure7Scales = []float64{0.25, 0.5, 1, 2, 4}

// gmeanNoCapSeconds simulates the gmean proving time over the benchmark
// suite under a configuration.
func gmeanNoCapSeconds(cfg sim.Config) float64 {
	var times []float64
	for _, bm := range Benchmarks {
		logN := perfmodel.PaddedLog2(bm.Constraints)
		times = append(times, sim.Prover(cfg, logN, tasks.DefaultOptions()).Seconds())
	}
	return gmean(times)
}

// Figure7 regenerates the sensitivity sweep: each hardware building
// block scaled individually, performance relative to the default.
func Figure7() Figure7Result {
	base := gmeanNoCapSeconds(sim.DefaultConfig())
	var pts []Figure7Point
	for _, res := range figure7Resources {
		for _, s := range Figure7Scales {
			cfg := sim.DefaultConfig()
			res.mut(&cfg, s)
			pts = append(pts, Figure7Point{
				Resource: res.name,
				Scale:    s,
				RelPerf:  base / gmeanNoCapSeconds(cfg),
			})
		}
	}
	return Figure7Result{Points: pts}
}

// Render prints Figure 7 as a series table.
func (f Figure7Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7: parameter sensitivity (relative gmean performance)\n")
	fmt.Fprintf(&b, "%-10s", "resource")
	for _, s := range Figure7Scales {
		fmt.Fprintf(&b, " %7.2fx", s)
	}
	b.WriteByte('\n')
	for _, res := range figure7Resources {
		fmt.Fprintf(&b, "%-10s", res.name)
		for _, s := range Figure7Scales {
			for _, p := range f.Points {
				if p.Resource == res.name && p.Scale == s {
					fmt.Fprintf(&b, " %7.2f ", p.RelPerf)
				}
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Figure8Point is one design-space sample.
type Figure8Point struct {
	AreaMM2 float64
	// Perf is gmean performance relative to the default configuration.
	Perf   float64
	HBMTBs float64
	Pareto bool
}

// Figure8Result is the design-space exploration (paper Fig. 8).
type Figure8Result struct{ Points []Figure8Point }

// Figure8 sweeps on-chip storage and FU throughputs independently for
// 1 TB/s and 2 TB/s HBM, computes area for each configuration, and marks
// the Pareto frontier.
func Figure8() Figure8Result {
	base := gmeanNoCapSeconds(sim.DefaultConfig())
	scales := []float64{0.25, 0.5, 1, 2}
	var pts []Figure8Point
	for _, hbm := range []float64{1, 2} {
		for _, fus := range scales {
			for _, rf := range scales {
				for _, ntt := range scales {
					cfg := sim.DefaultConfig()
					cfg.MemBytesPerCycle *= hbm
					cfg.MulLanes = scaleInt(cfg.MulLanes, fus)
					cfg.AddLanes = scaleInt(cfg.AddLanes, fus)
					cfg.HashLanes = scaleInt(cfg.HashLanes, fus)
					cfg.NTTLanes = scaleInt(cfg.NTTLanes, ntt)
					cfg.RegFileBytes = int64(float64(cfg.RegFileBytes) * rf)
					pts = append(pts, Figure8Point{
						AreaMM2: power.Area(cfg).Total(),
						Perf:    base / gmeanNoCapSeconds(cfg),
						HBMTBs:  hbm,
					})
				}
			}
		}
	}
	markPareto(pts)
	return Figure8Result{Points: pts}
}

// markPareto flags points not dominated (within their HBM class) by a
// smaller-or-equal-area, faster point.
func markPareto(pts []Figure8Point) {
	for i := range pts {
		dominated := false
		for j := range pts {
			if i == j || pts[i].HBMTBs != pts[j].HBMTBs {
				continue
			}
			if pts[j].AreaMM2 <= pts[i].AreaMM2 && pts[j].Perf > pts[i].Perf {
				dominated = true
				break
			}
		}
		pts[i].Pareto = !dominated
	}
}

// Render prints the Pareto frontiers of Figure 8.
func (f Figure8Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8: design space (Pareto frontier points)\n")
	fmt.Fprintf(&b, "%6s %10s %8s\n", "HBM", "area[mm²]", "perf")
	pts := append([]Figure8Point(nil), f.Points...)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].HBMTBs != pts[j].HBMTBs {
			return pts[i].HBMTBs < pts[j].HBMTBs
		}
		return pts[i].AreaMM2 < pts[j].AreaMM2
	})
	for _, p := range pts {
		if !p.Pareto {
			continue
		}
		fmt.Fprintf(&b, "%4.0fTB %10.1f %8.2f\n", p.HBMTBs, p.AreaMM2, p.Perf)
	}
	return b.String()
}
