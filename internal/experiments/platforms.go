package experiments

import (
	"fmt"
	"strings"

	"nocap/internal/baseline"
	"nocap/internal/sim"
	"nocap/internal/tasks"
)

// PlatformsResult reproduces the §IX-B alternative-hardware analysis:
// why GPUs and FPGAs cannot approach NoCap on hash-based ZKPs.
type PlatformsResult struct {
	// NoCapMulAddsPerCycle is the accelerator's Goldilocks multiply-add
	// throughput; GPUMulAddsPerCycle the paper's measured GPU bound
	// (~200/cycle from the 125 GB/s NTT result [58]).
	NoCapMulAddsPerCycle, GPUMulAddsPerCycle float64
	// GPUGapVsNoCap is the resulting throughput gap (paper: 10×).
	GPUGapVsNoCap float64
	// GZKPAuctionSec vs NoCapAuctionSec: the paper's end-to-end estimate
	// (513 s vs 10.8 s → 47.5×).
	GZKPAuctionSec, NoCapAuctionSec, GZKPGap float64
	// FPGAMultipliers and FPGAFreqGap summarize the Alveo U55C analysis:
	// ~1,000 multipliers exhaust the fabric at ≥3× lower frequency.
	FPGAMultipliers int
	FPGAFreqGap     float64
	// FPGAThroughputGap is the implied multiply-throughput deficit.
	FPGAThroughputGap float64
}

// Platforms regenerates §IX-B.
func Platforms() PlatformsResult {
	cfg := sim.DefaultConfig()
	noCapMulAdds := float64(cfg.MulLanes) // one mul-add per lane per cycle
	gpuMulAdds := 200.0                   // paper: "about 200 Goldilocks64 multiply-adds per cycle"

	auction := sim.Prover(cfg, 30, tasks.DefaultOptions()).Seconds()

	const fpgaMultipliers = 1000
	const fpgaFreqGap = 3.0
	return PlatformsResult{
		NoCapMulAddsPerCycle: noCapMulAdds,
		GPUMulAddsPerCycle:   gpuMulAdds,
		GPUGapVsNoCap:        noCapMulAdds / gpuMulAdds,
		GZKPAuctionSec:       baseline.GZKPAuctionSeconds,
		NoCapAuctionSec:      auction,
		GZKPGap:              baseline.GZKPAuctionSeconds / auction,
		FPGAMultipliers:      fpgaMultipliers,
		FPGAFreqGap:          fpgaFreqGap,
		FPGAThroughputGap:    noCapMulAdds / fpgaMultipliers * fpgaFreqGap,
	}
}

// Render prints the §IX-B comparison.
func (p PlatformsResult) Render() string {
	var b strings.Builder
	b.WriteString("Section IX-B: alternative hardware platforms\n")
	fmt.Fprintf(&b, "GPU:  %.0f Goldilocks mul-adds/cycle vs NoCap's %.0f -> %.0fx gap [paper: 10x]\n",
		p.GPUMulAddsPerCycle, p.NoCapMulAddsPerCycle, p.GPUGapVsNoCap)
	fmt.Fprintf(&b, "      GZKP on Auction: %.0f s vs NoCap %.1f s -> %.1fx slower [paper: 47.5x]\n",
		p.GZKPAuctionSec, p.NoCapAuctionSec, p.GZKPGap)
	fmt.Fprintf(&b, "FPGA: ~%d multipliers exhaust an Alveo U55C at ≥%.0fx lower frequency\n",
		p.FPGAMultipliers, p.FPGAFreqGap)
	fmt.Fprintf(&b, "      -> ≥%.1fx multiply-throughput deficit vs NoCap\n", p.FPGAThroughputGap)
	return b.String()
}
