package experiments

import (
	"fmt"
	"strings"

	"nocap/internal/perfmodel"
)

// PCIeBytesPerSec is the host link of paper §IV-D ("PCIe 5.0 supports
// 64 GB/s bandwidth, more than enough to keep NoCap busy").
const PCIeBytesPerSec = 64e9

// HostRow is one benchmark's host-interface accounting.
type HostRow struct {
	Name string
	// WireBytes is the z̄ wire-value payload the host ships (8 B per
	// padded variable, §IV-D).
	WireBytes int64
	// TransferSec vs ProverSec: the link is "more than enough" when the
	// transfer is a small fraction of proving.
	TransferSec, ProverSec float64
	Utilization            float64
}

// HostInterfaceResult reproduces the §IV-D system-integration claim.
type HostInterfaceResult struct{ Rows []HostRow }

// HostInterface computes wire-value transfer times per benchmark.
func HostInterface() HostInterfaceResult {
	var out HostInterfaceResult
	for _, bm := range Benchmarks {
		logN := perfmodel.PaddedLog2(bm.Constraints)
		wires := int64(8) << uint(logN+1) // z has ~2·constraints entries
		prover := NoCapSeconds(bm.Constraints)
		transfer := float64(wires) / PCIeBytesPerSec
		out.Rows = append(out.Rows, HostRow{
			Name:        bm.Name,
			WireBytes:   wires,
			TransferSec: transfer,
			ProverSec:   prover,
			Utilization: transfer / prover,
		})
	}
	return out
}

// Render prints the host-interface analysis.
func (h HostInterfaceResult) Render() string {
	var b strings.Builder
	b.WriteString("Section IV-D host interface: wire-value transfer over PCIe 5.0 (64 GB/s)\n")
	fmt.Fprintf(&b, "%-9s %10s %12s %11s %12s\n", "bench", "wires", "transfer", "prover", "link util")
	for _, r := range h.Rows {
		fmt.Fprintf(&b, "%-9s %8.2fGB %10.1fms %9.2fs %11.1f%%\n",
			r.Name, float64(r.WireBytes)/1e9, r.TransferSec*1e3, r.ProverSec, 100*r.Utilization)
	}
	b.WriteString("(well under the prover time in every case: the link keeps NoCap busy)\n")
	return b.String()
}
