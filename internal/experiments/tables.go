// Package experiments regenerates every table and figure of the paper's
// evaluation (DESIGN.md §5): each generator returns structured rows and
// renders the same columns the paper reports, combining the cycle-level
// simulator (full-scale runs) with the calibrated baseline/CPU models
// and, where laptop-scale allows, measurements of the real Go prover.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"nocap/internal/baseline"
	"nocap/internal/circuits"
	"nocap/internal/perfmodel"
	"nocap/internal/power"
	"nocap/internal/sim"
	"nocap/internal/tasks"
)

// Benchmarks are the five paper benchmarks with their Table III sizes.
var Benchmarks = circuits.PaperSizes

// NoCapSeconds simulates NoCap's proving time for a raw constraint count.
func NoCapSeconds(constraints int64) float64 {
	logN := perfmodel.PaddedLog2(constraints)
	return sim.Prover(sim.DefaultConfig(), logN, tasks.DefaultOptions()).Seconds()
}

// gmean returns the geometric mean.
func gmean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// TableIRow is one system in the end-to-end comparison.
type TableIRow struct {
	Scheme, Prover string
	Times          perfmodel.EndToEnd
}

// TableIResult is the paper's Table I: end-to-end times at 16M
// constraints over a 10 MB/s link.
type TableIResult struct {
	Constraints int64
	Rows        []TableIRow
}

// TableI regenerates Table I.
func TableI() TableIResult {
	const n = 16_000_000
	g16 := func(prover float64) perfmodel.EndToEnd {
		return perfmodel.EndToEnd{
			Prover:   prover,
			Send:     perfmodel.SendSeconds(float64(baseline.Groth16ProofBytes) / 1e6),
			Verifier: baseline.Groth16VerifySeconds,
		}
	}
	so := func(prover float64) perfmodel.EndToEnd {
		return perfmodel.NoCapEndToEnd(prover, n)
	}
	return TableIResult{
		Constraints: n,
		Rows: []TableIRow{
			{"Groth16", "CPU", g16(baseline.Groth16CPUSeconds(n))},
			{"Groth16", "GPU", g16(baseline.Groth16GPUSeconds(n))},
			{"Groth16", "PipeZK", g16(baseline.PipeZKSeconds(n))},
			{"Spartan+Orion", "CPU", so(perfmodel.CPUSeconds(n))},
			{"Spartan+Orion", "NoCap", so(NoCapSeconds(n))},
		},
	}
}

// Render prints the table in the paper's layout.
func (t TableIResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: end-to-end execution time, %d R1CS constraints, 10 MB/s link\n", t.Constraints)
	fmt.Fprintf(&b, "%-15s %-8s %9s %7s %9s %8s\n", "zkSNARK", "Prover", "Prover", "Send", "Verifier", "Total")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-15s %-8s %8.2fs %6.2fs %8.2fs %7.2fs\n",
			r.Scheme, r.Prover, r.Times.Prover, r.Times.Send, r.Times.Verifier, r.Times.Total())
	}
	return b.String()
}

// TableIIResult is the area breakdown.
type TableIIResult struct{ Area power.AreaBreakdown }

// TableII regenerates Table II from the area model.
func TableII() TableIIResult { return TableIIResult{Area: power.Area(sim.DefaultConfig())} }

// Render prints Table II.
func (t TableIIResult) Render() string {
	a := t.Area
	var b strings.Builder
	b.WriteString("Table II: NoCap area breakdown [mm²]\n")
	rows := []struct {
		name string
		mm2  float64
	}{
		{"NTT FU", a.NTT}, {"Multiply FU", a.Mul}, {"Add FU", a.Add}, {"Hash FU", a.Hash},
		{"Total Compute", a.Compute()},
		{"Reg. file (2,048 x 4 KB banks)", a.RegFile},
		{"Benes network", a.Benes},
		{"Memory interface (2 x PHY)", a.MemPHYs},
		{"Total memory system", a.MemorySystem()},
		{"Total NoCap", a.Total()},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-32s %6.2f\n", r.name, r.mm2)
	}
	return b.String()
}

// TableIIIRow is one benchmark's statement parameters.
type TableIIIRow struct {
	Name               string
	Constraints        int64
	ProofMB, VerifyMS  float64
	PaperMB, PaperVMms float64
}

// TableIIIResult reproduces the benchmark table.
type TableIIIResult struct{ Rows []TableIIIRow }

// TableIII regenerates Table III from the fitted O(log²N) models,
// alongside the paper's values.
func TableIII() TableIIIResult {
	var rows []TableIIIRow
	for _, bm := range Benchmarks {
		rows = append(rows, TableIIIRow{
			Name:        bm.Name,
			Constraints: bm.Constraints,
			ProofMB:     perfmodel.ProofMB(bm.Constraints),
			VerifyMS:    perfmodel.VerifySeconds(bm.Constraints) * 1e3,
			PaperMB:     bm.ProofMB,
			PaperVMms:   bm.VerifyMS,
		})
	}
	return TableIIIResult{Rows: rows}
}

// Render prints Table III.
func (t TableIIIResult) Render() string {
	var b strings.Builder
	b.WriteString("Table III: benchmark R1CS size, proof size, verification time\n")
	fmt.Fprintf(&b, "%-9s %10s %11s %12s %12s %13s\n",
		"Benchmark", "R1CS", "Proof [MB]", "(paper)", "V time [ms]", "(paper)")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-9s %9.1fM %11.1f %12.1f %12.1f %13.1f\n",
			r.Name, float64(r.Constraints)/1e6, r.ProofMB, r.PaperMB, r.VerifyMS, r.PaperVMms)
	}
	return b.String()
}

// TableIVRow compares proving times for one benchmark.
type TableIVRow struct {
	Name                      string
	NoCapSec, CPUSec, PipeSec float64
	VsCPU, VsPipeZK           float64
}

// TableIVResult is the proving-time comparison.
type TableIVResult struct {
	Rows                     []TableIVRow
	GmeanVsCPU, GmeanVsPipe  float64
	PaperGmeanCPU, PaperPipe float64
}

// TableIV regenerates Table IV: NoCap (simulated) vs CPU and PipeZK
// (calibrated models).
func TableIV() TableIVResult {
	res := TableIVResult{PaperGmeanCPU: 586, PaperPipe: 41}
	var vsCPU, vsPipe []float64
	for _, bm := range Benchmarks {
		row := TableIVRow{
			Name:     bm.Name,
			NoCapSec: NoCapSeconds(bm.Constraints),
			CPUSec:   perfmodel.CPUSeconds(bm.Constraints),
			PipeSec:  baseline.PipeZKSeconds(bm.Constraints),
		}
		row.VsCPU = row.CPUSec / row.NoCapSec
		row.VsPipeZK = row.PipeSec / row.NoCapSec
		vsCPU = append(vsCPU, row.VsCPU)
		vsPipe = append(vsPipe, row.VsPipeZK)
		res.Rows = append(res.Rows, row)
	}
	res.GmeanVsCPU = gmean(vsCPU)
	res.GmeanVsPipe = gmean(vsPipe)
	return res
}

// Render prints Table IV.
func (t TableIVResult) Render() string {
	var b strings.Builder
	b.WriteString("Table IV: proof generation time and NoCap speedups\n")
	fmt.Fprintf(&b, "%-9s %11s %11s %9s %10s %10s\n",
		"Benchmark", "NoCap", "CPU", "vs CPU", "PipeZK", "vs PipeZK")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-9s %9.1fms %10.1fs %8.0fx %9.1fs %9.0fx\n",
			r.Name, r.NoCapSec*1e3, r.CPUSec, r.VsCPU, r.PipeSec, r.VsPipeZK)
	}
	fmt.Fprintf(&b, "gmean speedups: %.0fx vs CPU (paper: %.0fx), %.0fx vs PipeZK (paper: %.0fx)\n",
		t.GmeanVsCPU, t.PaperGmeanCPU, t.GmeanVsPipe, t.PaperPipe)
	return b.String()
}

// TableVRow is one benchmark's end-to-end comparison.
type TableVRow struct {
	Name     string
	NoCap    perfmodel.EndToEnd
	VsPipeZK float64
}

// TableVResult is the end-to-end table.
type TableVResult struct {
	Rows       []TableVRow
	Gmean      float64
	PaperGmean float64
}

// TableV regenerates Table V: NoCap end-to-end runtime and speedup over
// PipeZK's end-to-end runtime.
func TableV() TableVResult {
	res := TableVResult{PaperGmean: 16.8}
	var speeds []float64
	for _, bm := range Benchmarks {
		e2e := perfmodel.NoCapEndToEnd(NoCapSeconds(bm.Constraints), bm.Constraints)
		pipe := perfmodel.EndToEnd{
			Prover:   baseline.PipeZKSeconds(bm.Constraints),
			Send:     perfmodel.SendSeconds(float64(baseline.Groth16ProofBytes) / 1e6),
			Verifier: baseline.Groth16VerifySeconds,
		}
		row := TableVRow{Name: bm.Name, NoCap: e2e, VsPipeZK: pipe.Total() / e2e.Total()}
		speeds = append(speeds, row.VsPipeZK)
		res.Rows = append(res.Rows, row)
	}
	res.Gmean = gmean(speeds)
	return res
}

// Render prints Table V.
func (t TableVResult) Render() string {
	var b strings.Builder
	b.WriteString("Table V: NoCap end-to-end runtime [s] and speedup vs PipeZK\n")
	fmt.Fprintf(&b, "%-9s %8s %7s %9s %7s %11s\n", "Benchmark", "Prover", "Send", "Verifier", "Total", "vs PipeZK")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-9s %7.1f %7.1f %9.1f %7.1f %10.1fx\n",
			r.Name, r.NoCap.Prover, r.NoCap.Send, r.NoCap.Verifier, r.NoCap.Total(), r.VsPipeZK)
	}
	fmt.Fprintf(&b, "gmean end-to-end speedup: %.1fx (paper: %.1fx)\n", t.Gmean, t.PaperGmean)
	return b.String()
}
