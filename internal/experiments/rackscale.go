package experiments

import (
	"fmt"
	"strings"

	"nocap/internal/perfmodel"
	"nocap/internal/sim"
	"nocap/internal/tasks"
)

// RackScale models the paper's §X future-work direction: "large proofs
// could be parallelized across many accelerators, with little
// communication among them, which would enable rack-scale ZKP
// accelerator systems." A statement of N constraints splits into K
// shards proven independently (recursive/folding composition, §X); a
// final aggregation proof over the K shard proofs restores a single
// verifier check, avoiding Litmus's 100× verifier blow-up (§VII-B).
type RackScaleRow struct {
	Chips int
	// ShardSec is one chip's shard-proof time; AggregateSec the
	// aggregation proof over K shard commitments (size ~K·2^16).
	ShardSec, AggregateSec float64
	// TotalSec = shard (parallel) + aggregation; Speedup vs one chip.
	TotalSec, Speedup float64
	// Efficiency = Speedup / Chips.
	Efficiency float64
}

// RackScaleResult is the multi-accelerator scaling study.
type RackScaleResult struct {
	Constraints int64
	Rows        []RackScaleRow
}

// aggLogPerChip sizes the aggregation statement: verifying one shard
// proof recursively costs ~2^16 constraints (a hash-based verifier is
// dominated by its Merkle-path and sumcheck checks).
const aggLogPerChip = 16

// RackScaleStudy sweeps chip counts for the Auction-scale statement.
func RackScaleStudy(constraints int64) RackScaleResult {
	cfg := sim.DefaultConfig()
	res := RackScaleResult{Constraints: constraints}
	base := 0.0
	for _, chips := range []int{1, 2, 4, 8, 16} {
		shardLog := perfmodel.PaddedLog2((constraints + int64(chips) - 1) / int64(chips))
		shard := sim.Prover(cfg, shardLog, tasks.DefaultOptions()).Seconds()
		agg := 0.0
		if chips > 1 {
			aggLog := perfmodel.PaddedLog2(int64(chips) << aggLogPerChip)
			agg = sim.Prover(cfg, aggLog, tasks.DefaultOptions()).Seconds()
		}
		row := RackScaleRow{
			Chips:        chips,
			ShardSec:     shard,
			AggregateSec: agg,
			TotalSec:     shard + agg,
		}
		if chips == 1 {
			base = row.TotalSec
		}
		row.Speedup = base / row.TotalSec
		row.Efficiency = row.Speedup / float64(chips)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render prints the scaling study.
func (r RackScaleResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section X extension: rack-scale multi-accelerator proving (%.0fM constraints)\n",
		float64(r.Constraints)/1e6)
	fmt.Fprintf(&b, "%6s %10s %11s %9s %9s %11s\n", "chips", "shard", "aggregate", "total", "speedup", "efficiency")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %9.2fs %10.3fs %8.2fs %8.1fx %10.0f%%\n",
			row.Chips, row.ShardSec, row.AggregateSec, row.TotalSec, row.Speedup, 100*row.Efficiency)
	}
	b.WriteString("(shards prove in parallel; a recursive aggregation proof restores the\n")
	b.WriteString(" single-verifier check that Litmus's subcircuit split sacrificed, §VII-B;\n")
	b.WriteString(" slightly super-linear scaling reflects §X: small proofs carry less\n")
	b.WriteString(" per-constraint recomputation work)\n")
	return b.String()
}
