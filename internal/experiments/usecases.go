package experiments

import (
	"fmt"
	"strings"

	"nocap/internal/perfmodel"
)

// Litmus workload parameters (paper §VII-B: 10,000 transactions at
// 268.4M constraints ⇒ ~26,840 constraints per two-row YCSB
// transaction).
const (
	LitmusConstraintsPerTxn = 26_840
	// witnessGenNsPerConstraint models the host CPU computing wire values
	// before shipping them to NoCap (§II-A); calibrated so the 1-second
	// latency budget admits the paper's 1,142 tx/s (§VIII-A).
	witnessGenNsPerConstraint = 17.6
)

// ThroughputResult is the real-time verifiable-database use case
// (paper §I and §VIII-A: 2 tx/s on CPU vs 1,142 tx/s on NoCap at a
// 1-second transaction latency).
type ThroughputResult struct {
	LatencyBudget  float64
	CPUTxPerSec    int
	NoCapTxPerSec  int
	PaperCPUTx     int
	PaperNoCapTx   int
	NoCapBatchSize int
}

// litmusLatency returns end-to-end latency (witness generation, proving,
// verification) for a batch of txns using the given prover-time model.
func litmusLatency(txns int, proveSec func(int64) float64) float64 {
	constraints := int64(txns) * LitmusConstraintsPerTxn
	wg := witnessGenNsPerConstraint * float64(constraints) * 1e-9
	return wg + proveSec(constraints) + perfmodel.VerifySeconds(constraints)
}

// maxBatch finds the largest batch meeting the latency budget.
func maxBatch(budget float64, proveSec func(int64) float64) int {
	lo, hi := 0, 1<<22
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if litmusLatency(mid, proveSec) <= budget {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// DatabaseThroughput regenerates the verifiable-database use case.
func DatabaseThroughput() ThroughputResult {
	const budget = 1.0
	cpuBatch := maxBatch(budget, perfmodel.CPUSeconds)
	noCapBatch := maxBatch(budget, NoCapSeconds)
	return ThroughputResult{
		LatencyBudget:  budget,
		CPUTxPerSec:    cpuBatch,
		NoCapTxPerSec:  noCapBatch,
		PaperCPUTx:     2,
		PaperNoCapTx:   1142,
		NoCapBatchSize: noCapBatch,
	}
}

// Render prints the use case.
func (t ThroughputResult) Render() string {
	return fmt.Sprintf(`Use case: real-time verifiable database (1 s transaction latency)
CPU prover:   %6d tx/s  [paper: %d]
NoCap prover: %6d tx/s  [paper: %d]
`, t.CPUTxPerSec, t.PaperCPUTx, t.NoCapTxPerSec, t.PaperNoCapTx)
}

// PhotoResult is the secure photo-modification use case (paper §I: a
// 256 KB image takes over 12 minutes to prove on CPU, just over a second
// on NoCap, 0.2 s to verify).
type PhotoResult struct {
	Constraints        int64
	CPUSec, NoCapSec   float64
	VerifySec, SendSec float64
}

// PhotoEdit regenerates the photo use case. A 256 KB image descends
// through a crop/transform circuit of ~98M constraints (the same
// 2^27-padded scale as the 256 KB-message RSA benchmark).
func PhotoEdit() PhotoResult {
	const constraints = 98_000_000
	return PhotoResult{
		Constraints: constraints,
		CPUSec:      perfmodel.CPUSeconds(constraints),
		NoCapSec:    NoCapSeconds(constraints),
		VerifySec:   perfmodel.VerifySeconds(constraints),
		SendSec:     perfmodel.SendSeconds(perfmodel.ProofMB(constraints)),
	}
}

// Render prints the photo use case.
func (p PhotoResult) Render() string {
	var b strings.Builder
	b.WriteString("Use case: secure photo modification (256 KB image)\n")
	fmt.Fprintf(&b, "CPU proof:    %6.1f s (%.1f min)  [paper: over 12 minutes]\n", p.CPUSec, p.CPUSec/60)
	fmt.Fprintf(&b, "NoCap proof:  %6.2f s            [paper: just over a second]\n", p.NoCapSec)
	fmt.Fprintf(&b, "Verification: %6.2f s            [paper: 0.2 s]\n", p.VerifySec)
	return b.String()
}
