package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"nocap/internal/circuits"
	"nocap/internal/field"
	"nocap/internal/hashfn"
	"nocap/internal/pcs"
	"nocap/internal/poly"
	"nocap/internal/spartan"
	"nocap/internal/sumcheck"
	"nocap/internal/transcript"
)

// MeasuredResult reports real measurements of this repository's Go
// implementation at laptop scale: end-to-end prove/verify times, proof
// size, and a per-task runtime breakdown comparable to Fig. 6a's CPU
// bars.
type MeasuredResult struct {
	LogN              int
	Reps              int
	ProveSec          float64
	VerifySec         float64
	ProofBytes        int
	TaskSeconds       map[string]float64
	TaskShares        map[string]float64
	SatisfiedVerified bool
}

// Measured builds a synthetic banded instance of 2^logN constraints,
// proves and verifies it with the real Spartan+Orion implementation, and
// times the underlying tasks individually.
func Measured(logN, reps int) MeasuredResult {
	res, err := MeasuredCtx(context.Background(), logN, reps)
	if err != nil {
		panic("experiments: measured run failed: " + err.Error())
	}
	return res
}

// MeasuredCtx is Measured under a context: a long measured run (the CLI
// allows 2^20+ constraints) can be abandoned via -timeout or SIGINT,
// with the in-flight prove cancelled at its next checkpoint.
func MeasuredCtx(ctx context.Context, logN, reps int) (MeasuredResult, error) {
	return MeasuredEngineCtx(ctx, logN, reps, "")
}

// MeasuredEngineCtx is MeasuredCtx with the prover's hash engine
// selected by name ("" or "sha3" is the default scalar engine;
// "keccak-x4" the multi-buffer Merkle engine).
func MeasuredEngineCtx(ctx context.Context, logN, reps int, hashName string) (MeasuredResult, error) {
	bm := circuits.Synthetic(1 << uint(logN))
	params := spartan.DefaultParams()
	params.Reps = reps
	if hashName != "" {
		eng, ok := hashfn.ByName(hashName)
		if !ok {
			return MeasuredResult{}, fmt.Errorf("experiments: unknown hash engine %q", hashName)
		}
		params.PCS.Hash = eng
	}
	params.PCS.ZK = false // keep commit geometry identical to the isolated
	// encode timing below, so the encode/Merkle split is exact
	if half := bm.Inst.NumVars() / 2; params.PCS.Rows > half {
		params.PCS.Rows = half
	}

	start := time.Now()
	proof, err := spartan.ProveCtx(ctx, params, bm.Inst, bm.IO, bm.Witness)
	proveSec := time.Since(start).Seconds()
	if err != nil {
		return MeasuredResult{}, fmt.Errorf("experiments: measured prove: %w", err)
	}
	start = time.Now()
	verr := spartan.VerifyCtx(ctx, params, bm.Inst, bm.IO, proof)
	verifySec := time.Since(start).Seconds()
	if verr != nil && ctx.Err() != nil {
		return MeasuredResult{}, fmt.Errorf("experiments: measured verify: %w", verr)
	}

	res := MeasuredResult{
		LogN:              logN,
		Reps:              reps,
		ProveSec:          proveSec,
		VerifySec:         verifySec,
		ProofBytes:        proof.SizeBytes(),
		TaskSeconds:       map[string]float64{},
		TaskShares:        map[string]float64{},
		SatisfiedVerified: verr == nil,
	}

	// Per-task timing on the same instance: each paper task is exercised
	// in isolation, mirroring the composition inside Prove.
	z := bm.Inst.AssembleZ(bm.IO, bm.Witness)

	start = time.Now()
	az, err := bm.Inst.A.MulCtx(ctx, z)
	if err != nil {
		return MeasuredResult{}, err
	}
	bz, err := bm.Inst.B.MulCtx(ctx, z)
	if err != nil {
		return MeasuredResult{}, err
	}
	cz, err := bm.Inst.C.MulCtx(ctx, z)
	if err != nil {
		return MeasuredResult{}, err
	}
	res.TaskSeconds["spmv"] = time.Since(start).Seconds()

	// Sumcheck: the outer degree-3 protocol, per repetition.
	start = time.Now()
	for rep := 0; rep < reps; rep++ {
		tr := transcript.New("measure")
		tau := tr.Challenges("tau", bm.Inst.LogConstraints())
		arrays := []*poly.MLE{
			poly.NewMLE(poly.EqTable(tau)),
			poly.NewMLE(append([]field.Element(nil), az...)),
			poly.NewMLE(append([]field.Element(nil), bz...)),
			poly.NewMLE(append([]field.Element(nil), cz...)),
		}
		if _, _, _, err := sumcheck.ProveCtx(ctx, tr, "outer", field.Zero, arrays, 3, func(v []field.Element) field.Element {
			return field.Mul(v[0], field.Sub(field.Mul(v[1], v[2]), v[3]))
		}); err != nil {
			return MeasuredResult{}, err
		}
	}
	res.TaskSeconds["sumcheck"] = time.Since(start).Seconds()

	// PCS commit, split into Reed-Solomon encoding vs Merkle hashing by
	// timing the encode separately.
	witness := z[len(z)/2:]
	pp := params.PCS
	if pp.Rows > len(witness) {
		pp.Rows = len(witness)
	}
	start = time.Now()
	cols := len(witness) / pp.Rows
	for r := 0; r < pp.Rows; r++ {
		pp.Code.Encode(witness[r*cols : (r+1)*cols])
	}
	res.TaskSeconds["rs-encode"] = time.Since(start).Seconds()

	start = time.Now()
	if _, err := pcs.CommitCtx(ctx, pp, witness); err != nil {
		return MeasuredResult{}, fmt.Errorf("experiments: measured commit: %w", err)
	}
	commitSec := time.Since(start).Seconds()
	merkleSec := commitSec - res.TaskSeconds["rs-encode"]
	if merkleSec < 0 {
		merkleSec = 0
	}
	res.TaskSeconds["merkle"] = merkleSec

	// Polynomial arithmetic: the eq-table constructions and folds.
	start = time.Now()
	r := transcript.New("measure-poly").Challenges("r", bm.Inst.LogVars())
	poly.EqTable(r)
	m := poly.NewMLE(append([]field.Element(nil), z...))
	for _, ri := range r {
		m.Fold(ri)
	}
	res.TaskSeconds["poly-arith"] = time.Since(start).Seconds()

	total := 0.0
	for _, v := range res.TaskSeconds {
		total += v
	}
	for k, v := range res.TaskSeconds {
		res.TaskShares[k] = v / total
	}
	return res, nil
}

// Render prints the measured run.
func (m MeasuredResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Measured Go implementation at 2^%d constraints (%d repetition(s))\n", m.LogN, m.Reps)
	fmt.Fprintf(&b, "prove: %.3f s   verify: %.3f s   proof: %.2f MB   verified: %v\n",
		m.ProveSec, m.VerifySec, float64(m.ProofBytes)/1e6, m.SatisfiedVerified)
	b.WriteString("task breakdown (measured):\n")
	for _, k := range []string{"sumcheck", "rs-encode", "poly-arith", "merkle", "spmv"} {
		fmt.Fprintf(&b, "  %-11s %6.1f%%\n", k, 100*m.TaskShares[k])
	}
	return b.String()
}
