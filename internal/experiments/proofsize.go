package experiments

import (
	"fmt"
	"strings"

	"nocap/internal/perfmodel"
)

// ProofSizeRow decomposes one benchmark's proof size.
type ProofSizeRow struct {
	Name string
	LogN int
	// Direct-scheme components (this repository's Brakedown/Shockwave-
	// style opening, DESIGN.md §3.3), in MB.
	VectorsMB, ColumnsMB, PathsMB, SumcheckMB float64
	// DirectMB is their sum; ComposedMB the paper's Orion-composed size.
	DirectMB, ComposedMB float64
}

// ProofCompositionResult quantifies what Orion's proof composition buys:
// the direct opening ships (reps + proximity) row-combination vectors of
// O(N/rows) elements, which dominates at scale; the composition replaces
// them with a second small SNARK, flattening growth to O(log²N)
// (paper §II-A).
type ProofCompositionResult struct{ Rows []ProofSizeRow }

// proofGeometry mirrors pcs.Commit's layout at paper parameters.
func proofGeometry(logN int) (msgLen, rows, masks, queries, reps int) {
	rows, masks, queries, reps = 128, 4+3, 189, 3
	cols := (1 << uint(logN-1)) / rows // witness half split into 128 rows
	msgLen = cols + queries            // ZK row tails
	for msgLen&(msgLen-1) != 0 {
		msgLen++
	}
	return msgLen, rows, masks, queries, reps
}

// ProofComposition computes the direct-scheme size breakdown for each
// benchmark next to the paper's composed sizes.
func ProofComposition() ProofCompositionResult {
	var out ProofCompositionResult
	for _, bm := range Benchmarks {
		logN := perfmodel.PaddedLog2(bm.Constraints)
		msgLen, rows, masks, queries, reps := proofGeometry(logN)
		row := ProofSizeRow{Name: bm.Name, LogN: logN}
		// (proximity + per-point eval) vectors, each msgLen elements.
		row.VectorsMB = float64((4+reps)*msgLen*8) / 1e6
		// Shared column openings: queries × (rows+masks) elements.
		row.ColumnsMB = float64(queries*(rows+masks)*8) / 1e6
		// Merkle paths: queries × log2(4·msgLen) digests.
		depth := 2
		for 1<<uint(depth) < 4*msgLen {
			depth++
		}
		row.PathsMB = float64(queries*(8+32*depth)) / 1e6
		// Sumcheck messages: reps × (outer deg-3 over logN + inner deg-2
		// over logN+1 rounds).
		row.SumcheckMB = float64(reps*(logN*4+(logN+1)*3)*8) / 1e6
		row.DirectMB = row.VectorsMB + row.ColumnsMB + row.PathsMB + row.SumcheckMB
		row.ComposedMB = perfmodel.ProofMB(bm.Constraints)
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Render prints the composition analysis.
func (p ProofCompositionResult) Render() string {
	var b strings.Builder
	b.WriteString("Proof composition analysis: direct Brakedown opening vs Orion composition\n")
	fmt.Fprintf(&b, "%-9s %5s %9s %9s %7s %9s %11s %13s\n",
		"bench", "logN", "vectors", "columns", "paths", "sumcheck", "direct[MB]", "composed[MB]")
	for _, r := range p.Rows {
		fmt.Fprintf(&b, "%-9s %5d %8.2fM %8.2fM %6.2fM %8.3fM %11.1f %13.1f\n",
			r.Name, r.LogN, r.VectorsMB, r.ColumnsMB, r.PathsMB, r.SumcheckMB,
			r.DirectMB, r.ComposedMB)
	}
	b.WriteString("(the O(N/rows) combination vectors dominate the direct scheme at scale;\n")
	b.WriteString(" Orion's code-switching composition replaces them with a second small\n")
	b.WriteString(" SNARK, giving the paper's O(log²N) proof sizes — DESIGN.md §3.3)\n")
	return b.String()
}
