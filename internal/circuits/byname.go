package circuits

import (
	"sort"

	"nocap/internal/zkerr"
)

// minSize is the single source of truth for each benchmark's smallest
// meaningful size parameter: one AES block, one SHA block, one RSA
// squaring, the 4-entry minimum the auction and litmus generators
// require, and the 64-constraint floor below which the synthetic band
// degenerates. Every entry point that accepts an untrusted size
// (nocap-prove's -n, the serving layer's request field) clamps through
// Clamp, so the CLI and the service can never disagree about what a
// given (circuit, n) pair means.
var minSize = map[string]int{
	"aes":       1,
	"sha":       1,
	"rsa":       1,
	"auction":   4,
	"litmus":    4,
	"synthetic": 64,
}

// Names returns the benchmark names ByName accepts, sorted.
func Names() []string {
	names := make([]string, 0, len(minSize))
	for name := range minSize {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Clamp raises n to the named benchmark's minimum size. The second
// return is false for unknown names.
func Clamp(name string, n int) (int, bool) {
	floor, ok := minSize[name]
	if !ok {
		return n, false
	}
	return max(n, floor), true
}

// ByName builds the named benchmark at size parameter n (blocks, bids,
// squarings, transactions, or constraints, per circuit), clamped to the
// circuit's minimum. Unknown names return a usage-classified error.
func ByName(name string, n int) (*Benchmark, error) {
	n, ok := Clamp(name, n)
	if !ok {
		return nil, zkerr.Usagef("unknown circuit %q (want aes|sha|rsa|auction|litmus|synthetic)", name)
	}
	switch name {
	case "aes":
		key := [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
			0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
		pt := make([]byte, 16*n)
		for i := range pt {
			pt[i] = byte(i)
		}
		return AES(key, pt), nil
	case "sha":
		data := make([]byte, 64*n)
		for i := range data {
			data[i] = byte(i * 3)
		}
		return SHA256(data), nil
	case "rsa":
		return RSA(n, 8, 42), nil
	case "auction":
		bids := make([]uint64, n)
		for i := range bids {
			bids[i] = uint64((i*2654435761 + 12345) % (1 << 20))
		}
		return Auction(bids), nil
	case "litmus":
		return Litmus(n, 8, 42), nil
	default: // "synthetic"
		return Synthetic(n), nil
	}
}
