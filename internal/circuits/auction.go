package circuits

import (
	"nocap/internal/field"
	"nocap/internal/r1cs"
)

// bidBits bounds bid magnitudes (range-checked).
const bidBits = 32

// Auction builds the paper's verifiable sealed-bid auction benchmark
// ([33], §VII-B): the auctioneer proves that the published winner and
// clearing price follow the second-price rules without revealing losing
// bids. Bids are secret; public outputs are the winning bid, the
// clearing (second-highest) price, and the winner index.
func Auction(bids []uint64) *Benchmark {
	if len(bids) < 2 {
		panic("circuits: auction needs at least 2 bids")
	}
	b := r1cs.NewBuilder()

	bidVars := make([]r1cs.Variable, len(bids))
	for i, v := range bids {
		if v >= 1<<bidBits {
			panic("circuits: bid exceeds range")
		}
		bidVars[i] = b.Secret(field.New(v))
		b.ToBits(r1cs.FromVar(bidVars[i]), bidBits)
	}

	// Running maximum, second maximum, and argmax.
	maxLC := r1cs.FromVar(bidVars[0])
	secondLC := r1cs.LC(nil) // zero
	argLC := r1cs.LC(nil)    // index 0
	for i := 1; i < len(bidVars); i++ {
		bid := r1cs.FromVar(bidVars[i])
		beatsMax := b.LessThan(maxLC, bid, bidBits)
		beatsSecond := b.LessThan(secondLC, bid, bidBits)
		// If the bid beats the max, the old max becomes the second price;
		// else if it beats the second, it becomes the second price.
		inner := b.Select(beatsSecond, bid, secondLC)
		second := b.Select(beatsMax, maxLC, r1cs.FromVar(inner))
		newMax := b.Select(beatsMax, bid, maxLC)
		newArg := b.Select(beatsMax, r1cs.Const(field.New(uint64(i))), argLC)
		maxLC = r1cs.FromVar(newMax)
		secondLC = r1cs.FromVar(second)
		argLC = r1cs.FromVar(newArg)
	}

	expose := func(lc r1cs.LC) uint64 {
		v := b.Eval(lc)
		pub := b.Public(v)
		b.AssertEq(lc, r1cs.FromVar(pub))
		return v.Uint64()
	}
	winBid := expose(maxLC)
	price := expose(secondLC)
	winner := expose(argLC)

	inst, io, w := b.Build()
	out := []byte{
		byte(winner),
		byte(price), byte(price >> 8), byte(price >> 16), byte(price >> 24),
		byte(winBid), byte(winBid >> 8), byte(winBid >> 16), byte(winBid >> 24),
	}
	return &Benchmark{Name: "auction", Inst: inst, IO: io, Witness: w, Outputs: out}
}
