package circuits

import (
	"encoding/binary"

	"nocap/internal/field"
	"nocap/internal/r1cs"
)

// sha256K are the SHA-256 round constants.
var sha256K = [64]uint32{
	0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
	0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
	0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
	0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
	0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
	0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
	0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
	0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
}

var sha256H0 = [8]uint32{
	0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
	0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
}

// word is a 32-bit value as little-endian bit wires (bits[0] = LSB).
type word []r1cs.Variable

// SHA256 builds a SHA-256 circuit over the given preimage blocks (the
// paper's SHA benchmark, §VII-B: proving knowledge of data with a given
// hash without revealing it). The preimage is secret; the digest is
// public. The input must be a whole number of 64-byte blocks — callers
// apply their own padding, matching the "1,000 512-bit hash blocks"
// framing of the paper.
func SHA256(blocks []byte) *Benchmark {
	if len(blocks) == 0 || len(blocks)%64 != 0 {
		panic("circuits: SHA256 input must be a positive multiple of 64 bytes")
	}
	b := r1cs.NewBuilder()

	// Running state, initially the SHA-256 IV (constants).
	state := make([]word, 8)
	for i := range state {
		state[i] = constWord(b, sha256H0[i])
	}

	for blk := 0; blk*64 < len(blocks); blk++ {
		// Message schedule w[0..63]; w[0..15] from the secret block.
		w := make([]word, 64)
		for t := 0; t < 16; t++ {
			v := binary.BigEndian.Uint32(blocks[blk*64+4*t:])
			sec := b.Secret(field.New(uint64(v)))
			w[t] = word(b.ToBits(r1cs.FromVar(sec), 32))
		}
		for t := 16; t < 64; t++ {
			s0 := sigmaXor(b, w[t-15], 7, 18, 3)
			s1 := sigmaXor(b, w[t-2], 17, 19, 10)
			w[t] = wordFromVar(b, b.Add32(wordLC(w[t-16]), wordLC(s0), wordLC(w[t-7]), wordLC(s1)))
		}

		a, bb, c, d, e, f, g, h := state[0], state[1], state[2], state[3], state[4], state[5], state[6], state[7]
		for t := 0; t < 64; t++ {
			S1 := sigmaXor(b, e, 6, 11, 25|rotOnly)
			ch := chCircuit(b, e, f, g)
			t1 := b.Add32(wordLC(h), wordLC(S1), wordLC(ch),
				r1cs.Const(field.New(uint64(sha256K[t]))), wordLC(w[t]))
			S0 := sigmaXor(b, a, 2, 13, 22|rotOnly)
			maj := majCircuit(b, a, bb, c)
			t2 := b.Add32(wordLC(S0), wordLC(maj))
			h, g, f = g, f, e
			e = wordFromVar(b, b.Add32(wordLC(d), r1cs.FromVar(t1)))
			d, c, bb = c, bb, a
			a = wordFromVar(b, b.Add32(r1cs.FromVar(t1), r1cs.FromVar(t2)))
		}
		next := make([]word, 8)
		for i, s := range []word{a, bb, c, d, e, f, g, h} {
			next[i] = wordFromVar(b, b.Add32(wordLC(state[i]), wordLC(s)))
		}
		state = next
	}

	// Expose the digest.
	digest := make([]byte, 32)
	for i, s := range state {
		v := wordVal(b, s)
		binary.BigEndian.PutUint32(digest[4*i:], v)
		pub := b.Public(field.New(uint64(v)))
		b.AssertEq(wordLC(s), r1cs.FromVar(pub))
	}

	inst, io, w := b.Build()
	return &Benchmark{Name: "sha", Inst: inst, IO: io, Witness: w, Outputs: digest}
}

// rotOnly flags the third shift of sigmaXor as a rotation instead of a
// logical shift (the Σ functions rotate all three; the σ functions shift
// the last one). It is OR-ed into the third rotation amount.
const rotOnly = 1 << 16

// constWord materializes a constant 32-bit word as bit wires.
func constWord(b *r1cs.Builder, v uint32) word {
	sec := b.Secret(field.New(uint64(v)))
	b.AssertEq(r1cs.Const(field.New(uint64(v))), r1cs.FromVar(sec))
	return word(b.ToBits(r1cs.FromVar(sec), 32))
}

// wordLC is the linear combination Σ bits·2^i.
func wordLC(w word) r1cs.LC { return r1cs.FromBits([]r1cs.Variable(w)) }

// wordFromVar decomposes a 32-bit-valued wire into a word.
func wordFromVar(b *r1cs.Builder, v r1cs.Variable) word {
	return word(b.ToBits(r1cs.FromVar(v), 32))
}

// wordVal reads the concrete value of a word.
func wordVal(b *r1cs.Builder, w word) uint32 {
	var v uint32
	for i, bit := range w {
		if b.Value(bit) == field.One {
			v |= 1 << uint(i)
		}
	}
	return v
}

// rotr returns the word rotated right by k (free rewiring).
func rotr(w word, k uint) word {
	out := make(word, 32)
	for i := 0; i < 32; i++ {
		out[i] = w[(i+int(k))%32]
	}
	return out
}

// shr returns the word shifted right by k; the vacated high bits must be
// zero wires, so callers pass a shared zero wire.
func shrWord(b *r1cs.Builder, w word, k uint) word {
	zero := b.Secret(field.Zero)
	b.AssertEq(nil, r1cs.FromVar(zero))
	out := make(word, 32)
	for i := 0; i < 32; i++ {
		if i+int(k) < 32 {
			out[i] = w[i+int(k)]
		} else {
			out[i] = zero
		}
	}
	return out
}

// sigmaXor computes rotr(w,r1) ⊕ rotr(w,r2) ⊕ f(w,r3) where f is a
// rotation when r3 has the rotOnly flag, else a logical shift.
func sigmaXor(b *r1cs.Builder, w word, k1, k2, k3 uint) word {
	var third word
	if k3&rotOnly != 0 {
		third = rotr(w, k3&^rotOnly)
	} else {
		third = shrWord(b, w, k3)
	}
	return word(xorBits(b, xorBits(b, []r1cs.Variable(rotr(w, k1)), []r1cs.Variable(rotr(w, k2))), []r1cs.Variable(third)))
}

// chCircuit computes Ch(e,f,g) = (e∧f)⊕(¬e∧g) per bit = g + e·(f−g).
func chCircuit(b *r1cs.Builder, e, f, g word) word {
	out := make(word, 32)
	for i := 0; i < 32; i++ {
		out[i] = b.Select(e[i], r1cs.FromVar(f[i]), r1cs.FromVar(g[i]))
	}
	return out
}

// majCircuit computes Maj(a,b,c) per bit: with t = b⊕c,
// maj = t ? a : b.
func majCircuit(b *r1cs.Builder, x, y, z word) word {
	out := make(word, 32)
	for i := 0; i < 32; i++ {
		t := b.Xor(y[i], z[i])
		out[i] = b.Select(t, r1cs.FromVar(x[i]), r1cs.FromVar(y[i]))
	}
	return out
}
