package circuits

import (
	"math/big"
	"math/rand"

	"nocap/internal/field"
	"nocap/internal/r1cs"
)

// limbBits is the bignum limb width. 16-bit limbs keep convolution
// partial sums far below the Goldilocks modulus (k·2^32 ≪ 2^63).
const limbBits = 16

// limbBase is 2^limbBits.
const limbBase = uint64(1) << limbBits

// bignum is an in-circuit big integer: little-endian limb wires, each
// range-checked to limbBits.
type bignum struct {
	limbs []r1cs.Variable
}

// toLimbs splits a big.Int into k 16-bit limbs.
func toLimbs(v *big.Int, k int) []uint64 {
	out := make([]uint64, k)
	t := new(big.Int).Set(v)
	mask := big.NewInt(int64(limbBase - 1))
	for i := 0; i < k; i++ {
		out[i] = new(big.Int).And(t, mask).Uint64()
		t.Rsh(t, limbBits)
	}
	if t.Sign() != 0 {
		panic("circuits: bignum does not fit limb count")
	}
	return out
}

// fromLimbVals reassembles a big.Int from concrete limb values.
func fromLimbVals(limbs []uint64) *big.Int {
	v := new(big.Int)
	for i := len(limbs) - 1; i >= 0; i-- {
		v.Lsh(v, limbBits)
		v.Add(v, new(big.Int).SetUint64(limbs[i]))
	}
	return v
}

// allocBignum allocates secret limb wires for v with range checks.
func allocBignum(b *r1cs.Builder, v *big.Int, k int) bignum {
	limbs := toLimbs(v, k)
	out := bignum{limbs: make([]r1cs.Variable, k)}
	for i, l := range limbs {
		sec := b.Secret(field.New(l))
		b.ToBits(r1cs.FromVar(sec), limbBits) // range check
		out.limbs[i] = sec
	}
	return out
}

// value reads the concrete big.Int behind a bignum.
func (n bignum) value(b *r1cs.Builder) *big.Int {
	vals := make([]uint64, len(n.limbs))
	for i, l := range n.limbs {
		vals[i] = b.Value(l).Uint64()
	}
	return fromLimbVals(vals)
}

// modMul emits constraints for r = x·y mod m, where m is a public
// constant modulus with k limbs. The identity x·y = q·m + r is enforced
// limb-wise with a signed carry chain (see DESIGN.md; the standard
// non-native-arithmetic gadget).
func modMul(b *r1cs.Builder, x, y bignum, m *big.Int) bignum {
	k := len(x.limbs)
	if len(y.limbs) != k {
		panic("circuits: modmul limb mismatch")
	}
	xv, yv := x.value(b), y.value(b)
	prod := new(big.Int).Mul(xv, yv)
	q, r := new(big.Int).DivMod(prod, m, new(big.Int))
	qb := allocBignum(b, q, k)
	rb := allocBignum(b, r, k)
	mLimbs := toLimbs(m, k)

	// prodTerm_i = Σ_{a+b=i} x_a·y_b (one Mul wire per pair);
	// qmTerm_i = Σ_{a+b=i} q_a·m_b (linear: m is constant).
	numCols := 2*k - 1
	terms := make([]r1cs.LC, numCols)
	for a := 0; a < k; a++ {
		for c := 0; c < k; c++ {
			p := b.Mul(r1cs.FromVar(x.limbs[a]), r1cs.FromVar(y.limbs[c]))
			terms[a+c] = r1cs.AddLC(terms[a+c], r1cs.FromVar(p))
			if mLimbs[c] != 0 {
				terms[a+c] = r1cs.AddLC(terms[a+c],
					r1cs.ScaleLC(field.Neg(field.New(mLimbs[c])), r1cs.FromVar(qb.limbs[a])))
			}
		}
	}
	for i := 0; i < k; i++ {
		terms[i] = r1cs.AddLC(terms[i],
			r1cs.ScaleLC(field.Neg(field.One), r1cs.FromVar(rb.limbs[i])))
	}

	// Carry chain: t_i + c_{i-1} = B·c_i, final carry 0. Carries are
	// signed; they are committed with an offset and range-checked.
	// |c_i| < (k+1)·B, so offset 2^(limbBits+8) covers k ≤ 255.
	const carryRange = limbBits + 9
	offset := field.New(uint64(1) << (carryRange - 1))
	carryVal := int64(0)
	var prevCarry r1cs.LC
	for i := 0; i < numCols; i++ {
		// Witness-side t_i (signed, fits easily in int64).
		ti := int64(0)
		for _, t := range terms[i] {
			v := b.Value(t.Var)
			c := t.Coeff
			if c.Uint64() > field.Modulus/2 {
				ti -= int64(field.Neg(c).Uint64()) * int64(v.Uint64())
			} else {
				ti += int64(c.Uint64()) * int64(v.Uint64())
			}
		}
		total := ti + carryVal
		if total%int64(limbBase) != 0 {
			panic("circuits: modmul carry not divisible")
		}
		carryVal = total / int64(limbBase)
		if i == numCols-1 {
			if carryVal != 0 {
				panic("circuits: modmul final carry nonzero")
			}
			// t_last + c_{last-1} = 0.
			b.AssertEq(r1cs.AddLC(terms[i], prevCarry), nil)
			break
		}
		// Allocate offset carry and range check it.
		cOff := b.Secret(field.New(uint64(carryVal + int64(offset.Uint64()))))
		b.ToBits(r1cs.FromVar(cOff), carryRange)
		carryLC := r1cs.SubLC(r1cs.FromVar(cOff), r1cs.Const(offset))
		// t_i + c_{i-1} − B·c_i = 0.
		b.AssertEq(
			r1cs.SubLC(r1cs.AddLC(terms[i], prevCarry),
				r1cs.ScaleLC(field.New(limbBase), carryLC)),
			nil)
		prevCarry = carryLC
	}
	return rb
}

// RSA builds the paper's RSA-style benchmark: proving knowledge of a
// secret x with x^(2^squarings) ≡ y (mod n) for a public 16·limbs-bit
// modulus — the repeated modular squaring at the heart of RSA
// decryption, implemented with non-native bignum limbs (§VII-B framing:
// "RSA operates on large prime fields"). seed makes the instance
// reproducible.
func RSA(squarings, numLimbs int, seed int64) *Benchmark {
	if squarings < 1 || numLimbs < 2 {
		panic("circuits: RSA needs ≥1 squaring and ≥2 limbs")
	}
	rng := rand.New(rand.NewSource(seed))
	bits := numLimbs * limbBits
	// Random odd modulus with the top bit set.
	n := new(big.Int).SetBit(big.NewInt(0), bits-1, 1)
	for i := 0; i < bits-1; i++ {
		if rng.Intn(2) == 1 {
			n.SetBit(n, i, 1)
		}
	}
	n.SetBit(n, 0, 1)
	x := new(big.Int).Rand(rng, n)

	b := r1cs.NewBuilder()
	xb := allocBignum(b, x, numLimbs)
	cur := xb
	for s := 0; s < squarings; s++ {
		cur = modMul(b, cur, cur, n)
	}
	// Expose the result limbs as public outputs.
	var outBytes []byte
	for _, l := range cur.limbs {
		v := b.Value(l)
		pub := b.Public(v)
		b.AssertEq(r1cs.FromVar(l), r1cs.FromVar(pub))
		outBytes = append(outBytes, byte(v.Uint64()), byte(v.Uint64()>>8))
	}
	inst, io, w := b.Build()
	return &Benchmark{Name: "rsa", Inst: inst, IO: io, Witness: w, Outputs: outBytes}
}

// RSAExpected computes the reference result x^(2^squarings) mod n for
// testing; it regenerates the same deterministic instance inputs.
func RSAExpected(squarings, numLimbs int, seed int64) *big.Int {
	rng := rand.New(rand.NewSource(seed))
	bits := numLimbs * limbBits
	n := new(big.Int).SetBit(big.NewInt(0), bits-1, 1)
	for i := 0; i < bits-1; i++ {
		if rng.Intn(2) == 1 {
			n.SetBit(n, i, 1)
		}
	}
	n.SetBit(n, 0, 1)
	x := new(big.Int).Rand(rng, n)
	e := new(big.Int).Lsh(big.NewInt(1), uint(squarings))
	return new(big.Int).Exp(x, e, n)
}
