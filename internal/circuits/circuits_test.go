package circuits

import (
	"bytes"
	"crypto/aes"
	"crypto/sha256"
	"testing"

	"nocap/internal/field"
	"nocap/internal/spartan"
)

// mustSatisfy asserts the benchmark's witness satisfies its instance.
func mustSatisfy(t *testing.T, bm *Benchmark) {
	t.Helper()
	z := bm.Inst.AssembleZ(bm.IO, bm.Witness)
	if ok, i := bm.Inst.Satisfied(z); !ok {
		t.Fatalf("%s: constraint %d violated", bm.Name, i)
	}
}

func TestAESMatchesStdlib(t *testing.T) {
	key := [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	pt := []byte("theblockbreakers") // 16 bytes
	bm := AES(key, pt)
	mustSatisfy(t, bm)

	block, err := aes.NewCipher(key[:])
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 16)
	block.Encrypt(want, pt)
	if !bytes.Equal(bm.Outputs, want) {
		t.Fatalf("AES circuit output %x, want %x", bm.Outputs, want)
	}
	t.Logf("AES 1-block circuit: %d constraints", bm.Inst.Stats().Constraints)
}

func TestAESMultiBlock(t *testing.T) {
	key := [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	pt := make([]byte, 32)
	for i := range pt {
		pt[i] = byte(i * 7)
	}
	bm := AES(key, pt)
	mustSatisfy(t, bm)
	block, _ := aes.NewCipher(key[:])
	want := make([]byte, 32)
	block.Encrypt(want[:16], pt[:16])
	block.Encrypt(want[16:], pt[16:])
	if !bytes.Equal(bm.Outputs, want) {
		t.Fatal("multi-block AES mismatch")
	}
}

func TestSBoxPoly(t *testing.T) {
	// The interpolation polynomial must reproduce the S-box on all 256
	// points; SBox itself must match the canonical first values.
	canonical := []byte{0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5}
	for i, want := range canonical {
		if SBox[i] != want {
			t.Fatalf("SBox[%d] = %#x, want %#x", i, SBox[i], want)
		}
	}
	coeffs := SBoxPoly()
	if len(coeffs) != 256 {
		t.Fatalf("coeff count %d", len(coeffs))
	}
	for x := 0; x < 256; x++ {
		var acc field.Element
		for i := 255; i >= 0; i-- {
			acc = field.Add(field.Mul(acc, field.New(uint64(x))), coeffs[i])
		}
		if acc != field.New(uint64(SBox[x])) {
			t.Fatalf("poly(%d) = %v, want %d", x, acc, SBox[x])
		}
	}
}

func TestSHA256MatchesStdlib(t *testing.T) {
	// One padded block: 55-byte message "abc..." padded per SHA-256 rules.
	msg := []byte("abc")
	padded := sha256Pad(msg)
	bm := SHA256(padded)
	mustSatisfy(t, bm)
	want := sha256.Sum256(msg)
	if !bytes.Equal(bm.Outputs, want[:]) {
		t.Fatalf("SHA circuit digest %x, want %x", bm.Outputs, want)
	}
	t.Logf("SHA-256 1-block circuit: %d constraints", bm.Inst.Stats().Constraints)
}

func TestSHA256TwoBlocks(t *testing.T) {
	msg := bytes.Repeat([]byte("x"), 80) // forces two blocks after padding
	bm := SHA256(sha256Pad(msg))
	mustSatisfy(t, bm)
	want := sha256.Sum256(msg)
	if !bytes.Equal(bm.Outputs, want[:]) {
		t.Fatal("two-block SHA mismatch")
	}
}

// sha256Pad applies standard SHA-256 padding.
func sha256Pad(msg []byte) []byte {
	l := len(msg)
	padded := append([]byte(nil), msg...)
	padded = append(padded, 0x80)
	for len(padded)%64 != 56 {
		padded = append(padded, 0)
	}
	bitLen := uint64(l) * 8
	for i := 7; i >= 0; i-- {
		padded = append(padded, byte(bitLen>>(8*uint(i))))
	}
	return padded
}

func TestRSAMatchesBigInt(t *testing.T) {
	bm := RSA(4, 8, 99) // 128-bit modulus, 4 squarings
	mustSatisfy(t, bm)
	want := RSAExpected(4, 8, 99)
	got := fromLimbVals(func() []uint64 {
		out := make([]uint64, len(bm.Outputs)/2)
		for i := range out {
			out[i] = uint64(bm.Outputs[2*i]) | uint64(bm.Outputs[2*i+1])<<8
		}
		return out
	}())
	if got.Cmp(want) != 0 {
		t.Fatalf("RSA circuit %v, want %v", got, want)
	}
	t.Logf("RSA 128-bit/4-sq circuit: %d constraints", bm.Inst.Stats().Constraints)
}

func TestRSATamperRejected(t *testing.T) {
	bm := RSA(2, 4, 7)
	bm.Witness[0] = field.Add(bm.Witness[0], field.One)
	z := bm.Inst.AssembleZ(bm.IO, bm.Witness)
	if ok, _ := bm.Inst.Satisfied(z); ok {
		t.Fatal("tampered RSA witness accepted")
	}
}

func TestAuction(t *testing.T) {
	bids := []uint64{120, 455, 300, 455, 90, 777, 410}
	bm := Auction(bids)
	mustSatisfy(t, bm)
	winner := bm.Outputs[0]
	price := uint64(bm.Outputs[1]) | uint64(bm.Outputs[2])<<8 |
		uint64(bm.Outputs[3])<<16 | uint64(bm.Outputs[4])<<24
	winBid := uint64(bm.Outputs[5]) | uint64(bm.Outputs[6])<<8 |
		uint64(bm.Outputs[7])<<16 | uint64(bm.Outputs[8])<<24
	if winner != 5 || winBid != 777 || price != 455 {
		t.Fatalf("auction: winner=%d bid=%d price=%d", winner, winBid, price)
	}
}

func TestAuctionAscendingAndDescending(t *testing.T) {
	asc := Auction([]uint64{1, 2, 3, 4, 5})
	mustSatisfy(t, asc)
	if asc.Outputs[0] != 4 {
		t.Fatalf("ascending winner = %d", asc.Outputs[0])
	}
	desc := Auction([]uint64{5, 4, 3, 2, 1})
	mustSatisfy(t, desc)
	if desc.Outputs[0] != 0 {
		t.Fatalf("descending winner = %d", desc.Outputs[0])
	}
}

func TestLitmus(t *testing.T) {
	bm := Litmus(10, 4, 123)
	mustSatisfy(t, bm)
	// io = initial balances ‖ final balances ‖ accumulator; conservation:
	// totals must match.
	var initial, final field.Element
	for i := 0; i < 4; i++ {
		initial = field.Add(initial, bm.IO[i])
		final = field.Add(final, bm.IO[4+i])
	}
	if final != initial {
		t.Fatalf("balance not conserved: %v vs %v", final, initial)
	}
	t.Logf("Litmus 10tx/4acct circuit: %d constraints", bm.Inst.Stats().Constraints)
}

func TestLitmusCircuitExplicit(t *testing.T) {
	initial := []uint64{100, 50, 0}
	txns := []Transfer{{From: 0, To: 2, Amount: 60}, {From: 2, To: 1, Amount: 10}}
	bm := LitmusCircuit(initial, txns)
	mustSatisfy(t, bm)
	want := []uint64{40, 60, 50}
	for i, w := range want {
		if bm.IO[3+i] != field.New(w) {
			t.Fatalf("final balance %d = %v, want %d", i, bm.IO[3+i], w)
		}
	}
	// Accumulator matches the reference computation.
	if bm.IO[6] != LitmusAccumulator(txns) {
		t.Fatal("audit accumulator mismatch")
	}
}

func TestLitmusCircuitRejectsInsolvent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("insolvent batch accepted")
		}
	}()
	LitmusCircuit([]uint64{5, 0}, []Transfer{{From: 0, To: 1, Amount: 10}})
}

func TestLitmusTamperRejected(t *testing.T) {
	bm := Litmus(5, 4, 5)
	bm.IO[0] = field.Add(bm.IO[0], field.One)
	z := bm.Inst.AssembleZ(bm.IO, bm.Witness)
	if ok, _ := bm.Inst.Satisfied(z); ok {
		t.Fatal("tampered Litmus total accepted")
	}
}

func TestSynthetic(t *testing.T) {
	for _, n := range []int{100, 5000} {
		bm := Synthetic(n)
		mustSatisfy(t, bm)
		stats := bm.Inst.Stats()
		if stats.Constraints < n {
			t.Fatalf("synthetic(%d) has %d constraints", n, stats.Constraints)
		}
		// Banded structure: constraint i touches wires within a fixed
		// distance of i plus the public/witness half-split offset, so the
		// band never exceeds half the variable count (plus chain window).
		if stats.MaxBand > stats.Vars/2+8 {
			t.Fatalf("synthetic band too wide: %d of %d", stats.MaxBand, stats.Vars)
		}
	}
}

func TestEndToEndProofOfAuction(t *testing.T) {
	// Full-stack integration: circuit → Spartan+Orion proof → verify.
	bm := Auction([]uint64{500, 123, 999, 1})
	params := spartan.TestParams()
	proof, err := spartan.Prove(params, bm.Inst, bm.IO, bm.Witness)
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	if err := spartan.Verify(params, bm.Inst, bm.IO, proof); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestEndToEndProofOfRSA(t *testing.T) {
	bm := RSA(2, 4, 11)
	params := spartan.TestParams()
	proof, err := spartan.Prove(params, bm.Inst, bm.IO, bm.Witness)
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	if err := spartan.Verify(params, bm.Inst, bm.IO, proof); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func BenchmarkBuildAESBlock(b *testing.B) {
	key := [16]byte{1}
	pt := make([]byte, 16)
	for i := 0; i < b.N; i++ {
		AES(key, pt)
	}
}

func BenchmarkBuildSHABlock(b *testing.B) {
	blocks := make([]byte, 64)
	for i := 0; i < b.N; i++ {
		SHA256(blocks)
	}
}
