package circuits

import (
	"sync"

	"nocap/internal/field"
	"nocap/internal/r1cs"
)

// AES builds a real AES-128 encryption circuit (the paper's AES
// benchmark, §VII-B: proving a ciphertext is well-formed without
// revealing the key). The key is secret; plaintext and ciphertext are
// public. State bytes are carried as bit wires; SubBytes is the
// degree-255 interpolation polynomial of the S-box (lookup-free),
// ShiftRows is free rewiring, MixColumns is xtime/XOR circuitry, and
// AddRoundKey is bitwise XOR.
//
// blocks > 1 encrypts consecutive plaintext blocks under the same key
// (ECB over the supplied data), scaling the circuit the way the paper
// scales its benchmark to 1,000 blocks.
func AES(key [16]byte, plaintext []byte) *Benchmark {
	if len(plaintext) == 0 || len(plaintext)%16 != 0 {
		panic("circuits: AES plaintext must be a positive multiple of 16 bytes")
	}
	b := r1cs.NewBuilder()

	// Secret key bits.
	keyBits := make([][]r1cs.Variable, 16)
	for i := range keyBits {
		keyBits[i] = byteToBits(b, key[i])
	}
	roundKeys := keyScheduleCircuit(b, keyBits)

	var outBytes []byte
	for blk := 0; blk*16 < len(plaintext); blk++ {
		// Public plaintext bytes, decomposed to bits.
		state := make([][]r1cs.Variable, 16)
		for i := range state {
			pt := b.Public(field.New(uint64(plaintext[blk*16+i])))
			state[i] = b.ToBits(r1cs.FromVar(pt), 8)
		}
		state = addRoundKey(b, state, roundKeys[0])
		for round := 1; round <= 10; round++ {
			for i := range state {
				state[i] = sboxCircuit(b, state[i])
			}
			state = shiftRows(state)
			if round < 10 {
				state = mixColumns(b, state)
			}
			state = addRoundKey(b, state, roundKeys[round])
		}
		outBytes = append(outBytes, exposeBytes(b, state)...)
	}

	inst, io, w := b.Build()
	return &Benchmark{Name: "aes", Inst: inst, IO: io, Witness: w, Outputs: outBytes}
}

// --- GF(2^8) reference arithmetic (witness-side) ---

// gmul multiplies in GF(2^8) with the AES polynomial 0x11b.
func gmul(a, x byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if x&1 == 1 {
			p ^= a
		}
		carry := a & 0x80
		a <<= 1
		if carry != 0 {
			a ^= 0x1b
		}
		x >>= 1
	}
	return p
}

// SBox is the AES S-box, computed from GF(2^8) inversion + affine map.
var SBox = func() [256]byte {
	var inv [256]byte
	for x := 1; x < 256; x++ {
		// Brute-force inverse (256×256 at init is fine).
		for y := 1; y < 256; y++ {
			if gmul(byte(x), byte(y)) == 1 {
				inv[x] = byte(y)
				break
			}
		}
	}
	var sbox [256]byte
	for x := 0; x < 256; x++ {
		v := inv[x]
		sbox[x] = v ^ rotl8(v, 1) ^ rotl8(v, 2) ^ rotl8(v, 3) ^ rotl8(v, 4) ^ 0x63
	}
	return sbox
}()

func rotl8(v byte, k uint) byte { return v<<k | v>>(8-k) }

// sboxPolyOnce interpolates the degree-255 polynomial with
// p(x) = SBox[x] for x = 0…255 over the Goldilocks field.
var sboxPolyOnce = sync.OnceValue(func() []field.Element {
	// Newton's divided differences on points 0..255.
	n := 256
	xs := make([]field.Element, n)
	divided := make([]field.Element, n)
	for i := 0; i < n; i++ {
		xs[i] = field.New(uint64(i))
		divided[i] = field.New(uint64(SBox[i]))
	}
	// divided[j] becomes f[x_0..x_j].
	for level := 1; level < n; level++ {
		for j := n - 1; j >= level; j-- {
			num := field.Sub(divided[j], divided[j-1])
			den := field.Sub(xs[j], xs[j-level])
			divided[j] = field.Div(num, den)
		}
	}
	// Expand Newton form to monomial coefficients.
	coeffs := make([]field.Element, n)
	basis := make([]field.Element, 1, n) // Π (x − x_i), starts as [1]
	basis[0] = field.One
	for j := 0; j < n; j++ {
		for k := range basis {
			coeffs[k] = field.Add(coeffs[k], field.Mul(divided[j], basis[k]))
		}
		// basis *= (x − x_j)
		next := make([]field.Element, len(basis)+1)
		for k, c := range basis {
			next[k] = field.Sub(next[k], field.Mul(c, xs[j]))
			next[k+1] = field.Add(next[k+1], c)
		}
		basis = next
	}
	return coeffs
})

// SBoxPoly returns the monomial coefficients of the S-box interpolation
// polynomial (degree 255).
func SBoxPoly() []field.Element { return sboxPolyOnce() }

// sboxCircuit applies the S-box to a byte (as bits): recompose the byte,
// evaluate the interpolation polynomial by Horner (255 multiply
// constraints), and re-decompose to bits.
func sboxCircuit(b *r1cs.Builder, bits []r1cs.Variable) []r1cs.Variable {
	coeffs := SBoxPoly()
	x := r1cs.FromBits(bits)
	acc := r1cs.Const(coeffs[255])
	for i := 254; i >= 0; i-- {
		m := b.Mul(acc, x)
		acc = r1cs.AddLC(r1cs.FromVar(m), r1cs.Const(coeffs[i]))
	}
	out := b.Secret(b.Eval(acc))
	b.AssertEq(acc, r1cs.FromVar(out))
	return b.ToBits(r1cs.FromVar(out), 8)
}

// xtimeCircuit computes GF(2^8) multiplication by 2 on bit wires:
// out = (b<<1) ⊕ (b7 ? 0x1b : 0). Only bits 0,1,3,4 need XOR gates.
func xtimeCircuit(b *r1cs.Builder, bits []r1cs.Variable) []r1cs.Variable {
	b7 := bits[7]
	out := make([]r1cs.Variable, 8)
	out[0] = b7
	out[1] = b.Xor(bits[0], b7)
	out[2] = bits[1]
	out[3] = b.Xor(bits[2], b7)
	out[4] = b.Xor(bits[3], b7)
	out[5] = bits[4]
	out[6] = bits[5]
	out[7] = bits[6]
	return out
}

// shiftRows permutes state bytes (column-major AES state): free rewiring.
func shiftRows(state [][]r1cs.Variable) [][]r1cs.Variable {
	out := make([][]r1cs.Variable, 16)
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			out[c*4+r] = state[((c+r)%4)*4+r]
		}
	}
	return out
}

// mixColumns applies the MixColumns matrix per 4-byte column.
func mixColumns(b *r1cs.Builder, state [][]r1cs.Variable) [][]r1cs.Variable {
	out := make([][]r1cs.Variable, 16)
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := state[c*4], state[c*4+1], state[c*4+2], state[c*4+3]
		d0, d1, d2, d3 := xtimeCircuit(b, a0), xtimeCircuit(b, a1), xtimeCircuit(b, a2), xtimeCircuit(b, a3)
		// out0 = 2a0 ⊕ 3a1 ⊕ a2 ⊕ a3, etc. (3x = 2x ⊕ x).
		out[c*4+0] = xorBits(b, xorBits(b, d0, xorBits(b, d1, a1)), xorBits(b, a2, a3))
		out[c*4+1] = xorBits(b, xorBits(b, a0, d1), xorBits(b, xorBits(b, d2, a2), a3))
		out[c*4+2] = xorBits(b, xorBits(b, a0, a1), xorBits(b, d2, xorBits(b, d3, a3)))
		out[c*4+3] = xorBits(b, xorBits(b, d0, a0), xorBits(b, a1, xorBits(b, a2, d3)))
	}
	return out
}

// addRoundKey XORs the round key into the state.
func addRoundKey(b *r1cs.Builder, state, rk [][]r1cs.Variable) [][]r1cs.Variable {
	out := make([][]r1cs.Variable, 16)
	for i := range out {
		out[i] = xorBits(b, state[i], rk[i])
	}
	return out
}

// keyScheduleCircuit expands the key into 11 round keys in-circuit.
func keyScheduleCircuit(b *r1cs.Builder, key [][]r1cs.Variable) [][][]r1cs.Variable {
	rcon := []byte{0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36}
	words := make([][][]r1cs.Variable, 44) // 44 words of 4 bytes
	for w := 0; w < 4; w++ {
		words[w] = key[w*4 : w*4+4]
	}
	for w := 4; w < 44; w++ {
		var temp [][]r1cs.Variable
		if w%4 == 0 {
			// RotWord + SubWord + Rcon.
			rot := [][]r1cs.Variable{words[w-1][1], words[w-1][2], words[w-1][3], words[w-1][0]}
			temp = make([][]r1cs.Variable, 4)
			for i := range temp {
				temp[i] = sboxCircuit(b, rot[i])
			}
			// XOR rcon into byte 0: rcon is a constant, so XOR with a
			// constant flips bits; flip bit i when rcon bit i is 1.
			rc := rcon[w/4-1]
			flipped := make([]r1cs.Variable, 8)
			for i := 0; i < 8; i++ {
				if rc>>uint(i)&1 == 1 {
					nb := b.Secret(b.Eval(r1cs.Not(temp[0][i])))
					b.AssertEq(r1cs.Not(temp[0][i]), r1cs.FromVar(nb))
					flipped[i] = nb
				} else {
					flipped[i] = temp[0][i]
				}
			}
			temp[0] = flipped
		} else {
			temp = words[w-1]
		}
		nw := make([][]r1cs.Variable, 4)
		for i := 0; i < 4; i++ {
			nw[i] = xorBits(b, words[w-4][i], temp[i])
		}
		words[w] = nw
	}
	keys := make([][][]r1cs.Variable, 11)
	for r := 0; r < 11; r++ {
		rk := make([][]r1cs.Variable, 16)
		for wi := 0; wi < 4; wi++ {
			copy(rk[wi*4:wi*4+4], words[r*4+wi])
		}
		keys[r] = rk
	}
	return keys
}
