package circuits

import (
	"fmt"
	"math/rand"

	"nocap/internal/field"
	"nocap/internal/r1cs"
)

// amountBits bounds transfer amounts and balances.
const amountBits = 32

// Transfer is one database transaction: move Amount from one account to
// another (the two-row YCSB access of the paper's Litmus benchmark).
type Transfer struct {
	From, To int
	Amount   uint64
}

// LitmusGamma and LitmusBeta are the public audit-accumulator
// parameters (fixed protocol constants; in a deployment they would be
// derived from a commitment to the batch).
var (
	LitmusGamma = field.New(0x67616d6d61) // "gamma"
	LitmusBeta  = field.New(0x62657461)   // "beta"
)

// LitmusAccumulator computes the reference audit accumulator
// Π_t (γ − (t + β·from + β²·to + β³·amount)) for a batch.
func LitmusAccumulator(txns []Transfer) field.Element {
	acc := field.One
	b2 := field.Mul(LitmusBeta, LitmusBeta)
	b3 := field.Mul(b2, LitmusBeta)
	for t, tx := range txns {
		term := field.Sub(LitmusGamma,
			field.Add(field.New(uint64(t)),
				field.Add(field.Mul(LitmusBeta, field.New(uint64(tx.From))),
					field.Add(field.Mul(b2, field.New(uint64(tx.To))),
						field.Mul(b3, field.New(tx.Amount))))))
		acc = field.Mul(acc, term)
	}
	return acc
}

// LitmusCircuit builds a verifiable-database transaction batch in the
// style of the paper's Litmus benchmark ([84], §VII-B). The circuit
// processes the given transfers over the given initial balances:
//
//   - data-oblivious account selection (linear Select scan, as circuits
//     must not branch on secrets),
//   - solvency and range checks per transaction,
//   - conservation of total balance,
//   - a multiset-hash audit accumulator with public randomness — the
//     multiset-hashing technique Litmus (and Spartan's memory checking)
//     relies on.
//
// Public inputs/outputs: initial balances, final balances, and the
// accumulator (io layout: n initial ‖ n final ‖ accumulator). The
// transfers themselves stay secret. It panics if a transfer is
// insolvent or out of range (the batch would be unprovable).
func LitmusCircuit(initial []uint64, txns []Transfer) *Benchmark {
	numAccounts := len(initial)
	if numAccounts < 2 || len(txns) < 1 {
		panic("circuits: litmus needs ≥2 accounts and ≥1 transfer")
	}

	b := r1cs.NewBuilder()

	balances := make([]r1cs.Variable, numAccounts)
	balVals := append([]uint64(nil), initial...)
	for i := range balances {
		if initial[i] >= 1<<amountBits {
			panic("circuits: initial balance out of range")
		}
		// Initial balances are public: they chain from the previous
		// batch's public final balances (or genesis).
		balances[i] = b.Public(field.New(initial[i]))
		b.ToBits(r1cs.FromVar(balances[i]), amountBits)
	}

	accLC := r1cs.Const(field.One)

	for t, tx := range txns {
		if tx.From < 0 || tx.From >= numAccounts || tx.To < 0 || tx.To >= numAccounts ||
			tx.From == tx.To {
			panic(fmt.Sprintf("circuits: transfer %d has invalid accounts", t))
		}
		if tx.Amount > balVals[tx.From] {
			panic(fmt.Sprintf("circuits: transfer %d is insolvent", t))
		}
		balVals[tx.From] -= tx.Amount
		balVals[tx.To] += tx.Amount
		if balVals[tx.To] >= 1<<amountBits {
			panic(fmt.Sprintf("circuits: transfer %d overflows a balance", t))
		}

		fromV := b.Secret(field.New(uint64(tx.From)))
		toV := b.Secret(field.New(uint64(tx.To)))
		amtV := b.Secret(field.New(tx.Amount))
		b.ToBits(r1cs.FromVar(amtV), amountBits)

		// Oblivious scan: selector bits per account.
		fromBalLC := r1cs.LC(nil)
		for j := 0; j < numAccounts; j++ {
			isFrom := b.IsZero(r1cs.SubLC(r1cs.FromVar(fromV), r1cs.Const(field.New(uint64(j)))))
			isTo := b.IsZero(r1cs.SubLC(r1cs.FromVar(toV), r1cs.Const(field.New(uint64(j)))))
			g := b.Mul(r1cs.FromVar(isFrom), r1cs.FromVar(balances[j]))
			fromBalLC = r1cs.AddLC(fromBalLC, r1cs.FromVar(g))
			dec := b.Mul(r1cs.FromVar(isFrom), r1cs.FromVar(amtV))
			inc := b.Mul(r1cs.FromVar(isTo), r1cs.FromVar(amtV))
			nb := b.Secret(field.New(balVals2(b, balances[j], dec, inc)))
			b.AssertEq(
				r1cs.AddLC(r1cs.SubLC(r1cs.FromVar(balances[j]), r1cs.FromVar(dec)), r1cs.FromVar(inc)),
				r1cs.FromVar(nb))
			balances[j] = nb
		}
		// Solvency: amt ≤ pre-update source balance.
		over := b.LessThan(fromBalLC, r1cs.FromVar(amtV), amountBits)
		b.AssertEq(r1cs.FromVar(over), nil)

		// Audit accumulator term: γ − (t + β·from + β²·to + β³·amt).
		term := r1cs.SubLC(r1cs.Const(LitmusGamma),
			r1cs.AddLC(r1cs.Const(field.New(uint64(t))),
				r1cs.AddLC(r1cs.ScaleLC(LitmusBeta, r1cs.FromVar(fromV)),
					r1cs.AddLC(r1cs.ScaleLC(field.Mul(LitmusBeta, LitmusBeta), r1cs.FromVar(toV)),
						r1cs.ScaleLC(field.Mul(field.Mul(LitmusBeta, LitmusBeta), LitmusBeta), r1cs.FromVar(amtV))))))
		acc := b.Mul(accLC, term)
		accLC = r1cs.FromVar(acc)
	}

	// Expose final balances and the accumulator.
	for j := 0; j < numAccounts; j++ {
		pub := b.Public(b.Value(balances[j]))
		b.AssertEq(r1cs.FromVar(balances[j]), r1cs.FromVar(pub))
	}
	accPub := b.Public(b.Eval(accLC))
	b.AssertEq(accLC, r1cs.FromVar(accPub))

	inst, io, w := b.Build()
	return &Benchmark{Name: "litmus", Inst: inst, IO: io, Witness: w}
}

// Litmus builds a pseudo-random transaction batch (the benchmark
// configuration: transactions "access two random rows", §VII-B).
func Litmus(numTxns, numAccounts int, seed int64) *Benchmark {
	if numTxns < 1 || numAccounts < 2 {
		panic("circuits: litmus needs ≥1 txn and ≥2 accounts")
	}
	rng := rand.New(rand.NewSource(seed))
	initial := make([]uint64, numAccounts)
	for i := range initial {
		initial[i] = uint64(rng.Intn(1 << 20))
	}
	balances := append([]uint64(nil), initial...)
	txns := make([]Transfer, numTxns)
	for t := range txns {
		from := rng.Intn(numAccounts)
		to := rng.Intn(numAccounts - 1)
		if to >= from {
			to++
		}
		amt := uint64(rng.Intn(1 << 10))
		if amt > balances[from] {
			amt = balances[from]
		}
		balances[from] -= amt
		balances[to] += amt
		txns[t] = Transfer{From: from, To: to, Amount: amt}
	}
	return LitmusCircuit(initial, txns)
}

// balVals2 computes the concrete updated balance for witness assignment.
func balVals2(b *r1cs.Builder, bal, dec, inc r1cs.Variable) uint64 {
	return field.Add(field.Sub(b.Value(bal), b.Value(dec)), b.Value(inc)).Uint64()
}
