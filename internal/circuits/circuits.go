// Package circuits builds the R1CS instances of the paper's benchmark
// suite (Table III): AES, SHA, RSA, Auction, and a Litmus-style
// verifiable database batch, plus a synthetic banded generator used for
// scaling studies. Real (laptop-scale) instances are generated with full
// witnesses and verified against Go's standard-library crypto; the
// paper-scale constraint counts (16M–550M) drive the cost models
// (DESIGN.md §3.6).
package circuits

import (
	"nocap/internal/field"
	"nocap/internal/r1cs"
)

// Benchmark is a generated circuit instance with its satisfying witness.
type Benchmark struct {
	// Name identifies the benchmark ("aes", "sha", …).
	Name string
	// Inst is the padded R1CS instance.
	Inst *r1cs.Instance
	// IO and Witness satisfy Inst.
	IO, Witness []field.Element
	// Outputs are the circuit's public outputs in application form
	// (e.g. ciphertext bytes), for cross-checking against references.
	Outputs []byte
}

// PaperSize holds the paper's Table III row for a benchmark.
type PaperSize struct {
	Name        string
	Constraints int64   // R1CS size
	ProofMB     float64 // proof size, MB
	VerifyMS    float64 // CPU verification time, ms
}

// PaperSizes reproduces Table III's benchmark parameters.
var PaperSizes = []PaperSize{
	{Name: "AES", Constraints: 16_000_000, ProofMB: 8.1, VerifyMS: 134.0},
	{Name: "SHA", Constraints: 32_000_000, ProofMB: 8.7, VerifyMS: 153.7},
	{Name: "RSA", Constraints: 98_000_000, ProofMB: 10.1, VerifyMS: 198.0},
	{Name: "Litmus", Constraints: 268_400_000, ProofMB: 10.9, VerifyMS: 222.4},
	{Name: "Auction", Constraints: 550_000_000, ProofMB: 12.5, VerifyMS: 276.1},
}

// byteToBits allocates the 8 bit wires of a secret byte value.
func byteToBits(b *r1cs.Builder, v byte) []r1cs.Variable {
	x := b.Secret(field.New(uint64(v)))
	return b.ToBits(r1cs.FromVar(x), 8)
}

// bitsToByteVal recomposes a bit-wire slice into its concrete byte value.
func bitsToByteVal(b *r1cs.Builder, bits []r1cs.Variable) byte {
	var v byte
	for i, bit := range bits {
		if b.Value(bit) == field.One {
			v |= 1 << uint(i)
		}
	}
	return v
}

// xorBits returns bitwise XOR of two equal-length bit-wire slices.
func xorBits(b *r1cs.Builder, x, y []r1cs.Variable) []r1cs.Variable {
	if len(x) != len(y) {
		panic("circuits: xor width mismatch")
	}
	out := make([]r1cs.Variable, len(x))
	for i := range x {
		out[i] = b.Xor(x[i], y[i])
	}
	return out
}

// exposeBytes makes the value of each bit-array byte public and returns
// the concrete bytes.
func exposeBytes(b *r1cs.Builder, state [][]r1cs.Variable) []byte {
	out := make([]byte, len(state))
	for i, bits := range state {
		val := bitsToByteVal(b, bits)
		out[i] = val
		pub := b.Public(field.New(uint64(val)))
		b.AssertEq(r1cs.FromBits(bits), r1cs.FromVar(pub))
	}
	return out
}

// Synthetic generates a satisfied banded instance with approximately the
// requested number of constraints: a multiply-accumulate chain
// z_{i+1} = z_i·z_{i−3} + z_{i−1}, whose A/B/C matrices have O(1)
// nonzeros per row in a narrow band — the structure the paper's SpMV
// dataflow exploits (§V-A).
func Synthetic(constraints int) *Benchmark {
	b := r1cs.NewBuilder()
	window := []r1cs.Variable{
		b.Secret(field.New(3)), b.Secret(field.New(5)),
		b.Secret(field.New(7)), b.Secret(field.New(11)),
	}
	for b.NumConstraints() < constraints-2 {
		n := len(window)
		prod := b.Mul(r1cs.FromVar(window[n-1]), r1cs.FromVar(window[n-4]))
		next := b.Secret(b.Eval(r1cs.AddLC(r1cs.FromVar(prod), r1cs.FromVar(window[n-2]))))
		b.AssertEq(r1cs.AddLC(r1cs.FromVar(prod), r1cs.FromVar(window[n-2])), r1cs.FromVar(next))
		window = append(window, next)
	}
	out := b.Public(b.Value(window[len(window)-1]))
	b.AssertEq(r1cs.FromVar(window[len(window)-1]), r1cs.FromVar(out))
	inst, io, w := b.Build()
	return &Benchmark{Name: "synthetic", Inst: inst, IO: io, Witness: w}
}
