// Package sched implements NoCap's static instruction scheduler (paper
// §IV-A): "each instruction has a fixed latency, which is exposed to the
// compiler. The compiler schedules instructions at the appropriate
// cycles to respect data dependencies and avoid structural hazards."
//
// A Kernel is a dependency DAG of vector instructions. Compile performs
// list scheduling onto the per-FU streams of the distributed-control
// machine: every functional unit issues its own stream strictly in
// order, so the schedule materializes as per-FU instruction sequences
// with explicit delay instructions (§IV-A's "delay instructions allow
// waiting for a specified number of cycles"), which replay
// cycle-accurately without any runtime arbitration. Validate replays
// the emitted program and checks every dependency.
package sched

import (
	"fmt"

	"nocap/internal/isa"
	"nocap/internal/sim"
)

// NodeID identifies a kernel node.
type NodeID int

// Node is one vector instruction in the dependency DAG.
type Node struct {
	Op     isa.Op
	VecLen int
	Deps   []NodeID
}

// Kernel is a DAG of vector instructions.
type Kernel struct {
	Nodes []Node
}

// Add appends a node depending on deps and returns its ID. Nodes must be
// added in topological order (deps already present).
func (k *Kernel) Add(op isa.Op, vecLen int, deps ...NodeID) NodeID {
	id := NodeID(len(k.Nodes))
	for _, d := range deps {
		if d < 0 || d >= id {
			panic(fmt.Sprintf("sched: dep %d out of range for node %d", d, id))
		}
	}
	k.Nodes = append(k.Nodes, Node{Op: op, VecLen: vecLen, Deps: deps})
	return id
}

// PipelineDepth is the fixed result latency of each unit beyond its
// issue occupancy: cycles from first operand in to first result out.
// The hash unit's depth is the 24 Keccak-f rounds; the shuffle unit's
// the 13 Beneš stages; the NTT unit is a deep four-step pipeline
// (paper §IV-B).
var PipelineDepth = map[isa.FU]int64{
	isa.FUMul:     5,
	isa.FUAdd:     2,
	isa.FUHash:    24,
	isa.FUShuffle: 13,
	isa.FUNTT:     48,
	isa.FUMem:     100, // worst-case HBM latency the static schedule assumes (§IV-A)
}

// fuOf mirrors the ISA's opcode→unit mapping for scheduling.
func fuOf(op isa.Op) isa.FU {
	switch op {
	case isa.OpVMul:
		return isa.FUMul
	case isa.OpVAdd:
		return isa.FUAdd
	case isa.OpVHash:
		return isa.FUHash
	case isa.OpVShuffle:
		return isa.FUShuffle
	case isa.OpVNTT, isa.OpVINTT:
		return isa.FUNTT
	case isa.OpLoad, isa.OpStore:
		return isa.FUMem
	}
	panic("sched: unschedulable opcode")
}

// lanes returns per-cycle element throughput for a unit under cfg.
func lanes(cfg sim.Config, fu isa.FU) int64 {
	switch fu {
	case isa.FUMul:
		return int64(cfg.MulLanes)
	case isa.FUAdd:
		return int64(cfg.AddLanes)
	case isa.FUHash:
		return int64(cfg.HashLanes)
	case isa.FUShuffle:
		return int64(cfg.ShuffleLanes)
	case isa.FUNTT:
		return int64(cfg.NTTLanes)
	case isa.FUMem:
		return int64(cfg.MemBytesPerCycle) / 8
	}
	return 1
}

// Schedule is a compiled kernel: exact issue/finish cycles per node and
// the realizing per-FU program.
type Schedule struct {
	Start, Finish []int64
	Makespan      int64
	Program       *isa.Program
	// order[fu] lists node IDs in their stream issue order.
	order [isa.NumFU][]NodeID
}

// Compile list-schedules the kernel onto cfg's units. Nodes issue in ID
// order on their unit (in-order streams, like the hardware); each node
// starts at the later of its unit's next-free cycle and its
// dependencies' finish cycles.
func Compile(k *Kernel, cfg sim.Config) (*Schedule, error) {
	n := len(k.Nodes)
	s := &Schedule{
		Start:   make([]int64, n),
		Finish:  make([]int64, n),
		Program: isa.NewProgram("kernel"),
	}
	fuFree := [isa.NumFU]int64{}
	for id, node := range k.Nodes {
		if node.VecLen < isa.MinVecLen || node.VecLen > isa.MaxVecLen ||
			node.VecLen&(node.VecLen-1) != 0 {
			return nil, fmt.Errorf("sched: node %d vector length %d invalid", id, node.VecLen)
		}
		fu := fuOf(node.Op)
		ready := fuFree[fu]
		for _, d := range node.Deps {
			if s.Finish[d] > ready {
				ready = s.Finish[d]
			}
		}
		occupancy := (int64(node.VecLen) + lanes(cfg, fu) - 1) / lanes(cfg, fu)
		s.Start[id] = ready
		s.Finish[id] = ready + occupancy + PipelineDepth[fu]
		// Materialize the stream: delay to close the gap, then issue.
		if gap := ready - fuFree[fu]; gap > 0 {
			s.Program.EmitDelay(fu, gap)
		}
		s.Program.Emit(node.Op, node.VecLen, 1)
		fuFree[fu] = ready + occupancy
		s.order[fu] = append(s.order[fu], NodeID(id))
		if s.Finish[id] > s.Makespan {
			s.Makespan = s.Finish[id]
		}
	}
	return s, nil
}

// Validate replays the compiled per-FU streams — in order, honoring only
// the embedded delays, with no runtime dependency tracking — and checks
// that every node still starts at its scheduled cycle and after all of
// its dependencies' results. This is the guarantee that makes
// distributed control safe (§IV-A).
func (s *Schedule) Validate(k *Kernel, cfg sim.Config) error {
	replayStart := make([]int64, len(k.Nodes))
	for fu := isa.FU(0); fu < isa.NumFU; fu++ {
		var cursor int64
		idx := 0
		for _, in := range s.Program.Streams[fu] {
			if in.Op == isa.OpDelay {
				cursor += int64(in.VecLen) * in.Repeat
				continue
			}
			id := s.order[fu][idx]
			idx++
			replayStart[id] = cursor
			cursor += (int64(in.VecLen) + lanes(cfg, fu) - 1) / lanes(cfg, fu)
		}
		if idx != len(s.order[fu]) {
			return fmt.Errorf("sched: stream %v issues %d of %d nodes", fu, idx, len(s.order[fu]))
		}
	}
	for id, node := range k.Nodes {
		if replayStart[id] != s.Start[id] {
			return fmt.Errorf("sched: node %d replays at %d, scheduled %d", id, replayStart[id], s.Start[id])
		}
		for _, d := range node.Deps {
			if replayStart[id] < s.Finish[d] {
				return fmt.Errorf("sched: node %d starts at %d before dep %d finishes at %d",
					id, replayStart[id], d, s.Finish[d])
			}
		}
	}
	return nil
}

// SumcheckRound builds the kernel for one sumcheck DP round over
// `arrays` input arrays of `size` elements (paper Listing 1): per array,
// load → fold multiply → accumulate adds; then the reduction tree
// (shuffle-rotate + add per level) and the round hash whose output gates
// the next round.
func SumcheckRound(arrays, size int) *Kernel {
	k := &Kernel{}
	var partials []NodeID
	for a := 0; a < arrays; a++ {
		ld := k.Add(isa.OpLoad, size)
		mul := k.Add(isa.OpVMul, size, ld)
		add := k.Add(isa.OpVAdd, size, mul)
		partials = append(partials, add)
	}
	// Reduction: rotate + add halving levels down to one vector.
	cur := k.Add(isa.OpVAdd, size, partials...)
	for width := size; width > isa.MinVecLen; width /= 2 {
		rot := k.Add(isa.OpVShuffle, width, cur)
		cur = k.Add(isa.OpVAdd, width/2, rot)
	}
	k.Add(isa.OpVHash, isa.MinVecLen, cur)
	return k
}
