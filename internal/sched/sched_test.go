package sched

import (
	"testing"

	"nocap/internal/isa"
	"nocap/internal/sim"
)

func TestChainRespectsLatency(t *testing.T) {
	// load → mul → add chain: each stage waits for the previous result.
	cfg := sim.DefaultConfig()
	k := &Kernel{}
	ld := k.Add(isa.OpLoad, 1<<10)
	mul := k.Add(isa.OpVMul, 1<<10, ld)
	add := k.Add(isa.OpVAdd, 1<<10, mul)
	s, err := Compile(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Start[mul] != s.Finish[ld] {
		t.Fatalf("mul starts at %d, load finishes at %d", s.Start[mul], s.Finish[ld])
	}
	if s.Start[add] != s.Finish[mul] {
		t.Fatal("add does not wait for mul")
	}
	// Load: ceil(1024/128)=8 occupancy + 100 latency = 108.
	if s.Finish[ld] != 108 {
		t.Fatalf("load finish %d", s.Finish[ld])
	}
	if err := s.Validate(k, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestIndependentNodesOverlap(t *testing.T) {
	// Two independent muls share the FU back-to-back (structural hazard
	// honored); independent ops on different FUs start together.
	cfg := sim.DefaultConfig()
	k := &Kernel{}
	m1 := k.Add(isa.OpVMul, 1<<12)
	m2 := k.Add(isa.OpVMul, 1<<12)
	h := k.Add(isa.OpVHash, 1<<12)
	s, err := Compile(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	occ := int64(1<<12) / int64(cfg.MulLanes)
	if s.Start[m1] != 0 || s.Start[m2] != occ {
		t.Fatalf("mul issue cycles %d, %d; want 0, %d", s.Start[m1], s.Start[m2], occ)
	}
	if s.Start[h] != 0 {
		t.Fatal("hash should issue immediately on its own unit")
	}
	if err := s.Validate(k, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDelaysEmittedForGaps(t *testing.T) {
	cfg := sim.DefaultConfig()
	k := &Kernel{}
	ld := k.Add(isa.OpLoad, 1<<10)
	k.Add(isa.OpVMul, 1<<10, ld)
	s, err := Compile(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The mul stream must begin with a delay covering the load's latency.
	mulStream := s.Program.Streams[isa.FUMul]
	if len(mulStream) != 2 || mulStream[0].Op != isa.OpDelay {
		t.Fatalf("expected delay+mul, got %v", mulStream)
	}
	if got := int64(mulStream[0].VecLen); got != s.Finish[ld] {
		t.Fatalf("delay %d, want %d", got, s.Finish[ld])
	}
}

func TestSumcheckRoundKernel(t *testing.T) {
	cfg := sim.DefaultConfig()
	for _, size := range []int{1 << 10, 1 << 16} {
		k := SumcheckRound(4, size)
		s, err := Compile(k, cfg)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if err := s.Validate(k, cfg); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		// Makespan is dominated by the serial reduce+hash tail after the
		// parallel streaming phase; it must exceed the pure streaming time
		// but stay within a small multiple of it plus the tail latencies.
		stream := 4 * int64(size) / int64(cfg.MemBytesPerCycle/8)
		if s.Makespan <= stream {
			t.Fatalf("size %d: makespan %d ≤ streaming %d", size, s.Makespan, stream)
		}
		if s.Makespan > stream+4000 {
			t.Fatalf("size %d: makespan %d far exceeds streaming %d + tail", size, s.Makespan, stream)
		}
	}
}

func TestRoundLatencyTailMatchesListing1(t *testing.T) {
	// Listing 1's per-round serialization: the hash depends on the whole
	// reduction, so the last node must be the hash and its start must be
	// after every other finish except its own.
	cfg := sim.DefaultConfig()
	k := SumcheckRound(2, 1<<12)
	s, err := Compile(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := len(k.Nodes) - 1
	if k.Nodes[last].Op != isa.OpVHash {
		t.Fatal("last node is not the round hash")
	}
	if s.Finish[last] != s.Makespan {
		t.Fatal("round hash does not close the round")
	}
}

func TestCompileRejectsBadVecLen(t *testing.T) {
	k := &Kernel{}
	k.Add(isa.OpVMul, 100)
	if _, err := Compile(k, sim.DefaultConfig()); err == nil {
		t.Fatal("invalid vector length accepted")
	}
}

func TestAddPanicsOnForwardDep(t *testing.T) {
	k := &Kernel{}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Add(isa.OpVMul, 128, 0) // self/forward reference
}

func TestScheduleScalesWithLanes(t *testing.T) {
	// Halving multiplier lanes must push dependent issue cycles out.
	k := &Kernel{}
	m := k.Add(isa.OpVMul, 1<<16)
	k.Add(isa.OpVAdd, 1<<16, m)
	wide, err := Compile(k, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	narrowCfg := sim.DefaultConfig()
	narrowCfg.MulLanes /= 2
	narrow, err := Compile(k, narrowCfg)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Makespan <= wide.Makespan {
		t.Fatal("narrower multiplier did not lengthen the schedule")
	}
}
