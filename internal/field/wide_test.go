package field

import (
	"math/big"
	"math/rand"
	"testing"
)

func randBig(rng *rand.Rand) *big.Int {
	b := make([]byte, 32)
	rng.Read(b)
	return new(big.Int).Mod(new(big.Int).SetBytes(b), wideModulus)
}

func TestWideRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		v := randBig(rng)
		if got := NewWide(v).Big(); got.Cmp(v) != 0 {
			t.Fatalf("round trip: %v -> %v", v, got)
		}
	}
}

func TestWideMulMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a, b := randBig(rng), randBig(rng)
		want := new(big.Int).Mul(a, b)
		want.Mod(want, wideModulus)
		got := WideMul(NewWide(a), NewWide(b)).Big()
		if got.Cmp(want) != 0 {
			t.Fatalf("mul %v * %v = %v, want %v", a, b, got, want)
		}
	}
}

func TestWideMulEdgeCases(t *testing.T) {
	pm1 := new(big.Int).Sub(wideModulus, big.NewInt(1))
	edges := []*big.Int{big.NewInt(0), big.NewInt(1), big.NewInt(2), pm1}
	for _, a := range edges {
		for _, b := range edges {
			want := new(big.Int).Mul(a, b)
			want.Mod(want, wideModulus)
			if got := WideMul(NewWide(a), NewWide(b)).Big(); got.Cmp(want) != 0 {
				t.Fatalf("mul(%v,%v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestWideAddMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		a, b := randBig(rng), randBig(rng)
		want := new(big.Int).Add(a, b)
		want.Mod(want, wideModulus)
		if got := WideAdd(NewWide(a), NewWide(b)).Big(); got.Cmp(want) != 0 {
			t.Fatalf("add mismatch")
		}
	}
}

func TestWideOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v := randBig(rng)
	if got := WideMul(NewWide(v), WideOne()).Big(); got.Cmp(v) != 0 {
		t.Fatal("1 is not the multiplicative identity")
	}
}

func TestWideMulCount(t *testing.T) {
	EnableMulCount(true)
	defer EnableMulCount(false)
	WideMul(wideOneM, wideOneM)
	if got := MulCount(); got != 36 {
		t.Fatalf("wide mul counted %d, want 36 (2·4²+4)", got)
	}
}

// BenchmarkWideMul vs BenchmarkMul measures the Goldilocks ablation
// (§VIII-C: narrow field → 1.7× CPU speedup) on this host.
func BenchmarkWideMul(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x, y := NewWide(randBig(rng)), NewWide(randBig(rng))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = WideMul(x, y)
	}
	_ = x
}
