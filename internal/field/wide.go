package field

import (
	"math/big"
	"math/bits"
)

// Wide is a 256-bit prime-field element in Montgomery form — the kind of
// field hash-based ZKPs used before the Goldilocks-64 switch (the
// paper's §VIII-C ablation: "switching to the narrower field improves
// performance by 1.7×"). The modulus is the BN254 scalar field, a
// typical NTT-friendly 256-bit choice. Arithmetic is 4-limb Montgomery
// CIOS, the standard software implementation whose 64-bit multiply count
// (2·4²+4 = 36 per modmul vs Goldilocks' 1) drives the ablation.
//
// Wide exists for measurement and comparison; the protocol stack runs
// entirely on Element.
type Wide [4]uint64

// wideModulus is the BN254 scalar field prime.
var wideModulus = mustBig("21888242871839275222246405745257275088548364400416034343698204186575808495617")

// Montgomery constants, derived at init (R = 2^256).
var (
	wideP    [4]uint64 // modulus limbs
	wideInv  uint64    // -p^{-1} mod 2^64
	wideR2   Wide      // R² mod p (to enter Montgomery form)
	wideOneM Wide      // R mod p (1 in Montgomery form)
)

func mustBig(s string) *big.Int {
	v, ok := new(big.Int).SetString(s, 10)
	if !ok {
		panic("field: bad constant")
	}
	return v
}

func bigToLimbs(v *big.Int) [4]uint64 {
	var out [4]uint64
	b := v.Bits()
	for i := 0; i < len(b) && i < 4; i++ {
		out[i] = uint64(b[i])
	}
	return out
}

func init() {
	wideP = bigToLimbs(wideModulus)
	// wideInv = -p^{-1} mod 2^64 via Newton iteration.
	inv := wideP[0] // p is odd
	for i := 0; i < 5; i++ {
		inv *= 2 - wideP[0]*inv
	}
	wideInv = -inv
	r := new(big.Int).Lsh(big.NewInt(1), 256)
	r.Mod(r, wideModulus)
	wideOneM = Wide(bigToLimbs(r))
	r2 := new(big.Int).Lsh(big.NewInt(1), 512)
	r2.Mod(r2, wideModulus)
	wideR2 = Wide(bigToLimbs(r2))
}

// NewWide converts a big.Int (reduced mod p) into Montgomery form.
func NewWide(v *big.Int) Wide {
	t := new(big.Int).Mod(v, wideModulus)
	return WideMul(Wide(bigToLimbs(t)), wideR2)
}

// WideOne returns 1.
func WideOne() Wide { return wideOneM }

// Big converts back out of Montgomery form.
func (w Wide) Big() *big.Int {
	std := WideMul(w, Wide{1}) // multiply by 1 (non-Montgomery) = REDC
	out := new(big.Int)
	for i := 3; i >= 0; i-- {
		out.Lsh(out, 64)
		out.Add(out, new(big.Int).SetUint64(std[i]))
	}
	return out
}

// wideGTE reports a ≥ p.
func wideGTE(a [4]uint64) bool {
	for i := 3; i >= 0; i-- {
		if a[i] > wideP[i] {
			return true
		}
		if a[i] < wideP[i] {
			return false
		}
	}
	return true
}

// wideSubP subtracts p in place.
func wideSubP(a *[4]uint64) {
	var borrow uint64
	for i := 0; i < 4; i++ {
		a[i], borrow = bits.Sub64(a[i], wideP[i], borrow)
	}
}

// WideAdd returns a+b mod p.
func WideAdd(a, b Wide) Wide {
	var out [4]uint64
	var carry uint64
	for i := 0; i < 4; i++ {
		out[i], carry = bits.Add64(a[i], b[i], carry)
	}
	if carry == 1 || wideGTE(out) {
		wideSubP(&out)
	}
	return Wide(out)
}

// WideMul returns a·b mod p (Montgomery CIOS). Each call performs
// 2·4²+4 = 36 64-bit multiplies — the critical-operation count behind
// the paper's field ablation; when multiply counting is enabled, it adds
// 36 to the counter.
func WideMul(a, b Wide) Wide {
	if countMuls.Load() {
		mulCount.Add(36)
	}
	var t [5]uint64 // t[4] is the running overflow
	for i := 0; i < 4; i++ {
		// t += a[i] * b
		var carry uint64
		for j := 0; j < 4; j++ {
			hi, lo := bits.Mul64(a[i], b[j])
			var c uint64
			t[j], c = bits.Add64(t[j], lo, 0)
			hi += c
			t[j], c = bits.Add64(t[j], carry, 0)
			hi += c
			carry = hi
		}
		t4, c4 := bits.Add64(t[4], carry, 0)
		t[4] = t4
		overflow := c4

		// m = t[0] * (-p^{-1}) mod 2^64; t += m*p; t >>= 64
		m := t[0] * wideInv
		hi, lo := bits.Mul64(m, wideP[0])
		_, c := bits.Add64(t[0], lo, 0)
		carry = hi + c
		for j := 1; j < 4; j++ {
			hi, lo = bits.Mul64(m, wideP[j])
			var c1, c2 uint64
			t[j-1], c1 = bits.Add64(t[j], lo, 0)
			hi += c1
			t[j-1], c2 = bits.Add64(t[j-1], carry, 0)
			hi += c2
			carry = hi
		}
		t[3], c = bits.Add64(t[4], carry, 0)
		t[4] = overflow + c
	}
	out := [4]uint64{t[0], t[1], t[2], t[3]}
	if t[4] != 0 || wideGTE(out) {
		wideSubP(&out)
	}
	return Wide(out)
}
