package field

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

var bigP = new(big.Int).SetUint64(Modulus)

func bigMod(op func(x, y, out *big.Int), a, b uint64) uint64 {
	x := new(big.Int).SetUint64(a)
	y := new(big.Int).SetUint64(b)
	out := new(big.Int)
	op(x, y, out)
	out.Mod(out, bigP)
	return out.Uint64()
}

func TestModulusProperties(t *testing.T) {
	// p = 2^64 - 2^32 + 1.
	want := new(big.Int).Lsh(big.NewInt(1), 64)
	want.Sub(want, new(big.Int).Lsh(big.NewInt(1), 32))
	want.Add(want, big.NewInt(1))
	if want.Cmp(bigP) != 0 {
		t.Fatalf("modulus constant wrong: %v vs %v", bigP, want)
	}
	if !bigP.ProbablyPrime(32) {
		t.Fatal("modulus is not prime")
	}
}

func TestAddMatchesBig(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := New(a), New(b)
		got := Add(x, y).Uint64()
		want := bigMod(func(x, y, o *big.Int) { o.Add(x, y) }, x.Uint64(), y.Uint64())
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSubMatchesBig(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := New(a), New(b)
		got := Sub(x, y).Uint64()
		want := bigMod(func(x, y, o *big.Int) { o.Sub(x, y) }, x.Uint64(), y.Uint64())
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMulMatchesBig(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := New(a), New(b)
		got := Mul(x, y).Uint64()
		want := bigMod(func(x, y, o *big.Int) { o.Mul(x, y) }, x.Uint64(), y.Uint64())
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestMulEdgeCases(t *testing.T) {
	edge := []uint64{0, 1, 2, Modulus - 1, Modulus - 2, epsilon, epsilon + 1,
		1 << 32, 1<<63 + 5, ^uint64(0) % Modulus}
	for _, a := range edge {
		for _, b := range edge {
			got := Mul(New(a), New(b)).Uint64()
			want := bigMod(func(x, y, o *big.Int) { o.Mul(x, y) }, New(a).Uint64(), New(b).Uint64())
			if got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestNegAndDouble(t *testing.T) {
	f := func(a uint64) bool {
		x := New(a)
		return Add(x, Neg(x)) == Zero && Double(x) == Add(x, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if Neg(Zero) != Zero {
		t.Fatal("Neg(0) != 0")
	}
}

func TestInv(t *testing.T) {
	f := func(a uint64) bool {
		x := New(a)
		if x == Zero {
			return Inv(x) == Zero
		}
		return Mul(x, Inv(x)) == One
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDivPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	Div(One, Zero)
}

func TestExp(t *testing.T) {
	// Fermat: a^(p-1) = 1 for a != 0.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		a := New(rng.Uint64())
		if a == Zero {
			continue
		}
		if Exp(a, Modulus-1) != One {
			t.Fatalf("fermat failed for %v", a)
		}
	}
	if Exp(New(3), 0) != One || Exp(New(3), 1) != New(3) {
		t.Fatal("exp base cases wrong")
	}
	if Exp(New(3), 5) != New(243) {
		t.Fatal("3^5 != 243")
	}
}

func TestBatchInv(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vs := make([]Element, 100)
	want := make([]Element, 100)
	for i := range vs {
		if i%7 == 0 {
			vs[i] = Zero
		} else {
			vs[i] = New(rng.Uint64())
		}
		want[i] = Inv(vs[i])
	}
	BatchInv(vs)
	for i := range vs {
		if vs[i] != want[i] {
			t.Fatalf("BatchInv[%d] = %v, want %v", i, vs[i], want[i])
		}
	}
	BatchInv(nil) // must not panic
}

func TestRootOfUnity(t *testing.T) {
	for logN := 0; logN <= 20; logN++ {
		w := RootOfUnity(logN)
		n := uint64(1) << logN
		if Exp(w, n) != One {
			t.Fatalf("w^(2^%d) != 1", logN)
		}
		if logN > 0 && Exp(w, n/2) == One {
			t.Fatalf("root of order 2^%d is not primitive", logN)
		}
	}
	w32 := RootOfUnity(TwoAdicity)
	if Exp(w32, 1<<31) == One {
		t.Fatal("2^32 root not primitive")
	}
}

func TestRootOfUnityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for too-large root")
		}
	}()
	RootOfUnity(33)
}

func TestGeneratorOrder(t *testing.T) {
	// 7 generates GF(p)*: its order is not a proper divisor of p-1.
	// p-1 = 2^32 * 3 * 5 * 17 * 257 * 65537.
	factors := []uint64{2, 3, 5, 17, 257, 65537}
	order := Modulus - 1
	prod := uint64(1)
	for _, f := range factors[1:] {
		prod *= f
	}
	if prod<<32 != order {
		t.Fatalf("factorization of p-1 wrong")
	}
	for _, f := range factors {
		if Exp(Element(Generator), order/f) == One {
			t.Fatalf("generator has order dividing (p-1)/%d", f)
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(a uint64) bool {
		x := New(a)
		return FromBytes(x.Bytes()) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInnerProductAndVecOps(t *testing.T) {
	a := []Element{New(1), New(2), New(3)}
	b := []Element{New(4), New(5), New(6)}
	if InnerProduct(a, b) != New(32) {
		t.Fatal("inner product wrong")
	}
	dst := make([]Element, 3)
	VecAdd(dst, a, b)
	if dst[0] != New(5) || dst[2] != New(9) {
		t.Fatal("vecadd wrong")
	}
	VecMul(dst, a, b)
	if dst[1] != New(10) {
		t.Fatal("vecmul wrong")
	}
	copy(dst, a)
	VecScaleAdd(dst, New(2), b)
	if dst[0] != New(9) || dst[1] != New(12) {
		t.Fatal("vecscaleadd wrong")
	}
}

func TestVecOpsPanicOnMismatch(t *testing.T) {
	for name, fn := range map[string]func(){
		"inner": func() { InnerProduct(make([]Element, 2), make([]Element, 3)) },
		"add":   func() { VecAdd(make([]Element, 2), make([]Element, 2), make([]Element, 3)) },
		"mul":   func() { VecMul(make([]Element, 3), make([]Element, 2), make([]Element, 2)) },
		"sadd":  func() { VecScaleAdd(make([]Element, 2), One, make([]Element, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMulCount(t *testing.T) {
	EnableMulCount(true)
	defer EnableMulCount(false)
	Mul(New(3), New(4))
	Square(New(5))
	AddMulCount(10)
	if got := MulCount(); got != 12 {
		t.Fatalf("MulCount = %d, want 12", got)
	}
	EnableMulCount(false)
	Mul(New(3), New(4))
	AddMulCount(5)
	if got := MulCount(); got != 0 {
		t.Fatalf("counter not reset/disabled: %d", got)
	}
}

func TestFieldAxioms(t *testing.T) {
	// Associativity, commutativity, distributivity on random triples.
	f := func(a, b, c uint64) bool {
		x, y, z := New(a), New(b), New(c)
		if Add(Add(x, y), z) != Add(x, Add(y, z)) {
			return false
		}
		if Mul(Mul(x, y), z) != Mul(x, Mul(y, z)) {
			return false
		}
		if Add(x, y) != Add(y, x) || Mul(x, y) != Mul(y, x) {
			return false
		}
		return Mul(x, Add(y, z)) == Add(Mul(x, y), Mul(x, z))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMul(b *testing.B) {
	x, y := New(0x123456789abcdef), New(0xfedcba987654321)
	for i := 0; i < b.N; i++ {
		x = Mul(x, y)
	}
	_ = x
}

func BenchmarkAdd(b *testing.B) {
	x, y := New(0x123456789abcdef), New(0xfedcba987654321)
	for i := 0; i < b.N; i++ {
		x = Add(x, y)
	}
	_ = x
}

func BenchmarkInv(b *testing.B) {
	x := New(0x123456789abcdef)
	for i := 0; i < b.N; i++ {
		x = Inv(x)
	}
	_ = x
}
