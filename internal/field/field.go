// Package field implements arithmetic in the Goldilocks-64 prime field,
// GF(p) with p = 2^64 − 2^32 + 1, the field NoCap's functional units
// operate on (paper §IV-A). The prime admits a reduction using only
// additions and shifts, which is what makes 64-bit modular multiplies
// cheap both on CPUs and in NoCap's multiplier FU.
//
// The package also provides the root-of-unity machinery required by the
// NTT (the multiplicative group has order p−1 = 2^32 · 3 · 5 · 17 · 257 ·
// 65537, so radix-2 NTTs up to 2^32 points exist) and an optional 64-bit
// multiply counter used by the paper's §III efficiency analysis.
package field

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Modulus is the Goldilocks prime p = 2^64 − 2^32 + 1.
const Modulus uint64 = 0xFFFFFFFF00000001

// epsilon = 2^64 mod p = 2^32 − 1. Adding 2^64 modulo p is adding epsilon.
const epsilon uint64 = 0xFFFFFFFF

// Generator is a generator of the full multiplicative group GF(p)*.
const Generator uint64 = 7

// TwoAdicity is the largest k with 2^k | p−1; NTT sizes up to 2^k exist.
const TwoAdicity = 32

// Element is a field element. The representation is canonical: always in
// [0, p). The zero value is the field's zero.
type Element uint64

// mulCount counts 64-bit integer multiplies when counting is enabled.
// It backs the §III "critical operation" analysis.
var mulCount atomic.Uint64

// countMuls gates instrumentation; it is toggled by EnableMulCount.
var countMuls atomic.Bool

// EnableMulCount turns the 64-bit multiply counter on or off and resets it.
func EnableMulCount(on bool) {
	countMuls.Store(on)
	mulCount.Store(0)
}

// MulCount returns the number of 64-bit multiplies executed by Mul/Square
// since the counter was last reset. Each Goldilocks multiply is one 64×64
// full multiply (bits.Mul64), which is the unit the paper counts.
func MulCount() uint64 { return mulCount.Load() }

// AddMulCount adds n to the multiply counter; used by cost models that
// account for multiplies performed outside this package (e.g. the Groth16
// baseline's 381-bit limb products).
func AddMulCount(n uint64) {
	if countMuls.Load() {
		mulCount.Add(n)
	}
}

// New returns the element congruent to v mod p. It silently reduces
// non-canonical values and is therefore for trusted, internal use only;
// untrusted wire input must go through FromCanonical so that two distinct
// byte strings never decode to the same element.
func New(v uint64) Element {
	if v >= Modulus {
		v -= Modulus
	}
	return Element(v)
}

// FromCanonical validates that v is a canonical representative in [0, p)
// and returns it as an element. It is the required entry point for
// attacker-controlled encodings: ok is false for v ≥ p, and callers must
// reject the input rather than reduce it.
func FromCanonical(v uint64) (Element, bool) {
	if v >= Modulus {
		return 0, false
	}
	return Element(v), true
}

// Zero and One are the additive and multiplicative identities.
const (
	Zero Element = 0
	One  Element = 1
)

// Uint64 returns the canonical representative in [0, p).
func (e Element) Uint64() uint64 { return uint64(e) }

// IsZero reports whether e is the additive identity.
func (e Element) IsZero() bool { return e == 0 }

// String implements fmt.Stringer.
func (e Element) String() string { return fmt.Sprintf("%d", uint64(e)) }

// Add returns a+b mod p.
func Add(a, b Element) Element {
	s, carry := bits.Add64(uint64(a), uint64(b), 0)
	// a,b < p ≤ 2^64−2^32+1, so a+b < 2^65. If it overflowed, the true sum
	// is s + 2^64 ≡ s + epsilon (mod p); s < 2·p − 2^64 < epsilon·... the
	// addition of epsilon cannot overflow because s ≤ 2p−2−2^64 < 2^33.
	if carry == 1 {
		s += epsilon
	}
	if s >= Modulus {
		s -= Modulus
	}
	return Element(s)
}

// Sub returns a−b mod p.
func Sub(a, b Element) Element {
	d, borrow := bits.Sub64(uint64(a), uint64(b), 0)
	if borrow == 1 {
		d -= epsilon // d + 2^64 ≡ d + epsilon; equivalently d -= epsilon wraps to d+p.
	}
	return Element(d)
}

// Neg returns −a mod p.
func Neg(a Element) Element {
	if a == 0 {
		return 0
	}
	return Element(Modulus - uint64(a))
}

// Double returns 2a mod p.
func Double(a Element) Element { return Add(a, a) }

// reduce128 reduces hi·2^64 + lo modulo p.
//
// Using 2^64 ≡ 2^32 − 1 and 2^96 ≡ −1 (mod p): write hi = h1·2^32 + h0.
// Then x ≡ lo − h1 + h0·(2^32 − 1) (mod p).
func reduce128(hi, lo uint64) Element {
	h0 := hi & 0xFFFFFFFF
	h1 := hi >> 32
	t, borrow := bits.Sub64(lo, h1, 0)
	if borrow == 1 {
		// t wrapped: true value is t + 2^64 ≡ t + epsilon... we instead
		// subtract epsilon from the wrapped t, which equals (lo − h1) mod p
		// because wrapping added 2^64 and 2^64 ≡ epsilon, so remove the
		// excess 2^64 − p = epsilon − ... Standard identity: t -= epsilon.
		t -= epsilon
	}
	m := h0 * epsilon // h0 < 2^32 so the product fits in 64 bits.
	r, carry := bits.Add64(t, m, 0)
	if carry == 1 {
		r += epsilon
	}
	if r >= Modulus {
		r -= Modulus
	}
	return Element(r)
}

// Mul returns a·b mod p.
func Mul(a, b Element) Element {
	if countMuls.Load() {
		mulCount.Add(1)
	}
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	return reduce128(hi, lo)
}

// Square returns a² mod p.
func Square(a Element) Element { return Mul(a, a) }

// MulAdd returns a·b + c mod p.
func MulAdd(a, b, c Element) Element { return Add(Mul(a, b), c) }

// Exp returns a^e mod p by square-and-multiply.
func Exp(a Element, e uint64) Element {
	result := One
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = Mul(result, base)
		}
		base = Square(base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a, or 0 if a is 0.
// It uses Fermat's little theorem: a^(p−2).
func Inv(a Element) Element {
	if a == 0 {
		return 0
	}
	return Exp(a, Modulus-2)
}

// Div returns a/b mod p; it panics if b is zero.
func Div(a, b Element) Element {
	if b == 0 {
		panic("field: division by zero")
	}
	return Mul(a, Inv(b))
}

// BatchInv inverts all elements of vs in place using Montgomery's trick:
// one inversion plus 3(n−1) multiplies. Zero entries are left as zero.
func BatchInv(vs []Element) {
	if len(vs) == 0 {
		return
	}
	prefix := make([]Element, len(vs))
	acc := One
	for i, v := range vs {
		prefix[i] = acc
		if v != 0 {
			acc = Mul(acc, v)
		}
	}
	inv := Inv(acc)
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i] == 0 {
			continue
		}
		tmp := Mul(inv, vs[i])
		vs[i] = Mul(inv, prefix[i])
		inv = tmp
	}
}

// RootOfUnity returns a primitive 2^logN-th root of unity.
// It panics if logN exceeds the field's two-adicity.
func RootOfUnity(logN int) Element {
	if logN < 0 || logN > TwoAdicity {
		panic(fmt.Sprintf("field: no 2^%d-th root of unity", logN))
	}
	// Generator^((p−1)/2^32) is a primitive 2^32-nd root; square down.
	root := Exp(Element(Generator), (Modulus-1)>>TwoAdicity)
	for i := TwoAdicity; i > logN; i-- {
		root = Square(root)
	}
	return root
}

// InnerProduct returns Σ a[i]·b[i]. The slices must have equal length.
func InnerProduct(a, b []Element) Element {
	if len(a) != len(b) {
		panic("field: inner product length mismatch")
	}
	var acc Element
	for i := range a {
		acc = Add(acc, Mul(a[i], b[i]))
	}
	return acc
}

// VecAdd sets dst[i] = a[i] + b[i]. Slices must have equal length.
func VecAdd(dst, a, b []Element) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("field: vector add length mismatch")
	}
	for i := range a {
		dst[i] = Add(a[i], b[i])
	}
}

// VecScaleAdd sets dst[i] = dst[i] + s·a[i].
func VecScaleAdd(dst []Element, s Element, a []Element) {
	if len(dst) != len(a) {
		panic("field: vector scale-add length mismatch")
	}
	for i := range a {
		dst[i] = Add(dst[i], Mul(s, a[i]))
	}
}

// VecMul sets dst[i] = a[i] · b[i]. Slices must have equal length.
func VecMul(dst, a, b []Element) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("field: vector mul length mismatch")
	}
	for i := range a {
		dst[i] = Mul(a[i], b[i])
	}
}

// FromBytes interprets an 8-byte little-endian value, reduced mod p.
// Like New it silently reduces non-canonical values, so it must not be
// used on untrusted wire input — use FromCanonical there.
func FromBytes(b [8]byte) Element {
	v := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	// v < 2^64 = p + epsilon − 1 + ... reduce with at most two subtractions.
	if v >= Modulus {
		v -= Modulus
	}
	return Element(v)
}

// Bytes returns the canonical 8-byte little-endian encoding.
func (e Element) Bytes() [8]byte {
	v := uint64(e)
	return [8]byte{
		byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24),
		byte(v >> 32), byte(v >> 40), byte(v >> 48), byte(v >> 56),
	}
}
