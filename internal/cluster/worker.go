package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"nocap/internal/faultinject"
	"nocap/internal/jobs"
)

// WorkerConfig configures a Worker node.
type WorkerConfig struct {
	// Coordinator is the coordinator base URL (e.g. http://host:port).
	Coordinator string
	// ID names this node; required, must be stable across heartbeats.
	ID string
	// Slots is the number of assignments proved concurrently (default 1).
	Slots int
	// Key is sent as X-Cluster-Key on every RPC (empty → no auth).
	Key string
	// PollWait is the long-poll window requested per poll (default 2s).
	PollWait time.Duration
	// RetryBase shapes the full-jitter backoff after a failed poll or
	// complete RPC (default 50ms, doubling to 2s).
	RetryBase time.Duration
	// Exec proves one solo payload; required.
	Exec jobs.Exec
	// BatchExec proves a whole batch; nil falls back to member-by-member
	// solo proving.
	BatchExec jobs.BatchExec
	// Seed seeds heartbeat/backoff jitter (0 → time-based).
	Seed int64
	// Logf, when set, receives worker lifecycle logs.
	Logf func(format string, args ...any)
}

// Worker is one prover node: it pulls assignments from the coordinator
// (work-stealing), heartbeats its leases at a fully jittered interval,
// proves, and reports outcomes. Kill() models node death for chaos
// tests: everything aborts instantly and no completion is ever sent.
type Worker struct {
	cfg    WorkerConfig
	client *http.Client

	killCtx    context.Context
	killCancel context.CancelFunc
	killed     atomic.Bool

	pollCtx    context.Context
	pollCancel context.CancelFunc

	mu   sync.Mutex
	rng  *rand.Rand
	warm []string // recently proven locality keys, newest last

	wg sync.WaitGroup
}

// NewWorker builds a worker with an h2c-only HTTP/2 client.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" || cfg.ID == "" || cfg.Exec == nil {
		return nil, fmt.Errorf("cluster: WorkerConfig requires Coordinator, ID, and Exec")
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 1
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = 2 * time.Second
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 50 * time.Millisecond
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	protos := new(http.Protocols)
	protos.SetUnencryptedHTTP2(true)
	tr := &http.Transport{Protocols: protos}
	w := &Worker{
		cfg:    cfg,
		client: &http.Client{Transport: tr},
		rng:    rand.New(rand.NewSource(seed)),
	}
	w.killCtx, w.killCancel = context.WithCancel(context.Background())
	w.pollCtx, w.pollCancel = context.WithCancel(w.killCtx)
	return w, nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// Start launches the poll loop.
func (w *Worker) Start() {
	w.wg.Add(1)
	sem := make(chan struct{}, w.cfg.Slots)
	go func() {
		defer w.wg.Done()
		backoff := w.cfg.RetryBase
		for {
			select {
			case sem <- struct{}{}:
			case <-w.pollCtx.Done():
				return
			}
			a, err := w.poll()
			if err != nil {
				<-sem
				if w.pollCtx.Err() != nil {
					return
				}
				w.sleep(w.jitter(backoff))
				if backoff < 2*time.Second {
					backoff *= 2
				}
				continue
			}
			backoff = w.cfg.RetryBase
			if a == nil {
				<-sem
				continue
			}
			w.wg.Add(1)
			go func() {
				defer w.wg.Done()
				defer func() { <-sem }()
				w.runAssignment(a)
			}()
		}
	}()
}

// Stop drains gracefully: no more polls, in-flight assignments finish
// and complete. Returns ctx.Err() if draining outlives ctx.
func (w *Worker) Stop(ctx context.Context) error {
	w.pollCancel()
	done := make(chan struct{})
	go func() { w.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Kill models node death (in-process SIGKILL): every in-flight HTTP
// request and proving attempt aborts, no completion or heartbeat is
// ever sent again. The coordinator finds out via lease expiry.
func (w *Worker) Kill() {
	w.killed.Store(true)
	w.killCancel()
}

// Killed reports whether Kill was called.
func (w *Worker) Killed() bool { return w.killed.Load() }

func (w *Worker) jitter(d time.Duration) time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return fullJitter(w.rng, d)
}

func (w *Worker) heartbeatEvery(ttl time.Duration) time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return heartbeatInterval(w.rng, ttl)
}

func (w *Worker) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-w.pollCtx.Done():
	}
}

func (w *Worker) warmKeys() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.warm...)
}

func (w *Worker) noteWarm(key string) {
	if key == "" {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for i, k := range w.warm {
		if k == key {
			w.warm = append(w.warm[:i], w.warm[i+1:]...)
			break
		}
	}
	w.warm = append(w.warm, key)
	if len(w.warm) > warmKeyCap {
		w.warm = w.warm[len(w.warm)-warmKeyCap:]
	}
}

// rpc posts one JSON request. The cluster.rpc.send fault point fires
// before anything leaves the node.
func (w *Worker) rpc(ctx context.Context, path string, in, out any) error {
	if err := faultinject.Check(FIRPCSend); err != nil {
		return err
	}
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if w.cfg.Key != "" {
		req.Header.Set("X-Cluster-Key", w.cfg.Key)
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: %s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (w *Worker) poll() (*Assignment, error) {
	req := PollRequest{
		Node:   w.cfg.ID,
		Slots:  w.cfg.Slots,
		Warm:   w.warmKeys(),
		WaitMS: w.cfg.PollWait.Milliseconds(),
	}
	var resp PollResponse
	// Give the HTTP round trip headroom beyond the server-side wait.
	ctx, cancel := context.WithTimeout(w.pollCtx, w.cfg.PollWait+5*time.Second)
	defer cancel()
	if err := w.rpc(ctx, "/cluster/poll", req, &resp); err != nil {
		return nil, err
	}
	return resp.Assignment, nil
}

// runAssignment proves one leased assignment: a heartbeat goroutine
// renews the lease while member attempts run, then outcomes are
// reported with retries. A lost lease (or Kill) abandons everything
// silently — the coordinator has already reassigned the unit, and a
// late completion would be discarded as a duplicate anyway.
func (w *Worker) runAssignment(a *Assignment) {
	ttl := time.Duration(a.TTLMS) * time.Millisecond
	if ttl <= 0 {
		ttl = 3 * time.Second
	}
	actx, acancel := context.WithCancel(w.killCtx)
	defer acancel()

	// Per-member contexts so the coordinator can cancel one member of a
	// batch (DELETE /jobs/id) without disturbing its batch-mates.
	mctx := make(map[string]context.Context, len(a.Jobs))
	mcancel := make(map[string]context.CancelFunc, len(a.Jobs))
	for _, j := range a.Jobs {
		ctx, cancel := context.WithCancel(actx)
		mctx[j.ID], mcancel[j.ID] = ctx, cancel
	}
	defer func() {
		for _, cancel := range mcancel {
			cancel()
		}
	}()

	var lost atomic.Bool
	hbDone := make(chan struct{})
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		defer close(hbDone)
		for {
			t := time.NewTimer(w.heartbeatEvery(ttl))
			select {
			case <-actx.Done():
				t.Stop()
				return
			case <-t.C:
			}
			if faultinject.Check(FIHeartbeatMiss) != nil {
				w.logf("worker %s: heartbeat.miss injected, skipping beat", w.cfg.ID)
				continue
			}
			var resp HeartbeatResponse
			ctx, cancel := context.WithTimeout(actx, ttl)
			err := w.rpc(ctx, "/cluster/heartbeat", HeartbeatRequest{Node: w.cfg.ID, Leases: []string{a.Lease}}, &resp)
			cancel()
			if err != nil {
				continue // renewal is best-effort; the TTL is the judge
			}
			for _, id := range resp.Lost {
				if id == a.Lease {
					lost.Store(true)
					acancel() // abandon: proving and completion are moot
					return
				}
			}
			for _, id := range resp.Cancelled {
				if cancel := mcancel[id]; cancel != nil {
					cancel()
				}
			}
		}
	}()

	outcomes := w.execute(a, mctx)
	acancel()
	<-hbDone

	if w.killed.Load() || lost.Load() {
		return
	}
	w.noteWarm(a.Key)
	w.complete(a, outcomes)
}

// execute proves the assignment's members, honouring each member's
// context. The cluster.worker.exec fault point fires per member before
// its attempt.
func (w *Worker) execute(a *Assignment, mctx map[string]context.Context) []JobOutcome {
	if a.Batch && w.cfg.BatchExec != nil && len(a.Jobs) > 1 {
		members := make([]jobs.BatchMember, 0, len(a.Jobs))
		skipped := make(map[string]error, len(a.Jobs))
		for _, j := range a.Jobs {
			if err := faultinject.Check(FIWorkerExec); err != nil {
				skipped[j.ID] = err
				continue
			}
			members = append(members, jobs.BatchMember{ID: j.ID, Spec: jobs.Spec{Payload: j.Payload}, Ctx: mctx[j.ID]})
		}
		var outs []jobs.BatchOutcome
		if len(members) > 0 {
			outs = w.cfg.BatchExec(w.killCtx, members)
		}
		outcomes := make([]JobOutcome, 0, len(a.Jobs))
		byID := make(map[string]jobs.BatchOutcome, len(members))
		for i, mb := range members {
			if i < len(outs) {
				byID[mb.ID] = outs[i]
			}
		}
		for _, j := range a.Jobs {
			if err, ok := skipped[j.ID]; ok {
				outcomes = append(outcomes, JobOutcome{ID: j.ID, Error: err.Error(), Code: outcomeCode(err)})
				continue
			}
			out, ok := byID[j.ID]
			switch {
			case !ok:
				outcomes = append(outcomes, JobOutcome{ID: j.ID, Error: "cluster: batch executor returned no outcome", Code: "internal"})
			case out.Err != nil:
				outcomes = append(outcomes, JobOutcome{ID: j.ID, Error: out.Err.Error(), Code: outcomeCode(out.Err)})
			default:
				outcomes = append(outcomes, JobOutcome{ID: j.ID, Proof: out.Result.Proof, Stats: out.Result.Stats})
			}
		}
		return outcomes
	}

	outcomes := make([]JobOutcome, 0, len(a.Jobs))
	for _, j := range a.Jobs {
		if err := faultinject.Check(FIWorkerExec); err != nil {
			outcomes = append(outcomes, JobOutcome{ID: j.ID, Error: err.Error(), Code: outcomeCode(err)})
			continue
		}
		res, err := w.cfg.Exec(mctx[j.ID], jobs.Spec{Payload: j.Payload})
		if err != nil {
			outcomes = append(outcomes, JobOutcome{ID: j.ID, Error: err.Error(), Code: outcomeCode(err)})
			continue
		}
		outcomes = append(outcomes, JobOutcome{ID: j.ID, Proof: res.Proof, Stats: res.Stats})
	}
	return outcomes
}

// complete reports outcomes with jittered retries. The killCtx (not
// pollCtx) bounds it: a draining worker still completes its leases.
func (w *Worker) complete(a *Assignment, outcomes []JobOutcome) {
	req := CompleteRequest{Node: w.cfg.ID, Lease: a.Lease, Outcomes: outcomes}
	backoff := w.cfg.RetryBase
	for attempt := 0; attempt < 3; attempt++ {
		if w.killed.Load() {
			return
		}
		var resp CompleteResponse
		ctx, cancel := context.WithTimeout(w.killCtx, 10*time.Second)
		err := w.rpc(ctx, "/cluster/complete", req, &resp)
		cancel()
		if err == nil {
			if resp.Discarded {
				w.logf("worker %s: completion for %s discarded (lease reassigned)", w.cfg.ID, a.Lease)
			}
			return
		}
		w.logf("worker %s: complete %s failed (attempt %d): %v", w.cfg.ID, a.Lease, attempt+1, err)
		t := time.NewTimer(w.jitter(backoff))
		select {
		case <-t.C:
		case <-w.killCtx.Done():
			t.Stop()
			return
		}
		backoff *= 2
	}
}
