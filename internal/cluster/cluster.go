// Package cluster promotes the process-local jobs manager to a
// coordinator/worker architecture (DESIGN.md §16). The coordinator owns
// the existing journal/admission/tenant/batch stack — it plugs into
// jobs.Config as the Exec/BatchExec — and dispatches ready work to N
// prover nodes over unencrypted HTTP/2 with lease-based execution:
//
//   - Workers pull work (work-stealing): POST /cluster/poll long-polls
//     until an assignment is ready, so a slow or dead node never strands
//     the queue — whichever node polls next takes the next unit.
//   - Every assignment carries a lease ID and TTL. Workers heartbeat at
//     a fully jittered interval in [TTL/6, TTL/3] to renew; a lease that
//     misses renewal past its TTL is expired by the reaper and the unit
//     is resolved with ErrLeaseLost, which the jobs manager converts to
//     a journal-backed attempt refund (crash-replay semantics: node
//     death costs the job nothing).
//   - Nodes carry a health state machine (healthy/suspect/dead) that
//     doubles as a per-node circuit breaker: lease losses mark a node
//     suspect (probation: one unit in flight), repeated losses mark it
//     dead, and a dead node is re-admitted by a single jittered probe
//     unit rather than a thundering reconnect.
//   - Placement is locality-aware: within the stride-scheduled tenant,
//     the coordinator prefers a unit whose (circuit, n, reps) key is
//     warm on the polling node, so same-shape jobs land where the
//     twiddle/encoder caches are already built.
//   - Duplicate completions from a resurrected lease are detected and
//     discarded — the first terminal record wins — and counted in
//     nocap_cluster_duplicate_completions_total.
//
// Degradation is graceful at every layer: with zero live workers the
// coordinator either runs attempts through its local executor
// (LocalFallback) or the server sheds new jobs with a typed 503
// {"code":"no_workers"} whose Retry-After tracks an EWMA of worker poll
// arrivals. Batches are dispatched whole to one node but fail
// member-scoped: each member classifies, refunds, and retries
// independently.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"nocap/internal/faultinject"
	"nocap/internal/zkerr"
)

// Fault-injection points covering every new RPC boundary and the two
// failure clocks (heartbeat, lease expiry). points_test.go asserts each
// one is registered and armable.
var (
	// FIRPCSend fires in the worker's rpc helper before the request is
	// sent: a poll/heartbeat/complete that never leaves the node.
	FIRPCSend = faultinject.Register("cluster.rpc.send")
	// FIRPCRecv fires at the top of every coordinator handler: a
	// request that arrives but is dropped (500) before processing.
	FIRPCRecv = faultinject.Register("cluster.rpc.recv")
	// FIHeartbeatMiss fires in the worker's heartbeat loop, skipping
	// one renewal beat.
	FIHeartbeatMiss = faultinject.Register("cluster.heartbeat.miss")
	// FIWorkerExec fires in the worker before each member's proving
	// attempt, surfacing as a failed outcome.
	FIWorkerExec = faultinject.Register("cluster.worker.exec")
	// FILeaseExpire fires in the coordinator's reaper, force-expiring a
	// live lease as if its renewals were lost.
	FILeaseExpire = faultinject.Register("cluster.lease.expire")
)

// PollRequest is a worker asking for work. Warm lists the locality keys
// the node has hot caches for; WaitMS is how long the worker is willing
// to long-poll (the coordinator caps it at its MaxPollWait).
type PollRequest struct {
	Node   string   `json:"node"`
	Slots  int      `json:"slots,omitempty"`
	Warm   []string `json:"warm,omitempty"`
	WaitMS int64    `json:"wait_ms,omitempty"`
}

// AssignedJob is one job of an assignment: the journaled payload plus
// the job ID completions must echo.
type AssignedJob struct {
	ID      string          `json:"id"`
	Payload json.RawMessage `json:"payload"`
}

// Assignment is one leased unit of work: a solo job or a whole batch
// (dispatched whole, failed member-scoped). The worker must heartbeat
// the lease within TTLMS or the coordinator reassigns the unit.
type Assignment struct {
	Lease string        `json:"lease"`
	TTLMS int64         `json:"ttl_ms"`
	Batch bool          `json:"batch,omitempty"`
	Key   string        `json:"key,omitempty"`
	Jobs  []AssignedJob `json:"jobs"`
}

// PollResponse carries an assignment, or nothing (poll timeout — poll
// again).
type PollResponse struct {
	Assignment *Assignment `json:"assignment,omitempty"`
}

// HeartbeatRequest renews the listed leases for a node.
type HeartbeatRequest struct {
	Node   string   `json:"node"`
	Leases []string `json:"leases"`
}

// HeartbeatResponse: Lost lists lease IDs the coordinator no longer
// recognizes (expired and reassigned — the worker must abandon them
// without completing); Cancelled lists job IDs whose attempt contexts
// were cancelled (DELETE /jobs/id) — the worker should cancel those
// members promptly.
type HeartbeatResponse struct {
	Lost      []string `json:"lost,omitempty"`
	Cancelled []string `json:"cancelled,omitempty"`
}

// JobOutcome is one member's terminal result: proof bytes on success,
// or an (error, code) pair the coordinator rebuilds into the zkerr
// taxonomy so retry classification is identical to local execution.
type JobOutcome struct {
	ID    string          `json:"id"`
	Proof []byte          `json:"proof,omitempty"`
	Stats json.RawMessage `json:"stats,omitempty"`
	Error string          `json:"error,omitempty"`
	Code  string          `json:"code,omitempty"`
}

// CompleteRequest reports a finished assignment.
type CompleteRequest struct {
	Node     string       `json:"node"`
	Lease    string       `json:"lease"`
	Outcomes []JobOutcome `json:"outcomes"`
}

// CompleteResponse acknowledges a completion. Discarded means the lease
// was unknown (expired and reassigned): the coordinator dropped the
// outcomes because the first terminal record wins.
type CompleteResponse struct {
	Discarded bool `json:"discarded,omitempty"`
}

// NodeInfo is one node's health snapshot (GET /cluster/nodes).
type NodeInfo struct {
	Node       string   `json:"node"`
	State      string   `json:"state"`
	Inflight   int      `json:"inflight"`
	Fails      int      `json:"fails"`
	LastSeenMS int64    `json:"last_seen_ms"`
	Warm       []string `json:"warm,omitempty"`
}

// outcomeCode classifies a worker-side attempt error into the wire
// code. Context sentinels get their own codes so the coordinator can
// rebuild errors the jobs manager classifies exactly like local ones.
func outcomeCode(err error) string {
	switch {
	case err == nil:
		return ""
	case isCanceled(err):
		return "canceled"
	case isDeadline(err):
		return "deadline"
	}
	if c := zkerr.Code(err); c != "" {
		return c
	}
	return "internal"
}

func isCanceled(err error) bool { return errors.Is(err, context.Canceled) }
func isDeadline(err error) bool { return errors.Is(err, context.DeadlineExceeded) }

// outcomeError rebuilds a typed error from a wire (error, code) pair so
// the jobs manager's retry/terminal classification of a remote attempt
// matches what the same failure would produce locally.
func outcomeError(msg, code string) error {
	if msg == "" {
		msg = "cluster: worker reported failure"
	}
	switch code {
	case "canceled":
		return fmt.Errorf("%s: %w", msg, context.Canceled)
	case "deadline":
		return fmt.Errorf("%s: %w", msg, context.DeadlineExceeded)
	case "usage":
		return zkerr.Usagef("%s", msg)
	case "malformed-proof":
		return zkerr.Malformedf("%s", msg)
	case "bad-commitment":
		return zkerr.BadCommitmentf("%s", msg)
	case "soundness-check-failed":
		return zkerr.Soundnessf("%s", msg)
	case "resource-limit":
		return zkerr.Resourcef("%s", msg)
	default:
		return zkerr.Internalf("%s", msg)
	}
}

// fullJitter returns a duration uniform in [0, d). Every periodic clock
// in the cluster (heartbeats, probes, retry backoff) is jittered so a
// coordinator restart cannot synchronize the fleet into a reconnect
// stampede (jitter_test.go asserts the spread).
func fullJitter(rng *rand.Rand, d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(int64(d)))
}

// heartbeatInterval draws a fully jittered renewal interval in
// [ttl/6, ttl/3]: several beats fit inside one TTL even if a couple are
// lost, and no two workers beat in phase.
func heartbeatInterval(rng *rand.Rand, ttl time.Duration) time.Duration {
	lo := ttl / 6
	if lo <= 0 {
		lo = time.Millisecond
	}
	return lo + fullJitter(rng, lo)
}

// probeDelay draws the jittered dead→probe re-admission delay:
// base/2 + uniform(0, base/2), so probes spread across half the window.
func probeDelay(rng *rand.Rand, base time.Duration) time.Duration {
	if base <= 0 {
		base = time.Second
	}
	return base/2 + fullJitter(rng, base/2)
}
