package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"nocap/internal/faultinject"
	"nocap/internal/jobs"
)

// ErrLeaseLost marks an attempt whose worker lease expired before a
// completion arrived (node death, partition, hang). It is an alias of
// jobs.ErrLeaseLost: the jobs manager recognizes it in finishAttempt
// and refunds the attempt (journal-backed), exactly like crash replay.
var ErrLeaseLost = jobs.ErrLeaseLost

// Node health states. The state machine doubles as a per-node circuit
// breaker: suspect is half-open (one unit of probation), dead is open
// (no work until a jittered probe).
const (
	nodeHealthy = iota
	nodeSuspect
	nodeDead
)

func stateName(s int) string {
	switch s {
	case nodeHealthy:
		return "healthy"
	case nodeSuspect:
		return "suspect"
	default:
		return "dead"
	}
}

// Config configures a Coordinator. Zero fields take the documented
// defaults.
type Config struct {
	// LeaseTTL is how long a dispatched unit may go without a heartbeat
	// before it is reassigned (default 3s).
	LeaseTTL time.Duration
	// DeadAfter marks a node dead after this much silence (default
	// 3×LeaseTTL).
	DeadAfter time.Duration
	// FailThreshold consecutive lease losses mark a node dead
	// (default 3); a single loss marks it suspect.
	FailThreshold int
	// ProbeBase is the base of the jittered dead→probe re-admission
	// delay (default 5s): actual delay is ProbeBase/2 + U(0, ProbeBase/2).
	ProbeBase time.Duration
	// MaxPollWait caps worker long-polls so Shutdown never waits on a
	// parked handler (default 2s).
	MaxPollWait time.Duration
	// LocalExec/LocalBatch run attempts in-process when no live worker
	// exists and LocalFallback is set. LocalExec is required when
	// LocalFallback is true.
	LocalExec     jobs.Exec
	LocalBatch    jobs.BatchExec
	LocalFallback bool
	// TenantWeight returns a tenant's fair-share weight (<=0 → 1), so
	// cross-node dispatch honours the same DRR weights as local
	// admission.
	TenantWeight func(tenant string) int
	// LocalityKey derives the warm-cache key for a payload (the
	// server's jobBatchKey). Nil disables locality placement.
	LocalityKey func(payload json.RawMessage) (string, bool)
	// Seed seeds lease/probe jitter for deterministic tests (0 →
	// time-based).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 3 * time.Second
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3 * c.LeaseTTL
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ProbeBase <= 0 {
		c.ProbeBase = 5 * time.Second
	}
	if c.MaxPollWait <= 0 {
		c.MaxPollWait = 2 * time.Second
	}
	return c
}

// member is one job inside a unit. ctx is the member's own attempt
// context (nil for coordinator-generated solo members, whose lifetime
// is the Exec call itself).
type member struct {
	id      string
	payload json.RawMessage
	ctx     context.Context
}

// unitResult resolves a unit: outcomes from a worker completion, or a
// unit-scoped transport error (lease lost).
type unitResult struct {
	outcomes []JobOutcome
	err      error
}

// unit is one dispatchable piece of work: a solo job or a whole batch.
type unit struct {
	tenant    string
	key       string
	batch     bool
	members   []member
	cost      int
	res       chan unitResult
	leased    bool
	delivered bool
}

// resolveLocked delivers r exactly once; later resolutions are dropped
// (first terminal record wins).
func (u *unit) resolveLocked(r unitResult) bool {
	if u.delivered {
		return false
	}
	u.delivered = true
	u.res <- r
	return true
}

type lease struct {
	id      string
	unit    *unit
	node    string
	expires time.Time
}

const warmKeyCap = 8

type node struct {
	id       string
	state    int
	fails    int
	inflight int
	lastSeen time.Time
	retryAt  time.Time
	warm     map[string]int64 // locality key → last-touch seq (LRU)
}

func (n *node) touchWarm(key string, seq int64) {
	if key == "" {
		return
	}
	n.warm[key] = seq
	for len(n.warm) > warmKeyCap {
		oldKey, oldSeq := "", int64(1<<62)
		for k, s := range n.warm {
			if s < oldSeq {
				oldKey, oldSeq = k, s
			}
		}
		delete(n.warm, oldKey)
	}
}

type tenantQueue struct {
	units  []*unit
	served float64
}

// Metrics is a point-in-time snapshot of the coordinator's counters.
type Metrics struct {
	Dispatches     int64
	Completions    int64
	Duplicates     int64
	LeaseExpiries  int64
	Heartbeats     int64
	Polls          int64
	LocalFallbacks int64
	QueuedUnits    int
	LiveLeases     int
	Nodes          []NodeInfo
}

// Coordinator owns dispatch: it queues ready units per tenant, leases
// them to polling workers, reaps expired leases, and resolves results
// back into the jobs manager. It is plugged into jobs.Config as
// Exec/BatchExec, so the journal, retries, breaker, and admission stack
// stay exactly where they were.
type Coordinator struct {
	cfg  Config
	mu   sync.Mutex
	rng  *rand.Rand
	seq  int64
	q    map[string]*tenantQueue
	lss  map[string]*lease
	nds  map[string]*node
	wtrs []chan struct{}

	closed bool
	quit   chan struct{}
	done   chan struct{}

	ewmaPollNS float64
	lastPoll   time.Time

	dispatches, completions, duplicates int64
	expiries, heartbeats, polls         int64
	localFallbacks                      int64
}

// New builds a Coordinator and starts its lease reaper.
func New(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	c := &Coordinator{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(seed)),
		q:    make(map[string]*tenantQueue),
		lss:  make(map[string]*lease),
		nds:  make(map[string]*node),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	go c.reap()
	return c
}

// Close stops the reaper and wakes every parked long-poll. In-flight
// Exec calls are unblocked by the jobs manager cancelling their
// contexts, not by Close; call it after jobs.Manager.Close.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.quit)
	c.wakeLocked()
	c.mu.Unlock()
	<-c.done
}

func (c *Coordinator) wakeLocked() {
	for _, ch := range c.wtrs {
		close(ch)
	}
	c.wtrs = nil
}

func (c *Coordinator) weight(tenant string) float64 {
	if c.cfg.TenantWeight != nil {
		if w := c.cfg.TenantWeight(tenant); w > 0 {
			return float64(w)
		}
	}
	return 1
}

// HasLiveWorkers reports whether any node is currently eligible for
// work (not dead, seen within DeadAfter). The server's no_workers shed
// and healthz key on this.
func (c *Coordinator) HasLiveWorkers() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveWorkersLocked() > 0
}

func (c *Coordinator) liveWorkersLocked() int {
	live, now := 0, time.Now()
	for _, n := range c.nds {
		if n.state != nodeDead && now.Sub(n.lastSeen) <= c.cfg.DeadAfter {
			live++
		}
	}
	return live
}

// RetryAfterHint estimates how soon a worker is likely to appear: twice
// the EWMA of poll inter-arrivals, clamped to [1s, 30s]. With no poll
// history it reports 5s.
func (c *Coordinator) RetryAfterHint() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ewmaPollNS <= 0 {
		return 5 * time.Second
	}
	d := time.Duration(2 * c.ewmaPollNS)
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// Metrics snapshots the counters and node table.
func (c *Coordinator) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := Metrics{
		Dispatches:     c.dispatches,
		Completions:    c.completions,
		Duplicates:     c.duplicates,
		LeaseExpiries:  c.expiries,
		Heartbeats:     c.heartbeats,
		Polls:          c.polls,
		LocalFallbacks: c.localFallbacks,
		LiveLeases:     len(c.lss),
	}
	for _, tq := range c.q {
		m.QueuedUnits += len(tq.units)
	}
	now := time.Now()
	for _, n := range c.nds {
		info := NodeInfo{
			Node:       n.id,
			State:      stateName(n.state),
			Inflight:   n.inflight,
			Fails:      n.fails,
			LastSeenMS: now.Sub(n.lastSeen).Milliseconds(),
		}
		for k := range n.warm {
			info.Warm = append(info.Warm, k)
		}
		sort.Strings(info.Warm)
		m.Nodes = append(m.Nodes, info)
	}
	sort.Slice(m.Nodes, func(i, j int) bool { return m.Nodes[i].Node < m.Nodes[j].Node })
	return m
}

// Exec is the jobs.Exec the cluster-mode server installs: it queues the
// spec as a solo unit and blocks until a worker completes it, the lease
// is lost (→ attempt refund upstream), or ctx is cancelled. With zero
// live workers and LocalFallback it proves in-process instead.
func (c *Coordinator) Exec(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
	if c.tryLocalSolo() {
		return c.cfg.LocalExec(ctx, spec)
	}
	c.mu.Lock()
	c.seq++
	u := &unit{
		tenant:  spec.Tenant,
		members: []member{{id: fmt.Sprintf("solo-%d", c.seq), payload: spec.Payload}},
		cost:    1,
		res:     make(chan unitResult, 1),
	}
	if c.cfg.LocalityKey != nil {
		if k, ok := c.cfg.LocalityKey(spec.Payload); ok {
			u.key = k
		}
	}
	c.enqueueLocked(u)
	c.mu.Unlock()

	r, ok := c.await(ctx, u)
	if !ok {
		return jobs.Result{}, ctx.Err()
	}
	if r.err != nil {
		return jobs.Result{}, r.err
	}
	if r.local {
		c.countLocalFallback()
		return c.cfg.LocalExec(ctx, spec)
	}
	if len(r.outcomes) != 1 {
		return jobs.Result{}, fmt.Errorf("cluster: %d outcomes for solo unit: %w", len(r.outcomes), ErrLeaseLost)
	}
	o := r.outcomes[0]
	if o.Error != "" || o.Code != "" {
		return jobs.Result{}, outcomeError(o.Error, o.Code)
	}
	return jobs.Result{Proof: o.Proof, Stats: o.Stats}, nil
}

// BatchExec dispatches a coalesced batch whole to one node; failure is
// member-scoped (each outcome classifies independently, and a lost
// lease refunds every member's attempt).
func (c *Coordinator) BatchExec(ctx context.Context, members []jobs.BatchMember) []jobs.BatchOutcome {
	outs := make([]jobs.BatchOutcome, len(members))
	if c.tryLocalBatch() {
		return c.cfg.LocalBatch(ctx, members)
	}
	c.mu.Lock()
	u := &unit{
		tenant: members[0].Spec.Tenant,
		batch:  true,
		cost:   len(members),
		res:    make(chan unitResult, 1),
	}
	for _, mb := range members {
		u.members = append(u.members, member{id: mb.ID, payload: mb.Spec.Payload, ctx: mb.Ctx})
	}
	if c.cfg.LocalityKey != nil {
		if k, ok := c.cfg.LocalityKey(members[0].Spec.Payload); ok {
			u.key = k
		}
	}
	c.enqueueLocked(u)
	c.mu.Unlock()

	r, ok := c.await(ctx, u)
	if !ok {
		for i := range outs {
			outs[i] = jobs.BatchOutcome{Err: ctx.Err()}
		}
		return outs
	}
	if r.local {
		c.countLocalFallback()
		return c.cfg.LocalBatch(ctx, members)
	}
	if r.err != nil {
		for i := range outs {
			outs[i] = jobs.BatchOutcome{Err: r.err}
		}
		return outs
	}
	byID := make(map[string]JobOutcome, len(r.outcomes))
	for _, o := range r.outcomes {
		byID[o.ID] = o
	}
	for i, mb := range members {
		o, found := byID[mb.ID]
		switch {
		case !found:
			outs[i] = jobs.BatchOutcome{Err: fmt.Errorf("cluster: no outcome for member %s: %w", mb.ID, ErrLeaseLost)}
		case o.Error != "" || o.Code != "":
			outs[i] = jobs.BatchOutcome{Err: outcomeError(o.Error, o.Code)}
		default:
			outs[i] = jobs.BatchOutcome{Result: jobs.Result{Proof: o.Proof, Stats: o.Stats}}
		}
	}
	return outs
}

func (c *Coordinator) tryLocalSolo() bool {
	if !c.cfg.LocalFallback || c.cfg.LocalExec == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.liveWorkersLocked() > 0 {
		return false
	}
	c.localFallbacks++
	return true
}

func (c *Coordinator) tryLocalBatch() bool {
	if !c.cfg.LocalFallback || c.cfg.LocalBatch == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.liveWorkersLocked() > 0 {
		return false
	}
	c.localFallbacks++
	return true
}

func (c *Coordinator) countLocalFallback() {
	c.mu.Lock()
	c.localFallbacks++
	c.mu.Unlock()
}

func (c *Coordinator) enqueueLocked(u *unit) {
	tq := c.q[u.tenant]
	if tq == nil {
		// A new tenant joins at the minimum pass already in play so a
		// late joiner with a zero ledger cannot monopolize dispatch.
		var minPass float64
		first := true
		for t, other := range c.q {
			p := other.served / c.weight(t)
			if first || p < minPass {
				minPass, first = p, false
			}
		}
		tq = &tenantQueue{served: minPass * c.weight(u.tenant)}
		c.q[u.tenant] = tq
	}
	tq.units = append(tq.units, u)
	c.wakeLocked()
}

// awaitResult extends unitResult with the local-fallback escape: the
// unit sat queued with zero live workers, so the caller should prove
// in-process.
type awaitResult struct {
	outcomes []JobOutcome
	err      error
	local    bool
}

// await blocks until the unit resolves, ctx fires, or — when local
// fallback is enabled — the unit has sat queued through a full lease
// TTL with zero live workers (the fleet died after submission).
func (c *Coordinator) await(ctx context.Context, u *unit) (awaitResult, bool) {
	tick := time.NewTicker(c.cfg.LeaseTTL)
	defer tick.Stop()
	for {
		select {
		case r := <-u.res:
			return awaitResult{outcomes: r.outcomes, err: r.err}, true
		case <-ctx.Done():
			c.mu.Lock()
			delivered := u.delivered
			u.delivered = true
			c.mu.Unlock()
			if delivered {
				// Raced with a resolution: take it.
				r := <-u.res
				return awaitResult{outcomes: r.outcomes, err: r.err}, true
			}
			return awaitResult{}, false
		case <-tick.C:
			if c.reclaimForLocal(u) {
				return awaitResult{local: true}, true
			}
		}
	}
}

// reclaimForLocal pulls a still-queued unit back for in-process
// execution when the fleet has died out from under it.
func (c *Coordinator) reclaimForLocal(u *unit) bool {
	if !c.cfg.LocalFallback {
		return false
	}
	if u.batch && c.cfg.LocalBatch == nil {
		return false
	}
	if !u.batch && c.cfg.LocalExec == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if u.delivered || u.leased || c.liveWorkersLocked() > 0 {
		return false
	}
	u.delivered = true
	return true
}

// touchNode fetches or creates the node record and refreshes lastSeen.
func (c *Coordinator) touchNodeLocked(id string) *node {
	n := c.nds[id]
	if n == nil {
		n = &node{id: id, state: nodeHealthy, warm: make(map[string]int64)}
		c.nds[id] = n
	}
	n.lastSeen = time.Now()
	return n
}

// tryAssignLocked hands the polling node its next unit, honouring the
// health gate (dead → at most one probe after retryAt; suspect → one
// unit of probation), stride-scheduled tenant fairness, and locality.
func (c *Coordinator) tryAssignLocked(n *node, warm []string) *Assignment {
	now := time.Now()
	switch n.state {
	case nodeDead:
		if now.Before(n.retryAt) {
			return nil
		}
		// Jittered probe re-admission: the first poll past retryAt gets
		// exactly one unit under probation.
		n.state = nodeSuspect
		n.inflight = 0
	case nodeSuspect:
		if n.inflight >= 1 {
			return nil
		}
	}

	// Stride scheduling across tenants: pick the non-empty tenant with
	// the lowest served/weight pass, so cross-node dispatch honours the
	// same weights as local DRR admission.
	var best string
	bestPass, found := 0.0, false
	for t, tq := range c.q {
		c.pruneLocked(tq)
		if len(tq.units) == 0 {
			continue
		}
		pass := tq.served / c.weight(t)
		if !found || pass < bestPass || (pass == bestPass && t < best) {
			best, bestPass, found = t, pass, true
		}
	}
	if !found {
		return nil
	}
	tq := c.q[best]

	// Locality: prefer a unit whose key is warm on this node (either
	// tracked coordinator-side or reported by the worker); fall back to
	// the queue head.
	warmSet := make(map[string]bool, len(warm)+len(n.warm))
	for _, k := range warm {
		warmSet[k] = true
	}
	for k := range n.warm {
		warmSet[k] = true
	}
	pick := 0
	for i, u := range tq.units {
		if u.key != "" && warmSet[u.key] {
			pick = i
			break
		}
	}
	u := tq.units[pick]
	tq.units = append(tq.units[:pick], tq.units[pick+1:]...)
	tq.served += float64(u.cost)

	c.seq++
	ls := &lease{
		id:      fmt.Sprintf("lease-%d", c.seq),
		unit:    u,
		node:    n.id,
		expires: now.Add(c.cfg.LeaseTTL),
	}
	c.lss[ls.id] = ls
	u.leased = true
	n.inflight++
	n.touchWarm(u.key, c.seq)
	c.dispatches++

	a := &Assignment{
		Lease: ls.id,
		TTLMS: c.cfg.LeaseTTL.Milliseconds(),
		Batch: u.batch,
		Key:   u.key,
	}
	for _, mb := range u.members {
		a.Jobs = append(a.Jobs, AssignedJob{ID: mb.id, Payload: mb.payload})
	}
	return a
}

// pruneLocked drops units whose caller already gave up (delivered by
// ctx cancellation) so they are never dispatched.
func (c *Coordinator) pruneLocked(tq *tenantQueue) {
	kept := tq.units[:0]
	for _, u := range tq.units {
		if !u.delivered {
			kept = append(kept, u)
		}
	}
	tq.units = kept
}

// reap expires stale leases: the unit resolves with ErrLeaseLost (→
// journal-backed attempt refund upstream) and the node pays the breaker
// verdict (suspect, then dead past FailThreshold with a jittered probe
// window). Also marks silent nodes dead.
func (c *Coordinator) reap() {
	defer close(c.done)
	t := time.NewTicker(c.cfg.LeaseTTL / 4)
	defer t.Stop()
	for {
		select {
		case <-c.quit:
			return
		case <-t.C:
		}
		c.mu.Lock()
		now := time.Now()
		for id, ls := range c.lss {
			forced := faultinject.Check(FILeaseExpire) != nil
			if !forced && now.Before(ls.expires) {
				continue
			}
			delete(c.lss, id)
			c.expiries++
			if n := c.nds[ls.node]; n != nil {
				if n.inflight > 0 {
					n.inflight--
				}
				n.fails++
				if n.fails >= c.cfg.FailThreshold {
					n.state = nodeDead
					n.retryAt = now.Add(probeDelay(c.rng, c.cfg.ProbeBase))
				} else if n.state == nodeHealthy {
					n.state = nodeSuspect
				}
			}
			ls.unit.resolveLocked(unitResult{err: fmt.Errorf("cluster: lease %s on node %s expired: %w", id, ls.node, ErrLeaseLost)})
		}
		for _, n := range c.nds {
			if n.state != nodeDead && now.Sub(n.lastSeen) > c.cfg.DeadAfter {
				n.state = nodeDead
				n.fails = 0
				n.retryAt = now.Add(probeDelay(c.rng, c.cfg.ProbeBase))
			}
		}
		c.mu.Unlock()
	}
}

// ---- HTTP handlers -------------------------------------------------

// HandlePoll serves POST /cluster/poll: long-poll for an assignment.
func (c *Coordinator) HandlePoll(w http.ResponseWriter, r *http.Request) {
	if err := faultinject.Check(FIRPCRecv); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var req PollRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Node == "" {
		http.Error(w, "cluster: bad poll request", http.StatusBadRequest)
		return
	}
	wait := c.cfg.MaxPollWait
	if req.WaitMS > 0 {
		if d := time.Duration(req.WaitMS) * time.Millisecond; d < wait {
			wait = d
		}
	}
	deadline := time.Now().Add(wait)
	c.mu.Lock()
	now := time.Now()
	c.polls++
	if !c.lastPoll.IsZero() {
		gap := float64(now.Sub(c.lastPoll))
		if c.ewmaPollNS == 0 {
			c.ewmaPollNS = gap
		} else {
			c.ewmaPollNS = 0.3*gap + 0.7*c.ewmaPollNS
		}
	}
	c.lastPoll = now
	c.mu.Unlock()
	for {
		c.mu.Lock()
		n := c.touchNodeLocked(req.Node)
		if c.closed {
			c.mu.Unlock()
			writeJSON(w, PollResponse{})
			return
		}
		if a := c.tryAssignLocked(n, req.Warm); a != nil {
			c.mu.Unlock()
			writeJSON(w, PollResponse{Assignment: a})
			return
		}
		ch := make(chan struct{})
		c.wtrs = append(c.wtrs, ch)
		c.mu.Unlock()

		remain := time.Until(deadline)
		if remain <= 0 {
			writeJSON(w, PollResponse{})
			return
		}
		timer := time.NewTimer(remain)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
			writeJSON(w, PollResponse{})
			return
		case <-c.quit:
			timer.Stop()
			writeJSON(w, PollResponse{})
			return
		case <-r.Context().Done():
			timer.Stop()
			return
		}
	}
}

// HandleHeartbeat serves POST /cluster/heartbeat: renew leases, learn
// which are lost, and pick up member cancellations.
func (c *Coordinator) HandleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if err := faultinject.Check(FIRPCRecv); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Node == "" {
		http.Error(w, "cluster: bad heartbeat request", http.StatusBadRequest)
		return
	}
	var resp HeartbeatResponse
	c.mu.Lock()
	c.heartbeats++
	c.touchNodeLocked(req.Node)
	now := time.Now()
	for _, id := range req.Leases {
		ls := c.lss[id]
		if ls == nil || ls.node != req.Node {
			resp.Lost = append(resp.Lost, id)
			continue
		}
		ls.expires = now.Add(c.cfg.LeaseTTL)
		for _, mb := range ls.unit.members {
			if mb.ctx != nil && mb.ctx.Err() != nil {
				resp.Cancelled = append(resp.Cancelled, mb.id)
			}
		}
		if ls.unit.delivered && !ls.unit.batch {
			// Solo caller gave up (job cancelled): tell the worker.
			resp.Cancelled = append(resp.Cancelled, ls.unit.members[0].id)
		}
	}
	c.mu.Unlock()
	writeJSON(w, resp)
}

// HandleComplete serves POST /cluster/complete: deliver outcomes for a
// lease. An unknown lease means the reaper already reassigned the unit;
// the completion is discarded (first terminal record wins) and counted.
func (c *Coordinator) HandleComplete(w http.ResponseWriter, r *http.Request) {
	if err := faultinject.Check(FIRPCRecv); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var req CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Lease == "" {
		http.Error(w, "cluster: bad complete request", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	c.touchNodeLocked(req.Node)
	ls := c.lss[req.Lease]
	if ls == nil {
		c.duplicates++
		c.mu.Unlock()
		writeJSON(w, CompleteResponse{Discarded: true})
		return
	}
	delete(c.lss, req.Lease)
	c.completions++
	if n := c.nds[ls.node]; n != nil {
		if n.inflight > 0 {
			n.inflight--
		}
		n.fails = 0
		n.state = nodeHealthy
		c.seq++
		n.touchWarm(ls.unit.key, c.seq)
	}
	ls.unit.resolveLocked(unitResult{outcomes: req.Outcomes})
	c.wakeLocked() // a slot freed up; re-check queues
	c.mu.Unlock()
	writeJSON(w, CompleteResponse{})
}

// HandleNodes serves GET /cluster/nodes: the health table.
func (c *Coordinator) HandleNodes(w http.ResponseWriter, r *http.Request) {
	m := c.Metrics()
	writeJSON(w, m.Nodes)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	// An encode failure here is a dropped connection; the worker's RPC
	// retry/lease machinery owns recovery.
	_ = json.NewEncoder(w).Encode(v)
}
