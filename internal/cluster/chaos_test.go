package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"sync/atomic"
	"testing"
	"time"

	"nocap/internal/faultinject"
	"nocap/internal/jobs"
	"nocap/internal/leakcheck"
)

// The chaos matrix (ISSUE: node-death chaos gates). Each cell kills a
// worker at a different point of the attempt lifecycle and asserts the
// full recovery contract through a real jobs.Manager wired to the
// coordinator: exactly one terminal state, the attempt refunded (the
// kill does not consume retry budget), member-scoped batch failure,
// byte-identical proofs after reassignment, and zero goroutine leaks.
// The in-process analogue of SIGKILL is Worker.Kill(): the worker
// instantly stops polling, heartbeating, and completing, exactly like a
// dead process; the subprocess SIGKILL variant lives in
// internal/server's e2e test.

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func newChaosManager(t *testing.T, h *harness, batch bool) *jobs.Manager {
	t.Helper()
	cfg := jobs.Config{
		Dir:         t.TempDir(),
		Exec:        h.coord.Exec,
		Workers:     4,
		MaxAttempts: 2, // tight budget: a non-refunded kill would exhaust it
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Seed:        1,
		Logf:        t.Logf,
	}
	if batch {
		cfg.BatchKey = func(jobs.Spec) (string, bool) { return "k", true }
		cfg.BatchExec = h.coord.BatchExec
		cfg.BatchWindow = 100 * time.Millisecond
		cfg.BatchMax = 3
	}
	m, err := jobs.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func closeManager(t *testing.T, m *jobs.Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Errorf("manager close: %v", err)
	}
}

// TestChaosKillMidProof: the worker dies while proving a solo job. The
// lease expires, the attempt is refunded, a healthy node re-proves, and
// the final proof is byte-identical to an undisturbed run.
func TestChaosKillMidProof(t *testing.T) {
	snap := leakcheck.Take()
	h := newHarness(t, Config{LeaseTTL: 200 * time.Millisecond, FailThreshold: 1})
	mgr := newChaosManager(t, h, false)

	started := make(chan struct{}, 1)
	var victim *Worker
	dieMidProof := func(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
		started <- struct{}{}
		victim.Kill()
		<-ctx.Done()
		return jobs.Result{}, ctx.Err()
	}
	victim = newTestWorker(t, h, "victim", dieMidProof, nil)
	victim.Start()

	payload := json.RawMessage(`{"job":"mid-proof"}`)
	id, err := mgr.Submit(jobs.Spec{Payload: payload, Tenant: "t0"})
	if err != nil {
		t.Fatal(err)
	}
	<-started // victim is mid-proof and now dead

	survivor := newTestWorker(t, h, "survivor", echoExec, nil)
	survivor.Start()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	info, err := mgr.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != jobs.StateDone {
		t.Fatalf("state = %s (err %q), want done", info.State, info.Error)
	}
	// Exactly one terminal state and a refunded attempt: the kill cost
	// zero budget, so the surviving attempt is attempt 1 of 2.
	if info.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (lease loss must refund, not consume)", info.Attempts)
	}
	jm := mgr.Metrics()
	if jm.LeaseReassigns != 1 {
		t.Fatalf("lease reassigns = %d, want 1", jm.LeaseReassigns)
	}
	if jm.Done != 1 || jm.Failed != 0 {
		t.Fatalf("done=%d failed=%d, want 1/0", jm.Done, jm.Failed)
	}
	// Byte-identical to an undisturbed local run of the same spec.
	want, _ := echoExec(context.Background(), jobs.Spec{Payload: payload})
	got, err := mgr.Proof(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Proof) {
		t.Fatalf("proof after reassignment = %q, want %q", got, want.Proof)
	}
	cm := h.coord.Metrics()
	if cm.LeaseExpiries != 1 {
		t.Fatalf("coordinator lease expiries = %d, want 1", cm.LeaseExpiries)
	}
	for _, n := range cm.Nodes {
		if n.Node == "victim" && n.State != "dead" {
			t.Fatalf("victim state = %s, want dead", n.State)
		}
	}

	closeManager(t, mgr)
	stopWorker(t, survivor)
	h.close()
	snap.Check(t)
}

// TestChaosKillMidBatch: the worker dies while proving a coalesced
// batch. Every member is refunded member-scoped (no member's budget is
// consumed, none is failed wholesale) and a healthy node finishes all
// of them.
func TestChaosKillMidBatch(t *testing.T) {
	snap := leakcheck.Take()
	h := newHarness(t, Config{LeaseTTL: 200 * time.Millisecond, FailThreshold: 1})
	mgr := newChaosManager(t, h, true)

	started := make(chan int, 1)
	var victim *Worker
	dieMidBatch := func(ctx context.Context, members []jobs.BatchMember) []jobs.BatchOutcome {
		started <- len(members)
		victim.Kill()
		<-ctx.Done()
		outs := make([]jobs.BatchOutcome, len(members))
		for i := range outs {
			outs[i] = jobs.BatchOutcome{Err: ctx.Err()}
		}
		return outs
	}
	victim = newTestWorker(t, h, "victim", echoExec, dieMidBatch)
	victim.Start()

	ids := make([]string, 3)
	payloads := make([]json.RawMessage, 3)
	for i := range ids {
		payloads[i], _ = json.Marshal(map[string]int{"member": i})
		id, err := mgr.Submit(jobs.Spec{Payload: payloads[i], Tenant: "t0"})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	if n := <-started; n != 3 {
		t.Fatalf("batch reached victim with %d members, want 3", n)
	}

	survivor := newTestWorker(t, h, "survivor", echoExec, echoBatch)
	survivor.Start()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	for i, id := range ids {
		info, err := mgr.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State != jobs.StateDone {
			t.Fatalf("member %d state = %s (err %q), want done", i, info.State, info.Error)
		}
		if info.Attempts != 1 {
			t.Fatalf("member %d attempts = %d, want 1 (member-scoped refund)", i, info.Attempts)
		}
		want, _ := echoExec(context.Background(), jobs.Spec{Payload: payloads[i]})
		got, err := mgr.Proof(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Proof) {
			t.Fatalf("member %d proof = %q, want %q", i, got, want.Proof)
		}
	}
	jm := mgr.Metrics()
	if jm.LeaseReassigns != 3 {
		t.Fatalf("lease reassigns = %d, want 3 (one refund per batch member)", jm.LeaseReassigns)
	}
	if jm.Failed != 0 {
		t.Fatalf("failed = %d, want 0", jm.Failed)
	}

	closeManager(t, mgr)
	stopWorker(t, survivor)
	h.close()
	snap.Check(t)
}

// TestChaosKillMidResultUpload: the node finishes the proof but dies
// before the completion lands — modeled by suppressing its heartbeats
// (cluster.heartbeat.miss) so the lease expires while it is still
// proving, then letting its stale completion arrive. The contract:
// first terminal record wins, the stale upload is discarded and
// counted, the refunded attempt re-proves, and the job still ends with
// exactly one done state and the right proof bytes.
func TestChaosKillMidResultUpload(t *testing.T) {
	snap := leakcheck.Take()
	defer faultinject.Disarm()
	h := newHarness(t, Config{LeaseTTL: 200 * time.Millisecond})
	mgr := newChaosManager(t, h, false)

	// Suppress every heartbeat from the start: the worker holds the
	// lease silently, like a node whose network died after poll.
	faultinject.MustArm(faultinject.Plan{Point: FIHeartbeatMiss, Kind: faultinject.Error, Count: 1 << 30})

	var calls atomic.Int64
	payload := json.RawMessage(`{"job":"mid-upload"}`)
	slowThenFast := func(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
		if calls.Add(1) == 1 {
			// Outlive the lease WITHOUT observing cancellation: the
			// worker believes it is still the owner and uploads late.
			time.Sleep(600 * time.Millisecond)
		}
		return echoExec(ctx, spec)
	}
	w := newTestWorker(t, h, "node-a", slowThenFast, nil)
	w.Start()

	id, err := mgr.Submit(jobs.Spec{Payload: payload, Tenant: "t0"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	info, err := mgr.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != jobs.StateDone {
		t.Fatalf("state = %s (err %q), want done", info.State, info.Error)
	}
	if info.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (expired lease refunds)", info.Attempts)
	}
	if !faultinject.Fired() {
		t.Fatal("heartbeat.miss plan never fired — the cell is vacuous")
	}
	// The stale upload from the first attempt must be discarded (it may
	// land after Wait returns; poll for it).
	waitFor(t, "duplicate completion to be discarded", func() bool {
		return h.coord.Metrics().Duplicates >= 1
	})
	jm := mgr.Metrics()
	if jm.LeaseReassigns < 1 {
		t.Fatalf("lease reassigns = %d, want >= 1", jm.LeaseReassigns)
	}
	if jm.Done != 1 {
		t.Fatalf("done = %d, want exactly 1 terminal state", jm.Done)
	}
	want, _ := echoExec(context.Background(), jobs.Spec{Payload: payload})
	got, err := mgr.Proof(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Proof) {
		t.Fatalf("proof = %q, want %q", got, want.Proof)
	}

	faultinject.Disarm()
	closeManager(t, mgr)
	stopWorker(t, w)
	h.close()
	snap.Check(t)
}

// TestChaosRPCFaultPoints: coordinator-side receive faults and
// worker-side send faults are absorbed by retry/backoff — an armed
// one-shot fault on each RPC plane point must not surface to the
// submitting client.
func TestChaosRPCFaultPoints(t *testing.T) {
	snap := leakcheck.Take()
	defer faultinject.Disarm()
	for _, point := range []string{FIRPCSend, FIRPCRecv} {
		t.Run(point, func(t *testing.T) {
			h := newHarness(t, Config{LeaseTTL: 500 * time.Millisecond})
			mgr := newChaosManager(t, h, false)
			faultinject.MustArm(faultinject.Plan{Point: point, Kind: faultinject.Error})

			w := newTestWorker(t, h, "node-a", echoExec, nil)
			w.Start()
			id, err := mgr.Submit(jobs.Spec{Payload: json.RawMessage(`1`), Tenant: "t0"})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			info, err := mgr.Wait(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			if info.State != jobs.StateDone {
				t.Fatalf("state = %s (err %q), want done despite %s fault", info.State, info.Error, point)
			}
			if !faultinject.Fired() {
				t.Fatalf("%s plan never fired — the cell is vacuous", point)
			}
			faultinject.Disarm()
			closeManager(t, mgr)
			stopWorker(t, w)
			h.close()
		})
	}
	snap.Check(t)
}

// TestChaosForcedLeaseExpiry: cluster.lease.expire forces the reaper to
// expire a healthy lease; the attempt refunds and the job still
// completes.
func TestChaosForcedLeaseExpiry(t *testing.T) {
	snap := leakcheck.Take()
	defer faultinject.Disarm()
	h := newHarness(t, Config{LeaseTTL: 500 * time.Millisecond})
	mgr := newChaosManager(t, h, false)

	var calls atomic.Int64
	exec := func(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
		if calls.Add(1) == 1 {
			// Park long enough for a forced-expiry reaper tick.
			select {
			case <-ctx.Done():
				return jobs.Result{}, ctx.Err()
			case <-time.After(2 * time.Second):
			}
		}
		return echoExec(ctx, spec)
	}
	w := newTestWorker(t, h, "node-a", exec, nil)
	w.Start()

	faultinject.MustArm(faultinject.Plan{Point: FILeaseExpire, Kind: faultinject.Error})
	id, err := mgr.Submit(jobs.Spec{Payload: json.RawMessage(`1`), Tenant: "t0"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	info, err := mgr.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != jobs.StateDone {
		t.Fatalf("state = %s (err %q), want done", info.State, info.Error)
	}
	if info.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", info.Attempts)
	}
	if !faultinject.Fired() {
		t.Fatal("lease.expire plan never fired")
	}
	if h.coord.Metrics().LeaseExpiries < 1 {
		t.Fatal("no lease expiry recorded")
	}

	faultinject.Disarm()
	closeManager(t, mgr)
	stopWorker(t, w)
	h.close()
	snap.Check(t)
}
