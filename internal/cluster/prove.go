package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"nocap"
	"nocap/internal/jobs"
	"nocap/internal/zkerr"
)

// provePayload mirrors the server's ProveRequest wire shape: the
// coordinator dispatches journaled payloads verbatim, so a worker node
// decodes exactly what POST /jobs accepted.
type provePayload struct {
	Circuit   string `json:"circuit"`
	N         int    `json:"n"`
	Reps      int    `json:"reps,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// ProverConfig configures a worker node's real prover.
type ProverConfig struct {
	// Params is the node's base proving configuration; per-payload reps
	// override Params.Reps, and PCS geometry is fitted per circuit the
	// way the server's buildFor does.
	Params nocap.Params
	// MaxN bounds accepted circuit sizes (default 1<<20).
	MaxN int
	// Timeout bounds one attempt; a payload's timeout_ms shortens it
	// (default 60s).
	Timeout time.Duration
}

// Prover executes journaled prove payloads on a worker node with the
// same validation and deadline semantics as the coordinator's local
// path, so a proof is byte-identical no matter which node ran it.
type Prover struct {
	cfg ProverConfig
}

// NewProver builds a Prover.
func NewProver(cfg ProverConfig) *Prover {
	if cfg.MaxN <= 0 {
		cfg.MaxN = 1 << 20
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	return &Prover{cfg: cfg}
}

// setup validates the payload and returns the fitted params, benchmark,
// and attempt deadline.
func (p *Prover) setup(payload json.RawMessage) (nocap.Params, *nocap.Benchmark, time.Duration, error) {
	var req provePayload
	if err := json.Unmarshal(payload, &req); err != nil {
		return nocap.Params{}, nil, 0, zkerr.Usagef("cluster: decode payload: %v", err)
	}
	if req.N > p.cfg.MaxN {
		return nocap.Params{}, nil, 0, zkerr.Resourcef("cluster: n=%d exceeds worker max %d", req.N, p.cfg.MaxN)
	}
	reps := req.Reps
	if reps == 0 {
		reps = 1
	}
	if reps < 1 || reps > 64 {
		return nocap.Params{}, nil, 0, zkerr.Usagef("cluster: reps must be in [1,64], got %d", reps)
	}
	params := p.cfg.Params
	params.Reps = reps
	bm, err := nocap.CircuitByName(req.Circuit, req.N)
	if err != nil {
		return nocap.Params{}, nil, 0, err
	}
	if half := bm.Inst.NumVars() / 2; params.PCS.Rows > half {
		params.PCS.Rows = half
	}
	timeout := p.cfg.Timeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	return params, bm, timeout, nil
}

// Exec is the jobs.Exec a worker node runs for solo assignments.
func (p *Prover) Exec(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
	params, bm, timeout, err := p.setup(spec.Payload)
	if err != nil {
		return jobs.Result{}, err
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	proof, err := nocap.ProveCtx(ctx, params, bm.Inst, bm.IO, bm.Witness)
	if err != nil {
		return jobs.Result{}, err
	}
	data, err := nocap.MarshalProof(proof)
	if err != nil {
		return jobs.Result{}, err
	}
	return jobs.Result{Proof: data}, nil
}

// BatchExec proves a whole assignment through one shared-structure plan
// (DESIGN.md §15): batch-mates share (circuit, n, reps) by
// construction, so synthesis, z assembly, SpMV, digest, and the warmed
// PCS geometry are paid once. Each member keeps its own context and
// deadline; plan construction failure fails every member (they would
// all have failed the same way solo).
func (p *Prover) BatchExec(ctx context.Context, members []jobs.BatchMember) []jobs.BatchOutcome {
	outs := make([]jobs.BatchOutcome, len(members))
	fail := func(err error) []jobs.BatchOutcome {
		for i := range outs {
			outs[i] = jobs.BatchOutcome{Err: err}
		}
		return outs
	}
	if len(members) == 0 {
		return outs
	}
	params, bm, timeout, err := p.setup(members[0].Spec.Payload)
	if err != nil {
		return fail(err)
	}
	plan, err := nocap.NewBatchPlanForCtx(ctx, params, bm)
	if err != nil {
		return fail(fmt.Errorf("cluster: batch plan: %w", err))
	}
	for i, mb := range members {
		mctx := mb.Ctx
		if mctx == nil {
			mctx = ctx
		}
		if mctx.Err() != nil {
			outs[i] = jobs.BatchOutcome{Err: mctx.Err()}
			continue
		}
		runCtx, cancel := context.WithTimeout(mctx, timeout)
		proof, err := plan.ProveMemberCtx(runCtx)
		cancel()
		if err != nil {
			outs[i] = jobs.BatchOutcome{Err: err}
			continue
		}
		data, err := nocap.MarshalProof(proof)
		if err != nil {
			outs[i] = jobs.BatchOutcome{Err: err}
			continue
		}
		outs[i] = jobs.BatchOutcome{Result: jobs.Result{Proof: data}}
	}
	return outs
}
