package cluster

import (
	"math/rand"
	"testing"
	"time"
)

// distinctFraction draws n samples and reports how many land in each
// third of [lo, hi) plus the count of distinct values — a cheap spread
// regression that catches a future edit replacing full jitter with a
// fixed interval (which would synchronize the fleet into heartbeat and
// probe stampedes).
func spreadStats(t *testing.T, name string, n int, lo, hi time.Duration, draw func() time.Duration) {
	t.Helper()
	thirds := [3]int{}
	seen := make(map[time.Duration]struct{}, n)
	width := hi - lo
	for i := 0; i < n; i++ {
		d := draw()
		if d < lo || d >= hi {
			t.Fatalf("%s: draw %v outside [%v, %v)", name, d, lo, hi)
		}
		seen[d] = struct{}{}
		idx := int(3 * (d - lo) / width)
		if idx > 2 {
			idx = 2
		}
		thirds[idx]++
	}
	// With nanosecond-granularity uniform draws, collisions are
	// essentially impossible; demand near-total distinctness.
	if len(seen) < n*9/10 {
		t.Errorf("%s: only %d/%d distinct draws — jitter has collapsed", name, len(seen), n)
	}
	// Uniform across the window: each third holds n/3 in expectation;
	// demand at least half of that so skewed-but-random still passes.
	for i, c := range thirds {
		if c < n/6 {
			t.Errorf("%s: third %d holds %d/%d draws — distribution collapsed (%v)", name, i, c, n, thirds)
		}
	}
}

func TestHeartbeatIntervalJitterSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const ttl = 3 * time.Second
	spreadStats(t, "heartbeatInterval", 500, ttl/6, ttl/3, func() time.Duration {
		return heartbeatInterval(rng, ttl)
	})
}

func TestProbeDelayJitterSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const base = 5 * time.Second
	spreadStats(t, "probeDelay", 500, base/2, base, func() time.Duration {
		return probeDelay(rng, base)
	})
}

func TestFullJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	if got := fullJitter(rng, 0); got != 0 {
		t.Fatalf("fullJitter(0) = %v, want 0", got)
	}
	if got := fullJitter(rng, -time.Second); got != 0 {
		t.Fatalf("fullJitter(<0) = %v, want 0", got)
	}
	spreadStats(t, "fullJitter", 500, 0, time.Second, func() time.Duration {
		return fullJitter(rng, time.Second)
	})
}

// TestHeartbeatIntervalFitsTTL: however the jitter lands, at least
// three renewal opportunities must fit inside one TTL, or a single
// dropped beat could expire a healthy lease.
func TestHeartbeatIntervalFitsTTL(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, ttl := range []time.Duration{100 * time.Millisecond, 3 * time.Second, time.Minute} {
		for i := 0; i < 200; i++ {
			if got := heartbeatInterval(rng, ttl); got > ttl/3 {
				t.Fatalf("heartbeatInterval(ttl=%v) = %v > ttl/3", ttl, got)
			}
		}
	}
}
