package cluster

import (
	"slices"
	"testing"

	"nocap/internal/faultinject"
)

// TestClusterFaultPointsRegistered pins the cluster's injection-point
// coverage: every point the chaos matrix arms must be registered (an
// unregistered point makes its cells vacuous), and every point must be
// armable through the public faultinject API.
func TestClusterFaultPointsRegistered(t *testing.T) {
	want := []string{
		FIRPCSend,
		FIRPCRecv,
		FIHeartbeatMiss,
		FIWorkerExec,
		FILeaseExpire,
	}
	wantNames := []string{
		"cluster.rpc.send",
		"cluster.rpc.recv",
		"cluster.heartbeat.miss",
		"cluster.worker.exec",
		"cluster.lease.expire",
	}
	for i, p := range want {
		if p != wantNames[i] {
			t.Errorf("point %d = %q, want %q (renaming breaks armed chaos plans)", i, p, wantNames[i])
		}
	}
	all := faultinject.Points()
	for _, p := range want {
		if !slices.Contains(all, p) {
			t.Errorf("point %q missing from faultinject.Points() = %v", p, all)
		}
		if !faultinject.Registered(p) {
			t.Errorf("point %q not Registered", p)
		}
		if err := faultinject.Arm(faultinject.Plan{Point: p, Kind: faultinject.Error}); err != nil {
			t.Errorf("Arm(%q): %v", p, err)
		}
		faultinject.Disarm()
	}
}

// TestClusterFaultPointsFire drives each worker/coordinator-side point
// through an actual Check call so a point that exists but is never
// reached by any call site fails here instead of passing vacuously in
// the matrix.
func TestClusterFaultPointsFire(t *testing.T) {
	for _, p := range []string{FIRPCSend, FIRPCRecv, FIHeartbeatMiss, FIWorkerExec, FILeaseExpire} {
		faultinject.MustArm(faultinject.Plan{Point: p, Kind: faultinject.Error})
		if err := faultinject.Check(p); err == nil {
			t.Errorf("Check(%q) with armed Error plan returned nil", p)
		}
		if !faultinject.Fired() {
			t.Errorf("plan at %q did not report Fired", p)
		}
		faultinject.Disarm()
	}
}
