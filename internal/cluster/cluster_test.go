package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nocap/internal/jobs"
	"nocap/internal/leakcheck"
)

// harness runs a coordinator behind a real unencrypted-HTTP/2 server,
// exactly as the cluster runs in production (not httptest, which would
// pin the worker plane to HTTP/1.1).
type harness struct {
	t     *testing.T
	coord *Coordinator
	url   string
	srv   *http.Server
	done  chan struct{}
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	c := New(cfg)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/poll", c.HandlePoll)
	mux.HandleFunc("POST /cluster/heartbeat", c.HandleHeartbeat)
	mux.HandleFunc("POST /cluster/complete", c.HandleComplete)
	mux.HandleFunc("GET /cluster/nodes", c.HandleNodes)
	protos := new(http.Protocols)
	protos.SetHTTP1(true)
	protos.SetUnencryptedHTTP2(true)
	srv := &http.Server{Handler: mux, Protocols: protos}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, coord: c, url: "http://" + ln.Addr().String(), srv: srv, done: make(chan struct{})}
	go func() {
		defer close(h.done)
		_ = srv.Serve(ln)
	}()
	return h
}

func (h *harness) close() {
	h.t.Helper()
	h.coord.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h.srv.Shutdown(ctx); err != nil {
		h.t.Errorf("server shutdown: %v", err)
	}
	<-h.done
}

// echoExec is a stub prover: the proof is a function of the payload, so
// tests can assert byte-identical results across reassignment.
func echoExec(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
	return jobs.Result{Proof: append([]byte("proof:"), spec.Payload...)}, nil
}

func echoBatch(ctx context.Context, members []jobs.BatchMember) []jobs.BatchOutcome {
	outs := make([]jobs.BatchOutcome, len(members))
	for i, mb := range members {
		if mb.Ctx != nil && mb.Ctx.Err() != nil {
			outs[i] = jobs.BatchOutcome{Err: mb.Ctx.Err()}
			continue
		}
		outs[i] = jobs.BatchOutcome{Result: jobs.Result{Proof: append([]byte("proof:"), mb.Spec.Payload...)}}
	}
	return outs
}

func newTestWorker(t *testing.T, h *harness, id string, exec jobs.Exec, batch jobs.BatchExec) *Worker {
	t.Helper()
	w, err := NewWorker(WorkerConfig{
		Coordinator: h.url,
		ID:          id,
		Slots:       2,
		PollWait:    200 * time.Millisecond,
		RetryBase:   5 * time.Millisecond,
		Exec:        exec,
		BatchExec:   batch,
		Seed:        42,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func stopWorker(t *testing.T, w *Worker) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := w.Stop(ctx); err != nil {
		t.Errorf("worker stop: %v", err)
	}
}

func TestClusterSoloRoundtrip(t *testing.T) {
	snap := leakcheck.Take()
	h := newHarness(t, Config{LeaseTTL: 500 * time.Millisecond})
	w := newTestWorker(t, h, "node-a", echoExec, nil)
	w.Start()

	res, err := h.coord.Exec(context.Background(), jobs.Spec{Payload: json.RawMessage(`{"x":1}`), Tenant: "t0"})
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if got, want := string(res.Proof), `proof:{"x":1}`; got != want {
		t.Fatalf("proof = %q, want %q", got, want)
	}
	m := h.coord.Metrics()
	if m.Dispatches != 1 || m.Completions != 1 {
		t.Fatalf("dispatches=%d completions=%d, want 1/1", m.Dispatches, m.Completions)
	}
	if len(m.Nodes) != 1 || m.Nodes[0].State != "healthy" {
		t.Fatalf("nodes = %+v, want one healthy node", m.Nodes)
	}

	stopWorker(t, w)
	h.close()
	snap.Check(t)
}

func TestClusterBatchRoundtripMemberScoped(t *testing.T) {
	snap := leakcheck.Take()
	h := newHarness(t, Config{LeaseTTL: 500 * time.Millisecond})
	// A batch executor that fails exactly one member: failure must stay
	// member-scoped.
	batch := func(ctx context.Context, members []jobs.BatchMember) []jobs.BatchOutcome {
		outs := echoBatch(ctx, members)
		for i, mb := range members {
			if string(mb.Spec.Payload) == `"poison"` {
				outs[i] = jobs.BatchOutcome{Err: errors.New("poisoned member")}
			}
		}
		return outs
	}
	w := newTestWorker(t, h, "node-a", echoExec, batch)
	w.Start()

	members := []jobs.BatchMember{
		{ID: "j1", Spec: jobs.Spec{Payload: json.RawMessage(`"a"`), Tenant: "t0"}, Ctx: context.Background()},
		{ID: "j2", Spec: jobs.Spec{Payload: json.RawMessage(`"poison"`), Tenant: "t0"}, Ctx: context.Background()},
		{ID: "j3", Spec: jobs.Spec{Payload: json.RawMessage(`"c"`), Tenant: "t0"}, Ctx: context.Background()},
	}
	outs := h.coord.BatchExec(context.Background(), members)
	if len(outs) != 3 {
		t.Fatalf("got %d outcomes, want 3", len(outs))
	}
	if outs[0].Err != nil || string(outs[0].Result.Proof) != `proof:"a"` {
		t.Fatalf("member 0: %+v", outs[0])
	}
	if outs[1].Err == nil {
		t.Fatalf("member 1 should have failed")
	}
	if outs[2].Err != nil || string(outs[2].Result.Proof) != `proof:"c"` {
		t.Fatalf("member 2: %+v", outs[2])
	}

	stopWorker(t, w)
	h.close()
	snap.Check(t)
}

// TestClusterLeaseExpiryResolvesLeaseLost: a worker that takes the
// assignment and then goes silent (killed mid-proof) must not strand
// the unit — the reaper expires the lease and Exec returns ErrLeaseLost
// for the jobs layer to refund.
func TestClusterLeaseExpiryResolvesLeaseLost(t *testing.T) {
	snap := leakcheck.Take()
	h := newHarness(t, Config{LeaseTTL: 200 * time.Millisecond, FailThreshold: 1})
	started := make(chan struct{}, 1)
	var w *Worker
	hang := func(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
		started <- struct{}{}
		w.Kill() // node dies mid-proof: no heartbeat, no completion
		<-ctx.Done()
		return jobs.Result{}, ctx.Err()
	}
	w = newTestWorker(t, h, "node-a", hang, nil)
	w.Start()

	_, err := h.coord.Exec(context.Background(), jobs.Spec{Payload: json.RawMessage(`1`), Tenant: "t0"})
	if !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("Exec err = %v, want ErrLeaseLost", err)
	}
	<-started
	m := h.coord.Metrics()
	if m.LeaseExpiries == 0 {
		t.Fatalf("lease expiries = 0, want > 0")
	}
	if len(m.Nodes) != 1 || m.Nodes[0].State != "dead" {
		t.Fatalf("node state = %+v, want dead (FailThreshold=1)", m.Nodes)
	}

	h.close()
	snap.Check(t)
}

// TestClusterDuplicateCompletionDiscarded: a completion for an expired
// lease must be dropped (first terminal record wins) and counted.
func TestClusterDuplicateCompletionDiscarded(t *testing.T) {
	snap := leakcheck.Take()
	h := newHarness(t, Config{LeaseTTL: 60 * time.Second})
	defer func() {
		h.close()
		snap.Check(t)
	}()

	// Drive the RPCs by hand: poll out a lease, expire it manually,
	// then complete it.
	w := newTestWorker(t, h, "node-a", echoExec, nil)

	resCh := make(chan error, 1)
	go func() {
		_, err := h.coord.Exec(context.Background(), jobs.Spec{Payload: json.RawMessage(`1`), Tenant: "t0"})
		resCh <- err
	}()

	var pr PollResponse
	deadline := time.Now().Add(5 * time.Second)
	for pr.Assignment == nil {
		if time.Now().After(deadline) {
			t.Fatal("never received an assignment")
		}
		if err := w.rpc(context.Background(), "/cluster/poll", PollRequest{Node: "node-a", WaitMS: 500}, &pr); err != nil {
			t.Fatal(err)
		}
	}

	// Force-expire the lease the way the reaper would.
	h.coord.mu.Lock()
	ls := h.coord.lss[pr.Assignment.Lease]
	if ls == nil {
		h.coord.mu.Unlock()
		t.Fatal("lease not found")
	}
	delete(h.coord.lss, pr.Assignment.Lease)
	h.coord.expiries++
	ls.unit.resolveLocked(unitResult{err: fmt.Errorf("expired: %w", ErrLeaseLost)})
	h.coord.mu.Unlock()

	if err := <-resCh; !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("Exec err = %v, want ErrLeaseLost", err)
	}

	// The resurrected node now completes the stale lease.
	var cr CompleteResponse
	err := w.rpc(context.Background(), "/cluster/complete", CompleteRequest{
		Node: "node-a", Lease: pr.Assignment.Lease,
		Outcomes: []JobOutcome{{ID: pr.Assignment.Jobs[0].ID, Proof: []byte("stale")}},
	}, &cr)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Discarded {
		t.Fatal("stale completion was not discarded")
	}
	if m := h.coord.Metrics(); m.Duplicates != 1 {
		t.Fatalf("duplicates = %d, want 1", m.Duplicates)
	}
}

// TestClusterLocalFallback: with zero live workers and LocalFallback,
// Exec proves in-process instead of queueing forever.
func TestClusterLocalFallback(t *testing.T) {
	snap := leakcheck.Take()
	h := newHarness(t, Config{
		LeaseTTL:      100 * time.Millisecond,
		LocalFallback: true,
		LocalExec:     echoExec,
		LocalBatch:    echoBatch,
	})
	res, err := h.coord.Exec(context.Background(), jobs.Spec{Payload: json.RawMessage(`7`), Tenant: "t0"})
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if string(res.Proof) != "proof:7" {
		t.Fatalf("proof = %q", res.Proof)
	}
	if m := h.coord.Metrics(); m.LocalFallbacks != 1 {
		t.Fatalf("local fallbacks = %d, want 1", m.LocalFallbacks)
	}
	h.close()
	snap.Check(t)
}

// TestClusterQueuedUnitReclaimedForLocal: the fleet dies AFTER a unit
// is queued; the await loop must reclaim it for local execution rather
// than hang.
func TestClusterQueuedUnitReclaimedForLocal(t *testing.T) {
	snap := leakcheck.Take()
	h := newHarness(t, Config{
		LeaseTTL:      100 * time.Millisecond,
		DeadAfter:     200 * time.Millisecond,
		LocalFallback: true,
		LocalExec:     echoExec,
	})
	// One poll registers the node as live, then the "fleet" goes silent.
	w := newTestWorker(t, h, "node-a", echoExec, nil)
	var pr PollResponse
	if err := w.rpc(context.Background(), "/cluster/poll", PollRequest{Node: "node-a", WaitMS: 1}, &pr); err != nil {
		t.Fatal(err)
	}
	res, err := h.coord.Exec(context.Background(), jobs.Spec{Payload: json.RawMessage(`9`), Tenant: "t0"})
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if string(res.Proof) != "proof:9" {
		t.Fatalf("proof = %q", res.Proof)
	}
	h.close()
	snap.Check(t)
}

// TestClusterStrideFairness: with two tenants at weights 3:1 and a
// backlog of cheap units, dispatch order must honour the weights —
// the heavy tenant gets ~3x the early slots but the light tenant is
// never starved.
func TestClusterStrideFairness(t *testing.T) {
	snap := leakcheck.Take()
	weights := map[string]int{"heavy": 3, "light": 1}
	h := newHarness(t, Config{
		LeaseTTL:     time.Second,
		TenantWeight: func(id string) int { return weights[id] },
	})

	const perTenant = 8
	var wg sync.WaitGroup
	for i := 0; i < perTenant; i++ {
		for _, ten := range []string{"heavy", "light"} {
			wg.Add(1)
			go func(ten string, i int) {
				defer wg.Done()
				payload, _ := json.Marshal(map[string]any{"t": ten, "i": i})
				if _, err := h.coord.Exec(context.Background(), jobs.Spec{Payload: payload, Tenant: ten}); err != nil {
					t.Errorf("Exec(%s/%d): %v", ten, i, err)
				}
			}(ten, i)
		}
	}
	// Give the queue a moment to fill before the single-slot worker
	// starts draining it, so stride order is observable.
	time.Sleep(100 * time.Millisecond)

	// One worker, one slot: dispatch order == execution order.
	dispatchOrder := make(chan string, 2*perTenant)
	wexec := func(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
		var m map[string]any
		_ = json.Unmarshal(spec.Payload, &m)
		dispatchOrder <- m["t"].(string)
		return jobs.Result{Proof: []byte("p")}, nil
	}
	w, err := NewWorker(WorkerConfig{
		Coordinator: h.url, ID: "node-a", Slots: 1,
		PollWait: 200 * time.Millisecond, RetryBase: 5 * time.Millisecond,
		Exec: wexec, Seed: 42, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	wg.Wait()
	close(dispatchOrder)

	var heavySeen, lightSeen, firstLight int
	i := 0
	for ten := range dispatchOrder {
		i++
		switch ten {
		case "heavy":
			heavySeen++
		case "light":
			lightSeen++
			if firstLight == 0 {
				firstLight = i
			}
		}
	}
	if heavySeen != perTenant || lightSeen != perTenant {
		t.Fatalf("saw heavy=%d light=%d, want %d each", heavySeen, lightSeen, perTenant)
	}
	// Starvation-freedom: the light tenant's first unit lands within the
	// first weight-sum+1 dispatches.
	if firstLight > 5 {
		t.Fatalf("light tenant first served at dispatch %d, want <= 5", firstLight)
	}

	stopWorker(t, w)
	h.close()
	snap.Check(t)
}

// TestClusterLocalityPlacement: with two queued units of different keys
// and a node warm on the second key, the warm unit is picked first.
func TestClusterLocalityPlacement(t *testing.T) {
	snap := leakcheck.Take()
	h := newHarness(t, Config{
		LeaseTTL:    time.Second,
		LocalityKey: func(p json.RawMessage) (string, bool) { return string(p), true },
	})
	defer func() {
		h.close()
		snap.Check(t)
	}()

	var wg sync.WaitGroup
	results := make([]error, 2)
	for i, payload := range []string{`"cold"`, `"warmkey"`} {
		wg.Add(1)
		go func(i int, payload string) {
			defer wg.Done()
			_, results[i] = h.coord.Exec(context.Background(), jobs.Spec{Payload: json.RawMessage(payload), Tenant: "t0"})
		}(i, payload)
	}
	// Wait until both units are queued.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if h.coord.Metrics().QueuedUnits == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("units never queued")
		}
		time.Sleep(5 * time.Millisecond)
	}

	w := newTestWorker(t, h, "node-a", echoExec, nil)
	var pr PollResponse
	if err := w.rpc(context.Background(), "/cluster/poll", PollRequest{Node: "node-a", Warm: []string{`"warmkey"`}, WaitMS: 500}, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Assignment == nil {
		t.Fatal("no assignment")
	}
	if pr.Assignment.Key != `"warmkey"` {
		t.Fatalf("assignment key = %q, want the node-warm key", pr.Assignment.Key)
	}
	// Finish both units so the Exec goroutines exit.
	complete := func(a *Assignment) {
		var cr CompleteResponse
		outs := make([]JobOutcome, len(a.Jobs))
		for i, j := range a.Jobs {
			outs[i] = JobOutcome{ID: j.ID, Proof: append([]byte("proof:"), j.Payload...)}
		}
		if err := w.rpc(context.Background(), "/cluster/complete", CompleteRequest{Node: "node-a", Lease: a.Lease, Outcomes: outs}, &cr); err != nil {
			t.Fatal(err)
		}
	}
	complete(pr.Assignment)
	pr = PollResponse{}
	for pr.Assignment == nil {
		if err := w.rpc(context.Background(), "/cluster/poll", PollRequest{Node: "node-a", WaitMS: 500}, &pr); err != nil {
			t.Fatal(err)
		}
	}
	complete(pr.Assignment)
	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Fatalf("Exec %d: %v", i, err)
		}
	}
}

// TestClusterSuspectProbation: a node that loses a lease goes suspect
// and is restricted to one in-flight unit until a completion lands.
func TestClusterSuspectProbation(t *testing.T) {
	snap := leakcheck.Take()
	h := newHarness(t, Config{LeaseTTL: time.Second, FailThreshold: 3})
	defer func() {
		h.close()
		snap.Check(t)
	}()

	h.coord.mu.Lock()
	n := h.coord.touchNodeLocked("node-a")
	n.state = nodeSuspect
	n.inflight = 1
	h.coord.mu.Unlock()

	done := make(chan error, 1)
	go func() {
		_, err := h.coord.Exec(context.Background(), jobs.Spec{Payload: json.RawMessage(`1`), Tenant: "t0"})
		done <- err
	}()
	w := newTestWorker(t, h, "node-a", echoExec, nil)
	var pr PollResponse
	if err := w.rpc(context.Background(), "/cluster/poll", PollRequest{Node: "node-a", WaitMS: 100}, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Assignment != nil {
		t.Fatal("suspect node with an inflight unit was assigned more work")
	}

	h.coord.mu.Lock()
	n.inflight = 0
	h.coord.mu.Unlock()
	for pr.Assignment == nil {
		if err := w.rpc(context.Background(), "/cluster/poll", PollRequest{Node: "node-a", WaitMS: 500}, &pr); err != nil {
			t.Fatal(err)
		}
	}
	var cr CompleteResponse
	if err := w.rpc(context.Background(), "/cluster/complete", CompleteRequest{
		Node: "node-a", Lease: pr.Assignment.Lease,
		Outcomes: []JobOutcome{{ID: pr.Assignment.Jobs[0].ID, Proof: []byte("p")}},
	}, &cr); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if m := h.coord.Metrics(); len(m.Nodes) != 1 || m.Nodes[0].State != "healthy" {
		t.Fatalf("node = %+v, want healthy after completion", m.Nodes)
	}
}

// TestClusterRetryAfterHint: the hint defaults to 5s with no polls and
// tracks the poll EWMA (clamped to >= 1s) once polls arrive.
func TestClusterRetryAfterHint(t *testing.T) {
	h := newHarness(t, Config{LeaseTTL: time.Second})
	defer h.close()
	if got := h.coord.RetryAfterHint(); got != 5*time.Second {
		t.Fatalf("hint with no polls = %v, want 5s", got)
	}
	w := newTestWorker(t, h, "node-a", echoExec, nil)
	for i := 0; i < 3; i++ {
		var pr PollResponse
		if err := w.rpc(context.Background(), "/cluster/poll", PollRequest{Node: "node-a", WaitMS: 1}, &pr); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.coord.RetryAfterHint(); got < time.Second || got > 30*time.Second {
		t.Fatalf("hint = %v, want within [1s, 30s]", got)
	}
}

// TestClusterCancelPropagation: cancelling the Exec context while the
// unit is leased surfaces the member on the next heartbeat's Cancelled
// list so the worker can stop proving it.
func TestClusterCancelPropagation(t *testing.T) {
	snap := leakcheck.Take()
	h := newHarness(t, Config{LeaseTTL: 60 * time.Second})
	defer func() {
		h.close()
		snap.Check(t)
	}()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := h.coord.Exec(ctx, jobs.Spec{Payload: json.RawMessage(`1`), Tenant: "t0"})
		done <- err
	}()
	w := newTestWorker(t, h, "node-a", echoExec, nil)
	var pr PollResponse
	for pr.Assignment == nil {
		if err := w.rpc(context.Background(), "/cluster/poll", PollRequest{Node: "node-a", WaitMS: 500}, &pr); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Exec err = %v, want context.Canceled", err)
	}
	var hr HeartbeatResponse
	if err := w.rpc(context.Background(), "/cluster/heartbeat", HeartbeatRequest{Node: "node-a", Leases: []string{pr.Assignment.Lease}}, &hr); err != nil {
		t.Fatal(err)
	}
	if len(hr.Cancelled) != 1 || hr.Cancelled[0] != pr.Assignment.Jobs[0].ID {
		t.Fatalf("heartbeat cancelled = %v, want [%s]", hr.Cancelled, pr.Assignment.Jobs[0].ID)
	}
	// A late completion resolves the lease bookkeeping without a second
	// delivery.
	var cr CompleteResponse
	if err := w.rpc(context.Background(), "/cluster/complete", CompleteRequest{
		Node: "node-a", Lease: pr.Assignment.Lease,
		Outcomes: []JobOutcome{{ID: pr.Assignment.Jobs[0].ID, Error: "canceled", Code: "canceled"}},
	}, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Discarded {
		t.Fatal("live lease completion reported discarded")
	}
}

// TestWorkerHTTP2: the worker plane really negotiates HTTP/2 over
// cleartext — the co-design bet (multiplexed long-polls + completions
// on one connection) only pays off if h2c actually engages.
func TestWorkerHTTP2(t *testing.T) {
	h := newHarness(t, Config{LeaseTTL: time.Second})
	defer h.close()
	var gotProto atomic.Value
	mux := http.NewServeMux()
	mux.HandleFunc("POST /probe", func(w http.ResponseWriter, r *http.Request) {
		gotProto.Store(r.Proto)
		writeJSON(w, map[string]string{})
	})
	protos := new(http.Protocols)
	protos.SetHTTP1(true)
	protos.SetUnencryptedHTTP2(true)
	srv := &http.Server{Handler: mux, Protocols: protos}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(ln) }()
	defer func() { _ = srv.Shutdown(context.Background()); <-done }()

	w, err := NewWorker(WorkerConfig{
		Coordinator: "http://" + ln.Addr().String(), ID: "node-a",
		Exec: echoExec, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]string
	if err := w.rpc(context.Background(), "/probe", map[string]string{}, &out); err != nil {
		t.Fatal(err)
	}
	if proto := gotProto.Load(); proto != "HTTP/2.0" {
		t.Fatalf("worker RPC arrived as %v, want HTTP/2.0", proto)
	}
}
