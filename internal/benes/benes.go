// Package benes implements the Beneš permutation network of NoCap's
// shuffle FU (paper §IV-B): a 2·log₂N − 1 stage switch fabric that
// realizes arbitrary permutations. "Beneš network routing is
// complicated, but because all dependencies in ZKP are known at compile
// time, we determine the network's routing control bits at compile time,
// and embed them in the instruction" — Route is that compile-time
// router, and ControlBits accounts for the ~N·log₂N bits of switch
// state (7 bits per element at the FU's 128-lane width).
//
// Routing uses the classical looping algorithm: the two inputs of every
// input-stage switch must enter different subnetworks, the two inputs
// feeding an output-stage switch must arrive from different
// subnetworks, and alternately walking these constraints 2-colors each
// cycle.
package benes

import (
	"fmt"

	"nocap/internal/field"
)

// Network is a routed Beneš network for one specific permutation.
type Network struct {
	n int
	// cross is the single switch of a 2-input network.
	cross bool
	// in and out are the first/last stage switch settings (n > 2);
	// switch k handles lines 2k and 2k+1. false routes line 2k straight
	// to the upper subnetwork / from the upper subnetwork.
	in, out      []bool
	upper, lower *Network
}

// Width returns the number of network lines.
func (nw *Network) Width() int { return nw.n }

// ControlBits returns the total switch-state bits: (2·log₂n − 1)·n/2.
func (nw *Network) ControlBits() int {
	if nw == nil {
		return 0
	}
	if nw.n <= 1 {
		return 0
	}
	if nw.n == 2 {
		return 1
	}
	return len(nw.in) + len(nw.out) + nw.upper.ControlBits() + nw.lower.ControlBits()
}

// Route computes switch settings realizing perm, where perm[o] is the
// input line delivered to output line o. len(perm) must be a power of
// two and perm a permutation.
func Route(perm []int) (*Network, error) {
	n := len(perm)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("benes: width %d is not a power of two", n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return nil, fmt.Errorf("benes: not a permutation")
		}
		seen[p] = true
	}
	return route(perm), nil
}

// route recursively routes a validated permutation.
func route(perm []int) *Network {
	n := len(perm)
	if n == 1 {
		return &Network{n: 1}
	}
	if n == 2 {
		return &Network{n: 2, cross: perm[0] == 1}
	}
	half := n / 2

	// inv[i] = output position of input i.
	inv := make([]int, n)
	for o, i := range perm {
		inv[i] = o
	}

	// sub[i] ∈ {0,1}: which subnetwork input i traverses (0 = upper).
	sub := make([]int, n)
	for i := range sub {
		sub[i] = -1
	}
	for start := 0; start < n; start++ {
		if sub[start] != -1 {
			continue
		}
		i, s := start, 0
		for {
			sub[i] = s
			p := i ^ 1 // input partner: must take the other subnetwork
			if sub[p] == -1 {
				sub[p] = 1 - s
			}
			// Follow p to its output; the output partner's input must
			// differ from p's subnetwork, i.e. equal s.
			next := perm[inv[p]^1]
			if sub[next] != -1 {
				break // cycle closed
			}
			i = next
		}
	}

	nw := &Network{
		n:   n,
		in:  make([]bool, half),
		out: make([]bool, half),
	}
	for k := 0; k < half; k++ {
		nw.in[k] = sub[2*k] == 1 // cross when even line goes to lower
	}
	upperPerm := make([]int, half)
	lowerPerm := make([]int, half)
	for j := 0; j < half; j++ {
		nw.out[j] = sub[perm[2*j]] == 1
		for _, o := range []int{2 * j, 2*j + 1} {
			if sub[perm[o]] == 0 {
				upperPerm[j] = perm[o] / 2
			} else {
				lowerPerm[j] = perm[o] / 2
			}
		}
	}
	nw.upper = route(upperPerm)
	nw.lower = route(lowerPerm)
	return nw
}

// Apply streams a vector through the routed network, returning
// out[o] = v[perm[o]]. len(v) must equal the network width.
func (nw *Network) Apply(v []field.Element) []field.Element {
	if len(v) != nw.n {
		panic("benes: vector width mismatch")
	}
	switch nw.n {
	case 1:
		return []field.Element{v[0]}
	case 2:
		if nw.cross {
			return []field.Element{v[1], v[0]}
		}
		return []field.Element{v[0], v[1]}
	}
	half := nw.n / 2
	upIn := make([]field.Element, half)
	loIn := make([]field.Element, half)
	for k := 0; k < half; k++ {
		a, b := v[2*k], v[2*k+1]
		if nw.in[k] {
			a, b = b, a
		}
		upIn[k], loIn[k] = a, b
	}
	upOut := nw.upper.Apply(upIn)
	loOut := nw.lower.Apply(loIn)
	out := make([]field.Element, nw.n)
	for j := 0; j < half; j++ {
		a, b := upOut[j], loOut[j]
		if nw.out[j] {
			a, b = b, a
		}
		out[2*j], out[2*j+1] = a, b
	}
	return out
}

// Stages returns the switching-stage count: 2·log₂n − 1.
func (nw *Network) Stages() int {
	if nw.n <= 1 {
		return 0
	}
	stages := 1
	for w := nw.n; w > 2; w /= 2 {
		stages += 2
	}
	return stages
}
