package benes

import (
	"math/rand"
	"testing"

	"nocap/internal/isa"
)

func TestControlBitsMatchISAConstant(t *testing.T) {
	// The ISA's per-shuffle-instruction control-state constant must equal
	// what the router actually produces for the FU's 128-lane width.
	nw, err := Route(rand.New(rand.NewSource(5)).Perm(128))
	if err != nil {
		t.Fatal(err)
	}
	if nw.ControlBits() != isa.ShuffleControlBits {
		t.Fatalf("router emits %d control bits, ISA assumes %d",
			nw.ControlBits(), isa.ShuffleControlBits)
	}
}
