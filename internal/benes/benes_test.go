package benes

import (
	"math/rand"
	"testing"

	"nocap/internal/field"
)

// applyIndices routes the identity-valued vector to recover the realized
// permutation.
func applyIndices(t *testing.T, nw *Network, n int) []int {
	t.Helper()
	v := make([]field.Element, n)
	for i := range v {
		v[i] = field.New(uint64(i))
	}
	out := nw.Apply(v)
	perm := make([]int, n)
	for o, e := range out {
		perm[o] = int(e.Uint64())
	}
	return perm
}

func checkRoutes(t *testing.T, perm []int) {
	t.Helper()
	nw, err := Route(perm)
	if err != nil {
		t.Fatalf("route: %v", err)
	}
	got := applyIndices(t, nw, len(perm))
	for o := range perm {
		if got[o] != perm[o] {
			t.Fatalf("output %d got input %d, want %d (perm %v)", o, got[o], perm[o], perm)
		}
	}
}

func TestIdentityAndReversal(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 64, 128} {
		id := make([]int, n)
		rev := make([]int, n)
		for i := range id {
			id[i] = i
			rev[i] = n - 1 - i
		}
		checkRoutes(t, id)
		checkRoutes(t, rev)
	}
}

func TestAllPermutationsOfFour(t *testing.T) {
	// Exhaustive for n=4: all 24 permutations must route.
	var perms [][]int
	var gen func(cur []int, rest []int)
	gen = func(cur, rest []int) {
		if len(rest) == 0 {
			perms = append(perms, append([]int(nil), cur...))
			return
		}
		for i, v := range rest {
			next := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
			gen(append(cur, v), next)
		}
	}
	gen(nil, []int{0, 1, 2, 3})
	if len(perms) != 24 {
		t.Fatalf("%d perms", len(perms))
	}
	for _, p := range perms {
		checkRoutes(t, p)
	}
}

func TestRandomPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{8, 16, 128, 1024} {
		for trial := 0; trial < 10; trial++ {
			checkRoutes(t, rng.Perm(n))
		}
	}
}

func TestCyclicRotations(t *testing.T) {
	// Rotations are the sumcheck folding permutation (paper §IV-B).
	n := 128
	for _, k := range []int{1, 8, 64, 127} {
		perm := make([]int, n)
		for o := range perm {
			perm[o] = (o + k) % n
		}
		checkRoutes(t, perm)
	}
}

func TestGroupedInterleavings(t *testing.T) {
	// Even-indexed chunks to the first half, odd-indexed to the second —
	// the hash-compaction permutation (paper §IV-B).
	n := 128
	for _, g := range []int{1, 2, 8} {
		perm := make([]int, n)
		for o := range perm {
			// output o in first half takes even chunk number o/g*2 ...
			chunk := o / g
			within := o % g
			var srcChunk int
			if o < n/2 {
				srcChunk = 2 * chunk
			} else {
				srcChunk = 2*(chunk-n/2/g) + 1
			}
			perm[o] = srcChunk*g + within
		}
		checkRoutes(t, perm)
	}
}

func TestControlBitsMatchPaper(t *testing.T) {
	// Paper §IV-B: ~N·log₂N control bits; "instructions for setting the
	// Beneš network control state occupy 7 bits per 64-bit element" at
	// the 128-lane width: (2·7−1)·64 = 832 bits = 6.5 per element.
	nw, err := Route(rand.New(rand.NewSource(2)).Perm(128))
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.ControlBits(); got != 832 {
		t.Fatalf("control bits %d, want 832", got)
	}
	perElem := float64(nw.ControlBits()) / 128
	if perElem < 6 || perElem > 7 {
		t.Fatalf("%.1f control bits per element, paper says ~7", perElem)
	}
	if nw.Stages() != 13 {
		t.Fatalf("stages %d, want 13", nw.Stages())
	}
}

func TestRouteErrors(t *testing.T) {
	if _, err := Route([]int{0, 1, 2}); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if _, err := Route([]int{0, 0}); err == nil {
		t.Fatal("non-permutation accepted")
	}
	if _, err := Route([]int{0, 5}); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if _, err := Route(nil); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestApplyWidthMismatchPanics(t *testing.T) {
	nw, _ := Route([]int{1, 0})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	nw.Apply(make([]field.Element, 4))
}

func BenchmarkRoute128(b *testing.B) {
	perm := rand.New(rand.NewSource(3)).Perm(128)
	for i := 0; i < b.N; i++ {
		if _, err := Route(perm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApply128(b *testing.B) {
	nw, _ := Route(rand.New(rand.NewSource(4)).Perm(128))
	v := make([]field.Element, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Apply(v)
	}
}
