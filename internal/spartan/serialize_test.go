package spartan

import (
	"bytes"
	"testing"
)

func marshalledProof(t *testing.T) (*Proof, []byte) {
	t.Helper()
	inst, io, w := buildFibonacci(25, 3, 4)
	proof, err := Prove(TestParams(), inst, io, w)
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	data, err := proof.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return proof, data
}

func TestProofRoundTrip(t *testing.T) {
	inst, io, w := buildFibonacci(25, 3, 4)
	proof, err := Prove(TestParams(), inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	data, err := proof.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := UnmarshalProof(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	// The decoded proof must verify against the original statement.
	if err := Verify(TestParams(), inst, io, decoded); err != nil {
		t.Fatalf("decoded proof rejected: %v", err)
	}
	// Re-encoding must be byte-identical (deterministic format).
	data2, err := decoded.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("re-encoding differs")
	}
}

func TestUnmarshalRejectsBadMagic(t *testing.T) {
	_, data := marshalledProof(t)
	data[0] ^= 0xFF
	if _, err := UnmarshalProof(data); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestUnmarshalRejectsBadVersion(t *testing.T) {
	_, data := marshalledProof(t)
	data[8] = 99
	if _, err := UnmarshalProof(data); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestUnmarshalRejectsTruncation(t *testing.T) {
	_, data := marshalledProof(t)
	for _, cut := range []int{1, 8, 40, len(data) / 2, len(data) - 1} {
		if _, err := UnmarshalProof(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestUnmarshalRejectsTrailingBytes(t *testing.T) {
	_, data := marshalledProof(t)
	if _, err := UnmarshalProof(append(data, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestUnmarshalRejectsNonCanonicalElements(t *testing.T) {
	_, data := marshalledProof(t)
	// Overwrite every 8-byte word in the middle of the buffer with an
	// out-of-field value and expect a decode error somewhere.
	rejected := false
	for off := 16; off+8 < len(data); off += 8 {
		mod := append([]byte(nil), data...)
		for i := 0; i < 8; i++ {
			mod[off+i] = 0xFF
		}
		if _, err := UnmarshalProof(mod); err != nil {
			rejected = true
			break
		}
	}
	if !rejected {
		t.Fatal("no corruption detected across the buffer")
	}
}

func TestUnmarshalFuzzGarbage(t *testing.T) {
	// Random garbage must never panic, only error.
	for seed := byte(0); seed < 50; seed++ {
		buf := make([]byte, int(seed)*13)
		for i := range buf {
			buf[i] = seed * byte(i+1)
		}
		if _, err := UnmarshalProof(buf); err == nil && len(buf) > 0 {
			t.Fatalf("garbage of len %d accepted", len(buf))
		}
	}
}

func TestSerializedSizeMatchesSizeBytes(t *testing.T) {
	proof, data := marshalledProof(t)
	// The wire encoding adds framing (length prefixes, magic); it must
	// stay within ~15% of the SizeBytes accounting used for Table III.
	ratio := float64(len(data)) / float64(proof.SizeBytes())
	if ratio < 0.9 || ratio > 1.20 {
		t.Fatalf("wire size %d vs accounted %d (ratio %.2f)", len(data), proof.SizeBytes(), ratio)
	}
}
