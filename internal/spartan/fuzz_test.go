package spartan

import (
	"testing"

	"nocap/internal/field"
	"nocap/internal/zkerr"
)

// FuzzUnmarshalProof ensures arbitrary bytes never panic the decoder
// and that valid proofs survive mutation detection (either decode error
// or verification failure — never acceptance of a corrupted statement).
func FuzzUnmarshalProof(f *testing.F) {
	inst, io, w := buildFibonacci(10, 1, 2)
	proof, err := Prove(TestParams(), inst, io, w)
	if err != nil {
		f.Fatal(err)
	}
	data, err := proof.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := UnmarshalProof(b)
		if err != nil {
			if !zkerr.InTaxonomy(err) {
				t.Fatalf("decode error outside taxonomy: %v", err)
			}
			return
		}
		// Decoded fine: verification must be a pure function (no panic)
		// and every rejection must carry a taxonomy sentinel.
		if err := Verify(TestParams(), inst, io, p); err != nil && !zkerr.InTaxonomy(err) {
			t.Fatalf("verify error outside taxonomy: %v", err)
		}
	})
}

func TestVerifyRejectsParamsMismatch(t *testing.T) {
	inst, io, w := buildFibonacci(20, 3, 4)
	params := TestParams()
	proof, err := Prove(params, inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	// Different PCS geometry: commitment checks must fail.
	other := params
	other.PCS.Rows = 4
	if Verify(other, inst, io, proof) == nil {
		t.Fatal("proof accepted under different PCS geometry")
	}
	// ZK flag mismatch changes mask accounting.
	other = params
	other.PCS.ZK = !params.PCS.ZK
	if Verify(other, inst, io, proof) == nil {
		t.Fatal("proof accepted under flipped ZK mode")
	}
}

func TestVerifyRejectsSwappedRepetitions(t *testing.T) {
	params := TestParams()
	params.Reps = 2
	inst, io, w := buildFibonacci(15, 2, 3)
	proof, err := Prove(params, inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	proof.Reps[0], proof.Reps[1] = proof.Reps[1], proof.Reps[0]
	if Verify(params, inst, io, proof) == nil {
		t.Fatal("repetition swap accepted (transcript must order them)")
	}
}

func TestVerifyRejectsSwappedOpeningVectors(t *testing.T) {
	params := TestParams()
	params.Reps = 2
	inst, io, w := buildFibonacci(15, 2, 3)
	proof, err := Prove(params, inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	ev := proof.Opening.EvalVectors
	if len(ev) == 2 {
		ev[0], ev[1] = ev[1], ev[0]
		if Verify(params, inst, io, proof) == nil {
			t.Fatal("opening-vector swap accepted")
		}
	}
}

func TestVerifyRejectsZeroedWitnessCommitment(t *testing.T) {
	inst, io, w := buildFibonacci(15, 2, 3)
	proof, err := Prove(TestParams(), inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	proof.Commitment.Root = [32]byte{}
	if Verify(TestParams(), inst, io, proof) == nil {
		t.Fatal("zeroed commitment accepted")
	}
}

func TestProveIsDeterministicGivenRandomness(t *testing.T) {
	// With ZK off, proving is fully deterministic: identical proofs.
	params := TestParams()
	params.PCS.ZK = false
	inst, io, w := buildFibonacci(12, 5, 6)
	p1, err := Prove(params, inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Prove(params, inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := p1.MarshalBinary()
	b2, _ := p2.MarshalBinary()
	if string(b1) != string(b2) {
		t.Fatal("non-ZK proving is not deterministic")
	}
	_ = field.Zero
}

func TestRecomputeProverByteIdentical(t *testing.T) {
	// §V-A recomputation must not change the proof at all (non-ZK mode
	// makes proving deterministic).
	inst, io, w := buildFibonacci(30, 4, 9)
	base := TestParams()
	base.PCS.ZK = false
	recompute := base
	recompute.Recompute = true

	p1, err := Prove(base, inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Prove(recompute, inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := p1.MarshalBinary()
	b2, _ := p2.MarshalBinary()
	if string(b1) != string(b2) {
		t.Fatal("recomputation changed the proof")
	}
	if err := Verify(base, inst, io, p2); err != nil {
		t.Fatalf("recomputed proof rejected: %v", err)
	}
}
