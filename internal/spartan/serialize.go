package spartan

import (
	"nocap/internal/hashfn"
	"nocap/internal/pcs"
	"nocap/internal/sumcheck"
	"nocap/internal/wire"
	"nocap/internal/zkerr"
)

// proofMagic and proofVersion identify the serialized format. Version 1
// is the legacy stream (implicitly sha3-hashed); version 2 inserts one
// hash-engine-id word after the version and is emitted only for
// non-default engines, so default-engine proofs stay byte-identical
// across releases.
const (
	proofMagic         = 0x6e6f4361702d7631 // "noCap-v1"
	proofVersion       = 1
	proofVersionEngine = 2
	maxReps            = 64
)

// MarshalBinary serializes the proof into the compact wire format the
// prover ships across the 10 MB/s link of the paper's end-to-end model.
func (p *Proof) MarshalBinary() ([]byte, error) {
	// SizeBytes undercounts by the framing words (~2% of the stream), so
	// pad slightly and encode without intermediate growth.
	w := wire.NewWriter(p.SizeBytes() + p.SizeBytes()/4 + 64)
	w.U64(proofMagic)
	if p.Engine == 0 || p.Engine == hashfn.IDSHA3 {
		w.U64(proofVersion)
	} else {
		w.U64(proofVersionEngine)
		w.U64(uint64(p.Engine))
	}
	p.Commitment.AppendTo(w)
	w.U64(uint64(len(p.Reps)))
	for _, rp := range p.Reps {
		rp.Outer.AppendTo(w)
		w.Elem(rp.VA)
		w.Elem(rp.VB)
		w.Elem(rp.VC)
		rp.Inner.AppendTo(w)
	}
	w.Elems(p.WEvals)
	p.Opening.AppendTo(w)
	return w.Bytes(), nil
}

// UnmarshalProof decodes a proof under wire.DefaultLimits. It does NOT
// validate the proof cryptographically; use Verify for that.
func UnmarshalProof(data []byte) (*Proof, error) {
	return UnmarshalProofLimits(data, wire.DefaultLimits())
}

// UnmarshalProofLimits decodes a proof from untrusted bytes under
// caller-configured DecodeLimits. Guarantees on hostile input: it never
// panics (internal faults are contained as zkerr.ErrInternal), it never
// allocates beyond the limits' budget, and every rejection carries a
// zkerr taxonomy sentinel reachable through errors.Is. Framing and
// field-element canonicality are validated; cryptographic validity is
// Verify's job.
func UnmarshalProofLimits(data []byte, limits wire.Limits) (p *Proof, err error) {
	defer zkerr.RecoverTo(&err, "spartan.UnmarshalProof")
	r, err := wire.NewReaderLimits(data, limits)
	if err != nil {
		return nil, err
	}
	magic, err := r.U64()
	if err != nil {
		return nil, err
	}
	if magic != proofMagic {
		return nil, zkerr.Malformedf("spartan: bad proof magic %#x", magic)
	}
	version, err := r.U64()
	if err != nil {
		return nil, err
	}
	p = &Proof{}
	switch version {
	case proofVersion:
		p.Engine = hashfn.IDSHA3
	case proofVersionEngine:
		engWord, err := r.U64()
		if err != nil {
			return nil, err
		}
		if engWord == uint64(hashfn.IDSHA3) {
			// sha3 proofs are canonically v1; a v2 header claiming sha3
			// would make the same proof admit two distinct encodings.
			return nil, zkerr.Malformedf("spartan: non-canonical engine header (sha3 must use version 1)")
		}
		eng, ok := hashfn.ID(engWord), engWord <= 0xff
		if ok {
			_, ok = hashfn.ByID(eng)
		}
		if !ok {
			return nil, zkerr.Malformedf("spartan: unknown hash engine %d", engWord)
		}
		p.Engine = eng
	default:
		return nil, zkerr.Malformedf("spartan: unsupported proof version %d", version)
	}
	if p.Commitment, err = pcs.ReadCommitment(r); err != nil {
		return nil, err
	}
	nReps, err := r.U64()
	if err != nil {
		return nil, err
	}
	repCap := uint64(maxReps)
	if lim := uint64(r.Limits().MaxReps); lim < repCap {
		repCap = lim
	}
	if nReps == 0 || nReps > repCap {
		return nil, zkerr.Malformedf("spartan: %d repetitions out of range (limit %d)", nReps, repCap)
	}
	if err := r.Grant(int64(nReps) * 64); err != nil {
		return nil, err
	}
	p.Reps = make([]RepProof, nReps)
	for i := range p.Reps {
		rp := &p.Reps[i]
		if rp.Outer, err = sumcheck.ReadProof(r); err != nil {
			return nil, err
		}
		if rp.VA, err = r.Elem(); err != nil {
			return nil, err
		}
		if rp.VB, err = r.Elem(); err != nil {
			return nil, err
		}
		if rp.VC, err = r.Elem(); err != nil {
			return nil, err
		}
		if rp.Inner, err = sumcheck.ReadProof(r); err != nil {
			return nil, err
		}
	}
	if p.WEvals, err = r.Elems(); err != nil {
		return nil, err
	}
	if p.Opening, err = pcs.ReadOpeningProof(r); err != nil {
		return nil, err
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return p, nil
}
