// Package spartan implements the Spartan+Orion zk-SNARK — the novel
// combination the paper builds NoCap around (§II-A): the R1CS
// arithmetization, the Spartan polynomial IOP (two sumchecks), and the
// Orion polynomial commitment on the witness, all over Goldilocks-64 and
// made non-interactive by Fiat–Shamir.
//
// Protocol outline (per repetition; the whole IOP is repeated Reps times
// — the paper runs all sumchecks 3× to reach 128-bit soundness over the
// 64-bit field, §VII-A):
//
//  1. The prover commits to the witness MLE w̃ (Orion PCS).
//  2. Outer sumcheck: 0 = Σ_x eq(τ,x)·(Ãz(x)·B̃z(x) − C̃z(x)), degree 3,
//     over log(m) variables; yields rx and claims vA, vB, vC.
//  3. Inner sumcheck: rA·vA+rB·vB+rC·vC = Σ_y M(y)·z̃(y) with
//     M(y) = rA·Ã(rx,y)+rB·B̃(rx,y)+rC·C̃(rx,y), degree 2, over log(n)
//     variables; yields ry.
//  4. The verifier evaluates Ã,B̃,C̃(rx,ry) directly from the matrices
//     (the Spark substitution of DESIGN.md §3.4) and ũ(ry₁…) from the
//     public inputs; w̃(ry₁…) comes from one shared Orion opening across
//     all repetitions.
package spartan

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"nocap/internal/arena"
	"nocap/internal/faultinject"
	"nocap/internal/field"
	"nocap/internal/hashfn"
	"nocap/internal/kernel"
	"nocap/internal/pcs"
	"nocap/internal/poly"
	"nocap/internal/r1cs"
	"nocap/internal/sumcheck"
	"nocap/internal/transcript"
	"nocap/internal/zkerr"
)

// Registered fault-injection points at the prover's and verifier's
// stage boundaries (chaos tests arm them by these names).
var (
	fiProveAssemble     = faultinject.Register("spartan.prove.assemble")
	fiProveSpMV         = faultinject.Register("spartan.prove.spmv")
	fiProveCommit       = faultinject.Register("spartan.prove.commit")
	fiProveOuter        = faultinject.Register("spartan.prove.outer")
	fiProveInner        = faultinject.Register("spartan.prove.inner")
	fiProveOpen         = faultinject.Register("spartan.prove.open")
	fiVerifyRep         = faultinject.Register("spartan.verify.rep")
	fiVerifyMatrixEvals = faultinject.Register("spartan.verify.matrixevals")
	fiVerifyOpening     = faultinject.Register("spartan.verify.opening")
)

// Params configures the SNARK.
type Params struct {
	// PCS configures the Orion commitment (rows, code, proximity, ZK).
	PCS pcs.Params
	// Reps is the soundness-amplification repetition count; the paper
	// uses 3 (§VII-A).
	Reps int
	// Recompute selects the §V-A recomputation prover for the outer
	// sumcheck: DP inputs are re-derived from the matrices and z every
	// round (sumcheck.ProveStreamed) instead of folding stored arrays.
	// Proofs are byte-identical either way; on NoCap the recomputation
	// variant trades multiplier throughput for 31% less memory traffic,
	// while on CPUs it is slightly slower (§VIII-C) — hence off by
	// default in this software prover.
	Recompute bool
}

// DefaultParams returns the paper's configuration: 3 repetitions,
// 128-row Orion matrix, Reed-Solomon blowup 4, 189 queries, ZK on.
func DefaultParams() Params {
	p := pcs.DefaultParams()
	return Params{PCS: p, Reps: 3}
}

// TestParams returns a configuration sized for unit tests: 1 repetition
// and a small commitment matrix.
func TestParams() Params {
	p := pcs.DefaultParams()
	p.Rows = 8
	p.ZK = true
	return Params{PCS: p, Reps: 1}
}

// RepProof holds one repetition's IOP messages.
type RepProof struct {
	Outer      *sumcheck.Proof
	VA, VB, VC field.Element
	Inner      *sumcheck.Proof
}

// Proof is a complete non-interactive Spartan+Orion proof.
type Proof struct {
	// Engine identifies the hash engine the proof was generated under.
	// The zero value means the legacy default (sha3): proofs deserialized
	// from the v1 wire format, or built by old code, carry 0 and verify
	// under sha3 parameters only.
	Engine hashfn.ID

	Commitment *pcs.Commitment
	Reps       []RepProof
	// WEvals[i] is w̃(ry_i[1:]) for repetition i, proven by Opening.
	WEvals  []field.Element
	Opening *pcs.OpeningProof
}

// SizeBytes returns the serialized proof size.
func (p *Proof) SizeBytes() int {
	n := p.Commitment.SizeBytes()
	for _, rp := range p.Reps {
		n += rp.Outer.SizeBytes() + rp.Inner.SizeBytes() + 3*8
	}
	n += 8 * len(p.WEvals)
	n += p.Opening.SizeBytes()
	return n
}

// effective returns the PCS params with Rows shrunk to fit small
// witnesses (test-scale instances); geometry stays a deterministic
// function of params and instance shape, so prover and verifier agree.
func (pp Params) effective(witnessLen int) pcs.Params {
	p := pp.PCS
	if p.Rows > witnessLen {
		p.Rows = witnessLen
	}
	if pp.Reps > p.MaxPoints {
		p.MaxPoints = pp.Reps
	}
	return p
}

// outerCombine is eq·(a·b − c).
func outerCombine(v []field.Element) field.Element {
	return field.Mul(v[0], field.Sub(field.Mul(v[1], v[2]), v[3]))
}

// innerCombine is m·z.
func innerCombine(v []field.Element) field.Element {
	return field.Mul(v[0], v[1])
}

// bindStatement absorbs everything both parties know up front.
func bindStatement(tr *transcript.Transcript, eng hashfn.Engine, inst *r1cs.Instance, io []field.Element, params Params) {
	tr.AppendDigest("instance", inst.DigestEngine(eng))
	tr.AppendElems("io", io)
	tr.AppendUint64("reps", uint64(params.Reps))
}

// publicEval computes ũ(r) for u = (1, io, 0…) of length 2^len(r):
// Σ_{i<1+|io|} u[i]·eq(r, bits(i)), O(|io|·len(r)).
func publicEval(io []field.Element, r []field.Element) field.Element {
	eval := func(idx int) field.Element {
		acc := field.One
		for k, rk := range r {
			bit := (idx >> (len(r) - 1 - k)) & 1
			if bit == 1 {
				acc = field.Mul(acc, rk)
			} else {
				acc = field.Mul(acc, field.Sub(field.One, rk))
			}
		}
		return acc
	}
	out := eval(0) // u[0] = 1
	for i, v := range io {
		if v.IsZero() {
			continue
		}
		out = field.Add(out, field.Mul(v, eval(i+1)))
	}
	return out
}

// Prove generates a proof that the prover knows a witness satisfying the
// instance with the given public inputs.
//
// Fault containment: any panic during proving — including panics in
// worker goroutines, which internal/par re-raises on this goroutine — is
// converted to a zkerr.ErrInternal error, so one bad proving job cannot
// crash a process serving many.
func Prove(params Params, inst *r1cs.Instance, io, witness []field.Element) (*Proof, error) {
	return ProveCtx(context.Background(), params, inst, io, witness)
}

// checkpoint is the cooperative cancellation + fault-injection gate
// placed at every stage boundary of the pipeline: cancellation wins,
// then an armed chaos fault may fire at the named point.
func checkpoint(ctx context.Context, point string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return faultinject.Check(point)
}

// ProveCtx is Prove under a context: cancelling ctx (or passing one
// with an expired deadline) abandons the proof at the next cooperative
// checkpoint — between stages here, between sumcheck rounds, every few
// thousand points inside round evaluations, between worker-pool chunks,
// and between NTT butterfly stages — and returns an error satisfying
// errors.Is(err, context.Canceled) or context.DeadlineExceeded. All
// worker goroutines are drained before ProveCtx returns: a cancelled
// caller gets its goroutines and memory back immediately.
func ProveCtx(ctx context.Context, params Params, inst *r1cs.Instance, io, witness []field.Element) (proof *Proof, err error) {
	defer zkerr.RecoverTo(&err, "spartan.Prove")
	if ctx == nil {
		ctx = context.Background()
	}
	if err := validateStatement(params, inst, witness); err != nil {
		return nil, err
	}
	if err := checkpoint(ctx, fiProveAssemble); err != nil {
		return nil, err
	}
	z := arena.GetUninitCtx(ctx, inst.NumVars())
	defer arena.Put(z)
	inst.AssembleZInto(z, io, witness)

	// SpMV: the three sparse matrix-vector products (paper §V-A),
	// computed once into arena scratch and reused both for the witness
	// satisfaction check ((Az)∘(Bz) = Cz directly on the products — no
	// separate Satisfied pass) and, copied, as every repetition's outer
	// DP arrays. With recomputation on, products are re-derived on demand
	// instead. The transcript is untouched here, so running this stage
	// before the commitment leaves proof bytes unchanged.
	if err := checkpoint(ctx, fiProveSpMV); err != nil {
		return nil, err
	}
	numCons := inst.NumConstraints()
	var az, bz, cz []field.Element
	if !params.Recompute {
		az = arena.GetUninitCtx(ctx, numCons)
		bz = arena.GetUninitCtx(ctx, numCons)
		cz = arena.GetUninitCtx(ctx, numCons)
		defer arena.Put(az)
		defer arena.Put(bz)
		defer arena.Put(cz)
		if err := spmvAndCheck(ctx, inst, z, az, bz, cz); err != nil {
			return nil, err
		}
	} else if ok, i := inst.Satisfied(z); !ok {
		return nil, fmt.Errorf("spartan: witness does not satisfy constraint %d", i)
	}
	return proveCore(ctx, params, inst, io, witness, z, az, bz, cz, nil)
}

// validateStatement checks the shape invariants shared by the solo and
// batched prover entry points.
func validateStatement(params Params, inst *r1cs.Instance, witness []field.Element) error {
	if params.Reps < 1 {
		return errors.New("spartan: Reps must be ≥ 1")
	}
	if half := inst.NumVars() / 2; len(witness) != half {
		return fmt.Errorf("spartan: witness length %d, want %d", len(witness), half)
	}
	return nil
}

// spmvAndCheck fills az/bz/cz with the three sparse products and checks
// witness satisfaction directly on them.
func spmvAndCheck(ctx context.Context, inst *r1cs.Instance, z, az, bz, cz []field.Element) error {
	for _, p := range []struct {
		mat *r1cs.SparseMatrix
		dst []field.Element
	}{{inst.A, az}, {inst.B, bz}, {inst.C, cz}} {
		if err := p.mat.MulIntoCtx(ctx, p.dst, z); err != nil {
			return fmt.Errorf("spartan: spmv: %w", err)
		}
	}
	for i := range az {
		if field.Mul(az[i], bz[i]) != cz[i] {
			return fmt.Errorf("spartan: witness does not satisfy constraint %d", i)
		}
	}
	return nil
}

// Shared is a batch-scoped shared-structure plan (DESIGN.md §15): every
// statement-level input the prover needs that does not depend on the
// member's transcript or commitment randomness, computed once and
// reused by each member of a batch proving the same statement. That
// covers the assembled z vector, the three SpMV products and the
// satisfaction check, the warmed instance digest (the transcript's
// first absorb), the PCS geometry plan with its warmed encoder caches,
// and a sumcheck scratch pool the members' in-place DP folds cycle
// through. Per-member transcripts, ZK randomness, and proof bytes are
// untouched: a proof produced through the plan is byte-identical to
// what solo ProveCtx would emit for the same statement.
//
// Members run through the plan one at a time (an internal mutex
// serializes ProveCtx calls; the scratch pool is single-flight).
type Shared struct {
	mu      sync.Mutex
	params  Params
	inst    *r1cs.Instance
	io      []field.Element
	witness []field.Element
	z       []field.Element
	// az/bz/cz are nil when params.Recompute is set (products are
	// re-derived on demand from z during the outer sumcheck).
	az, bz, cz []field.Element
	pcsShared  *pcs.Shared
	scratch    *sumcheck.Scratch
}

// NewSharedCtx builds the shared-structure plan for one statement:
// validates shapes, assembles z, runs the SpMV products and the
// satisfaction check once, warms the instance digest under the batch's
// hash engine, and fixes the PCS geometry (warming its size-dependent
// encoder caches). Plan buffers are plain allocations, not arena
// checkouts — the plan outlives any single member run, while arena
// accounting is run-scoped.
func NewSharedCtx(ctx context.Context, params Params, inst *r1cs.Instance, io, witness []field.Element) (sh *Shared, err error) {
	defer zkerr.RecoverTo(&err, "spartan.NewShared")
	if ctx == nil {
		ctx = context.Background()
	}
	if err := validateStatement(params, inst, witness); err != nil {
		return nil, err
	}
	if err := checkpoint(ctx, fiProveAssemble); err != nil {
		return nil, err
	}
	z := make([]field.Element, inst.NumVars())
	inst.AssembleZInto(z, io, witness)

	// Warm the memoized instance digest under the batch's engine: the
	// first DigestEngine call hashes the whole matrix structure
	// (milliseconds at serving sizes); members then bind it from the
	// memo in nanoseconds.
	eng := params.PCS.Engine()
	inst.DigestEngine(eng)

	if err := checkpoint(ctx, fiProveSpMV); err != nil {
		return nil, err
	}
	numCons := inst.NumConstraints()
	var az, bz, cz []field.Element
	if !params.Recompute {
		az = make([]field.Element, numCons)
		bz = make([]field.Element, numCons)
		cz = make([]field.Element, numCons)
		if err := spmvAndCheck(ctx, inst, z, az, bz, cz); err != nil {
			return nil, err
		}
	} else if ok, i := inst.Satisfied(z); !ok {
		return nil, fmt.Errorf("spartan: witness does not satisfy constraint %d", i)
	}

	ps, err := pcs.NewSharedCtx(ctx, params.effective(len(witness)), len(witness))
	if err != nil {
		return nil, fmt.Errorf("spartan: shared commit plan: %w", err)
	}
	return &Shared{
		params:    params,
		inst:      inst,
		io:        append([]field.Element(nil), io...),
		witness:   append([]field.Element(nil), witness...),
		z:         z,
		az:        az,
		bz:        bz,
		cz:        cz,
		pcsShared: ps,
		scratch:   sumcheck.NewScratch(),
	}, nil
}

// Params returns the parameters the plan was built for.
func (sh *Shared) Params() Params { return sh.params }

// ProveCtx proves the plan's statement as one batch member: the
// precomputed z/az/bz/cz are reused (copied into scratch where the
// sumcheck folds in place), the commitment goes through the shared PCS
// geometry, and the transcript binds the memoized instance digest. The
// proof is byte-identical to solo ProveCtx for the same statement, and
// every per-stage checkpoint (cancellation + fault injection) still
// fires, so one member's cancellation or injected fault is contained to
// that member.
func (sh *Shared) ProveCtx(ctx context.Context) (proof *Proof, err error) {
	defer zkerr.RecoverTo(&err, "spartan.Prove")
	if ctx == nil {
		ctx = context.Background()
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// The assemble and SpMV stages ran at plan time; keep their
	// checkpoints so cancellation and chaos faults behave as on the solo
	// path.
	if err := checkpoint(ctx, fiProveAssemble); err != nil {
		return nil, err
	}
	if err := checkpoint(ctx, fiProveSpMV); err != nil {
		return nil, err
	}
	return proveCore(ctx, sh.params, sh.inst, sh.io, sh.witness, sh.z, sh.az, sh.bz, sh.cz, sh)
}

// proveCore is the transcript-facing body shared by the solo and
// batched provers: commit, the per-repetition outer/inner sumchecks,
// and the shared Orion opening. z is the assembled variable vector;
// az/bz/cz are the SpMV products (nil in Recompute mode). When sh is
// non-nil the commitment uses the plan's precomputed PCS geometry and
// the repetition DP arrays cycle through the plan's scratch pool
// instead of arena checkouts; the transcript sequence is identical
// either way, so proof bytes do not depend on which path ran.
func proveCore(ctx context.Context, params Params, inst *r1cs.Instance, io, witness, z, az, bz, cz []field.Element, sh *Shared) (proof *Proof, err error) {
	eng := params.PCS.Engine()
	tr := transcript.NewEngine("spartan-orion", eng)
	bindStatement(tr, eng, inst, io, params)

	numCons := inst.NumConstraints()
	rowDot := func(mat *r1cs.SparseMatrix, i int) field.Element {
		var acc field.Element
		for _, e := range mat.Rows[i] {
			acc = field.Add(acc, field.Mul(e.Val, z[e.Col]))
		}
		return acc
	}

	// 1. Commit to the witness.
	if err := checkpoint(ctx, fiProveCommit); err != nil {
		return nil, err
	}
	var st *pcs.ProverState
	if sh != nil {
		st, err = pcs.CommitSharedCtx(ctx, sh.pcsShared, witness)
	} else {
		st, err = pcs.CommitCtx(ctx, params.effective(len(witness)), witness)
	}
	if err != nil {
		return nil, fmt.Errorf("spartan: commit: %w", err)
	}
	defer st.Close()
	comm := st.Commitment()
	tr.AppendDigest("witness-commitment", comm.Root)

	logM := inst.LogConstraints()
	proof = &Proof{Engine: eng.ID(), Commitment: comm, Reps: make([]RepProof, params.Reps)}
	openPoints := make([][]field.Element, params.Reps)

	for rep := 0; rep < params.Reps; rep++ {
		// Each repetition's DP arrays are rep-local arena scratch; the
		// closure scopes their deferred returns to the iteration.
		rp, point, repErr := func() (RepProof, []field.Element, error) {
			lbl := fmt.Sprintf("rep%d", rep)
			tau := tr.Challenges(lbl+"/tau", logM)

			// Outer sumcheck over x ∈ {0,1}^logM.
			if err := checkpoint(ctx, fiProveOuter); err != nil {
				return RepProof{}, nil, err
			}
			var outer *sumcheck.Proof
			var rx, finals []field.Element
			var err error
			if params.Recompute {
				eqTau := poly.EqTableCtx(ctx, tau)
				src := func(k, i int) field.Element {
					switch k {
					case 0:
						return eqTau[i]
					case 1:
						return rowDot(inst.A, i)
					case 2:
						return rowDot(inst.B, i)
					}
					return rowDot(inst.C, i)
				}
				// 2^20 elements = the 8 MB register-file capacity (§V-A).
				outer, rx, finals, err = sumcheck.ProveStreamedCtx(ctx, tr, lbl+"/outer", field.Zero, 4, logM, src, 3, outerCombine, 1<<20)
			} else {
				// The sumcheck folds its arrays in place, so eq(τ,·)
				// expands straight into scratch and az/bz/cz are copied.
				// Batch members draw the copies from the plan's scratch
				// pool; solo runs check them out of the arena.
				var eqTau, azc, bzc, czc []field.Element
				if sh != nil {
					eqTau = sh.scratch.Buf(0, 1<<logM)
					azc = sh.scratch.Buf(1, numCons)
					bzc = sh.scratch.Buf(2, numCons)
					czc = sh.scratch.Buf(3, numCons)
				} else {
					eqTau = arena.GetUninitCtx(ctx, 1<<logM)
					azc = arena.GetUninitCtx(ctx, numCons)
					bzc = arena.GetUninitCtx(ctx, numCons)
					czc = arena.GetUninitCtx(ctx, numCons)
					defer arena.Put(eqTau)
					defer arena.Put(azc)
					defer arena.Put(bzc)
					defer arena.Put(czc)
				}
				poly.EqTableIntoCtx(ctx, eqTau, tau)
				copy(azc, az)
				copy(bzc, bz)
				copy(czc, cz)
				arrays := []*poly.MLE{
					poly.NewMLE(eqTau), poly.NewMLE(azc), poly.NewMLE(bzc), poly.NewMLE(czc),
				}
				outer, rx, finals, err = sumcheck.ProveCtx(ctx, tr, lbl+"/outer", field.Zero, arrays, 3, outerCombine)
			}
			if err != nil {
				return RepProof{}, nil, fmt.Errorf("spartan: outer sumcheck: %w", err)
			}
			va, vb, vc := finals[1], finals[2], finals[3]
			tr.AppendElems(lbl+"/claims", []field.Element{va, vb, vc})

			rABC := tr.Challenges(lbl+"/rabc", 3)
			claim := field.Add(field.Add(
				field.Mul(rABC[0], va), field.Mul(rABC[1], vb)), field.Mul(rABC[2], vc))

			// Build M(y) = Σ_i eq(rx,i)·(rA·A[i,y]+rB·B[i,y]+rC·C[i,y]):
			// three transpose SpMVs accumulating into zeroed scratch.
			if err := checkpoint(ctx, fiProveInner); err != nil {
				return RepProof{}, nil, err
			}
			var eqRx, my, zc []field.Element
			if sh != nil {
				eqRx = sh.scratch.Buf(4, 1<<len(rx))
				my = sh.scratch.Zeroed(5, inst.NumVars())
				zc = sh.scratch.Buf(6, len(z))
			} else {
				eqRx = arena.GetUninitCtx(ctx, 1<<len(rx))
				defer arena.Put(eqRx)
				my = arena.GetCtx(ctx, inst.NumVars())
				defer arena.Put(my)
				zc = arena.GetUninitCtx(ctx, len(z))
				defer arena.Put(zc)
			}
			poly.EqTableIntoCtx(ctx, eqRx, rx)
			copy(zc, z)
			for _, p := range []struct {
				mat   *r1cs.SparseMatrix
				coeff field.Element
			}{{inst.A, rABC[0]}, {inst.B, rABC[1]}, {inst.C, rABC[2]}} {
				if err := kernel.SpMVTCtx(ctx, my, p.mat.Rows, eqRx, p.coeff); err != nil {
					return RepProof{}, nil, err
				}
			}

			inner, ry, _, err := sumcheck.ProveCtx(ctx, tr, lbl+"/inner",
				claim, []*poly.MLE{poly.NewMLE(my), poly.NewMLE(zc)}, 2, innerCombine)
			if err != nil {
				return RepProof{}, nil, fmt.Errorf("spartan: inner sumcheck: %w", err)
			}

			return RepProof{Outer: outer, VA: va, VB: vb, VC: vc, Inner: inner}, ry[1:], nil
		}()
		if repErr != nil {
			return nil, repErr
		}
		proof.Reps[rep] = rp
		openPoints[rep] = point
	}

	// 2. One shared Orion opening for all repetitions' w̃ evaluations.
	if err := checkpoint(ctx, fiProveOpen); err != nil {
		return nil, err
	}
	opening, wEvals, err := st.OpenCtx(ctx, tr, openPoints)
	if err != nil {
		return nil, fmt.Errorf("spartan: open: %w", err)
	}
	proof.Opening = opening
	proof.WEvals = wEvals
	return proof, nil
}

// Verification errors, anchored in the zkerr taxonomy: final-check
// failures are soundness rejections of structurally valid proofs, while
// ErrShape is structural.
var (
	ErrOuterFinal = zkerr.Wrap(zkerr.ErrSoundnessCheckFailed, "spartan: outer sumcheck final check failed")
	ErrInnerFinal = zkerr.Wrap(zkerr.ErrSoundnessCheckFailed, "spartan: inner sumcheck final check failed")
	ErrShape      = zkerr.Wrap(zkerr.ErrMalformedProof, "spartan: malformed proof")
	// ErrEngineMismatch rejects a proof whose hash engine differs from
	// the verifier's parameters. Rejecting up front (rather than letting
	// the transcript diverge into an opaque soundness failure) keeps the
	// failure typed and diagnosable; it is a commitment-agreement error,
	// not a soundness hole — the diverged transcripts could never verify
	// anyway.
	ErrEngineMismatch = zkerr.Wrap(zkerr.ErrBadCommitment, "spartan: proof hash engine does not match verifier parameters")
)

// Verify checks a proof against the instance and public inputs. The proof
// is untrusted: Verify never panics on hostile contents (all rejection
// paths return taxonomy errors, and any internal invariant violation is
// contained as zkerr.ErrInternal) and performs the cheap structural
// checks before any cryptographic work.
func Verify(params Params, inst *r1cs.Instance, io []field.Element, proof *Proof) error {
	return VerifyCtx(context.Background(), params, inst, io, proof)
}

// VerifyCtx is Verify under a context, with cooperative checkpoints per
// repetition (the matrix MLE evaluations and the PCS opening dominate)
// and fault-injection points at each verification stage.
func VerifyCtx(ctx context.Context, params Params, inst *r1cs.Instance, io []field.Element, proof *Proof) (err error) {
	defer zkerr.RecoverTo(&err, "spartan.Verify")
	if ctx == nil {
		ctx = context.Background()
	}
	if proof == nil || proof.Commitment == nil || proof.Opening == nil {
		return fmt.Errorf("%w: missing proof component", ErrShape)
	}
	if params.Reps < 1 || len(proof.Reps) != params.Reps || len(proof.WEvals) != params.Reps {
		return fmt.Errorf("%w: repetition count", ErrShape)
	}
	for i := range proof.Reps {
		if proof.Reps[i].Outer == nil || proof.Reps[i].Inner == nil {
			return fmt.Errorf("%w: repetition %d missing sumcheck", ErrShape, i)
		}
	}
	half := inst.NumVars() / 2
	pcsParams := params.effective(half)

	eng := params.PCS.Engine()
	pe := proof.Engine
	if pe == 0 {
		pe = hashfn.IDSHA3 // legacy proofs predate the engine field
	}
	if pe != eng.ID() {
		return fmt.Errorf("%w: proof under engine %d, params say %q", ErrEngineMismatch, pe, eng.Name())
	}

	tr := transcript.NewEngine("spartan-orion", eng)
	bindStatement(tr, eng, inst, io, params)
	tr.AppendDigest("witness-commitment", proof.Commitment.Root)

	logM := inst.LogConstraints()
	logN := inst.LogVars()
	openPoints := make([][]field.Element, params.Reps)

	for rep := 0; rep < params.Reps; rep++ {
		if err := checkpoint(ctx, fiVerifyRep); err != nil {
			return err
		}
		lbl := fmt.Sprintf("rep%d", rep)
		tau := tr.Challenges(lbl+"/tau", logM)
		rp := proof.Reps[rep]

		rx, outerFinal, err := sumcheck.Verify(tr, lbl+"/outer", field.Zero, logM, 3, rp.Outer)
		if err != nil {
			return fmt.Errorf("spartan: rep %d outer: %w", rep, err)
		}
		// g(rx) must equal eq(τ,rx)·(vA·vB − vC).
		eqTauRx := poly.EqEval(tau, rx)
		want := field.Mul(eqTauRx, field.Sub(field.Mul(rp.VA, rp.VB), rp.VC))
		if outerFinal != want {
			return fmt.Errorf("%w (rep %d)", ErrOuterFinal, rep)
		}
		tr.AppendElems(lbl+"/claims", []field.Element{rp.VA, rp.VB, rp.VC})

		rABC := tr.Challenges(lbl+"/rabc", 3)
		claim := field.Add(field.Add(
			field.Mul(rABC[0], rp.VA), field.Mul(rABC[1], rp.VB)), field.Mul(rABC[2], rp.VC))

		ry, innerFinal, err := sumcheck.Verify(tr, lbl+"/inner", claim, logN, 2, rp.Inner)
		if err != nil {
			return fmt.Errorf("spartan: rep %d inner: %w", rep, err)
		}

		// Final inner check: M̃(ry)·z̃(ry).
		if err := checkpoint(ctx, fiVerifyMatrixEvals); err != nil {
			return err
		}
		va2, vb2, vc2 := inst.MatrixEvals(rx, ry)
		mv := field.Add(field.Add(
			field.Mul(rABC[0], va2), field.Mul(rABC[1], vb2)), field.Mul(rABC[2], vc2))
		uEval := publicEval(io, ry[1:])
		zv := field.Add(
			field.Mul(field.Sub(field.One, ry[0]), uEval),
			field.Mul(ry[0], proof.WEvals[rep]))
		if innerFinal != field.Mul(mv, zv) {
			return fmt.Errorf("%w (rep %d)", ErrInnerFinal, rep)
		}
		openPoints[rep] = ry[1:]
	}

	// Check the shared Orion opening of w̃ at all repetition points.
	if err := checkpoint(ctx, fiVerifyOpening); err != nil {
		return err
	}
	if err := pcs.VerifyCtx(ctx, pcsParams, proof.Commitment, tr, openPoints, proof.WEvals, proof.Opening); err != nil {
		return fmt.Errorf("spartan: opening: %w", err)
	}
	return nil
}
