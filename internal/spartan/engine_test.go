package spartan

import (
	"errors"
	"testing"

	"nocap/internal/hashfn"
	"nocap/internal/wire"
	"nocap/internal/zkerr"
)

// paramsWithEngine returns TestParams with the PCS hash engine set.
func paramsWithEngine(t *testing.T, name string) Params {
	t.Helper()
	eng, ok := hashfn.ByName(name)
	if !ok {
		t.Fatalf("engine %q not registered", name)
	}
	p := TestParams()
	p.PCS.Hash = eng
	return p
}

// TestProveVerifyEveryEngine proves and verifies the same statement
// under every registered engine, through a marshal/unmarshal round trip.
func TestProveVerifyEveryEngine(t *testing.T) {
	inst, io, w := buildFibonacci(10, 1, 2)
	for _, name := range hashfn.Names() {
		params := paramsWithEngine(t, name)
		proof, err := Prove(params, inst, io, w)
		if err != nil {
			t.Fatalf("%s: prove: %v", name, err)
		}
		if proof.Engine != params.PCS.Engine().ID() {
			t.Fatalf("%s: proof tagged engine %d", name, proof.Engine)
		}
		data, err := proof.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		decoded, err := UnmarshalProof(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if decoded.Engine != proof.Engine {
			t.Fatalf("%s: engine id did not survive the wire: %d", name, decoded.Engine)
		}
		if err := Verify(params, inst, io, decoded); err != nil {
			t.Fatalf("%s: verify: %v", name, err)
		}
	}
}

// TestCrossEngineRejection is the satellite acceptance test: a proof
// generated under engine A must fail verification under engine B with a
// typed commitment-agreement error — never panic, never verify.
func TestCrossEngineRejection(t *testing.T) {
	inst, io, w := buildFibonacci(10, 1, 2)
	names := hashfn.Names()
	for _, proveName := range names {
		proof, err := Prove(paramsWithEngine(t, proveName), inst, io, w)
		if err != nil {
			t.Fatalf("%s: prove: %v", proveName, err)
		}
		for _, verifyName := range names {
			if verifyName == proveName {
				continue
			}
			err := func() (err error) {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("prove=%s verify=%s panicked: %v", proveName, verifyName, r)
					}
				}()
				return Verify(paramsWithEngine(t, verifyName), inst, io, proof)
			}()
			if err == nil {
				t.Fatalf("proof under %s verified under %s", proveName, verifyName)
			}
			if !errors.Is(err, ErrEngineMismatch) || !errors.Is(err, zkerr.ErrBadCommitment) {
				t.Fatalf("prove=%s verify=%s: want ErrEngineMismatch, got %v", proveName, verifyName, err)
			}
		}
	}
}

// TestLegacyProofEngineZero pins backward compatibility: a proof struct
// with the zero Engine value (anything built by pre-engine code) must
// verify under default parameters and reject under any other engine.
func TestLegacyProofEngineZero(t *testing.T) {
	inst, io, w := buildFibonacci(10, 1, 2)
	proof, err := Prove(TestParams(), inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	proof.Engine = 0
	if err := Verify(TestParams(), inst, io, proof); err != nil {
		t.Fatalf("legacy engine-0 proof rejected under defaults: %v", err)
	}
	if err := Verify(paramsWithEngine(t, "keccak-x4"), inst, io, proof); !errors.Is(err, ErrEngineMismatch) {
		t.Fatalf("legacy proof under keccak-x4 params: want ErrEngineMismatch, got %v", err)
	}
}

// TestEngineWireHeader pins the v1/v2 wire rules: sha3 proofs serialize
// as version 1 (byte-compatible with every earlier release), other
// engines as version 2 with an id word, and the two non-canonical
// headers — v2 claiming sha3, v2 with an unknown id — are malformed.
func TestEngineWireHeader(t *testing.T) {
	inst, io, w := buildFibonacci(10, 1, 2)

	sha3Proof, err := Prove(TestParams(), inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	sha3Data, err := sha3Proof.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if v := le64(sha3Data[8:]); v != proofVersion {
		t.Fatalf("sha3 proof serialized as version %d, want %d", v, proofVersion)
	}

	x4Proof, err := Prove(paramsWithEngine(t, "keccak-x4"), inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	x4Data, err := x4Proof.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if v := le64(x4Data[8:]); v != proofVersionEngine {
		t.Fatalf("keccak-x4 proof serialized as version %d, want %d", v, proofVersionEngine)
	}
	if id := le64(x4Data[16:]); id != uint64(hashfn.IDKeccakX4) {
		t.Fatalf("engine id word = %d, want %d", id, hashfn.IDKeccakX4)
	}

	// v2 claiming sha3: same proof would admit two encodings — malformed.
	hostile := append([]byte(nil), x4Data...)
	putLE64(hostile[16:], uint64(hashfn.IDSHA3))
	if _, err := UnmarshalProof(hostile); !errors.Is(err, zkerr.ErrMalformedProof) {
		t.Fatalf("v2-claiming-sha3 header: want ErrMalformedProof, got %v", err)
	}

	// Unknown engine ids, small and absurd.
	for _, id := range []uint64{0, 200, 1 << 40} {
		hostile := append([]byte(nil), x4Data...)
		putLE64(hostile[16:], id)
		if _, err := UnmarshalProof(hostile); !errors.Is(err, zkerr.ErrMalformedProof) {
			t.Fatalf("engine id %d: want ErrMalformedProof, got %v", id, err)
		}
	}
}

// TestEngineProofsDiverge makes sure the two engines do not share
// transcripts: the serialized proofs for the same statement must differ
// beyond the header (the Fiat–Shamir challenges diverge from the seed).
func TestEngineProofsDiverge(t *testing.T) {
	inst, io, w := buildFibonacci(10, 1, 2)
	a, err := Prove(TestParams(), inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Prove(paramsWithEngine(t, "keccak-x4"), inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	if a.Commitment.Root == b.Commitment.Root {
		t.Fatal("sha3 and keccak-x4 commitments share a root: ZK masking or engine separation broken")
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * uint(i))
	}
	return v
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
}

// TestEngineTagMutations drives the dedicated engine-tag corruption
// class from the advtest harness shape: rewriting the header words of a
// valid keccak-x4 proof must always produce a typed rejection at decode
// or verify, never a panic or an accept.
func TestEngineTagMutations(t *testing.T) {
	inst, io, w := buildFibonacci(10, 1, 2)
	params := paramsWithEngine(t, "keccak-x4")
	proof, err := Prove(params, inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	valid, err := proof.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for version := uint64(1); version <= 2; version++ {
		for id := uint64(0); id < 4; id++ {
			mutated := append([]byte(nil), valid...)
			putLE64(mutated[8:], version)
			putLE64(mutated[16:], id)
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("version=%d id=%d panicked: %v", version, id, r)
					}
				}()
				p, err := UnmarshalProofLimits(mutated, wire.DefaultLimits())
				if err != nil {
					if !zkerr.InTaxonomy(err) {
						t.Fatalf("version=%d id=%d: decode error outside taxonomy: %v", version, id, err)
					}
					return
				}
				if err := Verify(params, inst, io, p); err == nil {
					// Only the identity rewrite (the proof's own header) may
					// still verify.
					if version != uint64(proofVersionEngine) || id != uint64(hashfn.IDKeccakX4) {
						t.Fatalf("version=%d id=%d: relabeled proof verified", version, id)
					}
				} else if !zkerr.InTaxonomy(err) {
					t.Fatalf("version=%d id=%d: verify error outside taxonomy: %v", version, id, err)
				}
			}()
		}
	}
}
