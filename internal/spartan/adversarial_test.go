package spartan

import (
	"bytes"
	"errors"
	"testing"

	"nocap/internal/advtest"
	"nocap/internal/wire"
	"nocap/internal/zkerr"
)

// TestAdversarialMutations is the acceptance harness for the hardened
// verifier boundary: across ≥ 10,000 mutated proofs, UnmarshalProof +
// Verify must never panic, never allocate beyond DecodeLimits (the
// reader's budget is charged before every untrusted-size allocation), and
// every rejection must carry a zkerr taxonomy sentinel. A mutation may
// only be accepted if it left the bytes identical to the valid proof.
func TestAdversarialMutations(t *testing.T) {
	params := TestParams()
	inst, io, w := buildFibonacci(12, 1, 2)
	proof, err := Prove(params, inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	valid, err := proof.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Limits sized to the valid proof: anything demanding much more is a
	// resource violation, not a legitimate decode.
	limits := wire.DefaultLimits()
	limits.MaxProofBytes = 2 * len(valid)
	limits.MaxTotalAlloc = int64(8 * len(valid))

	n := 10000
	if testing.Short() {
		n = 1500
	}
	mut := advtest.NewMutator(valid, 1)
	kindCounts := make(map[advtest.Kind]int)
	accepted, rejectedDecode, rejectedVerify := 0, 0, 0
	for i := 0; i < n; i++ {
		m := mut.Next()
		kindCounts[m.Kind]++
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("mutation %d (%v) panicked through the boundary: %v", i, m.Kind, r)
				}
			}()
			p, err := UnmarshalProofLimits(m.Data, limits)
			if err != nil {
				if !zkerr.InTaxonomy(err) {
					t.Fatalf("mutation %d (%v): decode error outside taxonomy: %v", i, m.Kind, err)
				}
				rejectedDecode++
				return
			}
			if err := Verify(params, inst, io, p); err != nil {
				if !zkerr.InTaxonomy(err) {
					t.Fatalf("mutation %d (%v): verify error outside taxonomy: %v", i, m.Kind, err)
				}
				rejectedVerify++
				return
			}
			// Accepted: only legitimate if the mutation was a no-op.
			if !bytes.Equal(m.Data, valid) {
				t.Fatalf("mutation %d (%v) altered the proof yet verified", i, m.Kind)
			}
			accepted++
		}()
	}
	t.Logf("%d mutations: %d rejected at decode, %d at verify, %d no-op accepts",
		n, rejectedDecode, rejectedVerify, accepted)
	for k, c := range kindCounts {
		if c == 0 {
			t.Errorf("mutation kind %v never exercised", k)
		}
	}
	if rejectedDecode == 0 || rejectedVerify == 0 {
		t.Fatal("harness did not exercise both rejection layers")
	}
}

// TestDecodeLimitsBoundAllocation pins the resource-bound contract: tiny
// hostile messages must be rejected with a typed error before any
// multi-gigabyte allocation can happen.
func TestDecodeLimitsBoundAllocation(t *testing.T) {
	// A valid header followed by a zeroed commitment and nothing else: the
	// decoder must fail on the missing body, not trust any prefix.
	w := &wire.Writer{}
	w.U64(proofMagic)
	w.U64(proofVersion)
	hostile := append(w.Bytes(), make([]byte, 64)...)

	limits := wire.Limits{MaxProofBytes: 1 << 16, MaxTotalAlloc: 1 << 16}
	if _, err := UnmarshalProofLimits(hostile, limits); err == nil {
		t.Fatal("hostile header accepted")
	} else if !zkerr.InTaxonomy(err) {
		t.Fatalf("error outside taxonomy: %v", err)
	}

	// Whole-message cap applies before parsing.
	big := make([]byte, 1<<12)
	if _, err := UnmarshalProofLimits(big, wire.Limits{MaxProofBytes: 256}); !errors.Is(err, zkerr.ErrResourceLimit) {
		t.Fatalf("oversized message not resource-limited: %v", err)
	}
}

// TestUnmarshalRejectsRepInflation checks the MaxReps decode limit
// specifically: a valid prefix with the repetition count rewritten huge
// must fail with a typed error.
func TestUnmarshalRejectsRepInflation(t *testing.T) {
	inst, io, w := buildFibonacci(10, 1, 2)
	proof, err := Prove(TestParams(), inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	data, err := proof.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Layout: magic(8) version(8) commitment(32+4*8) reps-count(8).
	repOff := 8 + 8 + 32 + 4*8
	for _, reps := range []uint64{0, 65, 1 << 30, 1 << 62} {
		mutated := append([]byte(nil), data...)
		for k := 0; k < 8; k++ {
			mutated[repOff+k] = byte(reps >> (8 * uint(k)))
		}
		_, err := UnmarshalProof(mutated)
		if !errors.Is(err, zkerr.ErrMalformedProof) && !errors.Is(err, zkerr.ErrResourceLimit) {
			t.Fatalf("reps=%d: want malformed/resource error, got %v", reps, err)
		}
	}
	// Tight caller limit rejects even the legitimate count.
	lim := wire.DefaultLimits()
	lim.MaxReps = 1
	params2 := TestParams()
	params2.Reps = 2
	proof2, err := Prove(params2, inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := proof2.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalProofLimits(data2, lim); !errors.Is(err, zkerr.ErrMalformedProof) {
		t.Fatalf("MaxReps=1 did not reject 2-rep proof: %v", err)
	}
}

// TestVerifyRejectsNilComponents ensures hand-constructed proofs with
// missing parts produce ErrShape, not a nil-pointer panic.
func TestVerifyRejectsNilComponents(t *testing.T) {
	params := TestParams()
	inst, io, w := buildFibonacci(10, 1, 2)
	proof, err := Prove(params, inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	cases := []func(p Proof) *Proof{
		func(p Proof) *Proof { return nil },
		func(p Proof) *Proof { p.Commitment = nil; return &p },
		func(p Proof) *Proof { p.Opening = nil; return &p },
		func(p Proof) *Proof {
			p.Reps = append([]RepProof(nil), p.Reps...)
			p.Reps[0].Outer = nil
			return &p
		},
		func(p Proof) *Proof {
			p.Reps = append([]RepProof(nil), p.Reps...)
			p.Reps[0].Inner = nil
			return &p
		},
	}
	for i, mutate := range cases {
		err := Verify(params, inst, io, mutate(*proof))
		if !errors.Is(err, zkerr.ErrMalformedProof) {
			t.Fatalf("case %d: want ErrMalformedProof, got %v", i, err)
		}
	}
}

// TestProveContainsWorkerPanic injects a fault that detonates inside a
// par worker goroutine (an out-of-range column index in the sparse
// matrix, hit during the parallel SpMV) and checks it surfaces as a typed
// error from Prove instead of crashing the process.
func TestProveContainsWorkerPanic(t *testing.T) {
	inst, io, w := buildFibonacci(10, 1, 2)
	// Corrupt a matrix entry: the SpMV worker indexes z out of range.
	corrupted := false
	for i := range inst.A.Rows {
		if len(inst.A.Rows[i]) > 0 {
			inst.A.Rows[i][0].Col = 1 << 30
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatal("no matrix entry to corrupt")
	}
	_, err := Prove(TestParams(), inst, io, w)
	if err == nil {
		t.Fatal("corrupted instance proved successfully")
	}
	if !errors.Is(err, zkerr.ErrInternal) {
		t.Fatalf("want ErrInternal from contained panic, got %v", err)
	}
}
