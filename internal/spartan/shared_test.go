package spartan

import (
	"bytes"
	"context"
	"testing"

	"nocap/internal/field"
)

// TestSharedProveByteIdentical checks the batched prover's core
// contract: with ZK off (deterministic proofs), a proof produced
// through a shared-structure plan is byte-identical to the solo proof
// of the same statement, for every member of the batch.
func TestSharedProveByteIdentical(t *testing.T) {
	inst, io, w := buildFibonacci(20, 3, 4)
	for _, recompute := range []bool{false, true} {
		params := TestParams()
		params.PCS.ZK = false
		params.Recompute = recompute
		params.Reps = 2

		solo, err := Prove(params, inst, io, w)
		if err != nil {
			t.Fatalf("recompute=%v: solo prove: %v", recompute, err)
		}
		soloBytes, err := solo.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal solo: %v", err)
		}

		sh, err := NewSharedCtx(context.Background(), params, inst, io, w)
		if err != nil {
			t.Fatalf("recompute=%v: NewSharedCtx: %v", recompute, err)
		}
		for member := 0; member < 4; member++ {
			p, err := sh.ProveCtx(context.Background())
			if err != nil {
				t.Fatalf("recompute=%v member %d: shared prove: %v", recompute, member, err)
			}
			got, err := p.MarshalBinary()
			if err != nil {
				t.Fatalf("marshal member %d: %v", member, err)
			}
			if !bytes.Equal(got, soloBytes) {
				t.Fatalf("recompute=%v member %d: shared proof differs from solo proof (%d vs %d bytes)",
					recompute, member, len(got), len(soloBytes))
			}
		}
	}
}

// TestSharedProveZKVerifies checks that with ZK on (nondeterministic
// proofs) every member proof produced through a shared plan still
// verifies independently.
func TestSharedProveZKVerifies(t *testing.T) {
	inst, io, w := buildFibonacci(20, 3, 4)
	params := TestParams()

	sh, err := NewSharedCtx(context.Background(), params, inst, io, w)
	if err != nil {
		t.Fatalf("NewSharedCtx: %v", err)
	}
	for member := 0; member < 3; member++ {
		p, err := sh.ProveCtx(context.Background())
		if err != nil {
			t.Fatalf("member %d: shared prove: %v", member, err)
		}
		if err := Verify(params, inst, io, p); err != nil {
			t.Fatalf("member %d: verify: %v", member, err)
		}
	}
}

// TestSharedProveRejectsBadWitness checks that plan construction runs
// the satisfaction check.
func TestSharedProveRejectsBadWitness(t *testing.T) {
	inst, io, w := buildFibonacci(10, 3, 4)
	w2 := append([]field.Element(nil), w...)
	w2[0] = field.Add(w2[0], field.One)
	if _, err := NewSharedCtx(context.Background(), TestParams(), inst, io, w2); err == nil {
		t.Fatal("NewSharedCtx accepted an unsatisfying witness")
	}
}
