package spartan

import (
	"math/rand"
	"testing"

	"nocap/internal/field"
	"nocap/internal/r1cs"
)

// buildFibonacci builds a chain circuit: x_{i+1} = x_i² + x_{i-1},
// proving knowledge of a seed pair reaching a public final value.
func buildFibonacci(steps int, a, b uint64) (*r1cs.Instance, []field.Element, []field.Element) {
	bd := r1cs.NewBuilder()
	prev := bd.Secret(field.New(a))
	cur := bd.Secret(field.New(b))
	for i := 0; i < steps; i++ {
		sq := bd.Square(r1cs.FromVar(cur))
		next := bd.Secret(bd.Eval(r1cs.AddLC(r1cs.FromVar(sq), r1cs.FromVar(prev))))
		bd.AssertEq(r1cs.AddLC(r1cs.FromVar(sq), r1cs.FromVar(prev)), r1cs.FromVar(next))
		prev, cur = cur, next
	}
	out := bd.Public(bd.Value(cur))
	bd.AssertEq(r1cs.FromVar(cur), r1cs.FromVar(out))
	return bd.Build()
}

func TestProveVerifyRoundTrip(t *testing.T) {
	inst, io, w := buildFibonacci(20, 3, 4)
	proof, err := Prove(TestParams(), inst, io, w)
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	if err := Verify(TestParams(), inst, io, proof); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestThreeRepetitions(t *testing.T) {
	params := TestParams()
	params.Reps = 3 // the paper's soundness amplification
	inst, io, w := buildFibonacci(30, 5, 6)
	proof, err := Prove(params, inst, io, w)
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	if len(proof.Reps) != 3 || len(proof.WEvals) != 3 {
		t.Fatal("repetition structure wrong")
	}
	if err := Verify(params, inst, io, proof); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestNonZKMode(t *testing.T) {
	params := TestParams()
	params.PCS.ZK = false
	inst, io, w := buildFibonacci(10, 1, 2)
	proof, err := Prove(params, inst, io, w)
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	if err := Verify(params, inst, io, proof); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestRejectsWrongPublicInput(t *testing.T) {
	inst, io, w := buildFibonacci(20, 3, 4)
	proof, err := Prove(TestParams(), inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]field.Element(nil), io...)
	bad[0] = field.Add(bad[0], field.One)
	if Verify(TestParams(), inst, bad, proof) == nil {
		t.Fatal("proof accepted for wrong public input")
	}
}

func TestRejectsUnsatisfiedWitness(t *testing.T) {
	inst, io, w := buildFibonacci(20, 3, 4)
	w[0] = field.Add(w[0], field.One)
	if _, err := Prove(TestParams(), inst, io, w); err == nil {
		t.Fatal("prover accepted bad witness")
	}
}

func TestRejectsForeignProof(t *testing.T) {
	instA, ioA, wA := buildFibonacci(20, 3, 4)
	instB, _, _ := buildFibonacci(21, 3, 4) // different circuit, same shape class
	proof, err := Prove(TestParams(), instA, ioA, wA)
	if err != nil {
		t.Fatal(err)
	}
	// The instance digest is bound into the transcript: a proof for
	// circuit A must not verify against circuit B.
	if Verify(TestParams(), instB, ioA, proof) == nil {
		t.Fatal("proof accepted under different circuit")
	}
}

func TestRejectsTamperedClaims(t *testing.T) {
	inst, io, w := buildFibonacci(15, 2, 3)
	proof, err := Prove(TestParams(), inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	proof.Reps[0].VA = field.Add(proof.Reps[0].VA, field.One)
	if Verify(TestParams(), inst, io, proof) == nil {
		t.Fatal("tampered vA accepted")
	}
}

func TestRejectsTamperedWEval(t *testing.T) {
	inst, io, w := buildFibonacci(15, 2, 3)
	proof, err := Prove(TestParams(), inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	proof.WEvals[0] = field.Add(proof.WEvals[0], field.One)
	if Verify(TestParams(), inst, io, proof) == nil {
		t.Fatal("tampered witness evaluation accepted")
	}
}

func TestRejectsTamperedSumcheck(t *testing.T) {
	inst, io, w := buildFibonacci(15, 2, 3)
	proof, err := Prove(TestParams(), inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	proof.Reps[0].Inner.RoundPolys[0][0] =
		field.Add(proof.Reps[0].Inner.RoundPolys[0][0], field.One)
	if Verify(TestParams(), inst, io, proof) == nil {
		t.Fatal("tampered inner sumcheck accepted")
	}
}

func TestRejectsShapeMismatch(t *testing.T) {
	inst, io, w := buildFibonacci(15, 2, 3)
	proof, err := Prove(TestParams(), inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	params := TestParams()
	params.Reps = 2
	if Verify(params, inst, io, proof) == nil {
		t.Fatal("wrong repetition count accepted")
	}
}

func TestProveRejectsBadWitnessLength(t *testing.T) {
	inst, io, w := buildFibonacci(10, 1, 1)
	if _, err := Prove(TestParams(), inst, io, w[:len(w)-1]); err == nil {
		t.Fatal("short witness accepted")
	}
}

func TestZeroKnowledgeProofsDiffer(t *testing.T) {
	// Two proofs of the same statement must differ (fresh PCS randomness).
	inst, io, w := buildFibonacci(10, 1, 2)
	p1, err := Prove(TestParams(), inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Prove(TestParams(), inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Commitment.Root == p2.Commitment.Root {
		t.Fatal("ZK commitments identical across proofs")
	}
}

func TestProofSizeReported(t *testing.T) {
	inst, io, w := buildFibonacci(20, 3, 4)
	proof, err := Prove(TestParams(), inst, io, w)
	if err != nil {
		t.Fatal(err)
	}
	if proof.SizeBytes() < 1000 {
		t.Fatalf("implausible proof size %d", proof.SizeBytes())
	}
}

func TestLargerInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance")
	}
	inst, io, w := buildFibonacci(1000, 9, 11)
	params := TestParams()
	params.PCS.Rows = 32
	proof, err := Prove(params, inst, io, w)
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	if err := Verify(params, inst, io, proof); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestPublicEvalMatchesMLE(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	io := make([]field.Element, 5)
	for i := range io {
		io[i] = field.New(rng.Uint64())
	}
	u := make([]field.Element, 16)
	u[0] = field.One
	copy(u[1:], io)
	r := make([]field.Element, 4)
	for i := range r {
		r[i] = field.New(rng.Uint64())
	}
	want := evalDense(u, r)
	if got := publicEval(io, r); got != want {
		t.Fatalf("publicEval = %v, want %v", got, want)
	}
}

// evalDense is a reference MLE evaluation used only in tests.
func evalDense(v []field.Element, r []field.Element) field.Element {
	cur := append([]field.Element(nil), v...)
	for _, ri := range r {
		half := len(cur) / 2
		next := make([]field.Element, half)
		for i := range next {
			next[i] = field.Add(field.Mul(cur[i], field.Sub(field.One, ri)), field.Mul(cur[i+half], ri))
		}
		cur = next
	}
	return cur[0]
}

func BenchmarkProveFib200(b *testing.B) {
	inst, io, w := buildFibonacci(200, 3, 4)
	params := TestParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Prove(params, inst, io, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyFib200(b *testing.B) {
	inst, io, w := buildFibonacci(200, 3, 4)
	params := TestParams()
	proof, err := Prove(params, inst, io, w)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(params, inst, io, proof); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPaperParameterProof runs the full paper configuration (3
// repetitions, 128 Orion rows, ZK on) on a 2^14-constraint instance —
// the closest laptop-scale approximation of a production proof.
func TestPaperParameterProof(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-parameter proof is slow")
	}
	bd := r1cs.NewBuilder()
	prev := bd.Secret(field.New(3))
	cur := bd.Secret(field.New(4))
	for i := 0; i < 1<<13; i++ {
		sq := bd.Square(r1cs.FromVar(cur))
		next := bd.Secret(bd.Eval(r1cs.AddLC(r1cs.FromVar(sq), r1cs.FromVar(prev))))
		bd.AssertEq(r1cs.AddLC(r1cs.FromVar(sq), r1cs.FromVar(prev)), r1cs.FromVar(next))
		prev, cur = cur, next
	}
	out := bd.Public(bd.Value(cur))
	bd.AssertEq(r1cs.FromVar(cur), r1cs.FromVar(out))
	inst, io, w := bd.Build()

	params := DefaultParams() // the real thing: 3 reps, 128 rows, ZK
	proof, err := Prove(params, inst, io, w)
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	if err := Verify(params, inst, io, proof); err != nil {
		t.Fatalf("verify: %v", err)
	}
	t.Logf("paper-parameter proof at 2^%d constraints: %.2f MB",
		inst.LogConstraints(), float64(proof.SizeBytes())/1e6)

	// Serialization survives at production parameters too.
	data, err := proof.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := UnmarshalProof(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(params, inst, io, dec); err != nil {
		t.Fatalf("decoded: %v", err)
	}
}
