// Package isa defines NoCap's vector instruction set (paper §IV-A): a
// statically scheduled machine whose functional units each consume their
// own instruction stream (distributed control). Vector operands are
// k-element vectors with k a power of two between 2^7 and 2^16; loops
// with fixed trip counts are expressed with Repeat (the paper's simple
// branches with a trip count), which keeps programs for billion-element
// proofs compact.
//
// Programs in this package are what the task compilers of
// internal/tasks emit and what the cycle-level simulator of internal/sim
// executes.
package isa

import "fmt"

// FU identifies a functional unit (or the memory interface), each with
// its own instruction stream (paper §IV-A "distributed control").
type FU int

// The functional units of paper Fig. 3.
const (
	FUMul FU = iota
	FUAdd
	FUHash
	FUShuffle
	FUNTT
	FUMem
	NumFU
)

// String implements fmt.Stringer.
func (f FU) String() string {
	switch f {
	case FUMul:
		return "mul"
	case FUAdd:
		return "add"
	case FUHash:
		return "hash"
	case FUShuffle:
		return "shuffle"
	case FUNTT:
		return "ntt"
	case FUMem:
		return "mem"
	}
	return fmt.Sprintf("fu(%d)", int(f))
}

// Op is a vector opcode (paper §IV-A instruction set).
type Op int

// Opcodes. OpDelay and OpBranch are the control instructions; OpBranch
// is represented implicitly by Instr.Repeat (a taken-count branch).
const (
	OpVMul Op = iota
	OpVAdd
	OpVHash
	OpVShuffle
	OpVNTT
	OpVINTT
	OpLoad
	OpStore
	OpDelay
)

// String implements fmt.Stringer.
func (o Op) String() string {
	names := []string{"vmul", "vadd", "vhash", "vshuffle", "vntt", "vintt", "load", "store", "delay"}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// fuOf maps opcodes to the unit that executes them.
func fuOf(op Op) FU {
	switch op {
	case OpVMul:
		return FUMul
	case OpVAdd:
		return FUAdd
	case OpVHash:
		return FUHash
	case OpVShuffle:
		return FUShuffle
	case OpVNTT, OpVINTT:
		return FUNTT
	case OpLoad, OpStore:
		return FUMem
	}
	return FUMul
}

// Vector-length bounds (paper §IV-A: k between 2^7 and 2^16).
const (
	MinVecLen = 1 << 7
	MaxVecLen = 1 << 16
)

// Instr is one vector instruction: process VecLen elements, Repeat times
// (Repeat encodes the fixed-trip-count branch wrapped around it).
// OpDelay uses VecLen as a cycle count.
type Instr struct {
	Op     Op
	VecLen int
	Repeat int64
}

// Elems returns the total number of elements the instruction processes.
func (in Instr) Elems() int64 { return int64(in.VecLen) * in.Repeat }

// validate checks ISA constraints.
func (in Instr) validate() error {
	if in.Repeat < 1 {
		return fmt.Errorf("isa: repeat %d < 1", in.Repeat)
	}
	if in.Op == OpDelay {
		return nil
	}
	v := in.VecLen
	if v < MinVecLen || v > MaxVecLen || v&(v-1) != 0 {
		return fmt.Errorf("isa: vector length %d outside [2^7, 2^16] powers of two", v)
	}
	return nil
}

// Stream is one FU's instruction sequence.
type Stream struct {
	FU     FU
	Instrs []Instr
}

// Program is a complete task binary: one stream per functional unit plus
// metadata the simulator needs (working-set size for register-file spill
// modeling).
type Program struct {
	Name string
	// Streams holds per-FU instruction streams (missing entries = idle FU).
	Streams [NumFU][]Instr
	// WorkingSetBytes is the on-chip footprint of the task's intermediates
	// (the sumcheck recomputation state that motivates the 8 MB register
	// file, paper §V-A / Fig. 7).
	WorkingSetBytes int64
}

// NewProgram returns an empty program.
func NewProgram(name string) *Program { return &Program{Name: name} }

// Emit appends an instruction to the stream of the unit that executes op.
// Zero-element instructions are dropped.
func (p *Program) Emit(op Op, vecLen int, repeat int64) {
	if repeat <= 0 {
		return
	}
	in := Instr{Op: op, VecLen: vecLen, Repeat: repeat}
	if err := in.validate(); err != nil {
		panic(err.Error())
	}
	fu := fuOf(op)
	p.Streams[fu] = append(p.Streams[fu], in)
}

// EmitDelay appends an explicit delay of the given cycle count to one
// unit's stream (the §IV-A control instruction the static scheduler uses
// to align distributed streams).
func (p *Program) EmitDelay(fu FU, cycles int64) {
	if cycles <= 0 {
		return
	}
	p.Streams[fu] = append(p.Streams[fu], Instr{Op: OpDelay, VecLen: int(cycles), Repeat: 1})
}

// EmitElems emits enough full vectors (of MaxVecLen, plus a remainder
// vector) to cover n elements with the given opcode. It is the assembler
// helper the task compilers use for bulk work.
func (p *Program) EmitElems(op Op, n int64) {
	if n <= 0 {
		return
	}
	full := n / MaxVecLen
	if full > 0 {
		p.Emit(op, MaxVecLen, full)
	}
	if rem := n % MaxVecLen; rem > 0 {
		v := MinVecLen
		for int64(v) < rem {
			v <<= 1
		}
		p.Emit(op, v, 1)
	}
}

// Elems returns the total elements processed on one unit.
func (p *Program) Elems(fu FU) int64 {
	var n int64
	for _, in := range p.Streams[fu] {
		if in.Op != OpDelay {
			n += in.Elems()
		}
	}
	return n
}

// DelayCycles returns the total explicit delay scheduled on a unit.
func (p *Program) DelayCycles(fu FU) int64 {
	var n int64
	for _, in := range p.Streams[fu] {
		if in.Op == OpDelay {
			n += int64(in.VecLen) * in.Repeat
		}
	}
	return n
}

// MemBytes returns the HBM traffic of the program (8 bytes per element
// loaded or stored).
func (p *Program) MemBytes() int64 {
	return 8 * p.Elems(FUMem)
}

// HashBytes returns bytes pushed through the hash unit.
func (p *Program) HashBytes() int64 {
	return 8 * p.Elems(FUHash)
}

// NumInstrs returns the total instruction count across streams — the
// paper's compact-code-size claim is testable with this.
func (p *Program) NumInstrs() int {
	n := 0
	for fu := FU(0); fu < NumFU; fu++ {
		n += len(p.Streams[fu])
	}
	return n
}

// ShuffleControlBits is the Beneš switch state embedded in each shuffle
// instruction: (2·log₂128 − 1)·64 = 832 bits for the 128-lane network,
// i.e. the paper's "7 bits per 64-bit element" (§IV-B). The benes
// package's router produces exactly this much state (cross-checked in
// tests).
const ShuffleControlBits = 832

// instrWordBytes is the packed size of one non-shuffle instruction:
// opcode, vector length, and trip count in one 64-bit template slot.
const instrWordBytes = 8

// CodeBytes estimates the program's instruction-memory footprint — what
// is prefetched into the on-chip instruction buffers (§IV-A). Shuffle
// instructions carry their Beneš control state inline.
func (p *Program) CodeBytes() int {
	bytes := 0
	for fu := FU(0); fu < NumFU; fu++ {
		for _, in := range p.Streams[fu] {
			bytes += instrWordBytes
			if in.Op == OpVShuffle {
				// One routed network per 128-element pass; wide vectors
				// reuse the same configuration across row links (§IV-B).
				bytes += ShuffleControlBits / 8
			}
		}
	}
	return bytes
}
