package isa

import "testing"

func TestEmitAndCounts(t *testing.T) {
	p := NewProgram("test")
	p.Emit(OpVMul, 2048, 10)
	p.Emit(OpVAdd, 128, 1)
	p.Emit(OpLoad, 65536, 2)
	p.Emit(OpStore, 128, 1)
	if p.Elems(FUMul) != 20480 {
		t.Fatalf("mul elems %d", p.Elems(FUMul))
	}
	if p.Elems(FUAdd) != 128 {
		t.Fatalf("add elems %d", p.Elems(FUAdd))
	}
	if p.MemBytes() != 8*(2*65536+128) {
		t.Fatalf("mem bytes %d", p.MemBytes())
	}
}

func TestEmitElemsCoversExactly(t *testing.T) {
	p := NewProgram("test")
	p.EmitElems(OpVMul, 3*65536+5000)
	got := p.Elems(FUMul)
	// Full vectors exactly; remainder rounded up to a power-of-two vector.
	if got < 3*65536+5000 || got > 3*65536+8192 {
		t.Fatalf("covered %d elements", got)
	}
}

func TestEmitElemsZeroAndNegative(t *testing.T) {
	p := NewProgram("test")
	p.EmitElems(OpVMul, 0)
	p.EmitElems(OpVMul, -5)
	if p.NumInstrs() != 0 {
		t.Fatal("empty emits produced instructions")
	}
}

func TestVectorLengthBounds(t *testing.T) {
	for _, v := range []int{64, 100, 1 << 17} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("veclen %d: expected panic", v)
				}
			}()
			NewProgram("x").Emit(OpVMul, v, 1)
		}()
	}
	// Bounds themselves are legal (paper §IV-A: 2^7 … 2^16).
	p := NewProgram("x")
	p.Emit(OpVMul, MinVecLen, 1)
	p.Emit(OpVMul, MaxVecLen, 1)
}

func TestDelay(t *testing.T) {
	p := NewProgram("test")
	p.Emit(OpDelay, 100, 3)
	if p.DelayCycles(FUMul) != 300 {
		t.Fatalf("delay cycles %d", p.DelayCycles(FUMul))
	}
	if p.Elems(FUMul) != 0 {
		t.Fatal("delay counted as elements")
	}
}

func TestFUAndOpStrings(t *testing.T) {
	if FUMul.String() != "mul" || FUNTT.String() != "ntt" || FUMem.String() != "mem" {
		t.Fatal("FU names wrong")
	}
	if OpVHash.String() != "vhash" || OpLoad.String() != "load" {
		t.Fatal("op names wrong")
	}
}

func TestCompactPrograms(t *testing.T) {
	// A billion-element workload must compile to a handful of
	// instructions (the paper's compact-code-size claim, §IV-A).
	p := NewProgram("big")
	p.EmitElems(OpVMul, 1<<33)
	if p.NumInstrs() > 2 {
		t.Fatalf("2^33 elements took %d instructions", p.NumInstrs())
	}
}

func TestCodeBytes(t *testing.T) {
	p := NewProgram("t")
	p.Emit(OpVMul, 2048, 1000)
	if p.CodeBytes() != 8 {
		t.Fatalf("plain instruction %d bytes", p.CodeBytes())
	}
	p.Emit(OpVShuffle, 128, 1)
	if p.CodeBytes() != 8+8+ShuffleControlBits/8 {
		t.Fatalf("shuffle code size %d", p.CodeBytes())
	}
}
