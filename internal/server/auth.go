package server

import (
	"context"
	"net/http"
	"strings"

	"nocap/internal/tenant"
)

// Tenant resolution (DESIGN.md §12): every tenant-scoped endpoint runs
// behind withTenant, which maps the request's API key to a *tenant.
// Tenant and stashes it in the request context. Requests without a key
// are the anonymous default tenant — deliberately, so a single-tenant
// deployment needs no keys at all — while a key the registry does not
// know is a hard 401: silently demoting a mistyped key to the default
// tenant would hand one tenant another's (smaller) quota and hide the
// misconfiguration.

type tenantCtxKey struct{}

// apiKey extracts the request's API key from X-API-Key or
// Authorization: Bearer; empty means anonymous.
func apiKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
		return strings.TrimSpace(strings.TrimPrefix(auth, "Bearer "))
	}
	return ""
}

// withTenant authenticates the request and threads its tenant through
// the context. Unknown keys are answered 401 {"code":"unauthorized"}.
func (s *Server) withTenant(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key := apiKey(r)
		var ten *tenant.Tenant
		if key == "" {
			ten = s.reg.Default()
		} else {
			var ok bool
			if ten, ok = s.reg.ByKey(key); !ok {
				s.metrics.authRejected.Add(1)
				s.metrics.clientErrors.Add(1)
				writeError(w, http.StatusUnauthorized, "unknown API key", "unauthorized")
				return
			}
		}
		h(w, r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, ten)))
	}
}

// tenantFor returns the tenant withTenant resolved, or the default
// tenant for paths that did not pass through it.
func (s *Server) tenantFor(r *http.Request) *tenant.Tenant {
	if t, ok := r.Context().Value(tenantCtxKey{}).(*tenant.Tenant); ok {
		return t
	}
	return s.reg.Default()
}
