package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nocap/internal/faultinject"
	"nocap/internal/jobs"
	"nocap/internal/leakcheck"
	"nocap/internal/zkerr"
)

// jobsConfig is testConfig plus a data directory for the async API.
func jobsConfig(t *testing.T) Config {
	t.Helper()
	cfg := testConfig()
	cfg.DataDir = t.TempDir()
	cfg.JobBackoffBase = 2 * time.Millisecond
	cfg.JobBackoffMax = 10 * time.Millisecond
	return cfg
}

// waitReady polls /readyz until it answers 200.
func waitReady(t *testing.T, client *http.Client, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// submitJob POSTs a job and returns its id.
func submitJob(t *testing.T, client *http.Client, base string, req ProveRequest) string {
	t.Helper()
	status, body := postJSON(t, client, base+"/jobs", req)
	if status != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d: %s", status, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatalf("job response: %v: %s", err, body)
	}
	if jr.ID == "" || jr.State != "accepted" {
		t.Fatalf("job response %s", body)
	}
	return jr.ID
}

// getJob GETs /jobs/{id} with the given query string ("" or "?proof=1")
// and decodes the response.
func getJob(t *testing.T, client *http.Client, base, id, query string) JobResponse {
	t.Helper()
	resp, err := client.Get(base + "/jobs/" + id + query)
	if err != nil {
		t.Fatalf("GET /jobs/%s%s: %v", id, query, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s%s: status %d: %s", id, query, resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatalf("job body: %v: %s", err, body)
	}
	return jr
}

// pollJob GETs /jobs/{id} until the job is terminal. Status polls never
// carry the proof payload (pinned here for every polling test); once
// the job is done, the proof is fetched exactly once with ?proof=1 and
// that full response is returned.
func pollJob(t *testing.T, client *http.Client, base, id string) JobResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		jr := getJob(t, client, base, id, "")
		if jr.ProofB64 != "" {
			t.Fatalf("status poll for %s carried the proof payload (%d b64 bytes)", id, len(jr.ProofB64))
		}
		switch jr.State {
		case "done":
			return getJob(t, client, base, id, "?proof=1")
		case "failed", "cancelled":
			return jr
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, jr.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobsAsyncLifecycle drives the full async path with the REAL
// prover: submit, poll to done, decode the proof, and verify it through
// the synchronous endpoint — proving the journaled payload round-trips
// into a cryptographically valid proof with per-run stats attached.
func TestJobsAsyncLifecycle(t *testing.T) {
	_, base, _ := startServer(t, jobsConfig(t))
	client := &http.Client{Timeout: time.Minute}
	waitReady(t, client, base)

	id := submitJob(t, client, base, ProveRequest{Circuit: "synthetic", N: 64})
	jr := pollJob(t, client, base, id)
	if jr.State != "done" {
		t.Fatalf("job %s: state %s (err %q code %q)", id, jr.State, jr.Error, jr.Code)
	}
	if jr.Attempts != 1 {
		t.Fatalf("attempts %d, want 1", jr.Attempts)
	}
	if jr.ProofB64 == "" || jr.ProofBytes == 0 {
		t.Fatalf("done job without proof: %+v", jr)
	}
	// Per-run collector stats surfaced on completion.
	var stats StatsJSON
	if err := json.Unmarshal(jr.Stats, &stats); err != nil {
		t.Fatalf("job stats: %v: %s", err, jr.Stats)
	}
	if stats.Stages["sumcheck"].Calls == 0 {
		t.Fatalf("job stats missing kernel work: %s", jr.Stats)
	}
	if stats.Arena.Outstanding != 0 {
		t.Fatalf("job leaked %d arena checkouts", stats.Arena.Outstanding)
	}
	// The async proof verifies through the sync endpoint.
	status, body := postJSON(t, client, base+"/verify",
		VerifyRequest{Circuit: "synthetic", N: 64, ProofB64: jr.ProofB64})
	if status != http.StatusOK || !strings.Contains(string(body), `"valid":true`) {
		t.Fatalf("async proof failed verification: %d %s", status, body)
	}
}

// TestJobsProofOnDemand pins the poll/payload split: GET /jobs/{id}
// answers status (state, attempts, proof_bytes) without the proof, and
// only ?proof=1 (or ?proof=true) pays the base64 transfer.
func TestJobsProofOnDemand(t *testing.T) {
	_, base, _ := startServer(t, jobsConfig(t))
	client := &http.Client{Timeout: time.Minute}
	waitReady(t, client, base)

	id := submitJob(t, client, base, ProveRequest{Circuit: "synthetic", N: 64})
	jr := pollJob(t, client, base, id) // asserts polls are payload-free
	if jr.State != "done" || jr.ProofB64 == "" {
		t.Fatalf("job %s: state %s, proof present %v", id, jr.State, jr.ProofB64 != "")
	}
	// A plain GET after completion still omits the payload but keeps the
	// metadata a poller needs.
	plain := getJob(t, client, base, id, "")
	if plain.ProofB64 != "" {
		t.Fatalf("plain GET on done job returned the proof payload")
	}
	if plain.ProofBytes == 0 || plain.State != "done" {
		t.Fatalf("plain GET lost job metadata: %+v", plain)
	}
	if withProof := getJob(t, client, base, id, "?proof=true"); withProof.ProofB64 != jr.ProofB64 {
		t.Fatalf("?proof=true and ?proof=1 disagree")
	}
	if raw, err := base64.StdEncoding.DecodeString(jr.ProofB64); err != nil || len(raw) != jr.ProofBytes {
		t.Fatalf("proof_b64 decode: %v (got %d bytes, proof_bytes %d)", err, len(jr.ProofB64), jr.ProofBytes)
	}
}

// TestJobsValidationBeforeAccept: a request that could never prove gets
// a 400 at submit time, not an accepted job that fails later.
func TestJobsValidationBeforeAccept(t *testing.T) {
	_, base, _ := startServer(t, jobsConfig(t))
	client := &http.Client{Timeout: time.Minute}
	waitReady(t, client, base)
	status, body := postJSON(t, client, base+"/jobs", ProveRequest{Circuit: "no-such-circuit", N: 64})
	if status != http.StatusBadRequest {
		t.Fatalf("bad circuit: status %d: %s", status, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Code != "usage" {
		t.Fatalf("bad circuit: want typed usage error, got %s", body)
	}
}

// TestJobsRetryThenSuccessHTTP injects one fault at the jobs-layer
// attempt point and asserts the retry is observable end-to-end:
// attempts > 1 on the polled job, retry counter in /metrics.
func TestJobsRetryThenSuccessHTTP(t *testing.T) {
	defer faultinject.Disarm()
	faultinject.MustArm(faultinject.Plan{Point: "jobs.attempt.exec", Kind: faultinject.Error})
	_, base, _ := startServer(t, jobsConfig(t))
	client := &http.Client{Timeout: time.Minute}
	waitReady(t, client, base)

	id := submitJob(t, client, base, ProveRequest{Circuit: "synthetic", N: 64})
	jr := pollJob(t, client, base, id)
	if jr.State != "done" {
		t.Fatalf("state %s (err %q), want done after retry", jr.State, jr.Error)
	}
	if jr.Attempts != 2 {
		t.Fatalf("attempts %d, want 2", jr.Attempts)
	}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"nocap_jobs_retries_total 1",
		"nocap_jobs_done_total 1",
		"nocap_jobs_accepted_total 1",
		"nocap_jobs_breaker_state 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestJobsCancelHTTP cancels a running job via DELETE and pins the
// typed 404/409 responses around it.
func TestJobsCancelHTTP(t *testing.T) {
	started := make(chan struct{}, 1)
	cfg := jobsConfig(t)
	cfg.JobsExec = func(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return jobs.Result{}, ctx.Err()
	}
	_, base, _ := startServer(t, cfg)
	client := &http.Client{Timeout: time.Minute}
	waitReady(t, client, base)

	id := submitJob(t, client, base, ProveRequest{Circuit: "synthetic", N: 64})
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}
	del := func(path string) (int, []byte) {
		req, _ := http.NewRequest(http.MethodDelete, base+path, nil)
		resp, err := client.Do(req)
		if err != nil {
			t.Fatalf("DELETE %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, body
	}
	if status, body := del("/jobs/j-does-not-exist"); status != http.StatusNotFound ||
		!strings.Contains(string(body), `"code":"unknown-job"`) {
		t.Fatalf("DELETE unknown job: %d %s", status, body)
	}
	if status, body := del("/jobs/" + id); status != http.StatusAccepted {
		t.Fatalf("DELETE running job: %d %s", status, body)
	}
	jr := pollJob(t, client, base, id)
	if jr.State != "cancelled" {
		t.Fatalf("state %s, want cancelled", jr.State)
	}
	// Double-cancel is idempotent: the same terminal state comes back
	// with 200, not a conflict (DESIGN.md §12). Repeat it to pin that the
	// answer is stable, not first-call-only.
	for i := 0; i < 2; i++ {
		if status, body := del("/jobs/" + id); status != http.StatusOK ||
			!strings.Contains(string(body), `"state":"cancelled"`) {
			t.Fatalf("DELETE cancelled job (try %d): %d %s", i, status, body)
		}
	}
}

// TestJobsBreakerOpensAndSheds: consecutive internal failures trip the
// breaker; further submissions get a typed 503 with Retry-After, and
// /readyz reports the open breaker.
func TestJobsBreakerOpensAndSheds(t *testing.T) {
	cfg := jobsConfig(t)
	cfg.JobsExec = func(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
		return jobs.Result{}, zkerr.Internalf("backend broken")
	}
	cfg.JobMaxAttempts = 1
	cfg.JobBreakerThreshold = 2
	cfg.JobBreakerCooldown = time.Hour
	_, base, _ := startServer(t, cfg)
	client := &http.Client{Timeout: time.Minute}
	waitReady(t, client, base)

	for i := 0; i < 2; i++ {
		id := submitJob(t, client, base, ProveRequest{Circuit: "synthetic", N: 64})
		jr := pollJob(t, client, base, id)
		if jr.State != "failed" || jr.Code != "internal" {
			t.Fatalf("job %d: state %s code %q, want failed/internal", i, jr.State, jr.Code)
		}
	}
	req, _ := http.NewRequest(http.MethodPost, base+"/jobs", bytes.NewReader([]byte(`{"circuit":"synthetic","n":64}`)))
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit with open breaker: status %d: %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Code != "breaker-open" {
		t.Fatalf("breaker shed not typed: %s", body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("breaker shed Retry-After %q", ra)
	}

	resp, err = client.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), `"code":"breaker-open"`) {
		t.Fatalf("readyz with open breaker: %d %s", resp.StatusCode, body)
	}

	resp, err = client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"nocap_jobs_breaker_state 1", "nocap_jobs_breaker_trips_total 1", "nocap_job_shed_breaker_total 1"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Liveness is unaffected by an open breaker.
	resp, err = client.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz with open breaker: %d, want 200", resp.StatusCode)
	}
}

// TestReadyzDuringRecovery holds journal replay with an injected delay
// and asserts readiness (and job submission) answer a typed 503 until
// recovery finishes, while liveness stays 200 throughout.
func TestReadyzDuringRecovery(t *testing.T) {
	defer faultinject.Disarm()
	faultinject.MustArm(faultinject.Plan{
		Point: "jobs.recover.replay",
		Kind:  faultinject.Delay,
		Sleep: 300 * time.Millisecond,
	})
	s, base, _ := startServer(t, jobsConfig(t))
	client := &http.Client{Timeout: time.Minute}

	if !s.JobsRecovering() {
		t.Fatal("server not in recovery immediately after start")
	}
	resp, err := client.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), `"code":"recovering"`) {
		t.Fatalf("readyz during recovery: %d %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("readyz during recovery missing Retry-After")
	}
	status, body := postJSON(t, client, base+"/jobs", ProveRequest{Circuit: "synthetic", N: 64})
	if status != http.StatusServiceUnavailable || !strings.Contains(string(body), `"code":"recovering"`) {
		t.Fatalf("submit during recovery: %d %s", status, body)
	}
	resp, err = client.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during recovery: %d, want 200 (liveness)", resp.StatusCode)
	}

	waitReady(t, client, base)
	id := submitJob(t, client, base, ProveRequest{Circuit: "synthetic", N: 64})
	if jr := pollJob(t, client, base, id); jr.State != "done" {
		t.Fatalf("post-recovery job: %s", jr.State)
	}
}

// TestJobsDisabledWithoutDataDir pins the typed refusal when the server
// runs without -data-dir.
func TestJobsDisabledWithoutDataDir(t *testing.T) {
	_, base, _ := startServer(t, testConfig())
	client := &http.Client{Timeout: time.Minute}
	status, body := postJSON(t, client, base+"/jobs", ProveRequest{Circuit: "synthetic", N: 64})
	if status != http.StatusNotImplemented || !strings.Contains(string(body), `"code":"jobs-disabled"`) {
		t.Fatalf("jobs without data dir: %d %s", status, body)
	}
}

// TestJobsServerRestartRecovers is the server-level recovery story: a
// job in flight when one server shuts down completes under a second
// server over the same data directory.
func TestJobsServerRestartRecovers(t *testing.T) {
	snap := leakcheck.Take()
	dir := t.TempDir()

	cfg1 := testConfig()
	cfg1.DataDir = dir
	started := make(chan struct{}, 1)
	cfg1.JobsExec = func(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return jobs.Result{}, ctx.Err()
	}
	_, base1, stop1 := startServer(t, cfg1)
	client := &http.Client{Timeout: time.Minute}
	waitReady(t, client, base1)
	id := submitJob(t, client, base1, ProveRequest{Circuit: "synthetic", N: 64})
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started under server 1")
	}
	stop1()
	snap.CheckTimeout(t, 5*time.Second) // server 1 left nothing behind

	var attempts atomic.Int64
	cfg2 := testConfig()
	cfg2.DataDir = dir
	cfg2.JobsExec = func(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
		attempts.Add(1)
		return jobs.Result{Proof: []byte("recovered-proof"), Stats: json.RawMessage(`{}`)}, nil
	}
	_, base2, _ := startServer(t, cfg2)
	waitReady(t, client, base2)
	jr := pollJob(t, client, base2, id)
	if jr.State != "done" {
		t.Fatalf("recovered job: state %s (err %q)", jr.State, jr.Error)
	}
	if !jr.Recovered {
		t.Fatal("job not flagged recovered after restart")
	}
	if attempts.Load() == 0 {
		t.Fatal("recovered job never re-executed")
	}
	want := base64.StdEncoding.EncodeToString([]byte("recovered-proof"))
	if jr.ProofB64 != want {
		t.Fatalf("recovered proof mismatch: %q", jr.ProofB64)
	}
}

// TestShutdownDrainDeadlineDoesNotStrandJobGate reproduces the leak the
// reviewer flagged: a shutdown whose drain deadline expires while async
// attempts are still queued behind a busy worker lets the workers exit
// with entries in s.jobs, and a manager dispatcher used to block in
// jobGate on <-j.done forever (with Manager.Close's drain goroutine
// pinned behind it). The shutdown sweep must release every waiter. The
// worker's quit-vs-queue select is scheduler-random, so the scenario
// runs several times to cover both arms.
func TestShutdownDrainDeadlineDoesNotStrandJobGate(t *testing.T) {
	snap := leakcheck.Take()
	for i := 0; i < 6; i++ {
		cfg := jobsConfig(t)
		cfg.Workers = 1
		cfg.QueueDepth = 2
		cfg.JobWorkers = 2
		started := make(chan struct{}, 4)
		cfg.JobsExec = func(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			// Ignore cancellation long enough that the whole drain
			// (manager close included) hits its deadline with the second
			// attempt still parked in the admission queue.
			time.Sleep(120 * time.Millisecond)
			return jobs.Result{}, ctx.Err()
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for s.JobsRecovering() {
			if time.Now().After(deadline) {
				t.Fatal("jobs manager never finished recovery")
			}
			time.Sleep(time.Millisecond)
		}
		mgr, err := s.jobsManager()
		if err != nil {
			t.Fatalf("jobs manager: %v", err)
		}
		for n := 0; n < 2; n++ {
			if _, err := mgr.Submit(jobs.Spec{Payload: json.RawMessage(`{}`)}); err != nil {
				t.Fatalf("Submit %d: %v", n, err)
			}
		}
		select {
		case <-started:
		case <-time.After(10 * time.Second):
			t.Fatal("first attempt never reached the worker")
		}
		for depth, _, _ := s.Queue(); depth == 0; depth, _, _ = s.Queue() {
			if time.Now().After(deadline) {
				t.Fatal("second attempt never queued")
			}
			time.Sleep(time.Millisecond)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		_ = s.Shutdown(ctx) // deadline error is the point of the scenario
		cancel()
	}
	snap.CheckTimeout(t, 10*time.Second)
}

// TestStatusCodeTaxonomy is the satellite's table: every zkerr class
// (plus panic-recovered internals, deadline, cancel, and untyped
// errors) maps through statusFor/writeTaxonomyError to a stable
// (status, code) pair — the machine-readable contract clients and the
// loadgen assert against.
func TestStatusCodeTaxonomy(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	panicErr := func() (err error) {
		defer zkerr.RecoverTo(&err, "test")
		panic("boom")
	}()

	cases := []struct {
		name       string
		err        error
		wantStatus int
		wantCode   string
	}{
		{"usage", zkerr.Usagef("bad flag"), http.StatusBadRequest, "usage"},
		{"malformed-proof", zkerr.Malformedf("truncated"), http.StatusBadRequest, "malformed-proof"},
		{"bad-commitment", zkerr.BadCommitmentf("geometry"), http.StatusBadRequest, "bad-commitment"},
		{"soundness", zkerr.Soundnessf("round check"), http.StatusUnprocessableEntity, "soundness-check-failed"},
		{"resource-limit", zkerr.Resourcef("too big"), http.StatusRequestEntityTooLarge, "resource-limit"},
		{"internal", zkerr.Internalf("invariant"), http.StatusInternalServerError, "internal"},
		{"panic-recovered", panicErr, http.StatusInternalServerError, "internal"},
		{"deadline", context.DeadlineExceeded, http.StatusGatewayTimeout, "deadline"},
		{"wrapped-deadline", fmt.Errorf("prove: %w", context.DeadlineExceeded), http.StatusGatewayTimeout, "deadline"},
		{"canceled", context.Canceled, http.StatusServiceUnavailable, "canceled"},
		{"untyped", errors.New("mystery"), http.StatusInternalServerError, "error"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := statusFor(tc.err); got != tc.wantStatus {
				t.Errorf("statusFor = %d, want %d", got, tc.wantStatus)
			}
			rec := httptest.NewRecorder()
			s.writeTaxonomyError(rec, tc.err)
			if rec.Code != tc.wantStatus {
				t.Errorf("written status %d, want %d", rec.Code, tc.wantStatus)
			}
			var er ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
				t.Fatalf("error body: %v: %s", err, rec.Body.String())
			}
			if er.Code != tc.wantCode {
				t.Errorf("code %q, want %q", er.Code, tc.wantCode)
			}
			if er.Error == "" {
				t.Error("empty error message")
			}
		})
	}
}

// TestRetryAfterJitterBounds pins the jitter helper's contract: at
// least the floor, at most floor + spread, always integral seconds.
func TestRetryAfterJitterBounds(t *testing.T) {
	for i := 0; i < 200; i++ {
		v := retryAfterJitter(1500*time.Millisecond, 2)
		n := 0
		if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
			t.Fatalf("Retry-After %q not an integer", v)
		}
		if n < 2 || n > 4 { // ceil(1.5s)=2 … +2 jitter
			t.Fatalf("Retry-After %d outside [2,4]", n)
		}
	}
	if v := retryAfterJitter(0, 0); v != "1" {
		t.Fatalf("zero-duration Retry-After %q, want minimum 1", v)
	}
}

// TestJobsDegradedModeHTTP drives the degraded-mode lifecycle over the
// wire: sustained journal-append failure flips the manager degraded,
// new POST /jobs answer a typed 503 "degraded" with Retry-After while
// synchronous /prove and polls of already-accepted jobs keep serving,
// /readyz stays 200 (with the state in the body) and /metrics report
// the transition — and once the disk heals, a probe write exits
// degraded mode without a restart.
func TestJobsDegradedModeHTTP(t *testing.T) {
	snap := leakcheck.Take()
	cfg := jobsConfig(t)
	cfg.JobsExec = func(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
		return jobs.Result{Proof: []byte("degraded-test-proof"), Stats: json.RawMessage(`{}`)}, nil
	}
	cfg.JobMaxAttempts = 1
	cfg.JobDegradedThreshold = 3
	cfg.JobProbeInterval = 10 * time.Millisecond
	_, base, stopServer := startServer(t, cfg)
	client := &http.Client{Timeout: time.Minute}
	waitReady(t, client, base)

	// A job completed while healthy: its poll must survive degradation.
	doneID := submitJob(t, client, base, ProveRequest{Circuit: "synthetic", N: 64})
	if jr := pollJob(t, client, base, doneID); jr.State != "done" {
		t.Fatalf("healthy job: state %s (err %q)", jr.State, jr.Error)
	}

	// Sustained disk failure: every journal append fails (ENOSPC-style)
	// until disarmed.
	defer faultinject.Disarm()
	faultinject.MustArm(faultinject.Plan{
		Point: "jobs.journal.append",
		Kind:  faultinject.Error,
		Count: 1 << 30,
	})

	// The first JobDegradedThreshold submissions fail loudly (500
	// internal: the append itself errored); the next one is shed with
	// the typed degraded 503.
	for i := 0; i < cfg.JobDegradedThreshold; i++ {
		status, body := postJSON(t, client, base+"/jobs", ProveRequest{Circuit: "synthetic", N: 64})
		if status != http.StatusInternalServerError {
			t.Fatalf("submit %d during disk failure: status %d: %s", i, status, body)
		}
	}
	req, err := http.NewRequest(http.MethodPost, base+"/jobs", strings.NewReader(`{"circuit":"synthetic","n":64}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded submit: status %d: %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("degraded body: %v: %s", err, body)
	}
	if er.Code != "degraded" {
		t.Fatalf("degraded code %q: %s", er.Code, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 missing Retry-After")
	}

	// The non-durable surface keeps working: sync prove, job polls.
	if status, pbody := postJSON(t, client, base+"/prove", ProveRequest{Circuit: "synthetic", N: 64}); status != http.StatusOK {
		t.Fatalf("sync /prove during degraded: status %d: %s", status, pbody)
	}
	if jr := getJob(t, client, base, doneID, ""); jr.State != "done" {
		t.Fatalf("poll during degraded: state %s", jr.State)
	}

	// Readiness stays 200 — only the durable path is down — but the body
	// and /metrics surface the state.
	rresp, err := client.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rbody, _ := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz during degraded: status %d: %s", rresp.StatusCode, rbody)
	}
	if !bytes.Contains(rbody, []byte(`"degraded":true`)) {
		t.Fatalf("/readyz body does not report degraded: %s", rbody)
	}
	mresp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"nocap_jobs_degraded 1", "nocap_job_shed_degraded_total 1", "nocap_jobs_degraded_entries_total 1"} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics during degraded missing %q", want)
		}
	}

	// Disk heals: the next probe write succeeds and degraded mode exits
	// on its own — new submissions are accepted again.
	faultinject.Disarm()
	deadline := time.Now().Add(10 * time.Second)
	var recoveredID string
	for {
		status, sbody := postJSON(t, client, base+"/jobs", ProveRequest{Circuit: "synthetic", N: 64})
		if status == http.StatusAccepted {
			var jr JobResponse
			if err := json.Unmarshal(sbody, &jr); err != nil {
				t.Fatalf("recovered submit body: %v: %s", err, sbody)
			}
			recoveredID = jr.ID
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never recovered from degraded mode (last status %d: %s)", status, sbody)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if jr := pollJob(t, client, base, recoveredID); jr.State != "done" {
		t.Fatalf("post-recovery job: state %s (err %q)", jr.State, jr.Error)
	}
	mresp, err = client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ = io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "nocap_jobs_degraded 0") {
		t.Error("/metrics still reports degraded after recovery")
	}
	client.CloseIdleConnections()
	stopServer()
	snap.Check(t)
}

// TestJobsCompactionBoundsJournalHTTP exercises compaction through the
// server config surface: a tight record cap keeps the journal bounded
// while jobs churn, /metrics exposes the compaction counters, and a
// restart over the compacted state (snapshot + tail) recovers every
// terminal job.
func TestJobsCompactionBoundsJournalHTTP(t *testing.T) {
	cfg := jobsConfig(t)
	cfg.JobsExec = func(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
		return jobs.Result{Proof: []byte("compact-test-proof"), Stats: json.RawMessage(`{}`)}, nil
	}
	cfg.JobJournalMaxRecords = 10
	cfg.JobCompactCheck = 5 * time.Millisecond
	srv, base, stop := startServer(t, cfg)
	client := &http.Client{Timeout: time.Minute}
	waitReady(t, client, base)

	ids := make([]string, 0, 12)
	for i := 0; i < 12; i++ {
		id := submitJob(t, client, base, ProveRequest{Circuit: "synthetic", N: 64})
		if jr := pollJob(t, client, base, id); jr.State != "done" {
			t.Fatalf("job %s: state %s (err %q)", id, jr.State, jr.Error)
		}
		ids = append(ids, id)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		jm := srv.JobsMetrics()
		if jm.Compactions >= 1 && jm.JournalRecords < 2*cfg.JobJournalMaxRecords {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal never compacted: %+v", jm)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mresp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"nocap_jobs_compactions_total", "nocap_jobs_snapshot_bytes", "nocap_jobs_journal_corrupt_records_total"} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	stop()

	// Recovery over snapshot + tail: every job still polls done.
	cfg2 := cfg
	cfg2.JobsExec = func(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
		t.Error("recovered terminal job re-executed")
		return jobs.Result{}, zkerr.Internalf("unexpected re-execution")
	}
	_, base2, _ := startServer(t, cfg2)
	waitReady(t, client, base2)
	for _, id := range ids {
		jr := getJob(t, client, base2, id, "?proof=1")
		if jr.State != "done" {
			t.Fatalf("job %s after compacting restart: state %s", id, jr.State)
		}
		proof, err := base64.StdEncoding.DecodeString(jr.ProofB64)
		if err != nil || string(proof) != "compact-test-proof" {
			t.Fatalf("job %s proof after restart: %q (%v)", id, proof, err)
		}
	}
}
