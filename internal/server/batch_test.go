package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"nocap"
)

// batchJobsConfig is jobsConfig with the batch planner on and ZK off,
// so proofs are deterministic and batched output can be byte-compared
// against the solo path.
func batchJobsConfig(t *testing.T) Config {
	t.Helper()
	cfg := jobsConfig(t)
	params := nocap.TestParams()
	params.PCS.ZK = false
	cfg.Params = params
	cfg.JobBatchWindow = time.Second
	cfg.JobBatchMax = 4
	return cfg
}

// TestJobsBatchedByteIdenticalToSolo drives the REAL prover through the
// batch planner end to end: a lone job proves solo (singleton groups
// bypass BatchExec), then four same-key jobs coalesce into one batched
// attempt — and every member's proof is byte-identical to the solo
// proof. The batch metrics appear on /metrics with the coalescing
// accounted for.
func TestJobsBatchedByteIdenticalToSolo(t *testing.T) {
	_, base, _ := startServer(t, batchJobsConfig(t))
	client := &http.Client{Timeout: time.Minute}
	waitReady(t, client, base)

	req := ProveRequest{Circuit: "synthetic", N: 64}

	// Solo baseline through the same server: the singleton group times
	// out alone and takes the solo Exec path.
	soloID := submitJob(t, client, base, req)
	solo := pollJob(t, client, base, soloID)
	if solo.State != "done" {
		t.Fatalf("solo job %s: state %s (err %q)", soloID, solo.State, solo.Error)
	}
	if solo.ProofB64 == "" {
		t.Fatal("solo job returned no proof")
	}

	// Four same-key jobs inside one window: one batched attempt.
	ids := make([]string, 4)
	for i := range ids {
		ids[i] = submitJob(t, client, base, req)
	}
	for _, id := range ids {
		jr := pollJob(t, client, base, id)
		if jr.State != "done" {
			t.Fatalf("batched job %s: state %s (err %q code %q)", id, jr.State, jr.Error, jr.Code)
		}
		if jr.Attempts != 1 {
			t.Errorf("batched job %s attempts %d, want 1", id, jr.Attempts)
		}
		if jr.ProofB64 != solo.ProofB64 {
			t.Errorf("batched job %s proof differs from solo proof (%d vs %d b64 bytes)",
				id, len(jr.ProofB64), len(solo.ProofB64))
		}
		if jr.Stats == nil {
			t.Errorf("batched job %s carries no per-run stats", id)
		}
	}

	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, metric := range []string{
		"nocap_batches_total 1",
		"nocap_batch_jobs_total 4",
		"nocap_batch_amortized_saves_total 3",
		"nocap_batch_size 4",
	} {
		if !strings.Contains(text, metric) {
			t.Errorf("/metrics missing %q", metric)
		}
	}
}
