package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"nocap"
	"nocap/internal/cluster"
	"nocap/internal/leakcheck"
)

// clusterConfig is jobsConfig plus coordinator mode with a short lease
// TTL so node-death tests converge fast.
func clusterConfig(t *testing.T) Config {
	t.Helper()
	cfg := jobsConfig(t)
	cfg.ClusterEnabled = true
	cfg.ClusterLeaseTTL = 300 * time.Millisecond
	cfg.ClusterLocalFallback = false
	cfg.ClusterSeed = 1
	return cfg
}

// startInProcessWorker attaches an in-process prover node (the same
// cluster.Worker the CLI runs) to a coordinator server, using the given
// params so proofs are comparable with the server's own local path.
func startInProcessWorker(t *testing.T, base, id string, params nocap.Params, key string) *cluster.Worker {
	t.Helper()
	prover := cluster.NewProver(cluster.ProverConfig{Params: params, Timeout: time.Minute})
	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Coordinator: base,
		ID:          id,
		Slots:       2,
		Key:         key,
		PollWait:    200 * time.Millisecond,
		RetryBase:   5 * time.Millisecond,
		Exec:        prover.Exec,
		BatchExec:   prover.BatchExec,
		Seed:        7,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = w.Stop(ctx)
	})
	return w
}

// waitLiveNodes polls /healthz until the cluster map reports n live
// nodes.
func waitLiveNodes(t *testing.T, client *http.Client, base string, n int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			var body struct {
				Cluster struct {
					LiveNodes int `json:"live_nodes"`
				} `json:"cluster"`
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if json.Unmarshal(data, &body) == nil && body.Cluster.LiveNodes >= n {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw %d live cluster nodes", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// metricValue scrapes one counter/gauge value from /metrics.
func metricValue(t *testing.T, client *http.Client, base, name string) int64 {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindSubmatch(data)
	if m == nil {
		t.Fatalf("metric %s not found in /metrics", name)
	}
	v, err := strconv.ParseInt(string(m[1]), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestClusterServerWorkerProves: a job submitted to a coordinator-mode
// server is proved by a worker node, and the resulting proof is
// byte-identical to the same request proved through the server's own
// synchronous local path — placement must not change proof bytes. ZK
// masking is disabled for this test (masked proofs are randomized by
// design); everything else is the production pipeline.
func TestClusterServerWorkerProves(t *testing.T) {
	snap := leakcheck.Take()
	cfg := clusterConfig(t)
	cfg.Params.PCS.ZK = false
	_, base, stop := startServer(t, cfg)
	client := &http.Client{Timeout: time.Minute}
	waitReady(t, client, base)

	w := startInProcessWorker(t, base, "node-a", cfg.Params, "")
	waitLiveNodes(t, client, base, 1)

	id := submitJob(t, client, base, ProveRequest{Circuit: "synthetic", N: 256})
	jr := pollJob(t, client, base, id)
	if jr.State != "done" {
		t.Fatalf("job state = %s (err %q code %q)", jr.State, jr.Error, jr.Code)
	}
	if jr.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", jr.Attempts)
	}
	if jr.ProofB64 == "" {
		t.Fatal("done job carried no proof")
	}

	// The sync path proves locally even in cluster mode; deterministic
	// params mean the worker's bytes must match exactly.
	status, body := postJSON(t, client, base+"/prove", ProveRequest{Circuit: "synthetic", N: 256})
	if status != http.StatusOK {
		t.Fatalf("local prove: %d: %s", status, body)
	}
	var pr ProveResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.ProofB64 != jr.ProofB64 {
		t.Fatal("worker-proved bytes differ from the local path for identical params")
	}

	// And it verifies.
	status, body = postJSON(t, client, base+"/verify", VerifyRequest{Circuit: "synthetic", N: 256, ProofB64: jr.ProofB64})
	if status != http.StatusOK {
		t.Fatalf("verify: %d: %s", status, body)
	}
	var vr VerifyResponse
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	if !vr.Valid {
		t.Fatalf("worker-proved proof rejected: %s %s", vr.Code, vr.Error)
	}

	if got := metricValue(t, client, base, "nocap_cluster_completions_total"); got < 1 {
		t.Fatalf("cluster completions = %d, want >= 1", got)
	}

	wctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := w.Stop(wctx); err != nil {
		t.Errorf("worker stop: %v", err)
	}
	stop()
	snap.Check(t)
}

// TestClusterServerNoWorkers: with -local-fallback=false and zero live
// workers, POST /jobs is shed with a typed 503 no_workers and a
// Retry-After hint; the synchronous paths keep serving locally.
func TestClusterServerNoWorkers(t *testing.T) {
	cfg := clusterConfig(t)
	_, base, _ := startServer(t, cfg)
	client := &http.Client{Timeout: time.Minute}
	waitReady(t, client, base)

	data, _ := json.Marshal(ProveRequest{Circuit: "synthetic", N: 64})
	resp, err := client.Post(base+"/jobs", "application/json", strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /jobs with no workers: status %d: %s", resp.StatusCode, body)
	}
	var er struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(body, &er); err != nil || er.Code != "no_workers" {
		t.Fatalf("error code = %q (%s), want no_workers", er.Code, body)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("no Retry-After header on no_workers shed")
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", ra)
	}
	if got := metricValue(t, client, base, "nocap_job_shed_no_workers_total"); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	// The synchronous prove path is untouched by cluster admission.
	proveOnce(t, client, base)
}

// TestClusterServerLocalFallback: with -local-fallback (the default),
// zero workers degrades to in-process execution instead of shedding.
func TestClusterServerLocalFallback(t *testing.T) {
	cfg := clusterConfig(t)
	cfg.ClusterLocalFallback = true
	_, base, _ := startServer(t, cfg)
	client := &http.Client{Timeout: time.Minute}
	waitReady(t, client, base)

	id := submitJob(t, client, base, ProveRequest{Circuit: "synthetic", N: 64})
	jr := pollJob(t, client, base, id)
	if jr.State != "done" {
		t.Fatalf("job state = %s (err %q), want done via local fallback", jr.State, jr.Error)
	}
	if got := metricValue(t, client, base, "nocap_cluster_local_fallbacks_total"); got < 1 {
		t.Fatalf("local fallbacks = %d, want >= 1", got)
	}
}

// TestClusterServerKeyAuth: the worker plane is fenced by the shared
// cluster key; a worker with the wrong key is rejected with 401 and
// counted, one with the right key proves jobs.
func TestClusterServerKeyAuth(t *testing.T) {
	cfg := clusterConfig(t)
	cfg.ClusterKey = "s3cret"
	_, base, _ := startServer(t, cfg)
	client := &http.Client{Timeout: time.Minute}
	waitReady(t, client, base)

	req, _ := http.NewRequest(http.MethodPost, base+"/cluster/poll", strings.NewReader(`{"node":"rogue"}`))
	req.Header.Set("X-Cluster-Key", "wrong")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("poll with wrong key: %d, want 401", resp.StatusCode)
	}

	startInProcessWorker(t, base, "node-a", cfg.Params, "s3cret")
	waitLiveNodes(t, client, base, 1)
	id := submitJob(t, client, base, ProveRequest{Circuit: "synthetic", N: 64})
	if jr := pollJob(t, client, base, id); jr.State != "done" {
		t.Fatalf("job state = %s, want done", jr.State)
	}
	if got := metricValue(t, client, base, "nocap_auth_rejected_total"); got < 1 {
		t.Fatalf("auth rejects = %d, want >= 1", got)
	}
}

// buildWorkerBinary compiles cmd/nocap-worker once per test run.
func buildWorkerBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "nocap-worker")
	cmd := exec.Command("go", "build", "-o", bin, "nocap/cmd/nocap-worker")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build nocap-worker: %v\n%s", err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for dir := wd; ; dir = filepath.Dir(dir) {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		if dir == filepath.Dir(dir) {
			t.Fatal("go.mod not found above test working directory")
		}
	}
}

// TestClusterServerSubprocessSIGKILL is the end-to-end node-death gate:
// a REAL nocap-worker process is SIGKILLed mid-proof. The coordinator
// must expire its lease, refund the attempt, mark the node dead, and
// let a replacement process finish the job — with the client seeing
// exactly one terminal state, attempts=1, and a proof that verifies.
func TestClusterServerSubprocessSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	bin := buildWorkerBinary(t)
	cfg := clusterConfig(t)
	// The worker CLI proves with DefaultParams; match it server-side so
	// /verify accepts the proof.
	cfg.Params = nocap.DefaultParams()
	_, base, _ := startServer(t, cfg)
	client := &http.Client{Timeout: 2 * time.Minute}
	waitReady(t, client, base)

	startWorkerProc := func(id string) *exec.Cmd {
		cmd := exec.Command(bin, "-coordinator", base, "-id", id, "-slots", "1", "-poll-wait", "200ms")
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %s: %v", id, err)
		}
		t.Cleanup(func() {
			if cmd.Process != nil {
				_ = cmd.Process.Kill()
				_ = cmd.Wait()
			}
		})
		return cmd
	}

	victim := startWorkerProc("victim")
	waitLiveNodes(t, client, base, 1)

	// n=16384 proves in hundreds of milliseconds — a wide-open window to
	// SIGKILL after observing the dispatch.
	id := submitJob(t, client, base, ProveRequest{Circuit: "synthetic", N: 16384})
	deadline := time.Now().Add(30 * time.Second)
	for metricValue(t, client, base, "nocap_cluster_dispatches_total") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("job never dispatched to the victim")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := victim.Process.Kill(); err != nil { // SIGKILL, mid-proof
		t.Fatal(err)
	}
	_ = victim.Wait()

	startWorkerProc("survivor")
	jr := pollJob(t, client, base, id)
	if jr.State != "done" {
		t.Fatalf("job state = %s (err %q code %q), want done after reassignment", jr.State, jr.Error, jr.Code)
	}
	if jr.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (the SIGKILLed attempt must be refunded)", jr.Attempts)
	}
	if got := metricValue(t, client, base, "nocap_cluster_lease_expiries_total"); got < 1 {
		t.Fatalf("lease expiries = %d, want >= 1", got)
	}
	if got := metricValue(t, client, base, "nocap_jobs_lease_reassigns_total"); got < 1 {
		t.Fatalf("jobs lease reassigns = %d, want >= 1", got)
	}

	status, body := postJSON(t, client, base+"/verify", VerifyRequest{Circuit: "synthetic", N: 16384, ProofB64: jr.ProofB64})
	if status != http.StatusOK {
		t.Fatalf("verify: %d: %s", status, body)
	}
	var vr VerifyResponse
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	if !vr.Valid {
		t.Fatalf("reassigned proof rejected: %s %s", vr.Code, vr.Error)
	}
}

// TestClusterServerRequiresDataDir pins the config contract: cluster
// mode without a journal has nowhere to refund attempts to.
func TestClusterServerRequiresDataDir(t *testing.T) {
	cfg := testConfig()
	cfg.ClusterEnabled = true
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted ClusterEnabled without DataDir")
	} else if !strings.Contains(err.Error(), "DataDir") {
		t.Fatalf("err = %v, want a DataDir explanation", err)
	}
}

// TestClusterServerHealthz pins the cluster block in /healthz.
func TestClusterServerHealthz(t *testing.T) {
	cfg := clusterConfig(t)
	_, base, _ := startServer(t, cfg)
	client := &http.Client{Timeout: time.Minute}
	waitReady(t, client, base)

	resp, err := client.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var body map[string]any
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatal(err)
	}
	cl, ok := body["cluster"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no cluster block: %s", data)
	}
	for _, k := range []string{"nodes", "live_nodes", "live_leases", "queued_units", "local_fallback"} {
		if _, ok := cl[k]; !ok {
			t.Errorf("healthz cluster block missing %q: %s", k, data)
		}
	}
	if got := fmt.Sprint(cl["local_fallback"]); got != "false" {
		t.Errorf("local_fallback = %s, want false", got)
	}
}
