package server

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"nocap"
	"nocap/internal/jobs"
	"nocap/internal/tenant"
	"nocap/internal/zkerr"
)

// Async job API (DESIGN.md §11). When Config.DataDir is set the server
// opens a durable jobs.Manager over it and exposes:
//
//	POST   /jobs       submit a ProveRequest for async execution → 202
//	GET    /jobs/{id}  poll; proof + per-run stats once done
//	DELETE /jobs/{id}  cancel (best-effort for running attempts)
//	GET    /readyz     readiness: 503 while recovering, draining, or
//	                   the breaker is open; /healthz stays liveness
//
// Journal recovery runs in the background so the listener can come up
// immediately; /readyz answers 503 {"code":"recovering"} until replay
// finishes, which is what a load balancer should gate traffic on.

// JobResponse is the body of POST /jobs (202) and GET /jobs/{id} (200).
// ProofB64 is populated only when the poll asks for it (?proof=1): a
// status poll stays cheap instead of paying the full proof transfer on
// every request once the job is done.
type JobResponse struct {
	ID              string          `json:"id"`
	State           string          `json:"state"`
	Tenant          string          `json:"tenant,omitempty"`
	Attempts        int             `json:"attempts"`
	MaxAttempts     int             `json:"max_attempts"`
	Recovered       bool            `json:"recovered,omitempty"`
	Cached          bool            `json:"cached,omitempty"`
	CancelRequested bool            `json:"cancel_requested,omitempty"`
	JournalLost     bool            `json:"journal_lost,omitempty"`
	Error           string          `json:"error,omitempty"`
	Code            string          `json:"code,omitempty"`
	ProofB64        string          `json:"proof_b64,omitempty"`
	ProofBytes      int             `json:"proof_bytes,omitempty"`
	Stats           json.RawMessage `json:"stats,omitempty"`
}

// jobResponse maps a manager snapshot onto the wire form.
func jobResponse(info jobs.JobInfo) JobResponse {
	return JobResponse{
		ID:              info.ID,
		State:           string(info.State),
		Tenant:          info.Tenant,
		Attempts:        info.Attempts,
		MaxAttempts:     info.MaxAttempts,
		Recovered:       info.Recovered,
		Cached:          info.Cached,
		CancelRequested: info.CancelRequested,
		JournalLost:     info.JournalLost,
		Error:           info.Error,
		Code:            info.Code,
		ProofBytes:      info.ProofBytes,
		Stats:           info.Stats,
	}
}

// openJobs opens the durable job manager over cfg.DataDir. It runs in a
// background goroutine started by New so journal replay (which scales
// with journal size) never delays the listener; /readyz reports 503
// until it finishes.
func (s *Server) openJobs() {
	exec := s.cfg.JobsExec
	if exec == nil {
		exec = s.proveExec
	}
	var batchKey func(jobs.Spec) (string, bool)
	var batchExec jobs.BatchExec
	var gateN jobs.GateN
	if s.cfg.JobBatchWindow > 0 {
		batchKey = s.jobBatchKey
		batchExec = s.batchProveExec
		gateN = s.jobGateN
	}
	gate := s.jobGate
	workers := s.cfg.JobWorkers
	if s.coord != nil {
		// Cluster mode: attempts execute on remote worker nodes, so the
		// dispatchers must NOT occupy the local HTTP worker pool — they
		// spend their time parked on RPC, not proving. Fairness moves
		// with them: the coordinator stride-schedules dispatch across
		// tenants with the same weights the local DRR scheduler uses.
		exec = s.coord.Exec
		if batchExec != nil {
			batchExec = s.coord.BatchExec
		}
		gate, gateN = nil, nil
		if workers <= 0 {
			workers = 8
		}
	}
	mgr, err := jobs.Open(jobs.Config{
		Dir:               s.cfg.DataDir,
		Exec:              exec,
		Gate:              gate,
		GateN:             gateN,
		BatchKey:          batchKey,
		BatchExec:         batchExec,
		BatchWindow:       s.cfg.JobBatchWindow,
		BatchMax:          s.cfg.JobBatchMax,
		Workers:           workers,
		MaxPending:        s.cfg.JobMaxPending,
		MaxAttempts:       s.cfg.JobMaxAttempts,
		BackoffBase:       s.cfg.JobBackoffBase,
		BackoffMax:        s.cfg.JobBackoffMax,
		BreakerThreshold:  s.cfg.JobBreakerThreshold,
		BreakerCooldown:   s.cfg.JobBreakerCooldown,
		JournalMaxBytes:   int64(s.cfg.JobJournalMaxMB) << 20,
		JournalMaxRecords: s.cfg.JobJournalMaxRecords,
		Retention:         s.cfg.JobRetention,
		DegradedThreshold: s.cfg.JobDegradedThreshold,
		ProbeInterval:     s.cfg.JobProbeInterval,
		CompactCheck:      s.cfg.JobCompactCheck,
		TenantLimit: func(tenantID string) int {
			if t, ok := s.reg.ByID(tenantID); ok {
				return t.MaxJobs
			}
			return s.reg.Default().MaxJobs
		},
	})
	s.jobsMu.Lock()
	s.jobsMgr, s.jobsErr = mgr, err
	s.jobsMu.Unlock()
	s.recovering.Store(false)
}

// jobsManager returns the manager once recovery has finished.
func (s *Server) jobsManager() (*jobs.Manager, error) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	return s.jobsMgr, s.jobsErr
}

// jobGate routes an async proving attempt through the same scheduler
// and bounded worker pool that serve synchronous requests, so "workers"
// is one concurrency budget and the DRR fairness policy governs all
// work no matter how it arrives. It either runs the attempt to
// completion or returns an error without having run it (the manager
// re-queues and tries again).
func (s *Server) jobGate(ctx context.Context, tenantID string, run func()) error {
	return s.jobGateCost(ctx, tenantID, 1, run)
}

// jobGateN is the batch-aware gate: a coalesced batch of k jobs is
// charged k against its tenant's DRR deficit, so batching amortizes
// proving work without amortizing fairness accounting.
func (s *Server) jobGateN(ctx context.Context, tenantID string, cost int, run func()) error {
	return s.jobGateCost(ctx, tenantID, cost, run)
}

func (s *Server) jobGateCost(ctx context.Context, tenantID string, cost int, run func()) error {
	select {
	case <-s.quit:
		// The worker pool is stopping; shed rather than enqueue an entry
		// nothing may ever pick up.
		return jobs.ErrQueueFull
	default:
	}
	j := &job{run: run, done: make(chan struct{}), enqueued: time.Now()}
	err := s.sched.Enqueue(tenantID, j, cost)
	if errors.Is(err, tenant.ErrUnknownTenant) {
		// A journaled tenant no longer configured (keyfile changed across
		// a restart): the job still owes its attempt, run it on the
		// default tenant's queue rather than stranding it.
		err = s.sched.Enqueue(s.reg.Default().ID, j, cost)
	}
	if err != nil {
		return jobs.ErrQueueFull
	}
	// Once enqueued the attempt normally runs (a worker picks it up and
	// the manager's own closing check makes late runs no-ops), so honour
	// the Gate contract and wait for it. The exception is shutdown after
	// the drain deadline: the workers can exit with entries still queued,
	// so when workersDone fires we sweep the queue ourselves — every
	// stranded entry (possibly including this one) is completed without
	// running, and dropped tells us the attempt was provably shed.
	select {
	case <-j.done:
	case <-s.workersDone:
		s.drainJobQueue()
		<-j.done
	}
	if j.dropped {
		return jobs.ErrQueueFull
	}
	return nil
}

// proveExec is the production Exec: one proving attempt for a journaled
// ProveRequest, with the same validation, deadline, and per-run
// collector accounting as the synchronous POST /prove path.
func (s *Server) proveExec(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
	var req ProveRequest
	if err := json.Unmarshal(spec.Payload, &req); err != nil {
		return jobs.Result{}, zkerr.Usagef("jobs: decode journaled request: %v", err)
	}
	params, timeout, err := s.requestSetup(req.Circuit, req.N, req.Reps, req.TimeoutMS)
	if err != nil {
		return jobs.Result{}, err
	}
	bm, params, err := buildFor(params, req.Circuit, req.N)
	if err != nil {
		return jobs.Result{}, err
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	if s.cache != nil {
		return s.cachedProveExec(ctx, req, params, bm)
	}
	data, statsRaw, err := s.runProve(ctx, params, bm)
	if err != nil {
		return jobs.Result{}, err
	}
	return jobs.Result{Proof: data, Stats: statsRaw}, nil
}

// runProve executes one real prove with per-run collector accounting
// and returns the marshalled proof plus stats JSON.
func (s *Server) runProve(ctx context.Context, params nocap.Params, bm *nocap.Benchmark) ([]byte, json.RawMessage, error) {
	col := nocap.NewCollector()
	proof, err := nocap.ProveCtx(col.Attach(ctx), params, bm.Inst, bm.IO, bm.Witness)
	if err != nil {
		return nil, nil, err
	}
	data, err := nocap.MarshalProof(proof)
	if err != nil {
		return nil, nil, err
	}
	statsRaw, err := json.Marshal(statsJSON(col.Stats()))
	if err != nil {
		return nil, nil, zkerr.Internalf("jobs: marshal stats: %v", err)
	}
	return data, statsRaw, nil
}

// cachedProveExec is proveExec behind the proof cache: hits and
// coalesced followers return the leader's verified bytes with
// Cached=true; a leader proves, Commits (verify-on-insert), and owns
// resolving the flight. A follower here blocks its worker slot while
// waiting, which is safe: the leader always holds a different worker
// and makes progress (with one worker no follower can exist — the
// single worker is the leader).
func (s *Server) cachedProveExec(ctx context.Context, req ProveRequest, params nocap.Params, bm *nocap.Benchmark) (jobs.Result, error) {
	return s.cachedProve(ctx, req, params, bm, func(ctx context.Context) ([]byte, json.RawMessage, error) {
		return s.runProve(ctx, params, bm)
	})
}

// cachedProve is the cache/singleflight protocol shared by the solo and
// batched executors; prove runs only when this call is the flight
// leader.
func (s *Server) cachedProve(ctx context.Context, req ProveRequest, params nocap.Params, bm *nocap.Benchmark, prove func(context.Context) ([]byte, json.RawMessage, error)) (jobs.Result, error) {
	key := proveCacheKey(req.Circuit, params, bm)
	acq := s.cache.Acquire(key)
	switch {
	case acq.Hit:
		return jobs.Result{Proof: acq.Data, Cached: true}, nil
	case !acq.Leader:
		data, err := acq.Flight.Wait(ctx)
		if err != nil {
			if ctx.Err() == nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
				// The LEADER's request died, not this job: report a
				// retryable failure so the manager re-proves, instead of
				// inheriting a cancellation this job never asked for.
				return jobs.Result{}, zkerr.Internalf("jobs: cache leader abandoned prove: %v", err)
			}
			return jobs.Result{}, err
		}
		return jobs.Result{Proof: data, Cached: true}, nil
	}
	data, statsRaw, err := prove(ctx)
	if err != nil {
		s.cache.Abort(key, err)
		return jobs.Result{}, err
	}
	data, err = s.cache.Commit(ctx, key, data, s.verifyOnInsert(params, bm))
	if err != nil {
		return jobs.Result{}, err
	}
	return jobs.Result{Proof: data, Stats: statsRaw}, nil
}

// jobBatchKey derives the coalescing key for a journaled ProveRequest:
// jobs with the same circuit, size, and reps share every piece of plan
// state (proving params and hash engine are server-wide), so they can
// prove through one shared-structure plan. Requests that fail to decode
// never batch; the solo path owns reporting that error.
func (s *Server) jobBatchKey(spec jobs.Spec) (string, bool) {
	var req ProveRequest
	if err := json.Unmarshal(spec.Payload, &req); err != nil {
		return "", false
	}
	return fmt.Sprintf("%s|%d|%d", req.Circuit, req.N, req.Reps), true
}

// batchProveExec proves a coalesced batch through one shared-structure
// plan (DESIGN.md §15). The once-per-batch work — circuit build, z
// assembly, the SpMV products and satisfaction check, the instance
// digest, the PCS geometry plan with warmed encoder/twiddle caches —
// runs once under the plan's own collector and is charged back to the
// members in exact proportional shares; each member then proves with
// its own transcript, deadline, collector, and (with ZK) randomness, so
// per-member proofs are byte-identical to solo proofs of the same
// request. With the proof cache enabled the first member leads the
// flight and its committed bytes serve the rest, exactly like the solo
// cached path.
func (s *Server) batchProveExec(ctx context.Context, members []jobs.BatchMember) []jobs.BatchOutcome {
	outs := make([]jobs.BatchOutcome, len(members))
	fail := func(err error) []jobs.BatchOutcome {
		for i := range outs {
			outs[i] = jobs.BatchOutcome{Err: err}
		}
		return outs
	}
	// Every member shares the batch key, so the first member's request
	// describes the batch's statement; per-member timeouts still apply
	// member by member.
	var req ProveRequest
	if err := json.Unmarshal(members[0].Spec.Payload, &req); err != nil {
		return fail(zkerr.Usagef("jobs: decode journaled request: %v", err))
	}
	params, _, err := s.requestSetup(req.Circuit, req.N, req.Reps, req.TimeoutMS)
	if err != nil {
		return fail(err)
	}
	bm, params, err := buildFor(params, req.Circuit, req.N)
	if err != nil {
		return fail(err)
	}
	planCol := nocap.NewCollector()
	plan, err := nocap.NewBatchPlanForCtx(planCol.Attach(ctx), params, bm)
	if err != nil {
		return fail(err)
	}
	shares := nocap.SplitProveStats(planCol.Stats(), len(members))
	for i, mb := range members {
		outs[i] = s.proveBatchMember(mb, params, bm, plan, shares[i])
	}
	return outs
}

// proveBatchMember proves one member of a batch against the shared
// plan, honouring the member's own cancellation and request deadline.
func (s *Server) proveBatchMember(mb jobs.BatchMember, params nocap.Params, bm *nocap.Benchmark, plan *nocap.BatchPlan, share nocap.ProveStats) jobs.BatchOutcome {
	if err := mb.Ctx.Err(); err != nil {
		return jobs.BatchOutcome{Err: err}
	}
	var req ProveRequest
	if err := json.Unmarshal(mb.Spec.Payload, &req); err != nil {
		return jobs.BatchOutcome{Err: zkerr.Usagef("jobs: decode journaled request: %v", err)}
	}
	_, timeout, err := s.requestSetup(req.Circuit, req.N, req.Reps, req.TimeoutMS)
	if err != nil {
		return jobs.BatchOutcome{Err: err}
	}
	ctx, cancel := context.WithTimeout(mb.Ctx, timeout)
	defer cancel()
	prove := func(ctx context.Context) ([]byte, json.RawMessage, error) {
		return s.runBatchMember(ctx, plan, share)
	}
	if s.cache != nil {
		res, err := s.cachedProve(ctx, req, params, bm, prove)
		return jobs.BatchOutcome{Result: res, Err: err}
	}
	data, statsRaw, err := prove(ctx)
	if err != nil {
		return jobs.BatchOutcome{Err: err}
	}
	return jobs.BatchOutcome{Result: jobs.Result{Proof: data, Stats: statsRaw}}
}

// runBatchMember is runProve through the shared plan: the member's
// proportional share of the plan's work is pre-credited to its
// collector, so per-job stats stay conservative (the members' counters
// sum to exactly the aggregate work the batch did).
func (s *Server) runBatchMember(ctx context.Context, plan *nocap.BatchPlan, share nocap.ProveStats) ([]byte, json.RawMessage, error) {
	col := nocap.NewCollector()
	col.AddStats(share)
	proof, err := plan.ProveMemberCtx(col.Attach(ctx))
	if err != nil {
		return nil, nil, err
	}
	data, err := nocap.MarshalProof(proof)
	if err != nil {
		return nil, nil, err
	}
	statsRaw, err := json.Marshal(statsJSON(col.Stats()))
	if err != nil {
		return nil, nil, zkerr.Internalf("jobs: marshal stats: %v", err)
	}
	return data, statsRaw, nil
}

// retryAfterJitter renders a Retry-After header value of at least min
// seconds with up to spread extra seconds of jitter, so a shed client
// herd does not reconverge on the same instant.
func retryAfterJitter(min time.Duration, spread int) string {
	secs := int(min / time.Second)
	if min%time.Second != 0 || secs < 1 {
		secs++
	}
	if spread > 0 {
		secs += rand.Intn(spread + 1)
	}
	return strconv.Itoa(secs)
}

// jobsUnavailable writes the 503 for an endpoint that needs the manager
// when it is not (yet, or at all) available. Returns true if it wrote.
func (s *Server) jobsUnavailable(w http.ResponseWriter) bool {
	if s.cfg.DataDir == "" {
		writeError(w, http.StatusNotImplemented, "async jobs disabled: server started without -data-dir", "jobs-disabled")
		return true
	}
	if s.recovering.Load() {
		w.Header().Set("Retry-After", retryAfterJitter(time.Second, 2))
		writeError(w, http.StatusServiceUnavailable, "journal recovery in progress", "recovering")
		return true
	}
	if _, err := s.jobsManager(); err != nil {
		s.metrics.serverErrors.Add(1)
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("job manager failed to open: %v", err), "jobs-init-failed")
		return true
	}
	return false
}

func (s *Server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	s.metrics.jobSubmits.Add(1)
	if s.jobsUnavailable(w) {
		return
	}
	if s.draining.Load() {
		s.metrics.rejectedDraining.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server is draining", "draining")
		return
	}
	var req ProveRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeTaxonomyError(w, err)
		return
	}
	// Validate before journaling: a request that could never prove gets
	// its 400 now instead of an accepted job that fails permanently.
	if _, _, err := s.requestSetup(req.Circuit, req.N, req.Reps, req.TimeoutMS); err != nil {
		s.writeTaxonomyError(w, err)
		return
	}
	// Cluster mode without local fallback: zero live workers means an
	// accepted job could only sit and time out, so shed it now with a
	// typed 503 whose Retry-After tracks the EWMA of worker poll
	// arrivals. Checked before the rate gate so the shed does not charge
	// the tenant's token bucket.
	if s.coord != nil && !s.cfg.ClusterLocalFallback && !s.coord.HasLiveWorkers() {
		s.metrics.jobShedNoWorkers.Add(1)
		w.Header().Set("Retry-After", retryAfterJitter(s.coord.RetryAfterHint(), 2))
		writeError(w, http.StatusServiceUnavailable, "no live worker nodes", "no_workers")
		return
	}
	ten, ok := s.rateGate(w, r)
	if !ok {
		return
	}
	payload, err := json.Marshal(req)
	if err != nil {
		s.writeTaxonomyError(w, zkerr.Internalf("encode job payload: %v", err))
		return
	}
	mgr, _ := s.jobsManager()
	id, err := mgr.Submit(jobs.Spec{Payload: payload, Tenant: ten.ID})
	switch {
	case errors.Is(err, jobs.ErrBreakerOpen):
		s.metrics.jobShedBreaker.Add(1)
		_, remaining := mgr.BreakerState()
		w.Header().Set("Retry-After", retryAfterJitter(remaining, 2))
		writeError(w, http.StatusServiceUnavailable, "proving backend circuit breaker is open", "breaker-open")
		return
	case errors.Is(err, jobs.ErrQueueFull):
		s.metrics.rejectedQueueFull.Add(1)
		w.Header().Set("Retry-After", retryAfterJitter(s.drainEst.retryAfter(s.sched.Len(), s.cfg.Workers), 2))
		writeError(w, http.StatusTooManyRequests, "job queue is full", "queue-full")
		return
	case errors.Is(err, jobs.ErrTenantQuota):
		ten.RecordJobQuotaReject()
		s.metrics.rejectedTenantQuota.Add(1)
		w.Header().Set("Retry-After", retryAfterJitter(s.drainEst.retryAfter(s.sched.Len(), s.cfg.Workers), 2))
		s.quotaHeaders(w, ten)
		writeTenantError(w, http.StatusTooManyRequests, "tenant live-job quota exceeded", "tenant-jobs-quota", ten.ID)
		return
	case errors.Is(err, jobs.ErrDegraded):
		// The data disk is refusing writes, so a new job could not be
		// made durable — but sync /prove, /verify, and polls of already
		// accepted jobs still work, so this is a typed shed of exactly
		// the durable path, not a blanket outage.
		s.metrics.jobShedDegraded.Add(1)
		w.Header().Set("Retry-After", retryAfterJitter(s.drainEst.retryAfter(s.sched.Len(), s.cfg.Workers), 2))
		writeError(w, http.StatusServiceUnavailable, "durable job storage is degraded: journal writes are failing", "degraded")
		return
	case errors.Is(err, jobs.ErrClosed):
		s.metrics.rejectedDraining.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server is draining", "draining")
		return
	case err != nil:
		s.writeTaxonomyError(w, err)
		return
	}
	w.Header().Set("Location", "/jobs/"+id)
	resp := JobResponse{ID: id, State: string(jobs.StateAccepted), Tenant: ten.ID}
	if info, err := mgr.Get(id); err == nil {
		resp = jobResponse(info)
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// jobVisible enforces tenant isolation on job reads: with API keys
// configured, a tenant sees only its own jobs (pre-tenancy jobs with no
// attribution belong to the default tenant). An unkeyed deployment is
// single-tenant and sees everything. Invisible jobs answer 404, not
// 403: existence itself is tenant data.
func (s *Server) jobVisible(ten *tenant.Tenant, info jobs.JobInfo) bool {
	if !s.reg.Keyed() {
		return true
	}
	owner := info.Tenant
	if owner == "" {
		owner = s.reg.Default().ID
	}
	return owner == ten.ID
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if s.jobsUnavailable(w) {
		return
	}
	mgr, _ := s.jobsManager()
	info, err := mgr.Get(r.PathValue("id"))
	if errors.Is(err, jobs.ErrUnknownJob) || (err == nil && !s.jobVisible(s.tenantFor(r), info)) {
		writeError(w, http.StatusNotFound, jobs.ErrUnknownJob.Error(), "unknown-job")
		return
	}
	resp := jobResponse(info)
	// The proof payload is returned only on request: polls watch state
	// (and proof_bytes) for free, then fetch the proof exactly once.
	if wantProof := r.URL.Query().Get("proof"); (wantProof == "1" || wantProof == "true") && info.State == jobs.StateDone {
		proof, perr := mgr.Proof(info.ID)
		if perr != nil {
			s.writeTaxonomyError(w, perr)
			return
		}
		resp.ProofB64 = base64.StdEncoding.EncodeToString(proof)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleJobCancel implements idempotent DELETE /jobs/{id}: the status
// is a pure function of the job's state, so double-cancels and
// cancel/complete races always land on one of three consistent typed
// responses instead of racing to ambiguous ones:
//
//	cancelled (now or earlier)  → 200 {"state":"cancelled"}
//	running, cancel in flight   → 202 {"cancel_requested":true}
//	done/failed first           → 409 {"code":"terminal"} (repeatable)
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	if s.jobsUnavailable(w) {
		return
	}
	mgr, _ := s.jobsManager()
	id := r.PathValue("id")
	ten := s.tenantFor(r)
	// Visibility first: cancelling another tenant's job must look
	// exactly like cancelling a job that does not exist.
	if info, err := mgr.Get(id); err == nil && !s.jobVisible(ten, info) {
		writeError(w, http.StatusNotFound, jobs.ErrUnknownJob.Error(), "unknown-job")
		return
	}
	info, err := mgr.Cancel(id)
	switch {
	case errors.Is(err, jobs.ErrUnknownJob):
		writeError(w, http.StatusNotFound, err.Error(), "unknown-job")
		return
	case errors.Is(err, jobs.ErrTerminal):
		// The job completed (done/failed) before any cancel arrived — and
		// repeating the DELETE repeats this same answer.
		writeJSON(w, http.StatusConflict, ErrorResponse{Error: err.Error(), Code: "terminal", Tenant: info.Tenant})
		return
	case err != nil:
		s.writeTaxonomyError(w, err)
		return
	}
	s.metrics.jobCancels.Add(1)
	if info.State == jobs.StateCancelled {
		writeJSON(w, http.StatusOK, jobResponse(info))
		return
	}
	writeJSON(w, http.StatusAccepted, jobResponse(info))
}

// handleReadyz is the readiness probe: 200 only when the server should
// receive traffic. Unlike /healthz (liveness: "the process is up"),
// readiness goes false during graceful drain, while journal recovery is
// still replaying, and while the proving backend's circuit breaker is
// open — a load balancer should route around all three.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining", "code": "draining"})
		return
	}
	if s.cfg.DataDir != "" {
		if s.recovering.Load() {
			w.Header().Set("Retry-After", retryAfterJitter(time.Second, 2))
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "recovering", "code": "recovering"})
			return
		}
		mgr, err := s.jobsManager()
		if err != nil {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "jobs-init-failed", "code": "jobs-init-failed", "error": err.Error()})
			return
		}
		if st, remaining := mgr.BreakerState(); st == jobs.BreakerOpen {
			w.Header().Set("Retry-After", retryAfterJitter(remaining, 2))
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "breaker-open", "code": "breaker-open"})
			return
		}
		// Degraded durable storage does NOT flip readiness: sync /prove,
		// /verify, cached proofs, and job polls all still serve, and only
		// POST /jobs sheds (with its own typed 503). A load balancer that
		// routed around a degraded replica would drop the traffic it can
		// still handle. The body reports it so operators see the state.
		if degraded, since := mgr.Degraded(); degraded {
			writeJSON(w, http.StatusOK, map[string]any{
				"status":           "ready",
				"degraded":         true,
				"degraded_seconds": int64(since.Seconds()),
			})
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

// JobsRecovering reports whether journal recovery is still running
// (test hook).
func (s *Server) JobsRecovering() bool { return s.recovering.Load() }

// JobsMetrics snapshots the job manager's counters, or a zero snapshot
// when jobs are disabled or still recovering (test hook).
func (s *Server) JobsMetrics() jobs.Metrics {
	if mgr, err := s.jobsManager(); err == nil && mgr != nil {
		return mgr.Metrics()
	}
	return jobs.Metrics{}
}

// renderJobsMetrics appends the job/journal/breaker gauge set to the
// Prometheus text exposition.
func (s *Server) renderJobsMetrics(counter, gauge func(name, help string, v int64)) {
	if s.cfg.DataDir == "" {
		return
	}
	recovering := int64(0)
	if s.recovering.Load() {
		recovering = 1
	}
	gauge("nocap_jobs_recovering", "1 while journal recovery is replaying", recovering)
	mgr, err := s.jobsManager()
	if err != nil || mgr == nil {
		return
	}
	m := mgr.Metrics()
	counter("nocap_jobs_accepted_total", "jobs durably accepted", m.Accepted)
	counter("nocap_jobs_done_total", "jobs completed with a proof", m.Done)
	counter("nocap_jobs_failed_total", "jobs terminally failed", m.Failed)
	counter("nocap_jobs_cancelled_total", "jobs cancelled", m.Cancelled)
	counter("nocap_jobs_retries_total", "attempt retries scheduled", m.Retries)
	counter("nocap_jobs_lease_reassigns_total", "attempts refunded after a worker lease expired (node death)", m.LeaseReassigns)
	counter("nocap_jobs_recovered_total", "jobs re-enqueued by crash recovery", m.RecoveredJobs)
	counter("nocap_jobs_torn_records_total", "torn journal records dropped at recovery", m.TornRecords)
	counter("nocap_jobs_journal_append_errors_total", "journal append failures", m.JournalAppendErrors)
	counter("nocap_jobs_journal_lost_total", "jobs whose terminal record could not be journaled", m.JournalLostJobs)
	counter("nocap_jobs_breaker_trips_total", "circuit breaker trips", m.BreakerTrips)
	counter("nocap_jobs_journal_corrupt_records_total", "checksum-failed or undecodable journal records skipped at recovery", m.CorruptRecords)
	counter("nocap_jobs_compactions_total", "journal compactions completed", m.Compactions)
	counter("nocap_jobs_retired_total", "terminal jobs garbage-collected by retention", m.RetiredJobs)
	counter("nocap_jobs_orphans_swept_total", "orphaned temp/proof files deleted at recovery", m.OrphansSwept)
	counter("nocap_jobs_degraded_entries_total", "times the manager entered degraded mode", m.DegradedEntries)
	counter("nocap_jobs_probe_writes_total", "disk-recovery probe writes attempted while degraded", m.ProbeWrites)
	gauge("nocap_jobs_active", "jobs in a non-terminal state", m.Active)
	gauge("nocap_jobs_journal_records", "records in the journal", m.JournalRecords)
	gauge("nocap_jobs_journal_bytes", "journal size in bytes", m.JournalBytes)
	gauge("nocap_jobs_snapshot_bytes", "size of the last compaction snapshot", m.SnapshotBytes)
	gauge("nocap_jobs_breaker_state", "breaker state (0 closed, 1 open, 2 half-open)", int64(m.BreakerState))
	if s.cfg.JobBatchWindow > 0 {
		counter("nocap_batches_total", "batched proving attempts dispatched", m.Batches)
		counter("nocap_batch_jobs_total", "jobs proved through batched attempts", m.BatchJobs)
		counter("nocap_batch_amortized_saves_total", "jobs that skipped redundant shared-structure work because a batch-mate already did it", m.BatchAmortizedSaves)
		gauge("nocap_batch_size", "size of the most recently dispatched batch", m.LastBatchSize)
	}
	degraded := int64(0)
	if m.Degraded {
		degraded = 1
	}
	gauge("nocap_jobs_degraded", "1 while durable job storage is refusing writes", degraded)
}
