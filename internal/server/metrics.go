package server

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"nocap"
	"nocap/internal/tenant"
)

// metrics is the server's own counter set: admission, outcome, and
// latency. Kernel-stage and arena counters are not duplicated here —
// /metrics reads them from the process-wide aggregate (ReadProveStats),
// which every request's collector also feeds.
type metrics struct {
	proveRequests       atomic.Int64
	verifyRequests      atomic.Int64
	provesOK            atomic.Int64
	verifiesOK          atomic.Int64
	verifiesRejected    atomic.Int64
	clientErrors        atomic.Int64
	serverErrors        atomic.Int64
	rejectedQueueFull   atomic.Int64
	rejectedDraining    atomic.Int64
	rejectedRateLimited atomic.Int64
	rejectedTenantQuota atomic.Int64
	authRejected        atomic.Int64
	queueWaitNs         atomic.Int64
	proveNs             atomic.Int64
	verifyNs            atomic.Int64
	jobSubmits          atomic.Int64
	jobShedBreaker      atomic.Int64
	jobShedDegraded     atomic.Int64
	jobShedNoWorkers    atomic.Int64
	jobCancels          atomic.Int64
}

// MetricsSnapshot is the server-counter part of /metrics, for tests and
// embedding callers.
type MetricsSnapshot struct {
	ProveRequests       int64
	VerifyRequests      int64
	ProvesOK            int64
	VerifiesOK          int64
	VerifiesRejected    int64
	ClientErrors        int64
	ServerErrors        int64
	RejectedQueueFull   int64
	RejectedDraining    int64
	RejectedRateLimited int64
	RejectedTenantQuota int64
	AuthRejected        int64
}

// Metrics snapshots the server counters.
func (s *Server) Metrics() MetricsSnapshot {
	return MetricsSnapshot{
		ProveRequests:       s.metrics.proveRequests.Load(),
		VerifyRequests:      s.metrics.verifyRequests.Load(),
		ProvesOK:            s.metrics.provesOK.Load(),
		VerifiesOK:          s.metrics.verifiesOK.Load(),
		VerifiesRejected:    s.metrics.verifiesRejected.Load(),
		ClientErrors:        s.metrics.clientErrors.Load(),
		ServerErrors:        s.metrics.serverErrors.Load(),
		RejectedQueueFull:   s.metrics.rejectedQueueFull.Load(),
		RejectedDraining:    s.metrics.rejectedDraining.Load(),
		RejectedRateLimited: s.metrics.rejectedRateLimited.Load(),
		RejectedTenantQuota: s.metrics.rejectedTenantQuota.Load(),
		AuthRejected:        s.metrics.authRejected.Load(),
	}
}

// renderMetrics emits Prometheus text-format gauges and counters: the
// server's admission/latency counters, per-tenant scheduler and quota
// counters, the proof cache, the five-stage kernel breakdown, and the
// arena's checkout behavior.
func (s *Server) renderMetrics() string {
	var b strings.Builder
	m := &s.metrics
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("nocap_prove_requests_total", "POST /prove requests received", m.proveRequests.Load())
	counter("nocap_verify_requests_total", "POST /verify requests received", m.verifyRequests.Load())
	counter("nocap_proves_ok_total", "proofs generated successfully", m.provesOK.Load())
	counter("nocap_verifies_ok_total", "proofs verified valid", m.verifiesOK.Load())
	counter("nocap_verifies_rejected_total", "proofs examined and rejected", m.verifiesRejected.Load())
	counter("nocap_client_errors_total", "requests answered 4xx", m.clientErrors.Load())
	counter("nocap_server_errors_total", "requests answered 5xx", m.serverErrors.Load())
	counter("nocap_rejected_queue_full_total", "requests shed with 429", m.rejectedQueueFull.Load())
	counter("nocap_rejected_draining_total", "requests refused during drain", m.rejectedDraining.Load())
	counter("nocap_rejected_rate_limited_total", "requests shed by a tenant rate limit", m.rejectedRateLimited.Load())
	counter("nocap_rejected_tenant_quota_total", "job submissions shed by a tenant job quota", m.rejectedTenantQuota.Load())
	counter("nocap_auth_rejected_total", "requests with an unknown API key", m.authRejected.Load())
	counter("nocap_queue_wait_ns_total", "nanoseconds requests spent queued (sum)", m.queueWaitNs.Load())
	counter("nocap_prove_ns_total", "nanoseconds spent proving (sum over completed proves)", m.proveNs.Load())
	counter("nocap_verify_ns_total", "nanoseconds spent verifying (sum over completed verifies)", m.verifyNs.Load())

	counter("nocap_job_submits_total", "POST /jobs requests received", m.jobSubmits.Load())
	counter("nocap_job_shed_breaker_total", "job submissions shed while the breaker was open", m.jobShedBreaker.Load())
	counter("nocap_job_shed_degraded_total", "job submissions shed while durable storage was degraded", m.jobShedDegraded.Load())
	counter("nocap_job_shed_no_workers_total", "job submissions shed because no live worker node existed", m.jobShedNoWorkers.Load())
	counter("nocap_job_cancels_total", "jobs cancelled via DELETE /jobs", m.jobCancels.Load())
	s.renderJobsMetrics(counter, gauge)
	s.renderClusterMetrics(counter, gauge)

	gauge("nocap_queue_depth", "requests admitted and waiting for a worker", int64(s.sched.Len()))
	gauge("nocap_queue_capacity", "admission queue bound", int64(s.sched.Capacity()))
	gauge("nocap_inflight", "requests currently proving or verifying", s.inflight.Load())
	gauge("nocap_workers", "proving worker pool size", int64(s.cfg.Workers))

	s.renderTenantMetrics(&b)
	s.renderCacheMetrics(counter, gauge)

	// Process-wide kernel and arena aggregates (every request's collector
	// feeds these too; per-request numbers live in the responses).
	agg := nocap.ReadProveStats()
	names := make([]string, 0, 5)
	stages := agg.Stages.Named()
	for name := range stages {
		names = append(names, name)
	}
	sort.Strings(names)
	b.WriteString("# HELP nocap_kernel_calls_total kernel invocations by stage (process aggregate)\n# TYPE nocap_kernel_calls_total counter\n")
	for _, name := range names {
		fmt.Fprintf(&b, "nocap_kernel_calls_total{stage=%q} %d\n", name, stages[name].Calls)
	}
	b.WriteString("# HELP nocap_kernel_elems_total elements processed by stage (process aggregate)\n# TYPE nocap_kernel_elems_total counter\n")
	for _, name := range names {
		fmt.Fprintf(&b, "nocap_kernel_elems_total{stage=%q} %d\n", name, stages[name].Elems)
	}
	b.WriteString("# HELP nocap_kernel_wall_ns_total wall nanoseconds inside kernels by stage (process aggregate)\n# TYPE nocap_kernel_wall_ns_total counter\n")
	for _, name := range names {
		fmt.Fprintf(&b, "nocap_kernel_wall_ns_total{stage=%q} %d\n", name, int64(stages[name].Wall))
	}

	counter("nocap_arena_gets_total", "arena checkouts (process aggregate)", agg.Arena.Gets)
	counter("nocap_arena_puts_total", "arena returns (process aggregate)", agg.Arena.Puts)
	counter("nocap_arena_hits_total", "arena pool hits (process aggregate)", agg.Arena.Hits)
	counter("nocap_arena_misses_total", "arena pool misses (process aggregate)", agg.Arena.Misses)
	counter("nocap_arena_double_returns_total", "arena double returns, always a bug", agg.Arena.DoubleReturns)
	gauge("nocap_arena_outstanding", "live arena checkouts", agg.Arena.Outstanding)
	gauge("nocap_arena_outstanding_elems", "elements in live arena checkouts", agg.Arena.OutstandingElems)
	return b.String()
}

// renderTenantMetrics emits the per-tenant scheduler and quota counters
// with a tenant label.
func (s *Server) renderTenantMetrics(b *strings.Builder) {
	stats := s.sched.Stats()
	labeled := func(name, help, typ string, value func(tenant.QueueStats) int64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, qs := range stats {
			fmt.Fprintf(b, "%s{tenant=%q} %d\n", name, qs.ID, value(qs))
		}
	}
	labeled("nocap_tenant_enqueued_total", "requests admitted to the tenant queue", "counter",
		func(qs tenant.QueueStats) int64 { return qs.Enqueued })
	labeled("nocap_tenant_dequeued_total", "tenant requests handed to workers", "counter",
		func(qs tenant.QueueStats) int64 { return qs.Dequeued })
	labeled("nocap_tenant_rejected_queue_full_total", "tenant requests shed with a per-tenant 429", "counter",
		func(qs tenant.QueueStats) int64 { return qs.RejectedFull })
	labeled("nocap_tenant_queue_wait_ns_total", "nanoseconds tenant requests spent queued (sum)", "counter",
		func(qs tenant.QueueStats) int64 { return qs.QueueWaitNs })
	labeled("nocap_tenant_queue_depth", "tenant requests queued now", "gauge",
		func(qs tenant.QueueStats) int64 { return int64(qs.Depth) })
	labeled("nocap_tenant_inflight", "tenant requests on workers now", "gauge",
		func(qs tenant.QueueStats) int64 { return int64(qs.Inflight) })
	labeled("nocap_tenant_weight", "tenant DRR weight", "gauge",
		func(qs tenant.QueueStats) int64 { return int64(qs.Weight) })

	fmt.Fprintf(b, "# HELP nocap_tenant_rate_limited_total requests shed by the tenant rate limit\n# TYPE nocap_tenant_rate_limited_total counter\n")
	for _, t := range s.reg.All() {
		fmt.Fprintf(b, "nocap_tenant_rate_limited_total{tenant=%q} %d\n", t.ID, t.RateRejects())
	}
	fmt.Fprintf(b, "# HELP nocap_tenant_job_quota_rejects_total job submissions shed by the tenant MaxJobs quota\n# TYPE nocap_tenant_job_quota_rejects_total counter\n")
	for _, t := range s.reg.All() {
		fmt.Fprintf(b, "nocap_tenant_job_quota_rejects_total{tenant=%q} %d\n", t.ID, t.JobQuotaRejects())
	}
}

// renderCacheMetrics emits the proof cache counters when the cache is
// enabled.
func (s *Server) renderCacheMetrics(counter, gauge func(name, help string, v int64)) {
	if s.cache == nil {
		return
	}
	cm := s.cache.Metrics()
	counter("nocap_proofcache_hits_total", "proofs served from the cache", cm.Hits)
	counter("nocap_proofcache_misses_total", "cache lookups that started a prove", cm.Misses)
	counter("nocap_proofcache_coalesced_total", "requests that joined an in-flight identical prove", cm.Coalesced)
	counter("nocap_proofcache_inserts_total", "proofs inserted after verify-on-insert", cm.Inserts)
	counter("nocap_proofcache_verify_rejects_total", "proofs REFUSED at insert by re-verification (soundness incidents)", cm.VerifyRejects)
	counter("nocap_proofcache_evictions_total", "entries evicted by the LRU bytes budget", cm.Evictions)
	gauge("nocap_proofcache_entries", "proofs currently cached", cm.Entries)
	gauge("nocap_proofcache_bytes", "proof bytes currently cached", cm.Bytes)
}
