package server

import (
	"encoding/json"
	"net/http"

	"nocap/internal/cluster"
	"nocap/internal/jobs"
	"nocap/internal/zkerr"
)

// Cluster mode (DESIGN.md §16). With Config.ClusterEnabled the server
// becomes a coordinator: async jobs keep their journal, admission,
// quotas, and batch planner exactly as before, but attempts execute on
// remote worker nodes (cmd/nocap-worker) over unencrypted HTTP/2 with
// lease-based reassignment. The worker-facing RPC surface is:
//
//	POST /cluster/poll       long-poll for a leased assignment
//	POST /cluster/heartbeat  renew leases, learn losses/cancellations
//	POST /cluster/complete   report outcomes (duplicates discarded)
//	GET  /cluster/nodes      node health table (operator visibility)
//
// All four require X-Cluster-Key when Config.ClusterKey is set — the
// worker plane authenticates separately from the tenant plane.

// openCluster builds the coordinator and mounts the worker-facing
// endpoints. Called from New before openJobs starts, so the job
// manager's executors can capture s.coord.
func (s *Server) openCluster() error {
	if s.cfg.DataDir == "" {
		return zkerr.Usagef("server: cluster mode requires DataDir (the coordinator owns the job journal)")
	}
	s.coord = cluster.New(cluster.Config{
		LeaseTTL:      s.cfg.ClusterLeaseTTL,
		DeadAfter:     s.cfg.ClusterDeadAfter,
		ProbeBase:     s.cfg.ClusterProbeBase,
		LocalExec:     s.proveExec,
		LocalBatch:    s.batchProveExec,
		LocalFallback: s.cfg.ClusterLocalFallback,
		Seed:          s.cfg.ClusterSeed,
		TenantWeight: func(tenantID string) int {
			if t, ok := s.reg.ByID(tenantID); ok {
				return t.Weight
			}
			return s.reg.Default().Weight
		},
		LocalityKey: func(payload json.RawMessage) (string, bool) {
			return s.jobBatchKey(jobs.Spec{Payload: payload})
		},
	})
	s.mux.HandleFunc("POST /cluster/poll", s.withClusterKey(s.coord.HandlePoll))
	s.mux.HandleFunc("POST /cluster/heartbeat", s.withClusterKey(s.coord.HandleHeartbeat))
	s.mux.HandleFunc("POST /cluster/complete", s.withClusterKey(s.coord.HandleComplete))
	s.mux.HandleFunc("GET /cluster/nodes", s.withClusterKey(s.coord.HandleNodes))
	return nil
}

// withClusterKey gates the worker plane: when a cluster key is
// configured every worker RPC must present it as X-Cluster-Key. Tenant
// API keys deliberately do not work here.
func (s *Server) withClusterKey(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.ClusterKey != "" && r.Header.Get("X-Cluster-Key") != s.cfg.ClusterKey {
			s.metrics.authRejected.Add(1)
			writeError(w, http.StatusUnauthorized, "missing or unknown cluster key", "unknown-cluster-key")
			return
		}
		h(w, r)
	}
}

// Coordinator exposes the coordinator (test hook; nil outside cluster
// mode).
func (s *Server) Coordinator() *cluster.Coordinator { return s.coord }

// ClusterMetrics snapshots the coordinator counters; the zero snapshot
// outside cluster mode (test hook).
func (s *Server) ClusterMetrics() cluster.Metrics {
	if s.coord == nil {
		return cluster.Metrics{}
	}
	return s.coord.Metrics()
}

// renderClusterMetrics appends the coordinator counter set to the
// Prometheus exposition.
func (s *Server) renderClusterMetrics(counter, gauge func(name, help string, v int64)) {
	if s.coord == nil {
		return
	}
	m := s.coord.Metrics()
	counter("nocap_cluster_dispatches_total", "units leased to worker nodes", m.Dispatches)
	counter("nocap_cluster_completions_total", "unit completions accepted", m.Completions)
	counter("nocap_cluster_duplicate_completions_total", "completions discarded because the lease was already expired and reassigned (first terminal record wins)", m.Duplicates)
	counter("nocap_cluster_lease_expiries_total", "leases expired by the reaper (node death or missed heartbeats)", m.LeaseExpiries)
	counter("nocap_cluster_heartbeats_total", "lease renewal heartbeats received", m.Heartbeats)
	counter("nocap_cluster_polls_total", "worker poll requests received", m.Polls)
	counter("nocap_cluster_local_fallbacks_total", "attempts executed in-process because no live worker existed", m.LocalFallbacks)
	gauge("nocap_cluster_queue_depth", "units queued for dispatch", int64(m.QueuedUnits))
	gauge("nocap_cluster_live_leases", "leases currently held by workers", int64(m.LiveLeases))
	states := map[string]int64{"healthy": 0, "suspect": 0, "dead": 0}
	for _, n := range m.Nodes {
		states[n.State]++
	}
	for _, st := range []string{"healthy", "suspect", "dead"} {
		gauge("nocap_cluster_nodes_"+st, "worker nodes in the "+st+" state", states[st])
	}
}
