package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"nocap/internal/faultinject"
	"nocap/internal/jobs"
	"nocap/internal/tenant"
)

// keyedConfig is testConfig plus two keyed tenants: acme (weight 4,
// small queue) and beta (defaults).
func keyedConfig() Config {
	cfg := testConfig()
	cfg.Tenants = []tenant.Config{
		{ID: "acme", Key: "key-acme", Weight: 4, QueueDepth: 1},
		{ID: "beta", Key: "key-beta"},
	}
	return cfg
}

// doJSON sends a JSON request with an optional API key and returns the
// status, body, and response headers.
func doJSON(t *testing.T, client *http.Client, method, url, key string, body any) (int, []byte, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, data, resp.Header
}

func TestTenantAuth(t *testing.T) {
	s, base, _ := startServer(t, keyedConfig())
	client := &http.Client{Timeout: time.Minute}
	req := ProveRequest{Circuit: "synthetic", N: 64}

	// No key: anonymous default tenant, served normally.
	if status, body, _ := doJSON(t, client, http.MethodPost, base+"/prove", "", req); status != http.StatusOK {
		t.Fatalf("anonymous prove: %d %s", status, body)
	}
	// Valid key: served.
	if status, body, _ := doJSON(t, client, http.MethodPost, base+"/prove", "key-acme", req); status != http.StatusOK {
		t.Fatalf("keyed prove: %d %s", status, body)
	}
	// Unknown key: hard 401, not a silent demotion to the default tenant.
	status, body, _ := doJSON(t, client, http.MethodPost, base+"/prove", "key-wrong", req)
	if status != http.StatusUnauthorized || !strings.Contains(string(body), `"code":"unauthorized"`) {
		t.Fatalf("unknown key: %d %s", status, body)
	}
	// Authorization: Bearer works too.
	breq, _ := http.NewRequest(http.MethodPost, base+"/prove", bytes.NewReader([]byte(`{"circuit":"synthetic","n":64}`)))
	breq.Header.Set("Content-Type", "application/json")
	breq.Header.Set("Authorization", "Bearer key-beta")
	resp, err := client.Do(breq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bearer prove: %d", resp.StatusCode)
	}
	if m := s.Metrics(); m.AuthRejected != 1 {
		t.Fatalf("AuthRejected %d, want 1", m.AuthRejected)
	}
}

// TestTenantQueueIsolation pins the core isolation property: one
// tenant's saturated queue yields a 429 naming that tenant and never
// touches another tenant's admission.
func TestTenantQueueIsolation(t *testing.T) {
	cfg := keyedConfig()
	cfg.Workers = 1
	s, base, _ := startServer(t, cfg)
	client := &http.Client{Timeout: time.Minute}

	// Occupy the only worker with a job enqueued directly through the
	// scheduler, so the HTTP queues below fill deterministically.
	release := make(chan struct{})
	released := false
	releaseWorker := func() {
		if !released {
			released = true
			close(release)
		}
	}
	// Registered after startServer's cleanup, so it runs first (LIFO) and
	// shutdown can drain even when an assertion bails out early.
	t.Cleanup(releaseWorker)
	blocker := &job{run: func() { <-release }, done: make(chan struct{})}
	if err := s.sched.Enqueue("default", blocker, 1); err != nil {
		t.Fatal(err)
	}
	waitWorkerBusy(t, s)

	// Fill acme's queue (depth 1) with a request that will block in admit.
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		doJSON(t, client, http.MethodPost, base+"/prove", "key-acme", ProveRequest{Circuit: "synthetic", N: 64})
	}()
	waitTenantDepth(t, s, "acme", 1)

	// acme's next request is a per-tenant 429 with the quota headers.
	status, body, hdr := doJSON(t, client, http.MethodPost, base+"/prove", "key-acme", ProveRequest{Circuit: "synthetic", N: 64})
	if status != http.StatusTooManyRequests {
		t.Fatalf("acme overflow: %d %s", status, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Code != "queue-full" || er.Tenant != "acme" {
		t.Fatalf("overflow body %s, want queue-full for acme", body)
	}
	if hdr.Get("X-Quota-Tenant") != "acme" || hdr.Get("X-Quota-Queue-Depth") != "1" ||
		hdr.Get("X-Quota-Weight") != "4" {
		t.Fatalf("quota headers %v", hdr)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want integer seconds >= 1", hdr.Get("Retry-After"))
	}

	// beta and the default tenant still admit: acme's backlog is not
	// theirs. Their requests queue up and complete once the worker frees.
	var others sync.WaitGroup
	for _, key := range []string{"key-beta", ""} {
		key := key
		others.Add(1)
		go func() {
			defer others.Done()
			status, body, _ := doJSON(t, client, http.MethodPost, base+"/prove", key, ProveRequest{Circuit: "synthetic", N: 64})
			if status != http.StatusOK {
				t.Errorf("tenant key %q under acme saturation: %d %s", key, status, body)
			}
		}()
	}
	waitTenantDepth(t, s, "beta", 1)
	waitTenantDepth(t, s, "default", 1)
	// Nothing but acme recorded a queue-full rejection.
	for _, qs := range s.TenantStats() {
		want := int64(0)
		if qs.ID == "acme" {
			want = 1
		}
		if qs.RejectedFull != want {
			t.Errorf("tenant %s RejectedFull %d, want %d", qs.ID, qs.RejectedFull, want)
		}
	}
	releaseWorker()
	<-blocker.done
	<-parked
	others.Wait()
}

func waitWorkerBusy(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		busy := false
		for _, qs := range s.TenantStats() {
			if qs.Inflight > 0 {
				busy = true
			}
		}
		if busy {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the blocking job")
		}
		time.Sleep(time.Millisecond)
	}
}

func waitTenantDepth(t *testing.T, s *Server, id string, depth int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		for _, qs := range s.TenantStats() {
			if qs.ID == id && qs.Depth >= depth {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant %s never reached queue depth %d: %+v", id, depth, s.TenantStats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTenantRateLimit(t *testing.T) {
	cfg := testConfig()
	cfg.Tenants = []tenant.Config{
		// 1 token burst, negligible refill: the second request must be shed.
		{ID: "slow", Key: "key-slow", RatePerSec: 0.001, Burst: 1},
	}
	s, base, _ := startServer(t, cfg)
	client := &http.Client{Timeout: time.Minute}
	req := ProveRequest{Circuit: "synthetic", N: 64}

	if status, body, _ := doJSON(t, client, http.MethodPost, base+"/prove", "key-slow", req); status != http.StatusOK {
		t.Fatalf("first request: %d %s", status, body)
	}
	status, body, hdr := doJSON(t, client, http.MethodPost, base+"/prove", "key-slow", req)
	if status != http.StatusTooManyRequests {
		t.Fatalf("second request: %d %s", status, body)
	}
	var er ErrorResponse
	json.Unmarshal(body, &er)
	if er.Code != "rate-limited" || er.Tenant != "slow" {
		t.Fatalf("rate-limit body %s", body)
	}
	if hdr.Get("X-RateLimit-Limit") != "0.001" || hdr.Get("X-RateLimit-Burst") != "1" {
		t.Fatalf("rate headers %v", hdr)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("no Retry-After on rate-limit 429")
	}
	// The anonymous tenant is unlimited here: no bleed.
	if status, body, _ := doJSON(t, client, http.MethodPost, base+"/prove", "", req); status != http.StatusOK {
		t.Fatalf("default tenant after slow's 429: %d %s", status, body)
	}
	if m := s.Metrics(); m.RejectedRateLimited != 1 {
		t.Fatalf("RejectedRateLimited %d, want 1", m.RejectedRateLimited)
	}
	metricsBody := getMetricsBody(t, client, base)
	if !strings.Contains(metricsBody, `nocap_tenant_rate_limited_total{tenant="slow"} 1`) {
		t.Error("per-tenant rate-limit counter missing from /metrics")
	}
}

func getMetricsBody(t *testing.T, client *http.Client, base string) string {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return string(body)
}

// TestProofCacheHTTP: the second identical prove is served from the
// cache — byte-identical, flagged cached:true — and the proof still
// verifies.
func TestProofCacheHTTP(t *testing.T) {
	cfg := testConfig()
	cfg.CacheMB = 4
	s, base, _ := startServer(t, cfg)
	client := &http.Client{Timeout: time.Minute}
	req := ProveRequest{Circuit: "synthetic", N: 128}

	var first, second ProveResponse
	status, body, _ := doJSON(t, client, http.MethodPost, base+"/prove", "", req)
	if status != http.StatusOK {
		t.Fatalf("first prove: %d %s", status, body)
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first prove claims cached")
	}
	status, body, _ = doJSON(t, client, http.MethodPost, base+"/prove", "", req)
	if status != http.StatusOK {
		t.Fatalf("second prove: %d %s", status, body)
	}
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second identical prove not served from cache")
	}
	if second.ProofB64 != first.ProofB64 {
		t.Fatal("cached proof is not byte-identical to the original")
	}
	// Served bytes still verify.
	vstatus, vbody, _ := doJSON(t, client, http.MethodPost, base+"/verify", "",
		VerifyRequest{Circuit: req.Circuit, N: req.N, ProofB64: second.ProofB64})
	if vstatus != http.StatusOK || !strings.Contains(string(vbody), `"valid":true`) {
		t.Fatalf("verify of cached proof: %d %s", vstatus, vbody)
	}
	cm := s.CacheMetrics()
	if cm.Hits != 1 || cm.Misses != 1 || cm.Inserts != 1 || cm.VerifyRejects != 0 {
		t.Fatalf("cache metrics %+v", cm)
	}
	// A different witness (different n) is a different key.
	status, body, _ = doJSON(t, client, http.MethodPost, base+"/prove", "",
		ProveRequest{Circuit: "synthetic", N: 256})
	if status != http.StatusOK {
		t.Fatalf("different-n prove: %d %s", status, body)
	}
	var third ProveResponse
	json.Unmarshal(body, &third)
	if third.Cached {
		t.Fatal("different statement served from cache")
	}
	mb := getMetricsBody(t, client, base)
	for _, want := range []string{
		"nocap_proofcache_hits_total 1",
		"nocap_proofcache_inserts_total 2",
		"nocap_proofcache_verify_rejects_total 0",
	} {
		if !strings.Contains(mb, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestCacheVerifyRejectHTTP drives the soundness rule end to end: a
// proof corrupted between prove and insert is refused, counted, and the
// client gets a 500 — never the corrupt bytes.
func TestCacheVerifyRejectHTTP(t *testing.T) {
	if err := faultinject.Arm(faultinject.Plan{Point: "proofcache.insert.corrupt", Kind: faultinject.Error}); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disarm()

	cfg := testConfig()
	cfg.CacheMB = 4
	s, base, _ := startServer(t, cfg)
	client := &http.Client{Timeout: time.Minute}
	req := ProveRequest{Circuit: "synthetic", N: 128}

	status, body, _ := doJSON(t, client, http.MethodPost, base+"/prove", "", req)
	if status != http.StatusInternalServerError || !strings.Contains(string(body), `"code":"internal"`) {
		t.Fatalf("corrupted insert answered %d %s, want typed 500", status, body)
	}
	if !faultinject.Fired() {
		t.Fatal("corruption fault never fired")
	}
	faultinject.Disarm()

	cm := s.CacheMetrics()
	if cm.VerifyRejects != 1 || cm.Inserts != 0 || cm.Entries != 0 {
		t.Fatalf("cache metrics %+v, want 1 verify-reject, nothing stored", cm)
	}
	if !strings.Contains(getMetricsBody(t, client, base), "nocap_proofcache_verify_rejects_total 1") {
		t.Error("verify-reject counter missing from /metrics")
	}
	// With the fault gone the same request proves and caches normally.
	status, body, _ = doJSON(t, client, http.MethodPost, base+"/prove", "", req)
	if status != http.StatusOK {
		t.Fatalf("prove after disarm: %d %s", status, body)
	}
	var pr ProveResponse
	json.Unmarshal(body, &pr)
	if pr.Cached {
		t.Fatal("rejected proof somehow served from cache")
	}
	if cm := s.CacheMetrics(); cm.Inserts != 1 {
		t.Fatalf("cache metrics after recovery %+v", cm)
	}
}

// TestRetryAfterFromDrainRate (satellite: adaptive Retry-After) pins
// the estimator's formula and bounds: mean-service × (backlog+1) /
// workers, clamped to [1s, 30s], 1s before any completion.
func TestRetryAfterFromDrainRate(t *testing.T) {
	var d drainEstimator
	if got := d.retryAfter(100, 4); got != time.Second {
		t.Fatalf("no-data fallback %v, want 1s", got)
	}
	d.observe(2 * time.Second)
	if got := d.retryAfter(3, 2); got != 4*time.Second {
		t.Fatalf("retryAfter(3,2) after one 2s service = %v, want 4s", got)
	}
	// Fast services clamp to the 1s floor.
	var fast drainEstimator
	fast.observe(time.Millisecond)
	if got := fast.retryAfter(0, 4); got != time.Second {
		t.Fatalf("floor %v, want 1s", got)
	}
	// Deep backlogs clamp to the 30s ceiling.
	var slow drainEstimator
	slow.observe(20 * time.Second)
	if got := slow.retryAfter(10, 1); got != 30*time.Second {
		t.Fatalf("ceiling %v, want 30s", got)
	}
	// Zero workers must not divide by zero.
	if got := slow.retryAfter(1, 0); got != 30*time.Second {
		t.Fatalf("workers=0 %v, want clamped 30s", got)
	}
	// The header value is integer seconds within [min, min+spread].
	for i := 0; i < 20; i++ {
		v, err := strconv.Atoi(retryAfterJitter(4*time.Second, 2))
		if err != nil || v < 4 || v > 6 {
			t.Fatalf("retryAfterJitter(4s,2) = %q, want int in [4,6]", retryAfterJitter(4*time.Second, 2))
		}
	}
}

func TestJobsTenantQuotaAndVisibility(t *testing.T) {
	cfg := jobsConfig(t)
	cfg.Tenants = []tenant.Config{
		{ID: "acme", Key: "key-acme", MaxJobs: 1},
		{ID: "beta", Key: "key-beta"},
	}
	gate := make(chan struct{})
	cfg.JobsExec = func(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
		select {
		case <-gate:
			return jobs.Result{Proof: []byte("ok")}, nil
		case <-ctx.Done():
			return jobs.Result{}, ctx.Err()
		}
	}
	_, base, _ := startServer(t, cfg)
	client := &http.Client{Timeout: time.Minute}
	waitReady(t, client, base)
	req := ProveRequest{Circuit: "synthetic", N: 64}

	status, body, _ := doJSON(t, client, http.MethodPost, base+"/jobs", "key-acme", req)
	if status != http.StatusAccepted {
		t.Fatalf("acme job 1: %d %s", status, body)
	}
	var jr JobResponse
	json.Unmarshal(body, &jr)
	if jr.Tenant != "acme" {
		t.Fatalf("job attributed to %q, want acme: %s", jr.Tenant, body)
	}
	id := jr.ID

	// Second live job exceeds acme's MaxJobs=1.
	status, body, hdr := doJSON(t, client, http.MethodPost, base+"/jobs", "key-acme", req)
	if status != http.StatusTooManyRequests || !strings.Contains(string(body), `"code":"tenant-jobs-quota"`) {
		t.Fatalf("acme job 2: %d %s, want tenant-jobs-quota 429", status, body)
	}
	if hdr.Get("X-Quota-Max-Jobs") != "1" {
		t.Fatalf("quota headers %v", hdr)
	}
	// beta is not affected by acme's quota.
	if status, body, _ := doJSON(t, client, http.MethodPost, base+"/jobs", "key-beta", req); status != http.StatusAccepted {
		t.Fatalf("beta job under acme quota: %d %s", status, body)
	}

	// Visibility: beta and anonymous cannot see acme's job — 404, not
	// 403, so job IDs don't leak existence across tenants.
	for _, key := range []string{"key-beta", ""} {
		if status, body, _ := doJSON(t, client, http.MethodGet, base+"/jobs/"+id, key, nil); status != http.StatusNotFound {
			t.Fatalf("cross-tenant GET with key %q: %d %s", key, status, body)
		}
		if status, body, _ := doJSON(t, client, http.MethodDelete, base+"/jobs/"+id, key, nil); status != http.StatusNotFound {
			t.Fatalf("cross-tenant DELETE with key %q: %d %s", key, status, body)
		}
	}
	if status, body, _ := doJSON(t, client, http.MethodGet, base+"/jobs/"+id, "key-acme", nil); status != http.StatusOK {
		t.Fatalf("owner GET: %d %s", status, body)
	}

	close(gate)
	// Once the job completes, acme's quota frees up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, _, _ := doJSON(t, client, http.MethodPost, base+"/jobs", "key-acme", req)
		if status == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("acme quota never released after job completion")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobsCachedFlag: with the cache enabled, the second identical
// async job is served from the cache and says so.
func TestJobsCachedFlag(t *testing.T) {
	cfg := jobsConfig(t)
	cfg.CacheMB = 4
	_, base, _ := startServer(t, cfg)
	client := &http.Client{Timeout: time.Minute}
	waitReady(t, client, base)
	req := ProveRequest{Circuit: "synthetic", N: 128}

	id1 := submitJob(t, client, base, req)
	jr1 := pollJob(t, client, base, id1)
	if jr1.State != "done" || jr1.Cached {
		t.Fatalf("first job: state %s cached %v", jr1.State, jr1.Cached)
	}
	id2 := submitJob(t, client, base, req)
	jr2 := pollJob(t, client, base, id2)
	if jr2.State != "done" || !jr2.Cached {
		t.Fatalf("second job: state %s cached %v, want cached done", jr2.State, jr2.Cached)
	}
	if jr2.ProofB64 != jr1.ProofB64 {
		t.Fatal("cached job proof differs from the original")
	}
}
