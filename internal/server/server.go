// Package server implements the multi-session proving service: an HTTP
// front end over the library's ProveCtx/VerifyCtx with the admission
// control a shared prover needs. Proving is seconds of CPU and hundreds
// of megabytes of scratch per request, so the server never lets HTTP
// concurrency become proving concurrency: a fixed worker pool executes
// the cryptographic work and bounded per-tenant queues in front of it
// shed load with 429 the moment a tenant's backlog is full, instead of
// stacking requests until the process dies.
//
// Admission is multi-tenant (DESIGN.md §12): requests authenticate with
// a static API key (or fall to the anonymous default tenant), pass the
// tenant's token-bucket rate limit, and join the tenant's own bounded
// queue. A weighted deficit-round-robin scheduler hands queued requests
// to the worker pool, so one saturating tenant cannot starve the rest —
// a light tenant's head-of-queue request is served within a bounded
// number of dequeues. A content-addressed proof cache (verify-on-insert,
// singleflight) sits behind admission so repeat proofs cost a lookup.
//
// Per-request accounting rides on the stats Collector (nocap.Collector):
// each request attaches its own collector to the proving context, so the
// five-stage kernel breakdown and arena behavior returned in responses
// describe exactly that request's work even when eight proves overlap —
// the process-global counters stay what they are, an aggregate across
// all runs, and /metrics exposes them as such.
//
// Error taxonomy (DESIGN.md §7) maps onto HTTP status codes:
//
//	usage                  → 400
//	malformed-proof        → 400
//	bad-commitment         → 400
//	unknown API key        → 401
//	resource-limit         → 413 (request bounds) or 504 (deadline)
//	internal               → 500
//	queue/rate/quota full  → 429 (typed per-tenant, Retry-After set)
//	draining               → 503
//
// A proof that parses but fails verification is not a transport error:
// POST /verify answers 200 with {"valid": false} and the taxonomy code.
package server

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nocap"
	"nocap/internal/cluster"
	"nocap/internal/hashfn"
	"nocap/internal/jobs"
	"nocap/internal/proofcache"
	"nocap/internal/tenant"
	"nocap/internal/zkerr"
)

// Config parameterizes the service. The zero value of any field means
// "use the default" (see Normalize).
type Config struct {
	// Addr is the listen address, e.g. "127.0.0.1:8080".
	Addr string
	// Workers bounds concurrent proving/verification runs. Default 2.
	Workers int
	// QueueDepth bounds requests admitted but not yet running, per
	// tenant (it is the default tenant queue depth; individual tenants
	// may override). Beyond it the server answers 429. Default 2×Workers.
	QueueDepth int
	// RequestTimeout caps every request's proving deadline; a request's
	// own timeout_ms may shorten it but never extend it. Default 2m.
	RequestTimeout time.Duration
	// MemoryBudgetMB is the per-request decode envelope: request bodies
	// and decoded proofs may not exceed it. Default 64 MB.
	MemoryBudgetMB int
	// MaxN caps the circuit size parameter a request may ask for.
	// Default 1 << 16.
	MaxN int
	// Params are the proving parameters (Reps is overridden per request
	// when the request sets reps). Default nocap.DefaultParams().
	Params nocap.Params

	// Tenants are the keyed tenants (API key required); empty means the
	// service runs single-tenant on the anonymous default tenant.
	Tenants []tenant.Config
	// TenantDefaults configures the anonymous default tenant and
	// supplies fallback values for keyed tenants' zero fields. Its zero
	// value means weight 1, queue depth QueueDepth, no rate limit.
	TenantDefaults tenant.Config
	// CacheMB is the content-addressed proof cache budget; <= 0
	// disables the cache (and singleflight coalescing with it).
	CacheMB int

	// DataDir enables the durable async job API (POST/GET/DELETE /jobs):
	// the job journal and proof payloads live here and survive restarts.
	// Empty disables the endpoints.
	DataDir string
	// JobWorkers / JobMaxPending / JobMaxAttempts / JobBackoffBase /
	// JobBackoffMax / JobBreakerThreshold / JobBreakerCooldown tune the
	// job manager; zero values take the jobs package defaults.
	JobWorkers          int
	JobMaxPending       int
	JobMaxAttempts      int
	JobBackoffBase      time.Duration
	JobBackoffMax       time.Duration
	JobBreakerThreshold int
	JobBreakerCooldown  time.Duration
	// JobJournalMaxMB / JobJournalMaxRecords bound the job journal:
	// past either, a background compaction snapshots live state and
	// truncates the journal. Zero for both disables compaction.
	JobJournalMaxMB      int
	JobJournalMaxRecords int64
	// JobRetention garbage-collects terminal jobs (and their proof
	// files) older than this at compaction time; zero keeps them until
	// the operator cleans up.
	JobRetention time.Duration
	// JobDegradedThreshold / JobProbeInterval / JobCompactCheck tune
	// degraded-mode entry, the disk-recovery probe cadence, and the
	// compaction poll tick; zero values take the jobs package defaults.
	JobDegradedThreshold int
	JobProbeInterval     time.Duration
	JobCompactCheck      time.Duration
	// JobsExec overrides the proving executor for async jobs (test hook;
	// nil means the real ProveCtx pipeline).
	JobsExec jobs.Exec
	// JobBatchWindow enables the batch planner (DESIGN.md §15): queued
	// jobs for the same tenant with the same (circuit, n, reps) key that
	// arrive within this window coalesce into one batched attempt proved
	// through a shared-structure plan. Zero disables batching.
	// JobBatchMax caps the batch size (zero takes the jobs default, 8).
	JobBatchWindow time.Duration
	JobBatchMax    int

	// ClusterEnabled turns the server into a cluster coordinator
	// (DESIGN.md §16): async job attempts dispatch to worker nodes over
	// the /cluster/* endpoints instead of proving in-process. Requires
	// DataDir.
	ClusterEnabled bool
	// ClusterKey, when set, is required as X-Cluster-Key on every
	// worker RPC.
	ClusterKey string
	// ClusterLeaseTTL is the assignment lease TTL (default 3s);
	// ClusterDeadAfter marks silent nodes dead (default 3×TTL);
	// ClusterProbeBase shapes the jittered dead-node re-admission delay
	// (default 5s).
	ClusterLeaseTTL  time.Duration
	ClusterDeadAfter time.Duration
	ClusterProbeBase time.Duration
	// ClusterLocalFallback lets the coordinator prove in-process when
	// zero live workers exist; false sheds new jobs with a typed 503
	// {"code":"no_workers"} instead.
	ClusterLocalFallback bool
	// ClusterSeed seeds lease/probe jitter for deterministic tests.
	ClusterSeed int64
}

// Normalize fills zero fields with defaults.
func (c Config) Normalize() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Minute
	}
	if c.MemoryBudgetMB <= 0 {
		c.MemoryBudgetMB = 64
	}
	if c.MaxN <= 0 {
		c.MaxN = 1 << 16
	}
	var zero nocap.Params
	if c.Params == zero {
		c.Params = nocap.DefaultParams()
	}
	return c
}

// decodeLimits derives the per-request DecodeLimits from the memory
// envelope: no decode may allocate more than the budget, and no proof
// larger than the budget is even parsed.
func (c Config) decodeLimits() nocap.DecodeLimits {
	budget := int64(c.MemoryBudgetMB) << 20
	l := nocap.DefaultDecodeLimits()
	l.MaxTotalAlloc = budget
	if int64(l.MaxProofBytes) > budget {
		l.MaxProofBytes = int(budget)
	}
	return l
}

// job is one admitted request waiting for a worker. The handler
// goroutine blocks on done until the worker has written the response, so
// a response is never half-written when the handler returns (the drain
// guarantee rides on this: http.Server.Shutdown waits for handlers,
// handlers wait for workers).
type job struct {
	run      func()
	done     chan struct{}
	enqueued time.Time
	// dropped is set (before done closes) when the shutdown sweep
	// completed this entry without running it; jobGate reads it after
	// <-done to tell "ran" from "provably shed".
	dropped bool
}

// drainEstimator measures the worker pool's service rate so Retry-After
// on shed requests reflects the actual backlog instead of a fixed
// constant: a queue of B items draining through W workers at mean
// service time s clears in about s·(B+1)/W.
type drainEstimator struct {
	completions atomic.Int64
	serviceNs   atomic.Int64
}

func (d *drainEstimator) observe(service time.Duration) {
	d.completions.Add(1)
	d.serviceNs.Add(service.Nanoseconds())
}

// retryAfter estimates when a shed request is worth retrying, clamped
// to [1s, 30s]. With no completed work yet it falls back to the 1s
// floor (the pre-estimator behaviour).
func (d *drainEstimator) retryAfter(backlog, workers int) time.Duration {
	n := d.completions.Load()
	if n <= 0 {
		return time.Second
	}
	mean := time.Duration(d.serviceNs.Load() / n)
	if workers < 1 {
		workers = 1
	}
	est := mean * time.Duration(backlog+1) / time.Duration(workers)
	if est < time.Second {
		est = time.Second
	}
	if est > 30*time.Second {
		est = 30 * time.Second
	}
	return est
}

// Server is the proving service. Create with New, start with Serve or
// ListenAndServe, stop with Shutdown.
type Server struct {
	cfg      Config
	limits   nocap.DecodeLimits
	mux      *http.ServeMux
	http     *http.Server
	reg      *tenant.Registry
	sched    *tenant.Scheduler
	cache    *proofcache.Cache
	coord    *cluster.Coordinator
	drainEst drainEstimator
	draining atomic.Bool
	inflight atomic.Int64
	metrics  metrics

	baseCtx    context.Context
	cancelBase context.CancelFunc

	workerWG sync.WaitGroup
	quit     chan struct{}
	// workersDone closes after the last worker exits; anything still
	// queued in the scheduler at that point will never run and must be
	// swept.
	workersDone chan struct{}

	// Async job state: the manager opens in the background (journal
	// replay can be slow) and recovering stays true until it is usable.
	jobsMu     sync.Mutex
	jobsMgr    *jobs.Manager
	jobsErr    error
	recovering atomic.Bool

	listenerMu sync.Mutex
	listener   net.Listener
}

// New returns an unstarted server. It fails only on invalid tenant
// configuration (duplicate IDs or API keys, keyless tenants).
func New(cfg Config) (*Server, error) {
	cfg = cfg.Normalize()
	defaults := cfg.TenantDefaults
	if defaults.QueueDepth <= 0 {
		defaults.QueueDepth = cfg.QueueDepth
	}
	reg, err := tenant.NewRegistry(defaults, cfg.Tenants)
	if err != nil {
		return nil, err
	}
	queues := make([]tenant.QueueConfig, 0, len(reg.All()))
	for _, t := range reg.All() {
		queues = append(queues, tenant.QueueConfig{
			ID:          t.ID,
			Weight:      t.Weight,
			Depth:       t.QueueDepth,
			MaxInflight: t.MaxInflight,
		})
	}
	s := &Server{
		cfg:         cfg,
		limits:      cfg.decodeLimits(),
		mux:         http.NewServeMux(),
		reg:         reg,
		sched:       tenant.NewScheduler(queues),
		quit:        make(chan struct{}),
		workersDone: make(chan struct{}),
	}
	if cfg.CacheMB > 0 {
		s.cache = proofcache.New(proofcache.Config{MaxBytes: int64(cfg.CacheMB) << 20})
	}
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	s.mux.HandleFunc("POST /prove", s.withTenant(s.handleProve))
	s.mux.HandleFunc("POST /verify", s.withTenant(s.handleVerify))
	s.mux.HandleFunc("POST /jobs", s.withTenant(s.handleJobCreate))
	s.mux.HandleFunc("GET /jobs/{id}", s.withTenant(s.handleJobGet))
	s.mux.HandleFunc("DELETE /jobs/{id}", s.withTenant(s.handleJobCancel))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.ClusterEnabled {
		if err := s.openCluster(); err != nil {
			s.cancelBase()
			return nil, err
		}
	}
	s.http = &http.Server{
		Addr:    cfg.Addr,
		Handler: s.mux,
		BaseContext: func(net.Listener) context.Context {
			// Request contexts descend from baseCtx so a drain deadline can
			// cancel every in-flight prove at once.
			return s.baseCtx
		},
		ReadHeaderTimeout: 10 * time.Second,
	}
	if cfg.ClusterEnabled {
		// Workers speak unencrypted HTTP/2 (h2c) for multiplexed
		// long-polls and completions; HTTP/1.1 clients keep working.
		protos := new(http.Protocols)
		protos.SetHTTP1(true)
		protos.SetUnencryptedHTTP2(true)
		s.http.Protocols = protos
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	if cfg.DataDir != "" {
		s.recovering.Store(true)
		go s.openJobs()
	}
	return s, nil
}

// Handler returns the HTTP handler, for tests driving the server through
// httptest without a listener.
func (s *Server) Handler() http.Handler { return s.mux }

// Listen binds the configured address and returns it, so callers (and
// tests using port 0) learn the concrete address before serving.
func (s *Server) Listen() (net.Addr, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.listenerMu.Lock()
	s.listener = ln
	s.listenerMu.Unlock()
	return ln.Addr(), nil
}

// Serve accepts connections on the listener bound by Listen until
// Shutdown. It returns nil after a clean shutdown.
func (s *Server) Serve() error {
	s.listenerMu.Lock()
	ln := s.listener
	s.listenerMu.Unlock()
	if ln == nil {
		return zkerr.Internalf("server: Serve before Listen")
	}
	err := s.http.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the server: stop admitting (new requests get 503),
// wait for queued and in-flight requests to finish, then stop the
// workers. If ctx expires first, every in-flight proving context is
// cancelled — the provers abandon work at their next checkpoint and the
// handlers still write complete (error) responses before exiting.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	// Stop the job manager first: it quits dispatching onto the worker
	// pool and cancels in-flight attempts WITHOUT journaling terminal
	// states, so interrupted jobs replay on the next start exactly as
	// after a crash. Wait out a still-running recovery so the journal is
	// closed cleanly when possible.
	for s.cfg.DataDir != "" && s.recovering.Load() && ctx.Err() == nil {
		time.Sleep(2 * time.Millisecond)
	}
	if mgr, _ := s.jobsManager(); mgr != nil {
		_ = mgr.Close(ctx)
	}
	// Stop the coordinator after the manager (its Exec callers are gone)
	// and before the HTTP drain so parked worker long-polls wake up.
	if s.coord != nil {
		s.coord.Close()
	}
	err := s.http.Shutdown(ctx)
	if err != nil {
		// Drain deadline hit: cancel all request contexts and collect the
		// (now fast) stragglers.
		s.cancelBase()
		err = s.http.Shutdown(context.Background())
	}
	close(s.quit)
	s.sched.Stop()
	s.workerWG.Wait()
	// If the manager's Close hit the drain deadline above, its
	// dispatchers can still be parked in jobGate on entries the (now
	// exited) workers never picked up. Publish that the pool is gone and
	// sweep the queues so every waiter is released instead of leaking.
	close(s.workersDone)
	s.drainJobQueue()
	s.cancelBase()
	return err
}

// drainJobQueue completes every entry still sitting in the scheduler
// after the workers have exited, without running it. Safe to call
// concurrently (jobGate waiters sweep too): Drain hands each entry out
// exactly once.
func (s *Server) drainJobQueue() {
	for _, v := range s.sched.Drain() {
		j := v.(*job)
		j.dropped = true
		close(j.done)
	}
}

// worker executes scheduled jobs one at a time until the scheduler
// stops.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		v, tenantID, wait, ok := s.sched.Dequeue()
		if !ok {
			return
		}
		j := v.(*job)
		s.metrics.queueWaitNs.Add(wait.Nanoseconds())
		start := time.Now()
		j.run()
		s.drainEst.observe(time.Since(start))
		s.sched.Done(tenantID)
		close(j.done)
	}
}

// admit enqueues work on the tenant's queue and blocks until it has
// run, or rejects it (writing the response itself) when the server is
// draining or the tenant's queue is full. A full queue is a per-tenant
// condition: other tenants' backlog can never cause this 429.
func (s *Server) admit(w http.ResponseWriter, ten *tenant.Tenant, run func()) bool {
	if s.draining.Load() {
		s.metrics.rejectedDraining.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server is draining", "draining")
		return false
	}
	j := &job{run: run, done: make(chan struct{}), enqueued: time.Now()}
	if err := s.sched.Enqueue(ten.ID, j, 1); err != nil {
		if errors.Is(err, tenant.ErrStopped) {
			s.metrics.rejectedDraining.Add(1)
			writeError(w, http.StatusServiceUnavailable, "server is draining", "draining")
			return false
		}
		s.metrics.rejectedQueueFull.Add(1)
		w.Header().Set("Retry-After", retryAfterJitter(s.drainEst.retryAfter(s.sched.Len(), s.cfg.Workers), 2))
		s.quotaHeaders(w, ten)
		writeTenantError(w, http.StatusTooManyRequests, "tenant admission queue is full", "queue-full", ten.ID)
		return false
	}
	<-j.done
	if j.dropped {
		s.metrics.rejectedDraining.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server is draining", "draining")
		return false
	}
	return true
}

// rateGate resolves the request's tenant and charges its token bucket.
// A refusal is a per-tenant 429 with the quota headers and a
// Retry-After equal to the bucket's refill horizon.
func (s *Server) rateGate(w http.ResponseWriter, r *http.Request) (*tenant.Tenant, bool) {
	ten := s.tenantFor(r)
	if ok, retryIn := ten.Allow(); !ok {
		ten.RecordRateReject()
		s.metrics.rejectedRateLimited.Add(1)
		w.Header().Set("Retry-After", retryAfterJitter(retryIn, 1))
		s.quotaHeaders(w, ten)
		writeTenantError(w, http.StatusTooManyRequests, "tenant rate limit exceeded", "rate-limited", ten.ID)
		return nil, false
	}
	return ten, true
}

// quotaHeaders attaches the tenant's limits to a response so shed
// clients learn their budget, not just that they exceeded it.
func (s *Server) quotaHeaders(w http.ResponseWriter, ten *tenant.Tenant) {
	h := w.Header()
	h.Set("X-Quota-Tenant", ten.ID)
	h.Set("X-Quota-Weight", strconv.Itoa(ten.Weight))
	h.Set("X-Quota-Queue-Depth", strconv.Itoa(ten.QueueDepth))
	if ten.RatePerSec > 0 {
		h.Set("X-RateLimit-Limit", strconv.FormatFloat(ten.RatePerSec, 'f', -1, 64))
		h.Set("X-RateLimit-Burst", strconv.Itoa(ten.Burst))
	}
	if ten.MaxJobs > 0 {
		h.Set("X-Quota-Max-Jobs", strconv.Itoa(ten.MaxJobs))
	}
}

// ProveRequest is the POST /prove body.
type ProveRequest struct {
	// Circuit is a benchmark name (see nocap.CircuitNames).
	Circuit string `json:"circuit"`
	// N is the circuit size parameter; clamped to the circuit minimum,
	// bounded above by the server's MaxN.
	N int `json:"n"`
	// Reps is the soundness repetition count (default 1).
	Reps int `json:"reps,omitempty"`
	// TimeoutMS shortens (never extends) the server's request timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// StageJSON is one kernel stage's per-request counters.
type StageJSON struct {
	Calls  int64 `json:"calls"`
	Elems  int64 `json:"elems"`
	WallNs int64 `json:"wall_ns"`
}

// StatsJSON is the per-request execution breakdown, measured by the
// request's own collector (truthful under concurrency).
type StatsJSON struct {
	Stages map[string]StageJSON `json:"stages"`
	Arena  struct {
		Gets        int64 `json:"gets"`
		Puts        int64 `json:"puts"`
		Hits        int64 `json:"hits"`
		Misses      int64 `json:"misses"`
		Outstanding int64 `json:"outstanding"`
	} `json:"arena"`
}

func statsJSON(run nocap.ProveStats) StatsJSON {
	var out StatsJSON
	out.Stages = make(map[string]StageJSON, 5)
	for name, ss := range run.Stages.Named() {
		out.Stages[name] = StageJSON{Calls: ss.Calls, Elems: ss.Elems, WallNs: int64(ss.Wall)}
	}
	out.Arena.Gets = run.Arena.Gets
	out.Arena.Puts = run.Arena.Puts
	out.Arena.Hits = run.Arena.Hits
	out.Arena.Misses = run.Arena.Misses
	out.Arena.Outstanding = run.Arena.Outstanding
	return out
}

// ProveResponse is the POST /prove success body.
type ProveResponse struct {
	Circuit    string    `json:"circuit"`
	N          int       `json:"n"`
	Cached     bool      `json:"cached"`
	ProofB64   string    `json:"proof_b64"`
	ProofBytes int       `json:"proof_bytes"`
	ElapsedMS  float64   `json:"elapsed_ms"`
	QueueMS    float64   `json:"queue_ms"`
	Stats      StatsJSON `json:"stats"`
}

// VerifyRequest is the POST /verify body.
type VerifyRequest struct {
	Circuit   string `json:"circuit"`
	N         int    `json:"n"`
	Reps      int    `json:"reps,omitempty"`
	ProofB64  string `json:"proof_b64"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// VerifyResponse is the POST /verify body for any proof that was
// structurally decodable: Valid reports the cryptographic outcome, and
// on rejection Code carries the taxonomy class.
type VerifyResponse struct {
	Valid     bool      `json:"valid"`
	Code      string    `json:"code,omitempty"`
	Error     string    `json:"error,omitempty"`
	ElapsedMS float64   `json:"elapsed_ms"`
	Stats     StatsJSON `json:"stats"`
}

// ErrorResponse is every non-2xx body. Tenant names whose quota caused
// a 429 (absent on non-tenant errors).
type ErrorResponse struct {
	Error  string `json:"error"`
	Code   string `json:"code"`
	Tenant string `json:"tenant,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg, code string) {
	writeJSON(w, status, ErrorResponse{Error: msg, Code: code})
}

func writeTenantError(w http.ResponseWriter, status int, msg, code, tenantID string) {
	writeJSON(w, status, ErrorResponse{Error: msg, Code: code, Tenant: tenantID})
}

// statusFor maps a taxonomy-classified error to an HTTP status.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away or the drain deadline fired; the status is
		// for the log line more than the (likely absent) reader.
		return http.StatusServiceUnavailable
	}
	switch zkerr.Code(err) {
	case "usage", "malformed-proof", "bad-commitment":
		return http.StatusBadRequest
	case "resource-limit":
		return http.StatusRequestEntityTooLarge
	case "soundness-check-failed":
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) writeTaxonomyError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	if status >= 500 {
		s.metrics.serverErrors.Add(1)
	} else {
		s.metrics.clientErrors.Add(1)
	}
	code := zkerr.Code(err)
	if code == "" {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			code = "deadline"
		case errors.Is(err, context.Canceled):
			code = "canceled"
		default:
			code = "error"
		}
	}
	writeError(w, status, err.Error(), code)
}

// decodeBody reads and unmarshals a JSON request body bounded by the
// memory envelope.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, int64(s.cfg.MemoryBudgetMB)<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return zkerr.Resourcef("request body exceeds %d MB envelope", s.cfg.MemoryBudgetMB)
		}
		return zkerr.Usagef("decode request: %v", err)
	}
	return nil
}

// requestSetup validates the shared (circuit, n, reps, timeout) fields,
// builds nothing yet, and returns the per-request params and deadline.
func (s *Server) requestSetup(circuit string, n, reps int, timeoutMS int64) (nocap.Params, time.Duration, error) {
	if n > s.cfg.MaxN {
		return nocap.Params{}, 0, zkerr.Resourcef("n=%d exceeds server max %d", n, s.cfg.MaxN)
	}
	if reps == 0 {
		reps = 1
	}
	if reps < 1 || reps > 64 {
		return nocap.Params{}, 0, zkerr.Usagef("reps must be in [1,64], got %d", reps)
	}
	if _, ok := nocapCircuitOK(circuit); !ok {
		return nocap.Params{}, 0, zkerr.Usagef("unknown circuit %q (want one of %v)", circuit, nocap.CircuitNames())
	}
	params := s.cfg.Params
	params.Reps = reps
	timeout := s.cfg.RequestTimeout
	if timeoutMS > 0 {
		if d := time.Duration(timeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	return params, timeout, nil
}

// nocapCircuitOK reports whether name is a known benchmark without
// building it.
func nocapCircuitOK(name string) (string, bool) {
	for _, n := range nocap.CircuitNames() {
		if n == name {
			return n, true
		}
	}
	return "", false
}

// buildFor constructs the benchmark and fits the PCS geometry to it,
// exactly as cmd/nocap-prove does.
func buildFor(params nocap.Params, circuit string, n int) (*nocap.Benchmark, nocap.Params, error) {
	bm, err := nocap.CircuitByName(circuit, n)
	if err != nil {
		return nil, params, err
	}
	if half := bm.Inst.NumVars() / 2; params.PCS.Rows > half {
		params.PCS.Rows = half
	}
	return bm, params, nil
}

// proveCacheKey addresses a proof by (circuit-id, params-digest,
// witness-commitment): two requests share a key exactly when they prove
// the same statement under the same parameters, so everything that
// could change the proof's meaning — circuit, PCS geometry, code,
// repetitions, masking, recomputation — folds into the digest, and the
// full IO and witness vectors fold into the commitment.
func proveCacheKey(circuit string, params nocap.Params, bm *nocap.Benchmark) proofcache.Key {
	codeName := "nil"
	if params.PCS.Code != nil {
		codeName = fmt.Sprintf("%s/%d/%d", params.PCS.Code.Name(), params.PCS.Code.Blowup(), params.PCS.Code.Queries())
	}
	paramsDigest := hashfn.Sum([]byte(fmt.Sprintf(
		"rows=%d code=%s prox=%d maxpts=%d zk=%t reps=%d recompute=%t hash=%s",
		params.PCS.Rows, codeName, params.PCS.NumProximity, params.PCS.MaxPoints,
		params.PCS.ZK, params.Reps, params.Recompute, params.PCS.Engine().Name())))
	witness := hashfn.Hash2(hashfn.HashElems(bm.IO), hashfn.HashElems(bm.Witness))
	k := hashfn.Hash2(hashfn.Hash2(hashfn.Sum([]byte(circuit)), paramsDigest), witness)
	return proofcache.Key(k)
}

// verifyOnInsert is the proof cache's insertion check: decode under the
// server's limits and fully re-verify against the statement. The cache
// refuses (and counts) anything that fails — a corrupt entry must be a
// visible soundness incident, never a served proof.
func (s *Server) verifyOnInsert(params nocap.Params, bm *nocap.Benchmark) func(context.Context, []byte) error {
	return func(ctx context.Context, data []byte) error {
		proof, err := nocap.UnmarshalProofLimits(data, s.limits)
		if err != nil {
			return err
		}
		return nocap.VerifyCtx(ctx, params, bm.Inst, bm.IO, proof)
	}
}

func (s *Server) handleProve(w http.ResponseWriter, r *http.Request) {
	s.metrics.proveRequests.Add(1)
	var req ProveRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeTaxonomyError(w, err)
		return
	}
	params, timeout, err := s.requestSetup(req.Circuit, req.N, req.Reps, req.TimeoutMS)
	if err != nil {
		s.writeTaxonomyError(w, err)
		return
	}
	ten, ok := s.rateGate(w, r)
	if !ok {
		return
	}
	admitted := time.Now()
	var flight *proofcache.Flight
	if !s.admit(w, ten, func() {
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		bm, params, err := buildFor(params, req.Circuit, req.N)
		if err != nil {
			s.writeTaxonomyError(w, err)
			return
		}
		if s.cache == nil {
			s.proveAndRespond(ctx, w, req, params, bm, admitted)
			return
		}
		key := proveCacheKey(req.Circuit, params, bm)
		acq := s.cache.Acquire(key)
		switch {
		case acq.Hit:
			s.writeCachedProve(w, req, acq.Data, admitted)
		case !acq.Leader:
			// Identical prove already in flight on another worker; hand
			// the flight back so the handler waits OUTSIDE the worker
			// pool — a follower must not burn a worker slot idling.
			flight = acq.Flight
		default:
			s.proveForCache(ctx, w, req, key, params, bm, admitted)
		}
	}) {
		return
	}
	if flight == nil {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	data, err := flight.Wait(ctx)
	if err != nil {
		s.writeTaxonomyError(w, err)
		return
	}
	s.writeCachedProve(w, req, data, admitted)
}

// proveAndRespond is the uncached prove path.
func (s *Server) proveAndRespond(ctx context.Context, w http.ResponseWriter, req ProveRequest, params nocap.Params, bm *nocap.Benchmark, admitted time.Time) {
	col := nocap.NewCollector()
	start := time.Now()
	proof, err := nocap.ProveCtx(col.Attach(ctx), params, bm.Inst, bm.IO, bm.Witness)
	elapsed := time.Since(start)
	if err != nil {
		s.writeTaxonomyError(w, err)
		return
	}
	data, err := nocap.MarshalProof(proof)
	if err != nil {
		s.writeTaxonomyError(w, err)
		return
	}
	s.writeProveOK(w, req, data, false, elapsed, start.Sub(admitted), statsJSON(col.Stats()))
}

// proveForCache is the cache-leader prove path: prove, then Commit —
// which re-verifies before insertion and resolves the flight for any
// followers. Errors abort the flight so followers fail fast instead of
// waiting out their deadlines.
func (s *Server) proveForCache(ctx context.Context, w http.ResponseWriter, req ProveRequest, key proofcache.Key, params nocap.Params, bm *nocap.Benchmark, admitted time.Time) {
	col := nocap.NewCollector()
	start := time.Now()
	proof, err := nocap.ProveCtx(col.Attach(ctx), params, bm.Inst, bm.IO, bm.Witness)
	elapsed := time.Since(start)
	if err != nil {
		s.cache.Abort(key, err)
		s.writeTaxonomyError(w, err)
		return
	}
	data, err := nocap.MarshalProof(proof)
	if err != nil {
		s.cache.Abort(key, err)
		s.writeTaxonomyError(w, err)
		return
	}
	data, err = s.cache.Commit(ctx, key, data, s.verifyOnInsert(params, bm))
	if err != nil {
		s.writeTaxonomyError(w, err)
		return
	}
	s.writeProveOK(w, req, data, false, elapsed, start.Sub(admitted), statsJSON(col.Stats()))
}

func (s *Server) writeProveOK(w http.ResponseWriter, req ProveRequest, data []byte, cached bool, elapsed, queued time.Duration, stats StatsJSON) {
	s.metrics.provesOK.Add(1)
	s.metrics.proveNs.Add(elapsed.Nanoseconds())
	writeJSON(w, http.StatusOK, ProveResponse{
		Circuit:    req.Circuit,
		N:          req.N,
		Cached:     cached,
		ProofB64:   base64.StdEncoding.EncodeToString(data),
		ProofBytes: len(data),
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
		QueueMS:    float64(queued) / float64(time.Millisecond),
		Stats:      stats,
	})
}

// writeCachedProve serves cached bytes: no prove ran for this request,
// so elapsed is ~0 and the stats block is empty (provesOK counts real
// proves only; hits show up in the proofcache metrics).
func (s *Server) writeCachedProve(w http.ResponseWriter, req ProveRequest, data []byte, admitted time.Time) {
	writeJSON(w, http.StatusOK, ProveResponse{
		Circuit:    req.Circuit,
		N:          req.N,
		Cached:     true,
		ProofB64:   base64.StdEncoding.EncodeToString(data),
		ProofBytes: len(data),
		QueueMS:    float64(time.Since(admitted)) / float64(time.Millisecond),
		Stats:      StatsJSON{Stages: map[string]StageJSON{}},
	})
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	s.metrics.verifyRequests.Add(1)
	var req VerifyRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeTaxonomyError(w, err)
		return
	}
	params, timeout, err := s.requestSetup(req.Circuit, req.N, req.Reps, req.TimeoutMS)
	if err != nil {
		s.writeTaxonomyError(w, err)
		return
	}
	raw, err := base64.StdEncoding.DecodeString(req.ProofB64)
	if err != nil {
		s.writeTaxonomyError(w, zkerr.Malformedf("proof_b64: %v", err))
		return
	}
	ten, ok := s.rateGate(w, r)
	if !ok {
		return
	}
	s.admit(w, ten, func() {
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		// Structural decode under the memory envelope happens before the
		// expensive circuit build: hostile bytes are rejected at the cost
		// of parsing, not proving.
		proof, err := nocap.UnmarshalProofLimits(raw, s.limits)
		if err != nil {
			s.writeTaxonomyError(w, err)
			return
		}
		bm, params, err := buildFor(params, req.Circuit, req.N)
		if err != nil {
			s.writeTaxonomyError(w, err)
			return
		}
		col := nocap.NewCollector()
		start := time.Now()
		verr := nocap.VerifyCtx(col.Attach(ctx), params, bm.Inst, bm.IO, proof)
		elapsed := time.Since(start)
		resp := VerifyResponse{
			Valid:     verr == nil,
			ElapsedMS: float64(elapsed) / float64(time.Millisecond),
			Stats:     statsJSON(col.Stats()),
		}
		switch {
		case verr == nil:
			s.metrics.verifiesOK.Add(1)
		case errors.Is(verr, context.Canceled) || errors.Is(verr, context.DeadlineExceeded):
			s.writeTaxonomyError(w, verr)
			return
		default:
			// The proof was examined and rejected: that is a completed
			// verification, answered 200 with the taxonomy class, not a
			// transport failure.
			s.metrics.verifiesRejected.Add(1)
			resp.Code = zkerr.Code(verr)
			resp.Error = verr.Error()
		}
		s.metrics.verifyNs.Add(elapsed.Nanoseconds())
		writeJSON(w, http.StatusOK, resp)
	})
}

// handleHealthz is the liveness probe: it answers 200 for as long as
// the process can serve HTTP at all — including during graceful drain,
// when the orchestrator must NOT restart the process (that would kill
// the drain). Whether traffic should be routed here is /readyz's
// question, not this one's.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	body := map[string]any{
		"status":         status,
		"draining":       s.draining.Load(),
		"workers":        s.cfg.Workers,
		"queue_depth":    s.sched.Len(),
		"queue_capacity": s.sched.Capacity(),
		"inflight":       s.inflight.Load(),
	}
	if s.coord != nil {
		cm := s.coord.Metrics()
		live := 0
		for _, n := range cm.Nodes {
			if n.State != "dead" {
				live++
			}
		}
		body["cluster"] = map[string]any{
			"nodes":          len(cm.Nodes),
			"live_nodes":     live,
			"live_leases":    cm.LiveLeases,
			"queued_units":   cm.QueuedUnits,
			"local_fallback": s.cfg.ClusterLocalFallback,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, s.renderMetrics())
}

// Queue reports current backlog and in-flight counts (test hook).
func (s *Server) Queue() (depth, capacity, inflight int) {
	return s.sched.Len(), s.sched.Capacity(), int(s.inflight.Load())
}

// CacheMetrics snapshots the proof cache counters; the zero snapshot
// when the cache is disabled (test hook).
func (s *Server) CacheMetrics() proofcache.Metrics {
	if s.cache == nil {
		return proofcache.Metrics{}
	}
	return s.cache.Metrics()
}

// TenantStats snapshots the per-tenant scheduler counters (test hook).
func (s *Server) TenantStats() []tenant.QueueStats {
	return s.sched.Stats()
}
