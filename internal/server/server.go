// Package server implements the multi-session proving service: an HTTP
// front end over the library's ProveCtx/VerifyCtx with the admission
// control a shared prover needs. Proving is seconds of CPU and hundreds
// of megabytes of scratch per request, so the server never lets HTTP
// concurrency become proving concurrency: a fixed worker pool executes
// the cryptographic work and a bounded queue in front of it sheds load
// with 429 the moment the backlog is full, instead of stacking requests
// until the process dies.
//
// Per-request accounting rides on the stats Collector (nocap.Collector):
// each request attaches its own collector to the proving context, so the
// five-stage kernel breakdown and arena behavior returned in responses
// describe exactly that request's work even when eight proves overlap —
// the process-global counters stay what they are, an aggregate across
// all runs, and /metrics exposes them as such.
//
// Error taxonomy (DESIGN.md §7) maps onto HTTP status codes:
//
//	usage                  → 400
//	malformed-proof        → 400
//	bad-commitment         → 400
//	resource-limit         → 413 (request bounds) or 504 (deadline)
//	internal               → 500
//	queue full             → 429 (Retry-After set)
//	draining               → 503
//
// A proof that parses but fails verification is not a transport error:
// POST /verify answers 200 with {"valid": false} and the taxonomy code.
package server

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"nocap"
	"nocap/internal/jobs"
	"nocap/internal/zkerr"
)

// Config parameterizes the service. The zero value of any field means
// "use the default" (see Normalize).
type Config struct {
	// Addr is the listen address, e.g. "127.0.0.1:8080".
	Addr string
	// Workers bounds concurrent proving/verification runs. Default 2.
	Workers int
	// QueueDepth bounds requests admitted but not yet running; beyond it
	// the server answers 429. Default 2×Workers.
	QueueDepth int
	// RequestTimeout caps every request's proving deadline; a request's
	// own timeout_ms may shorten it but never extend it. Default 2m.
	RequestTimeout time.Duration
	// MemoryBudgetMB is the per-request decode envelope: request bodies
	// and decoded proofs may not exceed it. Default 64 MB.
	MemoryBudgetMB int
	// MaxN caps the circuit size parameter a request may ask for.
	// Default 1 << 16.
	MaxN int
	// Params are the proving parameters (Reps is overridden per request
	// when the request sets reps). Default nocap.DefaultParams().
	Params nocap.Params

	// DataDir enables the durable async job API (POST/GET/DELETE /jobs):
	// the job journal and proof payloads live here and survive restarts.
	// Empty disables the endpoints.
	DataDir string
	// JobWorkers / JobMaxPending / JobMaxAttempts / JobBackoffBase /
	// JobBackoffMax / JobBreakerThreshold / JobBreakerCooldown tune the
	// job manager; zero values take the jobs package defaults.
	JobWorkers          int
	JobMaxPending       int
	JobMaxAttempts      int
	JobBackoffBase      time.Duration
	JobBackoffMax       time.Duration
	JobBreakerThreshold int
	JobBreakerCooldown  time.Duration
	// JobsExec overrides the proving executor for async jobs (test hook;
	// nil means the real ProveCtx pipeline).
	JobsExec jobs.Exec
}

// Normalize fills zero fields with defaults.
func (c Config) Normalize() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Minute
	}
	if c.MemoryBudgetMB <= 0 {
		c.MemoryBudgetMB = 64
	}
	if c.MaxN <= 0 {
		c.MaxN = 1 << 16
	}
	var zero nocap.Params
	if c.Params == zero {
		c.Params = nocap.DefaultParams()
	}
	return c
}

// decodeLimits derives the per-request DecodeLimits from the memory
// envelope: no decode may allocate more than the budget, and no proof
// larger than the budget is even parsed.
func (c Config) decodeLimits() nocap.DecodeLimits {
	budget := int64(c.MemoryBudgetMB) << 20
	l := nocap.DefaultDecodeLimits()
	l.MaxTotalAlloc = budget
	if int64(l.MaxProofBytes) > budget {
		l.MaxProofBytes = int(budget)
	}
	return l
}

// job is one admitted request waiting for a worker. The handler
// goroutine blocks on done until the worker has written the response, so
// a response is never half-written when the handler returns (the drain
// guarantee rides on this: http.Server.Shutdown waits for handlers,
// handlers wait for workers).
type job struct {
	run      func()
	done     chan struct{}
	enqueued time.Time
	// dropped is set (before done closes) when the shutdown sweep
	// completed this entry without running it; jobGate reads it after
	// <-done to tell "ran" from "provably shed".
	dropped bool
}

// Server is the proving service. Create with New, start with Serve or
// ListenAndServe, stop with Shutdown.
type Server struct {
	cfg      Config
	limits   nocap.DecodeLimits
	mux      *http.ServeMux
	http     *http.Server
	jobs     chan *job
	draining atomic.Bool
	inflight atomic.Int64
	metrics  metrics

	baseCtx    context.Context
	cancelBase context.CancelFunc

	workerWG sync.WaitGroup
	quit     chan struct{}
	// workersDone closes after the last worker exits; anything still in
	// s.jobs at that point will never run and must be swept.
	workersDone chan struct{}

	// Async job state: the manager opens in the background (journal
	// replay can be slow) and recovering stays true until it is usable.
	jobsMu     sync.Mutex
	jobsMgr    *jobs.Manager
	jobsErr    error
	recovering atomic.Bool

	listenerMu sync.Mutex
	listener   net.Listener
}

// New returns an unstarted server.
func New(cfg Config) *Server {
	cfg = cfg.Normalize()
	s := &Server{
		cfg:    cfg,
		limits: cfg.decodeLimits(),
		mux:    http.NewServeMux(),
		jobs:        make(chan *job, cfg.QueueDepth),
		quit:        make(chan struct{}),
		workersDone: make(chan struct{}),
	}
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	s.mux.HandleFunc("POST /prove", s.handleProve)
	s.mux.HandleFunc("POST /verify", s.handleVerify)
	s.mux.HandleFunc("POST /jobs", s.handleJobCreate)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.http = &http.Server{
		Addr:    cfg.Addr,
		Handler: s.mux,
		BaseContext: func(net.Listener) context.Context {
			// Request contexts descend from baseCtx so a drain deadline can
			// cancel every in-flight prove at once.
			return s.baseCtx
		},
		ReadHeaderTimeout: 10 * time.Second,
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	if cfg.DataDir != "" {
		s.recovering.Store(true)
		go s.openJobs()
	}
	return s
}

// Handler returns the HTTP handler, for tests driving the server through
// httptest without a listener.
func (s *Server) Handler() http.Handler { return s.mux }

// Listen binds the configured address and returns it, so callers (and
// tests using port 0) learn the concrete address before serving.
func (s *Server) Listen() (net.Addr, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.listenerMu.Lock()
	s.listener = ln
	s.listenerMu.Unlock()
	return ln.Addr(), nil
}

// Serve accepts connections on the listener bound by Listen until
// Shutdown. It returns nil after a clean shutdown.
func (s *Server) Serve() error {
	s.listenerMu.Lock()
	ln := s.listener
	s.listenerMu.Unlock()
	if ln == nil {
		return zkerr.Internalf("server: Serve before Listen")
	}
	err := s.http.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the server: stop admitting (new requests get 503),
// wait for queued and in-flight requests to finish, then stop the
// workers. If ctx expires first, every in-flight proving context is
// cancelled — the provers abandon work at their next checkpoint and the
// handlers still write complete (error) responses before exiting.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	// Stop the job manager first: it quits dispatching onto the worker
	// pool and cancels in-flight attempts WITHOUT journaling terminal
	// states, so interrupted jobs replay on the next start exactly as
	// after a crash. Wait out a still-running recovery so the journal is
	// closed cleanly when possible.
	for s.cfg.DataDir != "" && s.recovering.Load() && ctx.Err() == nil {
		time.Sleep(2 * time.Millisecond)
	}
	if mgr, _ := s.jobsManager(); mgr != nil {
		_ = mgr.Close(ctx)
	}
	err := s.http.Shutdown(ctx)
	if err != nil {
		// Drain deadline hit: cancel all request contexts and collect the
		// (now fast) stragglers.
		s.cancelBase()
		err = s.http.Shutdown(context.Background())
	}
	close(s.quit)
	s.workerWG.Wait()
	// If the manager's Close hit the drain deadline above, its
	// dispatchers can still be parked in jobGate on entries the (now
	// exited) workers never picked up. Publish that the pool is gone and
	// sweep the queue so every waiter is released instead of leaking.
	close(s.workersDone)
	s.drainJobQueue()
	s.cancelBase()
	return err
}

// drainJobQueue completes every entry still sitting in the admission
// queue after the workers have exited, without running it. Safe to call
// concurrently (jobGate waiters sweep too): each entry is received, and
// therefore completed, exactly once.
func (s *Server) drainJobQueue() {
	for {
		select {
		case j := <-s.jobs:
			j.dropped = true
			close(j.done)
		default:
			return
		}
	}
}

// worker executes admitted jobs one at a time until quit closes.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		select {
		case j := <-s.jobs:
			s.metrics.queueWaitNs.Add(time.Since(j.enqueued).Nanoseconds())
			j.run()
			close(j.done)
		case <-s.quit:
			return
		}
	}
}

// admit enqueues work for the pool and blocks until it has run, or
// rejects it (writing the response itself) when the server is draining
// or the queue is full.
func (s *Server) admit(w http.ResponseWriter, run func()) bool {
	if s.draining.Load() {
		s.metrics.rejectedDraining.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server is draining", "draining")
		return false
	}
	j := &job{run: run, done: make(chan struct{}), enqueued: time.Now()}
	select {
	case s.jobs <- j:
	default:
		s.metrics.rejectedQueueFull.Add(1)
		w.Header().Set("Retry-After", retryAfterJitter(time.Second, 2))
		writeError(w, http.StatusTooManyRequests, "admission queue is full", "queue-full")
		return false
	}
	<-j.done
	return true
}

// ProveRequest is the POST /prove body.
type ProveRequest struct {
	// Circuit is a benchmark name (see nocap.CircuitNames).
	Circuit string `json:"circuit"`
	// N is the circuit size parameter; clamped to the circuit minimum,
	// bounded above by the server's MaxN.
	N int `json:"n"`
	// Reps is the soundness repetition count (default 1).
	Reps int `json:"reps,omitempty"`
	// TimeoutMS shortens (never extends) the server's request timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// StageJSON is one kernel stage's per-request counters.
type StageJSON struct {
	Calls  int64 `json:"calls"`
	Elems  int64 `json:"elems"`
	WallNs int64 `json:"wall_ns"`
}

// StatsJSON is the per-request execution breakdown, measured by the
// request's own collector (truthful under concurrency).
type StatsJSON struct {
	Stages map[string]StageJSON `json:"stages"`
	Arena  struct {
		Gets        int64 `json:"gets"`
		Puts        int64 `json:"puts"`
		Hits        int64 `json:"hits"`
		Misses      int64 `json:"misses"`
		Outstanding int64 `json:"outstanding"`
	} `json:"arena"`
}

func statsJSON(run nocap.ProveStats) StatsJSON {
	var out StatsJSON
	out.Stages = make(map[string]StageJSON, 5)
	for name, ss := range run.Stages.Named() {
		out.Stages[name] = StageJSON{Calls: ss.Calls, Elems: ss.Elems, WallNs: int64(ss.Wall)}
	}
	out.Arena.Gets = run.Arena.Gets
	out.Arena.Puts = run.Arena.Puts
	out.Arena.Hits = run.Arena.Hits
	out.Arena.Misses = run.Arena.Misses
	out.Arena.Outstanding = run.Arena.Outstanding
	return out
}

// ProveResponse is the POST /prove success body.
type ProveResponse struct {
	Circuit    string    `json:"circuit"`
	N          int       `json:"n"`
	ProofB64   string    `json:"proof_b64"`
	ProofBytes int       `json:"proof_bytes"`
	ElapsedMS  float64   `json:"elapsed_ms"`
	QueueMS    float64   `json:"queue_ms"`
	Stats      StatsJSON `json:"stats"`
}

// VerifyRequest is the POST /verify body.
type VerifyRequest struct {
	Circuit   string `json:"circuit"`
	N         int    `json:"n"`
	Reps      int    `json:"reps,omitempty"`
	ProofB64  string `json:"proof_b64"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// VerifyResponse is the POST /verify body for any proof that was
// structurally decodable: Valid reports the cryptographic outcome, and
// on rejection Code carries the taxonomy class.
type VerifyResponse struct {
	Valid     bool      `json:"valid"`
	Code      string    `json:"code,omitempty"`
	Error     string    `json:"error,omitempty"`
	ElapsedMS float64   `json:"elapsed_ms"`
	Stats     StatsJSON `json:"stats"`
}

// ErrorResponse is every non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg, code string) {
	writeJSON(w, status, ErrorResponse{Error: msg, Code: code})
}

// statusFor maps a taxonomy-classified error to an HTTP status.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away or the drain deadline fired; the status is
		// for the log line more than the (likely absent) reader.
		return http.StatusServiceUnavailable
	}
	switch zkerr.Code(err) {
	case "usage", "malformed-proof", "bad-commitment":
		return http.StatusBadRequest
	case "resource-limit":
		return http.StatusRequestEntityTooLarge
	case "soundness-check-failed":
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) writeTaxonomyError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	if status >= 500 {
		s.metrics.serverErrors.Add(1)
	} else {
		s.metrics.clientErrors.Add(1)
	}
	code := zkerr.Code(err)
	if code == "" {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			code = "deadline"
		case errors.Is(err, context.Canceled):
			code = "canceled"
		default:
			code = "error"
		}
	}
	writeError(w, status, err.Error(), code)
}

// decodeBody reads and unmarshals a JSON request body bounded by the
// memory envelope.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, int64(s.cfg.MemoryBudgetMB)<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return zkerr.Resourcef("request body exceeds %d MB envelope", s.cfg.MemoryBudgetMB)
		}
		return zkerr.Usagef("decode request: %v", err)
	}
	return nil
}

// requestSetup validates the shared (circuit, n, reps, timeout) fields,
// builds nothing yet, and returns the per-request params and deadline.
func (s *Server) requestSetup(circuit string, n, reps int, timeoutMS int64) (nocap.Params, time.Duration, error) {
	if n > s.cfg.MaxN {
		return nocap.Params{}, 0, zkerr.Resourcef("n=%d exceeds server max %d", n, s.cfg.MaxN)
	}
	if reps == 0 {
		reps = 1
	}
	if reps < 1 || reps > 64 {
		return nocap.Params{}, 0, zkerr.Usagef("reps must be in [1,64], got %d", reps)
	}
	if _, ok := nocapCircuitOK(circuit); !ok {
		return nocap.Params{}, 0, zkerr.Usagef("unknown circuit %q (want one of %v)", circuit, nocap.CircuitNames())
	}
	params := s.cfg.Params
	params.Reps = reps
	timeout := s.cfg.RequestTimeout
	if timeoutMS > 0 {
		if d := time.Duration(timeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	return params, timeout, nil
}

// nocapCircuitOK reports whether name is a known benchmark without
// building it.
func nocapCircuitOK(name string) (string, bool) {
	for _, n := range nocap.CircuitNames() {
		if n == name {
			return n, true
		}
	}
	return "", false
}

// buildFor constructs the benchmark and fits the PCS geometry to it,
// exactly as cmd/nocap-prove does.
func buildFor(params nocap.Params, circuit string, n int) (*nocap.Benchmark, nocap.Params, error) {
	bm, err := nocap.CircuitByName(circuit, n)
	if err != nil {
		return nil, params, err
	}
	if half := bm.Inst.NumVars() / 2; params.PCS.Rows > half {
		params.PCS.Rows = half
	}
	return bm, params, nil
}

func (s *Server) handleProve(w http.ResponseWriter, r *http.Request) {
	s.metrics.proveRequests.Add(1)
	var req ProveRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeTaxonomyError(w, err)
		return
	}
	params, timeout, err := s.requestSetup(req.Circuit, req.N, req.Reps, req.TimeoutMS)
	if err != nil {
		s.writeTaxonomyError(w, err)
		return
	}
	admitted := time.Now()
	s.admit(w, func() {
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		bm, params, err := buildFor(params, req.Circuit, req.N)
		if err != nil {
			s.writeTaxonomyError(w, err)
			return
		}
		col := nocap.NewCollector()
		start := time.Now()
		proof, err := nocap.ProveCtx(col.Attach(ctx), params, bm.Inst, bm.IO, bm.Witness)
		elapsed := time.Since(start)
		if err != nil {
			s.writeTaxonomyError(w, err)
			return
		}
		data, err := nocap.MarshalProof(proof)
		if err != nil {
			s.writeTaxonomyError(w, err)
			return
		}
		s.metrics.provesOK.Add(1)
		s.metrics.proveNs.Add(elapsed.Nanoseconds())
		writeJSON(w, http.StatusOK, ProveResponse{
			Circuit:    req.Circuit,
			N:          req.N,
			ProofB64:   base64.StdEncoding.EncodeToString(data),
			ProofBytes: len(data),
			ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
			QueueMS:    float64(start.Sub(admitted)) / float64(time.Millisecond),
			Stats:      statsJSON(col.Stats()),
		})
	})
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	s.metrics.verifyRequests.Add(1)
	var req VerifyRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeTaxonomyError(w, err)
		return
	}
	params, timeout, err := s.requestSetup(req.Circuit, req.N, req.Reps, req.TimeoutMS)
	if err != nil {
		s.writeTaxonomyError(w, err)
		return
	}
	raw, err := base64.StdEncoding.DecodeString(req.ProofB64)
	if err != nil {
		s.writeTaxonomyError(w, zkerr.Malformedf("proof_b64: %v", err))
		return
	}
	s.admit(w, func() {
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		// Structural decode under the memory envelope happens before the
		// expensive circuit build: hostile bytes are rejected at the cost
		// of parsing, not proving.
		proof, err := nocap.UnmarshalProofLimits(raw, s.limits)
		if err != nil {
			s.writeTaxonomyError(w, err)
			return
		}
		bm, params, err := buildFor(params, req.Circuit, req.N)
		if err != nil {
			s.writeTaxonomyError(w, err)
			return
		}
		col := nocap.NewCollector()
		start := time.Now()
		verr := nocap.VerifyCtx(col.Attach(ctx), params, bm.Inst, bm.IO, proof)
		elapsed := time.Since(start)
		resp := VerifyResponse{
			Valid:     verr == nil,
			ElapsedMS: float64(elapsed) / float64(time.Millisecond),
			Stats:     statsJSON(col.Stats()),
		}
		switch {
		case verr == nil:
			s.metrics.verifiesOK.Add(1)
		case errors.Is(verr, context.Canceled) || errors.Is(verr, context.DeadlineExceeded):
			s.writeTaxonomyError(w, verr)
			return
		default:
			// The proof was examined and rejected: that is a completed
			// verification, answered 200 with the taxonomy class, not a
			// transport failure.
			s.metrics.verifiesRejected.Add(1)
			resp.Code = zkerr.Code(verr)
			resp.Error = verr.Error()
		}
		s.metrics.verifyNs.Add(elapsed.Nanoseconds())
		writeJSON(w, http.StatusOK, resp)
	})
}

// handleHealthz is the liveness probe: it answers 200 for as long as
// the process can serve HTTP at all — including during graceful drain,
// when the orchestrator must NOT restart the process (that would kill
// the drain). Whether traffic should be routed here is /readyz's
// question, not this one's.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"draining":       s.draining.Load(),
		"workers":        s.cfg.Workers,
		"queue_depth":    len(s.jobs),
		"queue_capacity": cap(s.jobs),
		"inflight":       s.inflight.Load(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, s.renderMetrics())
}

// Queue reports current backlog and in-flight counts (test hook).
func (s *Server) Queue() (depth, capacity, inflight int) {
	return len(s.jobs), cap(s.jobs), int(s.inflight.Load())
}
