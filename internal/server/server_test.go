package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nocap"
	"nocap/internal/leakcheck"
)

// testConfig returns a fast configuration for in-process tests.
func testConfig() Config {
	return Config{
		Addr:           "127.0.0.1:0",
		Workers:        4,
		QueueDepth:     8,
		RequestTimeout: time.Minute,
		MemoryBudgetMB: 8,
		Params:         nocap.TestParams(),
	}
}

// startServer runs a server on a loopback listener and returns it, its
// base URL, and an idempotent stop function (also registered as test
// cleanup, so tests that need to verify post-shutdown state call it
// early and the rest get it for free).
func startServer(t *testing.T, cfg Config) (*Server, string, func()) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen()
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve() }()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := s.Shutdown(ctx); err != nil {
				t.Errorf("shutdown: %v", err)
			}
			if err := <-serveErr; err != nil {
				t.Errorf("serve: %v", err)
			}
		})
	}
	t.Cleanup(stop)
	return s, "http://" + addr.String(), stop
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp.StatusCode, out
}

// proveOnce obtains one valid proof through the service, for reuse as
// verify-request ammunition.
func proveOnce(t *testing.T, client *http.Client, base string) ProveResponse {
	t.Helper()
	status, body := postJSON(t, client, base+"/prove", ProveRequest{Circuit: "synthetic", N: 64})
	if status != http.StatusOK {
		t.Fatalf("prove: status %d: %s", status, body)
	}
	var pr ProveResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("prove response: %v", err)
	}
	return pr
}

// TestServerMixedTraffic is the acceptance hammer: ≥8 concurrent
// requests mixing proves, valid verifies, soundness-failing verifies,
// malformed bodies, oversized bodies, and client-cancelled requests —
// all answered with complete typed responses, with zero goroutine leaks
// and the arena checkout balance back at baseline afterwards.
func TestServerMixedTraffic(t *testing.T) {
	snap := leakcheck.Take()
	arenaBefore := nocap.ReadProveStats().Arena

	s, base, stop := startServer(t, testConfig())
	{
		client := &http.Client{Timeout: time.Minute}
		seed := proveOnce(t, client, base)

		// A proof whose bytes decode but whose content fails a check:
		// flip a character in the middle of the valid proof's payload.
		c := []byte(seed.ProofB64)
		if i := len(c) / 2; c[i] == 'A' {
			c[i] = 'B'
		} else {
			c[i] = 'A'
		}
		corrupt := string(c)

		const perKind = 3 // 6 kinds × 3 = 18 concurrent requests
		var wg sync.WaitGroup
		errs := make(chan error, 6*perKind)
		launch := func(f func(i int) error) {
			for i := 0; i < perKind; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					if err := f(i); err != nil {
						errs <- err
					}
				}(i)
			}
		}

		launch(func(i int) error { // proves
			status, body := postJSON(t, client, base+"/prove",
				ProveRequest{Circuit: "synthetic", N: 64 + i})
			if status != http.StatusOK && status != http.StatusTooManyRequests {
				return fmt.Errorf("prove: status %d: %s", status, body)
			}
			if status == http.StatusOK {
				var pr ProveResponse
				if err := json.Unmarshal(body, &pr); err != nil {
					return fmt.Errorf("prove body: %w", err)
				}
				if pr.Stats.Arena.Outstanding != 0 {
					return fmt.Errorf("prove leaked %d arena checkouts", pr.Stats.Arena.Outstanding)
				}
				if pr.Stats.Stages["sumcheck"].Calls == 0 {
					return fmt.Errorf("per-request stats empty: %s", body)
				}
			}
			return nil
		})
		launch(func(int) error { // valid verifies
			status, body := postJSON(t, client, base+"/verify",
				VerifyRequest{Circuit: "synthetic", N: 64, ProofB64: seed.ProofB64})
			if status == http.StatusTooManyRequests {
				return nil
			}
			if status != http.StatusOK {
				return fmt.Errorf("verify: status %d: %s", status, body)
			}
			var vr VerifyResponse
			if err := json.Unmarshal(body, &vr); err != nil {
				return fmt.Errorf("verify body: %w", err)
			}
			if !vr.Valid {
				return fmt.Errorf("valid proof rejected: %s", body)
			}
			return nil
		})
		launch(func(int) error { // corrupt proof: decodes, fails a check
			status, body := postJSON(t, client, base+"/verify",
				VerifyRequest{Circuit: "synthetic", N: 64, ProofB64: corrupt})
			switch status {
			case http.StatusTooManyRequests:
				return nil
			case http.StatusOK:
				var vr VerifyResponse
				if err := json.Unmarshal(body, &vr); err != nil {
					return fmt.Errorf("verify body: %w", err)
				}
				if vr.Valid {
					return fmt.Errorf("corrupt proof accepted")
				}
				if vr.Code == "" {
					return fmt.Errorf("rejection missing taxonomy code: %s", body)
				}
			case http.StatusBadRequest:
				// Corruption may break framing instead of soundness; a typed
				// malformed-proof rejection is equally correct.
				var er ErrorResponse
				if err := json.Unmarshal(body, &er); err != nil || er.Code == "" {
					return fmt.Errorf("untyped 400: %s", body)
				}
			default:
				return fmt.Errorf("corrupt verify: status %d: %s", status, body)
			}
			return nil
		})
		launch(func(int) error { // malformed JSON
			resp, err := client.Post(base+"/prove", "application/json",
				strings.NewReader("{not json"))
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusBadRequest {
				return fmt.Errorf("malformed JSON: status %d: %s", resp.StatusCode, body)
			}
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Code != "usage" {
				return fmt.Errorf("malformed JSON: want typed usage error, got %s", body)
			}
			return nil
		})
		launch(func(int) error { // oversized body
			// Valid JSON shape, 9 MB of payload: the decoder must hit the
			// 8 MB envelope, not a syntax error.
			big := []byte(`{"circuit":"synthetic","n":64,"proof_b64":"` +
				strings.Repeat("A", 9<<20) + `"}`)
			resp, err := client.Post(base+"/verify", "application/json", bytes.NewReader(big))
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusRequestEntityTooLarge {
				return fmt.Errorf("oversized body: status %d: %s", resp.StatusCode, body)
			}
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Code != "resource-limit" {
				return fmt.Errorf("oversized body: want typed resource-limit, got %s", body)
			}
			return nil
		})
		launch(func(int) error { // client cancels mid-prove
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			data, _ := json.Marshal(ProveRequest{Circuit: "synthetic", N: 2048})
			req, _ := http.NewRequestWithContext(ctx, "POST", base+"/prove", bytes.NewReader(data))
			req.Header.Set("Content-Type", "application/json")
			resp, err := client.Do(req)
			if err == nil {
				resp.Body.Close() // finished before the cancel landed; fine
			}
			return nil
		})
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}

		// The service must still be fully functional after the abuse.
		final := proveOnce(t, client, base)
		status, body := postJSON(t, client, base+"/verify",
			VerifyRequest{Circuit: "synthetic", N: 64, ProofB64: final.ProofB64})
		if status != http.StatusOK || !strings.Contains(string(body), `"valid":true`) {
			t.Fatalf("post-hammer verify: status %d: %s", status, body)
		}

		m := s.Metrics()
		if m.ProvesOK == 0 || m.VerifiesOK == 0 {
			t.Errorf("metrics missed successes: %+v", m)
		}
		if m.ClientErrors == 0 {
			t.Errorf("metrics missed client errors: %+v", m)
		}
	}

	// Drain the server, then the process must be back to baseline: no
	// goroutines, no live scratch.
	stop()
	snap.CheckTimeout(t, 5*time.Second)
	arenaAfter := nocap.ReadProveStats().Arena
	if arenaAfter.Outstanding != arenaBefore.Outstanding ||
		arenaAfter.OutstandingElems != arenaBefore.OutstandingElems {
		t.Errorf("arena checkouts leaked: before %+v after %+v", arenaBefore, arenaAfter)
	}
	if arenaAfter.DoubleReturns != arenaBefore.DoubleReturns {
		t.Errorf("double returns during hammer: before %d after %d",
			arenaBefore.DoubleReturns, arenaAfter.DoubleReturns)
	}
}

// TestQueueBackpressure fills a one-worker, one-slot server with slow
// proves and asserts the overflow is shed with typed 429s while admitted
// work completes normally.
func TestQueueBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	s, base, _ := startServer(t, cfg)
	client := &http.Client{Timeout: time.Minute}

	const total = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	statuses := make(map[int]int)
	send := func(n int) {
		defer wg.Done()
		status, body := postJSON(t, client, base+"/prove",
			ProveRequest{Circuit: "synthetic", N: n})
		mu.Lock()
		statuses[status]++
		mu.Unlock()
		if status == http.StatusTooManyRequests {
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Code != "queue-full" {
				t.Errorf("429 without typed queue-full body: %s", body)
			}
		}
	}

	// Occupy the single worker with a slow prove first, so the burst
	// below deterministically finds it busy: one request takes the queue
	// slot, the rest must be shed.
	wg.Add(1)
	go send(16384)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, _, inf := s.Queue(); inf > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow prove never started")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 1; i < total; i++ {
		wg.Add(1)
		go send(1024)
	}
	wg.Wait()
	if statuses[http.StatusOK] == 0 {
		t.Errorf("no request succeeded under backpressure: %v", statuses)
	}
	if statuses[http.StatusTooManyRequests] == 0 {
		t.Errorf("8 concurrent proves against 1 worker + 1 slot shed nothing: %v", statuses)
	}
	if statuses[http.StatusOK]+statuses[http.StatusTooManyRequests] != total {
		t.Errorf("unexpected statuses: %v", statuses)
	}
}

// TestGracefulDrain starts a prove, begins shutdown mid-flight, and
// asserts (a) requests arriving during the drain are refused with a
// typed 503, (b) the in-flight prove still completes with a full
// response, (c) shutdown returns cleanly.
func TestGracefulDrain(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen()
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve() }()
	base := "http://" + addr.String()
	client := &http.Client{Timeout: time.Minute}

	type result struct {
		status int
		body   []byte
	}
	inflight := make(chan result, 1)
	go func() {
		status, body := postJSON(t, client, base+"/prove",
			ProveRequest{Circuit: "synthetic", N: 1024})
		inflight <- result{status, body}
	}()
	// Wait until the prove is actually running.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, _, inf := s.Queue(); inf > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("prove never started")
		}
		time.Sleep(time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// Once draining is visible, a new request must be refused with the
	// typed draining error. The network listener is already closed, so
	// drive the handler directly — exactly what an admitted-but-not-yet-
	// queued request would hit.
	for !s.draining.Load() {
		time.Sleep(time.Millisecond)
	}
	rec := httptest.NewRecorder()
	data, _ := json.Marshal(ProveRequest{Circuit: "synthetic", N: 64})
	req := httptest.NewRequest("POST", "/prove", bytes.NewReader(data))
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("request during drain: status %d, want 503", rec.Code)
	}
	var er ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Code != "draining" {
		t.Errorf("drain refusal not typed: %s", rec.Body.String())
	}

	// Probe ordering during the drain: liveness stays green (the process
	// is healthy and must not be restarted mid-drain) while readiness
	// goes red (no new traffic should be routed here).
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("healthz during drain: status %d, want 200 (liveness)", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"draining":true`) {
		t.Errorf("healthz during drain missing draining flag: %s", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain: status %d, want 503 (readiness)", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"code":"draining"`) {
		t.Errorf("readyz during drain not typed: %s", rec.Body.String())
	}

	// The in-flight prove completes with a full, valid response.
	res := <-inflight
	if res.status != http.StatusOK {
		t.Fatalf("in-flight prove during drain: status %d: %s", res.status, res.body)
	}
	var pr ProveResponse
	if err := json.Unmarshal(res.body, &pr); err != nil {
		t.Fatalf("in-flight prove response truncated or invalid: %v: %s", err, res.body)
	}
	if pr.ProofBytes == 0 || pr.ProofB64 == "" {
		t.Fatalf("in-flight prove returned empty proof: %s", res.body)
	}

	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestHealthzAndMetrics sanity-checks the observability endpoints.
func TestHealthzAndMetrics(t *testing.T) {
	_, base, _ := startServer(t, testConfig())
	client := &http.Client{Timeout: time.Minute}
	proveOnce(t, client, base)

	resp, err := client.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"status":"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	resp, err = client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	for _, want := range []string{
		"nocap_proves_ok_total 1",
		`nocap_kernel_calls_total{stage="sumcheck"}`,
		`nocap_kernel_wall_ns_total{stage="merkle"}`,
		"nocap_arena_outstanding 0",
		"nocap_queue_capacity 8",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
