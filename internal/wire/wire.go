// Package wire implements the binary serialization primitives shared by
// proof encoding: length-prefixed little-endian encoding of integers,
// field elements, digests, and their vectors. Proofs must cross the
// prover-verifier link (the 10 MB/s channel of the paper's end-to-end
// analysis), so the format is compact and deterministic: fixed 8-byte
// words, no varints, no reflection.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"nocap/internal/field"
	"nocap/internal/hashfn"
)

// ErrTruncated indicates the buffer ended before the structure did.
var ErrTruncated = errors.New("wire: truncated input")

// ErrOversized indicates a length prefix exceeding sane bounds.
var ErrOversized = errors.New("wire: implausible length prefix")

// MaxVecLen bounds any single decoded vector (1 GiB of elements) to
// keep hostile inputs from driving allocations.
const MaxVecLen = 1 << 27

// Writer accumulates an encoded byte stream. The zero value is ready to
// use.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded stream.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the current encoded size.
func (w *Writer) Len() int { return len(w.buf) }

// U64 appends one little-endian word.
func (w *Writer) U64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

// Elem appends one field element.
func (w *Writer) Elem(e field.Element) { w.U64(e.Uint64()) }

// Elems appends a length-prefixed element vector.
func (w *Writer) Elems(v []field.Element) {
	w.U64(uint64(len(v)))
	for _, e := range v {
		w.Elem(e)
	}
}

// Digest appends a 32-byte digest.
func (w *Writer) Digest(d hashfn.Digest) { w.buf = append(w.buf, d[:]...) }

// Reader decodes a stream produced by Writer.
type Reader struct {
	buf []byte
	off int
}

// NewReader wraps a buffer.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Done returns an error unless the stream was fully consumed.
func (r *Reader) Done() error {
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

// U64 reads one word.
func (r *Reader) U64() (uint64, error) {
	if r.Remaining() < 8 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

// Elem reads one field element, validating canonical range.
func (r *Reader) Elem() (field.Element, error) {
	v, err := r.U64()
	if err != nil {
		return 0, err
	}
	if v >= field.Modulus {
		return 0, fmt.Errorf("wire: non-canonical field element %d", v)
	}
	return field.Element(v), nil
}

// Elems reads a length-prefixed element vector.
func (r *Reader) Elems() ([]field.Element, error) {
	n, err := r.U64()
	if err != nil {
		return nil, err
	}
	// The elements must actually be present: bound allocations by the
	// remaining buffer, so hostile prefixes cannot demand gigabytes.
	if n > MaxVecLen || n > uint64(r.Remaining())/8 {
		return nil, ErrOversized
	}
	out := make([]field.Element, n)
	for i := range out {
		if out[i], err = r.Elem(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Digest reads a 32-byte digest.
func (r *Reader) Digest() (hashfn.Digest, error) {
	var d hashfn.Digest
	if r.Remaining() < len(d) {
		return d, ErrTruncated
	}
	copy(d[:], r.buf[r.off:])
	r.off += len(d)
	return d, nil
}

// Count reads a length prefix bounded by MaxVecLen and by the remaining
// buffer (every counted item occupies at least 8 bytes).
func (r *Reader) Count() (int, error) {
	n, err := r.U64()
	if err != nil {
		return 0, err
	}
	if n > MaxVecLen || n > uint64(r.Remaining())/8 {
		return 0, ErrOversized
	}
	return int(n), nil
}
