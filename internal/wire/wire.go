// Package wire implements the binary serialization primitives shared by
// proof encoding: length-prefixed little-endian encoding of integers,
// field elements, digests, and their vectors. Proofs must cross the
// prover-verifier link (the 10 MB/s channel of the paper's end-to-end
// analysis), so the format is compact and deterministic: fixed 8-byte
// words, no varints, no reflection.
//
// The Reader side is an untrusted-input boundary: every length prefix is
// validated against the bytes actually remaining before anything is
// allocated, and a caller-configurable Limits budget caps total decoded
// allocation, so a 16-byte hostile message can never demand gigabytes.
package wire

import (
	"nocap/internal/field"
	"nocap/internal/hashfn"
	"nocap/internal/zkerr"
)

// ErrTruncated indicates the buffer ended before the structure did.
var ErrTruncated = zkerr.Wrap(zkerr.ErrMalformedProof, "wire: truncated input")

// ErrOversized indicates a length prefix exceeding sane bounds or the
// bytes remaining in the message.
var ErrOversized = zkerr.Wrap(zkerr.ErrMalformedProof, "wire: implausible length prefix")

// ErrNonCanonical indicates a field element encoding ≥ the modulus. Such
// values are rejected, never silently reduced: two distinct byte strings
// must never decode to the same proof.
var ErrNonCanonical = zkerr.Wrap(zkerr.ErrMalformedProof, "wire: non-canonical field element")

// ErrBudget indicates the cumulative decoded allocation exceeded
// Limits.MaxTotalAlloc.
var ErrBudget = zkerr.Wrap(zkerr.ErrResourceLimit, "wire: decode allocation budget exceeded")

// MaxVecLen is the default per-vector element bound (1 GiB of elements).
const MaxVecLen = 1 << 27

// Limits bounds what a decoder will do on behalf of an untrusted message.
// It is the caller-configurable `DecodeLimits` of the public API: a
// serving layer sets these from its per-request memory envelope. The zero
// value of any field means "use the package default" (see DefaultLimits).
type Limits struct {
	// MaxProofBytes rejects whole messages larger than this before any
	// parsing. Default 256 MiB (paper-scale proofs are single-digit MB).
	MaxProofBytes int
	// MaxVecLen bounds any single decoded vector, in elements.
	MaxVecLen int
	// MaxReps bounds the Spartan soundness-repetition count (the paper
	// uses 3; 64 leaves generous headroom).
	MaxReps int
	// MaxOpenings bounds the number of opened columns/Merkle paths in one
	// PCS opening proof (the paper opens 189 columns).
	MaxOpenings int
	// MaxTotalAlloc bounds the cumulative bytes of memory a decode may
	// allocate across all vectors and structures. Default 1 GiB.
	MaxTotalAlloc int64
}

// DefaultLimits returns the package defaults, generous enough for any
// proof this library produces at paper scale.
func DefaultLimits() Limits {
	return Limits{
		MaxProofBytes: 256 << 20,
		MaxVecLen:     MaxVecLen,
		MaxReps:       64,
		MaxOpenings:   4096,
		MaxTotalAlloc: 1 << 30,
	}
}

// normalized fills zero fields with defaults so a partially-populated
// Limits is never accidentally "no limit at all".
func (l Limits) normalized() Limits {
	d := DefaultLimits()
	if l.MaxProofBytes <= 0 {
		l.MaxProofBytes = d.MaxProofBytes
	}
	if l.MaxVecLen <= 0 {
		l.MaxVecLen = d.MaxVecLen
	}
	if l.MaxReps <= 0 {
		l.MaxReps = d.MaxReps
	}
	if l.MaxOpenings <= 0 {
		l.MaxOpenings = d.MaxOpenings
	}
	if l.MaxTotalAlloc <= 0 {
		l.MaxTotalAlloc = d.MaxTotalAlloc
	}
	return l
}

// Writer accumulates an encoded byte stream. The zero value is ready to
// use.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer whose buffer is presized to capacity bytes,
// so encoders that know their output size (every proof type exposes
// SizeBytes) serialize with a single allocation.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Grow ensures space for n more bytes without reallocation. Capacity at
// least doubles on every reallocation, so repeated Grow+append cycles
// cost amortized O(1) per byte instead of the quadratic copying that
// growing to exactly len+n would cause.
func (w *Writer) Grow(n int) {
	if n <= cap(w.buf)-len(w.buf) {
		return
	}
	newCap := max(2*cap(w.buf), len(w.buf)+n)
	grown := make([]byte, len(w.buf), newCap)
	copy(grown, w.buf)
	w.buf = grown
}

// Bytes returns the encoded stream.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the current encoded size.
func (w *Writer) Len() int { return len(w.buf) }

// U64 appends one little-endian word.
func (w *Writer) U64(v uint64) {
	w.buf = append(w.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// Elem appends one field element.
func (w *Writer) Elem(e field.Element) { w.U64(e.Uint64()) }

// Elems appends a length-prefixed element vector.
func (w *Writer) Elems(v []field.Element) {
	w.U64(uint64(len(v)))
	for _, e := range v {
		w.Elem(e)
	}
}

// Digest appends a 32-byte digest.
func (w *Writer) Digest(d hashfn.Digest) { w.buf = append(w.buf, d[:]...) }

// Reader decodes a stream produced by Writer. Construct with NewReader
// (default limits) or NewReaderLimits.
type Reader struct {
	buf    []byte
	off    int
	limits Limits
	alloc  int64 // cumulative granted allocation, bytes
}

// NewReader wraps a buffer with DefaultLimits.
func NewReader(b []byte) *Reader {
	return &Reader{buf: b, limits: DefaultLimits()}
}

// NewReaderLimits wraps a buffer with caller-supplied limits (zero fields
// fall back to defaults). It fails up front if the message itself exceeds
// MaxProofBytes, before any parsing happens.
func NewReaderLimits(b []byte, l Limits) (*Reader, error) {
	l = l.normalized()
	if len(b) > l.MaxProofBytes {
		return nil, zkerr.Resourcef("wire: message is %d bytes, limit %d", len(b), l.MaxProofBytes)
	}
	return &Reader{buf: b, limits: l}, nil
}

// Limits returns the reader's normalized limits, for decoders that apply
// structure-specific bounds (MaxReps, MaxOpenings).
func (r *Reader) Limits() Limits { return r.limits }

// Grant charges n bytes against the decode allocation budget. Decoders
// call it before every make() whose size derives from untrusted input, so
// hostile prefixes hit ErrBudget instead of the allocator.
func (r *Reader) Grant(n int64) error {
	if n < 0 {
		return ErrOversized
	}
	r.alloc += n
	if r.alloc > r.limits.MaxTotalAlloc {
		return ErrBudget
	}
	return nil
}

// Granted returns the cumulative allocation charged so far (test hook).
func (r *Reader) Granted() int64 { return r.alloc }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Done returns an error unless the stream was fully consumed.
func (r *Reader) Done() error {
	if r.off != len(r.buf) {
		return zkerr.Malformedf("wire: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

// U64 reads one word.
func (r *Reader) U64() (uint64, error) {
	if r.Remaining() < 8 {
		return 0, ErrTruncated
	}
	b := r.buf[r.off:]
	v := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	r.off += 8
	return v, nil
}

// Elem reads one field element, rejecting non-canonical encodings (≥ p).
func (r *Reader) Elem() (field.Element, error) {
	v, err := r.U64()
	if err != nil {
		return 0, err
	}
	e, ok := field.FromCanonical(v)
	if !ok {
		return 0, ErrNonCanonical
	}
	return e, nil
}

// Elems reads a length-prefixed element vector. The declared count is
// validated against the bytes remaining (fail fast: the elements must
// actually be present) and charged against the allocation budget before
// the vector is allocated.
func (r *Reader) Elems() ([]field.Element, error) {
	n, err := r.Count()
	if err != nil {
		return nil, err
	}
	if err := r.Grant(8 * int64(n)); err != nil {
		return nil, err
	}
	out := make([]field.Element, n)
	for i := range out {
		if out[i], err = r.Elem(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Digest reads a 32-byte digest.
func (r *Reader) Digest() (hashfn.Digest, error) {
	var d hashfn.Digest
	if r.Remaining() < len(d) {
		return d, ErrTruncated
	}
	copy(d[:], r.buf[r.off:])
	r.off += len(d)
	return d, nil
}

// Count reads a length prefix bounded by MaxVecLen and by the remaining
// buffer (every counted item occupies at least 8 bytes), so the declared
// count can never exceed what the message could possibly contain.
func (r *Reader) Count() (int, error) {
	n, err := r.U64()
	if err != nil {
		return 0, err
	}
	if n > uint64(r.limits.MaxVecLen) || n > uint64(r.Remaining())/8 {
		return 0, ErrOversized
	}
	return int(n), nil
}
