package wire

import (
	"testing"

	"nocap/internal/zkerr"
)

// FuzzReader drives the reader primitives with an op-stream interpreted
// from the input's first byte(s): whatever the sequence, every failure
// must be a taxonomy error, allocation must stay within the budget, and
// nothing may panic.
func FuzzReader(f *testing.F) {
	w := &Writer{}
	w.U64(3)
	w.U64(1)
	w.U64(2)
	w.U64(3)
	f.Add([]byte{0}, w.Bytes())
	f.Add([]byte{1, 2, 3, 0}, []byte{})
	f.Add([]byte{3, 0, 1}, w.Bytes())
	f.Fuzz(func(t *testing.T, ops, data []byte) {
		lim := Limits{MaxProofBytes: 1 << 20, MaxTotalAlloc: 1 << 16}
		r, err := NewReaderLimits(data, lim)
		if err != nil {
			if !zkerr.InTaxonomy(err) {
				t.Fatalf("constructor error outside taxonomy: %v", err)
			}
			return
		}
		for _, op := range ops {
			var err error
			switch op % 5 {
			case 0:
				_, err = r.U64()
			case 1:
				_, err = r.Elem()
			case 2:
				_, err = r.Elems()
			case 3:
				_, err = r.Digest()
			case 4:
				_, err = r.Count()
			}
			if err != nil {
				if !zkerr.InTaxonomy(err) {
					t.Fatalf("op %d error outside taxonomy: %v", op, err)
				}
				return
			}
			if r.Granted() > lim.MaxTotalAlloc {
				t.Fatalf("budget exceeded without error: %d > %d", r.Granted(), lim.MaxTotalAlloc)
			}
		}
		_ = r.Done()
	})
}
