package wire

import (
	"errors"
	"strings"
	"testing"

	"nocap/internal/field"
	"nocap/internal/zkerr"
)

func TestDefaultLimitsPopulated(t *testing.T) {
	l := DefaultLimits()
	if l.MaxProofBytes <= 0 || l.MaxVecLen <= 0 || l.MaxReps <= 0 ||
		l.MaxOpenings <= 0 || l.MaxTotalAlloc <= 0 {
		t.Fatalf("default limits have zero fields: %+v", l)
	}
}

func TestLimitsNormalization(t *testing.T) {
	// A partially-filled Limits must never mean "unlimited".
	r, err := NewReaderLimits(nil, Limits{MaxReps: 3})
	if err != nil {
		t.Fatal(err)
	}
	l := r.Limits()
	if l.MaxReps != 3 {
		t.Fatalf("explicit field overwritten: %+v", l)
	}
	if l.MaxProofBytes != DefaultLimits().MaxProofBytes || l.MaxTotalAlloc != DefaultLimits().MaxTotalAlloc {
		t.Fatalf("zero fields not defaulted: %+v", l)
	}
}

func TestMaxProofBytesRejectsWholeMessage(t *testing.T) {
	_, err := NewReaderLimits(make([]byte, 100), Limits{MaxProofBytes: 64})
	if !errors.Is(err, zkerr.ErrResourceLimit) {
		t.Fatalf("oversized message: got %v", err)
	}
}

func TestGrantBudget(t *testing.T) {
	r, err := NewReaderLimits(nil, Limits{MaxTotalAlloc: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Grant(60); err != nil {
		t.Fatal(err)
	}
	if err := r.Grant(40); err != nil {
		t.Fatal(err)
	}
	if err := r.Grant(1); !errors.Is(err, zkerr.ErrResourceLimit) {
		t.Fatalf("budget overrun not detected: %v", err)
	}
	if err := r.Grant(-1); err == nil {
		t.Fatal("negative grant accepted")
	}
	if r.Granted() < 100 {
		t.Fatalf("granted counter wrong: %d", r.Granted())
	}
}

func TestElemsChargesBudget(t *testing.T) {
	v := make([]field.Element, 64)
	w := &Writer{}
	w.Elems(v)
	r, err := NewReaderLimits(w.Bytes(), Limits{MaxTotalAlloc: 8 * 63})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Elems(); !errors.Is(err, zkerr.ErrResourceLimit) {
		t.Fatalf("vector exceeding budget decoded: %v", err)
	}
}

func TestCountHonorsMaxVecLen(t *testing.T) {
	w := &Writer{}
	w.U64(11)
	// Pad so the remaining-bytes bound does not fire first.
	for i := 0; i < 16; i++ {
		w.U64(0)
	}
	r, err := NewReaderLimits(w.Bytes(), Limits{MaxVecLen: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Count(); !errors.Is(err, ErrOversized) {
		t.Fatalf("count above MaxVecLen accepted: %v", err)
	}
}

func TestCountFailsFastOnRemaining(t *testing.T) {
	// Declared count of 1000 elements with only 2 words of payload: the
	// shared fail-fast fix all three serialize layers build on.
	w := &Writer{}
	w.U64(1000)
	w.U64(1)
	w.U64(2)
	r := NewReader(w.Bytes())
	if _, err := r.Count(); !errors.Is(err, ErrOversized) {
		t.Fatalf("count beyond remaining bytes accepted: %v", err)
	}
	// Same through Elems.
	r2 := NewReader(w.Bytes())
	if _, err := r2.Elems(); !errors.Is(err, ErrOversized) {
		t.Fatalf("Elems beyond remaining bytes accepted: %v", err)
	}
}

func TestWireErrorsInTaxonomy(t *testing.T) {
	for _, err := range []error{ErrTruncated, ErrOversized, ErrNonCanonical} {
		if !errors.Is(err, zkerr.ErrMalformedProof) {
			t.Fatalf("%v not classified as malformed proof", err)
		}
	}
	if !errors.Is(ErrBudget, zkerr.ErrResourceLimit) {
		t.Fatal("ErrBudget not classified as resource limit")
	}
}

func TestElemNonCanonicalIsMalformed(t *testing.T) {
	for _, v := range []uint64{field.Modulus, field.Modulus + 1, ^uint64(0)} {
		w := &Writer{}
		w.U64(v)
		_, err := NewReader(w.Bytes()).Elem()
		if !errors.Is(err, zkerr.ErrMalformedProof) {
			t.Fatalf("value %d: got %v", v, err)
		}
		if !strings.Contains(err.Error(), "non-canonical") {
			t.Fatalf("value %d: unhelpful error %v", v, err)
		}
	}
}
