package wire

import (
	"errors"
	"testing"
	"testing/quick"

	"nocap/internal/field"
	"nocap/internal/hashfn"
)

func TestRoundTrip(t *testing.T) {
	w := &Writer{}
	w.U64(42)
	w.Elem(field.New(7))
	w.Elems([]field.Element{field.New(1), field.New(2), field.New(3)})
	d := hashfn.Sum([]byte("x"))
	w.Digest(d)

	r := NewReader(w.Bytes())
	if v, _ := r.U64(); v != 42 {
		t.Fatal("u64 mismatch")
	}
	if e, _ := r.Elem(); e != field.New(7) {
		t.Fatal("elem mismatch")
	}
	es, err := r.Elems()
	if err != nil || len(es) != 3 || es[2] != field.New(3) {
		t.Fatalf("elems mismatch: %v %v", es, err)
	}
	if got, _ := r.Digest(); got != d {
		t.Fatal("digest mismatch")
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestDoneDetectsTrailing(t *testing.T) {
	w := &Writer{}
	w.U64(1)
	w.U64(2)
	r := NewReader(w.Bytes())
	if _, err := r.U64(); err != nil {
		t.Fatal(err)
	}
	if err := r.Done(); err == nil {
		t.Fatal("trailing bytes undetected")
	}
}

func TestTruncation(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	if _, err := r.U64(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("got %v", err)
	}
	if _, err := r.Digest(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("got %v", err)
	}
}

func TestNonCanonicalElementRejected(t *testing.T) {
	w := &Writer{}
	w.U64(field.Modulus) // not a canonical element
	if _, err := NewReader(w.Bytes()).Elem(); err == nil {
		t.Fatal("non-canonical element accepted")
	}
}

func TestOversizedVectorRejected(t *testing.T) {
	w := &Writer{}
	w.U64(MaxVecLen + 1)
	if _, err := NewReader(w.Bytes()).Elems(); !errors.Is(err, ErrOversized) {
		t.Fatal("oversized length accepted")
	}
	w2 := &Writer{}
	w2.U64(MaxVecLen + 1)
	if _, err := NewReader(w2.Bytes()).Count(); !errors.Is(err, ErrOversized) {
		t.Fatal("oversized count accepted")
	}
}

func TestQuickElemsRoundTrip(t *testing.T) {
	f := func(raw []uint64) bool {
		v := make([]field.Element, len(raw))
		for i, x := range raw {
			v[i] = field.New(x)
		}
		w := &Writer{}
		w.Elems(v)
		got, err := NewReader(w.Bytes()).Elems()
		if err != nil || len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
