package wire

import "testing"

// TestGrowAmortized asserts Grow's geometric growth policy: many small
// Grow+append cycles must reallocate O(log n) times, not once per cycle.
// The old grow-to-exactly-len+n policy reallocated (and copied the whole
// buffer) on nearly every cycle, which is quadratic in total.
func TestGrowAmortized(t *testing.T) {
	w := &Writer{}
	reallocs := 0
	lastCap := cap(w.buf)
	const cycles = 4096
	for i := 0; i < cycles; i++ {
		w.Grow(8)
		w.U64(uint64(i))
		if c := cap(w.buf); c != lastCap {
			reallocs++
			lastCap = c
		}
	}
	if w.Len() != 8*cycles {
		t.Fatalf("wrote %d bytes, want %d", w.Len(), 8*cycles)
	}
	// Doubling from 0 to 32 KiB takes ~16 reallocations; leave headroom
	// for the first append's small-size ramp.
	if reallocs > 24 {
		t.Errorf("%d reallocations across %d Grow+append cycles; growth is not geometric", reallocs, cycles)
	}
}

// TestGrowPreservesContents asserts Grow keeps the written prefix intact
// and never shrinks available capacity.
func TestGrowPreservesContents(t *testing.T) {
	w := NewWriter(8)
	w.U64(0xdeadbeef)
	w.Grow(1 << 16)
	if cap(w.buf)-w.Len() < 1<<16 {
		t.Fatalf("Grow(64KiB) left only %d spare bytes", cap(w.buf)-w.Len())
	}
	r := NewReader(w.Bytes())
	if v, err := r.U64(); err != nil || v != 0xdeadbeef {
		t.Fatalf("prefix corrupted after Grow: %v %v", v, err)
	}
}

// BenchmarkGrowAppendCycles guards the amortized cost of the
// Grow+append pattern proof serializers use; a regression to quadratic
// copying shows up as a large jump in ns/op and B/op here.
func BenchmarkGrowAppendCycles(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := &Writer{}
		for j := 0; j < 1024; j++ {
			w.Grow(8)
			w.U64(uint64(j))
		}
	}
}
