package merkle

import (
	"fmt"

	"nocap/internal/hashfn"
	"nocap/internal/wire"
)

// maxDepth bounds decoded path depth (2^64 leaves is far beyond any
// commitment this library produces).
const maxDepth = 64

// AppendTo serializes the path.
func (p Path) AppendTo(w *wire.Writer) {
	w.U64(uint64(p.Index))
	w.U64(uint64(len(p.Siblings)))
	for _, s := range p.Siblings {
		w.Digest(s)
	}
}

// ReadPath decodes a path.
func ReadPath(r *wire.Reader) (Path, error) {
	idx, err := r.U64()
	if err != nil {
		return Path{}, err
	}
	n, err := r.U64()
	if err != nil {
		return Path{}, err
	}
	if n > maxDepth {
		return Path{}, fmt.Errorf("merkle: path depth %d too large", n)
	}
	p := Path{Index: int(idx), Siblings: make([]hashfn.Digest, n)}
	for i := range p.Siblings {
		if p.Siblings[i], err = r.Digest(); err != nil {
			return Path{}, err
		}
	}
	return p, nil
}
