package merkle

import (
	"nocap/internal/hashfn"
	"nocap/internal/wire"
	"nocap/internal/zkerr"
)

// maxDepth bounds decoded path depth (2^64 leaves is far beyond any
// commitment this library produces).
const maxDepth = 64

// AppendTo serializes the path with one buffer growth at most.
func (p Path) AppendTo(w *wire.Writer) {
	w.Grow(16 + hashfn.Size*len(p.Siblings))
	w.U64(uint64(p.Index))
	w.U64(uint64(len(p.Siblings)))
	for _, s := range p.Siblings {
		w.Digest(s)
	}
}

// ReadPath decodes a path from untrusted bytes: the depth prefix is
// bounded both by maxDepth and by the digests actually remaining in the
// buffer, and the sibling allocation is charged to the reader's budget.
func ReadPath(r *wire.Reader) (Path, error) {
	idx, err := r.U64()
	if err != nil {
		return Path{}, err
	}
	n, err := r.U64()
	if err != nil {
		return Path{}, err
	}
	if n > maxDepth {
		return Path{}, zkerr.Malformedf("merkle: path depth %d too large", n)
	}
	// The leaf index must address a leaf of a depth-n tree and must fit
	// a non-negative int (idx>>n is 0 for any idx when n is 64, but such
	// depths are rejected by the remaining-bytes check long before then).
	if idx>>n != 0 || idx > 1<<62 {
		return Path{}, zkerr.Malformedf("merkle: leaf index %d out of range for depth %d", idx, n)
	}
	if uint64(r.Remaining()) < n*hashfn.Size {
		return Path{}, wire.ErrTruncated
	}
	if err := r.Grant(int64(n) * hashfn.Size); err != nil {
		return Path{}, err
	}
	p := Path{Index: int(idx), Siblings: make([]hashfn.Digest, n)}
	for i := range p.Siblings {
		if p.Siblings[i], err = r.Digest(); err != nil {
			return Path{}, err
		}
	}
	return p, nil
}
