// Package merkle implements the Merkle-tree commitment used by the Orion
// polynomial commitment (paper §V-A): leaves are hashes of packed field
// element vectors (one codeword column per leaf), interior nodes are the
// 2-to-1 SHA3 compression of their children — the structure NoCap's hash
// FU builds layer by layer with grouped interleavings.
package merkle

import (
	"context"
	"math/bits"

	"nocap/internal/faultinject"
	"nocap/internal/field"
	"nocap/internal/hashfn"
	"nocap/internal/kernel"
	"nocap/internal/zkerr"
)

// fiBuildLevel is the registered fault-injection point between tree
// levels (chaos tests arm it by this name).
var fiBuildLevel = faultinject.Register("merkle.build.level")

// Tree is a full binary Merkle tree over a power-of-two number of leaves.
type Tree struct {
	// levels[0] is the leaf layer; levels[len-1] has a single root.
	levels [][]hashfn.Digest
}

// LeafOfColumn hashes one matrix column (a field-element vector) into a
// leaf digest, using the hash FU's packing of four 64-bit elements per
// 256-bit block.
func LeafOfColumn(col []field.Element) hashfn.Digest {
	return hashfn.HashElems(col)
}

// LeafOfColumnEngine is LeafOfColumn under an explicit hash engine.
func LeafOfColumnEngine(eng hashfn.Engine, col []field.Element) hashfn.Digest {
	return eng.HashElems(col)
}

// New builds a tree over the given leaves. The number of leaves must be a
// power of two and non-zero. An injected fault (chaos tests only)
// escapes as a panic contained by the caller's zkerr boundary;
// context-aware callers use NewCtx.
func New(leaves []hashfn.Digest) *Tree {
	t, err := NewCtx(context.Background(), leaves)
	if err != nil {
		panic(err)
	}
	return t
}

// NewCtx is New with cooperative cancellation: each level passes
// through the "merkle.build.level" fault-injection point, and the
// level-compression kernel polls the context at bounded intervals
// within a level. All 2n−1 nodes live in one backing allocation rather
// than one slice per level.
func NewCtx(ctx context.Context, leaves []hashfn.Digest) (*Tree, error) {
	return NewEngineCtx(ctx, hashfn.Default(), leaves)
}

// NewEngineCtx is NewCtx under an explicit hash engine: every level is
// compressed through the engine's batch entry point, so a multi-buffer
// engine hashes four tree nodes per interleaved pass.
func NewEngineCtx(ctx context.Context, eng hashfn.Engine, leaves []hashfn.Digest) (*Tree, error) {
	n := len(leaves)
	if n == 0 || n&(n-1) != 0 {
		panic("merkle: leaf count must be a positive power of two")
	}
	depth := bits.TrailingZeros(uint(n))
	nodes := make([]hashfn.Digest, 2*n-1)
	levels := make([][]hashfn.Digest, depth+1)
	levels[0] = nodes[:n]
	copy(levels[0], leaves)
	off := n
	for d := 1; d <= depth; d++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := faultinject.Check(fiBuildLevel); err != nil {
			return nil, err
		}
		prev := levels[d-1]
		cur := nodes[off : off+len(prev)/2]
		off += len(cur)
		if err := kernel.MerkleLevelCtx(ctx, eng, cur, prev); err != nil {
			return nil, err
		}
		levels[d] = cur
	}
	return &Tree{levels: levels}, nil
}

// NumLeaves returns the leaf count.
func (t *Tree) NumLeaves() int { return len(t.levels[0]) }

// Depth returns log2(NumLeaves).
func (t *Tree) Depth() int { return len(t.levels) - 1 }

// Root returns the tree root.
func (t *Tree) Root() hashfn.Digest { return t.levels[len(t.levels)-1][0] }

// Path is an authentication path for one leaf: the sibling digests from
// leaf level to just below the root.
type Path struct {
	Index    int
	Siblings []hashfn.Digest
}

// Open returns the authentication path for leaf i.
func (t *Tree) Open(i int) Path {
	if i < 0 || i >= t.NumLeaves() {
		panic("merkle: leaf index out of range")
	}
	siblings := make([]hashfn.Digest, t.Depth())
	idx := i
	for d := 0; d < t.Depth(); d++ {
		siblings[d] = t.levels[d][idx^1]
		idx >>= 1
	}
	return Path{Index: i, Siblings: siblings}
}

// SizeBytes returns the serialized size of the path (for proof-size
// accounting).
func (p Path) SizeBytes() int { return 8 + hashfn.Size*len(p.Siblings) }

// ErrPathMismatch is returned when an authentication path does not lead
// to the expected root. It is a soundness failure in the taxonomy: the
// path parsed fine but does not authenticate.
var ErrPathMismatch = zkerr.Wrap(zkerr.ErrSoundnessCheckFailed,
	"merkle: authentication path does not match root")

// Verify checks that leaf sits at p.Index under root.
func Verify(root hashfn.Digest, leaf hashfn.Digest, p Path) error {
	return VerifyEngine(hashfn.Default(), root, leaf, p)
}

// VerifyEngine is Verify under an explicit hash engine (the engine the
// tree was built with; the verifier takes it from its agreed params).
func VerifyEngine(eng hashfn.Engine, root hashfn.Digest, leaf hashfn.Digest, p Path) error {
	h := leaf
	idx := p.Index
	for _, sib := range p.Siblings {
		if idx&1 == 0 {
			h = eng.Hash2(h, sib)
		} else {
			h = eng.Hash2(sib, h)
		}
		idx >>= 1
	}
	if h != root || idx != 0 {
		return ErrPathMismatch
	}
	return nil
}
