package merkle

import (
	"math/rand"
	"testing"

	"nocap/internal/field"
	"nocap/internal/hashfn"
)

func randLeaves(n int, seed int64) []hashfn.Digest {
	rng := rand.New(rand.NewSource(seed))
	out := make([]hashfn.Digest, n)
	for i := range out {
		rng.Read(out[i][:])
	}
	return out
}

func TestBuildAndVerifyAllLeaves(t *testing.T) {
	for _, n := range []int{1, 2, 8, 64} {
		leaves := randLeaves(n, int64(n))
		tr := New(leaves)
		if tr.NumLeaves() != n {
			t.Fatalf("NumLeaves = %d", tr.NumLeaves())
		}
		for i := 0; i < n; i++ {
			p := tr.Open(i)
			if err := Verify(tr.Root(), leaves[i], p); err != nil {
				t.Fatalf("n=%d leaf %d: %v", n, i, err)
			}
		}
	}
}

func TestVerifyRejectsWrongLeaf(t *testing.T) {
	leaves := randLeaves(16, 3)
	tr := New(leaves)
	p := tr.Open(5)
	bad := leaves[5]
	bad[0] ^= 1
	if Verify(tr.Root(), bad, p) == nil {
		t.Fatal("accepted corrupted leaf")
	}
}

func TestVerifyRejectsWrongIndex(t *testing.T) {
	leaves := randLeaves(16, 4)
	tr := New(leaves)
	p := tr.Open(5)
	p.Index = 6
	if Verify(tr.Root(), leaves[5], p) == nil {
		t.Fatal("accepted path under wrong index")
	}
}

func TestVerifyRejectsTamperedSibling(t *testing.T) {
	leaves := randLeaves(8, 5)
	tr := New(leaves)
	p := tr.Open(2)
	p.Siblings[1][3] ^= 0xFF
	if Verify(tr.Root(), leaves[2], p) == nil {
		t.Fatal("accepted tampered path")
	}
}

func TestVerifyRejectsOutOfRangeIndex(t *testing.T) {
	leaves := randLeaves(8, 6)
	tr := New(leaves)
	p := tr.Open(0)
	p.Index = 8 // beyond the tree; idx must not reduce to 0
	if Verify(tr.Root(), leaves[0], p) == nil {
		t.Fatal("accepted out-of-range index")
	}
}

func TestRootChangesWithAnyLeaf(t *testing.T) {
	leaves := randLeaves(32, 7)
	root := New(leaves).Root()
	for i := range leaves {
		mod := append([]hashfn.Digest(nil), leaves...)
		mod[i][31] ^= 1
		if New(mod).Root() == root {
			t.Fatalf("root insensitive to leaf %d", i)
		}
	}
}

func TestNonPowerOfTwoPanics(t *testing.T) {
	for _, n := range []int{0, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("n=%d: expected panic", n)
				}
			}()
			New(randLeaves(n, 8))
		}()
	}
}

func TestOpenOutOfRangePanics(t *testing.T) {
	tr := New(randLeaves(4, 9))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Open(4)
}

func TestLeafOfColumn(t *testing.T) {
	col := []field.Element{field.New(1), field.New(2)}
	if LeafOfColumn(col) != hashfn.HashElems(col) {
		t.Fatal("LeafOfColumn must hash packed elements")
	}
}

func TestPathSizeBytes(t *testing.T) {
	tr := New(randLeaves(16, 10))
	p := tr.Open(0)
	if p.SizeBytes() != 8+32*4 {
		t.Fatalf("SizeBytes = %d", p.SizeBytes())
	}
}

func BenchmarkBuild64k(b *testing.B) {
	leaves := randLeaves(1<<16, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(leaves)
	}
}
