package merkle

import (
	"testing"
	"testing/quick"

	"nocap/internal/hashfn"
)

// TestQuickMembership: every leaf of every random tree verifies, and a
// flipped leaf never does.
func TestQuickMembership(t *testing.T) {
	f := func(seed int64, idxRaw uint8, bitPos uint8) bool {
		n := 1 << (1 + int(idxRaw)%5) // 2..32 leaves
		leaves := randLeaves(n, seed)
		tr := New(leaves)
		idx := int(idxRaw) % n
		p := tr.Open(idx)
		if Verify(tr.Root(), leaves[idx], p) != nil {
			return false
		}
		bad := leaves[idx]
		bad[bitPos%32] ^= 1 << (bitPos % 8)
		return Verify(tr.Root(), bad, p) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDistinctRoots: trees over different leaf sets have different
// roots (second-preimage sanity at the structural level).
func TestQuickDistinctRoots(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		if seedA == seedB {
			return true
		}
		a := New(randLeaves(8, seedA)).Root()
		b := New(randLeaves(8, seedB)).Root()
		return a != b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPathSerialization: serialize/deserialize of any opened path
// preserves verifiability.
func TestQuickPathSerialization(t *testing.T) {
	tr := New(randLeaves(32, 99))
	f := func(idxRaw uint8) bool {
		idx := int(idxRaw) % 32
		p := tr.Open(idx)
		leaf := tr.levels[0][idx]
		var root hashfn.Digest = tr.Root()
		return Verify(root, leaf, p) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
