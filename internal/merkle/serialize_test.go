package merkle

import (
	"testing"

	"nocap/internal/wire"
)

func TestPathSerializeRoundTrip(t *testing.T) {
	tr := New(randLeaves(16, 21))
	for i := 0; i < 16; i++ {
		p := tr.Open(i)
		w := &wire.Writer{}
		p.AppendTo(w)
		got, err := ReadPath(wire.NewReader(w.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if got.Index != p.Index || len(got.Siblings) != len(p.Siblings) {
			t.Fatal("shape mismatch")
		}
		if err := Verify(tr.Root(), tr.levels[0][i], got); err != nil {
			t.Fatalf("decoded path rejected: %v", err)
		}
	}
}

func TestReadPathErrors(t *testing.T) {
	// Truncated header.
	if _, err := ReadPath(wire.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("truncated index accepted")
	}
	// Index present, missing count.
	w := &wire.Writer{}
	w.U64(3)
	if _, err := ReadPath(wire.NewReader(w.Bytes())); err == nil {
		t.Fatal("missing count accepted")
	}
	// Excessive depth.
	w = &wire.Writer{}
	w.U64(0)
	w.U64(1000)
	if _, err := ReadPath(wire.NewReader(w.Bytes())); err == nil {
		t.Fatal("excessive depth accepted")
	}
	// Count present, digests missing.
	w = &wire.Writer{}
	w.U64(0)
	w.U64(2)
	if _, err := ReadPath(wire.NewReader(w.Bytes())); err == nil {
		t.Fatal("missing digests accepted")
	}
}
