package merkle

import (
	"errors"
	"testing"

	"nocap/internal/advtest"
	"nocap/internal/wire"
	"nocap/internal/zkerr"
)

// TestReadPathCorruptionTable mirrors the spartan corruption tests:
// every named corruption of a valid encoded path must yield a taxonomy
// error (or, for content-preserving corruptions, a path that fails
// Verify), and never a panic.
func TestReadPathCorruptionTable(t *testing.T) {
	tr := New(randLeaves(32, 99))
	p := tr.Open(13)
	w := &wire.Writer{}
	p.AppendTo(w)
	valid := w.Bytes()

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncate-header", func(b []byte) []byte { return b[:7] }},
		{"truncate-count", func(b []byte) []byte { return b[:12] }},
		{"truncate-digests", func(b []byte) []byte { return b[:len(b)-5] }},
		{"depth-inflation", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			for k := 0; k < 8; k++ {
				out[8+k] = 0xff // depth = 2^64-1, far past maxDepth
			}
			return out
		}},
		{"depth-over-max", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[8] = maxDepth + 1
			for k := 1; k < 8; k++ {
				out[8+k] = 0
			}
			return out
		}},
		{"index-out-of-tree", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[0], out[1] = 0xff, 0xff // index 65535 in a depth-5 tree
			for k := 2; k < 8; k++ {
				out[k] = 0
			}
			return out
		}},
		{"trailing-garbage-depth", func(b []byte) []byte {
			// Depth claims more digests than the buffer holds.
			out := append([]byte(nil), b...)
			out[8] = byte(len(p.Siblings) + 1)
			return out
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadPath(wire.NewReader(c.mutate(valid)))
			if err == nil {
				t.Fatal("corruption accepted")
			}
			if !zkerr.InTaxonomy(err) {
				t.Fatalf("error outside taxonomy: %v", err)
			}
		})
	}
}

// TestReadPathAdversarialStream runs the shared mutation engine over an
// encoded path: decode must never panic, and any decoded path must fail
// Verify unless the bytes were untouched.
func TestReadPathAdversarialStream(t *testing.T) {
	tr := New(randLeaves(64, 123))
	p := tr.Open(29)
	w := &wire.Writer{}
	p.AppendTo(w)
	valid := w.Bytes()
	leaf := tr.levels[0][29]

	mut := advtest.NewMutator(valid, 5)
	n := 3000
	if testing.Short() {
		n = 500
	}
	for i := 0; i < n; i++ {
		m := mut.Next()
		got, err := ReadPath(wire.NewReader(m.Data))
		if err != nil {
			if !zkerr.InTaxonomy(err) {
				t.Fatalf("mutation %d (%v): error outside taxonomy: %v", i, m.Kind, err)
			}
			continue
		}
		// Decoded: verification is the next line of defense. Trailing
		// bytes are the reader's Done() concern, not ReadPath's.
		if err := Verify(tr.Root(), leaf, got); err != nil &&
			!errors.Is(err, zkerr.ErrSoundnessCheckFailed) {
			t.Fatalf("mutation %d (%v): verify error outside taxonomy: %v", i, m.Kind, err)
		}
	}
}

func TestPathBudgetCharged(t *testing.T) {
	tr := New(randLeaves(32, 7))
	w := &wire.Writer{}
	tr.Open(0).AppendTo(w)
	r, err := wire.NewReaderLimits(w.Bytes(), wire.Limits{MaxTotalAlloc: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPath(r); !errors.Is(err, zkerr.ErrResourceLimit) {
		t.Fatalf("sibling allocation not budgeted: %v", err)
	}
}
