package merkle

import (
	"errors"
	"testing"

	"nocap/internal/wire"
	"nocap/internal/zkerr"
)

// FuzzReadPath ensures arbitrary bytes never panic the path decoder and
// that every decoded path can be verified (accept or typed reject)
// against a real tree without crashing.
func FuzzReadPath(f *testing.F) {
	tr := New(randLeaves(32, 31))
	w := &wire.Writer{}
	tr.Open(7).AppendTo(w)
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	leaf := tr.levels[0][7]
	root := tr.Root()
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := ReadPath(wire.NewReader(b))
		if err != nil {
			if !zkerr.InTaxonomy(err) {
				t.Fatalf("decode error outside taxonomy: %v", err)
			}
			return
		}
		if p.Index < 0 {
			t.Fatalf("decoder produced negative index: %+v", p)
		}
		if err := Verify(root, leaf, p); err != nil && !errors.Is(err, zkerr.ErrSoundnessCheckFailed) {
			t.Fatalf("verify error outside taxonomy: %v", err)
		}
	})
}
