package nttfu

import (
	"math/rand"
	"testing"

	"nocap/internal/field"
	"nocap/internal/ntt"
)

func randVec(n int, seed int64) []field.Element {
	rng := rand.New(rand.NewSource(seed))
	v := make([]field.Element, n)
	for i := range v {
		v[i] = field.New(rng.Uint64())
	}
	return v
}

func TestTransform4096MatchesReference(t *testing.T) {
	v := randVec(MaxPass, 1)
	want := append([]field.Element(nil), v...)
	ntt.Forward(want)
	got := Transform4096(v)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("datapath differs from reference at %d", i)
		}
	}
}

func TestTransform4096WidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Transform4096(make([]field.Element, 100))
}

func TestTransformLarge(t *testing.T) {
	for _, logN := range []int{8, 12, 14, 16} {
		v := randVec(1<<logN, int64(logN))
		want := append([]field.Element(nil), v...)
		ntt.Forward(want)
		got := TransformLarge(v)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("2^%d: differs at %d", logN, i)
			}
		}
	}
}

func TestPassCycles(t *testing.T) {
	// 4096 points at 64/cycle = 64 beats + fill.
	if c := PassCycles(MaxPass); c < 64 || c > 64+4*Lanes {
		t.Fatalf("pass cycles %d", c)
	}
	if PassCycles(2*MaxPass) <= PassCycles(MaxPass) {
		t.Fatal("cycles must grow with size")
	}
}

func TestNTTPlan(t *testing.T) {
	cases := []struct {
		logN                    int
		passes, onChip, offChip int
	}{
		{10, 1, 0, 0},
		{12, 1, 0, 0},
		{18, 2, 1, 0}, // fits the 2^20-element register file
		{20, 2, 1, 0},
		{24, 2, 0, 1}, // one off-chip transpose
		{30, 3, 1, 1},
		{36, 3, 1, 1}, // the paper's ceiling: still one off-chip transpose
	}
	for _, c := range cases {
		p, err := NTTPlan(c.logN)
		if err != nil {
			t.Fatalf("2^%d: %v", c.logN, err)
		}
		if p.Passes != c.passes || p.OnChipTransposes != c.onChip || p.OffChipTransposes != c.offChip {
			t.Fatalf("2^%d: got %+v, want passes=%d onchip=%d offchip=%d",
				c.logN, p, c.passes, c.onChip, c.offChip)
		}
	}
}

func TestNTTPlanPaperClaim(t *testing.T) {
	// §V-A: "One transpose involving off-chip memory is sufficient for an
	// input R1CS size of up to 2^36, well above our maximum target."
	for logN := 13; logN <= 36; logN++ {
		p, err := NTTPlan(logN)
		if err != nil {
			t.Fatal(err)
		}
		if p.OffChipTransposes > 1 {
			t.Fatalf("2^%d needs %d off-chip transposes; paper says one suffices",
				logN, p.OffChipTransposes)
		}
	}
	if _, err := NTTPlan(37); err == nil {
		t.Fatal("beyond-range plan accepted")
	}
}

func BenchmarkTransform4096(b *testing.B) {
	v := randVec(MaxPass, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transform4096(v)
	}
}
