// Package nttfu is a functional model of NoCap's NTT functional unit
// (paper §IV-B): a pipelined four-step datapath built from "two 64-point
// NTT pipelines and a 64×64 SRAM-based transpose unit", consuming and
// producing 64 elements per cycle and handling up to 2^12 = 64×64 points
// per pass. Larger transforms are performed by repeated passes with
// matrix transposes (§V-A), on-chip when the data fits the register
// file and through main memory otherwise — Plan computes that pass/
// transpose schedule up to the paper's 2^36 ceiling.
//
// The datapath model is bit-exact: Transform4096 must agree with the
// reference software NTT, which the tests check; PassCycles gives the
// unit's timing (64 lanes) that internal/tasks charges.
package nttfu

import (
	"fmt"

	"nocap/internal/field"
	"nocap/internal/ntt"
)

// Lanes is the unit's per-cycle element throughput.
const Lanes = 64

// MaxPass is the largest single-pass NTT: 64 × 64 points.
const MaxPass = Lanes * Lanes

// ntt64 runs one of the unit's 64-point NTT pipelines (bit-exact
// reference of the hardwired radix-2 pipeline).
func ntt64(v []field.Element) {
	if len(v) != Lanes {
		panic("nttfu: pipeline width is 64")
	}
	ntt.Forward(v)
}

// Transform4096 runs one full pass of the four-step datapath on a
// 4096-element vector, beat by beat, exactly as the hardware streams it:
//
//	step 1: 64 beats through pipeline A (column NTTs via transpose load),
//	step 2: twiddle multiply at the transpose unit's output,
//	step 3: 64 beats through pipeline B (row NTTs),
//	step 4: output transpose.
func Transform4096(v []field.Element) []field.Element {
	if len(v) != MaxPass {
		panic("nttfu: Transform4096 wants 4096 elements")
	}
	w := field.RootOfUnity(12) // 4096-point root

	// The transpose SRAM: written row-major, read column-major.
	var sram [Lanes][Lanes]field.Element
	for beat := 0; beat < Lanes; beat++ {
		copy(sram[beat][:], v[beat*Lanes:(beat+1)*Lanes])
	}

	// Step 1: NTT each column through pipeline A.
	for c := 0; c < Lanes; c++ {
		col := make([]field.Element, Lanes)
		for r := 0; r < Lanes; r++ {
			col[r] = sram[r][c]
		}
		ntt64(col)
		for r := 0; r < Lanes; r++ {
			sram[r][c] = col[r]
		}
	}
	// Step 2: twiddle multiply w^(r·c) as data leaves the transpose unit.
	wr := field.One
	for r := 0; r < Lanes; r++ {
		wrc := field.One
		for c := 0; c < Lanes; c++ {
			sram[r][c] = field.Mul(sram[r][c], wrc)
			wrc = field.Mul(wrc, wr)
		}
		wr = field.Mul(wr, w)
	}
	// Step 3: NTT each row through pipeline B.
	for r := 0; r < Lanes; r++ {
		ntt64(sram[r][:])
	}
	// Step 4: output transpose: element (r,c) is frequency r + 64·c.
	out := make([]field.Element, MaxPass)
	for r := 0; r < Lanes; r++ {
		for c := 0; c < Lanes; c++ {
			out[c*Lanes+r] = sram[r][c]
		}
	}
	return out
}

// PassCycles is the unit's occupancy for one n-point pass: n elements at
// 64/cycle, plus the pipeline fill (two 64-point pipelines and the
// transpose traversal).
func PassCycles(n int) int64 {
	const pipelineFill = 3 * Lanes
	return int64(n)/Lanes + pipelineFill
}

// Plan describes how a large NTT maps onto the unit (§V-A): the number
// of full-data passes through the 2^12-point FU and the transposes
// between them, split into on-chip transposes (data fits the register
// file, 2^20 elements) and round trips through main memory. One
// off-chip transpose suffices up to 2^36 — the paper's observation,
// which Plan reproduces and the tests pin down.
type PlanResult struct {
	LogN              int
	Passes            int
	OnChipTransposes  int
	OffChipTransposes int
}

// regFileLogElems is log2 of the register file's element capacity
// (8 MB / 8 B).
const regFileLogElems = 20

// NTTPlan computes the pass/transpose schedule for a 2^logN-point NTT.
func NTTPlan(logN int) (PlanResult, error) {
	if logN < 0 || logN > 36 {
		return PlanResult{}, fmt.Errorf("nttfu: 2^%d exceeds the supported range", logN)
	}
	p := PlanResult{LogN: logN}
	if logN <= 12 {
		p.Passes = 1
		return p, nil
	}
	// Recursive four-step: each level splits into 2^12-sized row NTTs
	// plus a recursive column problem; levels = ceil(logN/12) passes over
	// the data with a transpose between consecutive passes.
	p.Passes = (logN + 11) / 12
	transposes := p.Passes - 1
	for t := 0; t < transposes; t++ {
		if logN <= regFileLogElems {
			p.OnChipTransposes++
		} else {
			// A transpose of data larger than the register file goes
			// through HBM; the four-step split needs only one such level.
			if p.OffChipTransposes == 0 {
				p.OffChipTransposes = 1
			} else {
				p.OnChipTransposes++
			}
		}
	}
	return p, nil
}

// TransformLarge runs an arbitrary power-of-two NTT through repeated
// unit passes (delegating the inter-pass transposes to the four-step
// algorithm); it is the functional counterpart of Plan and must agree
// with the reference transform.
func TransformLarge(v []field.Element) []field.Element {
	n := len(v)
	if n <= MaxPass {
		out := make([]field.Element, n)
		copy(out, v)
		if n == MaxPass {
			return Transform4096(out)
		}
		ntt.Forward(out)
		return out
	}
	out := make([]field.Element, n)
	copy(out, v)
	// rows = 4096 per pass; cols = n/4096 handled recursively by FourStep.
	ntt.FourStep(out, MaxPass, n/MaxPass)
	return out
}
