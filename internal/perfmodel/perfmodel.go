// Package perfmodel provides the calibrated analytic performance models
// for the Spartan+Orion software prover and verifier that back the
// full-scale (16M–550M constraint) experiments: the measured Go prover
// runs the real protocol at laptop scale, while these models reproduce
// the paper's published CPU behaviour (DESIGN.md §3.5).
//
// Model provenance:
//
//   - CPU prover: the paper's Table IV times are exactly 94.2 s × 2^(L−24)
//     for padded size 2^L (AES 16M→2^24: 94.2 s; SHA 2^25: 188.4 s; RSA
//     98M→2^27: 753.6 s; Litmus 2^28: 1507.2 s; Auction 550M→2^30: 6120 s),
//     i.e. 5.615 µs per padded constraint on the 32-core Threadripper.
//   - Verification time and proof size are O(log²N) (§III); we least-
//     squares fit a + b·log²N to the five Table III rows.
//   - End-to-end totals assume the paper's 10 MB/s prover-verifier link.
package perfmodel

import "math"

// PaddedLog2 returns the padded instance size exponent L for a raw
// constraint count.
func PaddedLog2(constraints int64) int {
	l := 0
	for int64(1)<<uint(l) < constraints {
		l++
	}
	return l
}

// cpuAnchorSec is the 32-core CPU Spartan+Orion time at 2^24 (Table IV).
const cpuAnchorSec = 94.2

// CPUSeconds models the optimized 32-core CPU Spartan+Orion prover.
func CPUSeconds(constraints int64) float64 {
	return cpuAnchorSec * math.Exp2(float64(PaddedLog2(constraints)-24))
}

// CPU runtime breakdown by task (paper Fig. 6a, CPU bars).
var CPUTaskShares = map[string]float64{
	"sumcheck":   0.70,
	"rs-encode":  0.19,
	"poly-arith": 0.06,
	"merkle":     0.03,
	"spmv":       0.02,
}

// Protocol-optimization factors on the CPU (§VIII-C): the software
// baseline improves 1.7× from Goldilocks64, 1.2× more from Reed-Solomon
// codes (2.1× combined, "improves CPU performance by over 2×" §VII),
// while sumcheck recomputation hurts the CPU slightly (1%), which is why
// it is left off in software.
const (
	CPUGoldilocksSpeedup  = 1.7
	CPUReedSolomonSpeedup = 1.2
	CPURecomputeSlowdown  = 1.01
)

// CPUSecondsUnoptimized returns the CPU time without the Goldilocks and
// Reed-Solomon optimizations (the "just combining existing codebases"
// baseline of §III).
func CPUSecondsUnoptimized(constraints int64) float64 {
	return CPUSeconds(constraints) * CPUGoldilocksSpeedup * CPUReedSolomonSpeedup
}

// tableIII holds the paper's proof sizes and verify times.
var tableIII = []struct {
	logN     int
	proofMB  float64
	verifyMS float64
}{
	{24, 8.1, 134.0},
	{25, 8.7, 153.7},
	{27, 10.1, 198.0},
	{28, 10.9, 222.4},
	{30, 12.5, 276.1},
}

// fitLog2 least-squares fits y = a + b·L² to the Table III rows.
func fitLog2(y func(i int) float64) (a, b float64) {
	n := float64(len(tableIII))
	var sx, sy, sxx, sxy float64
	for i, row := range tableIII {
		x := float64(row.logN * row.logN)
		sx += x
		sy += y(i)
		sxx += x * x
		sxy += x * y(i)
	}
	b = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	a = (sy - b*sx) / n
	return a, b
}

var (
	proofA, proofB   = fitLog2(func(i int) float64 { return tableIII[i].proofMB })
	verifyA, verifyB = fitLog2(func(i int) float64 { return tableIII[i].verifyMS })
)

// ProofMB models the Spartan+Orion proof size: a + b·log²N (O(log²N),
// §III), fitted to Table III.
func ProofMB(constraints int64) float64 {
	l := float64(PaddedLog2(constraints))
	return proofA + proofB*l*l
}

// VerifySeconds models CPU verification time, same form.
func VerifySeconds(constraints int64) float64 {
	l := float64(PaddedLog2(constraints))
	return (verifyA + verifyB*l*l) / 1e3
}

// LinkMBps is the paper's assumed prover→verifier link (§III, Table V).
const LinkMBps = 10.0

// SendSeconds returns proof transmission time over the paper's link.
func SendSeconds(proofMB float64) float64 { return proofMB / LinkMBps }

// EndToEnd bundles the three phases of Table I / Table V.
type EndToEnd struct {
	Prover, Send, Verifier float64
}

// Total returns the end-to-end latency.
func (e EndToEnd) Total() float64 { return e.Prover + e.Send + e.Verifier }

// NoCapEndToEnd composes an end-to-end run from a simulated prover time.
func NoCapEndToEnd(proverSeconds float64, constraints int64) EndToEnd {
	return EndToEnd{
		Prover:   proverSeconds,
		Send:     SendSeconds(ProofMB(constraints)),
		Verifier: VerifySeconds(constraints),
	}
}

// CPUSerialMulRate and Groth16SerialMulRate express the §III software-
// efficiency analysis: run serially, the Spartan+Orion CPU code retires
// 4.66× fewer 64-bit multiplies per second than Groth16's, and at 32
// cores Spartan+Orion achieves 2.7× parallel speedup vs Groth16's 5.0×.
const (
	SerialMulRateRatio      = 4.66
	SpartanParallelSpeedup  = 2.7
	Groth16ParallelSpeedup  = 5.0
	AlgorithmicMultiplyGain = 4.94 // Spartan+Orion does 4.94× fewer multiplies
)

// CPUSlowdownVsGroth16 reproduces §III's accounting: Spartan+Orion
// proofs are 4.66/4.94/(2.7/5.0) ≈ 1.74× slower than Groth16 on CPU.
func CPUSlowdownVsGroth16() float64 {
	return SerialMulRateRatio / AlgorithmicMultiplyGain /
		(SpartanParallelSpeedup / Groth16ParallelSpeedup)
}
